#!/usr/bin/env python3
"""Render the committed BENCH_*.json trajectory as SVG plots.

Reads every bench/BENCH_*.json (or the files given on the command line) and
writes, per experiment, a throughput curve (Mops/s vs workers, one line per
scheme) and — when the experiment recorded per-op latency, as the kvd
macro-benchmark does — a p50/p99/p999 latency chart. Pure standard library:
the SVGs are hand-rolled, so the repo needs no plotting dependency.

Usage:
    python3 bench/plot.py              # plot bench/BENCH_*.json -> bench/plots/
    python3 bench/plot.py --check     # validate + dry-run render, write nothing
    python3 bench/plot.py --out DIR file.json ...

--check is the CI mode: it parses every file, renders every chart in memory
and fails loudly on malformed input, without touching the tree.
"""

import argparse
import glob
import json
import math
import os
import sys

PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
    "#9467bd", "#8c564b", "#17becf", "#7f7f7f",
]

W, H = 640, 400
ML, MR, MT, MB = 60, 20, 36, 46  # margins: left, right, top, bottom


def esc(s):
    return (str(s).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))


def nice_ticks(lo, hi, n=5):
    """Return ~n round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for m in (1, 2, 2.5, 5, 10):
        if raw <= m * mag:
            step = m * mag
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks


class Chart:
    """One SVG line chart. x positions are categorical (worker counts) by
    default; linear=True switches to a numeric x axis (time series, e.g.
    the robustness matrix's pending-vs-time traces)."""

    def __init__(self, title, xlabel, ylabel, xcats, linear=False):
        self.title, self.xlabel, self.ylabel = title, xlabel, ylabel
        self.xcats = xcats  # sorted distinct x values
        self.linear = linear
        self.series = []  # (name, color, [(x, y)])

    def add(self, name, points):
        color = PALETTE[len(self.series) % len(PALETTE)]
        self.series.append((name, color, points))

    def _xpos(self, x):
        if self.linear:
            lo, hi = self.xcats[0], self.xcats[-1]
            span = (hi - lo) or 1
            return ML + (W - ML - MR) * ((x - lo) / span)
        i = self.xcats.index(x)
        n = max(len(self.xcats) - 1, 1)
        return ML + (W - ML - MR) * (i / n if len(self.xcats) > 1 else 0.5)

    def _xticks(self):
        if not self.linear:
            return self.xcats
        lo, hi = self.xcats[0], self.xcats[-1]
        return [t for t in nice_ticks(lo, hi, 6) if lo <= t <= hi]

    def render(self):
        ymax = max((y for _, _, pts in self.series for _, y in pts), default=1.0)
        ticks = nice_ticks(0.0, ymax * 1.05)
        top = ticks[-1] if ticks else 1.0

        def ypos(v):
            return H - MB - (H - MB - MT) * (v / top if top else 0)

        out = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" '
            f'viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">',
            f'<rect width="{W}" height="{H}" fill="white"/>',
            f'<text x="{W/2}" y="20" text-anchor="middle" font-size="14">{esc(self.title)}</text>',
        ]
        for t in ticks:
            y = ypos(t)
            out.append(f'<line x1="{ML}" y1="{y:.1f}" x2="{W-MR}" y2="{y:.1f}" '
                       f'stroke="#ddd" stroke-width="1"/>')
            out.append(f'<text x="{ML-6}" y="{y+4:.1f}" text-anchor="end">{t:g}</text>')
        for x in self._xticks():
            px = self._xpos(x)
            out.append(f'<text x="{px:.1f}" y="{H-MB+16}" text-anchor="middle">{x:g}</text>')
        out.append(f'<line x1="{ML}" y1="{H-MB}" x2="{W-MR}" y2="{H-MB}" stroke="black"/>')
        out.append(f'<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{H-MB}" stroke="black"/>')
        out.append(f'<text x="{(ML+W-MR)/2}" y="{H-8}" text-anchor="middle">{esc(self.xlabel)}</text>')
        out.append(f'<text x="14" y="{(MT+H-MB)/2}" text-anchor="middle" '
                   f'transform="rotate(-90 14 {(MT+H-MB)/2})">{esc(self.ylabel)}</text>')
        for name, color, pts in self.series:
            coords = [(self._xpos(x), ypos(y)) for x, y in pts]
            path = " ".join(f"{px:.1f},{py:.1f}" for px, py in coords)
            out.append(f'<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
            for px, py in coords:
                out.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" fill="{color}"/>')
        ly = MT + 4
        for name, color, _ in self.series:
            out.append(f'<rect x="{W-MR-150}" y="{ly}" width="12" height="12" fill="{color}"/>')
            out.append(f'<text x="{W-MR-134}" y="{ly+10}">{esc(name)}</text>')
            ly += 16
        out.append("</svg>")
        return "\n".join(out)


def load(path):
    with open(path) as f:
        d = json.load(f)
    for key in ("experiment", "curves"):
        if key not in d:
            raise ValueError(f"{path}: missing {key!r}")
    if not d["curves"]:
        raise ValueError(f"{path}: no curves")
    for c in d["curves"]:
        if "scheme" not in c or not c.get("points"):
            raise ValueError(f"{path}: curve without scheme/points")
        for p in c["points"]:
            if "workers" not in p or "mops" not in p:
                raise ValueError(f"{path}: point without workers/mops in {c['scheme']}")
    return d


def charts_for(d):
    """Yield (suffix, Chart) pairs for one parsed BENCH JSON."""
    extra = d.get("extra") or {}
    if extra.get("series") == "pending_vs_time":
        # The robustness matrix re-purposes the envelope: workers carries
        # elapsed ms, mops carries the pending-node count, one curve per
        # scheme with a stalled reader. Numeric x axis, schemes the matrix
        # proved unbounded flagged in the legend.
        xvals = sorted({p["workers"] for c in d["curves"] for p in c["points"]})
        ch = Chart(f'{d["experiment"]}: pending garbage vs time, one reader stalled',
                   extra.get("x", "elapsed_ms"), extra.get("y", "pending_nodes"),
                   xvals, linear=True)
        for c in d["curves"]:
            pts = sorted((p["workers"], p["mops"]) for p in c["points"])
            label = c["scheme"]
            if extra.get("robust_" + c["scheme"]) == "false":
                label += " (unbounded)"
            ch.add(label, pts)
        yield "pending", ch
        return
    xcats = sorted({p["workers"] for c in d["curves"] for p in c["points"]})
    sub = f'{d.get("ds", "?")}, {d.get("update_pct", "?")}% updates, range {d.get("key_range", "?")}'
    thr = Chart(f'{d["experiment"]}: throughput ({sub})', "workers", "Mops/s", xcats)
    for c in d["curves"]:
        pts = sorted((p["workers"], p["mops"]) for p in c["points"])
        thr.add(c["scheme"], pts)
    yield "throughput", thr

    has_lat = any(p.get("lat_ops") for c in d["curves"] for p in c["points"])
    if has_lat:
        lat = Chart(f'{d["experiment"]}: latency ({sub})', "connections", "latency (us)", xcats)
        for c in d["curves"]:
            for q, label in (("p50_us", "p50"), ("p99_us", "p99"), ("p999_us", "p999")):
                pts = sorted((p["workers"], p.get(q, 0.0)) for p in c["points"] if p.get("lat_ops"))
                if pts:
                    lat.add(f'{c["scheme"]} {label}', pts)
        yield "latency", lat


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="BENCH_*.json files (default: bench/BENCH_*.json)")
    ap.add_argument("--check", action="store_true",
                    help="validate and dry-run render without writing anything")
    ap.add_argument("--out", default=None,
                    help="output directory (default: <dir of first input>/plots)")
    args = ap.parse_args(argv)

    files = args.files or sorted(glob.glob(os.path.join(os.path.dirname(__file__) or ".", "BENCH_*.json")))
    if not files:
        print("plot.py: no BENCH_*.json files found", file=sys.stderr)
        return 1

    outdir = args.out or os.path.join(os.path.dirname(files[0]) or ".", "plots")
    wrote = 0
    for path in files:
        try:
            d = load(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"plot.py: {e}", file=sys.stderr)
            return 1
        for suffix, chart in charts_for(d):
            svg = chart.render()  # render even under --check: malformed data fails here
            name = f'{d["experiment"]}_{suffix}.svg'
            if args.check:
                print(f"ok {path} -> {name} ({len(svg)} bytes, {len(chart.series)} series)")
            else:
                os.makedirs(outdir, exist_ok=True)
                dest = os.path.join(outdir, name)
                with open(dest, "w") as f:
                    f.write(svg)
                print(f"wrote {dest}")
                wrote += 1
    if args.check:
        print(f"plot.py --check: {len(files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
