package qsense

// The scheme×structure applicability matrix.
//
// Not every reclamation scheme can run every concurrent structure; the
// literature's tables (and this repo's harness) need the pairing to be a
// queried fact, not folklore. Two structure properties decide it:
//
//   - guarded traversal: every traversal hop publishes a protection
//     (Guard.Protect) and re-validates the link afterwards, Michael's
//     methodology. The pointer-based schemes — hp, cadence, qsense's
//     fallback path, rc — are sound only on structures that do this;
//     a wait-free read path that chases links without protecting them
//     (HHS-style lists, trees with wait-free get) cannot run them.
//   - transient-read tolerance: a reader may still dereference a node
//     after it has been retired (but before it is freed) and must get
//     garbage-but-harmless behaviour, never corruption. ibr requires
//     this — a reservation keeps retired nodes mapped rather than
//     keeping them unretired. Structures over this library's Pool get
//     the mapped-until-freed part for free (a Ref resolves until Free);
//     what the structure must add is that its traversal checks marks /
//     re-validates rather than trusting a retired node's links.
//
// The epoch and handoff schemes (qsbr, ebr, hyaline) and the leaky
// baseline (none) place no structural requirement: they only need Begin
// at the operation boundary.
//
// All seven current containers do guarded traversal and tolerate
// transient reads, so today's matrix is all-true — the planned
// wait-free-read variants (see ROADMAP) will be the first rows with
// false entries under the pointer-based schemes. TestApplicability keeps
// the table honest by running every true pairing.

// structureTraits are the two properties of a container the matrix is
// derived from.
type structureTraits struct {
	guardedTraversal       bool // every hop Protect-ed and re-validated
	toleratesTransientRead bool // dereferencing retired-unfreed nodes is safe
}

// containerTraits lists every public container kind. Key names follow the
// constructors (and, for the harness's four, its DataStructures naming).
var containerTraits = map[string]structureTraits{
	"list":     {guardedTraversal: true, toleratesTransientRead: true}, // NewSet (Harris–Michael list)
	"skiplist": {guardedTraversal: true, toleratesTransientRead: true}, // NewSkipSet (Fraser skip list)
	"bst":      {guardedTraversal: true, toleratesTransientRead: true}, // NewTreeSet (Natarajan–Mittal)
	"hashmap":  {guardedTraversal: true, toleratesTransientRead: true}, // NewHashSet (Michael hash table)
	"skipmap":  {guardedTraversal: true, toleratesTransientRead: true}, // NewSkipMap (skip list + value word)
	"queue":    {guardedTraversal: true, toleratesTransientRead: true}, // NewQueue (Michael–Scott)
	"stack":    {guardedTraversal: true, toleratesTransientRead: true}, // NewStack (Treiber)
}

// runnable applies the scheme's structural requirement to the traits.
func runnable(s Scheme, t structureTraits) bool {
	switch s {
	case SchemeHP, SchemeCadence, SchemeQSense, SchemeRC:
		// Per-pointer protection schemes (qsense via its fallback path).
		return t.guardedTraversal
	case SchemeIBR:
		return t.toleratesTransientRead
	default: // qsbr, ebr, hyaline, none: Begin-only, no requirement.
		return true
	}
}

// Structures returns the container kinds Applicability reports on, in the
// library's canonical order: the harness's four set structures first, then
// the map and value containers.
func Structures() []string {
	return []string{"list", "skiplist", "bst", "hashmap", "skipmap", "queue", "stack"}
}

// Applicability returns the scheme×structure matrix: for every container
// kind (Structures) and every scheme (SchemeNames), whether the pairing
// is sound. The harness consults it before building a run and README's
// scheme table renders it; the matrix is derived from per-structure
// traversal properties (see the file comment), so a new container states
// its two traits and every scheme row follows.
func Applicability() map[string]map[Scheme]bool {
	m := make(map[string]map[Scheme]bool, len(containerTraits))
	for ds, t := range containerTraits {
		row := make(map[Scheme]bool, len(SchemeNames()))
		for _, s := range SchemeNames() {
			row[Scheme(s)] = runnable(Scheme(s), t)
		}
		m[ds] = row
	}
	return m
}

// Applicable reports whether scheme can run structure ds (false also for
// unknown ds — callers validate names against Structures).
func Applicable(scheme Scheme, ds string) bool {
	t, ok := containerTraits[ds]
	return ok && runnable(scheme, t)
}
