package qsense_test

import (
	"fmt"
	"sync"
	"testing"

	"qsense"
	"qsense/internal/sim/simexp"
	"qsense/internal/sim/simsmr"
)

// --- simulated-figure benchmarks (cycle domain) ---
//
// These are the TSO-machine counterparts of BenchmarkFig3/Fig5Top/
// Fig5Bottom: the same experiments executed on internal/sim, where fences
// cost explicit cycles and results are deterministic. The interesting
// metric is ops/Mcycle (simulated throughput); wall-clock ns/op only
// measures the simulator itself.

func runSimPoint(b *testing.B, cfg simexp.Config) {
	b.Helper()
	res := simexp.Run(cfg)
	if len(res.Errs) != 0 {
		b.Fatalf("simulated run faulted: %v", res.Errs)
	}
	for i := 0; i < b.N; i++ { // result comes from the fixed-length run above
	}
	b.ReportMetric(res.OpsPerMcycle, "ops/Mcycle")
	b.ReportMetric(float64(res.Machine.Fences), "fences")
	if res.Failed {
		b.ReportMetric(0, "survived")
	} else {
		b.ReportMetric(1, "survived")
	}
}

// BenchmarkSimFig3 regenerates Figure 3 in the cycle domain: list with 10%
// updates, none vs qsense vs hp, sweeping procs.
func BenchmarkSimFig3(b *testing.B) {
	for _, scheme := range []string{"none", "qsense", "hp"} {
		for _, procs := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", scheme, procs), func(b *testing.B) {
				runSimPoint(b, simexp.Config{
					Scheme: scheme, Procs: procs, KeyRange: 256,
					UpdatePct: 10, Duration: 2_000_000, Seed: uint64(procs),
				})
			})
		}
	}
}

// BenchmarkSimFig5Top regenerates one Figure 5 (top) panel in the cycle
// domain: 50% updates, all four schemes.
func BenchmarkSimFig5Top(b *testing.B) {
	for _, scheme := range []string{"none", "qsbr", "qsense", "hp"} {
		for _, procs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", scheme, procs), func(b *testing.B) {
				runSimPoint(b, simexp.Config{
					Scheme: scheme, Procs: procs, KeyRange: 256,
					UpdatePct: 50, Duration: 2_000_000, Seed: uint64(procs),
				})
			})
		}
	}
}

// BenchmarkSimFig5Bottom regenerates the path-switching experiment in the
// cycle domain (cmd/qsense-sim -exp fig5bottom runs the full series):
// qsbr's survived metric is 0, qsense switches and survives.
func BenchmarkSimFig5Bottom(b *testing.B) {
	for _, scheme := range []string{"qsbr", "qsense", "hp"} {
		b.Run(scheme, func(b *testing.B) {
			base, _ := simexp.Fig5Bottom(64, 8_000_000)
			base.Scheme = scheme
			base.Seed = 19
			base.MemoryLimit = 320
			base.SMR = func(c *simsmr.Config) {
				c.Q = 8
				c.R = 24
				c.C = 32
				c.PresenceWindow = 50_000
			}
			res := simexp.Run(base)
			if len(res.Errs) != 0 {
				b.Fatal(res.Errs)
			}
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(res.OpsPerMcycle, "ops/Mcycle")
			if res.Failed {
				b.ReportMetric(0, "survived")
			} else {
				b.ReportMetric(1, "survived")
			}
			b.ReportMetric(float64(res.Reclaim.SwitchesToFallback), "fallbacks")
		})
	}
}

// BenchmarkSimRoosterSweep is the T ablation in the cycle domain: larger
// rooster intervals cost less preemption overhead but stretch the
// deferred-reclamation memory floor (MaxPending rises with T) — the
// Property 2 trade-off measured.
func BenchmarkSimRoosterSweep(b *testing.B) {
	for _, t := range []uint64{25_000, 50_000, 100_000, 400_000} {
		b.Run(fmt.Sprintf("T=%dk", t/1000), func(b *testing.B) {
			res := simexp.Run(simexp.Config{
				Scheme: "cadence", Procs: 4, KeyRange: 64, UpdatePct: 50,
				Duration: 2_000_000, Seed: 3, RoosterInterval: t,
				SampleCycles: 100_000,
			})
			if len(res.Errs) != 0 {
				b.Fatal(res.Errs)
			}
			for i := 0; i < b.N; i++ {
			}
			peak := 0
			for _, bk := range res.Buckets {
				if bk.MaxPending > peak {
					peak = bk.MaxPending
				}
			}
			b.ReportMetric(res.OpsPerMcycle, "ops/Mcycle")
			b.ReportMetric(float64(peak), "peak-pending")
		})
	}
}

// --- public-API container benchmarks ---

// benchContainer drives W workers over a container op loop and reports
// wall-clock throughput.
func benchContainer(b *testing.B, workers int, run func(w, n int)) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run(w, per)
		}(w)
	}
	wg.Wait()
}

// BenchmarkQueueThroughput: enqueue+dequeue pairs per scheme (2 workers).
func BenchmarkQueueThroughput(b *testing.B) {
	for _, scheme := range []qsense.Scheme{qsense.SchemeQSense, qsense.SchemeQSBR, qsense.SchemeHP, qsense.SchemeEBR, qsense.SchemeRC} {
		b.Run(string(scheme), func(b *testing.B) {
			q, err := qsense.NewQueue(qsense.Options{Workers: 2, Scheme: scheme})
			if err != nil {
				b.Fatal(err)
			}
			defer q.Close()
			benchContainer(b, 2, func(w, n int) {
				h := q.Handle(w)
				for i := 0; i < n; i++ {
					h.Enqueue(uint64(i))
					h.Dequeue()
				}
			})
		})
	}
}

// BenchmarkStackThroughput: push+pop pairs per scheme (2 workers).
func BenchmarkStackThroughput(b *testing.B) {
	for _, scheme := range []qsense.Scheme{qsense.SchemeQSense, qsense.SchemeQSBR, qsense.SchemeHP, qsense.SchemeEBR, qsense.SchemeRC} {
		b.Run(string(scheme), func(b *testing.B) {
			s, err := qsense.NewStack(qsense.Options{Workers: 2, Scheme: scheme})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			benchContainer(b, 2, func(w, n int) {
				h := s.Handle(w)
				for i := 0; i < n; i++ {
					h.Push(uint64(i))
					h.Pop()
				}
			})
		})
	}
}

// BenchmarkSetTraversalBySchemes: the related-work ladder on one list
// point (2 workers, paper key range, 10% updates): rc's two RMWs per node
// sit below hp's fence, which sits below the epoch schemes — §8's cost
// ranking, measured.
func BenchmarkSetTraversalBySchemes(b *testing.B) {
	for _, scheme := range []qsense.Scheme{qsense.SchemeNone, qsense.SchemeQSBR, qsense.SchemeEBR, qsense.SchemeQSense, qsense.SchemeHP, qsense.SchemeRC} {
		b.Run(string(scheme), func(b *testing.B) {
			set, err := qsense.NewSet(qsense.Options{Workers: 2, Scheme: scheme})
			if err != nil {
				b.Fatal(err)
			}
			defer set.Close()
			h0 := set.Handle(0)
			for k := int64(0); k < 2000; k += 2 {
				h0.Insert(k)
			}
			benchContainer(b, 2, func(w, n int) {
				h := set.Handle(w)
				rng := uint64(w)*0x9E3779B9 + 1
				for i := 0; i < n; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					k := int64(rng>>33) % 2000
					switch {
					case rng%100 < 5:
						h.Insert(k)
					case rng%100 < 10:
						h.Delete(k)
					default:
						h.Contains(k)
					}
				}
			})
		})
	}
}
