# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race vet bench-smoke plots plots-check clean-plots

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Render the committed perf trajectory (bench/BENCH_*.json) as SVG curves
# under bench/plots/. Stdlib-only python3; plots-check is the CI dry-run.
plots:
	python3 bench/plot.py

plots-check:
	python3 bench/plot.py --check

clean-plots:
	rm -rf bench/plots
