// Package qsense is the public API of the QSense reproduction: fast and
// robust safe memory reclamation (SMR) for concurrent data structures, after
// Balmau, Guerraoui, Herlihy and Zablotchi, "Fast and Robust Memory
// Reclamation for Concurrent Data Structures" (SPAA 2016).
//
// Two levels of API are offered.
//
// # Ready-made containers
//
// Six lock-free containers arrive pre-wired to a reclamation domain: NewSet
// (Harris–Michael sorted linked list), NewSkipSet (Fraser skip list),
// NewTreeSet (Natarajan–Mittal external BST), NewHashSet (Michael hash
// table), NewQueue (Michael–Scott FIFO) and NewStack (Treiber LIFO). Each
// worker goroutine takes one Handle and uses it exclusively:
//
//	set := qsense.NewSet(qsense.Options{Workers: 8})
//	defer set.Close()
//	// per worker w:
//	h := set.Handle(w)
//	h.Insert(42)
//	h.Contains(42)
//	h.Delete(42)
//
// # Custom structures
//
// A structure of your own allocates nodes from a Pool (generation-tagged
// handles instead of raw pointers — a stale handle is detected, not
// silently wrong), binds a Domain with NewDomain, and places the paper's
// three calls (§4.2): Guard.Begin where the worker holds no shared
// references, Guard.Protect before using a loaded reference (re-validate
// the link afterwards, per Michael's methodology), Guard.Retire where a
// sequential program would call free. See examples/workqueue for a
// complete custom integration.
//
// # Schemes
//
// The reclamation scheme is selected per domain via Options.Scheme:
// SchemeQSense (default — QSBR fast path, Cadence fallback under process
// delays), SchemeQSBR, SchemeHP, SchemeCadence, SchemeNone, and the
// related-work baselines SchemeEBR and SchemeRC. All containers and the
// custom-structure API are scheme-agnostic.
package qsense

import (
	"time"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

// Scheme selects a reclamation algorithm.
type Scheme string

// The available reclamation schemes.
const (
	// SchemeQSense is the paper's hybrid: QSBR in the common case,
	// Cadence (fence-free hazard pointers) under prolonged delays.
	SchemeQSense Scheme = "qsense"
	// SchemeQSBR is quiescent-state-based reclamation: fastest, but one
	// delayed worker blocks reclamation system-wide.
	SchemeQSBR Scheme = "qsbr"
	// SchemeHP is Michael's hazard pointers: robust, fence per node.
	SchemeHP Scheme = "hp"
	// SchemeCadence is the paper's fence-free hazard pointer variant,
	// stand-alone.
	SchemeCadence Scheme = "cadence"
	// SchemeEBR is Fraser-style epoch-based reclamation.
	SchemeEBR Scheme = "ebr"
	// SchemeRC is lock-free reference counting (two RMWs per node).
	SchemeRC Scheme = "rc"
	// SchemeNone leaks: the evaluation baseline, not for production.
	SchemeNone Scheme = "none"
)

// Options configures a container or a custom Domain. The zero value means
// one worker under SchemeQSense with library defaults.
type Options struct {
	// Workers is the fixed number of worker goroutines that will hold
	// handles/guards. Default 1.
	Workers int
	// Scheme is the reclamation algorithm. Default SchemeQSense.
	Scheme Scheme
	// HPs is the number of hazard pointer slots per worker. Containers
	// set it themselves; custom domains must set it to the maximum
	// number of references a worker protects simultaneously.
	HPs int
	// Q is the quiescence threshold (reclamation work runs once per Q
	// operations on the epoch-based paths). 0 = default.
	Q int
	// R is the scan threshold for the pointer-based paths. 0 = default.
	R int
	// C is QSense's fallback trigger: a worker holding C retired-but-
	// unreclaimed nodes raises the fallback flag. 0 = default (a legal
	// value per the paper's §6.2).
	C int
	// MemoryLimit, when > 0, marks the domain Failed once more retired
	// nodes than this await reclamation (out-of-memory emulation for
	// experiments; leave 0 in applications).
	MemoryLimit int
	// RoosterInterval is the rooster period T (Cadence/QSense). 0 =
	// default (2ms).
	RoosterInterval time.Duration
	// MaxNodes bounds a container's node pool. 0 = default.
	MaxNodes int
}

func (o Options) reclaimConfig(hps int, free func(mem.Ref)) reclaim.Config {
	if o.HPs > hps {
		hps = o.HPs
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 1
	}
	return reclaim.Config{
		Workers:     workers,
		HPs:         hps,
		Free:        free,
		Q:           o.Q,
		R:           o.R,
		C:           o.C,
		MemoryLimit: o.MemoryLimit,
		Rooster:     rooster.Config{Interval: o.RoosterInterval},
	}
}

func (o Options) scheme() string {
	if o.Scheme == "" {
		return string(SchemeQSense)
	}
	return string(o.Scheme)
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// Stats is a snapshot of a domain's reclamation counters.
type Stats struct {
	Scheme string
	// Retired counts nodes handed to Retire; Freed counts completed
	// frees; Pending is the difference (nodes awaiting reclamation).
	Retired, Freed uint64
	Pending        int64
	// Scans counts hazard pointer scans; QuiescentStates and
	// EpochAdvances count epoch machinery activity.
	Scans, QuiescentStates, EpochAdvances uint64
	// SwitchesToFallback/SwitchesToFast count QSense path switches;
	// InFallback is the current path.
	SwitchesToFallback, SwitchesToFast uint64
	InFallback                         bool
	// Failed reports a MemoryLimit breach.
	Failed bool
}

func fromReclaimStats(s reclaim.Stats) Stats {
	return Stats{
		Scheme:             s.Scheme,
		Retired:            s.Retired,
		Freed:              s.Freed,
		Pending:            s.Pending,
		Scans:              s.Scans,
		QuiescentStates:    s.QuiescentStates,
		EpochAdvances:      s.EpochAdvances,
		SwitchesToFallback: s.SwitchesToFallback,
		SwitchesToFast:     s.SwitchesToFast,
		InFallback:         s.InFallback,
		Failed:             s.Failed,
	}
}
