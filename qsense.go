// Package qsense is the public API of the QSense reproduction: fast and
// robust safe memory reclamation (SMR) for concurrent data structures, after
// Balmau, Guerraoui, Herlihy and Zablotchi, "Fast and Robust Memory
// Reclamation for Concurrent Data Structures" (SPAA 2016).
//
// Two levels of API are offered.
//
// # Ready-made containers
//
// Six lock-free containers arrive pre-wired to a reclamation domain: NewSet
// (Harris–Michael sorted linked list), NewSkipSet (Fraser skip list),
// NewTreeSet (Natarajan–Mittal external BST), NewHashSet (Michael hash
// table), NewQueue (Michael–Scott FIFO) and NewStack (Treiber LIFO). A
// goroutine leases a handle with Acquire, uses it exclusively, and returns
// it with Release — any number of goroutines may come and go, with up to
// Options.MaxWorkers leases live at once:
//
//	set, err := qsense.NewSet(qsense.Options{})
//	if err != nil {
//		// a misconfigured Options (e.g. an illegal QSense C) fails here
//	}
//	defer set.Close()
//	// in any goroutine (a request handler, a worker, ...):
//	h, err := set.AcquireWait(ctx) // blocks while every slot is leased
//	if err != nil {
//		// only when ctx ended first; the non-blocking Acquire returns
//		// ErrNoSlots instead, for callers that would rather shed load
//	}
//	defer h.Release()
//	h.Insert(42)
//	h.Contains(42)
//	h.Delete(42)
//
// Release returns the slot immediately; retired nodes whose grace period
// has not yet elapsed move to the domain's orphan list and are freed by
// other workers' reclamation passes (Stats.OrphanedNodes/AdoptedNodes), so
// a slot that never re-leases strands no memory.
//
// The positional Handle(w) accessor from the fixed-worker API survives as a
// deprecated shim: it pins slot w permanently, which the experiment harness
// uses to keep worker↔slot assignment deterministic.
//
// # Custom structures
//
// A structure of your own allocates nodes from a Pool (generation-tagged
// handles instead of raw pointers — a stale handle is detected, not
// silently wrong), binds a Domain with NewDomain, and leases a Guard per
// goroutine with Domain.Acquire / Guard.Release. Between Acquire and
// Release, place the paper's three calls (§4.2): Guard.Begin where the
// worker holds no shared references, Guard.Protect before using a loaded
// reference (re-validate the link afterwards, per Michael's methodology),
// Guard.Retire where a sequential program would call free. See
// examples/workqueue for a complete custom integration.
//
// # Schemes
//
// The reclamation scheme is selected per domain via Options.Scheme:
// SchemeQSense (default — QSBR fast path, Cadence fallback under process
// delays), SchemeQSBR, SchemeHP, SchemeCadence, SchemeNone, and the
// related-work baselines SchemeEBR and SchemeRC. All containers and the
// custom-structure API are scheme-agnostic.
package qsense

import (
	"runtime"
	"time"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

// ErrNoSlots is returned by the Acquire methods when every guard slot is
// leased or pinned. Callers can retry once another goroutine Releases, or
// construct the domain/container with a larger Options.MaxWorkers.
var ErrNoSlots = reclaim.ErrNoSlots

// Scheme selects a reclamation algorithm.
type Scheme string

// The available reclamation schemes.
const (
	// SchemeQSense is the paper's hybrid: QSBR in the common case,
	// Cadence (fence-free hazard pointers) under prolonged delays.
	SchemeQSense Scheme = "qsense"
	// SchemeQSBR is quiescent-state-based reclamation: fastest, but one
	// delayed worker blocks reclamation system-wide.
	SchemeQSBR Scheme = "qsbr"
	// SchemeHP is Michael's hazard pointers: robust, fence per node.
	SchemeHP Scheme = "hp"
	// SchemeCadence is the paper's fence-free hazard pointer variant,
	// stand-alone.
	SchemeCadence Scheme = "cadence"
	// SchemeEBR is Fraser-style epoch-based reclamation.
	SchemeEBR Scheme = "ebr"
	// SchemeRC is lock-free reference counting (two RMWs per node).
	SchemeRC Scheme = "rc"
	// SchemeNone leaks: the evaluation baseline, not for production.
	SchemeNone Scheme = "none"
)

// Options configures a container or a custom Domain. The zero value means
// SchemeQSense with library defaults and a slot arena sized for the
// machine (2×GOMAXPROCS concurrent leases).
type Options struct {
	// MaxWorkers is the guard-slot arena size: the maximum number of
	// simultaneously leased handles/guards. It bounds concurrency, not
	// population — any number of goroutines may share the arena through
	// Acquire/Release over time. Default 2*runtime.GOMAXPROCS(0) (or
	// Workers, if that is larger).
	MaxWorkers int
	// Workers is the fixed worker count of the pre-leasing API.
	//
	// Deprecated: the positional Handle(w)/Guard(w) accessors it sizes
	// survive only as a pinning shim. New code should leave it zero and
	// use Acquire/Release under MaxWorkers.
	Workers int
	// Scheme is the reclamation algorithm. Default SchemeQSense.
	Scheme Scheme
	// HPs is the number of hazard pointer slots per worker. Containers
	// set it themselves; custom domains must set it to the maximum
	// number of references a worker protects simultaneously.
	HPs int
	// Q is the quiescence threshold (reclamation work runs once per Q
	// operations on the epoch-based paths). 0 = default.
	Q int
	// R is the scan threshold for the pointer-based paths. 0 = default.
	R int
	// C is QSense's fallback trigger: a worker holding C retired-but-
	// unreclaimed nodes raises the fallback flag. 0 = default (a legal
	// value per the paper's §6.2).
	C int
	// MemoryLimit, when > 0, marks the domain Failed once more retired
	// nodes than this await reclamation (out-of-memory emulation for
	// experiments; leave 0 in applications).
	MemoryLimit int
	// RoosterInterval is the rooster period T (Cadence/QSense). 0 =
	// default (2ms).
	RoosterInterval time.Duration
	// MaxNodes bounds a container's node pool. 0 = default.
	MaxNodes int
}

func (o Options) reclaimConfig(hps int, free func(mem.Ref)) reclaim.Config {
	if o.HPs > hps {
		hps = o.HPs
	}
	return reclaim.Config{
		Workers:     o.arena(),
		HPs:         hps,
		Free:        free,
		Q:           o.Q,
		R:           o.R,
		C:           o.C,
		MemoryLimit: o.MemoryLimit,
		Rooster:     rooster.Config{Interval: o.RoosterInterval},
	}
}

func (o Options) scheme() string {
	if o.Scheme == "" {
		return string(SchemeQSense)
	}
	return string(o.Scheme)
}

// arena is the guard-slot arena size: MaxWorkers, stretched to cover any
// deprecated fixed Workers count so positional handles stay in range.
func (o Options) arena() int {
	n := o.MaxWorkers
	if o.Workers > n {
		n = o.Workers
	}
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
	}
	return n
}

// Stats is a snapshot of a domain's reclamation counters.
type Stats struct {
	Scheme string
	// Retired counts nodes handed to Retire; Freed counts completed
	// frees; Pending is the difference (nodes awaiting reclamation).
	Retired, Freed uint64
	Pending        int64
	// Scans counts hazard pointer scans; QuiescentStates and
	// EpochAdvances count epoch machinery activity.
	Scans, QuiescentStates, EpochAdvances uint64
	// SwitchesToFallback/SwitchesToFast count QSense path switches;
	// InFallback is the current path.
	SwitchesToFallback, SwitchesToFast uint64
	InFallback                         bool
	// Evictions counts workers excluded as crashed (Options with
	// eviction enabled on epoch schemes); Rejoins counts Leave/Join and
	// crash-recovery re-entries.
	Evictions, Rejoins uint64
	// AcquiredHandles and ReleasedHandles count handle leases granted
	// and returned; their difference is the number leased right now.
	AcquiredHandles, ReleasedHandles uint64
	// OrphanedNodes counts retired nodes a Release could not yet prove
	// safe and moved to the domain's orphan list; AdoptedNodes counts
	// orphans since freed by other workers' reclamation passes. Orphans
	// remain Pending (and count against MemoryLimit) until adopted.
	OrphanedNodes, AdoptedNodes uint64
	// RoosterPasses counts completed rooster flush passes (Cadence,
	// QSense).
	RoosterPasses uint64
	// Failed reports a MemoryLimit breach.
	Failed bool
}

func fromReclaimStats(s reclaim.Stats) Stats {
	return Stats{
		Scheme:             s.Scheme,
		Retired:            s.Retired,
		Freed:              s.Freed,
		Pending:            s.Pending,
		Scans:              s.Scans,
		QuiescentStates:    s.QuiescentStates,
		EpochAdvances:      s.EpochAdvances,
		SwitchesToFallback: s.SwitchesToFallback,
		SwitchesToFast:     s.SwitchesToFast,
		InFallback:         s.InFallback,
		Evictions:          s.Evictions,
		Rejoins:            s.Rejoins,
		AcquiredHandles:    s.AcquiredHandles,
		ReleasedHandles:    s.ReleasedHandles,
		OrphanedNodes:      s.OrphanedNodes,
		AdoptedNodes:       s.AdoptedNodes,
		RoosterPasses:      s.RoosterPasses,
		Failed:             s.Failed,
	}
}
