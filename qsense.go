// Package qsense is the public API of the QSense reproduction: fast and
// robust safe memory reclamation (SMR) for concurrent data structures, after
// Balmau, Guerraoui, Herlihy and Zablotchi, "Fast and Robust Memory
// Reclamation for Concurrent Data Structures" (SPAA 2016).
//
// Two levels of API are offered.
//
// # Ready-made containers
//
// Seven lock-free containers arrive pre-wired to a reclamation domain:
// NewSet (Harris–Michael sorted linked list), NewSkipSet (Fraser skip
// list), NewTreeSet (Natarajan–Mittal external BST), NewHashSet (Michael
// hash table), NewQueue (Michael–Scott FIFO), NewStack (Treiber LIFO) and
// NewSkipMap (the skip list with a per-node value word — the key→value map
// cmd/qsense-kvd serves over TCP). A
// goroutine leases a handle with Acquire, uses it exclusively, and returns
// it with Release — any number of goroutines may come and go:
//
//	set, err := qsense.NewSet(qsense.Options{})
//	if err != nil {
//		// a misconfigured Options (e.g. an illegal QSense C) fails here
//	}
//	defer set.Close()
//	// in any goroutine (a request handler, a worker, ...):
//	h, err := set.Acquire() // grows the guard arena on demand; no sizing guess
//	if err != nil {
//		// only with Options.HardMaxWorkers set (backpressure); see below
//	}
//	defer h.Release()
//	h.Insert(42)
//	h.Contains(42)
//	h.Delete(42)
//
// # Capacity model
//
// Options.MaxWorkers is only the arena's initial (soft) size: when more
// goroutines lease simultaneously, the domain grows its guard arena by
// publish-once segments — Acquire succeeds instead of failing, so a
// goroutine-per-request server needs no worker-count guess. Callers that
// WANT admission control set Options.HardMaxWorkers: at that many live
// leases Acquire returns ErrNoSlots (shed load) and AcquireWait blocks
// until a Release (queue load) — the only configurations in which
// AcquireWait still matters. Stats reports the subsystem's behaviour:
// ArenaSize, HighWaterWorkers, ArenaGrowths.
//
// Reclamation cost tracks LIVE occupancy, not the arena's high-water size:
// every internal pass (hazard pointer scans, epoch advances, flush passes)
// iterates an occupancy index of the currently leased slots, and once a
// burst drains, all-free trailing capacity is parked — skipped by every
// pass outright — and silently reused before the arena ever grows again
// (Stats.ParkedSlots/SegmentParks/SegmentUnparks). The scan and fallback
// thresholds likewise re-tune to the live worker count at capacity
// transitions (Stats.RRetunes/CRetunes), so a domain that grew to 10,000
// workers and shrank back to 8 behaves — and costs — like an 8-worker
// domain.
//
// Release returns the slot immediately; retired nodes whose grace period
// has not yet elapsed move to the domain's orphan list and are freed by
// other workers' reclamation passes (Stats.OrphanedNodes/AdoptedNodes), so
// a slot that never re-leases strands no memory.
//
// # Sharding
//
// The domain core — slot pool, orphan list, retire tallies, flush target —
// is split into Options.Shards independent units (default min(GOMAXPROCS,
// 8), override with the QSENSE_SHARDS environment variable), so concurrent
// Acquire/Release traffic does not serialize on one freelist head and one
// orphan-list CAS. Acquire picks a shard by power-of-two-choices over live
// occupancy and steals a free slot from a sibling shard before growing the
// arena; Release hands any stranded backlog to the releasing slot's own
// shard in a single batch. Reclamation passes walk shards independently
// and skip idle or fully-parked shards on one atomic load each, so the
// cost model above is per shard: a domain with one busy shard and seven
// idle ones scans like a domain one-eighth the size. Shards = 1 is exactly
// the unsharded behaviour. Stats.Shards reports the resolved count and
// Stats.ShardImbalance the live-occupancy spread (max−min) across shards.
//
// The positional Handle(w) accessor from the fixed-worker API survives as a
// deprecated shim: it pins slot w permanently, which the experiment harness
// uses to keep worker↔slot assignment deterministic.
//
// # Custom structures
//
// A structure of your own allocates nodes from a Pool (generation-tagged
// handles instead of raw pointers — a stale handle is detected, not
// silently wrong), binds a Domain with NewDomain, and leases a Guard per
// goroutine with Domain.Acquire / Guard.Release. Between Acquire and
// Release, place the paper's three calls (§4.2): Guard.Begin where the
// worker holds no shared references, Guard.Protect before using a loaded
// reference (re-validate the link afterwards, per Michael's methodology),
// Guard.Retire where a sequential program would call free. See
// examples/workqueue for a complete custom integration.
//
// # Schemes
//
// The reclamation scheme is selected per domain via Options.Scheme:
// SchemeQSense (default — QSBR fast path, Cadence fallback under process
// delays), SchemeQSBR, SchemeHP, SchemeCadence, SchemeNone, and the
// related-work baselines SchemeEBR, SchemeRC, SchemeIBR (interval-based
// reclamation: per-node birth/retire era stamps against per-worker
// reservation intervals — robustness without per-pointer protection) and
// SchemeHyaline (snapshot-free batch handoff: each retire batch carries a
// reference counter seeded from the active workers it was delivered to,
// and the last acknowledger frees the whole batch). ParseScheme validates
// a scheme name from flags or config; SchemeNames lists the valid names.
// All containers and the custom-structure API are scheme-agnostic —
// Applicability reports the full scheme×structure matrix and why each
// pairing holds.
package qsense

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

// ErrNoSlots is returned by the Acquire methods only when the domain was
// built with Options.HardMaxWorkers and the arena has grown to that cap
// with every guard slot leased or pinned. By default domains are elastic —
// the arena grows on demand and Acquire does not fail. Callers at a hard
// cap can block with AcquireWait, retry once another goroutine Releases,
// or construct the domain/container with a larger (or no) cap.
var ErrNoSlots = reclaim.ErrNoSlots

// Scheme selects a reclamation algorithm.
type Scheme string

// The available reclamation schemes.
const (
	// SchemeQSense is the paper's hybrid: QSBR in the common case,
	// Cadence (fence-free hazard pointers) under prolonged delays.
	SchemeQSense Scheme = "qsense"
	// SchemeQSBR is quiescent-state-based reclamation: fastest, but one
	// delayed worker blocks reclamation system-wide.
	SchemeQSBR Scheme = "qsbr"
	// SchemeHP is Michael's hazard pointers: robust, fence per node.
	SchemeHP Scheme = "hp"
	// SchemeCadence is the paper's fence-free hazard pointer variant,
	// stand-alone.
	SchemeCadence Scheme = "cadence"
	// SchemeEBR is Fraser-style epoch-based reclamation.
	SchemeEBR Scheme = "ebr"
	// SchemeRC is lock-free reference counting (two RMWs per node).
	SchemeRC Scheme = "rc"
	// SchemeIBR is interval-based reclamation (2GE-IBR): nodes carry
	// birth/retire era stamps, workers reserve the era interval their
	// operation spans, and a node frees once its lifetime misses every
	// reservation — epoch-class read cost with HP-class robustness.
	SchemeIBR Scheme = "ibr"
	// SchemeHyaline is snapshot-free batch-handoff reclamation: a retire
	// batch is delivered to every active worker's inbox with a reference
	// count, each worker acknowledges at its next operation boundary, and
	// the last acknowledgment frees the batch — no scans, no epochs.
	SchemeHyaline Scheme = "hyaline"
	// SchemeNone leaks: the evaluation baseline, not for production.
	SchemeNone Scheme = "none"
)

// SchemeNames returns the valid Options.Scheme values, in the library's
// canonical order — the single source binaries should range over for flag
// validation and scheme sweeps instead of hard-coding the list.
func SchemeNames() []string { return reclaim.Schemes() }

// ParseScheme validates a scheme name from a flag, a config file or an
// environment variable. The error lists the valid names.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range reclaim.Schemes() {
		if name == s {
			return Scheme(s), nil
		}
	}
	return "", fmt.Errorf("qsense: unknown scheme %q (valid: %s)", name, strings.Join(reclaim.Schemes(), ", "))
}

// Options configures a container or a custom Domain. The zero value means
// SchemeQSense with library defaults and an elastic slot arena that starts
// sized for the machine (2×GOMAXPROCS) and grows on demand — Acquire does
// not fail, however many goroutines lease at once.
type Options struct {
	// MaxWorkers is the INITIAL guard-slot arena size: how many
	// simultaneous leases the domain accommodates before it grows, and
	// the grain by which growth doubles capacity. It is a soft size — a
	// burst of goroutines beyond it makes the arena grow (by publish-once
	// slot segments; existing guards never move) rather than fail; set
	// HardMaxWorkers to bound that growth. Default
	// 2*runtime.GOMAXPROCS(0) (or Workers, if that is larger).
	MaxWorkers int
	// HardMaxWorkers, when > 0, caps arena growth: once the arena holds
	// this many slots and all are leased, Acquire returns ErrNoSlots and
	// AcquireWait blocks until a Release — the backpressure semantics for
	// callers that would rather shed or queue load than admit it. 0 (the
	// default) means elastic: growth up to a large library ceiling, and
	// Acquire effectively never fails. A cap below the initial size
	// lowers the initial size to the cap — except below a deprecated
	// fixed Workers count, which raises the cap instead so positional
	// handles stay in range.
	HardMaxWorkers int
	// Workers is the fixed worker count of the pre-leasing API.
	//
	// Deprecated: the positional Handle(w)/Guard(w) accessors it sizes
	// survive only as a pinning shim. New code should leave it zero and
	// use Acquire/Release under MaxWorkers.
	Workers int
	// Scheme is the reclamation algorithm. Default SchemeQSense.
	Scheme Scheme
	// HPs is the number of hazard pointer slots per worker. Containers
	// set it themselves; custom domains must set it to the maximum
	// number of references a worker protects simultaneously.
	HPs int
	// Q is the quiescence threshold (reclamation work runs once per Q
	// operations on the epoch-based paths). 0 = default.
	Q int
	// R is the scan threshold for the pointer-based paths. 0 = default.
	R int
	// C is QSense's fallback trigger: a worker holding C retired-but-
	// unreclaimed nodes raises the fallback flag. 0 = default (a legal
	// value per the paper's §6.2).
	C int
	// MemoryLimit, when > 0, marks the domain Failed once more retired
	// nodes than this await reclamation (out-of-memory emulation for
	// experiments; leave 0 in applications).
	MemoryLimit int
	// RoosterInterval is the rooster period T (Cadence/QSense). 0 =
	// default (2ms).
	RoosterInterval time.Duration
	// EvictAfter enables crashed-worker eviction on the epoch-based
	// schemes: a handle that has not passed a quiescent state for this
	// long is treated as crashed and excluded from grace periods (QSense
	// §5.2's sketched extension; surfaces as Stats.Evictions). 0 disables
	// eviction — a stalled-but-alive reader then blocks the epoch schemes
	// indefinitely, which is exactly the robustness gap the pointer-based
	// schemes close.
	EvictAfter time.Duration
	// MaxNodes bounds a container's node pool. 0 = default.
	MaxNodes int
	// Shards splits the domain core (slot pool, orphan list, retire
	// tallies, rooster flush target) into this many independent units so
	// lease and release traffic does not serialize on shared atomics; see
	// the package-level "Sharding" section. 1 disables sharding. 0 (the
	// default) consults the QSENSE_SHARDS environment variable, then
	// min(runtime.GOMAXPROCS(0), 8). Values above the initial arena size
	// are clamped down so every shard starts with at least one slot.
	Shards int
	// Era supplies the era clock SchemeIBR stamps node lifetimes against —
	// for a custom structure, the structure's own *Pool[T] (which
	// implements EraSource). The containers wire their internal pools
	// automatically; leave nil there. Nil under SchemeIBR is safe but
	// degrades precision: every node reads as born at era 0, so interval
	// disjointness decays to retire-epoch-only reasoning.
	Era EraSource
}

// EraSource is a monotonic era clock with per-node birth stamps — what
// SchemeIBR measures node lifetimes and reservation intervals against.
// *Pool[T] implements it; custom structures pass their pool as
// Options.Era.
type EraSource interface {
	// Era returns the current era.
	Era() uint64
	// AdvanceEra increments the era and returns the new value.
	AdvanceEra() uint64
	// BirthEra returns the era r's node was allocated in (0 for nil).
	BirthEra(Ref) uint64
}

// eraBridge adapts the public Ref-typed EraSource to the internal layer.
type eraBridge struct{ src EraSource }

func (b eraBridge) Era() uint64               { return b.src.Era() }
func (b eraBridge) AdvanceEra() uint64        { return b.src.AdvanceEra() }
func (b eraBridge) BirthEra(r mem.Ref) uint64 { return b.src.BirthEra(Ref(r)) }

func (o Options) reclaimConfig(hps int, free func(mem.Ref)) reclaim.Config {
	if o.HPs > hps {
		hps = o.HPs
	}
	var era reclaim.EraSource
	if o.Era != nil {
		era = eraBridge{o.Era}
	}
	return reclaim.Config{
		Workers:        o.arena(),
		HardMaxWorkers: o.HardMaxWorkers,
		HPs:            hps,
		Free:           free,
		Q:              o.Q,
		R:              o.R,
		C:              o.C,
		MemoryLimit:    o.MemoryLimit,
		Rooster:        rooster.Config{Interval: o.RoosterInterval},
		EvictAfter:     o.EvictAfter,
		Shards:         o.shards(),
		Era:            era,
	}
}

// shards resolves Options.Shards: an explicit value passes through (the
// internal layer clamps it to the arena size); 0 defers to the
// QSENSE_SHARDS environment variable when set, and otherwise defaults to
// min(GOMAXPROCS, 8) — one unit of lease/orphan traffic per core, capped
// where further splitting stops paying for its walk overhead.
func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	if os.Getenv("QSENSE_SHARDS") != "" {
		return 0 // the internal layer parses the override
	}
	return min(runtime.GOMAXPROCS(0), 8)
}

func (o Options) scheme() string {
	if o.Scheme == "" {
		return string(SchemeQSense)
	}
	return string(o.Scheme)
}

// arena is the initial guard-slot arena size: MaxWorkers (or the machine
// default), lowered to HardMaxWorkers when a smaller cap is set — but
// never below a deprecated fixed Workers count, whose positional
// Handle(w)/Guard(w) contract guarantees slots [0, Workers) exist. When
// Workers exceeds the cap, the internal layer raises the cap to match
// (reclaim.Config.withDefaults), so the two layers resolve the conflict
// identically: the positional range always wins.
func (o Options) arena() int {
	n := o.MaxWorkers
	if n <= 0 && o.Workers <= 0 {
		// Machine default only when the caller sized nothing: a bare
		// deprecated Workers count must stay exactly the paper's N (its C
		// legality and memory bounds scale with N).
		n = 2 * runtime.GOMAXPROCS(0)
	}
	if o.HardMaxWorkers > 0 && n > o.HardMaxWorkers {
		n = o.HardMaxWorkers
	}
	if o.Workers > n {
		n = o.Workers
	}
	return n
}

// Stats is a snapshot of a domain's reclamation counters.
type Stats struct {
	Scheme string
	// Retired counts nodes handed to Retire; Freed counts completed
	// frees; Pending is the difference (nodes awaiting reclamation).
	Retired, Freed uint64
	Pending        int64
	// Scans counts hazard pointer scans; QuiescentStates and
	// EpochAdvances count epoch machinery activity. ScannedRecords counts
	// the per-slot records those passes actually visited: with the
	// occupancy index it grows with the live worker count per pass, not
	// with how large the arena once was — divide by Scans (or
	// EpochAdvances) to see the per-pass cost the paper's N·K term
	// models.
	Scans, QuiescentStates, EpochAdvances uint64
	ScannedRecords                        uint64
	// SwitchesToFallback/SwitchesToFast count QSense path switches;
	// InFallback is the current path.
	SwitchesToFallback, SwitchesToFast uint64
	InFallback                         bool
	// Evictions counts workers excluded as crashed (Options with
	// eviction enabled on epoch schemes); Rejoins counts Leave/Join and
	// crash-recovery re-entries.
	Evictions, Rejoins uint64
	// AcquiredHandles and ReleasedHandles count handle leases granted
	// and returned; their difference is the number leased right now.
	AcquiredHandles, ReleasedHandles uint64
	// OrphanedNodes counts retired nodes a Release could not yet prove
	// safe and moved to the domain's orphan list; AdoptedNodes counts
	// orphans since freed by other workers' reclamation passes. Orphans
	// remain Pending (and count against MemoryLimit) until adopted.
	OrphanedNodes, AdoptedNodes uint64
	// ArenaSize is the current guard-slot arena size (MaxWorkers until
	// growth engages); HighWaterWorkers is the peak number of
	// simultaneously leased/pinned slots; ArenaGrowths counts elastic
	// segment publications. ArenaGrowths > 0 on a long-lived domain is a
	// hint that MaxWorkers undershoots the real concurrency.
	ArenaSize, HighWaterWorkers int
	ArenaGrowths                uint64
	// ParkedSlots is how many published slots currently rest in parked
	// (all-free, walk-skipped) trailing segments; they are reused before
	// the arena grows again. SegmentParks/SegmentUnparks count the
	// transitions — a high churn between them means occupancy keeps
	// crossing the parking low-water mark.
	ParkedSlots                  int
	SegmentParks, SegmentUnparks uint64
	// EffectiveR/EffectiveC are the scan and fallback thresholds in
	// force after occupancy-aware re-tuning (zero when the scheme has no
	// such threshold); RRetunes/CRetunes count threshold changes applied
	// at capacity transitions. CRetunes > 0 with an explicit Options.C
	// means growth forced C up to stay legal per the paper's §6.2 bound.
	EffectiveR, EffectiveC int
	RRetunes, CRetunes     uint64
	// RoosterPasses counts completed rooster flush passes (Cadence,
	// QSense).
	RoosterPasses uint64
	// IBRIntervalWidth is the widest active reservation interval
	// (upper−lower, in eras) across live workers at snapshot time — how
	// far SchemeIBR's slowest in-flight operation lags the era clock, and
	// so how much retired memory one stalled reader can pin. 0 on other
	// schemes and when no reservation is open.
	IBRIntervalWidth uint64
	// HyalineBatchRefs is the number of published-but-unacknowledged
	// batch deliveries outstanding across all workers — SchemeHyaline's
	// reclamation lag: it rises while workers sit mid-operation on
	// delivered batches and returns to 0 as their next boundaries
	// acknowledge. 0 on other schemes.
	HyalineBatchRefs int64
	// Shards is the resolved Options.Shards the domain runs with;
	// ShardImbalance is the live-occupancy spread (max−min) across shards
	// at snapshot time, 0 for a single-shard domain. A persistently large
	// imbalance under steady load suggests goroutine affinity is defeating
	// the two-choice placement.
	Shards, ShardImbalance int
	// Failed reports a MemoryLimit breach.
	Failed bool
}

func fromReclaimStats(s reclaim.Stats) Stats {
	return Stats{
		Scheme:             s.Scheme,
		Retired:            s.Retired,
		Freed:              s.Freed,
		Pending:            s.Pending,
		Scans:              s.Scans,
		ScannedRecords:     s.ScannedRecords,
		QuiescentStates:    s.QuiescentStates,
		EpochAdvances:      s.EpochAdvances,
		SwitchesToFallback: s.SwitchesToFallback,
		SwitchesToFast:     s.SwitchesToFast,
		InFallback:         s.InFallback,
		Evictions:          s.Evictions,
		Rejoins:            s.Rejoins,
		AcquiredHandles:    s.AcquiredHandles,
		ReleasedHandles:    s.ReleasedHandles,
		OrphanedNodes:      s.OrphanedNodes,
		AdoptedNodes:       s.AdoptedNodes,
		ArenaSize:          s.ArenaSize,
		HighWaterWorkers:   s.HighWaterWorkers,
		ArenaGrowths:       s.ArenaGrowths,
		ParkedSlots:        s.ParkedSlots,
		SegmentParks:       s.SegmentParks,
		SegmentUnparks:     s.SegmentUnparks,
		EffectiveR:         s.EffectiveR,
		EffectiveC:         s.EffectiveC,
		RRetunes:           s.RRetunes,
		CRetunes:           s.CRetunes,
		RoosterPasses:      s.RoosterPasses,
		IBRIntervalWidth:   s.IBRIntervalWidth,
		HyalineBatchRefs:   s.HyalineBatchRefs,
		Shards:             s.Shards,
		ShardImbalance:     s.ShardImbalance,
		Failed:             s.Failed,
	}
}
