// qsense-kvd is the repository's network-facing demonstration: a
// RESP-style TCP key→value server over the elastic SkipMap, and — with
// -load — the macro-benchmark load generator that drives it.
//
// Server mode (the default) speaks GET/SET/DEL/STATS/PING/QUIT with
// integer keys and values, one goroutine and one leased map handle per
// connection, under any of the nine reclamation schemes:
//
//	qsense-kvd -addr :6380 -scheme qsense
//	qsense-kvd -addr :6380 -scheme hp -max-conns 256   # queue past 256
//	printf 'SET 1 42\r\nGET 1\r\nSTATS\r\n' | nc localhost 6380
//
// Load mode drives pooled connections through a zipf-skewed GET/SET/DEL
// mix shaped by a burst-then-idle phase plan (connection storms, then
// near-idle troughs — the traffic the elastic arena and the occupancy
// parking machinery exist for), records per-op round-trip latency into
// HDR-style buckets, and emits throughput + p50/p99/p999 curves as
// BENCH_kvd_<exp>.json. With no -target it self-hosts a fresh in-process
// server per measured point, sweeping -schemes x -conns:
//
//	qsense-kvd -load -schemes qsense,hp -conns 4,16,64 -burst 2s -idle 1s -cycles 2 -json
//	qsense-kvd -load -target host:6380 -conns 32 -theta 0.99 -updates 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qsense"
	"qsense/internal/harness"
	"qsense/internal/kvd"
	"qsense/internal/reclaim"
	"qsense/internal/workload"
)

func main() {
	var (
		// Server mode.
		addr     = flag.String("addr", ":6380", "listen address (server mode)")
		scheme   = flag.String("scheme", "qsense", "reclamation scheme: "+strings.Join(qsense.SchemeNames(), ", "))
		maxConns = flag.Int("max-conns", 0, "admission cap: connections past it queue (0 = elastic, never refuse)")
		initial  = flag.Int("initial-conns", 0, "initial guard-arena size hint (0 = machine default)")
		maxNodes = flag.Int("max-nodes", 0, "map node-pool bound (0 = library default)")
		shards   = flag.Int("shards", 0, "reclamation-domain shards (0 = QSENSE_SHARDS, then min(GOMAXPROCS, 8))")
		idleTO   = flag.Duration("idle-timeout", 0, "disconnect a connection silent for this long, releasing its lease (0 = never)")
		writeTO  = flag.Duration("write-timeout", 0, "disconnect a client that stops draining replies for this long (0 = never)")
		memLimit = flag.Int("mem-limit", 0, "pending-node soft limit: past it SET/DEL answer -BUSY while reads keep serving (0 = off)")

		// Load mode.
		load     = flag.Bool("load", false, "run as load generator instead of server")
		target   = flag.String("target", "", "server to drive; empty = self-host a fresh server per point")
		schemes  = flag.String("schemes", "qsense,hp,hyaline", "self-hosted schemes to sweep (load mode)")
		conns    = flag.String("conns", "4,16,64", "comma-separated connection counts to sweep")
		keyRange = flag.Int64("range", 1<<16, "key range")
		theta    = flag.Float64("theta", 0.99, "zipf skew in (0,1); <=0 = uniform keys")
		updates  = flag.Int("updates", 20, "update percentage (split SET/DEL; rest GET)")
		burst    = flag.Duration("burst", 2*time.Second, "burst phase length (full load)")
		idle     = flag.Duration("idle", time.Second, "idle phase length (idle-load fraction stays)")
		cycles   = flag.Int("cycles", 1, "burst+idle repetitions; 0 = one steady phase of -burst")
		idleLoad = flag.Float64("idle-load", 0.05, "fraction of connections kept during idle phases")
		seed     = flag.Uint64("seed", 1, "workload seed")
		vsizes   = flag.String("vsizes", "8", "comma-separated base value sizes (bytes) to sweep; >1 entry labels curves scheme@v<N>")
		vmax     = flag.Int("vmax", 0, "zipf-extend each value up to this many bytes (0 = fixed at the base size)")
		vtheta   = flag.Float64("vtheta", 0.99, "zipf skew of the value-size extension in (0,1); <=0 = uniform")
		stalls   = flag.Int("stall-conns", 0, "extra connections that dial, hold their lease and send nothing (stalled-reader chaos)")
		stallLeg = flag.Int("stall-leg", 0, "append one extra curve: the first scheme rerun with this many stalled connections")
		jsonOut  = flag.Bool("json", false, "write BENCH_kvd_<exp>.json (for CI artifacts / perf tracking)")
		exp      = flag.String("exp", "zipf_burst", "experiment name used in the BENCH JSON filename")
		force    = flag.Bool("force", false, "overwrite an existing BENCH_kvd_<exp>.json (refused otherwise)")
	)
	flag.Parse()

	if *load {
		runLoad(loadOpts{
			target: *target, schemes: *schemes, conns: *conns,
			keyRange: *keyRange, theta: *theta, updates: *updates,
			burst: *burst, idle: *idle, cycles: *cycles, idleLoad: *idleLoad,
			seed: *seed, jsonOut: *jsonOut, exp: *exp, force: *force,
			maxNodes: *maxNodes, initial: *initial, shards: *shards,
			stallConns: *stalls, stallLeg: *stallLeg, idleTO: *idleTO,
			vsizes: *vsizes, vmax: *vmax, vtheta: *vtheta,
		})
		return
	}
	runServer(kvd.Config{
		Scheme: *scheme, InitialConns: *initial, HardMaxConns: *maxConns,
		MaxNodes: *maxNodes, Shards: *shards,
		IdleTimeout: *idleTO, WriteTimeout: *writeTO, MemoryLimit: *memLimit,
	}, *addr)
}

// runServer serves until SIGINT/SIGTERM, then drains gracefully.
func runServer(cfg kvd.Config, addr string) {
	s, err := kvd.New(cfg)
	if err != nil {
		fatal(err)
	}
	a, err := s.Listen(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("qsense-kvd: scheme=%s shards=%d listening on %s\n", cfg.Scheme, s.Stats().Shards, a)
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case <-sig:
		fmt.Println("qsense-kvd: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "qsense-kvd: forced shutdown:", err)
		}
	}
	st := s.Stats()
	s.Close()
	fmt.Printf("qsense-kvd: served %d leases over %d shards (imbalance %d), arena %d (high water %d, %d growths), %d slots parked\n",
		st.AcquiredHandles, st.Shards, st.ShardImbalance, st.ArenaSize, st.HighWaterWorkers, st.ArenaGrowths, st.ParkedSlots)
}

type loadOpts struct {
	target, schemes, conns string
	keyRange               int64
	theta                  float64
	updates, cycles        int
	burst, idle            time.Duration
	idleLoad               float64
	seed                   uint64
	jsonOut, force         bool
	exp                    string
	maxNodes, initial      int
	shards                 int
	stallConns, stallLeg   int
	idleTO                 time.Duration
	vsizes                 string
	vmax                   int
	vtheta                 float64
}

// runLoad sweeps schemes x value sizes x connection counts and renders/emits
// curves. With -stall-leg it appends one more curve — the first scheme rerun
// with that many stalled connections — so a single invocation produces a
// baseline JSON that carries the stalled-reader leg alongside the clean ones.
func runLoad(o loadOpts) {
	connCounts, err := parseInts(o.conns)
	if err != nil {
		fatal(err)
	}
	valSizes, err := parseInts(o.vsizes)
	if err != nil {
		fatal(fmt.Errorf("bad -vsizes: %w", err))
	}
	plan := workload.BurstIdle(o.burst, o.idle, o.cycles, o.idleLoad)
	if o.cycles <= 0 {
		plan = workload.Steady(o.burst)
	}
	schemeList := strings.Split(o.schemes, ",")
	for _, sc := range schemeList {
		if _, err := qsense.ParseScheme(sc); err != nil {
			fatal(err)
		}
	}
	if o.target != "" {
		// A remote target's scheme is whatever it runs; one curve.
		schemeList = []string{"remote"}
	}
	fmt.Printf("qsense-kvd -load: range %d, theta %.2f, %d%% updates, vsizes %v, plan %v (%d phases), conns %v, GOMAXPROCS=%d\n",
		o.keyRange, o.theta, o.updates, valSizes, plan.Total(), len(plan.Phases), connCounts, runtime.GOMAXPROCS(0))

	leg := func(label, sc string, vsize, stall int) harness.Curve {
		curve := harness.Curve{Scheme: label}
		size := workload.SizeDist{Base: vsize, Max: o.vmax, Theta: o.vtheta}
		for _, nc := range connCounts {
			target := o.target
			var srv *kvd.Server
			if target == "" {
				// Fresh server per point: counters (growth, parking) then
				// describe exactly this point's storm, not history.
				s, err := kvd.New(kvd.Config{Scheme: sc, InitialConns: o.initial, MaxNodes: o.maxNodes, Shards: o.shards, IdleTimeout: o.idleTO})
				if err != nil {
					fatal(err)
				}
				a, err := s.Start("127.0.0.1:0")
				if err != nil {
					fatal(err)
				}
				srv, target = s, a.String()
			}
			res, err := kvd.RunLoad(kvd.LoadConfig{
				Target: target, Conns: nc, KeyRange: o.keyRange, Theta: o.theta,
				UpdatePct: o.updates, Plan: plan, Seed: o.seed,
				ValueSize: size, StallConns: stall,
			})
			if srv != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				srv.Shutdown(ctx)
				cancel()
				srv.Close()
			}
			if err != nil {
				fatal(err)
			}
			if res.BadValues > 0 {
				fatal(fmt.Errorf("%s conns=%d: %d GET replies failed payload verification (torn or freed values)", label, nc, res.BadValues))
			}
			h := res.Latency
			fmt.Printf("%-14s conns=%-4d %8.3f Mops/s  p50 %7s  p99 %7s  p999 %7s  (%d ops, %d errs)\n",
				label, nc, res.Mops, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), res.Ops, res.Errs)
			curve.Points = append(curve.Points, harness.Point{Workers: nc, Res: harness.Result{
				Ops: res.Ops, Duration: res.Duration, Mops: res.Mops,
				Latency: h, Reclaim: reclaimFromStats(res.Stats),
				ValueBytes:    res.Stats["value_bytes"],
				ValueRetires:  uint64(res.Stats["value_retires"]),
				StructRetires: uint64(res.Stats["struct_retires"]),
				BadValues:     res.BadValues,
			}})
		}
		return curve
	}

	var curves []harness.Curve
	for _, sc := range schemeList {
		for _, vs := range valSizes {
			label := sc
			if len(valSizes) > 1 {
				label = fmt.Sprintf("%s@v%d", sc, vs)
			}
			curves = append(curves, leg(label, sc, vs, o.stallConns))
		}
	}
	if o.stallLeg > 0 && o.target == "" {
		sc := schemeList[0]
		curves = append(curves, leg(fmt.Sprintf("%s+stall%d", sc, o.stallLeg), sc, valSizes[0], o.stallLeg))
	}
	harness.RenderCurvesTable(os.Stdout,
		fmt.Sprintf("Throughput (Mops/s): kvd skipmap, %d%% updates, range %d, theta %.2f", o.updates, o.keyRange, o.theta),
		curves)
	if o.jsonOut {
		name := "kvd_" + o.exp
		path := "BENCH_" + name + ".json"
		if err := harness.WriteCurvesJSONFile(path, o.force, harness.BenchJSON{
			Experiment: name, DS: "skipmap", KeyRange: o.keyRange, UpdatePct: o.updates,
			DurationMS: plan.Total().Milliseconds(), GoMaxProcs: runtime.GOMAXPROCS(0),
			Extra: map[string]string{
				"theta":     fmt.Sprintf("%.2f", o.theta),
				"burst_ms":  fmt.Sprint(o.burst.Milliseconds()),
				"idle_ms":   fmt.Sprint(o.idle.Milliseconds()),
				"cycles":    fmt.Sprint(o.cycles),
				"idle_load": fmt.Sprintf("%.2f", o.idleLoad),
				"vsizes":    o.vsizes,
				"vmax":      fmt.Sprint(o.vmax),
			},
		}, curves); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// reclaimFromStats rebuilds the reclamation counters the BENCH JSON wants
// from a parsed STATS reply (zero-valued when the fetch failed).
func reclaimFromStats(st map[string]int64) reclaim.Stats {
	if st == nil {
		return reclaim.Stats{}
	}
	return reclaim.Stats{
		Retired:          uint64(st["retired"]),
		Freed:            uint64(st["freed"]),
		Pending:          st["pending"],
		Scans:            uint64(st["scans"]),
		ScannedRecords:   uint64(st["scanned_records"]),
		ArenaSize:        int(st["arena_size"]),
		ParkedSlots:      int(st["parked_slots"]),
		RRetunes:         uint64(st["r_retunes"]),
		CRetunes:         uint64(st["c_retunes"]),
		IBRIntervalWidth: uint64(st["ibr_interval_width"]),
		HyalineBatchRefs: st["hyaline_batch_refs"],
		Shards:           int(st["shards"]),
		ShardImbalance:   int(st["shard_imbalance"]),
		Failed:           st["failed"] != 0,
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad connection count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qsense-kvd:", err)
	os.Exit(1)
}
