// qsense-tso demonstrates the paper's §4.1 argument with the TSO model
// checker: exhaustively exploring every interleaving of Algorithm 2 shows
// that a naive QSBR/HP hybrid (hazard pointers published without fences,
// reclamation without deferral) frees memory a validated reader is about to
// use — and that either the classic fence or Cadence's rooster-plus-deferral
// eliminates the violation in all interleavings.
package main

import (
	"flag"
	"fmt"
	"os"

	"qsense/internal/tso"
)

func main() {
	verbose := flag.Bool("v", false, "list the violating outcomes")
	flag.Parse()

	type scenario struct {
		name   string
		sys    tso.System
		expect bool // violation expected?
		note   string
	}
	scenarios := []scenario{
		{"naive hybrid (no fence, no deferral)", tso.NaiveHybridSystem(), true,
			"Algorithm 2's illegal interleaving: the HP store is stuck in the store buffer during the scan"},
		{"classic hazard pointers (fence per publication)", tso.ClassicHPSystem(), false,
			"the fence drains the buffer before re-validation (Algorithm 1)"},
		{"cadence (rooster flush + deferred reclamation)", tso.CadenceSystem(), false,
			"no reader fence; a full rooster pass after removal makes all prior HP stores visible (Figure 4)"},
		{"cadence without deferral (ablation)", tso.CadenceNoDeferralSystem(), true,
			"the rooster alone is not enough: scanning before a full pass misses buffered HPs"},
	}

	fail := false
	for _, sc := range scenarios {
		out, complete := tso.Explore(sc.sys, 1<<22)
		if !complete {
			fmt.Printf("%-55s exploration incomplete!\n", sc.name)
			fail = true
			continue
		}
		violated := out.Any(tso.UseAfterFree)
		verdict := "SAFE in all interleavings"
		if violated {
			verdict = "USE-AFTER-FREE reachable"
		}
		status := "as expected"
		if violated != sc.expect {
			status = "UNEXPECTED"
			fail = true
		}
		fmt.Printf("%-55s %-28s (%d outcomes, %s)\n", sc.name, verdict, out.Len(), status)
		fmt.Printf("        %s\n", sc.note)
		if *verbose && violated {
			for _, o := range out.List() {
				if tso.UseAfterFree(o) {
					fmt.Printf("        violating outcome: reader regs %v, mem %v\n",
						o.Regs[tso.ProcReader], o.Mem)
				}
			}
		}
	}
	if fail {
		os.Exit(1)
	}
}
