// qsense-delays reproduces the bottom row of the paper's Figure 5: eight
// workers at 50% updates, with one worker stalled for 10 seconds out of
// every 20 (scaled by -scale). QSBR exhausts its memory budget and dies;
// QSense falls back to Cadence and recovers; HP plods along.
//
// Per-interval throughput prints as ASCII charts ('f' marks QSense fallback
// windows, 'X' marks failure) and can be written to CSV.
//
// Examples:
//
//	qsense-delays -ds list                  # 20s compressed schedule
//	qsense-delays -ds skiplist -scale 1     # the paper's full 100s run
//	qsense-delays -ds bst -csv bst.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"qsense/internal/harness"
)

func main() {
	var (
		ds      = flag.String("ds", "list", "data structure: list, skiplist, bst")
		scale   = flag.Float64("scale", 0.2, "time scale: 1.0 = the paper's 100s schedule")
		limit   = flag.Int("limit", 0, "retired-node budget standing in for RAM (0 = automatic: above QSense's 2NC bound, below one stall's backlog)")
		csvPath = flag.String("csv", "", "also write the time series to this CSV file")
		chart   = flag.Bool("chart", true, "print ASCII charts")
		seed    = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	dc := harness.Fig5Bottom(*ds, *scale, *limit)
	dc.Seed = *seed
	total := time.Duration(float64(100*time.Second) * *scale)
	fmt.Printf("qsense-delays: %s, %d keys, 8 workers, %v total, worker 0 stalled %v/%v, GOMAXPROCS=%d\n",
		*ds, dc.KeyRange,
		total.Round(time.Second),
		time.Duration(float64(10*time.Second)**scale).Round(100*time.Millisecond),
		time.Duration(float64(20*time.Second)**scale).Round(100*time.Millisecond),
		runtime.GOMAXPROCS(0))

	results, err := harness.RunDelays(dc, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsense-delays:", err)
		os.Exit(1)
	}

	if *chart {
		for _, scheme := range dc.Schemes {
			harness.RenderSeriesChart(os.Stdout, scheme, results[scheme], 50)
		}
	}

	// §7.3's fallback-window comparison: Cadence vs HP during stalls.
	if q, ok := results["qsense"]; ok {
		fast, fb := harness.FallbackWindows(q)
		fmt.Printf("\nqsense fast-path mean %.3f Mops/s, fallback (Cadence) mean %.3f Mops/s\n", fast, fb)
		if hp, ok := results["hp"]; ok && fb > 0 {
			var hpMean float64
			n := 0
			for _, s := range hp.Samples {
				hpMean += s.Mops
				n++
			}
			if n > 0 {
				hpMean /= float64(n)
				fmt.Printf("cadence (fallback) vs hp: %.2fx (paper reports ~3x)\n", fb/hpMean)
			}
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsense-delays:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := harness.WriteSeriesCSV(f, results, dc.Schemes); err != nil {
			fmt.Fprintln(os.Stderr, "qsense-delays:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
