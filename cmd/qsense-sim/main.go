// qsense-sim regenerates the paper's evaluation figures on the TSO machine
// simulator (internal/sim): throughput in operations per million simulated
// cycles, with real simulated fence costs, store-buffer visibility delays,
// rooster context switches and process stalls. Every run is bit-for-bit
// reproducible from its seed.
//
//	qsense-sim -exp fig3                 # list, 10% updates: none/qsense/hp
//	qsense-sim -exp fig5top              # list, 50% updates: +qsbr
//	qsense-sim -exp fig5bottom           # 8 procs, stalls: qsbr fails, qsense switches
//	qsense-sim -exp ablation             # unsafe ablations fault (UAF caught)
//
// The wall-clock counterparts over the native implementation are
// cmd/qsense-bench and cmd/qsense-delays.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qsense/internal/sim/simexp"
	"qsense/internal/sim/simsmr"
)

func main() {
	var (
		exp      = flag.String("exp", "fig3", "experiment: fig3 | fig5top | fig5bottom | ablation")
		keyRange = flag.Uint64("range", 256, "key range (paper: 2000; scaled default keeps simulated traversals tractable)")
		duration = flag.Float64("mcycles", 0, "run length per proc, in millions of cycles (0 = per-experiment default: 4 for fig3/fig5top, 8 for fig5bottom, 2 for ablation)")
		procs    = flag.String("procs", "1,2,4,8", "proc counts for the scalability experiments")
		seed     = flag.Uint64("seed", 1, "simulation seed (results are a pure function of flags+seed)")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
	)
	flag.Parse()

	if *duration == 0 {
		switch *exp {
		case "fig5bottom":
			*duration = 8
		case "ablation":
			*duration = 2
		default:
			*duration = 4
		}
	}

	var rows [][]string
	var err error
	switch *exp {
	case "fig3", "fig5top":
		rows, err = runScalability(*exp, *keyRange, cycles(*duration), parseProcs(*procs), *seed)
	case "fig5bottom":
		rows, err = runDelays(*keyRange, cycles(*duration), *seed)
	case "ablation":
		rows, err = runAblation(*keyRange, cycles(*duration), *seed)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsense-sim:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, rows); err != nil {
			fmt.Fprintln(os.Stderr, "qsense-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func cycles(mcycles float64) uint64 { return uint64(mcycles * 1e6) }

func parseProcs(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "qsense-sim: bad proc count %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func runScalability(exp string, keyRange, dur uint64, procs []int, seed uint64) ([][]string, error) {
	var base simexp.Config
	var schemes []string
	if exp == "fig3" {
		base, schemes = simexp.Fig3(keyRange, dur)
		fmt.Printf("== Figure 3 (simulated): list %d keys, 10%% updates ==\n", keyRange)
	} else {
		base, schemes = simexp.Fig5Top(keyRange, dur)
		fmt.Printf("== Figure 5 top (simulated): list %d keys, 50%% updates ==\n", keyRange)
	}
	base.Seed = seed
	curves := simexp.Scalability(base, schemes, procs, os.Stdout)

	rows := [][]string{{"scheme", "procs", "ops_per_mcycle", "ops", "cycles", "fences", "preempts"}}
	fmt.Printf("\n%-8s", "procs")
	for _, c := range curves {
		fmt.Printf(" %12s", c.Scheme)
	}
	fmt.Println()
	for i, n := range procs {
		fmt.Printf("%-8d", n)
		for _, c := range curves {
			r := c.Points[i].Res
			fmt.Printf(" %12.1f", r.OpsPerMcycle)
			rows = append(rows, []string{
				c.Scheme, strconv.Itoa(n),
				fmt.Sprintf("%.2f", r.OpsPerMcycle),
				strconv.FormatUint(r.Ops, 10),
				strconv.FormatUint(r.Cycles, 10),
				strconv.FormatUint(r.Machine.Fences, 10),
				strconv.FormatUint(r.Machine.RoosterPreempts, 10),
			})
		}
		fmt.Println()
	}
	fmt.Println("(ops per million simulated cycles; higher is better)")
	return rows, nil
}

func runDelays(keyRange, dur uint64, seed uint64) ([][]string, error) {
	// The delay experiment needs retire rates high enough that a stalled
	// grace period visibly exhausts the budget within one stall window;
	// a 256-key list at short simulated durations retires too slowly, so
	// this experiment scales the range down (the paper runs 100 wall
	// seconds — billions of cycles — to get the same effect at 2000).
	if keyRange > 64 {
		keyRange = 64
	}
	base, schemes := simexp.Fig5Bottom(keyRange, dur)
	base.Seed = seed
	base.MemoryLimit = 320
	base.SMR = func(c *simsmr.Config) {
		c.Q = 8
		c.R = 24
		c.C = 32
		c.PresenceWindow = 50_000
	}
	fmt.Printf("== Figure 5 bottom (simulated): %d procs, %d keys, proc 0 stalled 5x ==\n",
		base.Procs, keyRange)
	rows := [][]string{{"scheme", "bucket_mcycles", "ops_per_mcycle", "fallback", "failed"}}
	results := map[string]simexp.Result{}
	for _, scheme := range schemes {
		cfg := base
		cfg.Scheme = scheme
		res := simexp.Run(cfg)
		results[scheme] = res
		for _, b := range res.Buckets {
			rows = append(rows, []string{
				scheme,
				fmt.Sprintf("%.2f", float64(b.T)/1e6),
				fmt.Sprintf("%.2f", b.OpsPerMcycle),
				strconv.FormatBool(b.InFallback),
				strconv.FormatBool(b.Failed),
			})
		}
		status := "survived"
		if res.Failed {
			status = fmt.Sprintf("FAILED (OOM) at %.2f Mcycles", float64(res.FailedAt)/1e6)
		}
		fmt.Printf("%-8s %10.1f ops/Mcycle  switches fall/fast=%d/%d  %s\n",
			scheme, res.OpsPerMcycle,
			res.Reclaim.SwitchesToFallback, res.Reclaim.SwitchesToFast, status)
		if len(res.Errs) != 0 {
			return nil, fmt.Errorf("%s: %v", scheme, res.Errs)
		}
	}
	// Sparkline-style series so the switch/failure pattern is visible.
	for _, scheme := range schemes {
		res := results[scheme]
		var sb strings.Builder
		peak := 0.0
		for _, b := range res.Buckets {
			peak = max(peak, b.OpsPerMcycle)
		}
		for _, b := range res.Buckets {
			switch {
			case b.Failed && b.Ops == 0:
				sb.WriteByte('x')
			case b.InFallback:
				sb.WriteByte('f')
			case peak > 0 && b.OpsPerMcycle >= peak/2:
				sb.WriteByte('#')
			case b.Ops > 0:
				sb.WriteByte('-')
			default:
				sb.WriteByte('.')
			}
		}
		fmt.Printf("%-8s |%s|\n", scheme, sb.String())
	}
	fmt.Println("(# fast path, f fallback path, - degraded, x failed, . idle; one char per 1% of the run)")
	return rows, nil
}

func runAblation(keyRange, dur uint64, seed uint64) ([][]string, error) {
	// The fault window needs a hot key set: deleters must keep unlinking
	// nodes that dwell readers are holding. Long traversals over a big
	// range dilute the race to invisibility.
	if keyRange > 32 {
		keyRange = 32
	}
	fmt.Println("== Unsafe ablations (simulated): use-after-free detection ==")
	rows := [][]string{{"variant", "violations", "retired"}}
	mk := func(name, scheme string, mut func(*simsmr.Config), expect bool) error {
		res := simexp.Run(simexp.Config{
			Scheme: scheme, Procs: 8, KeyRange: keyRange, UpdatePct: 50,
			Duration: dur, Seed: seed, RoosterInterval: 100_000,
			DwellEvery: 1, DwellCycles: 3000,
			SMR: func(c *simsmr.Config) {
				c.R = 1
				mut(c)
			},
		})
		rows = append(rows, []string{name, strconv.Itoa(len(res.Errs)),
			strconv.FormatUint(res.Reclaim.Retired, 10)})
		verdict := "SAFE (no violations)"
		if len(res.Errs) > 0 {
			verdict = fmt.Sprintf("UNSAFE: %v", res.Errs[0])
		}
		fmt.Printf("%-40s %s\n", name, verdict)
		if expect != (len(res.Errs) > 0) {
			return fmt.Errorf("%s: expected violations=%v, got %d", name, expect, len(res.Errs))
		}
		return nil
	}
	for _, c := range []struct {
		name, scheme string
		mut          func(*simsmr.Config)
		expect       bool
	}{
		{"hp (fence per Protect)", "hp", func(c *simsmr.Config) {}, false},
		{"hp without fence (naive hybrid, §4.1)", "hp", func(c *simsmr.Config) { c.NoFence = true }, true},
		{"cadence (rooster + deferral)", "cadence", func(c *simsmr.Config) {}, false},
		{"cadence without deferral (§5.1 ablation)", "cadence", func(c *simsmr.Config) { c.DisableDeferral = true }, true},
		{"qsense (hybrid)", "qsense", func(c *simsmr.Config) {}, false},
	} {
		if err := mk(c.name, c.scheme, c.mut, c.expect); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
