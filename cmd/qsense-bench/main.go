// qsense-bench reproduces the paper's scalability experiments: Figure 3
// (linked list, 10% updates, None vs QSense vs HP) and the top row of
// Figure 5 (list / skip list / BST at 50% updates, None vs QSBR vs QSense
// vs HP). Results print as aligned tables with §7.3-style overhead
// summaries and can be written to CSV.
//
// It also hosts the leasing follow-up experiment: -experiment
// leasevspinned runs each scheme twice over the same workload — pinned
// positional guards vs short Acquire/Release leases — and reports the
// lease overhead and its epoch-advance interaction.
//
// Examples:
//
//	qsense-bench -figure 3
//	qsense-bench -figure 5top -ds skiplist -threads 1,2,4,8 -duration 2s
//	qsense-bench -figure 5top -ds bst -paper   # full 2M-key BST
//	qsense-bench -ds list -schemes qsbr,qsense -updates 30 -range 512
//	qsense-bench -experiment leasevspinned -ds list -threads 8 -leaseevery 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"qsense"
	"qsense/internal/harness"
)

func main() {
	var (
		figure  = flag.String("figure", "", `preset: "3" or "5top" (overrides ds/schemes/updates/range)`)
		ds      = flag.String("ds", "list", "data structure: list, skiplist, bst")
		schemes = flag.String("schemes", "none,qsbr,qsense,hp,ibr,hyaline",
			"comma-separated schemes (valid: "+strings.Join(qsense.SchemeNames(), ", ")+")")
		threads    = flag.String("threads", "1,2,4,8", "comma-separated worker counts (paper: 1..32)")
		duration   = flag.Duration("duration", time.Second, "measurement time per point")
		updates    = flag.Int("updates", 50, "update percentage (rest are searches)")
		keyRange   = flag.Int64("range", 0, "key range (0 = the figure's default)")
		paper      = flag.Bool("paper", false, "use the paper's full parameters (2M-key BST)")
		csvPath    = flag.String("csv", "", "also write results to this CSV file")
		seed       = flag.Uint64("seed", 1, "workload seed")
		experiment = flag.String("experiment", "", `extra experiment: "leasevspinned"`)
		leaseEvery = flag.Int("leaseevery", 1, "leasevspinned: 64-op batches per lease (1 = re-lease every batch)")
		jsonOut    = flag.Bool("json", false, "also write results to BENCH_<experiment>.json (for CI artifacts / perf tracking)")
		force      = flag.Bool("force", false, "overwrite an existing BENCH_<experiment>.json (refused otherwise)")
	)
	flag.Parse()

	workers, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}

	schemeList, err := parseSchemes(*schemes)
	if err != nil {
		fatal(err)
	}

	switch *experiment {
	case "leasevspinned":
		runLeaseVsPinned(*ds, schemeList, workers, *leaseEvery, *keyRange, *paper, *duration, *seed, *jsonOut, *force)
		return
	case "":
	default:
		fatal(fmt.Errorf("unknown experiment %q (want leasevspinned)", *experiment))
	}

	var sc harness.ScalabilityConfig
	switch *figure {
	case "3":
		sc = harness.Fig3(workers, *duration)
	case "5top":
		sc = harness.Fig5Top(*ds, workers, *duration, *paper)
	case "":
		sc = harness.ScalabilityConfig{
			DS: *ds, KeyRange: defaultRange(*ds, *paper), UpdatePct: *updates,
			Schemes: schemeList, Workers: workers, Duration: *duration,
		}
	default:
		fatal(fmt.Errorf("unknown figure %q (want 3 or 5top)", *figure))
	}
	if *keyRange > 0 {
		sc.KeyRange = *keyRange
	}
	sc.Seed = *seed

	fmt.Printf("qsense-bench: %s, %d keys, %d%% updates, %v per point, GOMAXPROCS=%d\n",
		sc.DS, sc.KeyRange, sc.UpdatePct, sc.Duration, runtime.GOMAXPROCS(0))
	curves, err := harness.RunScalability(sc, os.Stdout)
	if err != nil {
		fatal(err)
	}

	title := fmt.Sprintf("Throughput (Mops/s): %s, %d%% updates, range %d", sc.DS, sc.UpdatePct, sc.KeyRange)
	harness.RenderCurvesTable(os.Stdout, title, curves)
	if s := harness.SpeedupOver(curves, "qsense", "hp"); s > 0 {
		fmt.Printf("qsense vs hp: %.2fx (paper reports 2-3x)\n", s)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := harness.WriteCurvesCSV(f, curves); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *jsonOut {
		// The filename follows the experiment that actually ran — figure
		// presets and the default sweep each have their own name, exactly
		// like -experiment runs, so no combination of flags can file one
		// experiment's curves under another's name.
		name := "scalability_" + sc.DS
		switch *figure {
		case "3":
			name = "fig3"
		case "5top":
			name = "fig5top"
		}
		writeBenchJSON(name, *force, harness.BenchJSON{
			Experiment: name, DS: sc.DS, KeyRange: sc.KeyRange,
			UpdatePct: sc.UpdatePct, DurationMS: sc.Duration.Milliseconds(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
		}, curves)
	}
}

// writeBenchJSON writes curves as BENCH_<name>.json in the working
// directory — the artifact CI uploads to seed the perf trajectory. An
// existing file is refused unless -force, so a rerun cannot silently
// clobber committed history.
func writeBenchJSON(name string, force bool, meta harness.BenchJSON, curves []harness.Curve) {
	path := "BENCH_" + name + ".json"
	if err := harness.WriteCurvesJSONFile(path, force, meta, curves); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runLeaseVsPinned drives the leased-vs-pinned comparison at each worker
// count and prints a per-scheme summary table.
func runLeaseVsPinned(ds string, schemes []string, workers []int, leaseEvery int, keyRange int64, paper bool, duration time.Duration, seed uint64, jsonOut, force bool) {
	if keyRange <= 0 {
		keyRange = defaultRange(ds, paper)
	}
	fmt.Printf("qsense-bench leasevspinned: %s, %d keys, 50%% updates, lease every %d batch(es) of 64 ops, %v per run, GOMAXPROCS=%d\n",
		ds, keyRange, leaseEvery, duration, runtime.GOMAXPROCS(0))
	// Accumulate pinned/leased throughput series per scheme so -json can
	// emit the experiment in the same curve format as the figures.
	curveIx := map[string]int{}
	var curves []harness.Curve
	addPoint := func(name string, w int, res harness.Result) {
		i, ok := curveIx[name]
		if !ok {
			i = len(curves)
			curveIx[name] = i
			curves = append(curves, harness.Curve{Scheme: name})
		}
		curves[i].Points = append(curves[i].Points, harness.Point{Workers: w, Res: res})
	}
	for _, w := range workers {
		fmt.Printf("-- %d workers --\n", w)
		results, err := harness.RunLeaseVsPinned(ds, schemes, w, leaseEvery, keyRange, duration, seed, os.Stdout)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			if r.Leased.Reclaim.AcquiredHandles != r.Leased.Reclaim.ReleasedHandles {
				fmt.Printf("WARNING: %s leaked %d leases\n", r.Scheme,
					r.Leased.Reclaim.AcquiredHandles-r.Leased.Reclaim.ReleasedHandles)
			}
			addPoint(r.Scheme+"-pinned", w, r.Pinned)
			addPoint(r.Scheme+"-leased", w, r.Leased)
		}
	}
	if jsonOut {
		writeBenchJSON("leasevspinned", force, harness.BenchJSON{
			Experiment: "leasevspinned", DS: ds, KeyRange: keyRange, UpdatePct: 50,
			DurationMS: duration.Milliseconds(), GoMaxProcs: runtime.GOMAXPROCS(0),
			Extra: map[string]string{"lease_every": fmt.Sprint(leaseEvery)},
		}, curves)
	}
}

func defaultRange(ds string, paper bool) int64 {
	switch ds {
	case "skiplist":
		return harness.PaperSkipRange
	case "bst":
		if paper {
			return harness.PaperBSTRange
		}
		return harness.DefaultBSTRange
	default:
		return harness.PaperListRange
	}
}

// parseSchemes validates a comma-separated scheme list against the
// library's registry, so a typo fails up front with the valid names
// instead of mid-sweep.
func parseSchemes(s string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(s, ",") {
		sch, err := qsense.ParseScheme(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, string(sch))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qsense-bench:", err)
	os.Exit(1)
}
