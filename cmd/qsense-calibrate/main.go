// qsense-calibrate reports this machine's characteristics for the fence
// cost model (DESIGN.md §2): the calibrated spin-loop rate, the measured
// cost of atomic publication (what every scheme pays per hazard pointer
// store in Go), and the effective cost of fenced publication at several
// modeled fence latencies. Use it to pick a -fence value comparable to the
// mfence penalty on hardware you care about.
package main

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"qsense/internal/fence"
)

func main() {
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d GOARCH=%s\n", runtime.GOMAXPROCS(0), runtime.NumCPU(), runtime.GOARCH)
	fmt.Printf("spin calibration: %.3f ns/iteration\n", fence.NsPerIteration())

	var slot atomic.Uint64
	const n = 2_000_000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		slot.Store(uint64(i))
	}
	per := time.Since(t0) / n
	fmt.Printf("atomic store (unfenced publication, Cadence/QSense): %v\n", per)

	for _, cost := range []time.Duration{0, 10 * time.Nanosecond, fence.DefaultCost, 50 * time.Nanosecond, 100 * time.Nanosecond} {
		m := fence.NewModel(cost)
		t0 = time.Now()
		for i := 0; i < n; i++ {
			slot.Store(uint64(i))
			m.Full()
		}
		fmt.Printf("fenced publication, model %-6v (classic HP): %v\n", cost, time.Since(t0)/n)
	}
	fmt.Printf("\ndefault fence model: %v (see DESIGN.md §2 for the rationale)\n", fence.DefaultCost)
}
