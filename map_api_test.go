package qsense_test

import (
	"context"
	"sync"
	"testing"

	"qsense"
)

// TestPublicSkipMap: SkipMap's value semantics hold across every scheme
// through the public API alone.
func TestPublicSkipMap(t *testing.T) {
	for _, scheme := range apiSchemes {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			m, err := qsense.NewSkipMap(qsense.Options{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			h, err := m.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			defer h.Release()
			if _, ok := h.Get(1); ok {
				t.Fatal("empty get")
			}
			if !h.Put(1, 11) {
				t.Fatal("first Put should insert")
			}
			if h.Put(1, 22) {
				t.Fatal("second Put should update")
			}
			if v, ok := h.Get(1); !ok || v != 22 {
				t.Fatalf("Get = %d,%v want 22,true", v, ok)
			}
			if !h.Delete(1) || h.Delete(1) {
				t.Fatal("delete semantics")
			}
			if m.Len() != 0 {
				t.Fatalf("Len = %d want 0", m.Len())
			}
		})
	}
}

// TestSkipMapLeaseChurn: goroutine-per-request leasing over the map — the
// connection-handling shape qsense-kvd uses — with concurrent Put/Get/
// Delete on a small key range. Every lease must come back and every Get
// must see a value written for its own key.
func TestSkipMapLeaseChurn(t *testing.T) {
	m, err := qsense.NewSkipMap(qsense.Options{Scheme: qsense.SchemeQSense})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const (
		goroutines = 32
		requests   = 40
		keyRange   = 128
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				h, err := m.AcquireWait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < 32; i++ {
					k := int64((g*31 + r*7 + i) % keyRange)
					switch i % 4 {
					case 0:
						h.Put(k, uint64(k)*1000)
					case 1:
						h.Delete(k)
					default:
						if v, ok := h.Get(k); ok && v != uint64(k)*1000 {
							errs <- errWrongValue{k: k, v: v}
							h.Release()
							return
						}
					}
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.AcquiredHandles != st.ReleasedHandles {
		t.Fatalf("leaked leases: acquired %d released %d", st.AcquiredHandles, st.ReleasedHandles)
	}
}

type errWrongValue struct {
	k int64
	v uint64
}

func (e errWrongValue) Error() string { return "wrong value word observed" }
