package qsense_test

import (
	"context"
	"sync"
	"testing"

	"qsense"
)

// TestPublicSkipMap: SkipMap's value semantics hold across every scheme
// through the public API alone.
func TestPublicSkipMap(t *testing.T) {
	for _, scheme := range apiSchemes {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			m, err := qsense.NewSkipMap(qsense.Options{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			h, err := m.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			defer h.Release()
			if _, ok := h.Get(1); ok {
				t.Fatal("empty get")
			}
			if !h.PutUint64(1, 11) {
				t.Fatal("first Put should insert")
			}
			if h.PutUint64(1, 22) {
				t.Fatal("second Put should update")
			}
			if v, ok := h.GetUint64(1); !ok || v != 22 {
				t.Fatalf("GetUint64 = %d,%v want 22,true", v, ok)
			}
			// The uint64 fast path stores minimal little-endian bytes; the
			// byte API reads the same entry.
			if b, ok := h.Get(1); !ok || len(b) != 1 || b[0] != 22 {
				t.Fatalf("Get = %v,%v want [22],true", b, ok)
			}
			// Byte values: an inline-sized update then a spilled (>7 byte)
			// one, both visible through GetAppend with a reused buffer.
			if h.Put(1, []byte("tiny")) {
				t.Fatal("byte Put on existing key should update")
			}
			spilled := []byte("a value too long to inline")
			if h.Put(1, spilled) {
				t.Fatal("spilled Put on existing key should update")
			}
			buf := make([]byte, 0, 64)
			if b, ok := h.GetAppend(1, buf); !ok || string(b) != string(spilled) {
				t.Fatalf("GetAppend = %q,%v", b, ok)
			}
			if !h.Delete(1) || h.Delete(1) {
				t.Fatal("delete semantics")
			}
			if m.Len() != 0 {
				t.Fatalf("Len = %d want 0", m.Len())
			}
			vs := m.Values()
			if vs.Bytes != 0 || vs.Spilled != 0 {
				t.Fatalf("value gauges not drained: %+v", vs)
			}
			if vs.ValueRetires == 0 {
				t.Fatal("spilled displacement should have retired a value node")
			}
		})
	}
}

// TestSkipMapLeaseChurn: goroutine-per-request leasing over the map — the
// connection-handling shape qsense-kvd uses — with concurrent Put/Get/
// Delete on a small key range. Every lease must come back and every Get
// must see a value written for its own key.
func TestSkipMapLeaseChurn(t *testing.T) {
	m, err := qsense.NewSkipMap(qsense.Options{Scheme: qsense.SchemeQSense})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const (
		goroutines = 32
		requests   = 40
		keyRange   = 128
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				h, err := m.AcquireWait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < 32; i++ {
					k := int64((g*31 + r*7 + i) % keyRange)
					switch i % 4 {
					case 0:
						h.PutUint64(k, uint64(k)*1000)
					case 1:
						h.Delete(k)
					default:
						if v, ok := h.GetUint64(k); ok && v != uint64(k)*1000 {
							errs <- errWrongValue{k: k, v: v}
							h.Release()
							return
						}
					}
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.AcquiredHandles != st.ReleasedHandles {
		t.Fatalf("leaked leases: acquired %d released %d", st.AcquiredHandles, st.ReleasedHandles)
	}
}

type errWrongValue struct {
	k int64
	v uint64
}

func (e errWrongValue) Error() string { return "wrong value word observed" }
