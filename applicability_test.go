package qsense_test

import (
	"testing"

	"qsense"
)

// TestApplicabilityMatrixShape: the matrix covers exactly Structures ×
// SchemeNames, and ParseScheme round-trips every reported scheme.
func TestApplicabilityMatrixShape(t *testing.T) {
	m := qsense.Applicability()
	if len(m) != len(qsense.Structures()) {
		t.Fatalf("matrix has %d structures, Structures() lists %d", len(m), len(qsense.Structures()))
	}
	for _, ds := range qsense.Structures() {
		row, ok := m[ds]
		if !ok {
			t.Fatalf("no row for structure %q", ds)
		}
		if len(row) != len(qsense.SchemeNames()) {
			t.Fatalf("%s row has %d schemes, SchemeNames lists %d", ds, len(row), len(qsense.SchemeNames()))
		}
		for _, s := range qsense.SchemeNames() {
			sch, err := qsense.ParseScheme(s)
			if err != nil {
				t.Fatalf("SchemeNames entry %q does not parse: %v", s, err)
			}
			if got, cell := qsense.Applicable(sch, ds), row[sch]; got != cell {
				t.Fatalf("Applicable(%s, %s)=%v but matrix says %v", s, ds, got, cell)
			}
		}
	}
	if _, err := qsense.ParseScheme("nonesuch"); err == nil {
		t.Fatal("ParseScheme accepted an unknown name")
	}
	if qsense.Applicable(qsense.SchemeQSense, "nonesuch") {
		t.Fatal("Applicable accepted an unknown structure")
	}
}

// TestApplicabilityRuns keeps the matrix honest: every pairing reported
// applicable must actually construct and survive a smoke workload that
// inserts, deletes (driving Retire) and re-reads.
func TestApplicabilityRuns(t *testing.T) {
	type setLike interface {
		Acquire() (qsense.SetHandle, error)
		Stats() qsense.Stats
		Close()
	}
	mkSet := map[string]func(qsense.Options) (setLike, error){
		"list":     func(o qsense.Options) (setLike, error) { return qsense.NewSet(o) },
		"skiplist": func(o qsense.Options) (setLike, error) { return qsense.NewSkipSet(o) },
		"bst":      func(o qsense.Options) (setLike, error) { return qsense.NewTreeSet(o) },
		"hashmap":  func(o qsense.Options) (setLike, error) { return qsense.NewHashSet(o) },
	}
	for ds, row := range qsense.Applicability() {
		for scheme, ok := range row {
			if !ok {
				continue
			}
			t.Run(ds+"/"+string(scheme), func(t *testing.T) {
				opts := qsense.Options{Scheme: scheme}
				switch ds {
				case "skipmap":
					m, err := qsense.NewSkipMap(opts)
					if err != nil {
						t.Fatal(err)
					}
					defer m.Close()
					h, err := m.Acquire()
					if err != nil {
						t.Fatal(err)
					}
					defer h.Release()
					for k := int64(1); k <= 32; k++ {
						h.PutUint64(k, uint64(k))
					}
					for k := int64(1); k <= 32; k += 2 {
						h.Delete(k)
					}
					if v, ok := h.GetUint64(2); !ok || v != 2 {
						t.Fatalf("Get(2) = %d,%v", v, ok)
					}
				case "queue":
					q, err := qsense.NewQueue(opts)
					if err != nil {
						t.Fatal(err)
					}
					defer q.Close()
					h, err := q.Acquire()
					if err != nil {
						t.Fatal(err)
					}
					defer h.Release()
					for v := uint64(0); v < 32; v++ {
						h.Enqueue(v)
					}
					for v := uint64(0); v < 32; v++ {
						if got, ok := h.Dequeue(); !ok || got != v {
							t.Fatalf("Dequeue = %d,%v want %d", got, ok, v)
						}
					}
				case "stack":
					s, err := qsense.NewStack(opts)
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					h, err := s.Acquire()
					if err != nil {
						t.Fatal(err)
					}
					defer h.Release()
					for v := uint64(0); v < 32; v++ {
						h.Push(v)
					}
					for v := uint64(31); ; v-- {
						if got, ok := h.Pop(); !ok || got != v {
							t.Fatalf("Pop = %d,%v want %d", got, ok, v)
						}
						if v == 0 {
							break
						}
					}
				default:
					mk, ok := mkSet[ds]
					if !ok {
						t.Fatalf("no smoke driver for structure %q", ds)
					}
					s, err := mk(opts)
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					h, err := s.Acquire()
					if err != nil {
						t.Fatal(err)
					}
					defer h.Release()
					for k := int64(1); k <= 32; k++ {
						h.Insert(k)
					}
					for k := int64(1); k <= 32; k += 2 {
						h.Delete(k)
					}
					for k := int64(1); k <= 32; k++ {
						if want := k%2 == 0; h.Contains(k) != want {
							t.Fatalf("contains(%d) != %v", k, want)
						}
					}
					if scheme != qsense.SchemeNone {
						if st := s.Stats(); st.Retired == 0 {
							t.Fatalf("deletes retired nothing: %+v", st)
						}
					}
				}
			})
		}
	}
}
