// Package qsense_test regenerates every figure of the paper's evaluation
// (§7) as Go benchmarks, plus the ablations DESIGN.md calls out. The
// figure benchmarks report throughput via the "Mops/s" metric — the y-axis
// of Figures 3 and 5; ns/op is not the interesting number there.
//
// Shapes to look for (EXPERIMENTS.md records a full run):
//
//	Fig3, Fig5Top:  none ≈ qsbr > qsense >> hp, qsense 2-3x over hp
//	Fig5Bottom:     qsbr FAILS (OOM) under stalls; qsense switches & survives
package qsense_test

import (
	"fmt"
	"testing"
	"time"

	"qsense/internal/fence"
	"qsense/internal/harness"
	"qsense/internal/list"
	"qsense/internal/mem"
	"qsense/internal/reclaim"
	"qsense/internal/rooster"
	"qsense/internal/skiplist"
	"qsense/internal/workload"
)

// benchThreads are the worker counts exercised per scheme (the paper sweeps
// 1..32 on 48 cores; adjust with the harness CLI for bigger machines).
var benchThreads = []int{1, 2, 4}

// runFigurePoint executes one fixed-duration harness run and reports the
// figure's metric. The run length is fixed (benchmark wall time, not b.N,
// is the budget that matters for a throughput experiment); b.N iterations
// are consumed trivially so the framework converges after one escalation.
func runFigurePoint(b *testing.B, cfg harness.Config) {
	b.Helper()
	cfg.Duration = 250 * time.Millisecond
	res, err := harness.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(res.Mops, "Mops/s")
	b.ReportMetric(float64(res.Reclaim.Pending), "pending-nodes")
}

func scalabilityReclaim() reclaim.Config {
	return reclaim.Config{
		Q:       32,
		C:       1 << 20, // common case: no delays, stay on the fast path
		Rooster: rooster.Config{Interval: 2 * time.Millisecond},
	}
}

// BenchmarkFig3 — Figure 3: linked list, 2000 keys, 10% updates,
// None vs QSense vs HP.
func BenchmarkFig3(b *testing.B) {
	for _, scheme := range []string{"none", "qsense", "hp"} {
		for _, p := range benchThreads {
			b.Run(fmt.Sprintf("%s/p%d", scheme, p), func(b *testing.B) {
				runFigurePoint(b, harness.Config{
					DS: "list", Scheme: scheme, Workers: p,
					KeyRange: harness.PaperListRange, UpdatePct: 10,
					Reclaim: scalabilityReclaim(), Seed: 3,
				})
			})
		}
	}
}

// BenchmarkFig5Top — Figure 5 top row: list (2000 keys), skip list
// (20000 keys), BST (200k keys scaled; the paper uses 2M — pass
// -benchtime with cmd/qsense-bench -paper for the full size), 50% updates,
// None vs QSBR vs QSense vs HP.
func BenchmarkFig5Top(b *testing.B) {
	ranges := map[string]int64{
		"list":     harness.PaperListRange,
		"skiplist": harness.PaperSkipRange,
		"bst":      harness.DefaultBSTRange,
	}
	for _, ds := range harness.DataStructures() {
		for _, scheme := range []string{"none", "qsbr", "qsense", "hp"} {
			for _, p := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/p%d", ds, scheme, p), func(b *testing.B) {
					if testing.Short() && ds == "bst" {
						b.Skip("bst fill is slow; skipped in -short")
					}
					runFigurePoint(b, harness.Config{
						DS: ds, Scheme: scheme, Workers: p,
						KeyRange: ranges[ds], UpdatePct: 50,
						Reclaim: scalabilityReclaim(), Seed: 5,
					})
				})
			}
		}
	}
}

// BenchmarkFig5Bottom — Figure 5 bottom row: 8 workers, 50% updates, one
// worker stalled half the time (compressed schedule), retired-node budget
// standing in for RAM. QSBR runs out of memory; QSense switches paths and
// survives; HP is robust but slow. The reported metrics show it: qsbr's
// "survived" metric is 0 and its Mops/s collapses.
func BenchmarkFig5Bottom(b *testing.B) {
	for _, ds := range harness.DataStructures() {
		for _, scheme := range []string{"qsbr", "qsense", "hp"} {
			b.Run(ds+"/"+scheme, func(b *testing.B) {
				if testing.Short() {
					b.Skip("delay schedule takes seconds; skipped in -short")
				}
				// One compressed stall cycle: worker 0 sleeps from
				// 0.3s to 2.5s of a 3s run (cmd/qsense-delays runs
				// the paper's full five-cycle schedule).
				plan := workload.DelayPlan{Worker: 0, Start: 300 * time.Millisecond,
					Duration: 2200 * time.Millisecond, Period: 10 * time.Second}
				kr := map[string]int64{"list": 2000, "skiplist": 20000, "bst": 50000}[ds]
				rc, err := harness.DelayReclaim(ds, 8, 0)
				if err != nil {
					b.Fatal(err)
				}
				cfg := harness.Config{
					DS: ds, Scheme: scheme, Workers: 8,
					KeyRange: kr, UpdatePct: 50,
					Duration: 3 * time.Second,
					Reclaim:  rc,
					Delays:   &plan, SampleEvery: 50 * time.Millisecond, Seed: 7,
				}
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
				}
				b.ReportMetric(res.Mops, "Mops/s")
				survived := 1.0
				if res.Failed {
					survived = 0
				}
				b.ReportMetric(survived, "survived")
				b.ReportMetric(float64(res.Reclaim.SwitchesToFallback), "fallbacks")
				b.ReportMetric(float64(res.Reclaim.SwitchesToFast), "recoveries")
			})
		}
	}
}

// --- micro and ablation benchmarks ---

type benchNode struct {
	v uint64
	_ [48]byte
}

// BenchmarkProtect measures assign_HP per scheme — the paper's central
// per-node cost (§3.2): a no-op for QSBR, a bare store for Cadence/QSense,
// a store+fence for HP.
func BenchmarkProtect(b *testing.B) {
	pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
	for _, scheme := range reclaim.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			d, err := reclaim.New(scheme, reclaim.Config{
				Workers: 1, HPs: 2, Free: func(r mem.Ref) { pool.Free(r) },
				ManualRooster: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			g := d.Guard(0)
			r, _ := pool.Alloc()
			defer pool.Free(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Protect(i&1, r)
			}
		})
	}
}

// BenchmarkFenceCost sweeps the modeled fence latency — the knob that
// converts "HP is slow" from assumption into measurement.
func BenchmarkFenceCost(b *testing.B) {
	for _, cost := range []time.Duration{0, 20 * time.Nanosecond, 50 * time.Nanosecond, 100 * time.Nanosecond} {
		b.Run(cost.String(), func(b *testing.B) {
			m := fence.NewModel(cost)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Full()
			}
		})
	}
}

// BenchmarkHPFenceAblation runs the Figure 3 list point (2 workers) with
// HP's fence cost swept: at 0 the fence is free and HP's gap to QSense is
// only the scan machinery; at the default it is the paper's penalty.
func BenchmarkHPFenceAblation(b *testing.B) {
	for _, cost := range []time.Duration{-1, 20 * time.Nanosecond, 50 * time.Nanosecond, 100 * time.Nanosecond} {
		name := "free"
		if cost > 0 {
			name = cost.String()
		}
		b.Run(name, func(b *testing.B) {
			rc := scalabilityReclaim()
			rc.FenceCost = cost
			runFigurePoint(b, harness.Config{
				DS: "list", Scheme: "hp", Workers: 2,
				KeyRange: harness.PaperListRange, UpdatePct: 10,
				Reclaim: rc, Seed: 11,
			})
		})
	}
}

// BenchmarkRetire measures free_node_later + amortized reclamation per
// scheme: alloc+retire in a loop, steady state.
func BenchmarkRetire(b *testing.B) {
	for _, scheme := range reclaim.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
			d, err := reclaim.New(scheme, reclaim.Config{
				Workers: 1, HPs: 2, Free: func(r mem.Ref) { pool.Free(r) },
				Q: 32, R: 64,
				Rooster: rooster.Config{Interval: time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			g := d.Guard(0)
			cache := pool.NewCache(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Begin()
				r, _ := cache.Alloc()
				g.Retire(r)
			}
			b.StopTimer()
			if scheme == "none" && b.N > 10 {
				b.ReportMetric(float64(pool.Stats().Live)/float64(b.N), "leaked/op")
			}
		})
	}
}

// BenchmarkScanThresholdR sweeps Cadence's scan threshold: small R scans
// often (low memory, high CPU), large R amortizes (the paper's R term in
// the N(K+T+R) bound).
func BenchmarkScanThresholdR(b *testing.B) {
	for _, r := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("R%d", r), func(b *testing.B) {
			rc := reclaim.Config{Q: 32, R: r, Rooster: rooster.Config{Interval: 2 * time.Millisecond}}
			runFigurePoint(b, harness.Config{
				DS: "list", Scheme: "cadence", Workers: 2,
				KeyRange: 512, UpdatePct: 50, Reclaim: rc, Seed: 13,
			})
		})
	}
}

// BenchmarkQuiescenceQ sweeps QSBR's quiescence threshold (§3.1: "batching
// operations in this way boosts performance").
func BenchmarkQuiescenceQ(b *testing.B) {
	for _, q := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) {
			rc := reclaim.Config{Q: q}
			runFigurePoint(b, harness.Config{
				DS: "list", Scheme: "qsbr", Workers: 2,
				KeyRange: 512, UpdatePct: 50, Reclaim: rc, Seed: 17,
			})
		})
	}
}

// BenchmarkRoosterInterval sweeps Cadence's T: longer intervals defer
// reclamation further (more pending memory) but flush less often.
func BenchmarkRoosterInterval(b *testing.B) {
	for _, t := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond} {
		b.Run(t.String(), func(b *testing.B) {
			rc := reclaim.Config{Q: 32, Rooster: rooster.Config{Interval: t}}
			runFigurePoint(b, harness.Config{
				DS: "list", Scheme: "cadence", Workers: 2,
				KeyRange: 512, UpdatePct: 50, Reclaim: rc, Seed: 19,
			})
		})
	}
}

// BenchmarkArenaAlloc compares pool allocation paths: the shared free list
// vs per-worker magazines (the allocator ablation).
func BenchmarkArenaAlloc(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, _ := pool.Alloc()
			pool.Free(r)
		}
	})
	b.Run("magazine", func(b *testing.B) {
		pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
		c := pool.NewCache(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, _ := c.Alloc()
			c.Free(r)
		}
	})
}

// BenchmarkListOps measures raw structure operation latency under the two
// paths QSense alternates between, for one worker (no contention). The
// ebr/ibr/hyaline points are the CI perf-smoke guard for the new scheme
// families: both must stay within 2x of ebr, the cheapest epoch baseline.
func BenchmarkListOps(b *testing.B) {
	for _, scheme := range []string{"qsbr", "cadence", "ebr", "ibr", "hyaline"} {
		b.Run(scheme, func(b *testing.B) {
			l := list.New(list.Config{})
			d, err := reclaim.New(scheme, reclaim.Config{
				Workers: 1, HPs: list.HPs, Free: l.FreeNode, Era: l.Pool(),
				Rooster: rooster.Config{Interval: 2 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			h := l.NewHandle(d.Guard(0))
			for k := int64(0); k < 1000; k += 2 {
				h.Insert(k)
			}
			rng := workload.NewRNG(23)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := rng.Key(1000)
				switch i % 4 {
				case 0:
					h.Insert(k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		})
	}
}

// BenchmarkSkipListOps measures raw skip list operation latency — the
// structure with the paper's widest hazard pointer budget (2*levels+2,
// §7.3) and therefore the most protect/validate work per operation. The
// hp point is the CI perf-smoke guard for the upper-level claim-then-link
// protocol (see the skiplist package doc): its per-level claim CAS and
// the splice path's scratch-slot protection must stay within noise of the
// pre-protocol baseline; qsbr runs alongside as the protection-free
// ceiling.
func BenchmarkSkipListOps(b *testing.B) {
	for _, scheme := range []string{"qsbr", "hp"} {
		b.Run(scheme, func(b *testing.B) {
			s := skiplist.New(skiplist.Config{Levels: 16})
			d, err := reclaim.New(scheme, reclaim.Config{
				Workers: 1, HPs: skiplist.HPsFor(s.Levels()), Free: s.FreeNode,
				Rooster: rooster.Config{Interval: 2 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			h := s.NewHandle(d.Guard(0), 1)
			for k := int64(0); k < 2000; k += 2 {
				h.Insert(k)
			}
			rng := workload.NewRNG(29)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := rng.Key(2000)
				switch i % 4 {
				case 0:
					h.Insert(k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		})
	}
}

// BenchmarkScanAfterBurst is the occupancy-proportionality benchmark: the
// arena is grown past 1024 slots by a burst of simultaneous leases, drained
// back to a handful of live workers (parking the grown segments), and then
// the per-op reclamation cost of the survivors is measured. Pre-PR — before
// the active-slot index and segment parking — every scan and epoch-advance
// walked the full high-water arena (>= 2048 records per pass at this
// geometry); with the occupancy walk a pass visits only the live workers,
// so the reported scanned-records/op metric stays near live*passes/ops
// instead of scaling with the burst. That is a >100x per-pass reduction at
// this geometry, far past the 10x the acceptance bar asks for, and it is
// what keeps BenchmarkProtect/BenchmarkListOps/BenchmarkLeaseChurn (which
// never grow their arenas) untouched: a never-grown domain walks exactly
// the slots it always did.
func BenchmarkScanAfterBurst(b *testing.B) {
	const burst, live = 1500, 4 // burst grows the 8-slot arena to 2048
	for _, scheme := range reclaim.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
			cfg := reclaim.Config{
				Workers: 8, HPs: 2, Free: func(r mem.Ref) { pool.Free(r) },
				Q: 8, Rooster: rooster.Config{Interval: time.Millisecond},
			}
			d, err := reclaim.New(scheme, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			burstGuards := make([]reclaim.Guard, burst)
			for i := range burstGuards {
				if burstGuards[i], err = d.Acquire(); err != nil {
					b.Fatal(err)
				}
			}
			for _, g := range burstGuards {
				d.Release(g)
			}
			guards := make([]reclaim.Guard, live)
			for i := range guards {
				if guards[i], err = d.Acquire(); err != nil {
					b.Fatal(err)
				}
			}
			cache := pool.NewCache(0)
			before := d.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := guards[i%live]
				g.Begin()
				r, _ := cache.Alloc()
				g.Retire(r)
			}
			b.StopTimer()
			st := d.Stats()
			b.ReportMetric(float64(st.ScannedRecords-before.ScannedRecords)/float64(b.N), "scanned/op")
			b.ReportMetric(float64(st.ArenaSize), "arena-slots")
			b.ReportMetric(float64(st.ParkedSlots), "parked-slots")
			for _, g := range guards {
				d.Release(g)
			}
		})
	}
}

// BenchmarkLeaseChurn measures one Acquire/operate/Release cycle per
// scheme with a warm, never-growing arena — the hot path the elastic
// redesign must not tax: when no growth occurs the segment directory adds
// at most one extra indirection per lease, so this stays within noise of
// the fixed-arena baseline.
func BenchmarkLeaseChurn(b *testing.B) {
	for _, scheme := range reclaim.Schemes() {
		b.Run(scheme, func(b *testing.B) {
			pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
			d, err := reclaim.New(scheme, reclaim.Config{
				Workers: 4, HPs: 2, Free: func(r mem.Ref) { pool.Free(r) },
				Q: 32, R: 64,
				Rooster: rooster.Config{Interval: 2 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			r, _ := pool.Alloc()
			defer pool.Free(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := d.Acquire()
				if err != nil {
					b.Fatal(err)
				}
				g.Begin()
				g.Protect(0, r)
				g.ClearHPs()
				d.Release(g)
			}
		})
	}
}

// BenchmarkLeaseChurnSharded is BenchmarkLeaseChurn under PARALLEL churn,
// at 1 vs 4 shards: every goroutine hammers Acquire/Release, so the
// single-shard configuration serializes on one freelist head while the
// sharded one spreads the CAS traffic by power-of-two-choices. Run with
// -cpu=8 to see the separation; on fewer cores the goroutines time-slice
// one CPU and the shard count cannot matter. The 1-shard series doubles as
// the regression guard against the pre-sharding lease hot path.
func BenchmarkLeaseChurnSharded(b *testing.B) {
	for _, scheme := range reclaim.Schemes() {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(b *testing.B) {
				pool := mem.NewPool[benchNode](mem.Config{Name: "bench"})
				d, err := reclaim.New(scheme, reclaim.Config{
					Workers: 16, HPs: 2, Free: func(r mem.Ref) { pool.Free(r) },
					Q: 32, R: 64, Shards: shards,
					Rooster: rooster.Config{Interval: 2 * time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				r, _ := pool.Alloc()
				defer pool.Free(r)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						g, err := d.Acquire()
						if err != nil {
							panic(err) // elastic domain: Acquire cannot fail
						}
						g.Begin()
						g.Protect(0, r)
						g.ClearHPs()
						d.Release(g)
					}
				})
			})
		}
	}
}
