package workload

import "math"

// zipfGen is a bounded zipfian key generator after Gray et al. ("Quickly
// generating billion-record synthetic databases", SIGMOD '94) — the YCSB
// zipfian generator. Setup is O(keyRange) once (the zeta sum); every draw
// after that is O(1). Rank r is drawn with probability proportional to
// 1/(r+1)^theta, so key 0 is the hottest.
type zipfGen struct {
	n     int64
	theta float64

	alpha, zetan, eta, half float64
}

func newZipfGen(n int64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	z.zetan = zetaSum(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zetaSum(2, theta)/z.zetan)
	z.half = math.Pow(0.5, theta)
	return z
}

// zetaSum is the generalized harmonic number H_{n,theta}.
func zetaSum(n int64, theta float64) float64 {
	s := 0.0
	for i := int64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// next maps a uniform u in [0,1) to a zipf-distributed rank in [0, n).
func (z *zipfGen) next(u float64) int64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// ZipfKey draws a zipf-skewed key in [0, keyRange): key 0 is the hottest,
// and theta in (0, 1) sets the skew (YCSB's default hot-key skew is 0.99;
// theta <= 0 degrades to the uniform Key). The generator state is cached
// in the RNG and rebuilt only when keyRange or theta change, so steady-
// state draws are O(1); the first call for a given shape pays an
// O(keyRange) zeta sum. Callers that want hot keys scattered across the
// key space rather than clustered at 0 can hash the returned rank.
func (r *RNG) ZipfKey(keyRange int64, theta float64) int64 {
	if theta <= 0 || keyRange <= 1 {
		return r.Key(keyRange)
	}
	if theta >= 1 {
		// The Gray formula needs theta != 1; clamp just below, which is
		// indistinguishable at benchmark sample sizes.
		theta = 1 - 1e-9
	}
	if r.zipf == nil || r.zipf.n != keyRange || r.zipf.theta != theta {
		r.zipf = newZipfGen(keyRange, theta)
	}
	// 53-bit mantissa uniform in [0,1).
	u := float64(r.Next()>>11) / (1 << 53)
	return r.zipf.next(u)
}
