package workload

// Value-size distributions and self-verifying payloads for the byte-valued
// macro-benchmark: the load generator sizes each SET from a SizeDist and
// fills it with AppendPayload, and verifies every GET reply with
// VerifyPayload — a torn or freed value read by the server is detected at
// the client as a checksum mismatch, not just a wrong byte.

// SizeDist describes a value-size distribution: every value is at least
// Base bytes, optionally extended by a zipf-skewed amount up to Max (small
// extensions are the common case, near-Max ones the tail — the shape of
// real KV value populations). Max <= Base means fixed Base-byte values.
type SizeDist struct {
	Base  int     // minimum (or fixed) value size in bytes
	Max   int     // inclusive size cap; <= Base disables the extension
	Theta float64 // zipf skew of the extension; <= 0 makes it uniform
}

// Fixed reports whether every sample has the same size.
func (d SizeDist) Fixed() bool { return d.Max <= d.Base }

// Sample draws a value size.
func (d SizeDist) Sample(r *RNG) int {
	if d.Fixed() {
		return d.Base
	}
	return d.Base + int(r.ZipfKey(int64(d.Max-d.Base+1), d.Theta))
}

// payloadSeed derives the stream seed for a (key, salt, length) triple.
func payloadSeed(key int64, salt uint64, n int) uint64 {
	return uint64(key)*0x9e3779b97f4a7c15 ^ salt ^ uint64(n)<<1
}

// AppendPayload appends an n-byte self-verifying value for key onto dst.
// Payloads of 8+ bytes embed the salt (a per-write nonce) in their first 8
// bytes, little-endian, and fill the rest from a splitmix stream seeded by
// (key, salt, n) — so two writes to the same key with different salts
// produce wholly different streams, and a reader that stitches bytes from
// two of them (a torn read) or from a recycled slot (a freed read) fails
// VerifyPayload. Shorter payloads have no room for a salt; they are fully
// determined by (key, n), which is still enough to catch cross-key and
// freed-value corruption — and sub-8-byte values live inline in a single
// atomic word, untearable by construction.
func AppendPayload(dst []byte, key int64, salt uint64, n int) []byte {
	if n < 8 {
		salt = 0
	}
	s := payloadSeed(key, salt, n)
	rng := RNG{state: s}
	i := 0
	if n >= 8 {
		for ; i < 8; i++ {
			dst = append(dst, byte(salt>>(8*i)))
		}
	}
	for i < n {
		w := rng.Next()
		for b := 0; b < 8 && i < n; b++ {
			dst = append(dst, byte(w>>(8*b)))
			i++
		}
	}
	return dst
}

// VerifyPayload reports whether b is an intact AppendPayload stream for
// key.
func VerifyPayload(b []byte, key int64) bool {
	n := len(b)
	var salt uint64
	if n >= 8 {
		for i := 0; i < 8; i++ {
			salt |= uint64(b[i]) << (8 * i)
		}
	}
	rng := RNG{state: payloadSeed(key, salt, n)}
	i := 0
	if n >= 8 {
		i = 8
	}
	for i < n {
		w := rng.Next()
		for bi := 0; bi < 8 && i < n; bi++ {
			if b[i] != byte(w>>(8*bi)) {
				return false
			}
			i++
		}
	}
	return true
}
