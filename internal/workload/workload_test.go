package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMixProportions(t *testing.T) {
	cases := []struct {
		update int
	}{{0}, {10}, {50}, {100}}
	for _, c := range cases {
		m := Mix{UpdatePct: c.update}
		rng := NewRNG(1)
		var s, i, d int
		const n = 200000
		for k := 0; k < n; k++ {
			switch m.Choose(rng.Next()) {
			case OpSearch:
				s++
			case OpInsert:
				i++
			case OpDelete:
				d++
			}
		}
		gotUpd := float64(i+d) / n * 100
		if gotUpd < float64(c.update)-2 || gotUpd > float64(c.update)+2 {
			t.Errorf("update%%=%d: measured %.1f", c.update, gotUpd)
		}
		if c.update > 0 {
			ratio := float64(i) / float64(i+d)
			if ratio < 0.45 || ratio > 0.55 {
				t.Errorf("update%%=%d: insert share %.2f not ~50/50", c.update, ratio)
			}
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between streams", same)
	}
}

func TestRNGKeyInRange(t *testing.T) {
	f := func(seed uint64, rangeHint uint16) bool {
		kr := int64(rangeHint)%1000 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			k := r.Key(kr)
			if k < 0 || k >= kr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGKeyCoverage(t *testing.T) {
	r := NewRNG(3)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		seen[r.Key(64)] = true
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d/64 keys", len(seen))
	}
}

func TestDelayPlanPaperSchedule(t *testing.T) {
	p := PaperDelayPlan(1)
	// Paper: stalls during 10-20, 30-40, 50-60, 70-80, 90-100.
	cases := []struct {
		at      time.Duration
		stalled bool
	}{
		{0, false}, {5 * time.Second, false}, {10 * time.Second, true},
		{15 * time.Second, true}, {19 * time.Second, true},
		{20 * time.Second, false}, {25 * time.Second, false},
		{30 * time.Second, true}, {45 * time.Second, false},
		{55 * time.Second, true}, {95 * time.Second, true},
	}
	for _, c := range cases {
		got, _ := p.StalledAt(c.at)
		if got != c.stalled {
			t.Errorf("t=%v: stalled=%v, want %v", c.at, got, c.stalled)
		}
	}
}

func TestDelayPlanResumeTime(t *testing.T) {
	p := PaperDelayPlan(1)
	stalled, until := p.StalledAt(12 * time.Second)
	if !stalled || until != 20*time.Second {
		t.Fatalf("stall at 12s must end at 20s, got %v (stalled=%v)", until, stalled)
	}
}

func TestDelayPlanScaled(t *testing.T) {
	p := PaperDelayPlan(0.1) // 1s stalls every 2s from t=1s
	if s, _ := p.StalledAt(1500 * time.Millisecond); !s {
		t.Fatal("scaled plan: expected stall at 1.5s")
	}
	if s, _ := p.StalledAt(500 * time.Millisecond); s {
		t.Fatal("scaled plan: no stall before start")
	}
}

func TestDelayPlanZeroIsNever(t *testing.T) {
	var p DelayPlan
	if s, _ := p.StalledAt(time.Hour); s {
		t.Fatal("zero plan must never stall")
	}
}

func TestFill(t *testing.T) {
	if Fill(2000) != 1000 || Fill(3) != 1 {
		t.Fatal("fill is half the range")
	}
}
