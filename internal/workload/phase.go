package workload

import "time"

// Phase is one step of a PhasePlan: for Duration, the load generator
// offers Load times its full configured load. Load 1 means every
// connection drives operations flat out; Load 0.1 means one in ten
// connections stays active (the rest disconnect); Load 0 is a fully idle
// gap. Fractions select a prefix of the worker population, so the same
// workers stay hot across repeated bursts.
type Phase struct {
	Name     string
	Duration time.Duration
	Load     float64
}

// PhasePlan is a load schedule: phases run back to back, once. The
// burst-then-idle shape — a connection storm followed by a near-idle
// trough — is the traffic the elastic arena (growth) and the occupancy
// machinery (parking, threshold re-tuning) exist for; a plan makes it
// reproducible.
type PhasePlan struct {
	Phases []Phase
}

// BurstIdle builds the canonical burst-then-idle plan: cycles repetitions
// of full load for burst followed by idleLoad (fraction of connections,
// e.g. 0.05) for idle.
func BurstIdle(burst, idle time.Duration, cycles int, idleLoad float64) PhasePlan {
	if cycles < 1 {
		cycles = 1
	}
	p := PhasePlan{}
	for i := 0; i < cycles; i++ {
		p.Phases = append(p.Phases,
			Phase{Name: "burst", Duration: burst, Load: 1},
			Phase{Name: "idle", Duration: idle, Load: idleLoad},
		)
	}
	return p
}

// Steady builds a single constant full-load phase.
func Steady(d time.Duration) PhasePlan {
	return PhasePlan{Phases: []Phase{{Name: "steady", Duration: d, Load: 1}}}
}

// Total is the plan's end-to-end duration.
func (p PhasePlan) Total() time.Duration {
	var t time.Duration
	for _, ph := range p.Phases {
		t += ph.Duration
	}
	return t
}

// At returns the phase in force at elapsed time t and how much of it
// remains. ok is false once t passes the end of the plan (the run is
// over). Phase boundaries belong to the later phase.
func (p PhasePlan) At(t time.Duration) (ph Phase, remaining time.Duration, ok bool) {
	if t < 0 {
		t = 0
	}
	for _, ph := range p.Phases {
		if t < ph.Duration {
			return ph, ph.Duration - t, true
		}
		t -= ph.Duration
	}
	return Phase{}, 0, false
}

// ActiveWorkers is how many of n workers phase ph keeps active: the prefix
// [0, ActiveWorkers) drives load, the suffix disconnects. Load 1 rounds to
// all n; any positive load keeps at least one worker active so a
// low-fraction idle phase still probes the server.
func (ph Phase) ActiveWorkers(n int) int {
	if ph.Load <= 0 {
		return 0
	}
	a := int(ph.Load * float64(n))
	if a < 1 {
		a = 1
	}
	if a > n {
		a = n
	}
	return a
}
