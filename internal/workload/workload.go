// Package workload generates the paper's evaluation workloads (§7.1):
// mixes of search/insert/delete operations with uniformly random keys over a
// fixed range, structures pre-filled to half the key range, and the §7.2
// process-delay schedule used by the path-switching experiment.
package workload

import "time"

// Op is a data structure operation kind.
type Op uint8

// Operation kinds.
const (
	OpSearch Op = iota
	OpInsert
	OpDelete
)

// Mix is an operation distribution. The paper's workloads split updates
// evenly between inserts and deletes (§7.2).
type Mix struct {
	UpdatePct int // percent of operations that are updates
}

// Choose maps a random value to an operation: updates are split evenly into
// inserts and deletes, the rest are searches.
func (m Mix) Choose(r uint64) Op {
	p := int(r % 100)
	if p >= m.UpdatePct {
		return OpSearch
	}
	if p%2 == 0 {
		return OpInsert
	}
	return OpDelete
}

// RNG is a splitmix64 generator: tiny, fast, and independent per worker.
// The zipf field caches ZipfKey's setup (see zipf.go).
type RNG struct {
	state uint64
	zipf  *zipfGen
}

// NewRNG seeds a generator; distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d} }

// Next returns the next pseudo-random value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Key draws a uniform key in [0, keyRange).
func (r *RNG) Key(keyRange int64) int64 {
	return int64(r.Next() % uint64(keyRange))
}

// DelayPlan describes the §7.2 disruption schedule: starting at Start, the
// chosen worker is suspended for Duration out of every Period, repeatedly.
// The paper delays one process for 10s out of every 20s, starting at t=10s.
type DelayPlan struct {
	Worker   int           // which worker stalls
	Start    time.Duration // first stall begins here
	Duration time.Duration // stall length
	Period   time.Duration // stall repeats every Period
}

// PaperDelayPlan returns the schedule of Figure 5 (bottom), scaled: with
// scale=1 it is the paper's exact 10s/20s pattern over 100s.
func PaperDelayPlan(scale float64) DelayPlan {
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * scale) }
	return DelayPlan{Worker: 0, Start: s(10 * time.Second), Duration: s(10 * time.Second), Period: s(20 * time.Second)}
}

// StalledAt reports whether the plan's worker should be stalled at elapsed
// time t, and if so, when the current stall ends.
func (p DelayPlan) StalledAt(t time.Duration) (bool, time.Duration) {
	if p.Period <= 0 || p.Duration <= 0 || t < p.Start {
		return false, 0
	}
	into := (t - p.Start) % p.Period
	if into < p.Duration {
		return true, t + (p.Duration - into)
	}
	return false, 0
}

// Fill computes the paper's initial fill: half the key range (§7.1).
func Fill(keyRange int64) int64 { return keyRange / 2 }
