package workload

import (
	"testing"
	"time"
)

func TestZipfKeyRangeAndSkew(t *testing.T) {
	const (
		keyRange = 10000
		draws    = 200000
		theta    = 0.99
	)
	rng := NewRNG(42)
	counts := make([]int, keyRange)
	for i := 0; i < draws; i++ {
		k := rng.ZipfKey(keyRange, theta)
		if k < 0 || k >= keyRange {
			t.Fatalf("key %d out of [0,%d)", k, keyRange)
		}
		counts[k]++
	}
	// Top-1% key mass: at theta=0.99 the 100 hottest ranks carry roughly
	// half the draws (a uniform draw would give them 1%).
	top := 0
	for k := 0; k < keyRange/100; k++ {
		top += counts[k]
	}
	mass := float64(top) / draws
	if mass < 0.35 {
		t.Fatalf("top-1%% key mass %.3f, want >= 0.35 for theta=%.2f", mass, theta)
	}
	// Rank ordering: key 0 is the hottest by a wide margin.
	if counts[0] < draws/100 {
		t.Fatalf("key 0 drew %d of %d, implausibly cold for the hottest rank", counts[0], draws)
	}
	if counts[0] <= counts[keyRange/2] {
		t.Fatalf("key 0 (%d) not hotter than the median rank (%d)", counts[0], counts[keyRange/2])
	}
}

func TestZipfKeyUniformFallback(t *testing.T) {
	const (
		keyRange = 10000
		draws    = 200000
	)
	rng := NewRNG(7)
	top := 0
	for i := 0; i < draws; i++ {
		if k := rng.ZipfKey(keyRange, 0); k < keyRange/100 {
			top++
		}
	}
	// theta <= 0 degrades to uniform: top 1% of keys get about 1%.
	if mass := float64(top) / draws; mass > 0.03 {
		t.Fatalf("top-1%% mass %.3f under theta=0, want ~0.01", mass)
	}
}

func TestZipfKeyReshapes(t *testing.T) {
	rng := NewRNG(1)
	// Changing shape parameters mid-stream must rebuild the cached state,
	// not silently keep the old distribution's range.
	for i := 0; i < 1000; i++ {
		if k := rng.ZipfKey(100, 0.99); k < 0 || k >= 100 {
			t.Fatalf("key %d out of [0,100)", k)
		}
	}
	for i := 0; i < 1000; i++ {
		if k := rng.ZipfKey(8, 0.5); k < 0 || k >= 8 {
			t.Fatalf("key %d out of [0,8)", k)
		}
	}
	// theta >= 1 is clamped, not NaN/panic.
	if k := rng.ZipfKey(100, 1.0); k < 0 || k >= 100 {
		t.Fatalf("key %d out of range under clamped theta", k)
	}
}

func TestPhasePlanTiming(t *testing.T) {
	p := BurstIdle(2*time.Second, time.Second, 2, 0.1)
	if got, want := p.Total(), 6*time.Second; got != want {
		t.Fatalf("Total = %v want %v", got, want)
	}
	cases := []struct {
		t         time.Duration
		name      string
		remaining time.Duration
		ok        bool
	}{
		{0, "burst", 2 * time.Second, true},
		{1999 * time.Millisecond, "burst", time.Millisecond, true},
		{2 * time.Second, "idle", time.Second, true}, // boundary -> later phase
		{2500 * time.Millisecond, "idle", 500 * time.Millisecond, true},
		{3 * time.Second, "burst", 2 * time.Second, true}, // second cycle
		{5999 * time.Millisecond, "idle", time.Millisecond, true},
		{6 * time.Second, "", 0, false}, // plan over
		{-time.Second, "burst", 2 * time.Second, true},
	}
	for _, c := range cases {
		ph, rem, ok := p.At(c.t)
		if ok != c.ok || ph.Name != c.name || rem != c.remaining {
			t.Fatalf("At(%v) = (%q, %v, %v), want (%q, %v, %v)", c.t, ph.Name, rem, ok, c.name, c.remaining, c.ok)
		}
	}
}

func TestPhaseActiveWorkers(t *testing.T) {
	cases := []struct {
		load float64
		n    int
		want int
	}{
		{1, 64, 64},
		{0.5, 64, 32},
		{0.05, 64, 3},
		{0.001, 64, 1}, // positive load keeps one prober
		{0, 64, 0},
		{2, 64, 64}, // clamped
	}
	for _, c := range cases {
		if got := (Phase{Load: c.load}).ActiveWorkers(c.n); got != c.want {
			t.Fatalf("ActiveWorkers(load=%v, n=%d) = %d want %d", c.load, c.n, got, c.want)
		}
	}
}
