// Package rooster implements the paper's rooster processes (§5.1).
//
// In the paper, a rooster process is pinned to each core and wakes every T;
// the context switch it forces drains the switched-out worker's store
// buffer, so any hazard pointer stored before the switch becomes globally
// visible. Go offers neither core pinning nor visibility-delayed stores, so
// this package implements the behavioural analog described in DESIGN.md §2:
// workers publish hazard pointers into private *pending* slots, and rooster
// goroutines periodically copy pending slots into the *shared* slots that
// reclamation scans read. An unflushed hazard pointer is genuinely invisible
// to scans — the moral equivalent of a store stuck in a store buffer — and
// the flush pass is the moral equivalent of the context switch.
//
// Deferred reclamation is expressed in flush passes ("ticks") rather than
// wall-clock time: a retired node stamped at tick s is old enough once the
// tick counter reaches s+2+ε. Pass s+2 begins only after pass s+1 completes,
// and pass s+1 completes after the stamp was taken, so pass s+2 runs
// entirely after the node was retired and has therefore flushed every hazard
// pointer stored before the retirement (paper, Figure 4). Unlike wall-clock
// ages, tick ages are immune to rooster oversleep: a late pass delays
// reclamation but can never unblock it early, which is exactly the paper's ε
// tolerance discussion resolved by construction.
package rooster

import (
	"sync"
	"sync/atomic"
	"time"
)

// OldEnoughTicks is the minimum number of ticks that must elapse past a
// node's stamp before the node may be reclaimed (the "+2" rule above),
// excluding any configured ε.
const OldEnoughTicks = 2

// A Target has hazard-pointer pending slots that a rooster pass flushes to
// the shared slots visible to scans. FlushHP must be safe to call
// concurrently with the owner's publications.
type Target interface {
	FlushHP()
}

// Config controls a Manager.
type Config struct {
	// Interval is the rooster sleep interval T. Default 2ms.
	Interval time.Duration
	// Roosters is the number of rooster goroutines sharing each pass
	// (the paper's one-per-core). Default 1; flushing tens of targets
	// takes microseconds, so more is fidelity rather than necessity.
	Roosters int
	// EpsilonTicks is the paper's ε expressed in ticks, added to the
	// old-enough threshold. Default 0 (the tick rule is jitter-immune).
	EpsilonTicks int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.Roosters <= 0 {
		c.Roosters = 1
	}
	return c
}

// Manager runs rooster passes over a registered set of targets and owns the
// tick counter used for deferred reclamation. Create with NewManager, then
// Start (or drive manually with Step in tests).
type Manager struct {
	cfg Config

	mu      sync.Mutex // guards targets, hooks and pass execution
	targets []Target
	hooks   []hook

	tick     atomic.Uint64
	passes   atomic.Uint64 // == tick, kept separate for stats clarity
	started  atomic.Bool
	lastPass atomic.Int64 // unix nanos of the last completed pass
	stopCh   chan struct{}
	doneCh   chan struct{}
}

type hook struct {
	every uint64
	f     func()
}

// NewManager returns a stopped manager.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults()}
}

// Interval returns the configured rooster sleep interval T.
func (m *Manager) Interval() time.Duration { return m.cfg.Interval }

// Register adds a flush target. Safe before or after Start.
func (m *Manager) Register(t Target) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.targets = append(m.targets, t)
}

// AddHook registers f to run at the end of every `every`-th pass (e.g. the
// QSense presence-flag reset). Safe before or after Start.
func (m *Manager) AddHook(every int, f func()) {
	if every <= 0 {
		every = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hooks = append(m.hooks, hook{every: uint64(every), f: f})
}

// Tick returns the number of completed passes. Retired nodes are stamped
// with this value.
func (m *Manager) Tick() uint64 { return m.tick.Load() }

// OldEnough reports whether a node stamped at `stamp` may be reclaimed now.
func (m *Manager) OldEnough(stamp uint64) bool {
	return m.OldEnoughAt(stamp, m.tick.Load())
}

// OldEnoughAt is OldEnough evaluated against a tick value the caller read
// earlier. A deferred scan MUST capture the tick BEFORE snapshotting the
// shared hazard pointers and judge oldness against that capture: oldness at
// tick t guarantees every protection of the node was flushed by t, so it is
// in any snapshot taken after t — whereas judging against the live clock
// lets a pass that completes mid-scan make a node "old" whose protector's
// flush the already-taken snapshot missed.
func (m *Manager) OldEnoughAt(stamp, tick uint64) bool {
	return tick >= stamp+OldEnoughTicks+uint64(m.cfg.EpsilonTicks)
}

// Step runs one synchronous rooster pass: flush all targets (split among
// cfg.Roosters goroutines as the paper splits cores), run due hooks, then
// advance the tick. Tests drive reclamation deterministically with Step;
// Start drives it on a timer.
func (m *Manager) Step() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.passLocked()
	m.lastPass.Store(time.Now().UnixNano())
}

// Poll is the cooperative rooster: if the manager is running and a full
// interval has elapsed since the last pass, the calling worker performs the
// pass itself. The paper pins a rooster to every core and relies on the OS
// scheduler to run it on time; a Go scheduler with more spinning workers
// than cores can delay timer wake-ups by an order of magnitude, stretching
// the effective T and with it the deferred-reclamation memory floor
// (Property 2's N(K+T+R) grows with T). Having workers run overdue passes
// inline restores the guarantee that a pass completes within ~T whenever
// the system is active — and an entirely idle system retires nothing, so
// no pass is needed. No-op on a stopped or manual manager, keeping
// deterministic tests deterministic.
func (m *Manager) Poll() {
	if !m.started.Load() {
		return
	}
	now := time.Now().UnixNano()
	if now-m.lastPass.Load() < int64(m.cfg.Interval) {
		return
	}
	if !m.mu.TryLock() {
		return // a pass is running right now
	}
	defer m.mu.Unlock()
	if time.Now().UnixNano()-m.lastPass.Load() < int64(m.cfg.Interval) {
		return
	}
	m.passLocked()
	m.lastPass.Store(time.Now().UnixNano())
}

func (m *Manager) passLocked() {
	n := len(m.targets)
	r := m.cfg.Roosters
	if r > n && n > 0 {
		r = n
	}
	if n > 0 {
		if r <= 1 {
			for _, t := range m.targets {
				t.FlushHP()
			}
		} else {
			var wg sync.WaitGroup
			for i := 0; i < r; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := i; j < n; j += r {
						m.targets[j].FlushHP()
					}
				}(i)
			}
			wg.Wait()
		}
	}
	next := m.tick.Load() + 1
	for _, h := range m.hooks {
		if next%h.every == 0 {
			h.f()
		}
	}
	m.passes.Add(1)
	m.tick.Store(next) // pass complete; only now is the tick visible
}

// Start launches the timer-driven pass loop and enables cooperative passes
// via Poll. Calling Start twice panics.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.stopCh != nil {
		m.mu.Unlock()
		panic("rooster: Start called twice")
	}
	m.stopCh = make(chan struct{})
	m.doneCh = make(chan struct{})
	m.lastPass.Store(time.Now().UnixNano())
	m.started.Store(true)
	stop, done := m.stopCh, m.doneCh
	m.mu.Unlock()

	go func() {
		defer close(done)
		tick := time.NewTicker(m.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m.Step()
			}
		}
	}()
}

// Stop halts the pass loop and waits for it to exit. Safe to call on a
// never-started or already-stopped manager.
func (m *Manager) Stop() {
	m.mu.Lock()
	m.started.Store(false)
	stop, done := m.stopCh, m.doneCh
	m.stopCh, m.doneCh = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Stats is a snapshot of rooster activity.
type Stats struct {
	Passes  uint64
	Targets int
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	n := len(m.targets)
	m.mu.Unlock()
	return Stats{Passes: m.passes.Load(), Targets: n}
}
