package rooster

import (
	"sync/atomic"
	"testing"
	"time"
)

type countTarget struct{ flushes atomic.Int64 }

func (c *countTarget) FlushHP() { c.flushes.Add(1) }

func TestStepFlushesAllTargets(t *testing.T) {
	m := NewManager(Config{})
	var ts [5]countTarget
	for i := range ts {
		m.Register(&ts[i])
	}
	m.Step()
	m.Step()
	for i := range ts {
		if got := ts[i].flushes.Load(); got != 2 {
			t.Fatalf("target %d flushed %d times, want 2", i, got)
		}
	}
	if m.Tick() != 2 {
		t.Fatalf("tick = %d, want 2", m.Tick())
	}
}

func TestStepMultipleRoosters(t *testing.T) {
	m := NewManager(Config{Roosters: 3})
	var ts [10]countTarget
	for i := range ts {
		m.Register(&ts[i])
	}
	m.Step()
	for i := range ts {
		if got := ts[i].flushes.Load(); got != 1 {
			t.Fatalf("target %d flushed %d times, want 1", i, got)
		}
	}
}

func TestTickAdvancesAfterPass(t *testing.T) {
	m := NewManager(Config{})
	if m.Tick() != 0 {
		t.Fatal("fresh manager must be at tick 0")
	}
	// A target that observes the tick during its own flush must see the
	// pre-increment value: the tick only advances once the pass completes.
	seen := make([]uint64, 0, 3)
	m.Register(flushFunc(func() { seen = append(seen, m.Tick()) }))
	for i := 0; i < 3; i++ {
		m.Step()
	}
	for i, s := range seen {
		if s != uint64(i) {
			t.Fatalf("flush %d saw tick %d; tick must advance only after the pass", i, s)
		}
	}
}

type flushFunc func()

func (f flushFunc) FlushHP() { f() }

func TestOldEnough(t *testing.T) {
	m := NewManager(Config{})
	stamp := m.Tick()
	if m.OldEnough(stamp) {
		t.Fatal("node cannot be old enough at its own stamp")
	}
	m.Step()
	if m.OldEnough(stamp) {
		t.Fatal("one pass is not enough (the pass may have started before the stamp)")
	}
	m.Step()
	if !m.OldEnough(stamp) {
		t.Fatal("after two complete passes the node must be old enough")
	}
}

func TestOldEnoughEpsilon(t *testing.T) {
	m := NewManager(Config{EpsilonTicks: 2})
	stamp := m.Tick()
	for i := 0; i < 3; i++ {
		m.Step()
	}
	if m.OldEnough(stamp) {
		t.Fatal("epsilon ticks must delay old-enough")
	}
	m.Step()
	if !m.OldEnough(stamp) {
		t.Fatal("old-enough must hold at 2+epsilon passes")
	}
}

func TestHooksRunAtPeriod(t *testing.T) {
	m := NewManager(Config{})
	var every1, every3 int
	m.AddHook(1, func() { every1++ })
	m.AddHook(3, func() { every3++ })
	for i := 0; i < 9; i++ {
		m.Step()
	}
	if every1 != 9 {
		t.Fatalf("every-1 hook ran %d times, want 9", every1)
	}
	if every3 != 3 {
		t.Fatalf("every-3 hook ran %d times, want 3", every3)
	}
}

func TestHookNonPositivePeriod(t *testing.T) {
	m := NewManager(Config{})
	n := 0
	m.AddHook(0, func() { n++ })
	m.Step()
	if n != 1 {
		t.Fatal("period<=0 must default to every pass")
	}
}

func TestStartStop(t *testing.T) {
	m := NewManager(Config{Interval: time.Millisecond})
	var tgt countTarget
	m.Register(&tgt)
	m.Start()
	deadline := time.After(2 * time.Second)
	for m.Tick() < 3 {
		select {
		case <-deadline:
			t.Fatal("timer-driven passes did not advance the tick")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	m.Stop()
	tickAtStop := m.Tick()
	time.Sleep(10 * time.Millisecond)
	if m.Tick() != tickAtStop {
		t.Fatal("passes continued after Stop")
	}
	// Stop is idempotent; Start works again after Stop.
	m.Stop()
	m.Start()
	m.Stop()
}

func TestStartTwicePanics(t *testing.T) {
	m := NewManager(Config{Interval: time.Hour})
	m.Start()
	defer m.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start must panic")
		}
	}()
	m.Start()
}

func TestDefaults(t *testing.T) {
	m := NewManager(Config{})
	if m.Interval() != 2*time.Millisecond {
		t.Fatalf("default interval = %v", m.Interval())
	}
	if m.cfg.Roosters != 1 {
		t.Fatalf("default roosters = %d", m.cfg.Roosters)
	}
}

func TestStats(t *testing.T) {
	m := NewManager(Config{})
	var tgt countTarget
	m.Register(&tgt)
	m.Step()
	st := m.Stats()
	if st.Passes != 1 || st.Targets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
