package rooster

import (
	"testing"
	"time"
)

func TestPollNoOpWhenStopped(t *testing.T) {
	m := NewManager(Config{Interval: time.Nanosecond})
	var tgt countTarget
	m.Register(&tgt)
	for i := 0; i < 10; i++ {
		m.Poll() // never started: deterministic tests stay deterministic
	}
	if m.Tick() != 0 || tgt.flushes.Load() != 0 {
		t.Fatal("Poll ran a pass on a stopped manager")
	}
}

func TestPollRunsOverduePass(t *testing.T) {
	m := NewManager(Config{Interval: time.Hour}) // timer will never fire
	var tgt countTarget
	m.Register(&tgt)
	m.Start()
	defer m.Stop()
	m.Poll()
	if m.Tick() != 0 {
		t.Fatal("Poll ran a pass before the interval elapsed")
	}
	// Pretend the last pass was two intervals ago.
	m.lastPass.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	m.Poll()
	if m.Tick() != 1 {
		t.Fatalf("tick = %d; cooperative pass did not run", m.Tick())
	}
	if tgt.flushes.Load() != 1 {
		t.Fatal("cooperative pass did not flush targets")
	}
	// Rate limited again right after.
	m.Poll()
	if m.Tick() != 1 {
		t.Fatal("Poll ignored the rate limit")
	}
}

func TestPollRunsHooks(t *testing.T) {
	m := NewManager(Config{Interval: time.Hour})
	runs := 0
	m.AddHook(1, func() { runs++ })
	m.Start()
	defer m.Stop()
	m.lastPass.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	m.Poll()
	if runs != 1 {
		t.Fatalf("hook runs = %d; cooperative passes must run hooks too", runs)
	}
}

func TestPollConcurrentSinglePass(t *testing.T) {
	// Many goroutines polling an overdue manager must produce exactly one
	// pass (TryLock + recheck), not a pass per caller.
	m := NewManager(Config{Interval: time.Hour})
	m.Start()
	defer m.Stop()
	m.lastPass.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			m.Poll()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := m.Tick(); got != 1 {
		t.Fatalf("ticks = %d, want exactly 1 cooperative pass", got)
	}
}

func TestStepRefreshesPollClock(t *testing.T) {
	// A manual Step counts as a pass for the cooperative clock.
	m := NewManager(Config{Interval: time.Hour})
	m.Start()
	defer m.Stop()
	m.lastPass.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	m.Step() // resets the clock
	m.Poll()
	if m.Tick() != 1 {
		t.Fatalf("tick = %d: Poll should be rate-limited right after Step", m.Tick())
	}
}
