package resp

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func cmdString(args [][]byte) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = string(a)
	}
	return strings.Join(parts, " ")
}

func TestReadCommandArray(t *testing.T) {
	r := NewReader(strings.NewReader("*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$5\r\nhello\r\n"))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if got := cmdString(args); got != "SET 42 hello" {
		t.Fatalf("got %q", got)
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestReadCommandPipelined(t *testing.T) {
	// Three commands in one buffer, including empty-bulk and inline mixed
	// into the pipeline; all parse back to back without extra reads.
	in := "*2\r\n$3\r\nGET\r\n$1\r\n7\r\n" +
		"PING\r\n" +
		"*3\r\n$3\r\nSET\r\n$1\r\n7\r\n$0\r\n\r\n"
	r := NewReader(strings.NewReader(in))
	want := []string{"GET 7", "PING", "SET 7 "}
	for i, w := range want {
		if i > 0 && r.Buffered() == 0 {
			t.Fatalf("pipeline drained early before command %d", i)
		}
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if got := cmdString(args); got != w {
			t.Fatalf("command %d = %q want %q", i, got, w)
		}
	}
	if r.Buffered() != 0 {
		t.Fatal("bytes left after pipeline")
	}
}

// trickle delivers one byte per Read call: the worst-case partial read.
type trickle struct{ data []byte }

func (tr *trickle) Read(p []byte) (int, error) {
	if len(tr.data) == 0 {
		return 0, io.EOF
	}
	p[0] = tr.data[0]
	tr.data = tr.data[1:]
	return 1, nil
}

func TestReadCommandPartialReads(t *testing.T) {
	in := "*2\r\n$4\r\nINCR\r\n$3\r\n123\r\n*1\r\n$4\r\nPING\r\n"
	r := NewReader(&trickle{data: []byte(in)})
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if got := cmdString(args); got != "INCR 123" {
		t.Fatalf("got %q", got)
	}
	if args, err = r.ReadCommand(); err != nil || cmdString(args) != "PING" {
		t.Fatalf("second command: %q, %v", cmdString(args), err)
	}
}

func TestReadCommandInline(t *testing.T) {
	r := NewReader(strings.NewReader("  SET   5   99\r\n\r\nGET 5\r\n"))
	args, err := r.ReadCommand()
	if err != nil || cmdString(args) != "SET 5 99" {
		t.Fatalf("inline: %q, %v", cmdString(args), err)
	}
	// The bare CRLF between commands is skipped, not returned as an empty
	// command.
	args, err = r.ReadCommand()
	if err != nil || cmdString(args) != "GET 5" {
		t.Fatalf("after blank line: %q, %v", cmdString(args), err)
	}
}

func TestReadCommandGarbage(t *testing.T) {
	cases := []string{
		"*notanumber\r\n",                      // bad array length
		"*2\r\n$3\r\nGET\r\n:5\r\n",            // non-bulk element
		"*1\r\n$-1\r\n",                        // negative bulk length
		"*1\r\n$x\r\n",                         // bad bulk length
		"*1\r\n$3\r\nabcde\r\n",                // bulk body not CRLF-framed
		"*99999\r\n",                           // array over MaxArgs
		fmt.Sprintf("*1\r\n$%d\r\n", 1<<30),    // bulk over MaxBulk
		"*1\r\n$3\r\nab",                       // EOF mid-command
		"*2\r\n$3\r\nGET\r\n",                  // EOF between elements
		"GET 5\n",                              // inline missing CR
		strings.Repeat("x", 8<<10) + " \r\n",   // oversized inline line
		"*" + strings.Repeat("9", 30) + "\r\n", // length overflows int64
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		if _, err := r.ReadCommand(); !IsProtocol(err) {
			t.Fatalf("input %.40q: want ProtocolError, got %v", in, err)
		}
	}
}

func TestReadReply(t *testing.T) {
	in := "+OK\r\n-ERR bad\r\n:42\r\n$5\r\nhello\r\n$-1\r\n$0\r\n\r\n"
	r := NewReader(strings.NewReader(in))
	rp, err := r.ReadReply()
	if err != nil || rp.Kind != '+' || rp.Str != "OK" {
		t.Fatalf("simple: %+v, %v", rp, err)
	}
	rp, _ = r.ReadReply()
	if !rp.IsError() || rp.Str != "ERR bad" {
		t.Fatalf("error: %+v", rp)
	}
	rp, _ = r.ReadReply()
	if rp.Kind != ':' || rp.Int != 42 {
		t.Fatalf("int: %+v", rp)
	}
	rp, _ = r.ReadReply()
	if rp.Kind != '$' || string(rp.Bulk) != "hello" {
		t.Fatalf("bulk: %+v", rp)
	}
	rp, _ = r.ReadReply()
	if rp.Kind != '$' || rp.Bulk != nil {
		t.Fatalf("null bulk: %+v", rp)
	}
	rp, _ = r.ReadReply()
	if rp.Kind != '$' || rp.Bulk == nil || len(rp.Bulk) != 0 {
		t.Fatalf("empty bulk: %+v", rp)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// Garbage replies are protocol errors.
	for _, bad := range []string{"?x\r\n", ":notanum\r\n", "$5\r\nab\r\n"} {
		r := NewReader(strings.NewReader(bad))
		if _, err := r.ReadReply(); !IsProtocol(err) {
			t.Fatalf("reply %q: want ProtocolError, got %v", bad, err)
		}
	}
}

func TestWriterReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("OK")
	w.Error("ERR nope")
	w.Int(-7)
	w.Bulk([]byte("hello"))
	w.BulkString("")
	w.Null()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR nope\r\n:-7\r\n$5\r\nhello\r\n$0\r\n\r\n$-1\r\n"
	if got := buf.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}
