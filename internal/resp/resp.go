// Package resp implements the subset of the RESP wire protocol (REdis
// Serialization Protocol) that qsense-kvd speaks: commands arrive as
// arrays of bulk strings (or as space-separated inline commands, the
// telnet convenience), replies leave as simple strings, errors, integers,
// bulk strings and nulls. The reader is strict about framing and bounded
// in what it will buffer — a garbage or hostile peer costs one error, not
// memory — and buffered, so pipelined commands parse back to back without
// extra reads.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Wire limits. A command that exceeds them draws a *ProtocolError; the
// server replies -ERR and drops the connection.
const (
	// MaxArgs bounds the elements of one command array.
	MaxArgs = 64
	// MaxBulk bounds one bulk string's declared length.
	MaxBulk = 512 << 10
	// maxInline bounds one inline command line.
	maxInline = 4 << 10
)

// ProtocolError is a framing violation: the stream can no longer be
// trusted, so the connection should be closed after reporting it.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

// IsProtocol reports whether err is a framing violation (as opposed to an
// I/O error like a closed connection).
func IsProtocol(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe)
}

// Reader parses RESP commands from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r for command parsing.
func NewReader(r io.Reader) *Reader { return &Reader{br: bufio.NewReader(r)} }

// Buffered reports how many request bytes are already buffered — when it
// is zero the peer has no pipelined command in flight, which is the
// moment to flush replies.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadCommand reads one command: either a RESP array of bulk strings or
// an inline command line. It blocks until a full command (or an error) is
// available; partial reads resume transparently across calls to the
// underlying reader. The returned slices are valid until the next call.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if first != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			args, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // bare CRLF between inline commands
			}
			return args, nil
		}
		n, err := r.readInt()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > MaxArgs {
			return nil, protoErrf("resp: array of %d elements (max %d)", n, MaxArgs)
		}
		args := make([][]byte, 0, n)
		for i := int64(0); i < n; i++ {
			arg, err := r.readBulk()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
		}
		if len(args) == 0 {
			continue // empty array: ignore, per server convention
		}
		return args, nil
	}
}

// readBulk reads one $<len>\r\n<bytes>\r\n frame.
func (r *Reader) readBulk() ([]byte, error) {
	prefix, err := r.br.ReadByte()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if prefix != '$' {
		return nil, protoErrf("resp: expected bulk string, got %q", prefix)
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxBulk {
		return nil, protoErrf("resp: bulk length %d (max %d)", n, MaxBulk)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, protoErrf("resp: bulk string missing CRLF terminator")
	}
	return buf[:n], nil
}

// readInt reads the decimal line that follows a type prefix.
func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return 0, protoErrf("resp: bad length %q", line)
	}
	return n, nil
}

// readLine reads up to CRLF, excluding it, bounded by maxInline.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, protoErrf("resp: line exceeds %d bytes", maxInline)
	}
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoErrf("resp: line not CRLF-terminated")
	}
	line = line[:len(line)-2]
	if len(line) > maxInline {
		return nil, protoErrf("resp: line exceeds %d bytes", maxInline)
	}
	return line, nil
}

// readInline parses a space-separated inline command.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) > MaxArgs {
		return nil, protoErrf("resp: inline command of %d fields (max %d)", len(fields), MaxArgs)
	}
	return fields, nil
}

// unexpectedEOF turns a mid-frame EOF into a framing error; a clean EOF
// between commands stays io.EOF so the server closes quietly.
func unexpectedEOF(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return protoErrf("resp: stream ended mid-command")
	}
	return err
}

// Reply is one parsed server reply — the client half of the protocol,
// used by the load generator.
type Reply struct {
	Kind byte   // '+', '-', ':' or '$'
	Str  string // simple-string or error text
	Int  int64  // integer reply
	Bulk []byte // bulk body; nil for the null bulk ($-1)
}

// IsError reports an -ERR style reply.
func (rp Reply) IsError() bool { return rp.Kind == '-' }

// ReadReply reads one reply. The Bulk slice is valid until the next call.
func (r *Reader) ReadReply() (Reply, error) {
	prefix, err := r.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	switch prefix {
	case '+', '-':
		line, err := r.readLine()
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: prefix, Str: string(line)}, nil
	case ':':
		line, err := r.readLine()
		if err != nil {
			return Reply{}, err
		}
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Reply{}, protoErrf("resp: bad integer reply %q", line)
		}
		return Reply{Kind: ':', Int: n}, nil
	case '$':
		n, err := r.readInt()
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: '$'}, nil
		}
		if n < 0 || n > MaxBulk {
			return Reply{}, protoErrf("resp: bulk reply length %d (max %d)", n, MaxBulk)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Reply{}, protoErrf("resp: bulk reply missing CRLF terminator")
		}
		return Reply{Kind: '$', Bulk: buf[:n]}, nil
	default:
		return Reply{}, protoErrf("resp: unknown reply type %q", prefix)
	}
}

// Writer emits RESP replies, buffered; call Flush when the pipeline is
// drained.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w for reply writing.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// SimpleString writes +s.
func (w *Writer) SimpleString(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// Error writes -msg.
func (w *Writer) Error(msg string) {
	w.bw.WriteByte('-')
	w.bw.WriteString(msg)
	w.bw.WriteString("\r\n")
}

// Int writes :n.
func (w *Writer) Int(n int64) {
	w.bw.WriteByte(':')
	w.bw.WriteString(strconv.FormatInt(n, 10))
	w.bw.WriteString("\r\n")
}

// Bulk writes $len b.
func (w *Writer) Bulk(b []byte) {
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(b)))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// BulkString is Bulk for a string.
func (w *Writer) BulkString(s string) { w.Bulk([]byte(s)) }

// Command writes one client command as an array of bulk strings — the
// client half of the protocol, used by the load generator.
func (w *Writer) Command(args ...string) {
	w.bw.WriteByte('*')
	w.bw.WriteString(strconv.Itoa(len(args)))
	w.bw.WriteString("\r\n")
	for _, a := range args {
		w.BulkString(a)
	}
}

// CommandBytes is Command for pre-encoded arguments — the load generator's
// byte-valued SET path, which would otherwise pay a string conversion per
// payload.
func (w *Writer) CommandBytes(args ...[]byte) {
	w.bw.WriteByte('*')
	w.bw.WriteString(strconv.Itoa(len(args)))
	w.bw.WriteString("\r\n")
	for _, a := range args {
		w.Bulk(a)
	}
}

// Null writes the null bulk string $-1.
func (w *Writer) Null() { w.bw.WriteString("$-1\r\n") }

// Flush sends everything buffered.
func (w *Writer) Flush() error { return w.bw.Flush() }
