// Package tso is a small model checker for the x86-TSO memory model, used
// to verify the paper's §4.1 reasoning mechanically.
//
// Each process owns a FIFO store buffer. A Store goes into the buffer; a
// buffered entry drains to shared memory at a nondeterministic later point
// (a separate scheduler action). Loads snoop the own buffer first (store
// forwarding). Fence and CAS drain the buffer before proceeding — and so
// does FlushOther, the model's context switch, which drains a *victim*
// process's buffer: exactly what the paper's rooster processes rely on
// ("a context switch implies a memory barrier for the process being
// switched out", §5.1).
//
// The exhaustive explorer enumerates every interleaving of process steps
// and buffer drains (with state memoization), so a property that holds in
// the explored system holds for all TSO executions of these programs.
package tso

import (
	"fmt"
	"sort"
)

// NumRegs is the per-process register file size.
const NumRegs = 4

// OpKind enumerates instructions.
type OpKind uint8

// Instruction kinds.
const (
	OpStore      OpKind = iota // mem[Addr] = Imm (buffered)
	OpStoreReg                 // mem[Addr] = regs[Src] (buffered)
	OpLoad                     // regs[Dst] = mem[Addr] (own buffer first)
	OpFence                    // drain own buffer
	OpCAS                      // drain; if mem[Addr]==Imm { mem[Addr]=Imm2; regs[Dst]=1 } else regs[Dst]=0
	OpFlushOther               // drain process Victim's buffer (context switch)
	OpJmpIfEq                  // if regs[Src]==Imm -> pc=Target
	OpJmpIfNe                  // if regs[Src]!=Imm -> pc=Target
)

// Op is one instruction.
type Op struct {
	Kind   OpKind
	Addr   int
	Imm    uint64
	Imm2   uint64
	Src    int
	Dst    int
	Target int
	Victim int
}

// Convenience constructors.
func Store(addr int, v uint64) Op { return Op{Kind: OpStore, Addr: addr, Imm: v} }
func StoreReg(addr, src int) Op   { return Op{Kind: OpStoreReg, Addr: addr, Src: src} }
func Load(dst, addr int) Op       { return Op{Kind: OpLoad, Dst: dst, Addr: addr} }
func Fence() Op                   { return Op{Kind: OpFence} }
func CAS(addr int, old, new uint64, dst int) Op {
	return Op{Kind: OpCAS, Addr: addr, Imm: old, Imm2: new, Dst: dst}
}
func FlushOther(victim int) Op             { return Op{Kind: OpFlushOther, Victim: victim} }
func JmpIfEq(src int, v uint64, pc int) Op { return Op{Kind: OpJmpIfEq, Src: src, Imm: v, Target: pc} }
func JmpIfNe(src int, v uint64, pc int) Op { return Op{Kind: OpJmpIfNe, Src: src, Imm: v, Target: pc} }

// Program is a process's instruction sequence; falling off the end halts.
type Program []Op

// System is a set of programs over a shared memory.
type System struct {
	Procs   []Program
	MemSize int
	// Init holds initial memory values (missing cells are zero).
	Init []uint64
}

type bufEntry struct {
	addr int
	val  uint64
}

type state struct {
	mem  []uint64
	pcs  []int
	regs [][NumRegs]uint64
	bufs [][]bufEntry
}

func newState(sys *System) *state {
	s := &state{
		mem:  make([]uint64, sys.MemSize),
		pcs:  make([]int, len(sys.Procs)),
		regs: make([][NumRegs]uint64, len(sys.Procs)),
		bufs: make([][]bufEntry, len(sys.Procs)),
	}
	copy(s.mem, sys.Init)
	return s
}

func (s *state) clone() *state {
	c := &state{
		mem:  append([]uint64(nil), s.mem...),
		pcs:  append([]int(nil), s.pcs...),
		regs: append([][NumRegs]uint64(nil), s.regs...),
		bufs: make([][]bufEntry, len(s.bufs)),
	}
	for i := range s.bufs {
		c.bufs[i] = append([]bufEntry(nil), s.bufs[i]...)
	}
	return c
}

func (s *state) key() string {
	return fmt.Sprintf("%v|%v|%v|%v", s.mem, s.pcs, s.regs, s.bufs)
}

// loadVal implements store forwarding: newest own-buffer entry wins.
func (s *state) loadVal(p, addr int) uint64 {
	buf := s.bufs[p]
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].addr == addr {
			return buf[i].val
		}
	}
	return s.mem[addr]
}

func (s *state) drainAll(p int) {
	for _, e := range s.bufs[p] {
		s.mem[e.addr] = e.val
	}
	s.bufs[p] = s.bufs[p][:0]
}

// drainOne commits the oldest buffered store of p.
func (s *state) drainOne(p int) {
	e := s.bufs[p][0]
	s.mem[e.addr] = e.val
	s.bufs[p] = s.bufs[p][1:]
}

// step executes p's next instruction. Returns false if p is halted.
func (s *state) step(sys *System, p int) bool {
	prog := sys.Procs[p]
	if s.pcs[p] >= len(prog) {
		return false
	}
	op := prog[s.pcs[p]]
	next := s.pcs[p] + 1
	switch op.Kind {
	case OpStore:
		s.bufs[p] = append(s.bufs[p], bufEntry{op.Addr, op.Imm})
	case OpStoreReg:
		s.bufs[p] = append(s.bufs[p], bufEntry{op.Addr, s.regs[p][op.Src]})
	case OpLoad:
		s.regs[p][op.Dst] = s.loadVal(p, op.Addr)
	case OpFence:
		s.drainAll(p)
	case OpCAS:
		s.drainAll(p)
		if s.mem[op.Addr] == op.Imm {
			s.mem[op.Addr] = op.Imm2
			s.regs[p][op.Dst] = 1
		} else {
			s.regs[p][op.Dst] = 0
		}
	case OpFlushOther:
		s.drainAll(op.Victim)
	case OpJmpIfEq:
		if s.regs[p][op.Src] == op.Imm {
			next = op.Target
		}
	case OpJmpIfNe:
		if s.regs[p][op.Src] != op.Imm {
			next = op.Target
		}
	}
	s.pcs[p] = next
	return true
}

// halted reports whether every process finished and every buffer drained.
func (s *state) halted(sys *System) bool {
	for p := range sys.Procs {
		if s.pcs[p] < len(sys.Procs[p]) || len(s.bufs[p]) > 0 {
			return false
		}
	}
	return true
}

// Outcome is a terminal state: final memory and register files.
type Outcome struct {
	Mem  []uint64
	Regs [][NumRegs]uint64
}

// Outcomes is the set of reachable terminal states.
type Outcomes struct {
	byKey map[string]Outcome
}

// Len returns the number of distinct terminal states.
func (o *Outcomes) Len() int { return len(o.byKey) }

// Any reports whether some outcome satisfies pred.
func (o *Outcomes) Any(pred func(Outcome) bool) bool {
	for _, out := range o.byKey {
		if pred(out) {
			return true
		}
	}
	return false
}

// All reports whether every outcome satisfies pred.
func (o *Outcomes) All(pred func(Outcome) bool) bool {
	for _, out := range o.byKey {
		if !pred(out) {
			return false
		}
	}
	return true
}

// List returns outcomes in deterministic order (for display).
func (o *Outcomes) List() []Outcome {
	keys := make([]string, 0, len(o.byKey))
	for k := range o.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	outs := make([]Outcome, len(keys))
	for i, k := range keys {
		outs[i] = o.byKey[k]
	}
	return outs
}

// Explore enumerates all TSO interleavings of the system: at every state,
// any process may execute its next instruction, and any non-empty buffer
// may drain its oldest entry. Returns the reachable terminal outcomes and
// whether exploration completed within stateLimit distinct states.
func Explore(sys System, stateLimit int) (*Outcomes, bool) {
	if stateLimit <= 0 {
		stateLimit = 1 << 20
	}
	out := &Outcomes{byKey: map[string]Outcome{}}
	visited := map[string]bool{}
	stack := []*state{newState(&sys)}
	complete := true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := s.key()
		if visited[k] {
			continue
		}
		if len(visited) >= stateLimit {
			complete = false
			break
		}
		visited[k] = true
		if s.halted(&sys) {
			out.byKey[k] = Outcome{Mem: s.mem, Regs: s.regs}
			continue
		}
		for p := range sys.Procs {
			if s.pcs[p] < len(sys.Procs[p]) {
				c := s.clone()
				c.step(&sys, p)
				stack = append(stack, c)
			}
			if len(s.bufs[p]) > 0 {
				c := s.clone()
				c.drainOne(p)
				stack = append(stack, c)
			}
		}
	}
	return out, complete
}

// RunRandom executes one random interleaving (splitmix64-seeded); useful
// for systems too large to explore exhaustively.
func RunRandom(sys System, seed uint64, maxSteps int) (Outcome, bool) {
	s := newState(&sys)
	rng := seed*0x9e3779b97f4a7c15 + 1
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	if maxSteps <= 0 {
		maxSteps = 1 << 16
	}
	for i := 0; i < maxSteps; i++ {
		if s.halted(&sys) {
			return Outcome{Mem: s.mem, Regs: s.regs}, true
		}
		var acts []func()
		for p := range sys.Procs {
			p := p
			if s.pcs[p] < len(sys.Procs[p]) {
				acts = append(acts, func() { s.step(&sys, p) })
			}
			if len(s.bufs[p]) > 0 {
				acts = append(acts, func() { s.drainOne(p) })
			}
		}
		if len(acts) == 0 {
			break
		}
		acts[next(len(acts))]()
	}
	return Outcome{Mem: s.mem, Regs: s.regs}, s.halted(&sys)
}
