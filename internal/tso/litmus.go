package tso

// This file encodes the paper's §4.1 scenario (Algorithm 2) and its
// repairs as model systems.
//
// Shared memory layout: one node n, referenced by one link cell.
//
//	CellLink    — the data structure link: 1 while n is reachable, 0 after
//	              removal (the value 1 doubles as "n's address").
//	CellHP      — the reader's hazard pointer slot.
//	CellValid   — n's allocation state: 1 allocated, 0 freed.
//	CellRooster — rooster pass counter (Cadence variants).
//
// The reader is process 0, the deleter process 1, the rooster (when
// present) process 2.
//
// Reader registers after halting: r0 = the reference it read, r1 = the
// re-validation read, r2 = the value of CellValid at the access hazard.
// The safety violation — Algorithm 2's illegal interleaving — is a terminal
// state with r1 == 1 (validation passed, so the reader proceeded to the
// access) and r2 == 0 (the node had been freed): a use-after-free.
const (
	CellLink = iota
	CellHP
	CellValid
	CellRooster
	memSize
)

// Process indices in the systems below.
const (
	ProcReader  = 0
	ProcDeleter = 1
	ProcRooster = 2
)

// readerProgram is PR of Algorithm 2. withFence inserts the classic hazard
// pointer barrier between the HP store and the re-validation (R3 taken).
func readerProgram(withFence bool) Program {
	const end = 7
	p := Program{
		Load(0, CellLink),   // R1: read reference to n
		JmpIfNe(0, 1, end),  // nothing linked: no hazard, stop
		StoreReg(CellHP, 0), // R2: assign hazard pointer (buffered!)
		Fence(),             // R3: barrier — replaced by a no-op below when absent
		Load(1, CellLink),   // R4: recheck n
		JmpIfNe(1, 1, end),  // validation failed: retry path, no access
		Load(2, CellValid),  // R5: use n — 0 here is a use-after-free
	}
	if !withFence {
		// The naive hybrid skips the barrier when the fallback flag is
		// off; model the skipped fence as a harmless reload.
		p[3] = Load(3, CellLink)
	}
	return p
}

// deleterImmediate is PD of Algorithm 2: remove, scan, free — no deferral.
// Its own steps are fenced, as §4.1 assumes.
func deleterImmediate() Program {
	const end = 6
	return Program{
		Store(CellLink, 0),  // D1: remove n
		Fence(),             // deleter's stores are not reordered
		Load(0, CellHP),     // D3: scan hazard pointers
		JmpIfEq(0, 1, end),  // protected: do not free
		Store(CellValid, 0), // D4: free n
		Fence(),
	}
}

// deleterDeferred is the Cadence deleter: it stamps the removal with the
// rooster tick and frees only once the tick has advanced by two — i.e.
// after a complete rooster pass that began after the removal (§5.1,
// Figure 4). The model's branch set dispatches on the possible stamps; a
// stamp too late for the rooster's four passes simply never frees (the
// model checks safety, not progress).
func deleterDeferred() Program {
	const scan = 16
	const end = 20
	return Program{
		/*  0 */ Store(CellLink, 0), // remove n
		/*  1 */ Fence(),
		/*  2 */ Load(1, CellRooster), // stamp := tick
		/*  3 */ JmpIfEq(1, 0, 7), // stamp 0: wait for tick 2
		/*  4 */ JmpIfEq(1, 1, 10), // stamp 1: wait for tick 3
		/*  5 */ JmpIfEq(1, 2, 13), // stamp 2: wait for tick 4
		/*  6 */ JmpIfNe(1, 99, end), // stamp too late: never old enough here
		/*  7 */ Load(2, CellRooster),
		/*  8 */ JmpIfNe(2, 2, 7),
		/*  9 */ JmpIfNe(1, 99, scan),
		/* 10 */ Load(2, CellRooster),
		/* 11 */ JmpIfNe(2, 3, 10),
		/* 12 */ JmpIfNe(1, 99, scan),
		/* 13 */ Load(2, CellRooster),
		/* 14 */ JmpIfNe(2, 4, 13),
		/* 15 */ JmpIfNe(1, 99, scan),
		/* 16 */ Load(0, CellHP), // scan (shared memory is now conclusive)
		/* 17 */ JmpIfEq(0, 1, end), // protected: keep
		/* 18 */ Store(CellValid, 0), // free n
		/* 19 */ Fence(),
	}
}

// roosterProgram performs `passes` rooster wake-ups: each flushes the
// reader's store buffer (the context switch) and advances the tick.
func roosterProgram(passes int) Program {
	var p Program
	for i := 1; i <= passes; i++ {
		p = append(p,
			FlushOther(ProcReader),
			Store(CellRooster, uint64(i)),
			Fence(),
		)
	}
	return p
}

func baseInit() []uint64 {
	init := make([]uint64, memSize)
	init[CellLink] = 1
	init[CellValid] = 1
	return init
}

// NaiveHybridSystem is the broken design §4.1 warns about: hazard pointers
// published without fences (the fast path skipped the barrier) and
// reclamation that trusts an immediate scan. Exploration finds Algorithm
// 2's illegal interleaving.
func NaiveHybridSystem() System {
	return System{
		Procs:   []Program{readerProgram(false), deleterImmediate()},
		MemSize: memSize,
		Init:    baseInit(),
	}
}

// ClassicHPSystem fences every hazard pointer publication (Algorithm 1).
func ClassicHPSystem() System {
	return System{
		Procs:   []Program{readerProgram(true), deleterImmediate()},
		MemSize: memSize,
		Init:    baseInit(),
	}
}

// CadenceSystem publishes without fences but defers reclamation across
// rooster passes (Algorithm 3).
func CadenceSystem() System {
	return System{
		Procs:   []Program{readerProgram(false), deleterDeferred(), roosterProgram(4)},
		MemSize: memSize,
		Init:    baseInit(),
	}
}

// CadenceNoDeferralSystem keeps the rooster but frees immediately: the
// ablation showing deferred reclamation is load-bearing.
func CadenceNoDeferralSystem() System {
	return System{
		Procs:   []Program{readerProgram(false), deleterImmediate(), roosterProgram(4)},
		MemSize: memSize,
		Init:    baseInit(),
	}
}

// UseAfterFree is the violation predicate: the reader validated its
// reference (r1 == 1) and then read freed memory (r2 == 0).
func UseAfterFree(o Outcome) bool {
	return o.Regs[ProcReader][1] == 1 && o.Regs[ProcReader][2] == 0
}
