package tso

import "testing"

// --- the skip list upper-level edge-ABA scenario ---

// TestSkipListStaleLinkUnsafe: the pre-fix protocol (stale pre-stored own
// word, mark check separate from the link CAS) reaches the use-after-free
// — in both diagnosed flavors: the traversal walking through an unmarked
// stale word, and a splice installing a frozen stale word back into the
// chain (the mechanism the instrumented stress build pinned down).
func TestSkipListStaleLinkUnsafe(t *testing.T) {
	out, complete := Explore(SkipListStaleLinkSystem(), 1<<22)
	if !complete {
		t.Fatal("exploration incomplete; raise the state limit")
	}
	if !out.Any(SkipListSpliceUAF) {
		t.Fatal("the stale-link protocol should exhibit the edge-ABA use-after-free")
	}
	walkThrough := func(o Outcome) bool {
		// The searcher found M's word unmarked and dereferenced S_old.
		return SkipListSpliceUAF(o) && o.Regs[SkipProcSearcher][1] == RefSOld
	}
	spliceInstall := func(o Outcome) bool {
		// The searcher found M's word frozen and its splice wrote the
		// freed S_old back into the predecessor edge.
		return SkipListSpliceUAF(o) && o.Regs[SkipProcSearcher][1] == RefSOldM &&
			o.Mem[CellSkipEdgeP] == RefSOld
	}
	if !out.Any(walkThrough) {
		t.Fatal("walk-through flavor of the violation not reached")
	}
	if !out.Any(spliceInstall) {
		t.Fatal("splice-install flavor of the violation not reached")
	}
}

// TestSkipListClaimLinkSafe: the claim-then-link protocol removes the
// violation in every TSO interleaving of the same schedule — including
// the transient window where M's mark lands between the claim and the
// link CAS (then the frozen successor is the fresh one, which this model
// never frees).
func TestSkipListClaimLinkSafe(t *testing.T) {
	out, complete := Explore(SkipListClaimLinkSystem(), 1<<22)
	if !complete {
		t.Fatal("exploration incomplete; raise the state limit")
	}
	if out.Any(SkipListSpliceUAF) {
		t.Fatal("claim-then-link must not reach the edge-ABA use-after-free")
	}
}

// TestSkipListClaimLinkLiveness: the safety above is not vacuous — the
// fixed protocol still links M in some interleavings, still abandons the
// level permanently when the mark wins the claim, and still exhibits the
// transient marked re-link the safety argument has to cover.
func TestSkipListClaimLinkLiveness(t *testing.T) {
	out, complete := Explore(SkipListClaimLinkSystem(), 1<<22)
	if !complete {
		t.Fatal("exploration incomplete")
	}
	linked := func(o Outcome) bool { return o.Mem[CellSkipEdgeP] == RefM }
	if !out.Any(linked) {
		t.Fatal("claim-then-link never links M — model too strict")
	}
	abandoned := func(o Outcome) bool {
		// The mark froze M's word at its previous value and M was never
		// published at this level.
		return o.Mem[CellSkipEdgeM] == RefSOldM && o.Mem[CellSkipEdgeP] != RefM &&
			o.Mem[CellSkipEdgeP] != RefSOld // searcher's splice can reinstate S_old only from a linked M
	}
	if !out.Any(abandoned) {
		t.Fatal("the mark never wins the claim — abandon path unexercised")
	}
	transient := func(o Outcome) bool {
		// M linked while its word is frozen at the FRESH successor: the
		// claim/link window race, safe because S_new is live.
		return o.Mem[CellSkipEdgeM] == RefSNewM && o.Mem[CellSkipEdgeP] == RefM
	}
	if !out.Any(transient) {
		t.Fatal("the transient marked re-link never occurs — window not modeled")
	}
	// And in every interleaving where the searcher validated, the node it
	// dereferenced was live (the HP conclusiveness the package doc argues).
	ok := out.All(func(o Outcome) bool {
		if o.Regs[SkipProcSearcher][2] == RefM {
			return o.Regs[SkipProcSearcher][3] == 1
		}
		return true
	})
	if !ok {
		t.Fatal("validated access read freed memory under claim-then-link")
	}
}

// TestSkipListStaleLinkRandomAgrees: random walks find the stale-link
// violation too — the statistical view the native stress repro takes.
func TestSkipListStaleLinkRandomAgrees(t *testing.T) {
	found := false
	for seed := uint64(0); seed < 20000 && !found; seed++ {
		o, halted := RunRandom(SkipListStaleLinkSystem(), seed, 0)
		if halted && SkipListSpliceUAF(o) {
			found = true
		}
	}
	if !found {
		t.Fatal("random walks never hit the edge-ABA interleaving (very unlikely)")
	}
	for seed := uint64(0); seed < 5000; seed++ {
		o, halted := RunRandom(SkipListClaimLinkSystem(), seed, 0)
		if halted && SkipListSpliceUAF(o) {
			t.Fatal("random walk found a violation in the claim-then-link system")
		}
	}
}
