package tso

import "testing"

// --- model validation litmus tests ---

// TestStoreBuffering: the classic SB litmus. Under TSO both loads may see
// 0 (stores sitting in buffers); with fences that outcome disappears. This
// validates that the model actually exhibits — and fences actually repair —
// store-load reordering.
func TestStoreBuffering(t *testing.T) {
	const x, y = 0, 1
	unfenced := System{
		Procs: []Program{
			{Store(x, 1), Load(0, y)},
			{Store(y, 1), Load(0, x)},
		},
		MemSize: 2,
	}
	out, complete := Explore(unfenced, 0)
	if !complete {
		t.Fatal("SB exploration incomplete")
	}
	both0 := func(o Outcome) bool { return o.Regs[0][0] == 0 && o.Regs[1][0] == 0 }
	if !out.Any(both0) {
		t.Fatal("TSO must allow r0=r1=0 in SB — store buffering missing from the model")
	}
	fenced := System{
		Procs: []Program{
			{Store(x, 1), Fence(), Load(0, y)},
			{Store(y, 1), Fence(), Load(0, x)},
		},
		MemSize: 2,
	}
	out, complete = Explore(fenced, 0)
	if !complete {
		t.Fatal("fenced SB exploration incomplete")
	}
	if out.Any(both0) {
		t.Fatal("fences must forbid r0=r1=0 in SB")
	}
}

// TestMessagePassing: TSO buffers are FIFO, so flag=1 implies data=1.
func TestMessagePassing(t *testing.T) {
	const data, flag = 0, 1
	sys := System{
		Procs: []Program{
			{Store(data, 1), Store(flag, 1)},
			{Load(0, flag), Load(1, data)},
		},
		MemSize: 2,
	}
	out, complete := Explore(sys, 0)
	if !complete {
		t.Fatal("MP exploration incomplete")
	}
	broken := func(o Outcome) bool { return o.Regs[1][0] == 1 && o.Regs[1][1] == 0 }
	if out.Any(broken) {
		t.Fatal("TSO must not reorder stores: flag=1,data=0 observed")
	}
}

// TestStoreForwarding: a process reads its own buffered store.
func TestStoreForwarding(t *testing.T) {
	sys := System{
		Procs:   []Program{{Store(0, 7), Load(0, 0)}},
		MemSize: 1,
	}
	out, _ := Explore(sys, 0)
	if !out.All(func(o Outcome) bool { return o.Regs[0][0] == 7 }) {
		t.Fatal("store forwarding broken: own store invisible to own load")
	}
}

// TestCASDrainsAndSwaps: CAS acts as a fence and is atomic.
func TestCASDrainsAndSwaps(t *testing.T) {
	sys := System{
		Procs: []Program{
			{CAS(0, 0, 1, 0)},
			{CAS(0, 0, 2, 0)},
		},
		MemSize: 1,
	}
	out, _ := Explore(sys, 0)
	// Exactly one CAS wins in every outcome.
	ok := out.All(func(o Outcome) bool {
		return o.Regs[0][0]+o.Regs[1][0] == 1 &&
			((o.Mem[0] == 1) == (o.Regs[0][0] == 1)) &&
			((o.Mem[0] == 2) == (o.Regs[1][0] == 1))
	})
	if !ok {
		t.Fatal("CAS atomicity violated in some interleaving")
	}
}

// TestFlushOtherDrainsVictim: the context-switch primitive publishes the
// victim's buffered stores (deterministic, single interleaving).
func TestFlushOtherDrainsVictim(t *testing.T) {
	sys := System{
		Procs:   []Program{{Store(0, 9)}, {FlushOther(0)}},
		MemSize: 1,
	}
	s := newState(&sys)
	s.step(&sys, 0) // reader buffers the store
	if s.mem[0] != 0 {
		t.Fatal("store must sit in the buffer, not memory")
	}
	s.step(&sys, 1) // context switch on the victim
	if s.mem[0] != 9 {
		t.Fatal("FlushOther did not publish the buffered store")
	}
	if len(s.bufs[0]) != 0 {
		t.Fatal("victim buffer not drained")
	}
}

// --- the paper's §4.1 scenario ---

// TestAlgorithm2NaiveHybridUnsafe reproduces the paper's illegal
// interleaving: with the fence skipped and no deferral, some interleaving
// validates the reference and then reads freed memory.
func TestAlgorithm2NaiveHybridUnsafe(t *testing.T) {
	out, complete := Explore(NaiveHybridSystem(), 0)
	if !complete {
		t.Fatal("exploration incomplete")
	}
	if !out.Any(UseAfterFree) {
		t.Fatal("the naive QSBR/HP hybrid should exhibit Algorithm 2's use-after-free")
	}
}

// TestClassicHPSafe: the per-publication fence removes the violation in
// every interleaving.
func TestClassicHPSafe(t *testing.T) {
	out, complete := Explore(ClassicHPSystem(), 0)
	if !complete {
		t.Fatal("exploration incomplete")
	}
	if out.Any(UseAfterFree) {
		t.Fatal("classic HP must be safe under TSO")
	}
}

// TestCadenceSafe: no fence anywhere on the reader path, yet rooster
// flushes plus deferred reclamation eliminate the violation in every
// interleaving — the paper's Property 1 at model scale.
func TestCadenceSafe(t *testing.T) {
	out, complete := Explore(CadenceSystem(), 1<<22)
	if !complete {
		t.Fatal("exploration incomplete; raise the state limit")
	}
	if out.Any(UseAfterFree) {
		t.Fatal("Cadence (rooster + deferral) must be safe under TSO")
	}
	// Liveness sanity: in at least one interleaving the deleter does
	// free the node (reclamation happens).
	freed := func(o Outcome) bool { return o.Mem[CellValid] == 0 }
	if !out.Any(freed) {
		t.Fatal("Cadence model never reclaims — deferral modeled too strictly")
	}
}

// TestCadenceWithoutDeferralUnsafe: keeping roosters but scanning
// immediately resurrects the bug — deferred reclamation is load-bearing.
func TestCadenceWithoutDeferralUnsafe(t *testing.T) {
	out, complete := Explore(CadenceNoDeferralSystem(), 1<<22)
	if !complete {
		t.Fatal("exploration incomplete")
	}
	if !out.Any(UseAfterFree) {
		t.Fatal("without deferral the rooster alone cannot make unfenced HPs safe")
	}
}

// TestReaderProtectedNeverFreedUnderHP: in the classic HP system, whenever
// the reader reaches its access (validation passed), the deleter must have
// seen the hazard pointer or not freed yet — the access always reads 1.
func TestReaderProtectedNeverFreedUnderHP(t *testing.T) {
	out, _ := Explore(ClassicHPSystem(), 0)
	ok := out.All(func(o Outcome) bool {
		if o.Regs[ProcReader][1] == 1 { // validated
			return o.Regs[ProcReader][2] == 1 // access saw live node
		}
		return true
	})
	if !ok {
		t.Fatal("validated access read freed memory under classic HP")
	}
}

// TestRunRandomAgreesWithExplore: random walks over the naive system find
// the violation too (eventually), and never find it in the fenced system.
func TestRunRandomAgreesWithExplore(t *testing.T) {
	found := false
	for seed := uint64(0); seed < 4000 && !found; seed++ {
		o, halted := RunRandom(NaiveHybridSystem(), seed, 0)
		if halted && UseAfterFree(o) {
			found = true
		}
	}
	if !found {
		t.Fatal("random walks never hit the §4.1 interleaving (very unlikely)")
	}
	for seed := uint64(0); seed < 2000; seed++ {
		o, halted := RunRandom(ClassicHPSystem(), seed, 0)
		if halted && UseAfterFree(o) {
			t.Fatal("random walk found a violation in the fenced system")
		}
	}
}

// TestExploreStateLimit: the limit aborts cleanly.
func TestExploreStateLimit(t *testing.T) {
	_, complete := Explore(CadenceSystem(), 10)
	if complete {
		t.Fatal("a 10-state limit cannot complete this system")
	}
}

// TestOutcomesList: deterministic ordering for display.
func TestOutcomesList(t *testing.T) {
	out, _ := Explore(NaiveHybridSystem(), 0)
	l := out.List()
	if len(l) != out.Len() || out.Len() == 0 {
		t.Fatalf("list len %d vs %d", len(l), out.Len())
	}
}

// TestInitApplied: initial memory values are honored.
func TestInitApplied(t *testing.T) {
	sys := System{Procs: []Program{{Load(0, 0)}}, MemSize: 1, Init: []uint64{42}}
	out, _ := Explore(sys, 0)
	if !out.All(func(o Outcome) bool { return o.Regs[0][0] == 42 }) {
		t.Fatal("Init not applied")
	}
}
