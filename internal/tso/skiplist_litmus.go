package tso

// This file encodes the skip list's upper-level edge-ABA use-after-free
// (internal/skiplist's package doc, "historical violation of invariant 2")
// and its claim-then-link repair as model systems — the two-inserter/
// one-deleter schedule the stress repro TestSkipListUAFReproHPRC hits
// statistically, explored exhaustively here.
//
// One upper level l around three nodes is modeled. P is the level-l
// predecessor, M the node being inserted, S_old the successor M's level-0
// search observed at level l, S_new the node that replaces S_old after
// S_old's deletion (the chain evolves P→S_old→S_new, then P→S_new):
//
//	CellSkipEdgeP — P.next[l], the predecessor edge (values below)
//	CellSkipEdgeM — M.next[l], the inserter's own next word
//	CellSkipHP    — the searching second inserter's hazard pointer slot
//	CellSkipValid — S_old's allocation state: 1 live, 0 freed
//
// Processes: the searcher (a second inserter's positioning search at
// level l — it walks P's edge, finds M, reads M's word, protects the
// successor with full classic-HP discipline, revalidates the clean edge,
// splices if frozen, and then dereferences), S_old's deleter (cleanup
// splice, hazard scan, free), M's inserter (the protocol under test), and
// M's deleter (marks M's level-l word, modeling the top-down marking
// pass).
//
// The violation — the searcher's validation passed and it then read freed
// memory — is reachable in the stale-link system in BOTH diagnosed
// flavors (walking through an unmarked stale word, and a splice
// installing a frozen stale word), and unreachable in the claim-then-link
// system in every TSO interleaving. The searcher publishes its hazard
// pointer with a fence before revalidating, so the exploration also
// proves the bug sits above the memory model: per-node protection
// discipline cannot repair a protocol that re-exposes dead edge values.
const (
	CellSkipEdgeP = iota
	CellSkipEdgeM
	CellSkipHP
	CellSkipValid
	skipMemSize
)

// Node refs are even; bit 0 is the level's deletion mark.
const (
	RefSOld  uint64 = 2
	RefSNew  uint64 = 4
	RefM     uint64 = 6
	RefSOldM        = RefSOld | 1 // S_old frozen into a marked word
	RefSNewM        = RefSNew | 1
)

// Process indices in the systems below.
const (
	SkipProcSearcher = 0
	SkipProcDeleterS = 1
	SkipProcInserter = 2
	SkipProcDeleterM = 3
)

// skipSearcher is the second inserter's search reaching M at level l.
// Registers after halting: r0 = the edge value walked (M or not), r1 = the
// successor M exposed, r2 = the revalidation read (RefM means validation
// passed), r3 = S_old's allocation state at the access (0 = freed: the
// use-after-free, since validation passing is exactly what licenses the
// access under the hazard pointer methodology).
func skipSearcher() Program {
	const end = 12
	return Program{
		/*  0 */ Load(0, CellSkipEdgeP), // walk P's level-l edge
		/*  1 */ JmpIfNe(0, RefM, end), // M not linked: schedule uninteresting
		/*  2 */ Load(1, CellSkipEdgeM), // the successor M exposes
		/*  3 */ JmpIfEq(1, RefSOld, 5), // unmarked: traversal will walk into it
		/*  4 */ JmpIfNe(1, RefSOldM, end), // fresh successor: no stale exposure
		/*  5 */ Store(CellSkipHP, RefSOld), // protect the successor
		/*  6 */ Fence(), // classic HP barrier — even fully fenced, the ABA wins
		/*  7 */ Load(2, CellSkipEdgeP), // revalidate the clean edge to M
		/*  8 */ JmpIfNe(2, RefM, end), // validation failed: retry path, no access
		/*  9 */ JmpIfEq(1, RefSOld, 11), // unmarked walk-through: straight to the access
		/* 10 */ CAS(CellSkipEdgeP, RefM, RefSOld, 0), // splice: install the frozen successor
		/* 11 */ Load(3, CellSkipValid), // dereference S_old — 0 here is a use-after-free
	}
}

// skipDeleterS is S_old's deleter finishing its cleanup at level l:
// splice S_old out of the clean predecessor edge, scan hazard pointers,
// free. (S_old's own frozen word is not modeled; its successor S_new is
// baked into the splice constant.)
func skipDeleterS() Program {
	const end = 5
	return Program{
		/* 0 */ CAS(CellSkipEdgeP, RefSOld, RefSNew, 0), // cleanup splice
		/* 1 */ JmpIfNe(0, 1, end), // lost the edge: not this schedule
		/* 2 */ Load(1, CellSkipHP), // hazard scan
		/* 3 */ JmpIfEq(1, RefSOld, end), // protected: do not free
		/* 4 */ Store(CellSkipValid, 0), // free S_old
	}
}

// skipDeleterM marks M's level-l word (the top-down marking pass of M's
// deleter), retrying against the inserter's claim as the real marking
// loop does.
func skipDeleterM() Program {
	const end = 7
	return Program{
		/* 0 */ Load(0, CellSkipEdgeM),
		/* 1 */ JmpIfNe(0, RefSOld, 4),
		/* 2 */ CAS(CellSkipEdgeM, RefSOld, RefSOldM, 1),
		/* 3 */ JmpIfNe(1, 1, 0), // lost to the claim: reload and retry
		/* 4 */ JmpIfNe(0, RefSNew, end), // marked already (or SOld path done): finished
		/* 5 */ CAS(CellSkipEdgeM, RefSNew, RefSNewM, 1),
		/* 6 */ JmpIfNe(1, 1, 0),
	}
}

// skipInserterStale is the pre-fix protocol finishing level l: M.next[l]
// was pre-stored (RefSOld, the system's initial value) by the level-0
// search, the mark is checked on the own word, and the link CAS then uses
// the FRESHLY searched successor — without ever re-claiming the own word.
// The check-then-act window and the stale pre-store are both faithful.
func skipInserterStale() Program {
	const end = 8
	return Program{
		/* 0 */ Load(1, CellSkipEdgeM), // the old protocol's mark check
		/* 1 */ JmpIfEq(1, RefSOldM, end), // marked: level dead
		/* 2 */ Load(0, CellSkipEdgeP), // fresh search: current successor
		/* 3 */ JmpIfNe(0, RefSNew, 6),
		/* 4 */ CAS(CellSkipEdgeP, RefSNew, RefM, 2), // link — own word still stale
		/* 5 */ JmpIfNe(2, 99, end),
		/* 6 */ JmpIfNe(0, RefSOld, end),
		/* 7 */ CAS(CellSkipEdgeP, RefSOld, RefM, 2),
	}
}

// skipInserterClaim is the fixed protocol: one claim-then-link step — the
// own word is CASed from its previous value to the freshly searched
// successor (a mark makes the claim fail: level permanently dead), and
// only then is the link CAS attempted from that same successor.
func skipInserterClaim() Program {
	const end = 9
	return Program{
		/* 0 */ Load(0, CellSkipEdgeP), // fresh search: current successor
		/* 1 */ JmpIfNe(0, RefSNew, 5),
		/* 2 */ CAS(CellSkipEdgeM, RefSOld, RefSNew, 1), // claim prev -> fresh
		/* 3 */ JmpIfNe(1, 1, end), // mark observed: never publish
		/* 4 */ CAS(CellSkipEdgeP, RefSNew, RefM, 2), // link from the claimed value
		/* 5 */ JmpIfNe(0, RefSOld, end),
		/* 6 */ CAS(CellSkipEdgeM, RefSOld, RefSOld, 1), // claim: re-verify unmarked
		/* 7 */ JmpIfNe(1, 1, end),
		/* 8 */ CAS(CellSkipEdgeP, RefSOld, RefM, 2),
	}
}

func skipInit() []uint64 {
	init := make([]uint64, skipMemSize)
	init[CellSkipEdgeP] = RefSOld // chain P -> S_old (-> S_new)
	init[CellSkipEdgeM] = RefSOld // M's pre-stored / previously claimed word
	init[CellSkipValid] = 1
	return init
}

// SkipListStaleLinkSystem is the pre-fix upper-level protocol: some
// interleaving publishes M frozen at (or pointing to) the freed S_old and
// the searcher dereferences it.
func SkipListStaleLinkSystem() System {
	return System{
		Procs:   []Program{skipSearcher(), skipDeleterS(), skipInserterStale(), skipDeleterM()},
		MemSize: skipMemSize,
		Init:    skipInit(),
	}
}

// SkipListClaimLinkSystem is the claim-then-link repair over the same
// schedule: no interleaving reaches the violation.
func SkipListClaimLinkSystem() System {
	return System{
		Procs:   []Program{skipSearcher(), skipDeleterS(), skipInserterClaim(), skipDeleterM()},
		MemSize: skipMemSize,
		Init:    skipInit(),
	}
}

// SkipListSpliceUAF is the violation predicate: the searcher's
// revalidation of the clean edge passed (r2 == RefM licensed the access)
// and the subsequent dereference read freed memory (r3 == 0).
func SkipListSpliceUAF(o Outcome) bool {
	return o.Regs[SkipProcSearcher][2] == RefM && o.Regs[SkipProcSearcher][3] == 0
}
