package kvd

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qsense/internal/resp"
	"qsense/internal/workload"
)

// startServer spins up a server on a loopback port and returns it with its
// address and a cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		s.Close()
	})
	return s, addr.String()
}

// client is a test-side RESP connection.
type client struct {
	c  net.Conn
	rd *resp.Reader
	wr *resp.Writer
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &client{c: c, rd: resp.NewReader(c), wr: resp.NewWriter(c)}
}

// do sends one command and reads one reply.
func (cl *client) do(t *testing.T, args ...string) resp.Reply {
	t.Helper()
	cl.wr.Command(args...)
	if err := cl.wr.Flush(); err != nil {
		t.Fatal(err)
	}
	rp, err := cl.rd.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

func TestServerCommands(t *testing.T) {
	for _, scheme := range []string{"qsense", "hp", "none"} {
		t.Run(scheme, func(t *testing.T) {
			s, addr := startServer(t, Config{Scheme: scheme})
			cl := dialClient(t, addr)
			if rp := cl.do(t, "PING"); rp.Str != "PONG" {
				t.Fatalf("PING: %+v", rp)
			}
			if rp := cl.do(t, "GET", "5"); rp.Kind != '$' || rp.Bulk != nil {
				t.Fatalf("GET missing: want null bulk, got %+v", rp)
			}
			if rp := cl.do(t, "SET", "5", "99"); rp.Str != "OK" {
				t.Fatalf("SET: %+v", rp)
			}
			if rp := cl.do(t, "GET", "5"); string(rp.Bulk) != "99" {
				t.Fatalf("GET: %+v", rp)
			}
			// Upsert updates in place.
			cl.do(t, "SET", "5", "100")
			if rp := cl.do(t, "GET", "5"); string(rp.Bulk) != "100" {
				t.Fatalf("GET after upsert: %+v", rp)
			}
			if rp := cl.do(t, "DEL", "5"); rp.Int != 1 {
				t.Fatalf("DEL present: %+v", rp)
			}
			if rp := cl.do(t, "DEL", "5"); rp.Int != 0 {
				t.Fatalf("DEL absent: %+v", rp)
			}
			// Malformed arguments draw -ERR but keep the connection.
			if rp := cl.do(t, "SET", "notakey", "1"); !rp.IsError() {
				t.Fatalf("bad key: %+v", rp)
			}
			// Values are arbitrary bytes now — "-3" stores, spilled (>7
			// byte) payloads round-trip.
			if rp := cl.do(t, "SET", "1", "-3"); rp.Str != "OK" {
				t.Fatalf("byte value: %+v", rp)
			}
			if rp := cl.do(t, "GET", "1"); string(rp.Bulk) != "-3" {
				t.Fatalf("byte value GET: %+v", rp)
			}
			if rp := cl.do(t, "SET", "1", "a spilled value payload"); rp.Str != "OK" {
				t.Fatalf("spilled SET: %+v", rp)
			}
			if rp := cl.do(t, "GET", "1"); string(rp.Bulk) != "a spilled value payload" {
				t.Fatalf("spilled GET: %+v", rp)
			}
			if rp := cl.do(t, "DEL", "1"); rp.Int != 1 {
				t.Fatalf("DEL spilled: %+v", rp)
			}
			if rp := cl.do(t, "GET", "1", "2"); !rp.IsError() {
				t.Fatalf("bad arity: %+v", rp)
			}
			if rp := cl.do(t, "NOPE"); !rp.IsError() {
				t.Fatalf("unknown command: %+v", rp)
			}
			// STATS names the scheme and the live connection.
			rp := cl.do(t, "STATS")
			if rp.Kind != '$' {
				t.Fatalf("STATS: %+v", rp)
			}
			st := ParseStats(rp.Bulk)
			if st["conns_live"] != 1 || st["acquired_handles"] < 1 {
				t.Fatalf("STATS counters: %v", st)
			}
			if st["value_retires"] < 1 {
				t.Fatalf("value_retires = %d after a spilled delete", st["value_retires"])
			}
			if st["value_bytes"] != 0 || st["value_spilled"] != 0 {
				t.Fatalf("value gauges not drained: %v", st)
			}
			// QUIT closes after the reply.
			if rp := cl.do(t, "QUIT"); rp.Str != "OK" {
				t.Fatalf("QUIT: %+v", rp)
			}
			if _, err := cl.rd.ReadReply(); err == nil {
				t.Fatal("connection still open after QUIT")
			}
			if live := s.LiveConns(); live != 0 {
				// The handler may still be unwinding; give it a moment.
				time.Sleep(50 * time.Millisecond)
				if live = s.LiveConns(); live != 0 {
					t.Fatalf("live connections after QUIT: %d", live)
				}
			}
		})
	}
}

// TestServerReservedKeys: the two extreme int64 values are the SkipMap's
// sentinel keys and must be rejected at the protocol layer — a DEL of
// math.MaxInt64 used to reach skiplist.Delete on the tail sentinel,
// corrupting the shared map for every connection.
func TestServerReservedKeys(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialClient(t, addr)
	for _, k := range []string{"9223372036854775807", "-9223372036854775808"} {
		if rp := cl.do(t, "SET", k, "1"); !rp.IsError() {
			t.Fatalf("SET %s accepted: %+v", k, rp)
		}
		if rp := cl.do(t, "GET", k); !rp.IsError() {
			t.Fatalf("GET %s accepted: %+v", k, rp)
		}
		if rp := cl.do(t, "DEL", k); !rp.IsError() {
			t.Fatalf("DEL %s accepted: %+v", k, rp)
		}
	}
	// The -ERRs kept the connection open and the map intact; the domain
	// boundaries themselves are ordinary keys.
	for _, k := range []string{"9223372036854775806", "-9223372036854775807"} {
		if rp := cl.do(t, "SET", k, "7"); rp.Str != "OK" {
			t.Fatalf("SET %s: %+v", k, rp)
		}
		if rp := cl.do(t, "GET", k); string(rp.Bulk) != "7" {
			t.Fatalf("GET %s: %+v", k, rp)
		}
		if rp := cl.do(t, "DEL", k); rp.Int != 1 {
			t.Fatalf("DEL %s: %+v", k, rp)
		}
	}
}

// TestServerConcurrentShutdown: every Shutdown caller must block until the
// drain completes — the CAS-losing callers used to return nil immediately,
// letting a Shutdown-then-Close sequence tear down the reclamation domain
// while handlers still held leased map handles.
func TestServerConcurrentShutdown(t *testing.T) {
	s, addr := startServer(t, Config{})
	for i := 0; i < 4; i++ {
		cl := dialClient(t, addr)
		if rp := cl.do(t, "PING"); rp.Str != "PONG" {
			t.Fatalf("conn %d: %+v", i, rp)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown %d: %v", i, err)
				return
			}
			// A nil return promises a completed drain: no live
			// connections, every lease back.
			if live := s.LiveConns(); live != 0 {
				t.Errorf("Shutdown %d returned with %d live conns", i, live)
			}
			if st := s.Stats(); st.AcquiredHandles != st.ReleasedHandles {
				t.Errorf("Shutdown %d returned with %d leases still held",
					i, st.AcquiredHandles-st.ReleasedHandles)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerPipelining(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialClient(t, addr)
	// Three commands in one segment; three replies come back in order.
	cl.wr.Command("SET", "1", "10")
	cl.wr.Command("SET", "2", "20")
	cl.wr.Command("GET", "2")
	if err := cl.wr.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"OK", "OK", "20"} {
		rp, err := cl.rd.ReadReply()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		got := rp.Str
		if rp.Kind == '$' {
			got = string(rp.Bulk)
		}
		if got != want {
			t.Fatalf("reply %d = %q want %q", i, got, want)
		}
	}
}

func TestServerProtocolErrorClosesConnection(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialClient(t, addr)
	if _, err := cl.c.Write([]byte("*1\r\n$-5\r\n")); err != nil {
		t.Fatal(err)
	}
	rp, err := cl.rd.ReadReply()
	if err != nil || !rp.IsError() {
		t.Fatalf("want -ERR reply, got %+v, %v", rp, err)
	}
	cl.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := cl.rd.ReadReply(); err == nil {
		t.Fatal("connection survived a framing violation")
	}
}

func TestServerHardMaxConnsQueues(t *testing.T) {
	_, addr := startServer(t, Config{HardMaxConns: 1})
	first := dialClient(t, addr)
	if rp := first.do(t, "PING"); rp.Str != "PONG" {
		t.Fatalf("first conn: %+v", rp)
	}
	// The second connection is accepted but its handle waits in
	// AcquireWait until the first releases.
	second := dialClient(t, addr)
	second.wr.Command("PING")
	if err := second.wr.Flush(); err != nil {
		t.Fatal(err)
	}
	second.c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := second.rd.ReadReply(); err == nil {
		t.Fatal("second connection served while the cap was full")
	}
	first.do(t, "QUIT")
	second.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	rp, err := second.rd.ReadReply()
	if err != nil || rp.Str != "PONG" {
		t.Fatalf("second conn after release: %+v, %v", rp, err)
	}
}

// TestServerConnectionChurn is the -race integration test: a hundred-plus
// clients in concurrent waves against a deliberately tiny initial arena,
// then a full drain. Growth must engage during the storm, every lease must
// come back, the drained arena must park its trailing slots, and Close
// must leave nothing pending.
func TestServerConnectionChurn(t *testing.T) {
	s, addr := startServer(t, Config{Scheme: "qsense", InitialConns: 2})
	const waves, perWave = 3, 40
	for w := 0; w < waves; w++ {
		// Barrier: every client in the wave holds its connection (and thus
		// its leased handle) until all are connected, so the storm really
		// is perWave-concurrent rather than accidentally serialized.
		var connected, done sync.WaitGroup
		release := make(chan struct{})
		for c := 0; c < perWave; c++ {
			connected.Add(1)
			done.Add(1)
			go func(id int) {
				defer done.Done()
				arrived := false
				arrive := func() {
					if !arrived {
						arrived = true
						connected.Done()
					}
				}
				defer arrive()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					t.Error(err)
					return
				}
				defer conn.Close()
				rd, wr := resp.NewReader(conn), resp.NewWriter(conn)
				key := fmt.Sprintf("%d", id%64)
				for i := 0; i < 20; i++ {
					wr.Command("SET", key, "1")
					wr.Command("GET", key)
					wr.Command("DEL", key)
				}
				if err := wr.Flush(); err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 60; i++ {
					if _, err := rd.ReadReply(); err != nil {
						t.Errorf("client %d reply %d: %v", id, i, err)
						return
					}
				}
				arrive()
				<-release
				wr.Command("QUIT")
				if err := wr.Flush(); err != nil {
					t.Error(err)
					return
				}
				if rp, err := rd.ReadReply(); err != nil || rp.Str != "OK" {
					t.Errorf("client %d QUIT: %+v, %v", id, rp, err)
				}
			}(w*perWave + c)
		}
		connected.Wait()
		close(release)
		done.Wait()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()
	if st.AcquiredHandles != uint64(waves*perWave) {
		t.Errorf("acquired %d handles, want %d", st.AcquiredHandles, waves*perWave)
	}
	if st.AcquiredHandles != st.ReleasedHandles {
		t.Errorf("leases leaked: acquired %d released %d", st.AcquiredHandles, st.ReleasedHandles)
	}
	if st.ArenaGrowths == 0 {
		t.Errorf("arena never grew from %d slots under %d concurrent conns", 2, perWave)
	}
	if st.ParkedSlots == 0 {
		t.Errorf("no parked slots after full drain (arena %d, high water %d)", st.ArenaSize, st.HighWaterWorkers)
	}
	s.Close()
	if st := s.Stats(); st.Pending != 0 {
		t.Errorf("%d nodes pending after Close", st.Pending)
	}
}

func TestRunLoadSmoke(t *testing.T) {
	_, addr := startServer(t, Config{Scheme: "qsense", InitialConns: 2})
	res, err := RunLoad(LoadConfig{
		Target:    addr,
		Conns:     8,
		KeyRange:  1 << 10,
		Theta:     0.99,
		UpdatePct: 20,
		Plan:      workload.BurstIdle(150*time.Millisecond, 100*time.Millisecond, 2, 0.1),
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("load run performed no operations")
	}
	if res.Errs > res.Ops/100 {
		t.Fatalf("error rate too high: %d errs / %d ops", res.Errs, res.Ops)
	}
	if res.Latency.Count() != res.Ops {
		t.Fatalf("latency count %d != ops %d", res.Latency.Count(), res.Ops)
	}
	if p50 := res.Latency.Quantile(0.50); p50 <= 0 {
		t.Fatalf("p50 %v", p50)
	}
	if res.Stats == nil || res.Stats["acquired_handles"] == 0 {
		t.Fatalf("missing server stats: %v", res.Stats)
	}
}

// TestServerOversizedValue: a SET whose value exceeds the server's MaxBulk
// draws -ERR but keeps the connection and the map intact — the
// application-level cap is an error reply, not a protocol violation (only
// breaching the wire-level resp.MaxBulk closes the stream).
func TestServerOversizedValue(t *testing.T) {
	_, addr := startServer(t, Config{Scheme: "qsense", MaxBulk: 1024})
	cl := dialClient(t, addr)
	if rp := cl.do(t, "SET", "1", "keep-me"); rp.IsError() {
		t.Fatalf("SET: %s", rp.Str)
	}
	rp := cl.do(t, "SET", "1", strings.Repeat("v", 2048))
	if !rp.IsError() || !strings.Contains(rp.Str, "value too large") {
		t.Fatalf("oversized SET drew %q, want -ERR value too large", rp.Str)
	}
	// Same connection still serves, and the rejected SET left the key's
	// old value in place.
	if rp := cl.do(t, "GET", "1"); string(rp.Bulk) != "keep-me" {
		t.Fatalf("GET after rejected SET = %q, want keep-me", rp.Bulk)
	}
	if rp := cl.do(t, "SET", "2", "still-works"); rp.IsError() {
		t.Fatalf("follow-up SET: %s", rp.Str)
	}
	if rp := cl.do(t, "GET", "2"); string(rp.Bulk) != "still-works" {
		t.Fatalf("follow-up GET = %q", rp.Bulk)
	}
}

// tinySendListener wraps a TCP listener, shrinking each accepted
// connection's kernel send buffer so a client that stops reading
// back-pressures the server after a few KB instead of megabytes — the
// deterministic stage for TestServerWriteTimeout.
type tinySendListener struct{ net.Listener }

func (l tinySendListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetWriteBuffer(4 << 10)
	}
	return c, nil
}

// TestServerWriteTimeout: a client that pipelines GETs for a bulk value and
// never drains its replies must be disconnected by WriteTimeout. The bulk
// reply is larger than the reply writer's buffer, so the blocking write
// happens on the auto-flush INSIDE dispatch — the deadline must already be
// armed there, not only at the explicit pipeline-drain flush.
func TestServerWriteTimeout(t *testing.T) {
	s, err := New(Config{Scheme: "qsense", WriteTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = tinySendListener{ln}
	go s.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		s.Close()
	})
	addr := ln.Addr().String()

	// A healthy client stores a value big enough that a handful of GET
	// replies overflow the shrunken kernel buffers.
	setter := dialClient(t, addr)
	if rp := setter.do(t, "SET", "1", strings.Repeat("x", 32<<10)); rp.IsError() {
		t.Fatalf("SET: %s", rp.Str)
	}

	// The stalled client: tiny receive buffer, pipelined GETs, never reads.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.(*net.TCPConn).SetReadBuffer(4 << 10)
	wr := resp.NewWriter(raw)
	for i := 0; i < 64; i++ {
		wr.Command("GET", "1")
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.writeTimeouts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("write timeout never fired against a stalled client")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The handler unwinds: the stalled connection unregisters and its lease
	// goes back, leaving only the healthy client.
	for s.LiveConns() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled connection still registered (%d live)", s.LiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rp := setter.do(t, "PING"); rp.Str != "PONG" {
		t.Fatalf("healthy client broken after the stalled one was dropped: %q", rp.Str)
	}
}
