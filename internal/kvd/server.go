// Package kvd is the network-facing layer of the repository: a RESP-style
// TCP key→value server over the elastic SkipMap, plus the load generator
// that macro-benchmarks it (load.go).
//
// The server is the end-to-end demonstration of the reclamation stack
// under real traffic shapes. Each connection gets its own goroutine and
// leases one SkipMap handle for its lifetime via AcquireWait — a
// connection storm grows the guard arena instead of failing (or queues at
// a HardMaxConns admission cap), and a burst of disconnects releases
// slots that the occupancy machinery parks, so the reclamation cost of a
// quiet server decays to its live connection count. STATS surfaces
// exactly those counters over the wire.
//
// Protocol: RESP arrays or inline commands; integer keys (int64) and
// arbitrary byte-string values (stored in the SkipMap's reclaimed value
// arena — values up to 7 bytes stay inline in the node's value word,
// longer ones spill to a value node retired through the domain on
// displacement):
//
//	SET <key> <value>   -> +OK
//	GET <key>           -> $<value bytes> | $-1
//	DEL <key>           -> :1 | :0
//	STATS               -> $<key: value lines>
//	PING                -> +PONG
//	QUIT                -> +OK, connection closes
//
// A protocol violation draws -ERR and closes the connection; a malformed
// key, or a value larger than Config.MaxBulk, draws -ERR and keeps it
// open.
package kvd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qsense"
	"qsense/internal/resp"
)

// Config describes a server.
type Config struct {
	// Scheme is the reclamation scheme serving the map — any name in
	// qsense.SchemeNames (default qsense); New rejects anything else.
	Scheme string
	// InitialConns is the initial guard-arena size (Options.MaxWorkers):
	// a soft sizing hint, not a limit. 0 = machine default.
	InitialConns int
	// HardMaxConns, when > 0, is an admission cap: connections beyond it
	// queue in AcquireWait until another connection closes
	// (Options.HardMaxWorkers).
	HardMaxConns int
	// MaxNodes bounds the map's node pool. 0 = library default.
	MaxNodes int
	// Shards splits the map's reclamation domain core (Options.Shards).
	// 0 = library default (QSENSE_SHARDS, then min(GOMAXPROCS, 8)).
	Shards int

	// IdleTimeout, when > 0, is the per-command read deadline: a
	// connection that sends nothing for this long is disconnected and its
	// leased map handle released — the defense against stalled readers
	// over TCP (a parked client would otherwise hold its guard slot, and
	// under an epoch scheme pin the server's garbage, forever). 0 keeps
	// the pre-hardening behavior: reads block until the peer speaks or
	// Shutdown wakes them.
	IdleTimeout time.Duration
	// WriteTimeout, when > 0, bounds each reply flush: a client that
	// stops draining its socket (slowloris-style) is disconnected — with
	// its lease released — instead of wedging the handler in a blocked
	// write. 0 = no write deadlines.
	WriteTimeout time.Duration
	// MemoryLimit, when > 0, is the graceful-degradation threshold: once
	// the map's pending (retired-but-unreclaimed) node count plus its
	// live spilled value nodes exceeds it, SET and DEL answer "-BUSY
	// retry later" while GET/STATS/PING keep serving — the server sheds
	// allocation under memory pressure rather than failing the domain.
	// Spilled values count because they occupy the same pool slots as
	// structural nodes (the value_bytes / value_spilled STATS gauges
	// expose the same pressure on the wire). The check samples Stats at
	// most once per memSampleEvery, so the hot path pays an atomic load.
	// Unlike qsense.Options.MemoryLimit (a sticky Failed marker for
	// experiments), this limit is soft and recovers as soon as
	// reclamation drains the backlog.
	MemoryLimit int
	// MaxBulk bounds a SET value's size in bytes; a larger value draws
	// -ERR and keeps the connection (the framing layer's own larger
	// resp.MaxBulk cap is a protocol violation and closes it). 0 = 64 KiB.
	MaxBulk int
}

// memSampleEvery is how often the MemoryLimit check is willing to resample
// the map's pending count.
const memSampleEvery = 10 * time.Millisecond

// Server is a qsense-kvd instance. Create with New, start with Start (or
// Listen+Serve), stop with Shutdown, then Close to tear down the map.
type Server struct {
	cfg Config
	m   *qsense.SkipMap

	ctx    context.Context
	cancel context.CancelFunc

	ln        net.Listener
	draining  atomic.Bool
	drainDone chan struct{} // closed once the last handler has exited

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	accepted atomic.Uint64

	// Hardening counters (surfaced in STATS).
	idleTimeouts  atomic.Uint64 // conns dropped by IdleTimeout
	writeTimeouts atomic.Uint64 // conns dropped by WriteTimeout
	panicsCaught  atomic.Uint64 // handler panics recovered (lease still released)
	busyRejected  atomic.Uint64 // writes refused with -BUSY under MemoryLimit

	memCheck atomic.Int64 // UnixNano of the last MemoryLimit sample
	memBusy  atomic.Bool  // last sampled verdict: pending > MemoryLimit
}

// New builds a server (no listener yet).
func New(cfg Config) (*Server, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = "qsense"
	}
	scheme, err := qsense.ParseScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	m, err := qsense.NewSkipMap(qsense.Options{
		Scheme:         scheme,
		MaxWorkers:     cfg.InitialConns,
		HardMaxWorkers: cfg.HardMaxConns,
		MaxNodes:       cfg.MaxNodes,
		Shards:         cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MaxBulk <= 0 {
		cfg.MaxBulk = 64 << 10
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg: cfg, m: m, ctx: ctx, cancel: cancel,
		conns:     map[net.Conn]struct{}{},
		drainDone: make(chan struct{}),
	}, nil
}

// Listen binds addr (e.g. ":6380", "127.0.0.1:0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Start is Listen plus Serve on a background goroutine.
func (s *Server) Start(addr string) (net.Addr, error) {
	a, err := s.Listen(addr)
	if err != nil {
		return nil, err
	}
	go s.Serve()
	return a, nil
}

// Addr is the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown; it returns nil on a drain and
// the accept error otherwise.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		go s.handle(c)
	}
}

// Shutdown drains the server: stop accepting, wake blocked reads and
// AcquireWaits, let every in-flight command finish and every connection
// release its guard. It returns ctx.Err() if the drain outlives ctx, after
// force-closing the stragglers (their deferred Releases still run).
// Shutdown is safe to call concurrently: every caller — not just the one
// that initiates the drain — blocks until the drain completes (or its own
// ctx expires), so a nil return always means every handler has released
// its map handle and Close may follow. Shutdown leaves the map intact —
// STATS-style inspection via Stats keeps working — Close tears it down.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		// Another Shutdown owns the drain; wait for it rather than return
		// early with handlers still holding leased handles.
		select {
		case <-s.drainDone:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.cancel()
	s.mu.Lock()
	for c := range s.conns {
		// Wake reads blocked on an idle peer; the handler sees draining
		// and exits after finishing the command in flight.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	go func() {
		s.wg.Wait()
		close(s.drainDone)
	}()
	select {
	case <-s.drainDone:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-s.drainDone
		return ctx.Err()
	}
}

// Close tears down the map's reclamation domain, freeing every pending
// node. Call after Shutdown.
func (s *Server) Close() { s.m.Close() }

// Stats snapshots the map's reclamation counters.
func (s *Server) Stats() qsense.Stats { return s.m.Stats() }

// Values snapshots the map's value-arena gauges.
func (s *Server) Values() qsense.ValueStats { return s.m.Values() }

// LiveConns is the number of currently open connections.
func (s *Server) LiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// handle owns one connection: one leased SkipMap handle for the
// connection's lifetime, a read-dispatch loop, and a flush whenever the
// pipeline drains.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	h, err := s.m.AcquireWait(s.ctx)
	if err != nil {
		// Shutdown cancelled the wait at a full HardMaxConns cap.
		wr := resp.NewWriter(c)
		wr.Error("ERR server draining")
		wr.Flush()
		return
	}
	defer h.Release()
	// Registered after the Release defer, so it runs FIRST on unwind: a
	// panicking command (pool exhaustion, a container bug) costs its own
	// connection an -ERR and a close, never the lease — the slot goes back
	// to the freelist and the rest of the server keeps serving.
	defer func() {
		if r := recover(); r != nil {
			s.panicsCaught.Add(1)
			wr := resp.NewWriter(c)
			wr.Error(fmt.Sprintf("ERR internal error: %v", sanitize(fmt.Sprint(r))))
			wr.Flush()
		}
	}()
	rd := resp.NewReader(c)
	wr := resp.NewWriter(c)
	flush := func() error {
		if s.cfg.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		err := wr.Flush()
		if err != nil && isTimeout(err) && !s.draining.Load() {
			s.writeTimeouts.Add(1)
		}
		return err
	}
	var valBuf []byte // per-connection scratch for GET copies
	for {
		if s.cfg.IdleTimeout > 0 && !s.draining.Load() {
			// Per-command read deadline: the stalled-reader defense. Not
			// re-armed while draining, so Shutdown's past-deadline wake-up
			// (SetReadDeadline(now)) cannot be overwritten.
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		args, err := rd.ReadCommand()
		if err != nil {
			// Framing violations get a reply; EOF, drain deadlines and
			// network errors close quietly. An idle timeout on a healthy
			// server is the hardening path: count it, best-effort notify.
			if resp.IsProtocol(err) {
				wr.Error("ERR " + err.Error())
				flush()
			} else if isTimeout(err) && !s.draining.Load() {
				s.idleTimeouts.Add(1)
				wr.Error("ERR idle timeout, closing")
				flush()
			}
			return
		}
		if s.cfg.WriteTimeout > 0 && !s.draining.Load() {
			// Armed before dispatch, not only at the explicit flush below:
			// a bulk reply larger than the writer's buffer auto-flushes
			// inside dispatch, and without a deadline that hidden write
			// could wedge the handler on a stalled client forever.
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		quit := s.dispatch(h, wr, args, &valBuf)
		if rd.Buffered() == 0 {
			if err := flush(); err != nil {
				return
			}
		}
		if quit || s.draining.Load() {
			flush()
			return
		}
	}
}

// isTimeout reports whether err is a connection deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// overLimit is the MemoryLimit sampler: at most once per memSampleEvery,
// one winning goroutine (CAS on the sample clock) refreshes the verdict
// from the map's pending count; everyone else reads the cached bit.
func (s *Server) overLimit() bool {
	if s.cfg.MemoryLimit <= 0 {
		return false
	}
	now := time.Now().UnixNano()
	last := s.memCheck.Load()
	if now-last >= int64(memSampleEvery) && s.memCheck.CompareAndSwap(last, now) {
		// Pending already counts retired-but-unreclaimed value nodes (they
		// retire through the same domain); live spilled values occupy pool
		// slots too, so they join the pressure signal.
		occupied := s.m.Stats().Pending + s.m.Values().Spilled
		s.memBusy.Store(occupied > int64(s.cfg.MemoryLimit))
	}
	return s.memBusy.Load()
}

// dispatch executes one command; true means the connection should close.
// valBuf is the connection's GET scratch: the reply writer copies the bytes
// into its own buffer before dispatch returns, so the slice is reusable
// across commands.
func (s *Server) dispatch(h qsense.MapHandle, wr *resp.Writer, args [][]byte, valBuf *[]byte) bool {
	switch cmd := string(bytes.ToUpper(args[0])); cmd {
	case "PING":
		wr.SimpleString("PONG")
	case "QUIT":
		wr.SimpleString("OK")
		return true
	case "GET":
		k, ok := wantKey(wr, cmd, args, 2)
		if !ok {
			return false
		}
		if v, found := h.GetAppend(k, (*valBuf)[:0]); found {
			*valBuf = v[:0]
			wr.Bulk(v)
		} else {
			wr.Null()
		}
	case "SET":
		k, ok := wantKey(wr, cmd, args, 3)
		if !ok {
			return false
		}
		if len(args[2]) > s.cfg.MaxBulk {
			wr.Error(fmt.Sprintf("ERR value too large (%d bytes, limit %d)", len(args[2]), s.cfg.MaxBulk))
			return false
		}
		if s.overLimit() {
			// Graceful degradation: shedding the commands that allocate
			// (and, via Delete, retire) lets reclamation catch up while
			// reads keep serving.
			s.busyRejected.Add(1)
			wr.Error("BUSY retry later")
			return false
		}
		h.Put(k, args[2])
		wr.SimpleString("OK")
	case "DEL":
		k, ok := wantKey(wr, cmd, args, 2)
		if !ok {
			return false
		}
		if s.overLimit() {
			s.busyRejected.Add(1)
			wr.Error("BUSY retry later")
			return false
		}
		if h.Delete(k) {
			wr.Int(1)
		} else {
			wr.Int(0)
		}
	case "STATS":
		wr.Bulk(s.statsText())
	default:
		wr.Error("ERR unknown command '" + sanitize(cmd) + "'")
	}
	return false
}

// wantKey validates arity and parses the key argument. The two extreme
// int64 values are the SkipMap's sentinel keys and out of its domain (the
// map itself also rejects them); they draw -ERR rather than silently
// reporting absent.
func wantKey(wr *resp.Writer, cmd string, args [][]byte, arity int) (int64, bool) {
	if len(args) != arity {
		wr.Error("ERR wrong number of arguments for '" + strings.ToLower(cmd) + "'")
		return 0, false
	}
	k, err := strconv.ParseInt(string(args[1]), 10, 64)
	if err != nil {
		wr.Error("ERR key is not an integer")
		return 0, false
	}
	if k == math.MinInt64 || k == math.MaxInt64 {
		wr.Error("ERR key out of range (the extreme int64 values are reserved)")
		return 0, false
	}
	return k, true
}

// sanitize keeps control bytes out of error replies.
func sanitize(s string) string {
	if len(s) > 32 {
		s = s[:32]
	}
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r > 0x7e {
			return '?'
		}
		return r
	}, s)
}

// statsText renders the STATS reply: one "key: value" line per counter,
// numeric except the scheme line, in a fixed order parseable by
// ParseStats.
func (s *Server) statsText() []byte {
	st := s.m.Stats()
	var b bytes.Buffer
	fmt.Fprintf(&b, "scheme: %s\n", st.Scheme)
	for _, kv := range statsFields(st) {
		fmt.Fprintf(&b, "%s: %d\n", kv.k, kv.v)
	}
	vs := s.m.Values()
	fmt.Fprintf(&b, "value_bytes: %d\n", vs.Bytes)
	fmt.Fprintf(&b, "value_spilled: %d\n", vs.Spilled)
	fmt.Fprintf(&b, "value_retires: %d\n", vs.ValueRetires)
	fmt.Fprintf(&b, "struct_retires: %d\n", vs.StructRetires)
	fmt.Fprintf(&b, "conns_accepted: %d\n", s.accepted.Load())
	fmt.Fprintf(&b, "conns_live: %d\n", s.LiveConns())
	fmt.Fprintf(&b, "idle_timeouts: %d\n", s.idleTimeouts.Load())
	fmt.Fprintf(&b, "write_timeouts: %d\n", s.writeTimeouts.Load())
	fmt.Fprintf(&b, "panics_recovered: %d\n", s.panicsCaught.Load())
	fmt.Fprintf(&b, "busy_rejected: %d\n", s.busyRejected.Load())
	return b.Bytes()
}

type statKV struct {
	k string
	v int64
}

// statsFields flattens the numeric Stats fields under the snake_case names
// the BENCH JSON uses.
func statsFields(st qsense.Stats) []statKV {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	return []statKV{
		{"retired", int64(st.Retired)},
		{"freed", int64(st.Freed)},
		{"pending", st.Pending},
		{"scans", int64(st.Scans)},
		{"scanned_records", int64(st.ScannedRecords)},
		{"quiescent_states", int64(st.QuiescentStates)},
		{"epoch_advances", int64(st.EpochAdvances)},
		{"switches_to_fallback", int64(st.SwitchesToFallback)},
		{"switches_to_fast", int64(st.SwitchesToFast)},
		{"in_fallback", b2i(st.InFallback)},
		{"evictions", int64(st.Evictions)},
		{"rejoins", int64(st.Rejoins)},
		{"acquired_handles", int64(st.AcquiredHandles)},
		{"released_handles", int64(st.ReleasedHandles)},
		{"orphaned_nodes", int64(st.OrphanedNodes)},
		{"adopted_nodes", int64(st.AdoptedNodes)},
		{"arena_size", int64(st.ArenaSize)},
		{"high_water_workers", int64(st.HighWaterWorkers)},
		{"arena_growths", int64(st.ArenaGrowths)},
		{"parked_slots", int64(st.ParkedSlots)},
		{"segment_parks", int64(st.SegmentParks)},
		{"segment_unparks", int64(st.SegmentUnparks)},
		{"effective_r", int64(st.EffectiveR)},
		{"effective_c", int64(st.EffectiveC)},
		{"r_retunes", int64(st.RRetunes)},
		{"c_retunes", int64(st.CRetunes)},
		{"rooster_passes", int64(st.RoosterPasses)},
		{"ibr_interval_width", int64(st.IBRIntervalWidth)},
		{"hyaline_batch_refs", st.HyalineBatchRefs},
		{"shards", int64(st.Shards)},
		{"shard_imbalance", int64(st.ShardImbalance)},
		{"failed", b2i(st.Failed)},
	}
}

// ParseStats parses a STATS reply body back into its numeric fields
// (the scheme line is skipped).
func ParseStats(text []byte) map[string]int64 {
	out := map[string]int64{}
	for _, line := range strings.Split(string(text), "\n") {
		k, v, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			out[k] = n
		}
	}
	return out
}
