package kvd

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qsense/internal/workload"
)

// The shutdown-vs-fault interleavings: every path out of a connection —
// drain, idle timeout, memory pressure, panic — must end with the leased
// map handle back in the pool (AcquiredHandles == ReleasedHandles once no
// connection is live).

// leasesBalanced asserts no handle leaked: the difference between leases
// granted and returned must equal the live connection count (0 after a
// drain). Polls briefly — a closing handler releases a beat after the
// socket dies.
func leasesBalanced(t *testing.T, s *Server, context string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		held := int64(st.AcquiredHandles) - int64(st.ReleasedHandles)
		if held == int64(s.LiveConns()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d leases held with %d live conns", context, held, s.LiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownWithStalledConn: a connection that dialed and went silent
// holds a leased handle with its handler parked in a read. Concurrent
// Shutdowns must wake it, drain completely, and report every lease back.
func TestShutdownWithStalledConn(t *testing.T) {
	s, addr := startServer(t, Config{Scheme: "qsbr"})
	stalled := dialClient(t, addr) // never sends a byte
	_ = stalled
	healthy := dialClient(t, addr)
	if rp := healthy.do(t, "PING"); rp.Str != "PONG" {
		t.Fatalf("healthy conn: %+v", rp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown %d with stalled conn: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if live := s.LiveConns(); live != 0 {
		t.Fatalf("%d conns live after drain", live)
	}
	leasesBalanced(t, s, "after shutdown with stalled conn")
}

// TestAcquireWaitCancelledByShutdown: at a full HardMaxConns cap a queued
// connection is parked in AcquireWait; Shutdown must cancel the wait (the
// conn draws "-ERR server draining" or a close, never a hang) and the drain
// must account for every lease.
func TestAcquireWaitCancelledByShutdown(t *testing.T) {
	s, addr := startServer(t, Config{HardMaxConns: 1})
	first := dialClient(t, addr)
	if rp := first.do(t, "PING"); rp.Str != "PONG" {
		t.Fatalf("first conn: %+v", rp)
	}
	queued := dialClient(t, addr)
	queued.wr.Command("PING")
	if err := queued.wr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Confirm it is actually parked before shutting down.
	queued.c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := queued.rd.ReadReply(); err == nil {
		t.Fatal("queued conn served past the cap")
	}
	queued.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with queued AcquireWait: %v", err)
	}
	// The queued conn must have been answered or closed — not left hanging.
	if rp, err := queued.rd.ReadReply(); err == nil {
		if !rp.IsError() || !strings.Contains(rp.Str, "draining") {
			// It may have won the freed lease in the race with cancel and
			// then been drained; PONG is acceptable, a hang is not.
			if rp.Str != "PONG" {
				t.Fatalf("queued conn got unexpected reply %+v", rp)
			}
		}
	}
	leasesBalanced(t, s, "after shutdown with queued AcquireWait")
}

// TestIdleTimeoutReleasesStalledLease: with IdleTimeout set, a silent
// connection is disconnected and its lease released while a healthy
// slower-paced client (always inside the deadline) keeps its connection.
func TestIdleTimeoutReleasesStalledLease(t *testing.T) {
	s, addr := startServer(t, Config{Scheme: "qsbr", IdleTimeout: 100 * time.Millisecond})
	stalled := dialClient(t, addr) // never speaks
	healthy := dialClient(t, addr)
	// Each command re-arms the healthy conn's deadline; pace well inside it.
	for i := 0; i < 6; i++ {
		if rp := healthy.do(t, "PING"); rp.Str != "PONG" {
			t.Fatalf("healthy conn dropped at iteration %d: %+v", i, rp)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// By now (300ms >> IdleTimeout) the stalled conn must be gone: its
	// socket reports the courtesy error and then EOF.
	stalled.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if rp, err := stalled.rd.ReadReply(); err == nil {
		if !rp.IsError() || !strings.Contains(rp.Str, "idle timeout") {
			t.Fatalf("stalled conn got %+v, want idle-timeout error", rp)
		}
	}
	if _, err := stalled.rd.ReadReply(); err == nil {
		t.Fatal("stalled conn still open after idle timeout")
	}
	stats := ParseStats(healthy.do(t, "STATS").Bulk)
	if stats["idle_timeouts"] == 0 {
		t.Fatal("idle_timeouts counter not incremented")
	}
	leasesBalanced(t, s, "after idle timeout")
}

// TestMemoryPressureBusyAndRecovery: under a stalled reader an epoch
// scheme's pending grows without bound; with MemoryLimit the server sheds
// SET/DEL with -BUSY while GET keeps serving, and recovers (writes accepted
// again) once the stalled connection goes away and reclamation drains.
func TestMemoryPressureBusyAndRecovery(t *testing.T) {
	const limit = 64
	s, addr := startServer(t, Config{Scheme: "qsbr", MemoryLimit: limit})
	stalled := dialClient(t, addr) // pins the epoch: leased handle, no ops
	w := dialClient(t, addr)

	// Build pending past the limit: each SET+DEL pair retires at least one
	// node, and none can be reclaimed while the stalled lease never
	// quiesces. Stop once the server starts shedding.
	sawBusy := false
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; !sawBusy; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no -BUSY after %d write pairs (pending %d, limit %d)",
				i, s.Stats().Pending, limit)
		}
		k := strconv.Itoa(i % 1024)
		set := w.do(t, "SET", k, "1")
		if set.IsError() && strings.HasPrefix(set.Str, "BUSY") {
			sawBusy = true
			break
		}
		if del := w.do(t, "DEL", k); del.IsError() && strings.HasPrefix(del.Str, "BUSY") {
			sawBusy = true
		}
	}
	// Degradation must be partial: reads still serve while writes shed.
	if rp := w.do(t, "GET", "0"); rp.IsError() {
		t.Fatalf("GET failed under memory pressure: %+v", rp)
	}
	if rp := w.do(t, "PING"); rp.Str != "PONG" {
		t.Fatalf("PING failed under memory pressure: %+v", rp)
	}
	if stats := ParseStats(w.do(t, "STATS").Bulk); stats["busy_rejected"] == 0 {
		t.Fatal("busy_rejected counter not incremented")
	}

	// Recovery: the stalled client goes away; its EOF releases the lease,
	// the writer's own ops drive quiescence, pending drains, and writes
	// are accepted again.
	stalled.c.Close()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if rp := w.do(t, "SET", "9999", "1"); !rp.IsError() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes still shed %v after the stalled conn closed (pending %d)",
				15*time.Second, s.Stats().Pending)
		}
		w.do(t, "GET", "0") // keep the epoch machinery turning
		time.Sleep(5 * time.Millisecond)
	}
	leasesBalanced(t, s, "after memory-pressure recovery")
}

// TestPanicRecoveryKeepsServing: a command that panics (node-pool
// exhaustion — the substrate's malloc-returns-NULL) costs that connection
// an error, not the server: the lease is released and other connections
// keep serving.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	// The smallest pool is one slab; fill it with live nodes until an
	// insert panics. Scheme none frees eagerly, so only live nodes count.
	s, addr := startServer(t, Config{Scheme: "none", MaxNodes: 1})
	w := dialClient(t, addr)
	sawPanic := false
	for i := 0; i < 64<<10 && !sawPanic; i++ {
		w.wr.Command("SET", strconv.Itoa(i), "1")
		if err := w.wr.Flush(); err != nil {
			break // connection died with the panic before the reply got out
		}
		w.c.SetReadDeadline(time.Now().Add(5 * time.Second))
		rp, err := w.rd.ReadReply()
		if err != nil {
			break
		}
		if rp.IsError() && strings.Contains(rp.Str, "internal error") {
			sawPanic = true
		}
	}
	if !sawPanic {
		// The error reply is best-effort (the close can race it), so accept
		// a dead connection as long as the counter proves the recovery path.
		if s.Stats().Retired == 0 && s.LiveConns() > 1 {
			t.Log("connection closed without readable error reply; checking counters")
		}
	}
	fresh := dialClient(t, addr)
	if rp := fresh.do(t, "PING"); rp.Str != "PONG" {
		t.Fatalf("server stopped serving after a handler panic: %+v", rp)
	}
	stats := ParseStats(fresh.do(t, "STATS").Bulk)
	if stats["panics_recovered"] == 0 {
		t.Fatal("panics_recovered counter not incremented — did the insert ever panic?")
	}
	leasesBalanced(t, s, "after handler panic")
}

// TestRunLoadStallConns: the load generator's -stall-conns mode holds N
// silent connections (pinning leases) while healthy workers keep scoring
// ops against the same server.
func TestRunLoadStallConns(t *testing.T) {
	s, addr := startServer(t, Config{Scheme: "qsense"})
	res, err := RunLoad(LoadConfig{
		Target: addr, Conns: 2, KeyRange: 512, UpdatePct: 20,
		Plan: workload.Steady(400 * time.Millisecond), Seed: 7, NoPrefill: true,
		StallConns: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("healthy workers scored no ops alongside stalled connections")
	}
	// While the run was live the stalled conns held leases; RunLoad closes
	// them on exit, so afterwards everything must balance.
	if st := s.Stats(); st.AcquiredHandles < 5 {
		t.Fatalf("expected >= 5 leases (2 workers + 3 stalls), saw %d", st.AcquiredHandles)
	}
	leasesBalanced(t, s, "after stall-conns load")
}
