package kvd

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"qsense/internal/harness"
	"qsense/internal/resp"
	"qsense/internal/workload"
)

// LoadConfig describes one macro-benchmark run against a kvd server.
type LoadConfig struct {
	// Target is the server address ("host:port").
	Target string
	// Conns is the client connection pool size; the PhasePlan decides how
	// many of them are live at any moment.
	Conns int
	// KeyRange and Theta shape the key distribution: bounded zipfian with
	// skew Theta over [0, KeyRange), uniform when Theta <= 0.
	KeyRange int64
	Theta    float64
	// UpdatePct is the write fraction (split evenly SET/DEL, rest GET).
	UpdatePct int
	// Plan drives connection churn: each phase keeps a Load-fraction of
	// Conns connected and the rest disconnected — a burst-then-idle plan
	// exercises the server's arena growth and parking.
	Plan workload.PhasePlan
	// ValueSize shapes SET payload sizes (workload.SizeDist): fixed at
	// Base bytes, or zipf-extended up to Max. The zero value means fixed
	// 8-byte values — just past the SkipMap's 7-byte inline cap, so the
	// spilled value-arena path is on by default. Every payload is
	// self-verifying (workload.AppendPayload); GET replies are checked and
	// corrupt ones counted in LoadResult.BadValues.
	ValueSize workload.SizeDist
	// Seed makes runs reproducible; 0 means 1.
	Seed uint64
	// NoPrefill skips the half-range prefill (for tests that assert exact
	// map contents).
	NoPrefill bool
	// StallConns opens this many extra connections that dial, then hold
	// the socket silently for the whole run — each one pins a leased map
	// handle server-side while sending nothing. This is the TCP face of
	// the fault matrix's stalled reader: against a server without
	// IdleTimeout the leases stay pinned for the run; with IdleTimeout
	// set the server is expected to evict them (visible as idle_timeouts
	// in the final STATS). Healthy workers keep running either way.
	StallConns int
}

// dialRetry dials target, retrying transient connect errors with capped
// exponential backoff plus jitter — a load generator racing a server's
// startup (or riding out a listen-queue overflow under a connection storm)
// should degrade into a short wait, not a failed run. Jitter decorrelates
// the pool's retries so a thundering herd doesn't re-arrive in lockstep.
func dialRetry(target string, attempts int, rng *workload.RNG) (net.Conn, error) {
	backoff := 2 * time.Millisecond
	const capBackoff = 250 * time.Millisecond
	var lastErr error
	for a := 0; a < attempts; a++ {
		c, err := net.Dial("tcp", target)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if a == attempts-1 {
			break
		}
		// Sleep in [backoff/2, 3*backoff/2): full jitter around the nominal.
		time.Sleep(backoff/2 + time.Duration(rng.Next()%uint64(backoff)))
		if backoff *= 2; backoff > capBackoff {
			backoff = capBackoff
		}
	}
	return nil, fmt.Errorf("kvd: dial %s: %w (after %d attempts)", target, lastErr, attempts)
}

// LoadResult is the outcome of RunLoad: closed-loop throughput, the merged
// per-op latency distribution, and the server's reclamation counters
// fetched over STATS after the last phase.
type LoadResult struct {
	Conns    int
	Ops      uint64
	Errs     uint64
	// BadValues counts GET replies that failed payload verification — a
	// nonzero count means the server returned torn or freed value bytes.
	BadValues uint64
	Duration  time.Duration
	Mops      float64
	Latency   *harness.LatencyHist
	Stats     map[string]int64
}

// RunLoad drives the configured workload to completion. Each connection is
// closed-loop — one command in flight, per-op round-trip latency recorded
// into an HDR-style histogram — so the latency numbers are honest
// request-to-reply times, not queueing artifacts of an open-loop injector.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1 << 16
	}
	if cfg.Plan.Total() <= 0 {
		cfg.Plan = workload.Steady(time.Second)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ValueSize.Base <= 0 {
		cfg.ValueSize.Base = 8
	}
	if !cfg.NoPrefill {
		if err := Prefill(cfg.Target, cfg.KeyRange, cfg.Seed, cfg.ValueSize); err != nil {
			return LoadResult{}, fmt.Errorf("kvd prefill: %w", err)
		}
	}
	hists := make([]harness.LatencyHist, cfg.Conns)
	ops := make([]uint64, cfg.Conns)
	errs := make([]uint64, cfg.Conns)
	bad := make([]uint64, cfg.Conns)
	start := time.Now()
	// Stalled connections dial before the healthy pool so their leases are
	// pinned for the whole measured window.
	stallStop := make(chan struct{})
	var stallWg sync.WaitGroup
	for i := 0; i < cfg.StallConns; i++ {
		stallWg.Add(1)
		go func(i int) {
			defer stallWg.Done()
			rng := workload.NewRNG(cfg.Seed ^ (uint64(i)*0x9E3779B9 + 0x5111))
			c, err := dialRetry(cfg.Target, 8, rng)
			if err != nil {
				return
			}
			defer c.Close()
			// Hold silently: no commands, no reads. If the server's
			// IdleTimeout disconnects us, keep holding the closed socket —
			// a crashed client doesn't politely redial.
			<-stallStop
		}(i)
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops[i], errs[i], bad[i] = loadWorker(i, cfg, start, &hists[i])
		}(i)
	}
	wg.Wait()
	close(stallStop)
	stallWg.Wait()
	res := LoadResult{Conns: cfg.Conns, Duration: time.Since(start), Latency: &harness.LatencyHist{}}
	for i := range hists {
		res.Ops += ops[i]
		res.Errs += errs[i]
		res.BadValues += bad[i]
		res.Latency.Merge(&hists[i])
	}
	res.Mops = float64(res.Ops) / res.Duration.Seconds() / 1e6
	// Snapshot the server's counters after the last phase: this is where a
	// burst-then-idle plan shows parked slots and a decayed live count.
	if st, err := FetchStats(cfg.Target); err == nil {
		res.Stats = st
	}
	return res, nil
}

// loadWorker is one pooled connection's life: follow the phase plan
// (connect when this worker index is active, disconnect and sleep when
// not), and while connected run the zipf-keyed op mix closed-loop. SETs
// carry sized self-verifying payloads; GET replies are verified, with
// corruption counted in bad rather than errs (a torn value is a
// correctness event, not a transport one).
func loadWorker(i int, cfg LoadConfig, start time.Time, hist *harness.LatencyHist) (ops, errs, bad uint64) {
	rng := workload.NewRNG(cfg.Seed + uint64(i)*0x9E3779B9 + 7)
	mix := workload.Mix{UpdatePct: cfg.UpdatePct}
	var conn net.Conn
	var rd *resp.Reader
	var wr *resp.Writer
	var keyBuf, valBuf []byte
	setCmd := []byte("SET")
	drop := func() {
		if conn != nil {
			conn.Close()
			conn, rd, wr = nil, nil, nil
		}
	}
	defer drop()
	for {
		ph, remaining, running := cfg.Plan.At(time.Since(start))
		if !running {
			return ops, errs, bad
		}
		if i >= ph.ActiveWorkers(cfg.Conns) {
			drop()
			time.Sleep(remaining)
			continue
		}
		if conn == nil {
			c, err := dialRetry(cfg.Target, 4, rng)
			if err != nil {
				errs++
				continue
			}
			conn = c
			rd = resp.NewReader(c)
			wr = resp.NewWriter(c)
		}
		k := rng.ZipfKey(cfg.KeyRange, cfg.Theta)
		keyBuf = strconv.AppendInt(keyBuf[:0], k, 10)
		op := mix.Choose(rng.Next())
		t0 := time.Now()
		switch op {
		case workload.OpSearch:
			wr.CommandBytes([]byte("GET"), keyBuf)
		case workload.OpInsert:
			n := cfg.ValueSize.Sample(rng)
			valBuf = workload.AppendPayload(valBuf[:0], k, rng.Next(), n)
			wr.CommandBytes(setCmd, keyBuf, valBuf)
		case workload.OpDelete:
			wr.CommandBytes([]byte("DEL"), keyBuf)
		}
		if err := wr.Flush(); err != nil {
			errs++
			drop()
			continue
		}
		rp, err := rd.ReadReply()
		if err != nil {
			errs++
			drop()
			continue
		}
		if rp.IsError() {
			errs++
			continue
		}
		if op == workload.OpSearch && rp.Kind == '$' && rp.Bulk != nil &&
			!workload.VerifyPayload(rp.Bulk, k) {
			bad++
		}
		hist.Record(time.Since(t0))
		ops++
	}
}

// Prefill populates the server to the paper's half-full starting point:
// every even key in [0, keyRange) is SET (pipelined) with a sized
// self-verifying payload, so GETs under any skew hit about half the time —
// and verify — and DELs have victims from the start.
func Prefill(target string, keyRange int64, seed uint64, size workload.SizeDist) error {
	rng := workload.NewRNG(seed ^ 0xABCD)
	if size.Base <= 0 {
		size.Base = 8
	}
	c, err := dialRetry(target, 8, rng)
	if err != nil {
		return err
	}
	defer c.Close()
	rd := resp.NewReader(c)
	wr := resp.NewWriter(c)
	const batch = 128
	inFlight := 0
	drain := func() error {
		for ; inFlight > 0; inFlight-- {
			rp, err := rd.ReadReply()
			if err != nil {
				return err
			}
			if rp.IsError() {
				return fmt.Errorf("prefill rejected: %s", rp.Str)
			}
		}
		return nil
	}
	setCmd := []byte("SET")
	var keyBuf, valBuf []byte
	for k := int64(0); k < keyRange; k += 2 {
		keyBuf = strconv.AppendInt(keyBuf[:0], k, 10)
		valBuf = workload.AppendPayload(valBuf[:0], k, rng.Next(), size.Sample(rng))
		wr.CommandBytes(setCmd, keyBuf, valBuf)
		if inFlight++; inFlight == batch {
			if err := wr.Flush(); err != nil {
				return err
			}
			if err := drain(); err != nil {
				return err
			}
		}
	}
	if err := wr.Flush(); err != nil {
		return err
	}
	return drain()
}

// FetchStats issues STATS on a fresh connection and parses the numeric
// counters.
func FetchStats(target string) (map[string]int64, error) {
	c, err := dialRetry(target, 8, workload.NewRNG(0x57A75))
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rd := resp.NewReader(c)
	wr := resp.NewWriter(c)
	wr.Command("STATS")
	if err := wr.Flush(); err != nil {
		return nil, err
	}
	rp, err := rd.ReadReply()
	if err != nil {
		return nil, err
	}
	if rp.IsError() || rp.Kind != '$' || rp.Bulk == nil {
		return nil, fmt.Errorf("unexpected STATS reply kind %q", rp.Kind)
	}
	return ParseStats(rp.Bulk), nil
}
