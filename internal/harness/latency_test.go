package harness

import (
	"testing"
	"time"
)

func TestLatencyBucketsRoundTrip(t *testing.T) {
	// Every bucket's upper edge must map back into that bucket, and
	// indices must be monotone in the value.
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := latIndex(v)
		if i <= prev && v != 0 {
			t.Fatalf("latIndex not monotone at %d: %d <= %d", v, i, prev)
		}
		prev = i
		up := latUpper(i)
		if up < v {
			t.Fatalf("latUpper(%d)=%d below the value %d that mapped there", i, up, v)
		}
		if latIndex(up) != i {
			t.Fatalf("upper edge %d of bucket %d maps to bucket %d", up, i, latIndex(up))
		}
		// Bounded relative error: the edge overshoots by < 1/32 + 1.
		if v >= latSubCount && float64(up-v) > float64(v)/latSubCount+1 {
			t.Fatalf("bucket width at %d too coarse: upper %d", v, up)
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	var h LatencyHist
	// 1000 observations: 900 at ~1ms, 90 at ~10ms, 10 at ~100ms.
	for i := 0; i < 900; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 90; i++ {
		h.Record(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	within := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= float64(want)/latSubCount+1
	}
	if q := h.Quantile(0.50); !within(q, time.Millisecond) {
		t.Fatalf("p50 = %v want ~1ms", q)
	}
	if q := h.Quantile(0.99); !within(q, 10*time.Millisecond) {
		t.Fatalf("p99 = %v want ~10ms", q)
	}
	if q := h.Quantile(0.999); !within(q, 100*time.Millisecond) {
		t.Fatalf("p999 = %v want ~100ms", q)
	}
	if m := h.Max(); !within(m, 100*time.Millisecond) {
		t.Fatalf("max = %v want ~100ms", m)
	}
	if m := h.Mean(); m < time.Millisecond || m > 5*time.Millisecond {
		t.Fatalf("mean = %v implausible", m)
	}
}

func TestLatencyMergeAndEmpty(t *testing.T) {
	var empty LatencyHist
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 || empty.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	var a, b LatencyHist
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if q := a.Quantile(0.25); q > 2*time.Millisecond {
		t.Fatalf("p25 after merge = %v want ~1ms", q)
	}
	if q := a.Quantile(0.99); q < 900*time.Millisecond {
		t.Fatalf("p99 after merge = %v want ~1s", q)
	}
}
