package harness

import (
	"testing"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/workload"
)

func TestDelayReclaimBudgetsAreConsistent(t *testing.T) {
	// For every structure: C legal, budget above 3x the 2NC bound of
	// Property 4 (so QSense can never trip the budget), presence of a
	// memory limit at all.
	for _, ds := range DataStructures() {
		rc, err := DelayReclaim(ds, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		hps, _ := HPsForDS(ds, 0)
		legal := reclaim.LegalC(reclaim.Config{Workers: 8, HPs: hps, Q: rc.Q})
		if rc.C < legal {
			t.Errorf("%s: C=%d below legal %d", ds, rc.C, legal)
		}
		if rc.MemoryLimit < 3*2*8*rc.C {
			t.Errorf("%s: budget %d below 3x the 2NC bound %d", ds, rc.MemoryLimit, 2*8*rc.C)
		}
		if rc.MemoryLimit == 0 {
			t.Errorf("%s: no memory limit", ds)
		}
	}
	// Explicit limits pass through untouched.
	rc, err := DelayReclaim("list", 8, 777)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MemoryLimit != 777 {
		t.Fatalf("explicit limit not honored: %d", rc.MemoryLimit)
	}
	if _, err := DelayReclaim("nope", 8, 0); err == nil {
		t.Fatal("unknown ds must error")
	}
}

func TestRunHashmapAllSchemes(t *testing.T) {
	// The bonus structure works through the harness under every scheme.
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := quickCfg("hashmap", scheme, 2)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no ops")
			}
			if scheme != "none" && res.Reclaim.Pending != 0 {
				t.Fatalf("pending %d after close", res.Reclaim.Pending)
			}
		})
	}
}

func TestHPsForHashmap(t *testing.T) {
	if n, err := HPsForDS("hashmap", 0); err != nil || n != 3 {
		t.Fatalf("hashmap HPs = %d, %v", n, err)
	}
}

func TestRunQSenseEvictionInHarness(t *testing.T) {
	// End-to-end: a permanently crashed worker, eviction enabled — the
	// run must finish on the fast path with the crash evicted.
	plan := permanentStall(10 * time.Millisecond)
	cfg := quickCfg("list", "qsense", 3)
	cfg.Duration = 1200 * time.Millisecond
	cfg.Reclaim.Q = 4
	cfg.Reclaim.R = 16
	cfg.Reclaim.C = reclaim.LegalC(reclaim.Config{Workers: 3, HPs: 3, Q: 4, R: 16})
	cfg.Reclaim.EvictAfter = 100 * time.Millisecond
	cfg.Delays = &plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("failed despite eviction")
	}
	if res.Reclaim.Evictions == 0 {
		t.Fatal("crashed worker never evicted")
	}
	if res.Reclaim.SwitchesToFast == 0 {
		t.Fatal("never recovered the fast path after eviction")
	}
}

func permanentStall(start time.Duration) (p workload.DelayPlan) {
	p.Worker = 0
	p.Start = start
	p.Duration = time.Hour
	p.Period = 2 * time.Hour
	return p
}
