// Package harness runs the paper's experiments (§7): timed throughput runs
// of concurrent set operations over the three data structures, under any of
// the five reclamation schemes, with optional process-delay injection and
// per-second throughput sampling. The cmd/ tools and the repository's
// benchmarks are thin wrappers around this package.
package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/workload"
)

// SetHandle is a worker's view of a concurrent set; all three data
// structure handles implement it.
type SetHandle interface {
	Contains(key int64) bool
	Insert(key int64) bool
	Delete(key int64) bool
}

// Config describes one experiment run.
type Config struct {
	DS        string // "list", "skiplist", "bst"
	Scheme    string // "none", "qsbr", "hp", "cadence", "qsense"
	Workers   int
	KeyRange  int64
	UpdatePct int
	Duration  time.Duration

	// Reclaim carries scheme tuning (Q, R, C, rooster interval,
	// MemoryLimit...). Workers, HPs and Free are filled by the harness.
	Reclaim reclaim.Config

	// Leased switches workers from pinned positional guards to
	// Acquire/Release leases recycled every LeaseEvery op batches — the
	// leasevspinned experiment. Delay injection stalls the worker while
	// unleased (a parked goroutine holds no slot), so the stall measures
	// the schemes with the stalled worker OUT of the protocol, where the
	// pinned mode measures it IN.
	Leased bool
	// LeaseEvery is how many 64-op batches a leased worker runs per
	// lease. Default 1: maximal lease churn.
	LeaseEvery int

	// SkipLevels sets the skip list height (default 16).
	SkipLevels int

	// Delays, when non-nil, stalls a worker per the plan (§7.2).
	Delays *workload.DelayPlan

	// SampleEvery, when > 0, records a throughput sample at this period.
	SampleEvery time.Duration

	// Seed diversifies RNG streams across runs.
	Seed uint64

	// NoFill skips the §7.1 initialization (tests).
	NoFill bool
}

// Sample is one point of a throughput time series.
type Sample struct {
	T          time.Duration
	Mops       float64
	InFallback bool
	Failed     bool
}

// Result is the outcome of a run.
type Result struct {
	Cfg      Config
	Ops      uint64
	Duration time.Duration
	Mops     float64
	Samples  []Sample
	Reclaim  reclaim.Stats
	PoolLive uint64 // nodes still allocated after Close (leak for "none")
	Failed   bool
	FailedAt time.Duration
	// Latency carries per-op latency buckets when the producing experiment
	// measures them (the kvd macro-benchmark); nil for the in-process
	// throughput experiments.
	Latency *LatencyHist
	// Value-arena counters, filled by experiments over byte-valued
	// structures (the kvd macro-benchmark): live payload bytes at the end
	// of the run and the retire-traffic split between value and
	// structural nodes.
	ValueBytes    int64
	ValueRetires  uint64
	StructRetires uint64
	// BadValues counts reads that failed payload verification (kvd load).
	BadValues uint64
}

// padCounter is a per-worker op counter padded to a cache line.
type padCounter struct {
	v atomic.Uint64
	_ [56]byte
}

// Run executes one experiment and returns its measurements.
func Run(cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		return Result{}, fmt.Errorf("harness: workers must be positive")
	}
	if cfg.KeyRange <= 1 {
		return Result{}, fmt.Errorf("harness: key range must exceed 1")
	}
	set, err := buildSet(&cfg)
	if err != nil {
		return Result{}, err
	}
	defer set.close()

	if !cfg.NoFill {
		if cfg.Leased {
			g, err := set.dom.Acquire()
			if err != nil {
				return Result{}, err
			}
			fill(set.leasedHandle(g), cfg.KeyRange, cfg.Seed)
			set.dom.Release(g)
		} else {
			fill(set.handles[0], cfg.KeyRange, cfg.Seed)
		}
	}

	ops := make([]padCounter, cfg.Workers)
	var stop atomic.Bool
	var failedAt atomic.Int64 // ns since start; 0 = not failed
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(&cfg, set, w, &ops[w].v, &stop, &failedAt, start)
		}(w)
	}

	var samples []Sample
	if cfg.SampleEvery > 0 {
		samples = sampleLoop(&cfg, set.dom, ops, &stop, start)
	} else {
		time.Sleep(cfg.Duration)
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total uint64
	for i := range ops {
		total += ops[i].v.Load()
	}
	res := Result{
		Cfg:      cfg,
		Ops:      total,
		Duration: elapsed,
		Mops:     float64(total) / elapsed.Seconds() / 1e6,
		Samples:  samples,
		Failed:   set.dom.Failed(),
	}
	if ns := failedAt.Load(); ns > 0 {
		res.FailedAt = time.Duration(ns)
	}
	set.closeDomain() // drains every pending retiree
	res.Reclaim = set.dom.Stats()
	res.PoolLive = set.poolLive()
	return res, nil
}

// runWorker is the per-worker operation loop. It checks the wall clock, the
// delay plan and the failure flag once per small batch so the hot path
// stays just the data structure operation.
func runWorker(cfg *Config, set *builtSet, w int, opCount *atomic.Uint64, stop *atomic.Bool, failedAt *atomic.Int64, start time.Time) {
	if cfg.Leased {
		runWorkerLeased(cfg, set, w, opCount, stop, failedAt, start)
		return
	}
	h := set.handles[w]
	rng := workload.NewRNG(cfg.Seed + uint64(w)*7919 + 1)
	mix := workload.Mix{UpdatePct: cfg.UpdatePct}
	const batch = 64
	local := uint64(0)
	for !stop.Load() {
		// Delay injection (§7.2): the stalled worker sleeps, holding no
		// references and declaring no quiescent states.
		if cfg.Delays != nil && cfg.Delays.Worker == w {
			if stalled, until := cfg.Delays.StalledAt(time.Since(start)); stalled {
				for time.Since(start) < until && !stop.Load() {
					time.Sleep(time.Millisecond)
				}
				continue
			}
		}
		// Failure emulation: a failed domain means the process is out
		// of memory; all workers halt (the paper's QSBR lines end).
		if set.dom.Failed() {
			failedAt.CompareAndSwap(0, int64(time.Since(start)))
			return
		}
		local = runBatch(h, rng, mix, cfg.KeyRange, local)
		opCount.Store(local)
	}
	opCount.Store(local)
}

// runWorkerLeased is runWorker in leased mode: the worker Acquires a guard,
// runs LeaseEvery batches through the slot's cached handle, and Releases —
// so the run pays one lease/release pair (plus the scheme's join and drain
// paths) every LeaseEvery*64 operations, and the epoch machinery sees the
// worker appear and disappear at that cadence.
func runWorkerLeased(cfg *Config, set *builtSet, w int, opCount *atomic.Uint64, stop *atomic.Bool, failedAt *atomic.Int64, start time.Time) {
	rng := workload.NewRNG(cfg.Seed + uint64(w)*7919 + 1)
	mix := workload.Mix{UpdatePct: cfg.UpdatePct}
	leaseEvery := cfg.LeaseEvery
	if leaseEvery <= 0 {
		leaseEvery = 1
	}
	local := uint64(0)
	for !stop.Load() {
		// Delay injection happens between leases: a parked goroutine
		// holds no slot, so the stall exercises the schemes with the
		// stalled worker fully OUT of the protocol.
		if cfg.Delays != nil && cfg.Delays.Worker == w {
			if stalled, until := cfg.Delays.StalledAt(time.Since(start)); stalled {
				for time.Since(start) < until && !stop.Load() {
					time.Sleep(time.Millisecond)
				}
				continue
			}
		}
		if set.dom.Failed() {
			failedAt.CompareAndSwap(0, int64(time.Since(start)))
			return
		}
		// AcquireWait, not Acquire: a leased run against a hard-capped
		// domain should queue at the cap (the backpressure semantics),
		// not silently drop workers from the measurement. The background
		// context never cancels, so err is impossible — fail loudly
		// rather than deflate Ops if that ever changes.
		g, err := set.dom.AcquireWait(context.Background())
		if err != nil {
			panic(fmt.Sprintf("harness: leased worker lost its guard: %v", err))
		}
		h := set.leasedHandle(g)
		for b := 0; b < leaseEvery && !stop.Load(); b++ {
			local = runBatch(h, rng, mix, cfg.KeyRange, local)
			opCount.Store(local)
		}
		set.dom.Release(g)
	}
	opCount.Store(local)
}

// runBatch runs one 64-op batch and returns the updated local op count.
func runBatch(h SetHandle, rng *workload.RNG, mix workload.Mix, keyRange int64, local uint64) uint64 {
	const batch = 64
	for i := 0; i < batch; i++ {
		k := rng.Key(keyRange)
		switch mix.Choose(rng.Next()) {
		case workload.OpSearch:
			h.Contains(k)
		case workload.OpInsert:
			h.Insert(k)
		case workload.OpDelete:
			h.Delete(k)
		}
		local++
	}
	return local
}

// sampleLoop records throughput at cfg.SampleEvery until cfg.Duration.
func sampleLoop(cfg *Config, dom reclaim.Domain, ops []padCounter, stop *atomic.Bool, start time.Time) []Sample {
	var samples []Sample
	tick := time.NewTicker(cfg.SampleEvery)
	defer tick.Stop()
	deadline := start.Add(cfg.Duration)
	prev := uint64(0)
	prevT := time.Duration(0)
	for now := range tick.C {
		t := now.Sub(start)
		var total uint64
		for i := range ops {
			total += ops[i].v.Load()
		}
		st := dom.Stats()
		dt := (t - prevT).Seconds()
		if dt <= 0 {
			dt = cfg.SampleEvery.Seconds()
		}
		samples = append(samples, Sample{
			T:          t,
			Mops:       float64(total-prev) / dt / 1e6,
			InFallback: st.InFallback,
			Failed:     st.Failed,
		})
		prev, prevT = total, t
		if now.After(deadline) {
			break
		}
	}
	return samples
}

// fill performs the §7.1 initialization: one worker inserts random keys
// until the structure holds half the key range.
func fill(h SetHandle, keyRange int64, seed uint64) {
	rng := workload.NewRNG(seed ^ 0xF111)
	target := workload.Fill(keyRange)
	for n := int64(0); n < target; {
		if h.Insert(rng.Key(keyRange)) {
			n++
		}
	}
}
