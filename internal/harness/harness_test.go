package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
	"qsense/internal/workload"
)

func quickCfg(ds, scheme string, workers int) Config {
	return Config{
		DS: ds, Scheme: scheme, Workers: workers,
		KeyRange: 128, UpdatePct: 50, Duration: 60 * time.Millisecond,
		Reclaim: reclaim.Config{Q: 8, Rooster: rooster.Config{Interval: time.Millisecond}},
		Seed:    42,
	}
}

func TestRunAllStructuresAllSchemes(t *testing.T) {
	for _, ds := range DataStructures() {
		for _, scheme := range reclaim.Schemes() {
			ds, scheme := ds, scheme
			t.Run(ds+"/"+scheme, func(t *testing.T) {
				res, err := Run(quickCfg(ds, scheme, 2))
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 {
					t.Fatal("no operations performed")
				}
				if res.Mops <= 0 {
					t.Fatal("throughput not positive")
				}
				if scheme != "none" && res.Reclaim.Retired > 0 && res.Reclaim.Pending != 0 {
					t.Fatalf("pending %d after close", res.Reclaim.Pending)
				}
			})
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{DS: "list", Scheme: "qsbr", Workers: 0, KeyRange: 10}); err == nil {
		t.Fatal("zero workers must error")
	}
	if _, err := Run(Config{DS: "list", Scheme: "qsbr", Workers: 1, KeyRange: 1}); err == nil {
		t.Fatal("key range 1 must error")
	}
	if _, err := Run(quickCfgBad("nope", "qsbr")); err == nil {
		t.Fatal("unknown DS must error")
	}
	if _, err := Run(quickCfgBad("list", "nope")); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func quickCfgBad(ds, scheme string) Config {
	c := quickCfg(ds, scheme, 1)
	c.DS = ds
	c.Scheme = scheme
	return c
}

func TestHPsForDS(t *testing.T) {
	if n, _ := HPsForDS("list", 0); n != 3 {
		t.Fatalf("list HPs = %d", n)
	}
	if n, _ := HPsForDS("bst", 0); n != 6 {
		t.Fatalf("bst HPs = %d", n)
	}
	if n, _ := HPsForDS("skiplist", 16); n != 35 {
		t.Fatalf("skiplist HPs = %d (the paper's 'up to 35')", n)
	}
	if _, err := HPsForDS("nope", 0); err == nil {
		t.Fatal("unknown DS must error")
	}
}

func TestRunQSBRFailsUnderPermanentStall(t *testing.T) {
	// A worker stalled past the memory budget kills QSBR — the Figure 5
	// (bottom) orange line.
	plan := &workload.DelayPlan{Worker: 0, Start: 10 * time.Millisecond, Duration: time.Hour, Period: 2 * time.Hour}
	cfg := quickCfg("list", "qsbr", 3)
	cfg.Duration = 2 * time.Second
	cfg.Reclaim.MemoryLimit = 200
	cfg.Delays = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("QSBR should have exhausted its memory budget")
	}
	if res.FailedAt == 0 {
		t.Fatal("failure time not recorded")
	}
}

func TestRunQSenseSurvivesStall(t *testing.T) {
	// Same scenario: QSense must switch to the fallback path and finish
	// within the same memory budget.
	plan := &workload.DelayPlan{Worker: 0, Start: 10 * time.Millisecond, Duration: time.Hour, Period: 2 * time.Hour}
	cfg := quickCfg("list", "qsense", 3)
	cfg.Duration = 1 * time.Second
	cfg.Reclaim.MemoryLimit = 100000
	cfg.Reclaim.Q = 4
	cfg.Reclaim.R = 16
	cfg.Reclaim.C = reclaim.LegalC(reclaim.Config{Workers: 3, HPs: 3, Q: 4, R: 16})
	cfg.Delays = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("QSense must not fail under a stalled worker")
	}
	if res.Reclaim.SwitchesToFallback == 0 {
		t.Fatal("QSense never engaged the fallback path")
	}
	if res.Reclaim.Freed == 0 {
		t.Fatal("QSense reclaimed nothing")
	}
}

func TestRunTimeSeriesSampling(t *testing.T) {
	cfg := quickCfg("list", "qsbr", 2)
	cfg.Duration = 300 * time.Millisecond
	cfg.SampleEvery = 50 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 3 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	var any bool
	for _, s := range res.Samples {
		if s.Mops > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("all samples zero")
	}
}

func TestRunScalabilityAndOverheads(t *testing.T) {
	sc := ScalabilityConfig{
		DS: "list", KeyRange: 64, UpdatePct: 50,
		Schemes: []string{"none", "qsense"},
		Workers: []int{1, 2}, Duration: 50 * time.Millisecond,
	}
	curves, err := RunScalability(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || len(curves[0].Points) != 2 {
		t.Fatalf("unexpected shape: %d curves", len(curves))
	}
	ov := Overheads(curves)
	if _, ok := ov["qsense"]; !ok {
		t.Fatal("overheads missing qsense")
	}
	if SpeedupOver(curves, "none", "qsense") <= 0 {
		t.Fatal("speedup must be positive")
	}
}

func TestFigConfigs(t *testing.T) {
	f3 := Fig3([]int{1, 2}, time.Second)
	if f3.DS != "list" || f3.UpdatePct != 10 || f3.KeyRange != PaperListRange {
		t.Fatalf("Fig3 config wrong: %+v", f3)
	}
	if len(f3.Schemes) != 3 {
		t.Fatal("Fig3 compares three schemes")
	}
	for _, ds := range DataStructures() {
		f5 := Fig5Top(ds, []int{1}, time.Second, false)
		if f5.UpdatePct != 50 || len(f5.Schemes) != 4 {
			t.Fatalf("Fig5Top(%s) wrong: %+v", ds, f5)
		}
	}
	if Fig5Top("bst", nil, 0, true).KeyRange != PaperBSTRange {
		t.Fatal("paper scale must restore 2M keys")
	}
	fb := Fig5Bottom("skiplist", 0.2, 1000)
	if fb.Workers != 8 || fb.KeyRange != PaperSkipRange {
		t.Fatalf("Fig5Bottom wrong: %+v", fb)
	}
}

func TestRenderCSVAndTable(t *testing.T) {
	curves := []Curve{
		{Scheme: "none", Points: []Point{{1, Result{Mops: 2}}, {2, Result{Mops: 4}}}},
		{Scheme: "hp", Points: []Point{{1, Result{Mops: 1}}, {2, Result{Mops: 2}}}},
	}
	var csv bytes.Buffer
	if err := WriteCurvesCSV(&csv, curves); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "workers,none_mops,hp_mops" {
		t.Fatalf("header = %q", lines[0])
	}
	var tbl bytes.Buffer
	RenderCurvesTable(&tbl, "test", curves)
	if !strings.Contains(tbl.String(), "overhead vs none") {
		t.Fatal("table missing overhead summary")
	}
	if !strings.Contains(tbl.String(), "hp 50.0%") {
		t.Fatalf("expected hp 50%% overhead, got:\n%s", tbl.String())
	}
}

func TestSeriesCSVAndChart(t *testing.T) {
	mk := func(mops ...float64) Result {
		var r Result
		for i, m := range mops {
			r.Samples = append(r.Samples, Sample{T: time.Duration(i+1) * time.Second, Mops: m, InFallback: i == 1})
		}
		return r
	}
	results := map[string]Result{"qsbr": mk(3, 0), "qsense": mk(3, 2), "hp": mk(1, 1)}
	var csv bytes.Buffer
	if err := WriteSeriesCSV(&csv, results, []string{"qsbr", "qsense", "hp"}); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "t_seconds,qsbr_mops,qsense_mops,hp_mops,qsense_fallback") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, ",1\n") {
		t.Fatal("fallback indicator missing")
	}
	var chart bytes.Buffer
	RenderSeriesChart(&chart, "qsense", results["qsense"], 20)
	if !strings.Contains(chart.String(), "#") {
		t.Fatal("chart has no bars")
	}
	fast, fb := FallbackWindows(results["qsense"])
	if fast != 3 || fb != 2 {
		t.Fatalf("window means = %v/%v", fast, fb)
	}
	if m := MeanMops(results["hp"], 0, 10); m != 1 {
		t.Fatalf("mean = %v", m)
	}
}

func TestFillReachesTarget(t *testing.T) {
	cfg := quickCfg("bst", "none", 1)
	cfg.KeyRange = 1000
	cfg.Duration = 20 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Fill is validated indirectly: a BST run with fill must allocate at
	// least range/2 leaves (pool live after close includes leaks for
	// "none", so it is at least the fill size).
	if res.PoolLive < 500 {
		t.Fatalf("pool live %d suggests fill did not run", res.PoolLive)
	}
}

func TestRunLeasedMode(t *testing.T) {
	// The leasevspinned experiment's leased half: workers re-lease their
	// guard every batch, so the run must record lease churn (balanced
	// acquire/release counters) and still drain every retiree at close.
	for _, scheme := range []string{"qsbr", "qsense", "hp"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := quickCfg("list", scheme, 2)
			cfg.Leased = true
			cfg.LeaseEvery = 1
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations performed")
			}
			// The fill lease plus at least one lease per worker.
			if res.Reclaim.AcquiredHandles < 3 {
				t.Fatalf("AcquiredHandles = %d: workers did not lease", res.Reclaim.AcquiredHandles)
			}
			if res.Reclaim.AcquiredHandles != res.Reclaim.ReleasedHandles {
				t.Fatalf("leases leaked: %d acquired vs %d released",
					res.Reclaim.AcquiredHandles, res.Reclaim.ReleasedHandles)
			}
			if res.Reclaim.Retired > 0 && res.Reclaim.Pending != 0 {
				t.Fatalf("pending %d after close", res.Reclaim.Pending)
			}
		})
	}
}

func TestRunLeaseVsPinned(t *testing.T) {
	out, err := RunLeaseVsPinned("list", []string{"qsbr"}, 2, 1, 128, 60*time.Millisecond, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Scheme != "qsbr" {
		t.Fatalf("unexpected results: %+v", out)
	}
	if out[0].Pinned.Ops == 0 || out[0].Leased.Ops == 0 {
		t.Fatalf("empty runs: pinned %d ops, leased %d ops", out[0].Pinned.Ops, out[0].Leased.Ops)
	}
	if out[0].Leased.Reclaim.AcquiredHandles == 0 {
		t.Fatal("leased run recorded no leases")
	}
}
