package harness

import (
	"fmt"
	"io"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
	"qsense/internal/workload"
)

// The paper's experiment parameters (§7.2). Scaled defaults keep the same
// shape on small machines; the cmd tools expose flags to restore the exact
// paper values.
const (
	// PaperListRange, PaperSkipRange, PaperBSTRange are the key ranges of
	// Figure 3 / Figure 5: 2 000, 20 000 and 2 000 000.
	PaperListRange = 2000
	PaperSkipRange = 20000
	PaperBSTRange  = 2000000
	// DefaultBSTRange scales the BST experiment to laptop-class machines.
	DefaultBSTRange = 200000
)

// defaultReclaim is the tuning used by all experiment drivers.
func defaultReclaim(memoryLimit int) reclaim.Config {
	return reclaim.Config{
		Q:           32,
		Rooster:     rooster.Config{Interval: 2 * time.Millisecond},
		MemoryLimit: memoryLimit,
	}
}

// Point is one scalability measurement: throughput at a worker count.
type Point struct {
	Workers int
	Res     Result
}

// Curve is a scheme's scalability series.
type Curve struct {
	Scheme string
	Points []Point
}

// ScalabilityConfig describes a Figure 3 / Figure 5 (top) style experiment.
type ScalabilityConfig struct {
	DS        string
	KeyRange  int64
	UpdatePct int
	Schemes   []string
	Workers   []int
	Duration  time.Duration
	Seed      uint64
}

// Fig3 returns the configuration of Figure 3: linked list, 2000 keys, 10%
// updates, None vs QSense vs HP.
func Fig3(workers []int, duration time.Duration) ScalabilityConfig {
	return ScalabilityConfig{
		DS: "list", KeyRange: PaperListRange, UpdatePct: 10,
		Schemes: []string{"none", "qsense", "hp"},
		Workers: workers, Duration: duration,
	}
}

// Fig5Top returns the configuration of one Figure 5 (top) panel: 50%
// updates, None vs QSBR vs QSense vs HP, paper key ranges (BST scaled
// unless paperScale).
func Fig5Top(ds string, workers []int, duration time.Duration, paperScale bool) ScalabilityConfig {
	var kr int64
	switch ds {
	case "list":
		kr = PaperListRange
	case "skiplist":
		kr = PaperSkipRange
	case "bst":
		kr = DefaultBSTRange
		if paperScale {
			kr = PaperBSTRange
		}
	}
	return ScalabilityConfig{
		DS: ds, KeyRange: kr, UpdatePct: 50,
		Schemes: []string{"none", "qsbr", "qsense", "hp"},
		Workers: workers, Duration: duration,
	}
}

// RunScalability executes a scalability experiment, one run per
// (scheme, workers) pair, reporting progress to log if non-nil.
func RunScalability(sc ScalabilityConfig, log io.Writer) ([]Curve, error) {
	curves := make([]Curve, 0, len(sc.Schemes))
	for _, scheme := range sc.Schemes {
		c := Curve{Scheme: scheme}
		for _, w := range sc.Workers {
			rc := defaultReclaim(0)
			// The scalability experiments measure the common case
			// (no process delays, §7.2); a generous C keeps QSense
			// on its fast path even when goroutine timeslicing on an
			// oversubscribed machine slows epoch advances — matching
			// the paper's never-oversubscribed 48-core testbed.
			rc.C = 1 << 20
			cfg := Config{
				DS: sc.DS, Scheme: scheme, Workers: w,
				KeyRange: sc.KeyRange, UpdatePct: sc.UpdatePct,
				Duration: sc.Duration, Reclaim: rc,
				Seed: sc.Seed + uint64(w),
			}
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%d workers: %w", sc.DS, scheme, w, err)
			}
			c.Points = append(c.Points, Point{Workers: w, Res: res})
			if log != nil {
				fmt.Fprintf(log, "%-8s %-8s workers=%-3d %8.3f Mops/s\n", sc.DS, scheme, w, res.Mops)
			}
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// LeaseVsPinnedResult pairs one scheme's pinned-guard run with its
// short-lease run (the leasing follow-up experiment): how much throughput
// the Acquire/Release cadence costs, and how the epoch machinery behaves
// when workers blink in and out of the protocol instead of standing still.
type LeaseVsPinnedResult struct {
	Scheme string
	Pinned Result
	Leased Result
}

// LeaseOverheadPct is the leased run's throughput deficit vs pinned, in
// percent (negative = leased was faster, i.e. within noise).
func (r LeaseVsPinnedResult) LeaseOverheadPct() float64 {
	if r.Pinned.Mops <= 0 {
		return 0
	}
	return (1 - r.Leased.Mops/r.Pinned.Mops) * 100
}

// RunLeaseVsPinned runs each scheme twice over the same workload — once on
// pinned positional guards (the paper's fixed-worker model) and once with
// workers re-leasing their guard every leaseEvery 64-op batches (the
// goroutine-per-request shape). Short leases stress exactly the paths the
// paper's model never exercises: the per-lease join (a quiescent state, so
// epochs rotate on lease churn alone), the release drain, and orphan
// adoption of whatever backlog a released slot leaves behind. The logged
// epoch-advance and adoption counters make that interaction visible next
// to the raw throughput cost (one CAS pair plus join/drain per lease).
func RunLeaseVsPinned(ds string, schemes []string, workers, leaseEvery int, keyRange int64, duration time.Duration, seed uint64, log io.Writer) ([]LeaseVsPinnedResult, error) {
	out := make([]LeaseVsPinnedResult, 0, len(schemes))
	for _, scheme := range schemes {
		rc := defaultReclaim(0)
		rc.C = 1 << 20 // common case: stay on the fast path (see RunScalability)
		base := Config{
			DS: ds, Scheme: scheme, Workers: workers,
			KeyRange: keyRange, UpdatePct: 50,
			Duration: duration, Reclaim: rc, Seed: seed,
		}
		pinned, err := Run(base)
		if err != nil {
			return nil, fmt.Errorf("%s/%s pinned: %w", ds, scheme, err)
		}
		leasedCfg := base
		leasedCfg.Leased = true
		leasedCfg.LeaseEvery = leaseEvery
		leased, err := Run(leasedCfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s leased: %w", ds, scheme, err)
		}
		r := LeaseVsPinnedResult{Scheme: scheme, Pinned: pinned, Leased: leased}
		out = append(out, r)
		if log != nil {
			fmt.Fprintf(log, "%-8s pinned %8.3f Mops/s | leased %8.3f Mops/s (%+5.1f%%) | epochs %d->%d | leases %d | orphaned/adopted %d/%d\n",
				scheme, pinned.Mops, leased.Mops, r.LeaseOverheadPct(),
				pinned.Reclaim.EpochAdvances, leased.Reclaim.EpochAdvances,
				leased.Reclaim.AcquiredHandles,
				leased.Reclaim.OrphanedNodes, leased.Reclaim.AdoptedNodes)
		}
	}
	return out, nil
}

// DelayConfig describes a Figure 5 (bottom) style experiment: fixed worker
// count, periodic stalls of one worker, per-interval throughput samples.
type DelayConfig struct {
	DS       string
	KeyRange int64
	Schemes  []string
	Workers  int
	// Scale stretches the paper's 100s/10s schedule: 1.0 is the paper,
	// 0.2 runs the same five stall cycles in 20 seconds.
	Scale float64
	// MemoryLimit is the retired-node budget standing in for RAM (§7.3:
	// "the system runs out of memory and eventually fails"). 0 picks an
	// automatic budget: comfortably above QSense's worst-case backlog
	// (Property 4's 2NC) yet below what a blocking scheme accumulates
	// during one stall on any structure fast enough to matter.
	MemoryLimit int
	Seed        uint64
}

// DelayReclaim returns the reclaim tuning for delay experiments: a fallback
// threshold C just above the legal minimum (so the compressed schedules
// still trigger the switch) and the given or automatic memory budget.
func DelayReclaim(ds string, workers, memoryLimit int) (reclaim.Config, error) {
	hps, err := HPsForDS(ds, 0)
	if err != nil {
		return reclaim.Config{}, err
	}
	rc := defaultReclaim(memoryLimit)
	// C per structure: the linked list retires ~10x slower than the other
	// structures, so its switch threshold must be lower for a stall to
	// trigger the fallback promptly; the fast structures get a higher C
	// so ordinary scheduler-induced backlog does not flap the path.
	floorC := 4096
	if ds == "list" {
		floorC = 512
	}
	rc.C = max(reclaim.LegalC(reclaim.Config{Workers: workers, HPs: hps, Q: rc.Q}), floorC)
	if memoryLimit == 0 {
		// The automatic budget sits between two machine-dependent
		// quantities: above the healthy operating backlog (which on an
		// oversubscribed scheduler includes retire-rate × epoch-advance
		// latency) and below what one stall accumulates under a
		// blocking scheme. Always at least 3x Property 4's 2NC so
		// QSense never trips it. Tune with the -limit flag when the
		// bands overlap on a given machine.
		factor := 8
		if ds == "list" {
			factor = 6
		}
		rc.MemoryLimit = factor * workers * rc.C
	}
	return rc, nil
}

// Fig5Bottom returns one Figure 5 (bottom) panel configuration.
func Fig5Bottom(ds string, scale float64, memoryLimit int) DelayConfig {
	var kr int64
	switch ds {
	case "list":
		kr = PaperListRange
	case "skiplist":
		kr = PaperSkipRange
	case "bst":
		kr = DefaultBSTRange
	}
	return DelayConfig{
		DS: ds, KeyRange: kr,
		Schemes: []string{"qsbr", "qsense", "hp"},
		Workers: 8, Scale: scale, MemoryLimit: memoryLimit,
	}
}

// RunDelays executes the path-switching experiment for each scheme.
func RunDelays(dc DelayConfig, log io.Writer) (map[string]Result, error) {
	if dc.Scale <= 0 {
		dc.Scale = 1
	}
	plan := workload.PaperDelayPlan(dc.Scale)
	total := time.Duration(float64(100*time.Second) * dc.Scale)
	sample := time.Duration(float64(time.Second) * dc.Scale)
	rc, err := DelayReclaim(dc.DS, dc.Workers, dc.MemoryLimit)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(dc.Schemes))
	for _, scheme := range dc.Schemes {
		cfg := Config{
			DS: dc.DS, Scheme: scheme, Workers: dc.Workers,
			KeyRange: dc.KeyRange, UpdatePct: 50,
			Duration: total, Reclaim: rc,
			Delays: &plan, SampleEvery: sample, Seed: dc.Seed,
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", dc.DS, scheme, err)
		}
		out[scheme] = res
		if log != nil {
			status := "completed"
			if res.Failed {
				status = fmt.Sprintf("FAILED (out of memory) at %v", res.FailedAt.Round(sample))
			}
			fmt.Fprintf(log, "%-8s %-8s %8.3f Mops/s avg, switches %d/%d, %s\n",
				dc.DS, scheme, res.Mops, res.Reclaim.SwitchesToFallback, res.Reclaim.SwitchesToFast, status)
		}
	}
	return out, nil
}

// Overheads summarizes a scalability experiment the way §7.3 quotes it:
// each scheme's average throughput deficit vs the leaky baseline.
func Overheads(curves []Curve) map[string]float64 {
	var base *Curve
	for i := range curves {
		if curves[i].Scheme == "none" {
			base = &curves[i]
		}
	}
	out := map[string]float64{}
	if base == nil {
		return out
	}
	for _, c := range curves {
		if c.Scheme == "none" {
			continue
		}
		var sum float64
		var n int
		for i, p := range c.Points {
			if i < len(base.Points) && base.Points[i].Res.Mops > 0 {
				sum += 1 - p.Res.Mops/base.Points[i].Res.Mops
				n++
			}
		}
		if n > 0 {
			out[c.Scheme] = sum / float64(n) * 100
		}
	}
	return out
}

// SpeedupOver reports scheme a's average throughput multiple over scheme b
// across matching points (the paper's "QSense outperforms HP by 2-3x").
func SpeedupOver(curves []Curve, a, b string) float64 {
	var ca, cb *Curve
	for i := range curves {
		switch curves[i].Scheme {
		case a:
			ca = &curves[i]
		case b:
			cb = &curves[i]
		}
	}
	if ca == nil || cb == nil {
		return 0
	}
	var sum float64
	var n int
	for i, p := range ca.Points {
		if i < len(cb.Points) && cb.Points[i].Res.Mops > 0 {
			sum += p.Res.Mops / cb.Points[i].Res.Mops
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
