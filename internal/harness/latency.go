package harness

import (
	"math/bits"
	"time"
)

// Latency histogram: HDR-style log-linear buckets over nanoseconds. Each
// power-of-two range is split into 2^latSubBits linear sub-buckets, so the
// relative quantile error is bounded by 1/2^latSubBits (~3%) at any
// magnitude — microsecond RPCs and second-long stalls share one fixed
// 15 KiB array with no allocation on the record path. One histogram is
// single-writer (one per load connection); aggregate with Merge.
const (
	latSubBits  = 5
	latSubCount = 1 << latSubBits // 32 sub-buckets per power of two
	// Values up to 2^63-1 ns land in bucket (63-latSubBits)*32+31; one
	// extra slot catches anything larger.
	latBuckets = (64-latSubBits)*latSubCount + 1
)

// LatencyHist records operation latencies and reports quantiles. The zero
// value is ready to use. Not safe for concurrent writers.
type LatencyHist struct {
	counts [latBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// latIndex maps a nanosecond value to its bucket.
func latIndex(v uint64) int {
	if v < latSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - latSubBits - 1 // shift so v lands in [latSubCount, 2*latSubCount)
	i := exp*latSubCount + int(v>>uint(exp))
	if i >= latBuckets {
		return latBuckets - 1
	}
	return i
}

// latUpper is the inclusive upper edge of bucket i — the value a quantile
// reports, so quantiles never understate.
func latUpper(i int) uint64 {
	if i < latSubCount {
		return uint64(i)
	}
	exp := i/latSubCount - 1
	sub := uint64(i%latSubCount) + latSubCount
	return (sub+1)<<uint(exp) - 1
}

// Record adds one latency observation. Negative durations count as zero.
func (h *LatencyHist) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[latIndex(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count is the number of recorded observations.
func (h *LatencyHist) Count() uint64 { return h.n }

// Mean is the average recorded latency.
func (h *LatencyHist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Max is the largest recorded latency, rounded up to its bucket edge.
func (h *LatencyHist) Max() time.Duration { return time.Duration(latUpper(latIndex(h.max))) }

// Quantile returns the q-quantile (0 < q <= 1, e.g. 0.999) as the upper
// edge of the bucket holding that observation; 0 when empty.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return time.Duration(latUpper(i))
		}
	}
	return time.Duration(latUpper(latBuckets - 1))
}
