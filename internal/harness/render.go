package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// BenchJSON is the machine-readable form of a scalability experiment that
// qsense-bench's -json flag emits (BENCH_<experiment>.json): enough
// metadata to identify the run plus one throughput series per scheme, so
// CI can archive results as artifacts and a perf trajectory can be plotted
// across commits without re-parsing the human tables.
type BenchJSON struct {
	Experiment string            `json:"experiment"`
	DS         string            `json:"ds"`
	KeyRange   int64             `json:"key_range"`
	UpdatePct  int               `json:"update_pct"`
	DurationMS int64             `json:"duration_ms"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Curves     []BenchCurveJSON  `json:"curves"`
	Extra      map[string]string `json:"extra,omitempty"`
}

// BenchCurveJSON is one scheme's series in BenchJSON.
type BenchCurveJSON struct {
	Scheme string           `json:"scheme"`
	Points []BenchPointJSON `json:"points"`
}

// BenchPointJSON is one (workers, throughput) sample, with the reclamation
// counters a perf dashboard most wants next to the headline number. The
// latency fields are present only for experiments that measure per-op
// latency (the kvd macro-benchmark, where workers = connections).
type BenchPointJSON struct {
	Workers        int     `json:"workers"`
	Mops           float64 `json:"mops"`
	Retired        uint64  `json:"retired"`
	Scans          uint64  `json:"scans"`
	ScannedRecords uint64  `json:"scanned_records"`
	ArenaSize      int     `json:"arena_size"`
	ParkedSlots    int     `json:"parked_slots"`
	RRetunes       uint64  `json:"r_retunes"`
	CRetunes       uint64  `json:"c_retunes"`
	Failed         bool    `json:"failed"`
	LatOps         uint64  `json:"lat_ops,omitempty"`
	P50us          float64 `json:"p50_us,omitempty"`
	P99us          float64 `json:"p99_us,omitempty"`
	P999us         float64 `json:"p999_us,omitempty"`
	MaxUs          float64 `json:"max_us,omitempty"`
	// Value-arena counters (byte-valued experiments only).
	ValueBytes    int64  `json:"value_bytes,omitempty"`
	ValueRetires  uint64 `json:"value_retires,omitempty"`
	StructRetires uint64 `json:"struct_retires,omitempty"`
	BadValues     uint64 `json:"bad_values,omitempty"`
}

// WriteCurvesJSON emits a scalability experiment as indented JSON.
func WriteCurvesJSON(w io.Writer, meta BenchJSON, curves []Curve) error {
	for _, c := range curves {
		jc := BenchCurveJSON{Scheme: c.Scheme}
		for _, p := range c.Points {
			jp := BenchPointJSON{
				Workers:        p.Workers,
				Mops:           p.Res.Mops,
				Retired:        p.Res.Reclaim.Retired,
				Scans:          p.Res.Reclaim.Scans,
				ScannedRecords: p.Res.Reclaim.ScannedRecords,
				ArenaSize:      p.Res.Reclaim.ArenaSize,
				ParkedSlots:    p.Res.Reclaim.ParkedSlots,
				RRetunes:       p.Res.Reclaim.RRetunes,
				CRetunes:       p.Res.Reclaim.CRetunes,
				Failed:         p.Res.Failed,
				ValueBytes:     p.Res.ValueBytes,
				ValueRetires:   p.Res.ValueRetires,
				StructRetires:  p.Res.StructRetires,
				BadValues:      p.Res.BadValues,
			}
			if h := p.Res.Latency; h != nil && h.Count() > 0 {
				us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
				jp.LatOps = h.Count()
				jp.P50us = us(h.Quantile(0.50))
				jp.P99us = us(h.Quantile(0.99))
				jp.P999us = us(h.Quantile(0.999))
				jp.MaxUs = us(h.Max())
			}
			jc.Points = append(jc.Points, jp)
		}
		meta.Curves = append(meta.Curves, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(meta)
}

// WriteCurvesJSONFile writes a BENCH_<experiment>.json to path. Unless
// force is set it refuses to overwrite an existing file: the committed
// bench/ trajectory is append-only history, and a rerun that silently
// clobbers a curve is how a regression's "before" disappears. The refusal
// uses O_EXCL, so two concurrent writers cannot both win.
func WriteCurvesJSONFile(path string, force bool, meta BenchJSON, curves []Curve) error {
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !force {
		flags = os.O_WRONLY | os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return fmt.Errorf("harness: %s already exists (pass -force to overwrite)", path)
		}
		return err
	}
	if err := WriteCurvesJSON(f, meta, curves); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RobustnessSeries is one scheme's pending-vs-time trace from the fault
// matrix (internal/fault): how many retired-but-unreclaimed nodes the
// domain accumulated while one reader sat stalled at a protocol sync point.
type RobustnessSeries struct {
	Scheme  string
	Robust  bool  // the matrix asserted a bounded ceiling for this scheme
	Ceiling int64 // the asserted bound (advisory for unbounded schemes)
	Points  []RobustnessPoint
}

// RobustnessPoint is one sample of the trace.
type RobustnessPoint struct {
	ElapsedMS float64
	Pending   int64
}

// WriteRobustnessJSON emits the fault matrix's pending-vs-time traces in the
// BenchJSON envelope, so the bench/ trajectory tooling ingests it like any
// other experiment. The series nature is flagged via Extra["series"], and the
// axes are re-purposed per that flag: Workers carries elapsed milliseconds,
// Mops carries the pending-node count.
func WriteRobustnessJSON(w io.Writer, series []RobustnessSeries) error {
	meta := BenchJSON{
		Experiment: "robustness",
		DS:         "fault-matrix",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Extra: map[string]string{
			"series": "pending_vs_time",
			"x":      "elapsed_ms",
			"y":      "pending_nodes",
		},
	}
	var durMS float64
	for _, s := range series {
		jc := BenchCurveJSON{Scheme: s.Scheme}
		for _, p := range s.Points {
			jc.Points = append(jc.Points, BenchPointJSON{
				Workers: int(p.ElapsedMS),
				Mops:    float64(p.Pending),
			})
			if p.ElapsedMS > durMS {
				durMS = p.ElapsedMS
			}
		}
		meta.Curves = append(meta.Curves, jc)
		meta.Extra["robust_"+s.Scheme] = fmt.Sprintf("%v", s.Robust)
		meta.Extra["ceiling_"+s.Scheme] = fmt.Sprintf("%d", s.Ceiling)
	}
	meta.DurationMS = int64(durMS)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(meta)
}

// WriteRobustnessJSONFile writes BENCH_robustness.json to path. The matrix
// regenerates the full file every run, so unlike the append-only perf
// trajectory it always overwrites.
func WriteRobustnessJSONFile(path string, series []RobustnessSeries) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := WriteRobustnessJSON(f, series); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteCurvesCSV emits a scalability experiment as CSV: one row per worker
// count, one column per scheme (Mops/s) — the format of Figure 3 and the
// top row of Figure 5.
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	if len(curves) == 0 {
		return nil
	}
	hdr := []string{"workers"}
	for _, c := range curves {
		hdr = append(hdr, c.Scheme+"_mops")
	}
	if _, err := fmt.Fprintln(w, strings.Join(hdr, ",")); err != nil {
		return err
	}
	for i := range curves[0].Points {
		row := []string{fmt.Sprintf("%d", curves[0].Points[i].Workers)}
		for _, c := range curves {
			if i < len(c.Points) {
				row = append(row, fmt.Sprintf("%.4f", c.Points[i].Res.Mops))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderCurvesTable renders a scalability experiment as an aligned table.
func RenderCurvesTable(w io.Writer, title string, curves []Curve) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-8s", "workers")
	for _, c := range curves {
		fmt.Fprintf(w, "%12s", c.Scheme)
	}
	fmt.Fprintln(w)
	if len(curves) == 0 {
		return
	}
	for i := range curves[0].Points {
		fmt.Fprintf(w, "%-8d", curves[0].Points[i].Workers)
		for _, c := range curves {
			if i < len(c.Points) {
				fmt.Fprintf(w, "%12.3f", c.Points[i].Res.Mops)
			} else {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	ov := Overheads(curves)
	if len(ov) > 0 {
		names := make([]string, 0, len(ov))
		for k := range ov {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "overhead vs none:")
		for _, n := range names {
			fmt.Fprintf(w, "  %s %.1f%%", n, ov[n])
		}
		fmt.Fprintln(w)
	}
}

// WriteSeriesCSV emits a delay experiment as CSV: one row per sample time,
// one Mops column per scheme plus QSense's fallback indicator — the format
// of Figure 5's bottom row.
func WriteSeriesCSV(w io.Writer, results map[string]Result, schemes []string) error {
	hdr := []string{"t_seconds"}
	for _, s := range schemes {
		hdr = append(hdr, s+"_mops")
	}
	hdr = append(hdr, "qsense_fallback")
	if _, err := fmt.Fprintln(w, strings.Join(hdr, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range schemes {
		if len(results[s].Samples) > n {
			n = len(results[s].Samples)
		}
	}
	for i := 0; i < n; i++ {
		var t float64
		row := make([]string, 0, len(schemes)+2)
		fallback := "0"
		for _, s := range schemes {
			smp := results[s].Samples
			if i < len(smp) {
				t = smp[i].T.Seconds()
				row = append(row, fmt.Sprintf("%.4f", smp[i].Mops))
				if s == "qsense" && smp[i].InFallback {
					fallback = "1"
				}
			} else {
				// A failed scheme's workers halted: report zero,
				// as the paper's terminated QSBR line implies.
				row = append(row, "0.0000")
			}
		}
		all := append([]string{fmt.Sprintf("%.2f", t)}, row...)
		all = append(all, fallback)
		if _, err := fmt.Fprintln(w, strings.Join(all, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderSeriesChart draws a coarse ASCII chart of a throughput time series,
// marking QSense fallback windows with 'f' and failure with 'X'.
func RenderSeriesChart(w io.Writer, scheme string, res Result, width int) {
	if width <= 0 {
		width = 50
	}
	var maxM float64
	for _, s := range res.Samples {
		if s.Mops > maxM {
			maxM = s.Mops
		}
	}
	fmt.Fprintf(w, "\n%s (peak %.3f Mops/s)\n", scheme, maxM)
	if maxM == 0 {
		fmt.Fprintln(w, "  (no throughput)")
		return
	}
	for _, s := range res.Samples {
		bars := int(s.Mops / maxM * float64(width))
		marker := ""
		if s.InFallback {
			marker = " f"
		}
		if s.Failed {
			marker = " X"
		}
		fmt.Fprintf(w, "%7.1fs |%-*s|%7.3f%s\n", s.T.Seconds(), width, strings.Repeat("#", bars), s.Mops, marker)
	}
}

// FallbackWindows extracts QSense's per-window mean throughput, split into
// fast-path and fallback-path samples — used to quote the paper's "Cadence
// outperforms HP by ~3x during fallback" claim.
func FallbackWindows(res Result) (fastMean, fallbackMean float64) {
	var fs, fn, bs, bn float64
	for _, s := range res.Samples {
		if s.InFallback {
			bs += s.Mops
			bn++
		} else {
			fs += s.Mops
			fn++
		}
	}
	if fn > 0 {
		fastMean = fs / fn
	}
	if bn > 0 {
		fallbackMean = bs / bn
	}
	return fastMean, fallbackMean
}

// MeanMops averages a scheme's samples over an interval (inclusive start,
// exclusive end), for window-by-window comparisons between schemes.
func MeanMops(res Result, from, to float64) float64 {
	var sum float64
	var n int
	for _, s := range res.Samples {
		if t := s.T.Seconds(); t >= from && t < to {
			sum += s.Mops
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
