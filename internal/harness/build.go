package harness

import (
	"fmt"

	"qsense/internal/bst"
	"qsense/internal/hashmap"
	"qsense/internal/list"
	"qsense/internal/reclaim"
	"qsense/internal/skiplist"
)

// builtSet bundles a constructed data structure with its reclamation domain
// and per-worker handles.
type builtSet struct {
	handles     []SetHandle
	dom         reclaim.Domain
	poolLive    func() uint64
	closeDomain func()
	closed      bool
}

func (b *builtSet) close() {
	if !b.closed {
		b.closeDomain()
	}
}

// DataStructures lists the structures of the paper's evaluation (§7), in
// figure order. The hash table ("hashmap") is additionally supported by
// Run/buildSet as a bonus structure outside the figures.
func DataStructures() []string { return []string{"list", "skiplist", "bst"} }

// HPsForDS returns the hazard pointer count each structure needs (§7.3).
func HPsForDS(ds string, skipLevels int) (int, error) {
	switch ds {
	case "list":
		return list.HPs, nil
	case "skiplist":
		if skipLevels <= 0 {
			skipLevels = skiplist.MaxLevel
		}
		return skiplist.HPsFor(skipLevels), nil
	case "bst":
		return bst.HPs, nil
	case "hashmap":
		return hashmap.HPs, nil
	}
	return 0, fmt.Errorf("harness: unknown data structure %q", ds)
}

// buildSet wires DS + scheme: the structure is created first, then the
// domain (which needs the structure's free function), then the per-worker
// handles bound to the domain's guards — the integration pattern from the
// paper's Appendix B.
//
// The harness deliberately stays on the deprecated positional Guard(w)
// accessor rather than Acquire/Release: the paper's experiments assume a
// fixed worker↔slot assignment (delay plans target worker 0, per-worker
// series are reported by index), and pinning keeps runs reproducible.
// Dynamic leasing is exercised by the lease stress tests instead.
func buildSet(cfg *Config) (*builtSet, error) {
	rc := cfg.Reclaim
	rc.Workers = cfg.Workers
	var err error
	rc.HPs, err = HPsForDS(cfg.DS, cfg.SkipLevels)
	if err != nil {
		return nil, err
	}
	// m: the BST removes a leaf and an internal node per delete.
	if cfg.DS == "bst" {
		rc.MaxRemovePerOp = 2
	} else {
		rc.MaxRemovePerOp = 1
	}

	b := &builtSet{handles: make([]SetHandle, cfg.Workers)}
	switch cfg.DS {
	case "list":
		l := list.New(list.Config{})
		rc.Free = l.FreeNode
		dom, err := reclaim.New(cfg.Scheme, rc)
		if err != nil {
			return nil, err
		}
		for i := range b.handles {
			b.handles[i] = l.NewHandle(dom.Guard(i))
		}
		b.dom = dom
		b.poolLive = func() uint64 { return l.Pool().Stats().Live }
	case "skiplist":
		s := skiplist.New(skiplist.Config{Levels: cfg.SkipLevels})
		rc.Free = s.FreeNode
		dom, err := reclaim.New(cfg.Scheme, rc)
		if err != nil {
			return nil, err
		}
		for i := range b.handles {
			b.handles[i] = s.NewHandle(dom.Guard(i), cfg.Seed+uint64(i)+1)
		}
		b.dom = dom
		b.poolLive = func() uint64 { return s.Pool().Stats().Live }
	case "bst":
		t := bst.New(bst.Config{})
		rc.Free = t.FreeNode
		dom, err := reclaim.New(cfg.Scheme, rc)
		if err != nil {
			return nil, err
		}
		for i := range b.handles {
			b.handles[i] = t.NewHandle(dom.Guard(i))
		}
		b.dom = dom
		b.poolLive = func() uint64 { return t.Pool().Stats().Live }
	case "hashmap":
		m := hashmap.New(hashmap.Config{})
		rc.Free = m.FreeNode
		dom, err := reclaim.New(cfg.Scheme, rc)
		if err != nil {
			return nil, err
		}
		for i := range b.handles {
			b.handles[i] = m.NewHandle(dom.Guard(i))
		}
		b.dom = dom
		b.poolLive = func() uint64 { return m.Pool().Stats().Live }
	default:
		return nil, fmt.Errorf("harness: unknown data structure %q", cfg.DS)
	}
	dom := b.dom
	b.closeDomain = func() {
		if !b.closed {
			b.closed = true
			dom.Close()
		}
	}
	return b, nil
}
