package harness

import (
	"fmt"

	"qsense"
	"qsense/internal/bst"
	"qsense/internal/hashmap"
	"qsense/internal/list"
	"qsense/internal/reclaim"
	"qsense/internal/skiplist"
)

// builtSet bundles a constructed data structure with its reclamation domain
// and per-worker handles.
type builtSet struct {
	handles     []SetHandle // pinned positional handles (nil when cfg.Leased)
	dom         reclaim.Domain
	mkHandle    func(g reclaim.Guard, w int) SetHandle
	cache       *reclaim.SlotTable[SetHandle] // per-slot handles for leased mode
	poolLive    func() uint64
	closeDomain func()
	closed      bool
}

func (b *builtSet) close() {
	if !b.closed {
		b.closeDomain()
	}
}

// leasedHandle returns the slot-cached structure handle for a leased guard,
// building it on the slot's first lease (same per-slot caching as the
// public containers: slot ownership serializes access to one entry).
func (b *builtSet) leasedHandle(g reclaim.Guard) SetHandle {
	w := reclaim.SlotIndex(g)
	p := b.cache.Get(w)
	if *p == nil {
		*p = b.mkHandle(g, w)
	}
	return *p
}

// DataStructures lists the structures of the paper's evaluation (§7), in
// figure order. The hash table ("hashmap") is additionally supported by
// Run/buildSet as a bonus structure outside the figures.
func DataStructures() []string { return []string{"list", "skiplist", "bst"} }

// HPsForDS returns the hazard pointer count each structure needs (§7.3).
func HPsForDS(ds string, skipLevels int) (int, error) {
	switch ds {
	case "list":
		return list.HPs, nil
	case "skiplist":
		if skipLevels <= 0 {
			skipLevels = skiplist.MaxLevel
		}
		return skiplist.HPsFor(skipLevels), nil
	case "bst":
		return bst.HPs, nil
	case "hashmap":
		return hashmap.HPs, nil
	}
	return 0, fmt.Errorf("harness: unknown data structure %q", ds)
}

// buildSet wires DS + scheme: the structure is created first, then the
// domain (which needs the structure's free function), then the per-worker
// handles bound to the domain's guards — the integration pattern from the
// paper's Appendix B.
//
// Two handle modes exist. The default stays on the deprecated positional
// Guard(w) accessor: the paper's experiments assume a fixed worker↔slot
// assignment (delay plans target worker 0, per-worker series are reported
// by index), and pinning keeps runs reproducible. With cfg.Leased the
// workers instead lease guards with Acquire/Release on a short cadence —
// the leasevspinned experiment measuring the lease overhead and its
// epoch-advance interaction.
func buildSet(cfg *Config) (*builtSet, error) {
	rc := cfg.Reclaim
	rc.Workers = cfg.Workers
	var err error
	rc.HPs, err = HPsForDS(cfg.DS, cfg.SkipLevels)
	if err != nil {
		return nil, err
	}
	// m: the BST removes a leaf and an internal node per delete.
	if cfg.DS == "bst" {
		rc.MaxRemovePerOp = 2
	} else {
		rc.MaxRemovePerOp = 1
	}

	// The applicability matrix is the authority on scheme×structure
	// pairings — reject an unsound combination with the reason rather
	// than running it to a crash or a silent unsoundness.
	if !qsense.Applicable(qsense.Scheme(cfg.Scheme), cfg.DS) {
		return nil, fmt.Errorf("harness: scheme %q cannot run structure %q (see qsense.Applicability)", cfg.Scheme, cfg.DS)
	}

	// Each structure's pool doubles as the era clock (reclaim.Config.Era)
	// so ibr stamps true node lifetimes.
	b := &builtSet{}
	switch cfg.DS {
	case "list":
		l := list.New(list.Config{})
		rc.Free, rc.Era = l.FreeNode, l.Pool()
		b.mkHandle = func(g reclaim.Guard, _ int) SetHandle { return l.NewHandle(g) }
		b.poolLive = func() uint64 { return l.Pool().Stats().Live }
	case "skiplist":
		s := skiplist.New(skiplist.Config{Levels: cfg.SkipLevels})
		rc.Free, rc.Era = s.FreeNode, s.Pool()
		b.mkHandle = func(g reclaim.Guard, w int) SetHandle { return s.NewHandle(g, cfg.Seed+uint64(w)+1) }
		b.poolLive = func() uint64 { return s.Pool().Stats().Live }
	case "bst":
		t := bst.New(bst.Config{})
		rc.Free, rc.Era = t.FreeNode, t.Pool()
		b.mkHandle = func(g reclaim.Guard, _ int) SetHandle { return t.NewHandle(g) }
		b.poolLive = func() uint64 { return t.Pool().Stats().Live }
	case "hashmap":
		m := hashmap.New(hashmap.Config{})
		rc.Free, rc.Era = m.FreeNode, m.Pool()
		b.mkHandle = func(g reclaim.Guard, _ int) SetHandle { return m.NewHandle(g) }
		b.poolLive = func() uint64 { return m.Pool().Stats().Live }
	default:
		return nil, fmt.Errorf("harness: unknown data structure %q", cfg.DS)
	}
	dom, err := reclaim.New(cfg.Scheme, rc)
	if err != nil {
		return nil, err
	}
	b.dom = dom
	if cfg.Leased {
		b.cache = reclaim.NewSlotTable[SetHandle](rc.Workers, rc.HardMaxWorkers)
	} else {
		b.handles = make([]SetHandle, cfg.Workers)
		for i := range b.handles {
			b.handles[i] = b.mkHandle(dom.Guard(i), i)
		}
	}
	b.closeDomain = func() {
		if !b.closed {
			b.closed = true
			dom.Close()
		}
	}
	return b, nil
}
