package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCurvesJSONFileRefusesOverwrite: the committed bench/ trajectory
// is append-only history — a rerun without -force must refuse to clobber an
// existing file and must leave its contents untouched.
func TestWriteCurvesJSONFileRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_probe.json")
	meta := BenchJSON{Experiment: "probe", DS: "list", KeyRange: 16}
	curves := []Curve{{Scheme: "qsbr", Points: []Point{{Workers: 1, Res: Result{Mops: 1.5}}}}}

	if err := WriteCurvesJSONFile(path, false, meta, curves); err != nil {
		t.Fatalf("first write: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	err = WriteCurvesJSONFile(path, false, meta, []Curve{{Scheme: "hp"}})
	if err == nil {
		t.Fatal("second write without force succeeded")
	}
	if !strings.Contains(err.Error(), "-force") {
		t.Fatalf("refusal does not tell the caller about -force: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refused write still modified the file")
	}

	meta2 := meta
	meta2.KeyRange = 32
	if err := WriteCurvesJSONFile(path, true, meta2, curves); err != nil {
		t.Fatalf("forced write: %v", err)
	}
	forced, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, forced) {
		t.Fatal("forced write did not replace the file")
	}
}
