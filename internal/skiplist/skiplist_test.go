package skiplist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

func newSet(t *testing.T, scheme string, workers, levels int) (*SkipList, reclaim.Domain, []*Handle) {
	t.Helper()
	s := New(Config{Poison: true, Levels: levels})
	d, err := reclaim.New(scheme, reclaim.Config{
		Workers: workers,
		HPs:     HPsFor(s.Levels()),
		Free:    s.FreeNode,
		Q:       8,
		R:       32,
		Rooster: rooster.Config{Interval: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*Handle, workers)
	for i := range hs {
		hs[i] = s.NewHandle(d.Guard(i), uint64(i+1))
	}
	return s, d, hs
}

func TestSkipListBasicSemantics(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, 1, 8)
			defer d.Close()
			h := hs[0]
			if h.Contains(5) {
				t.Fatal("empty contains")
			}
			if !h.Insert(5) || h.Insert(5) {
				t.Fatal("insert semantics")
			}
			if !h.Contains(5) {
				t.Fatal("missing after insert")
			}
			if !h.Delete(5) || h.Delete(5) {
				t.Fatal("delete semantics")
			}
			if h.Contains(5) {
				t.Fatal("present after delete")
			}
		})
	}
}

func TestSkipListTowerHeights(t *testing.T) {
	h := &Handle{s: &SkipList{levels: 8}, rng: 42}
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		lvl := h.randomLevel()
		if lvl < 1 || lvl > 8 {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	// Geometric(1/2): level 1 about half, level 2 about a quarter...
	if counts[1] < 40000 || counts[1] > 60000 {
		t.Fatalf("level-1 frequency %d implausible for p=1/2", counts[1])
	}
	if counts[2] < 15000 || counts[2] > 35000 {
		t.Fatalf("level-2 frequency %d implausible", counts[2])
	}
}

func TestSkipListBulkSortedAndValid(t *testing.T) {
	s, d, hs := newSet(t, "qsbr", 1, 16)
	defer d.Close()
	h := hs[0]
	rng := rand.New(rand.NewSource(7))
	inserted := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(5000))
		if h.Insert(k) == inserted[k] {
			t.Fatalf("insert %d disagreed with model", k)
		}
		inserted[k] = true
	}
	n, msg := s.Validate()
	if msg != "" {
		t.Fatalf("validate: %s", msg)
	}
	if n != len(inserted) {
		t.Fatalf("count %d != model %d", n, len(inserted))
	}
	for k := range inserted {
		if !h.Contains(k) {
			t.Fatalf("missing %d", k)
		}
	}
}

func TestSkipListAgainstModelQuick(t *testing.T) {
	f := func(ops []int16) bool {
		s, d, hs := newSet(t, "qsense", 1, 8)
		defer d.Close()
		h := hs[0]
		model := map[int64]bool{}
		for _, o := range ops {
			key := int64(o % 48)
			switch {
			case o%3 == 0:
				if h.Insert(key) == model[key] {
					return false
				}
				model[key] = true
			case o%3 == 1:
				if h.Delete(key) != model[key] {
					return false
				}
				delete(model, key)
			default:
				if h.Contains(key) != model[key] {
					return false
				}
			}
		}
		n, msg := s.Validate()
		return msg == "" && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListReclaimsDeletedNodes(t *testing.T) {
	s, d, hs := newSet(t, "qsbr", 1, 12)
	h := hs[0]
	for round := 0; round < 30; round++ {
		for k := int64(0); k < 200; k++ {
			h.Insert(k)
		}
		for k := int64(0); k < 200; k++ {
			h.Delete(k)
		}
	}
	d.Close()
	if live := s.Pool().Stats().Live; live != 2 {
		t.Fatalf("live after churn+close = %d, want 2 sentinels", live)
	}
}

// runDisjointRanges is one round of the disjoint-ranges workload: each
// worker insert/contains/deletes its own key span, so every structural
// conflict happens at the range boundaries and in the upper index levels.
// This is the workload that reproduces the known hp/rc use-after-free (see
// TestSkipListUAFReproHPRC in stress_test.go and ROADMAP.md).
func runDisjointRanges(t *testing.T, scheme string) {
	t.Helper()
	const workers = 4
	const span = 256
	s, d, hs := newSet(t, scheme, workers, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hs[w]
			base := int64(w * span)
			for rep := 0; rep < 3; rep++ {
				for k := base; k < base+span; k++ {
					if !h.Insert(k) {
						t.Errorf("insert %d", k)
						return
					}
				}
				for k := base; k < base+span; k++ {
					if !h.Contains(k) {
						t.Errorf("missing %d", k)
						return
					}
				}
				for k := base; k < base+span; k++ {
					if !h.Delete(k) {
						t.Errorf("delete %d", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n, msg := s.Validate(); msg != "" || n != 0 {
		t.Fatalf("validate: n=%d %s", n, msg)
	}
	d.Close()
}

func TestSkipListConcurrentDisjointRanges(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			runDisjointRanges(t, scheme)
		})
	}
}

func TestSkipListConcurrentSameKeyContention(t *testing.T) {
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const iters = 3000
			s, d, hs := newSet(t, scheme, workers, 8)
			var ins, del [workers]int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					for i := 0; i < iters; i++ {
						if h.Insert(7) {
							ins[w]++
						}
						if h.Delete(7) {
							del[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			var it, dt int64
			for w := 0; w < workers; w++ {
				it += ins[w]
				dt += del[w]
			}
			if it-dt != int64(s.Len()) {
				t.Fatalf("ins %d - del %d != len %d", it, dt, s.Len())
			}
			d.Close()
		})
	}
}

func TestSkipListConcurrentMixedChurn(t *testing.T) {
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			iters := 12000
			if testing.Short() {
				iters = 3000
			}
			s, d, hs := newSet(t, scheme, workers, 16)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for i := 0; i < iters; i++ {
						k := int64(rng.Intn(512))
						switch rng.Intn(10) {
						case 0, 1, 2, 3, 4:
							h.Contains(k)
						case 5, 6, 7:
							h.Insert(k)
						default:
							h.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			n, msg := s.Validate()
			if msg != "" {
				t.Fatalf("validate: %s", msg)
			}
			d.Close()
			if live := s.Pool().Stats().Live; live != uint64(n)+2 {
				t.Fatalf("live=%d, members=%d", live, n)
			}
		})
	}
}

func TestSkipListLevelsConfig(t *testing.T) {
	s := New(Config{Levels: 4})
	if s.Levels() != 4 {
		t.Fatalf("levels = %d", s.Levels())
	}
	if HPsFor(4) != 11 { // 2 per level + scratch + pin + value slot
		t.Fatalf("HPsFor(4) = %d", HPsFor(4))
	}
	// Out-of-range configs fall back to MaxLevel.
	if New(Config{Levels: 0}).Levels() != MaxLevel {
		t.Fatal("default levels")
	}
	if New(Config{Levels: 99}).Levels() != MaxLevel {
		t.Fatal("clamped levels")
	}
}
