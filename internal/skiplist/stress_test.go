package skiplist

// Guarded regression harness for the known pre-existing use-after-free in
// the skip list under the hp and rc schemes (ROADMAP.md "Known
// pre-existing use-after-free"). The repro is probabilistic per run but
// near-certain over a batch: the PR 2 diagnosis pinned the proximate
// mechanism to an edge-value ABA at upper levels — a search's splice of a
// marked node writes that node's FROZEN successor back into the chain
// after the successor was already retired and freed (the splice CAS's
// expected value returns, defeating the check). The epoch schemes are
// immune; hp and rc fail because their per-node grace arguments do not
// cover the re-linked edge.
//
// The harness is env-gated so ordinary CI stays green while the bug is
// open; the dedicated bughunt PR gets a deterministic one-command repro:
//
//	QSENSE_SKIPLIST_STRESS=30 go test ./internal/skiplist -run UAFRepro -cpu=2,4 -v
//
// (30 repetitions per scheme ≈ the ROADMAP `-count=30` recipe; most
// batches fail with a mem.Violation panic or a validate error. When a fix
// lands, drop the gate so the batch becomes a permanent regression test.)

import (
	"os"
	"strconv"
	"testing"
)

func TestSkipListUAFReproHPRC(t *testing.T) {
	reps, _ := strconv.Atoi(os.Getenv("QSENSE_SKIPLIST_STRESS"))
	if reps <= 0 {
		t.Skip("set QSENSE_SKIPLIST_STRESS=<reps> to run the hp/rc use-after-free repro batch (see ROADMAP.md)")
	}
	for _, scheme := range []string{"hp", "rc"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			for rep := 0; rep < reps; rep++ {
				runDisjointRanges(t, scheme)
				if t.Failed() {
					t.Fatalf("failed at repetition %d/%d", rep+1, reps)
				}
			}
		})
	}
}
