package skiplist

// Permanent regression batch for the upper-level edge-ABA use-after-free
// the skip list used to exhibit under the hp and rc schemes (the package
// doc's "historical violation of invariant 2"): Insert pre-stored every
// upper next word from the level-0 search and re-claimed a level only
// after a failed link CAS there, so a level's first link attempt could
// publish the node frozen at a long-dead pre-stored successor; a search's
// splice then wrote that freed node back into the chain (the splice CAS's
// expected value returned, defeating the check). The epoch schemes were
// immune; hp and rc crashed because their per-node grace arguments do not
// cover a re-exposed edge.
//
// Against pre-fix binaries this batch fails near-certainly (a
// mem.Violation panic or a validate error within ~10 repetitions); under
// the claim-then-link protocol it must stay green, including under -race
// and with `-tags qsensedebug` (which asserts splice liveness at the
// installation site). The CI race matrix runs it at -cpu=2,4 — the counts
// the bug fired at most readily. QSENSE_SKIPLIST_STRESS overrides the
// repetition count for longer soaks:
//
//	QSENSE_SKIPLIST_STRESS=120 go test ./internal/skiplist -run UAFRepro -cpu=2,4 -v

import (
	"os"
	"strconv"
	"testing"
)

// defaultUAFReps is the always-on batch size: big enough that the pre-fix
// protocol fails with near certainty, small enough for every CI run.
const defaultUAFReps = 30

func TestSkipListUAFReproHPRC(t *testing.T) {
	reps := defaultUAFReps
	if testing.Short() {
		reps = 10
	}
	if v, err := strconv.Atoi(os.Getenv("QSENSE_SKIPLIST_STRESS")); err == nil && v > 0 {
		reps = v // an explicit override beats the -short trim
	}
	for _, scheme := range []string{"hp", "rc"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			for rep := 0; rep < reps; rep++ {
				runDisjointRanges(t, scheme)
				if t.Failed() {
					t.Fatalf("failed at repetition %d/%d", rep+1, reps)
				}
			}
		})
	}
}
