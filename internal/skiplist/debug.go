//go:build !qsensedebug

package skiplist

import "qsense/internal/mem"

// assertFrozenLive is a no-op in release builds — the splice assertion
// compiles away entirely; see debug_on.go.
func assertFrozenLive(*mem.Pool[node], mem.Ref) {}
