package skiplist

import (
	"sync"
	"sync/atomic"
	"testing"

	"qsense/internal/reclaim"
)

func TestSkipListValueSemantics(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, 1, 8)
			defer d.Close()
			h := hs[0]
			if _, ok := h.Get(7); ok {
				t.Fatal("empty get")
			}
			if !h.Put(7, 100) {
				t.Fatal("first Put should insert")
			}
			if v, ok := h.Get(7); !ok || v != 100 {
				t.Fatalf("Get = %d,%v want 100,true", v, ok)
			}
			if h.Put(7, 200) {
				t.Fatal("second Put should update, not insert")
			}
			if v, ok := h.Get(7); !ok || v != 200 {
				t.Fatalf("Get after update = %d,%v want 200,true", v, ok)
			}
			// The set view shares the structure: Contains sees Put's key,
			// Insert on an existing key leaves its value alone.
			if !h.Contains(7) {
				t.Fatal("Contains misses Put key")
			}
			if h.Insert(7) {
				t.Fatal("Insert on existing key")
			}
			if v, _ := h.Get(7); v != 200 {
				t.Fatalf("Insert clobbered value: %d", v)
			}
			if !h.Delete(7) {
				t.Fatal("delete")
			}
			if _, ok := h.Get(7); ok {
				t.Fatal("get after delete")
			}
			// A re-inserted key must not resurrect the old value word
			// (recycled node slots carry stale words).
			if !h.Insert(7) {
				t.Fatal("re-insert")
			}
			if v, ok := h.Get(7); !ok || v != 0 {
				t.Fatalf("re-inserted key's value = %d want 0", v)
			}
		})
	}
}

// TestSkipListValueConcurrent hammers Put/Get/Delete on a small key range:
// every Get must observe a value some Put actually wrote for that key
// (values encode their key), never garbage from a recycled node.
func TestSkipListValueConcurrent(t *testing.T) {
	const (
		workers  = 4
		keyRange = 64
		opsEach  = 20000
	)
	for _, scheme := range []string{"qsense", "hp"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, workers, 8)
			defer d.Close()
			var bad atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := uint64(w)*0x9E3779B9 + 1
					for i := 0; i < opsEach; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						k := int64(rng % keyRange)
						switch rng % 4 {
						case 0:
							h.Put(k, uint64(k)<<32|uint64(i))
						case 1:
							h.Delete(k)
						default:
							if v, ok := h.Get(k); ok && int64(v>>32) != k {
								bad.Add(1)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n := bad.Load(); n != 0 {
				t.Fatalf("%d Gets observed a value word from the wrong key", n)
			}
		})
	}
}

// TestSkipListByteValues covers the byte-valued surface single-threaded:
// inline and spilled round-trips, the upsert/displacement retire
// accounting, and the live-bytes gauges across every scheme.
func TestSkipListByteValues(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			s, d, hs := newSet(t, scheme, 1, 8)
			defer d.Close()
			h := hs[0]

			if _, ok := h.GetAppend(1, nil); ok {
				t.Fatal("empty GetAppend")
			}
			// Inline: up to 7 bytes live in the value word itself.
			if !h.PutBytes(1, []byte("tiny")) {
				t.Fatal("first PutBytes should insert")
			}
			if v, ok := h.GetAppend(1, nil); !ok || string(v) != "tiny" {
				t.Fatalf("inline GetAppend = %q,%v", v, ok)
			}
			if vs := s.ValueStats(); vs.Bytes != 4 || vs.Spilled != 0 {
				t.Fatalf("inline gauges = %+v", vs)
			}
			// Spilled: longer values live in a value node from the same pool.
			long := []byte("a value far too long to inline in one word")
			if h.PutBytes(1, long) {
				t.Fatal("second PutBytes should update")
			}
			if v, ok := h.GetAppend(1, nil); !ok || string(v) != string(long) {
				t.Fatalf("spilled GetAppend = %q,%v", v, ok)
			}
			vs := s.ValueStats()
			if vs.Bytes != int64(len(long)) || vs.Spilled != 1 {
				t.Fatalf("spilled gauges = %+v", vs)
			}
			// GetAppend appends: the prefix survives.
			pre := append([]byte(nil), "pfx:"...)
			if v, ok := h.GetAppend(1, pre); !ok || string(v) != "pfx:"+string(long) {
				t.Fatalf("GetAppend with prefix = %q,%v", v, ok)
			}
			// Displacing a spilled value retires its node through the domain.
			if h.PutBytes(1, []byte("spilled again, still too long")) {
				t.Fatal("third PutBytes should update")
			}
			vs = s.ValueStats()
			if vs.ValueRetires == 0 {
				t.Fatalf("no value retires after displacing a spilled value: %+v", vs)
			}
			if vs.Spilled != 1 {
				t.Fatalf("spilled gauge after replace = %+v", vs)
			}
			// Zero-length values round-trip as present-and-empty.
			if h.PutBytes(2, nil) != true {
				t.Fatal("empty-value insert")
			}
			if v, ok := h.GetAppend(2, nil); !ok || len(v) != 0 {
				t.Fatalf("empty-value GetAppend = %q,%v", v, ok)
			}
			// Delete drops the gauges back to zero and retires the value node.
			if !h.Delete(1) || !h.Delete(2) {
				t.Fatal("delete")
			}
			if _, ok := h.GetAppend(1, nil); ok {
				t.Fatal("GetAppend after delete")
			}
			vs = s.ValueStats()
			if vs.Bytes != 0 || vs.Spilled != 0 {
				t.Fatalf("gauges after delete = %+v", vs)
			}
			if vs.StructRetires == 0 {
				t.Fatalf("no structural retires after delete: %+v", vs)
			}
		})
	}
}

// TestSkipListByteValueConcurrent is the torn/freed-value detector at the
// skiplist layer: concurrent upserts of self-describing spilled payloads
// (first byte = writer id, the rest a repeat of it keyed by the key) race
// with readers that verify every observed payload is internally consistent
// — a torn read (bytes from two writes) or a freed read (recycled value
// node) fails the check.
func TestSkipListByteValueConcurrent(t *testing.T) {
	const (
		workers  = 4
		keyRange = 32
		opsEach  = 8000
	)
	for _, scheme := range []string{"qsense", "hp", "ibr"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, workers, 8)
			defer d.Close()
			var bad atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := uint64(w)*0x9E3779B9 + 1
					var buf, val []byte
					for i := 0; i < opsEach; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						k := int64(rng % keyRange)
						switch rng % 4 {
						case 0:
							// 9..24 bytes: always spilled. Every byte is
							// derived from (key, stamp), so any stitched or
							// recycled read breaks the pattern.
							n := 9 + int(rng%16)
							stamp := byte(rng)
							val = val[:0]
							for j := 0; j < n; j++ {
								val = append(val, stamp+byte(k)*3+byte(j))
							}
							h.PutBytes(k, val)
						case 1:
							h.Delete(k)
						default:
							v, ok := h.GetAppend(k, buf[:0])
							buf = v
							if !ok {
								continue
							}
							if len(v) < 9 {
								bad.Add(1)
								continue
							}
							stamp := v[0] - byte(k)*3
							for j := range v {
								if v[j] != stamp+byte(k)*3+byte(j) {
									bad.Add(1)
									break
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n := bad.Load(); n != 0 {
				t.Fatalf("%d torn or freed value reads", n)
			}
		})
	}
}
