package skiplist

import (
	"sync"
	"sync/atomic"
	"testing"

	"qsense/internal/reclaim"
)

func TestSkipListValueSemantics(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, 1, 8)
			defer d.Close()
			h := hs[0]
			if _, ok := h.Get(7); ok {
				t.Fatal("empty get")
			}
			if !h.Put(7, 100) {
				t.Fatal("first Put should insert")
			}
			if v, ok := h.Get(7); !ok || v != 100 {
				t.Fatalf("Get = %d,%v want 100,true", v, ok)
			}
			if h.Put(7, 200) {
				t.Fatal("second Put should update, not insert")
			}
			if v, ok := h.Get(7); !ok || v != 200 {
				t.Fatalf("Get after update = %d,%v want 200,true", v, ok)
			}
			// The set view shares the structure: Contains sees Put's key,
			// Insert on an existing key leaves its value alone.
			if !h.Contains(7) {
				t.Fatal("Contains misses Put key")
			}
			if h.Insert(7) {
				t.Fatal("Insert on existing key")
			}
			if v, _ := h.Get(7); v != 200 {
				t.Fatalf("Insert clobbered value: %d", v)
			}
			if !h.Delete(7) {
				t.Fatal("delete")
			}
			if _, ok := h.Get(7); ok {
				t.Fatal("get after delete")
			}
			// A re-inserted key must not resurrect the old value word
			// (recycled node slots carry stale words).
			if !h.Insert(7) {
				t.Fatal("re-insert")
			}
			if v, ok := h.Get(7); !ok || v != 0 {
				t.Fatalf("re-inserted key's value = %d want 0", v)
			}
		})
	}
}

// TestSkipListValueConcurrent hammers Put/Get/Delete on a small key range:
// every Get must observe a value some Put actually wrote for that key
// (values encode their key), never garbage from a recycled node.
func TestSkipListValueConcurrent(t *testing.T) {
	const (
		workers  = 4
		keyRange = 64
		opsEach  = 20000
	)
	for _, scheme := range []string{"qsense", "hp"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, workers, 8)
			defer d.Close()
			var bad atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := uint64(w)*0x9E3779B9 + 1
					for i := 0; i < opsEach; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						k := int64(rng % keyRange)
						switch rng % 4 {
						case 0:
							h.Put(k, uint64(k)<<32|uint64(i))
						case 1:
							h.Delete(k)
						default:
							if v, ok := h.Get(k); ok && int64(v>>32) != k {
								bad.Add(1)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n := bad.Load(); n != 0 {
				t.Fatalf("%d Gets observed a value word from the wrong key", n)
			}
		})
	}
}
