// Package skiplist implements the lock-free skip list the paper evaluates
// (Fraser, "Practical lock-freedom", 2004 — reference [11]; the ASCYLIB
// variant the paper builds on). Keys live in a sorted multi-level list;
// bit 0 of each per-level next word is the logical-deletion mark for that
// level.
//
// Hazard pointer budget: searches keep a (pred, succ) pair protected per
// level plus one scratch slot for traversing frozen marked chains and one
// pin slot that insert/delete hold on their own node — 2*levels+2 in total,
// the paper's "up to 35 hazard pointers" for the skip list (§7.3), and the
// reason QSense's gap to QSBR is widest on this structure.
package skiplist

import (
	"math"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// MaxLevel is the tallest tower supported.
const MaxLevel = 16

// HPsFor returns the hazard pointer count a handle needs for a given level
// configuration.
func HPsFor(levels int) int { return 2*levels + 2 }

const (
	markBit = 1

	headKey = math.MinInt64
	tailKey = math.MaxInt64
)

type node struct {
	key      int64
	topLevel int32
	state    atomic.Uint32 // insert/delete retirement ownership (below)
	next     [MaxLevel]atomic.Uint64
}

// Retirement ownership. An inserter keeps linking upper levels after its
// node is already reachable at level 0; a concurrent deleter's cleanup
// search can pass a level BEFORE the inserter links it, after which the
// inserter transiently re-links a marked — possibly already retired — node
// (the insert code prunes such levels before returning). Retiring a node
// that can still become reachable breaks hazard pointers' fundamental
// premise: a reader may then validate a protection AFTER the retirement,
// and a scan whose slot-by-slot snapshot is preempted between that
// reader's record and the inserter's pin can miss both, freeing the node
// mid-use (the stress tests reproduce this as a use-after-free). The
// state word restores strictness by handing the retirement to whoever
// acts last: the deleter retires a stDone node; for a node still
// stLinking it CASes to stAbandoned and the inserter — who alone can
// re-link, and prunes before finishing — retires it (finishInsert).
const (
	stLinking   = 0 // inserter still linking upper levels (may re-link)
	stDone      = 1 // insert complete; the deleter retires
	stAbandoned = 2 // deleter done mid-insert; the inserter retires
)

// Config controls skip list construction.
type Config struct {
	// Levels is the number of levels used (2..MaxLevel). Default 16.
	Levels int
	// MaxSlots bounds the node pool.
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// SkipList is the shared structure. Obtain one Handle per worker.
type SkipList struct {
	pool   *mem.Pool[node]
	levels int
	head   mem.Ref
	tail   mem.Ref
}

// New creates an empty skip list.
func New(cfg Config) *SkipList {
	if cfg.Levels <= 1 || cfg.Levels > MaxLevel {
		cfg.Levels = MaxLevel
	}
	pool := mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "skiplist"})
	s := &SkipList{pool: pool, levels: cfg.Levels}
	tr, tn := pool.Alloc()
	tn.key = tailKey
	tn.topLevel = int32(cfg.Levels)
	hr, hn := pool.Alloc()
	hn.key = headKey
	hn.topLevel = int32(cfg.Levels)
	for l := 0; l < cfg.Levels; l++ {
		tn.next[l].Store(0)
		hn.next[l].Store(uint64(tr))
	}
	s.head, s.tail = hr, tr
	return s
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (s *SkipList) FreeNode(r mem.Ref) { s.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (s *SkipList) Pool() *mem.Pool[node] { return s.pool }

// Levels returns the configured level count.
func (s *SkipList) Levels() int { return s.levels }

// Handle is a worker's accessor. Not safe for concurrent use.
type Handle struct {
	s     *SkipList
	guard reclaim.Guard
	cache *mem.Cache[node]
	rng   uint64
	preds [MaxLevel]mem.Ref
	succs [MaxLevel]mem.Ref
}

// NewHandle binds a worker's guard to the skip list. Seed differentiates
// tower height streams across workers (any value is fine).
func (s *SkipList) NewHandle(g reclaim.Guard, seed uint64) *Handle {
	return &Handle{s: s, guard: g, cache: s.pool.NewCache(0), rng: seed*2654435761 + 1}
}

// Slot layout: 2l / 2l+1 hold the (pred, succ) pair of level l; slot
// 2*levels is a spare kept for parity with the paper's count; 2*levels+1
// pins the operation's own node across helper searches.
func (h *Handle) hpLeft(l int) int  { return 2 * l }
func (h *Handle) hpRight(l int) int { return 2*l + 1 }
func (h *Handle) hpPin() int        { return 2*h.s.levels + 1 }

func isMarked(w uint64) bool { return w&markBit != 0 }

// randomLevel draws a geometric(1/2) tower height in [1, levels].
func (h *Handle) randomLevel() int {
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	lvl := 1
	for v := h.rng; v&1 == 1 && lvl < h.s.levels; v >>= 1 {
		lvl++
	}
	return lvl
}

// search positions h.preds/h.succs around key at every level, unlinking
// marked nodes it encounters (Fraser's search with Michael-style eager
// unlinking). On return preds[l] and succs[l] are protected by level l's
// slot pair (which of the two holds which rotates as the walk advances —
// see below).
//
// A marked node is unlinked immediately rather than walked through: a
// node's marked next word is frozen, so re-validating a link THROUGH it
// cannot tell whether the next chain node has already been retired and
// freed by its deleter — a hazard pointer published after that deleter's
// scan would not save us. Unlinking from the still-clean predecessor edge
// keeps every protect/validate pair conclusive: a node validated reachable
// through a clean edge cannot have passed its deleter's cleanup search yet,
// so its retirement (and any scan) must come after our publication.
//
// Slot-role rotation. When the walk advances (left = right), the node's
// protection must NOT be copied from the right slot to the left slot:
// scans snapshot slots one at a time, so a concurrent snapshot can read
// the destination before the copy and the source after it is overwritten,
// missing a node that was covered the whole time — a use-after-free the
// stress tests reproduce. Instead the two slot INDICES swap roles, so a
// node stays in the one slot it was validated into for as long as it is
// protected. (Copies with a stable source are fine: the descend re-uses
// the level above's left slot, which is never overwritten again this
// search, and Delete's pin copy happens strictly before the node's
// retirement — both leave a conclusive slot for every snapshot to see.)
func (h *Handle) search(key int64) {
	pool := h.s.pool
retry:
	for {
		left := h.s.head
		for lvl := h.s.levels - 1; lvl >= 0; lvl-- {
			ls, rs := h.hpLeft(lvl), h.hpRight(lvl)
			h.guard.Protect(ls, left)
			lw := pool.Get(left).next[lvl].Load()
			if isMarked(lw) {
				continue retry // left was deleted under us
			}
			right := mem.Ref(lw).Untagged()
			for {
				h.guard.Protect(rs, right)
				if pool.Get(left).next[lvl].Load() != lw {
					continue retry
				}
				rw := pool.Get(right).next[lvl].Load()
				if isMarked(rw) {
					// right is logically deleted at this level:
					// splice it out from the clean side. Its
					// deleter retires it; we only unlink.
					next := uint64(mem.Ref(rw).Untagged())
					if !pool.Get(left).next[lvl].CompareAndSwap(lw, next) {
						continue retry
					}
					lw = next
					right = mem.Ref(lw)
					continue
				}
				if pool.Get(right).key < key {
					left = right
					ls, rs = rs, ls // right keeps its slot, now in the left role
					lw = rw
					right = mem.Ref(rw).Untagged()
					continue
				}
				h.preds[lvl] = left
				h.succs[lvl] = right
				break
			}
		}
		return
	}
}

// Contains reports whether key is in the set.
func (h *Handle) Contains(key int64) bool {
	h.guard.Begin()
	h.search(key)
	found := h.s.pool.Get(h.succs[0]).key == key
	h.guard.ClearHPs()
	return found
}

// Insert adds key; false if already present.
func (h *Handle) Insert(key int64) bool {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.s.pool
	topLevel := h.randomLevel()
	var nref mem.Ref
	var nptr *node
	for {
		h.search(key)
		if pool.Get(h.succs[0]).key == key {
			if !nref.IsNil() {
				h.cache.Free(nref) // never linked: free directly
			}
			return false
		}
		if nref.IsNil() {
			nref, nptr = h.cache.Alloc()
			nptr.key = key
			nptr.topLevel = int32(topLevel)
			nptr.state.Store(stLinking) // recycled slots carry stale states
		}
		for l := 0; l < topLevel; l++ {
			nptr.next[l].Store(uint64(h.succs[l]))
		}
		// Pin our node: a concurrent deleter may retire it the moment
		// it is reachable, but we keep dereferencing it below.
		h.guard.Protect(h.hpPin(), nref)
		if !pool.Get(h.preds[0]).next[0].CompareAndSwap(uint64(h.succs[0]), uint64(nref)) {
			continue // contention at level 0: retry with fresh position
		}
		break // linked: the insert has taken effect
	}
	// Link the upper levels. A concurrent delete marks levels top-down and
	// then cleans up with a search; if it sneaks between our mark-check
	// and our link CAS, our node is re-linked at a level after the
	// deleter's cleanup pass. Every early exit below therefore runs one
	// more search, which prunes any such level (its next word is marked),
	// before we drop the pin — and every exit goes through finishInsert,
	// which takes over the retirement if the deleter abandoned it to us
	// mid-link. Without both, the node could be freed while still
	// reachable — a use-after-free.
	for l := 1; l < topLevel; l++ {
		for {
			if isMarked(nptr.next[l].Load()) {
				h.search(key) // final cleanup pass, then done
				h.finishInsert(nref, nptr, key)
				return true
			}
			if pool.Get(h.preds[l]).next[l].CompareAndSwap(uint64(h.succs[l]), uint64(nref)) {
				break
			}
			h.search(key) // refresh preds/succs
			if h.succs[0] != nref {
				// Our node was deleted and already pruned by the
				// search we just ran.
				h.finishInsert(nref, nptr, key)
				return true
			}
			// Redirect our level-l pointer at the fresh successor.
			stop := false
			for {
				w := nptr.next[l].Load()
				if isMarked(w) {
					stop = true
					break
				}
				if w == uint64(h.succs[l]) || nptr.next[l].CompareAndSwap(w, uint64(h.succs[l])) {
					break
				}
			}
			if stop {
				h.search(key)
				h.finishInsert(nref, nptr, key)
				return true
			}
		}
	}
	// Deletion may have raced the top link; ensure cleanup before unpinning.
	if isMarked(nptr.next[0].Load()) {
		h.search(key)
	}
	h.finishInsert(nref, nptr, key)
	return true
}

// finishInsert ends the linking phase: no further level can be (re-)linked
// after it. If the deleter already finished its cleanup in the meantime, it
// abandoned the retirement to us (see the state constants); the node is
// marked at every level, so one more search strictly unlinks it, and we
// retire it while still holding the pin.
func (h *Handle) finishInsert(nref mem.Ref, nptr *node, key int64) {
	if nptr.state.CompareAndSwap(stLinking, stDone) {
		return
	}
	h.search(key)
	h.guard.Retire(nref)
}

// Delete removes key; false if absent. Levels are marked top-down; whoever
// marks level 0 owns the deletion, physically unlinks with a search, and
// retires the node (Fraser's protocol; retire placement per Appendix B).
func (h *Handle) Delete(key int64) bool {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.s.pool
	h.search(key)
	n := h.succs[0]
	np := pool.Get(n)
	if np.key != key {
		return false
	}
	// Pin n before marking: the cleanup search recycles level 0's slot
	// pair. The pin copy is published strictly before n's retirement (this
	// deleter retires it after the search), so every conclusive snapshot
	// sees it.
	h.guard.Protect(h.hpPin(), n)
	topLevel := int(np.topLevel)
	for l := topLevel - 1; l >= 1; l-- {
		for {
			w := pool.Get(n).next[l].Load()
			if isMarked(w) {
				break
			}
			if pool.Get(n).next[l].CompareAndSwap(w, w|markBit) {
				break
			}
		}
	}
	for {
		w := pool.Get(n).next[0].Load()
		if isMarked(w) {
			return false // another deleter owns it
		}
		if pool.Get(n).next[0].CompareAndSwap(w, w|markBit) {
			h.search(key) // physical cleanup at every level
			// Retirement ownership: if n's inserter is still linking
			// upper levels, it can re-link a level our search already
			// passed — retiring now would leave a reachable retired
			// node. Hand the retirement over (state constants above);
			// the inserter prunes and retires in finishInsert. A node
			// whose insert has completed is strictly unreachable here.
			np := pool.Get(n)
			if np.state.Load() == stLinking && np.state.CompareAndSwap(stLinking, stAbandoned) {
				return true
			}
			h.guard.Retire(n)
			return true
		}
	}
}

// Len counts unmarked level-0 nodes; only meaningful when quiesced.
func (s *SkipList) Len() int {
	n := 0
	for r := mem.Ref(s.pool.Get(s.head).next[0].Load()).Untagged(); r != s.tail; {
		w := s.pool.Get(r).next[0].Load()
		if !isMarked(w) {
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	return n
}

// Validate checks structural invariants when quiesced: every level sorted,
// every upper-level node present at level 0 with a consistent tower.
// Returns the unmarked level-0 count and an error description ("" if OK).
func (s *SkipList) Validate() (int, string) {
	pool := s.pool
	level0 := map[mem.Ref]int64{}
	prevKey := int64(headKey)
	n := 0
	for r := mem.Ref(pool.Get(s.head).next[0].Load()).Untagged(); r != s.tail; {
		if r.IsNil() {
			return n, "nil link at level 0"
		}
		nd := pool.Get(r)
		w := nd.next[0].Load()
		if !isMarked(w) {
			if nd.key <= prevKey {
				return n, "level 0 keys not strictly increasing"
			}
			prevKey = nd.key
			level0[r] = nd.key
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	for l := 1; l < s.levels; l++ {
		prev := int64(headKey)
		for r := mem.Ref(pool.Get(s.head).next[l].Load()).Untagged(); r != s.tail; {
			if r.IsNil() {
				return n, "nil link above level 0"
			}
			nd := pool.Get(r)
			w := nd.next[l].Load()
			if !isMarked(w) {
				if nd.key <= prev {
					return n, "upper level keys not strictly increasing"
				}
				prev = nd.key
				if int(nd.topLevel) <= l {
					return n, "node linked above its tower height"
				}
				if _, ok := level0[r]; !ok {
					return n, "upper level node missing from level 0"
				}
			}
			r = mem.Ref(w).Untagged()
		}
	}
	return n, ""
}
