// Package skiplist implements the lock-free skip list the paper evaluates
// (Fraser, "Practical lock-freedom", 2004 — reference [11]; the ASCYLIB
// variant the paper builds on). Keys live in a sorted multi-level list;
// bit 0 of each per-level next word is the logical-deletion mark for that
// level. Every node additionally carries a byte value (PutBytes/GetAppend,
// with Put/Get as the uint64 fast path): small values live inline in the
// node's value word, larger ones spill to a reclaimed value node in the
// same pool — see value.go for the encoding and its linearization
// argument. The same structure backs both the set containers and the
// value-carrying SkipMap the network server is built on.
//
// Hazard pointer budget: searches keep a (pred, succ) pair protected per
// level plus one scratch slot that covers a frozen successor across a
// splice, one pin slot that insert/delete hold on their own node, and one
// value slot that covers a spilled value node while its bytes are copied
// out — 2*levels+3 in total, exactly the paper's "up to 35 hazard
// pointers" for the skip list at 16 levels (§7.3), and the reason QSense's
// gap to QSBR is widest on this structure.
//
// # Reclamation safety argument
//
// The pointer-based schemes (hp, rc, Cadence's fallback) are safe on this
// structure because every protect/validate pair is conclusive: a
// validation that passes proves the protection was published before the
// node's retirement, so no scan can free the node while it is in use.
// Conclusiveness rests on three invariants; the first is local to search,
// the other two are enforced by Insert's claim-then-link protocol:
//
//  1. Clean-edge validation. A marked node is never walked through; it is
//     unlinked from the still-clean predecessor edge (search below). A
//     node validated reachable through a clean edge cannot have been
//     passed by its deleter's cleanup search yet — that search must
//     splice the node out of this very edge before the deleter may retire
//     it — so retirement, and any scan that could free the node, strictly
//     follows the reader's publication.
//
//  2. Non-repeating edges. At any level l, the value of an edge word (a
//     generation-tagged node ref) is written by exactly two operations:
//     the node's inserter's single link CAS per level, and a splice that
//     replaces a marked node with its frozen successor. The inserter
//     links each level at most once, claims the node's own next[l] only
//     immediately before the link CAS (from the same fresh search that
//     produced the CAS's expected value), and abandons the level — and
//     every level above it — permanently the moment it observes the
//     deletion mark, so a node that has been unlinked from a clean
//     level-l edge is never published at level l again. A splice can
//     still transiently publish a node whose mark landed between the
//     inserter's claim and its link CAS, but that node enters the level
//     for the first time, frozen at the freshly claimed successor, and is
//     spliced out exactly once. Between a reader's validation and the
//     unlink of the validated node an edge word is therefore
//     single-assignment — the splice CAS's expected-value check cannot be
//     defeated by an edge-value ABA.
//
//  3. Frozen-successor liveness. A splice installs the successor a
//     marked node held when its mark was set. By (2) that successor was
//     freshly claimed: at link time it was still reachable through a
//     clean edge (the link CAS's expected value proves it), and
//     afterwards it stays reachable through the marked node until the
//     chain is dismantled front-to-back — a cleanup search unlinks a
//     marked chain from the clean side, so a frozen successor is spliced
//     only after every marked node frozen at it is gone, and can never be
//     unlinked (hence never retired) while a reachable edge or a
//     reachable node's frozen word still leads to it. search additionally
//     protects the frozen successor in the scratch slot and revalidates
//     the clean edge before installing it, and a qsensedebug build
//     asserts the installed ref is live (mem.Pool.Valid) — defense in
//     depth in case a protocol hole remains.
//
// The historical violation of invariant 2 — Insert pre-stored every
// upper next word from the level-0 search and re-claimed a level only
// after a failed link CAS there, so a level's first link attempt could
// publish the node frozen at a long-dead pre-stored successor — is the
// hp/rc use-after-free TestSkipListUAFReproHPRC reproduces against old
// binaries. internal/tso's SkipList litmus systems and
// internal/sim/simskip model that schedule below Go's memory model: the
// stale-link protocol reaches the violation, the claim-then-link
// protocol does not, in any interleaving.
package skiplist

import (
	"math"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// MaxLevel is the tallest tower supported.
const MaxLevel = 16

// HPsFor returns the hazard pointer count a handle needs for a given level
// configuration.
func HPsFor(levels int) int { return 2*levels + 3 }

const (
	markBit = 1

	headKey = math.MinInt64
	tailKey = math.MaxInt64
)

// MinKey and MaxKey bound the usable key domain. math.MinInt64 and
// math.MaxInt64 are the head/tail sentinel keys of the list itself, so they
// are out of domain: Contains/Get/Delete report them absent and Insert/Put
// reject them (false) rather than match — or worse, unlink — a sentinel.
const (
	MinKey = headKey + 1
	MaxKey = tailKey - 1
)

// reserved reports whether key collides with a sentinel.
func reserved(key int64) bool { return key == headKey || key == tailKey }

type node struct {
	key      int64
	topLevel int32
	state    atomic.Uint32 // insert/delete retirement ownership (below)
	// val is the node's value word — inline payload, spilled value-node
	// Ref, or tombstone (value.go). Written before the level-0 link CAS
	// publishes the node, then only by updateValue's CAS on a node still
	// reachable through a clean edge and by Delete's tombstone swap — all
	// ordered against any reader by the atomic link/val accesses, so a
	// reader never sees an uninitialized word. Set-only callers
	// (Insert/Contains) leave it 0.
	val  atomic.Uint64
	next [MaxLevel]atomic.Uint64
	// payload backs spilled values: a node doubles as a value node when an
	// upsert needs more than MaxInline bytes (same pool, same birth-era
	// header, so ibr stamps value lifetimes like structural ones). On a
	// value node the link words above are never published.
	payload mem.Value
}

// Retirement ownership. An inserter keeps linking upper levels after its
// node is already reachable at level 0; a concurrent deleter's cleanup
// search can pass a level BEFORE the inserter links it, after which the
// inserter transiently re-links a marked — possibly already retired — node
// (the insert code prunes such levels before returning). Retiring a node
// that can still become reachable breaks hazard pointers' fundamental
// premise: a reader may then validate a protection AFTER the retirement,
// and a scan whose slot-by-slot snapshot is preempted between that
// reader's record and the inserter's pin can miss both, freeing the node
// mid-use (the stress tests reproduce this as a use-after-free). The
// state word restores strictness by handing the retirement to whoever
// acts last: the deleter retires a stDone node; for a node still
// stLinking it CASes to stAbandoned and the inserter — who alone can
// re-link, and prunes before finishing — retires it (finishInsert).
const (
	stLinking   = 0 // inserter still linking upper levels (may re-link)
	stDone      = 1 // insert complete; the deleter retires
	stAbandoned = 2 // deleter done mid-insert; the inserter retires
)

// Config controls skip list construction.
type Config struct {
	// Levels is the number of levels used (2..MaxLevel). Default 16.
	Levels int
	// MaxSlots bounds the node pool.
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// SkipList is the shared structure. Obtain one Handle per worker.
type SkipList struct {
	pool   *mem.Pool[node]
	levels int
	head   mem.Ref
	tail   mem.Ref

	// value-arena gauges (ValueStats in value.go)
	vBytes   atomic.Int64
	vSpilled atomic.Int64
	vRetires atomic.Uint64
	sRetires atomic.Uint64
}

// New creates an empty skip list.
func New(cfg Config) *SkipList {
	if cfg.Levels <= 1 || cfg.Levels > MaxLevel {
		cfg.Levels = MaxLevel
	}
	pool := mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "skiplist"})
	s := &SkipList{pool: pool, levels: cfg.Levels}
	tr, tn := pool.Alloc()
	tn.key = tailKey
	tn.topLevel = int32(cfg.Levels)
	hr, hn := pool.Alloc()
	hn.key = headKey
	hn.topLevel = int32(cfg.Levels)
	for l := 0; l < cfg.Levels; l++ {
		tn.next[l].Store(0)
		hn.next[l].Store(uint64(tr))
	}
	s.head, s.tail = hr, tr
	return s
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (s *SkipList) FreeNode(r mem.Ref) { s.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (s *SkipList) Pool() *mem.Pool[node] { return s.pool }

// Levels returns the configured level count.
func (s *SkipList) Levels() int { return s.levels }

// Handle is a worker's accessor. Not safe for concurrent use.
type Handle struct {
	s     *SkipList
	guard reclaim.Guard
	cache *mem.Cache[node]
	rng   uint64
	preds [MaxLevel]mem.Ref
	succs [MaxLevel]mem.Ref
}

// NewHandle binds a worker's guard to the skip list. Seed differentiates
// tower height streams across workers (any value is fine).
func (s *SkipList) NewHandle(g reclaim.Guard, seed uint64) *Handle {
	return &Handle{s: s, guard: g, cache: s.pool.NewCache(0), rng: seed*2654435761 + 1}
}

// Slot layout: 2l / 2l+1 hold the (pred, succ) pair of level l; slot
// 2*levels is the scratch slot that covers a frozen successor from just
// before its installing splice until the level's own pair picks it up;
// 2*levels+1 pins the operation's own node across helper searches;
// 2*levels+2 covers a spilled value node while its payload is copied out
// (value.go).
func (h *Handle) hpLeft(l int) int  { return 2 * l }
func (h *Handle) hpRight(l int) int { return 2*l + 1 }
func (h *Handle) hpScratch() int    { return 2 * h.s.levels }
func (h *Handle) hpPin() int        { return 2*h.s.levels + 1 }
func (h *Handle) hpVal() int        { return 2*h.s.levels + 2 }

func isMarked(w uint64) bool { return w&markBit != 0 }

// randomLevel draws a geometric(1/2) tower height in [1, levels].
func (h *Handle) randomLevel() int {
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	lvl := 1
	for v := h.rng; v&1 == 1 && lvl < h.s.levels; v >>= 1 {
		lvl++
	}
	return lvl
}

// search positions h.preds/h.succs around key at every level, unlinking
// marked nodes it encounters (Fraser's search with Michael-style eager
// unlinking). On return preds[l] and succs[l] are protected by level l's
// slot pair (which of the two holds which rotates as the walk advances —
// see below).
//
// A marked node is unlinked immediately rather than walked through: a
// node's marked next word is frozen, so re-validating a link THROUGH it
// cannot tell whether the next chain node has already been retired and
// freed by its deleter — a hazard pointer published after that deleter's
// scan would not save us. Unlinking from the still-clean predecessor edge
// keeps every protect/validate pair conclusive: a node validated reachable
// through a clean edge cannot have passed its deleter's cleanup search yet,
// so its retirement (and any scan) must come after our publication.
//
// Slot-role rotation. When the walk advances (left = right), the node's
// protection must NOT be copied from the right slot to the left slot:
// scans snapshot slots one at a time, so a concurrent snapshot can read
// the destination before the copy and the source after it is overwritten,
// missing a node that was covered the whole time — a use-after-free the
// stress tests reproduce. Instead the two slot INDICES swap roles, so a
// node stays in the one slot it was validated into for as long as it is
// protected. (Copies with a stable source are fine: the descend re-uses
// the level above's left slot, which is never overwritten again this
// search, and Delete's pin copy happens strictly before the node's
// retirement — both leave a conclusive slot for every snapshot to see.)
func (h *Handle) search(key int64) {
	pool := h.s.pool
retry:
	for {
		left := h.s.head
		for lvl := h.s.levels - 1; lvl >= 0; lvl-- {
			ls, rs := h.hpLeft(lvl), h.hpRight(lvl)
			h.guard.Protect(ls, left)
			lw := pool.Get(left).next[lvl].Load()
			if isMarked(lw) {
				continue retry // left was deleted under us
			}
			right := mem.Ref(lw).Untagged()
			for {
				h.guard.Protect(rs, right)
				if pool.Get(left).next[lvl].Load() != lw {
					continue retry
				}
				rw := pool.Get(right).next[lvl].Load()
				if isMarked(rw) {
					// right is logically deleted at this level:
					// splice it out from the clean side. Its
					// deleter retires it; we only unlink. The
					// frozen successor is protected in the scratch
					// slot and the clean edge revalidated before
					// the splice installs it: right reachable
					// through a clean edge means (invariant 3 in
					// the package doc) the successor is not yet
					// retired, so the protection is conclusive and
					// a stale frozen ref is never written into the
					// chain even if a protocol hole remains. The
					// scratch protection stays the stable source
					// until the level pair re-covers the node below
					// (a copy FROM a stable slot is snapshot-safe;
					// see the rotation note).
					next := mem.Ref(rw).Untagged()
					h.guard.Protect(h.hpScratch(), next)
					if pool.Get(left).next[lvl].Load() != lw {
						continue retry
					}
					assertFrozenLive(pool, next)
					if !pool.Get(left).next[lvl].CompareAndSwap(lw, uint64(next)) {
						continue retry
					}
					lw = uint64(next)
					right = next
					continue
				}
				if pool.Get(right).key < key {
					left = right
					ls, rs = rs, ls // right keeps its slot, now in the left role
					lw = rw
					right = mem.Ref(rw).Untagged()
					continue
				}
				h.preds[lvl] = left
				h.succs[lvl] = right
				break
			}
		}
		return
	}
}

// Contains reports whether key is in the set. Reserved keys (outside
// [MinKey, MaxKey]) are never present.
func (h *Handle) Contains(key int64) bool {
	if reserved(key) {
		return false
	}
	h.guard.Begin()
	h.search(key)
	found := h.s.pool.Get(h.succs[0]).key == key
	h.guard.ClearHPs()
	return found
}

// Insert adds key; false if already present or reserved.
func (h *Handle) Insert(key int64) bool {
	ins, _ := h.upsertWord(key, 0, 0, false)
	return ins
}

// upsertWord is the shared insert/put core: it links a new node whose
// value word is w (inserted=true), or — when upsert is set — installs w
// into an existing node via updateValue (inserted=false). vlen is w's
// spilled payload length, threaded through for the gauges (noteInstall).
// consumed reports whether w entered a reachable node: false only when the
// key existed and the upsert lost to a concurrent delete
// (update-then-delete) or upsert was false; a caller holding a spilled w
// must then free it. The public byte/uint64 entry points live in value.go.
func (h *Handle) upsertWord(key int64, w uint64, vlen int, upsert bool) (inserted, consumed bool) {
	if reserved(key) {
		// Inserting tailKey would upsert the tail sentinel's value word;
		// inserting headKey would link a node Validate cannot order
		// against the head. Both are rejected, not "already present".
		return false, false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.s.pool
	topLevel := h.randomLevel()
	var nref mem.Ref
	var nptr *node
	for {
		h.search(key)
		if existing := pool.Get(h.succs[0]); existing.key == key {
			consumed = upsert && h.updateValue(existing, w, vlen)
			if !nref.IsNil() {
				h.cache.Free(nref) // never linked: free directly
			}
			return false, consumed
		}
		if nref.IsNil() {
			nref, nptr = h.cache.Alloc()
			nptr.key = key
			nptr.topLevel = int32(topLevel)
			nptr.val.Store(w)
			nptr.state.Store(stLinking) // recycled slots carry stale states
			for l := 1; l < topLevel; l++ {
				// Upper next words stay nil until the level's link
				// attempt claims them (below): a recycled slot's
				// stale words must never be publishable, and a word
				// is meaningful only from its claim on.
				nptr.next[l].Store(0)
			}
		}
		nptr.next[0].Store(uint64(h.succs[0]))
		// Pin our node: a concurrent deleter may retire it the moment
		// it is reachable, but we keep dereferencing it below.
		h.guard.Protect(h.hpPin(), nref)
		if !pool.Get(h.preds[0]).next[0].CompareAndSwap(uint64(h.succs[0]), uint64(nref)) {
			continue // contention at level 0: retry with fresh position
		}
		h.s.noteInstall(w, vlen)
		break // linked: the insert has taken effect
	}
	// Link the upper levels, one claim-then-link step per attempt: claim
	// our own next[l] — a CAS from its previous value to the freshly
	// searched succs[l] — and only then CAS the predecessor edge from that
	// same succs[l] to us. The pairing is the load-bearing part of
	// invariant 3 (package doc): the successor our word holds when a
	// deleter freezes it is the one the link CAS just proved reachable,
	// never a stale value from an earlier search. The claim doubles as the
	// mark check: deletion marks levels top-down before level 0, the mark
	// can only land on the claimed word (our CAS would fail on a marked
	// expected value), and a mark observed here makes the level — and all
	// levels above it — permanently dead: we never publish again, run one
	// more search to prune anything a racing cleanup pass missed, and
	// finishInsert takes over the retirement if the deleter abandoned it
	// to us mid-link. A mark that lands in the window between claim and
	// link CAS re-links us transiently; that is safe (the frozen successor
	// is the fresh one) and the next level's claim — or the level-0 check
	// below — observes the top-down mark and prunes.
	for l := 1; l < topLevel; l++ {
		for {
			w := nptr.next[l].Load()
			for w != uint64(h.succs[l]) {
				if isMarked(w) {
					h.search(key) // final cleanup pass, then done
					h.finishInsert(nref, nptr, key)
					return true, true
				}
				if nptr.next[l].CompareAndSwap(w, uint64(h.succs[l])) {
					break
				}
				w = nptr.next[l].Load() // a deleter marked under us
			}
			if pool.Get(h.preds[l]).next[l].CompareAndSwap(uint64(h.succs[l]), uint64(nref)) {
				break
			}
			h.search(key) // refresh preds/succs for the next claim
			if h.succs[0] != nref {
				// Our node was deleted and already pruned by the
				// search we just ran.
				h.finishInsert(nref, nptr, key)
				return true, true
			}
		}
	}
	// Deletion may have raced the top link; ensure cleanup before unpinning.
	if isMarked(nptr.next[0].Load()) {
		h.search(key)
	}
	h.finishInsert(nref, nptr, key)
	return true, true
}

// finishInsert ends the linking phase: no further level can be (re-)linked
// after it. If the deleter already finished its cleanup in the meantime, it
// abandoned the retirement to us (see the state constants); the node is
// marked at every level, so one more search strictly unlinks it, and we
// retire it while still holding the pin.
func (h *Handle) finishInsert(nref mem.Ref, nptr *node, key int64) {
	if nptr.state.CompareAndSwap(stLinking, stDone) {
		return
	}
	h.search(key)
	h.s.sRetires.Add(1)
	h.guard.Retire(nref)
}

// Delete removes key; false if absent. Levels are marked top-down; whoever
// marks level 0 owns the deletion, physically unlinks with a search, and
// retires the node (Fraser's protocol; retire placement per Appendix B).
func (h *Handle) Delete(key int64) bool {
	if reserved(key) {
		// Deleting tailKey would mark and retire the tail sentinel while
		// every search still routes through it — a use-after-free any
		// caller (e.g. a TCP peer of qsense-kvd) could trigger.
		return false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.s.pool
	h.search(key)
	n := h.succs[0]
	np := pool.Get(n)
	if np.key != key {
		return false
	}
	// Pin n before marking: the cleanup search recycles level 0's slot
	// pair. The pin copy is published strictly before n's retirement (this
	// deleter retires it after the search), so every conclusive snapshot
	// sees it.
	h.guard.Protect(h.hpPin(), n)
	topLevel := int(np.topLevel)
	for l := topLevel - 1; l >= 1; l-- {
		for {
			w := pool.Get(n).next[l].Load()
			if isMarked(w) {
				break
			}
			if pool.Get(n).next[l].CompareAndSwap(w, w|markBit) {
				break
			}
		}
	}
	for {
		w := pool.Get(n).next[0].Load()
		if isMarked(w) {
			return false // another deleter owns it
		}
		if pool.Get(n).next[0].CompareAndSwap(w, w|markBit) {
			// Winning the level-0 mark also wins the value: displace it
			// with the tombstone and retire a spilled value node exactly
			// once, while the pin still protects n. Readers that load the
			// tombstone linearize after this delete (value.go); later
			// upserts observe it and refuse to resurrect the node.
			h.retireDisplaced(pool.Get(n).val.Swap(valTombstone))
			h.search(key) // physical cleanup at every level
			// Retirement ownership: if n's inserter is still linking
			// upper levels, it can re-link a level our search already
			// passed — retiring now would leave a reachable retired
			// node. Hand the retirement over (state constants above);
			// the inserter prunes and retires in finishInsert. A node
			// whose insert has completed is strictly unreachable here.
			np := pool.Get(n)
			if np.state.Load() == stLinking && np.state.CompareAndSwap(stLinking, stAbandoned) {
				return true
			}
			h.s.sRetires.Add(1)
			h.guard.Retire(n)
			return true
		}
	}
}

// Len counts unmarked level-0 nodes; only meaningful when quiesced.
func (s *SkipList) Len() int {
	n := 0
	for r := mem.Ref(s.pool.Get(s.head).next[0].Load()).Untagged(); r != s.tail; {
		w := s.pool.Get(r).next[0].Load()
		if !isMarked(w) {
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	return n
}

// Validate checks structural invariants when quiesced: every level sorted,
// every upper-level node present at level 0 with a consistent tower.
// Returns the unmarked level-0 count and an error description ("" if OK).
func (s *SkipList) Validate() (int, string) {
	pool := s.pool
	level0 := map[mem.Ref]int64{}
	prevKey := int64(headKey)
	n := 0
	for r := mem.Ref(pool.Get(s.head).next[0].Load()).Untagged(); r != s.tail; {
		if r.IsNil() {
			return n, "nil link at level 0"
		}
		nd := pool.Get(r)
		w := nd.next[0].Load()
		if !isMarked(w) {
			if nd.key <= prevKey {
				return n, "level 0 keys not strictly increasing"
			}
			prevKey = nd.key
			level0[r] = nd.key
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	for l := 1; l < s.levels; l++ {
		prev := int64(headKey)
		for r := mem.Ref(pool.Get(s.head).next[l].Load()).Untagged(); r != s.tail; {
			if r.IsNil() {
				return n, "nil link above level 0"
			}
			nd := pool.Get(r)
			w := nd.next[l].Load()
			if !isMarked(w) {
				if nd.key <= prev {
					return n, "upper level keys not strictly increasing"
				}
				prev = nd.key
				if int(nd.topLevel) <= l {
					return n, "node linked above its tower height"
				}
				if _, ok := level0[r]; !ok {
					return n, "upper level node missing from level 0"
				}
			}
			r = mem.Ref(w).Untagged()
		}
	}
	return n, ""
}
