package skiplist

import (
	"math"
	"testing"
)

// TestSkipListReservedKeys: the two extreme int64 values are the head/tail
// sentinel keys, so every operation must treat them as out of domain — a
// Delete(MaxInt64) used to mark and retire the tail sentinel while every
// search still routed through it (a use-after-free reachable from
// qsense-kvd's network input), and Put/Get(MaxInt64) phantom-matched it.
func TestSkipListReservedKeys(t *testing.T) {
	s, d, hs := newSet(t, "qsense", 1, 8)
	defer d.Close()
	h := hs[0]
	if !h.Put(5, 50) {
		t.Fatal("setup Put")
	}
	for _, k := range []int64{math.MinInt64, math.MaxInt64} {
		if h.Contains(k) {
			t.Errorf("Contains(%d) = true", k)
		}
		if _, ok := h.Get(k); ok {
			t.Errorf("Get(%d) reported found", k)
		}
		if h.Insert(k) {
			t.Errorf("Insert(%d) accepted", k)
		}
		if h.Put(k, 1) {
			t.Errorf("Put(%d) inserted", k)
		}
		if h.Delete(k) {
			t.Errorf("Delete(%d) = true", k)
		}
	}
	// The domain boundaries themselves are ordinary keys.
	for _, k := range []int64{MinKey, MaxKey} {
		if !h.Put(k, 9) || !h.Contains(k) || !h.Delete(k) {
			t.Errorf("boundary key %d not usable", k)
		}
	}
	// The structure survived intact: sentinels in place, data untouched.
	if v, ok := h.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v after reserved-key ops", v, ok)
	}
	if n, msg := s.Validate(); msg != "" || n != 1 {
		t.Fatalf("Validate after reserved-key ops: n=%d msg=%q", n, msg)
	}
}
