package skiplist

import (
	"math/bits"

	"qsense/internal/mem"
)

// Value representation. A node's val word holds one of three shapes,
// distinguished by the low bits (an untagged mem.Ref always has its low
// mem.TagBits bits clear, so the encodings cannot collide):
//
//	w == 0                   empty value (Insert-created nodes)
//	bit 0 set                inline: bits 1..3 the length (0..MaxInline),
//	                         payload little-endian from bit 8 up
//	w == valTombstone (2)    node deleted; the value has been displaced
//	otherwise                spilled: w is the untagged Ref of a value node
//	                         (same pool as structural nodes) whose payload
//	                         carries the bytes
//
// Spilled value nodes are single-publish: a value Ref is installed into
// exactly one node's val word by exactly one writer (the upsert that
// allocated it), and displaced exactly once — by a later upsert's CAS or
// the deleter's tombstone swap — whose winner retires it through the
// domain. Between install and displacement the payload is read-only.
//
// # Spilled-value linearization argument
//
// A reader that finds a spilled word w protects the Ref in the dedicated
// value slot (hpVal), re-loads the val word, and only copies the payload
// if the word is still w. The pair is conclusive, mirroring the
// clean-edge argument in the package doc: a successful revalidation
// proves the displacement CAS had not happened when the word was
// re-loaded, so the protection was published (with Protect's store-load
// fence) strictly before the displacing writer could retire the Ref —
// any scan that could free it must see the protection. Single-publish
// words make the check ABA-free: a value Ref never re-enters a val word,
// and a recycled slot's new Ref differs in generation. For interval
// schemes (ibr), Protect widens the reservation to the current era; the
// value node's birth is no later than that era (it was live at the
// revalidation) and its retire stamp is no earlier than the reservation's
// lower bound (the displacement follows the reader's Begin), so the
// lifetime overlaps the reservation and the node cannot be freed until
// the guard clears. A reader that instead observes valTombstone
// linearizes after the delete and reports the key absent.
const (
	valInlineBit = 1 // bit 0: value stored in the word itself
	valLenShift  = 1
	valLenMask   = 7
	valDataShift = 8

	// valTombstone marks a deleted node's displaced value word. Bit 1 set
	// with bit 0 clear can be neither an inline word nor an untagged Ref.
	valTombstone = 2

	// MaxInline is the longest payload stored inside the value word.
	MaxInline = 7
)

// inlineWord packs b (len <= MaxInline) into an inline value word.
func inlineWord(b []byte) uint64 {
	w := uint64(valInlineBit) | uint64(len(b))<<valLenShift
	for i, c := range b {
		w |= uint64(c) << (valDataShift + 8*i)
	}
	return w
}

func inlineLen(w uint64) int { return int(w >> valLenShift & valLenMask) }

// appendInline decodes an inline word's payload onto dst.
func appendInline(dst []byte, w uint64) []byte {
	n := inlineLen(w)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(w>>(valDataShift+8*i)))
	}
	return dst
}

// ValueStats is a snapshot of the list's value-arena gauges.
type ValueStats struct {
	Bytes         int64  // live value payload bytes (inline + spilled)
	Spilled       int64  // live spilled value nodes
	ValueRetires  uint64 // value nodes retired through the domain
	StructRetires uint64 // structural nodes retired through the domain
}

// ValueStats returns the list's value gauges. Gauges are updated with racy
// atomics and may be transiently off by in-flight upserts.
func (s *SkipList) ValueStats() ValueStats {
	return ValueStats{
		Bytes:         s.vBytes.Load(),
		Spilled:       s.vSpilled.Load(),
		ValueRetires:  s.vRetires.Load(),
		StructRetires: s.sRetires.Load(),
	}
}

// noteInstall records a value word entering a reachable node. vlen is the
// spilled payload length, threaded from the caller: once the word is
// published a concurrent upsert may displace and retire it, so the slot
// itself must not be dereferenced here.
func (s *SkipList) noteInstall(w uint64, vlen int) {
	switch {
	case w == 0 || w == valTombstone:
	case w&valInlineBit != 0:
		s.vBytes.Add(int64(inlineLen(w)))
	default:
		s.vBytes.Add(int64(vlen))
		s.vSpilled.Add(1)
	}
}

// retireDisplaced releases a displaced value word: inline words only adjust
// the gauges; a spilled Ref is retired through the caller's guard (the
// displacing CAS/swap winner owns it — see the single-publish discipline
// above).
func (h *Handle) retireDisplaced(w uint64) {
	s := h.s
	switch {
	case w == 0 || w == valTombstone:
	case w&valInlineBit != 0:
		s.vBytes.Add(-int64(inlineLen(w)))
	default:
		r := mem.Ref(w)
		s.vBytes.Add(-int64(s.pool.Get(r).payload.Len()))
		s.vSpilled.Add(-1)
		s.vRetires.Add(1)
		h.guard.Retire(r)
	}
}

// spillWord allocates a value node for b and returns its word. The node is
// unpublished until an upsert installs the word; a caller whose word is not
// consumed must free it with unspill.
func (h *Handle) spillWord(b []byte) uint64 {
	vref, vp := h.cache.Alloc()
	vp.payload.Set(b)
	return uint64(vref)
}

func (h *Handle) unspill(w uint64) { h.cache.Free(mem.Ref(w)) }

// updateValue installs neww into a live node's value word and retires the
// displaced word. False if the node was deleted first (its word is the
// tombstone): the caller's update linearizes immediately before that delete
// and neww was not consumed. vlen is neww's spilled payload length (see
// noteInstall).
func (h *Handle) updateValue(np *node, neww uint64, vlen int) bool {
	for {
		old := np.val.Load()
		if old == valTombstone {
			return false
		}
		if np.val.CompareAndSwap(old, neww) {
			h.s.noteInstall(neww, vlen)
			h.retireDisplaced(old)
			return true
		}
	}
}

// readValue copies the value of a node the caller located (and still
// protects) with search, appending to dst. False if the node was deleted
// (tombstone) — the read linearizes after that delete. Spilled payloads are
// copied under the hpVal protection per the linearization argument above.
func (h *Handle) readValue(np *node, dst []byte) ([]byte, bool) {
	for {
		w := np.val.Load()
		switch {
		case w == valTombstone:
			return dst, false
		case w == 0:
			return dst, true
		case w&valInlineBit != 0:
			return appendInline(dst, w), true
		default:
			r := mem.Ref(w)
			h.guard.Protect(h.hpVal(), r)
			if np.val.Load() != w {
				continue // displaced under us: the protection is inconclusive
			}
			return h.s.pool.Get(r).payload.Append(dst), true
		}
	}
}

// PutBytes sets key's value to a copy of val: inserts if absent (true) or
// displaces the existing value (false), retiring the displaced value node
// through the domain. Values up to MaxInline bytes are stored in the node's
// value word itself (no allocation); longer values spill to a value node in
// the same pool. A PutBytes that races a Delete on the same key linearizes
// as update-then-delete and returns false without storing. Reserved keys
// are rejected (false).
func (h *Handle) PutBytes(key int64, val []byte) bool {
	if reserved(key) {
		return false
	}
	if len(val) <= MaxInline {
		ins, _ := h.upsertWord(key, inlineWord(val), 0, true)
		return ins
	}
	w := h.spillWord(val)
	ins, consumed := h.upsertWord(key, w, len(val), true)
	if !consumed {
		h.unspill(w) // never published: free directly
	}
	return ins
}

// GetAppend appends key's value to dst. ok is false if the key is absent
// (or reserved, or deleted concurrently — see readValue).
func (h *Handle) GetAppend(key int64, dst []byte) ([]byte, bool) {
	if reserved(key) {
		return dst, false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	h.search(key)
	np := h.s.pool.Get(h.succs[0])
	if np.key != key {
		return dst, false
	}
	return h.readValue(np, dst)
}

// Put sets key's value to val's minimal little-endian byte encoding — the
// uint64 fast path. Values below 2^56 encode in at most 7 bytes and stay
// inline (no allocation, no guard traffic beyond the search); larger values
// take the spilled path. Semantics match PutBytes.
func (h *Handle) Put(key int64, val uint64) bool {
	if val < 1<<(8*MaxInline) {
		n := (bits.Len64(val) + 7) / 8
		w := uint64(valInlineBit) | uint64(n)<<valLenShift | val<<valDataShift
		ins, _ := h.upsertWord(key, w, 0, true)
		return ins
	}
	var b [8]byte
	for i := range b {
		b[i] = byte(val >> (8 * i))
	}
	return h.PutBytes(key, b[:])
}

// Get returns key's value decoded as a little-endian uint64 (the first 8
// bytes, for longer values). Inline words decode straight from the word.
func (h *Handle) Get(key int64) (uint64, bool) {
	if reserved(key) {
		return 0, false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	h.search(key)
	np := h.s.pool.Get(h.succs[0])
	if np.key != key {
		return 0, false
	}
	for {
		w := np.val.Load()
		switch {
		case w == valTombstone:
			return 0, false
		case w == 0:
			return 0, true
		case w&valInlineBit != 0:
			return w >> valDataShift, true
		default:
			r := mem.Ref(w)
			h.guard.Protect(h.hpVal(), r)
			if np.val.Load() != w {
				continue
			}
			var v uint64
			b := h.s.pool.Get(r).payload.Bytes()
			for i := 0; i < len(b) && i < 8; i++ {
				v |= uint64(b[i]) << (8 * i)
			}
			return v, true
		}
	}
}
