//go:build qsensedebug

package skiplist

import (
	"fmt"

	"qsense/internal/mem"
)

// assertFrozenLive panics if a splice is about to install a frozen
// successor that no longer resolves to a live pool slot. Under the
// claim-then-link protocol this cannot happen — the caller protected the
// ref in the scratch slot and revalidated the clean edge, which makes the
// successor provably unretired (package doc, invariant 3) — so a firing
// assertion pinpoints a protocol regression at the splice site instead of
// a delayed *mem.Violation in whatever reader touches the stale chain
// next. Enabled by `-tags qsensedebug`; the CI repro batch runs with it.
func assertFrozenLive(p *mem.Pool[node], r mem.Ref) {
	if !p.Valid(r) {
		panic(fmt.Sprintf("skiplist: splice would install stale frozen successor %v", r))
	}
}
