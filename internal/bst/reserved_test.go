package bst

import (
	"math"
	"testing"
)

// TestBSTReservedKeys: the top three int64 values are the tree's sentinel
// skeleton (inf0..inf2), so every operation must treat keys above MaxKey
// as out of domain — a Delete of a sentinel key used to flag and splice
// out the sentinel leaf itself, dismantling the skeleton.
func TestBSTReservedKeys(t *testing.T) {
	tr, d, hs := newSet(t, "qsense", 1)
	defer d.Close()
	h := hs[0]
	if !h.Insert(9) {
		t.Fatal("setup Insert")
	}
	for k := int64(math.MaxInt64 - 2); ; k++ {
		if h.Contains(k) {
			t.Errorf("Contains(%d) = true", k)
		}
		if h.Insert(k) {
			t.Errorf("Insert(%d) accepted", k)
		}
		if h.Delete(k) {
			t.Errorf("Delete(%d) = true", k)
		}
		if k == math.MaxInt64 {
			break
		}
	}
	// MaxKey itself is an ordinary key.
	if !h.Insert(MaxKey) || !h.Contains(MaxKey) || !h.Delete(MaxKey) {
		t.Error("MaxKey not usable")
	}
	// The skeleton survived intact: data untouched, 1 user key + its
	// internal node on top of the 5 sentinel nodes.
	if !h.Contains(9) {
		t.Fatal("key 9 lost after reserved-key ops")
	}
	if n, msg := tr.Validate(); msg != "" || n != 1 {
		t.Fatalf("Validate after reserved-key ops: n=%d msg=%q", n, msg)
	}
}
