// Package bst implements the lock-free external binary search tree the
// paper evaluates (Natarajan & Mittal, "Fast concurrent lock-free binary
// search trees", PPoPP 2014 — reference [27]).
//
// Keys live at the leaves; internal nodes route (key < node.key goes left).
// Deletion is edge-based: the edge to the doomed leaf is FLAGged, the edge
// to its sibling is TAGged (freezing both), and the grandparent edge is then
// swung to the sibling, splicing out the parent and the leaf in one CAS —
// the two low tag bits of mem.Ref carry FLAG and TAG. One delete removes
// two nodes (the paper's m=2 in the legal-C rule of §6.2).
//
// The structure uses six hazard pointers per worker, as the paper notes in
// §7.3: ancestor, successor, parent, leaf, the next child during descent,
// and a spare.
package bst

import (
	"math"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// HPs is the number of hazard pointers a BST handle uses.
const HPs = 6

const (
	hpAnc  = 0
	hpSucc = 1
	hpPar  = 2
	hpLeaf = 3
	hpCur  = 4

	flagBit = 1 // edge's child is a leaf scheduled for deletion
	tagBit  = 2 // edge is frozen as the sibling of a deletion

	// Sentinel keys: all user keys must be strictly below inf0.
	inf0 = math.MaxInt64 - 2
	inf1 = math.MaxInt64 - 1
	inf2 = math.MaxInt64

	// MaxKey is the largest user key the tree accepts.
	MaxKey = inf0 - 1
)

type node struct {
	key   int64
	left  atomic.Uint64 // edge word: mem.Ref | flagBit | tagBit; 0 in leaves
	right atomic.Uint64
	_     [32]byte
}

// Config controls tree construction.
type Config struct {
	// MaxSlots bounds the node pool.
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// Tree is the shared structure. Obtain one Handle per worker.
type Tree struct {
	pool *mem.Pool[node]
	root mem.Ref // R: key inf2
	s    mem.Ref // S: key inf1, R's left child
}

// New creates an empty tree with the three-sentinel skeleton of the paper:
// R(inf2) with children S and leaf(inf2); S(inf1) with leaf children
// leaf(inf0) and leaf(inf1).
func New(cfg Config) *Tree {
	pool := mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "bst"})
	t := &Tree{pool: pool}
	leaf := func(key int64) mem.Ref {
		r, n := pool.Alloc()
		n.key = key
		n.left.Store(0)
		n.right.Store(0)
		return r
	}
	sr, sn := pool.Alloc()
	sn.key = inf1
	sn.left.Store(uint64(leaf(inf0)))
	sn.right.Store(uint64(leaf(inf1)))
	rr, rn := pool.Alloc()
	rn.key = inf2
	rn.left.Store(uint64(sr))
	rn.right.Store(uint64(leaf(inf2)))
	t.root, t.s = rr, sr
	return t
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (t *Tree) FreeNode(r mem.Ref) { t.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (t *Tree) Pool() *mem.Pool[node] { return t.pool }

// Handle is a worker's accessor. Not safe for concurrent use.
type Handle struct {
	t     *Tree
	guard reclaim.Guard
	cache *mem.Cache[node]
}

// NewHandle binds a worker's guard to the tree.
func (t *Tree) NewHandle(g reclaim.Guard) *Handle {
	return &Handle{t: t, guard: g, cache: t.pool.NewCache(0)}
}

// seekRecord captures the paper's seek result: the last untagged edge on
// the access path runs ancestor -> successor; parent is the leaf's parent.
type seekRecord struct {
	ancestor  mem.Ref
	successor mem.Ref
	parent    mem.Ref
	leaf      mem.Ref
}

func flagged(w uint64) bool { return w&flagBit != 0 }
func tagged(w uint64) bool  { return w&tagBit != 0 }
func addr(w uint64) mem.Ref { return mem.Ref(w).Untagged() }

// childField returns the edge of n toward key.
func childField(n *node, key int64) *atomic.Uint64 {
	if key < n.key {
		return &n.left
	}
	return &n.right
}

// seek descends to the leaf for key, maintaining the hazard pointer set and
// re-validating every edge after protecting its target (§3.2 methodology).
// On return all four record entries are protected.
//
// Unlike the GC-reliant original, seek refuses to traverse flagged or tagged
// edges. A dirty edge is frozen, so re-reading it cannot tell whether its
// target has already been spliced out and retired — a hazard pointer
// published after the splice-winner's scan would not save the reader
// (Condition 1 of §3.2 would be violated). Instead the seeker helps the
// in-progress deletion to completion and restarts; only targets reached
// through clean, validated edges are provably unretired at protection time.
//
// As the window shifts down a level, slot ROLES rotate with the nodes
// instead of copying protections between slots: a cross-slot copy can be
// missed entirely by a concurrent snapshot that reads the destination slot
// before the copy and the source slot after its overwrite (see
// skiplist.search). Each node therefore stays in the one slot it was
// validated into: parent's slot becomes the ancestor slot, current's the
// successor+parent slot (those two roles always alias here), next's the
// leaf slot, and the freed ancestor slot protects the next descent target.
func (h *Handle) seek(key int64) seekRecord {
	pool := h.t.pool
retry:
	for {
		sa, ss, sp, sl, sc := hpAnc, hpSucc, hpPar, hpLeaf, hpCur
		anc := h.t.root
		h.guard.Protect(sa, anc)
		succ := h.t.s // R.left target; this edge is immutable
		h.guard.Protect(ss, succ)
		parent := succ
		h.guard.Protect(sp, parent)
		parentField := pool.Get(parent).left.Load() // S.left edge; never dirty (S is a sentinel)
		current := addr(parentField)
		h.guard.Protect(sl, current)
		if pool.Get(parent).left.Load() != parentField || parentField&(flagBit|tagBit) != 0 {
			continue retry
		}
		for {
			cn := pool.Get(current)
			lw := cn.left.Load()
			if lw == 0 {
				// current is a leaf.
				return seekRecord{ancestor: anc, successor: succ, parent: parent, leaf: current}
			}
			// Descend toward key.
			var curField uint64
			if key < cn.key {
				curField = lw
			} else {
				curField = cn.right.Load()
			}
			next := addr(curField)
			h.guard.Protect(sc, next)
			if childField(pool.Get(current), key).Load() != curField {
				continue retry
			}
			if curField&(flagBit|tagBit) != 0 {
				// A deletion is in progress under current: help it
				// finish, then retry from the top. next may already
				// be retired; cleanup never dereferences it. The
				// record describes next's position: its parent is
				// current and its grandparent — the splice point —
				// is parent (anc/succ sit one level higher and
				// describe current's own position).
				h.cleanup(key, seekRecord{ancestor: parent, successor: current, parent: current, leaf: next})
				continue retry
			}
			freed := sa
			if !tagged(parentField) { // always true here; kept for symmetry with the paper
				anc = parent
				sa = sp
				succ = current
				ss = sl
			} else {
				freed = sp // anc/succ stay; only parent's slot frees up
			}
			parent = current
			sp = sl
			parentField = curField
			current = next
			sl = sc
			sc = freed
		}
	}
}

// cleanup attempts the physical removal for the deletion whose flag sits on
// one of sr.parent's edges: tag the sibling edge, then swing the ancestor's
// successor edge to the sibling (preserving the sibling's own flag). The
// winner of the swing CAS retires the two spliced-out nodes. Returns whether
// this call performed the splice.
func (h *Handle) cleanup(key int64, sr seekRecord) bool {
	pool := h.t.pool
	par := pool.Get(sr.parent)
	ancEdge := childField(pool.Get(sr.ancestor), key)

	var keptAddr, removedAddr *atomic.Uint64
	if key < par.key {
		removedAddr, keptAddr = &par.left, &par.right
	} else {
		removedAddr, keptAddr = &par.right, &par.left
	}
	if !flagged(removedAddr.Load()) {
		// The leaf on our search side is not the doomed one; the
		// deletion (if any) targets the other child, and our side is
		// the kept sibling.
		keptAddr, removedAddr = removedAddr, keptAddr
		if !flagged(removedAddr.Load()) {
			// No deletion in progress on this parent (stale record):
			// tagging anything here could freeze an innocent edge.
			return false
		}
	}
	// Freeze the sibling edge so the kept subtree cannot change under us.
	for {
		w := keptAddr.Load()
		if tagged(w) {
			break
		}
		if keptAddr.CompareAndSwap(w, w|tagBit) {
			break
		}
	}
	kept := keptAddr.Load()
	// Swing: ancestor's edge from (successor, clean) to the kept child,
	// clearing the tag but preserving the kept child's own flag.
	//
	// Immune to the skip list's upper-level edge ABA (its package doc's
	// invariants 2 and 3), by construction rather than by a claim step:
	// edges here are single-assignment between deletions because Insert
	// publishes fresh private nodes only, and the value this swing
	// installs — the kept child frozen under the tag — cannot have been
	// retired: retiring it would require flagging its incoming edge,
	// which is exactly the edge the tag froze (a flag CAS expects a
	// clean word), so its deletion cannot even start until the swing
	// re-exposes it through a clean ancestor edge. The expected value
	// (successor, clean) cannot repeat either: a spliced-out successor
	// is retired by the swing winner and never re-published.
	newWord := kept &^ tagBit
	if !ancEdge.CompareAndSwap(uint64(sr.successor), newWord) {
		return false
	}
	// We removed parent and the flagged leaf: retire both (m = 2).
	h.guard.Retire(addr(removedAddr.Load()))
	h.guard.Retire(sr.parent)
	return true
}

// Contains reports whether key is in the set. Keys above MaxKey collide
// with the sentinel skeleton and are never present.
func (h *Handle) Contains(key int64) bool {
	if key > MaxKey {
		return false
	}
	h.guard.Begin()
	sr := h.seek(key)
	found := h.t.pool.Get(sr.leaf).key == key
	h.guard.ClearHPs()
	return found
}

// Insert adds key; false if already present. Keys above MaxKey are
// rejected (false), never grafted next to a sentinel leaf.
func (h *Handle) Insert(key int64) bool {
	if key > MaxKey {
		return false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.t.pool
	var internalRef, leafRef mem.Ref
	var internalPtr, leafPtr *node
	for {
		sr := h.seek(key)
		oldLeaf := sr.leaf
		leafKey := pool.Get(oldLeaf).key
		if leafKey == key {
			if !internalRef.IsNil() {
				// Never linked: free both directly.
				h.cache.Free(internalRef)
				h.cache.Free(leafRef)
			}
			return false
		}
		if internalRef.IsNil() {
			leafRef, leafPtr = h.cache.Alloc()
			leafPtr.key = key
			leafPtr.left.Store(0)
			leafPtr.right.Store(0)
			internalRef, internalPtr = h.cache.Alloc()
		}
		// Internal routing node: key = max(key, leafKey); smaller goes left.
		if key < leafKey {
			internalPtr.key = leafKey
			internalPtr.left.Store(uint64(leafRef))
			internalPtr.right.Store(uint64(oldLeaf))
		} else {
			internalPtr.key = key
			internalPtr.left.Store(uint64(oldLeaf))
			internalPtr.right.Store(uint64(leafRef))
		}
		parEdge := childField(pool.Get(sr.parent), key)
		if parEdge.CompareAndSwap(uint64(oldLeaf), uint64(internalRef)) {
			return true
		}
		// The edge changed: help an in-progress deletion if that is
		// what blocks us, then retry.
		w := parEdge.Load()
		if addr(w) == oldLeaf && (flagged(w) || tagged(w)) {
			h.cleanup(key, sr)
		}
	}
}

// Delete removes key; false if absent. Two modes, per the paper: INJECTION
// flags the leaf's incoming edge (the linearization point); CLEANUP then
// performs the physical splice, possibly helped by or helping others.
// Keys above MaxKey are absent by definition — without the guard a delete
// of a sentinel key would flag and splice out the sentinel leaf itself.
func (h *Handle) Delete(key int64) bool {
	if key > MaxKey {
		return false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.t.pool
	injecting := true
	var doomed mem.Ref
	for {
		sr := h.seek(key)
		if injecting {
			if pool.Get(sr.leaf).key != key {
				return false
			}
			parEdge := childField(pool.Get(sr.parent), key)
			if parEdge.CompareAndSwap(uint64(sr.leaf), uint64(sr.leaf)|flagBit) {
				injecting = false
				doomed = sr.leaf
				if h.cleanup(key, sr) {
					return true
				}
			} else {
				w := parEdge.Load()
				if addr(w) == sr.leaf && (flagged(w) || tagged(w)) {
					h.cleanup(key, sr)
				}
			}
			continue
		}
		// CLEANUP mode: we own the flagged leaf until it disappears.
		if sr.leaf != doomed {
			return true // someone completed our splice
		}
		if h.cleanup(key, sr) {
			return true
		}
	}
}

// Len counts user leaves; only meaningful when quiesced.
func (t *Tree) Len() int {
	n, _ := t.walk(t.root)
	return n
}

func (t *Tree) walk(r mem.Ref) (int, int64) {
	nd := t.pool.Get(r)
	if nd.left.Load() == 0 {
		if nd.key < inf0 {
			return 1, nd.key
		}
		return 0, nd.key
	}
	nl, _ := t.walk(addr(nd.left.Load()))
	nr, _ := t.walk(addr(nd.right.Load()))
	return nl + nr, nd.key
}

// Keys returns user keys in sorted order; only meaningful when quiesced.
func (t *Tree) Keys() []int64 {
	var ks []int64
	var rec func(r mem.Ref)
	rec = func(r mem.Ref) {
		nd := t.pool.Get(r)
		if nd.left.Load() == 0 {
			if nd.key < inf0 {
				ks = append(ks, nd.key)
			}
			return
		}
		rec(addr(nd.left.Load()))
		rec(addr(nd.right.Load()))
	}
	rec(t.root)
	return ks
}

// Validate checks structural invariants when quiesced: internal nodes have
// two children, leaves are in routing order, sentinels intact. Returns the
// user-leaf count and an error description ("" if OK). Bounds are inclusive:
// a subtree rec(r, lo, hi) must hold keys in [lo, hi]; an internal node k
// routes [lo, k-1] left and [k, hi] right.
func (t *Tree) Validate() (int, string) {
	count := 0
	var rec func(r mem.Ref, lo, hi int64) string
	rec = func(r mem.Ref, lo, hi int64) string {
		if r.IsNil() {
			return "nil child on internal node"
		}
		nd := t.pool.Get(r)
		lw, rw := nd.left.Load(), nd.right.Load()
		if (lw == 0) != (rw == 0) {
			return "half-leaf node"
		}
		if nd.key < lo || nd.key > hi {
			if lw == 0 {
				return "leaf key out of routing range"
			}
			return "internal key out of routing range"
		}
		if lw == 0 {
			if nd.key < inf0 {
				count++
			}
			return ""
		}
		if msg := rec(addr(lw), lo, nd.key-1); msg != "" {
			return msg
		}
		return rec(addr(rw), nd.key, hi)
	}
	msg := rec(t.root, math.MinInt64, math.MaxInt64)
	return count, msg
}
