package bst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

func newSet(t *testing.T, scheme string, workers int) (*Tree, reclaim.Domain, []*Handle) {
	t.Helper()
	tr := New(Config{Poison: true})
	d, err := reclaim.New(scheme, reclaim.Config{
		Workers: workers,
		HPs:     HPs,
		Free:    tr.FreeNode,
		Q:       8,
		R:       32,
		Rooster: rooster.Config{Interval: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*Handle, workers)
	for i := range hs {
		hs[i] = tr.NewHandle(d.Guard(i))
	}
	return tr, d, hs
}

func TestBSTEmptySkeleton(t *testing.T) {
	tr := New(Config{})
	if n, msg := tr.Validate(); msg != "" || n != 0 {
		t.Fatalf("fresh tree: n=%d msg=%q", n, msg)
	}
	if tr.Len() != 0 {
		t.Fatal("fresh tree not empty")
	}
	// 2 internal sentinels + 3 sentinel leaves.
	if live := tr.Pool().Stats().Live; live != 5 {
		t.Fatalf("sentinel nodes = %d, want 5", live)
	}
}

func TestBSTBasicSemantics(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, 1)
			defer d.Close()
			h := hs[0]
			if h.Contains(9) {
				t.Fatal("empty contains")
			}
			if !h.Insert(9) || h.Insert(9) {
				t.Fatal("insert semantics")
			}
			if !h.Contains(9) {
				t.Fatal("missing after insert")
			}
			if !h.Delete(9) || h.Delete(9) {
				t.Fatal("delete semantics")
			}
			if h.Contains(9) {
				t.Fatal("present after delete")
			}
		})
	}
}

func TestBSTDeleteRemovesTwoNodes(t *testing.T) {
	_, d, hs := newSet(t, "hp", 1)
	h := hs[0]
	h.Insert(1)
	h.Insert(2)
	retiredBefore := d.Stats().Retired
	h.Delete(1)
	if got := d.Stats().Retired - retiredBefore; got != 2 {
		t.Fatalf("delete retired %d nodes, want 2 (leaf + internal)", got)
	}
	d.Close()
}

func TestBSTSortedKeysAndValidate(t *testing.T) {
	tr, d, hs := newSet(t, "qsbr", 1)
	defer d.Close()
	h := hs[0]
	keys := []int64{50, 20, 80, 10, 30, 70, 90, 25, 35, 0, 100}
	for _, k := range keys {
		if !h.Insert(k) {
			t.Fatalf("insert %d", k)
		}
	}
	got := tr.Keys()
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("keys[%d] = %d want %d", i, got[i], want[i])
		}
	}
	if n, msg := tr.Validate(); msg != "" || n != len(want) {
		t.Fatalf("validate: n=%d msg=%q", n, msg)
	}
}

func TestBSTMaxKeyBoundary(t *testing.T) {
	_, d, hs := newSet(t, "hp", 1)
	defer d.Close()
	h := hs[0]
	if !h.Insert(MaxKey) {
		t.Fatal("MaxKey must be insertable")
	}
	if !h.Contains(MaxKey) || h.Contains(MaxKey-1) {
		t.Fatal("MaxKey membership wrong")
	}
	if !h.Delete(MaxKey) {
		t.Fatal("MaxKey delete")
	}
	if !h.Insert(0) || !h.Contains(0) {
		t.Fatal("zero key")
	}
}

func TestBSTAgainstModelQuick(t *testing.T) {
	f := func(ops []int16) bool {
		tr, d, hs := newSet(t, "qsense", 1)
		defer d.Close()
		h := hs[0]
		model := map[int64]bool{}
		for _, o := range ops {
			key := int64(o % 48)
			switch {
			case o%3 == 0:
				if h.Insert(key) == model[key] {
					return false
				}
				model[key] = true
			case o%3 == 1:
				if h.Delete(key) != model[key] {
					return false
				}
				delete(model, key)
			default:
				if h.Contains(key) != model[key] {
					return false
				}
			}
		}
		n, msg := tr.Validate()
		return msg == "" && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBSTReclaimsDeletedNodes(t *testing.T) {
	tr, d, hs := newSet(t, "qsbr", 1)
	h := hs[0]
	for round := 0; round < 30; round++ {
		for k := int64(0); k < 200; k++ {
			h.Insert(k)
		}
		for k := int64(0); k < 200; k++ {
			h.Delete(k)
		}
	}
	d.Close()
	if live := tr.Pool().Stats().Live; live != 5 {
		t.Fatalf("live after churn+close = %d, want 5 sentinels", live)
	}
}

func TestBSTConcurrentDisjointRanges(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const span = 256
			tr, d, hs := newSet(t, scheme, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					base := int64(w * span)
					for rep := 0; rep < 3; rep++ {
						for k := base; k < base+span; k++ {
							if !h.Insert(k) {
								t.Errorf("insert %d", k)
								return
							}
						}
						for k := base; k < base+span; k++ {
							if !h.Contains(k) {
								t.Errorf("missing %d", k)
								return
							}
						}
						for k := base; k < base+span; k++ {
							if !h.Delete(k) {
								t.Errorf("delete %d", k)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n, msg := tr.Validate(); msg != "" || n != 0 {
				t.Fatalf("validate: n=%d %s", n, msg)
			}
			d.Close()
		})
	}
}

func TestBSTConcurrentSameKeyContention(t *testing.T) {
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const iters = 3000
			tr, d, hs := newSet(t, scheme, workers)
			var ins, del [workers]int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					for i := 0; i < iters; i++ {
						if h.Insert(7) {
							ins[w]++
						}
						if h.Delete(7) {
							del[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			var it, dt int64
			for w := 0; w < workers; w++ {
				it += ins[w]
				dt += del[w]
			}
			if it-dt != int64(tr.Len()) {
				t.Fatalf("ins %d - del %d != len %d", it, dt, tr.Len())
			}
			d.Close()
		})
	}
}

func TestBSTConcurrentMixedChurn(t *testing.T) {
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			iters := 12000
			if testing.Short() {
				iters = 3000
			}
			tr, d, hs := newSet(t, scheme, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for i := 0; i < iters; i++ {
						k := int64(rng.Intn(512))
						switch rng.Intn(10) {
						case 0, 1, 2, 3, 4:
							h.Contains(k)
						case 5, 6, 7:
							h.Insert(k)
						default:
							h.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			n, msg := tr.Validate()
			if msg != "" {
				t.Fatalf("validate: %s", msg)
			}
			d.Close()
			// Leaves: n user + 3 sentinel; internals: n user + ... each
			// user leaf adds one internal; sentinels contribute 2.
			want := uint64(2*n + 5)
			if live := tr.Pool().Stats().Live; live != want {
				t.Fatalf("live=%d, want %d (n=%d)", live, want, n)
			}
		})
	}
}

func TestBSTHelpingInsertVsDelete(t *testing.T) {
	// Tight interleave of inserts and deletes of neighbouring keys forces
	// the helping paths (flag seen by insert, tag seen by delete).
	_, d, hs := newSet(t, "hp", 2)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hs[w]
			for i := 0; i < 5000; i++ {
				h.Insert(int64(i % 3))
				h.Delete(int64((i + w) % 3))
			}
		}(w)
	}
	wg.Wait()
	d.Close()
}
