package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

func newQueue(t *testing.T, scheme string, workers int) (*Queue, reclaim.Domain, []*Handle) {
	if t != nil {
		t.Helper()
	}
	q := New(Config{Poison: true})
	d, err := reclaim.New(scheme, reclaim.Config{
		Workers: workers,
		HPs:     HPs,
		Free:    q.FreeNode,
		Q:       8,
		R:       32,
		Rooster: rooster.Config{Interval: 500 * time.Microsecond},
	})
	if err != nil {
		panic(err)
	}
	hs := make([]*Handle, workers)
	for i := range hs {
		hs[i] = q.NewHandle(d.Guard(i))
	}
	return q, d, hs
}

// TestQueueFIFO: single-worker FIFO semantics across every scheme.
func TestQueueFIFO(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newQueue(t, scheme, 1)
			defer d.Close()
			h := hs[0]
			if _, ok := h.Dequeue(); ok {
				t.Fatal("empty queue dequeued")
			}
			for i := uint64(1); i <= 100; i++ {
				h.Enqueue(i)
			}
			for i := uint64(1); i <= 100; i++ {
				v, ok := h.Dequeue()
				if !ok || v != i {
					t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := h.Dequeue(); ok {
				t.Fatal("drained queue dequeued")
			}
		})
	}
}

// TestQueueSequentialModel: arbitrary op sequences match a slice model.
func TestQueueSequentialModel(t *testing.T) {
	f := func(ops []uint16) bool {
		_, d, hs := newQueue(nil, "hp", 1)
		defer d.Close()
		h := hs[0]
		var model []uint64
		for _, op := range ops {
			if op%2 == 0 {
				h.Enqueue(uint64(op))
				model = append(model, uint64(op))
			} else {
				v, ok := h.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueConcurrentConservation: under every scheme, N producers and N
// consumers conserve values: sum enqueued == sum dequeued + sum drained,
// with no loss, duplication, or use-after-free (poisoned pool + gen tags
// catch those).
func TestQueueConcurrentConservation(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 6
			iters := 20000
			if testing.Short() {
				iters = 4000
			}
			q, d, hs := newQueue(t, scheme, workers)
			var wg sync.WaitGroup
			sums := make([]struct{ in, out uint64 }, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := uint64(w)*0x9E3779B9 + 7
					for i := 0; i < iters; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						if w%2 == 0 {
							v := rng>>16 | 1
							h.Enqueue(v)
							sums[w].in += v
						} else if v, ok := h.Dequeue(); ok {
							sums[w].out += v
						}
					}
				}(w)
			}
			wg.Wait()
			var in, out uint64
			for _, s := range sums {
				in += s.in
				out += s.out
			}
			for {
				v, ok := hs[0].Dequeue()
				if !ok {
					break
				}
				out += v
			}
			if in != out {
				t.Fatalf("value conservation broken: in=%d out=%d", in, out)
			}
			d.Close()
			if scheme != "none" {
				// Only the dummy node remains.
				if live := q.Pool().Stats().Live; live != 1 {
					t.Fatalf("leaked %d nodes (want 1 dummy)", live)
				}
			}
		})
	}
}

// TestQueueReclaimsDuringRun: dequeue-heavy traffic must recycle dummies
// online, not just at Close.
func TestQueueReclaimsDuringRun(t *testing.T) {
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense", "ebr", "rc"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newQueue(t, scheme, 2)
			defer d.Close()
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					for i := 0; i < 8000; i++ {
						h.Enqueue(uint64(i))
						h.Dequeue()
						if i%64 == 0 {
							// On GOMAXPROCS=1 the whole loop fits in one
							// scheduler timeslice, so without yields the
							// two workers run back-to-back and the
							// quiescence-based schemes can never rotate
							// epochs (each worker sees the other's stale
							// local epoch forever). Yielding restores the
							// interleaving the test is about.
							runtime.Gosched()
						}
					}
				}(w)
			}
			wg.Wait()
			if st := d.Stats(); st.Freed == 0 {
				t.Fatalf("%s freed nothing during the run: %+v", scheme, st)
			}
		})
	}
}

// TestQueueLen: Len reflects quiesced contents.
func TestQueueLen(t *testing.T) {
	q, d, hs := newQueue(t, "qsbr", 1)
	defer d.Close()
	for i := 0; i < 7; i++ {
		hs[0].Enqueue(uint64(i))
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d, want 7", q.Len())
	}
	hs[0].Dequeue()
	if q.Len() != 6 {
		t.Fatalf("Len = %d, want 6", q.Len())
	}
	if n := hs[0].Drain(); n != 6 {
		t.Fatalf("Drain = %d, want 6", n)
	}
}
