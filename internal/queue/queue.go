// Package queue implements the Michael–Scott lock-free FIFO queue
// (Michael & Scott, PODC 1996) over the mem+reclaim substrate, with the
// hazard pointer discipline from Michael's original hazard pointer paper
// ([25] — the queue is its canonical worked example, needing two hazard
// pointers per worker).
//
// The queue is not part of the paper's evaluation; it is here because a
// reclamation library is adopted through its clients, and the MS queue is
// the classic SMR client with a retire pattern the sets do not exercise:
// the dequeued DUMMY node is retired while its successor's value is still
// being read through it, so a premature free corrupts an in-flight
// dequeue. Every scheme (QSBR, HP, Cadence, QSense, EBR, RC) runs it
// through the same three-call interface.
package queue

import (
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// HPs is the number of hazard pointers a queue handle uses.
const HPs = 2

const (
	hpHead = 0
	hpNext = 1
)

type node struct {
	val  uint64
	next atomic.Uint64 // mem.Ref of successor; 0 at the tail
	_    [40]byte
}

// Config controls queue construction.
type Config struct {
	// MaxSlots bounds the node pool (default mem default).
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// Queue is the shared structure. Obtain one Handle per worker.
type Queue struct {
	pool *mem.Pool[node]
	head atomic.Uint64 // Ref of the dummy node
	tail atomic.Uint64
}

// New creates an empty queue (a single dummy node, per Michael–Scott).
func New(cfg Config) *Queue {
	pool := mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "queue"})
	q := &Queue{pool: pool}
	dummy, d := pool.Alloc()
	d.next.Store(0)
	q.head.Store(uint64(dummy))
	q.tail.Store(uint64(dummy))
	return q
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (q *Queue) FreeNode(r mem.Ref) { q.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (q *Queue) Pool() *mem.Pool[node] { return q.pool }

// Len walks the queue without synchronization; only meaningful quiesced.
func (q *Queue) Len() int {
	n := 0
	r := mem.Ref(q.pool.Get(mem.Ref(q.head.Load())).next.Load())
	for !r.IsNil() {
		n++
		r = mem.Ref(q.pool.Get(r).next.Load())
	}
	return n
}

// Handle is a worker's accessor. Not safe for concurrent use; create one
// per worker.
type Handle struct {
	q     *Queue
	guard reclaim.Guard
	cache *mem.Cache[node]
}

// NewHandle binds a worker's guard to the queue.
func (q *Queue) NewHandle(g reclaim.Guard) *Handle {
	return &Handle{q: q, guard: g, cache: q.pool.NewCache(0)}
}

// Enqueue appends v at the tail.
func (h *Handle) Enqueue(v uint64) {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.q.pool
	nref, n := h.cache.Alloc()
	n.val = v
	n.next.Store(0)
	for {
		t := mem.Ref(h.q.tail.Load())
		// Protect the observed tail, then validate it is still the
		// tail (§3.2 step 4): a stale tail may already be retired.
		h.guard.Protect(hpHead, t)
		if mem.Ref(h.q.tail.Load()) != t {
			continue
		}
		next := mem.Ref(pool.Get(t).next.Load())
		if !next.IsNil() {
			// Tail lags: help swing it, then retry.
			h.q.tail.CompareAndSwap(uint64(t), uint64(next))
			continue
		}
		if pool.Get(t).next.CompareAndSwap(0, uint64(nref)) {
			// Linked; swing the tail (may fail: someone helped).
			h.q.tail.CompareAndSwap(uint64(t), uint64(nref))
			return
		}
	}
}

// Dequeue removes and returns the oldest value; ok=false when empty.
func (h *Handle) Dequeue() (v uint64, ok bool) {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.q.pool
	for {
		hd := mem.Ref(h.q.head.Load())
		h.guard.Protect(hpHead, hd)
		if mem.Ref(h.q.head.Load()) != hd {
			continue
		}
		t := mem.Ref(h.q.tail.Load())
		next := mem.Ref(pool.Get(hd).next.Load())
		// Protect the successor before reading through it; validate
		// via head so the pair (hd, next) is consistent.
		h.guard.Protect(hpNext, next)
		if mem.Ref(h.q.head.Load()) != hd {
			continue
		}
		if next.IsNil() {
			return 0, false // empty
		}
		if hd == t {
			// Tail lags behind head: help and retry.
			h.q.tail.CompareAndSwap(uint64(t), uint64(next))
			continue
		}
		// Read the value BEFORE swinging head: after the CAS another
		// dequeuer may retire-and-free `next` (it becomes the dummy).
		val := pool.Get(next).val
		if h.q.head.CompareAndSwap(uint64(hd), uint64(next)) {
			// The old dummy is ours to retire.
			h.guard.Retire(hd)
			return val, true
		}
	}
}

// Drain dequeues everything through h (teardown helper for tests and
// examples; concurrent use is fine but pointless).
func (h *Handle) Drain() int {
	n := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			return n
		}
		n++
	}
}
