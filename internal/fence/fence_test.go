package fence

import (
	"testing"
	"time"
)

func TestZeroModelIsFree(t *testing.T) {
	var m Model
	if m.Cost() != 0 {
		t.Fatal("zero model must report zero cost")
	}
	t0 := time.Now()
	for i := 0; i < 1000; i++ {
		m.Full()
	}
	if d := time.Since(t0); d > 5*time.Millisecond {
		t.Fatalf("zero model too slow: %v for 1000 fences", d)
	}
}

func TestNewModelNonPositive(t *testing.T) {
	m := NewModel(0)
	if m.iters != 0 {
		t.Fatal("cost<=0 must produce a free model")
	}
	m = NewModel(-time.Second)
	if m.iters != 0 {
		t.Fatal("negative cost must produce a free model")
	}
}

func TestCalibration(t *testing.T) {
	ns := NsPerIteration()
	if ns <= 0 || ns > 1000 {
		t.Fatalf("implausible calibration: %v ns/iter", ns)
	}
	if NsPerIteration() != ns {
		t.Fatal("calibration must be cached")
	}
}

func TestModelLatencyOrder(t *testing.T) {
	// A 10x more expensive model should take measurably longer. We assert
	// a loose factor (>2x) to stay robust on noisy CI machines.
	cheap := NewModel(20 * time.Nanosecond)
	dear := NewModel(200 * time.Nanosecond)
	const n = 200000
	measure := func(m *Model) time.Duration {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			m.Full()
		}
		return time.Since(t0)
	}
	measure(cheap) // warm-up
	dc := measure(cheap)
	dd := measure(dear)
	if dd < dc*2 {
		t.Fatalf("200ns model (%v) not measurably dearer than 20ns model (%v)", dd, dc)
	}
}

func TestModelApproximatesCost(t *testing.T) {
	m := NewModel(100 * time.Nanosecond)
	const n = 100000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		m.Full()
	}
	per := time.Since(t0) / n
	// Within a generous band: spin calibration plus loop overhead.
	if per < 30*time.Nanosecond || per > 2*time.Microsecond {
		t.Fatalf("per-fence latency %v wildly off a 100ns target", per)
	}
}
