// Package fence models the cost of memory-barrier instructions.
//
// The paper's central performance argument is that the classic hazard
// pointer scheme pays an mfence-class instruction ("hundreds of processor
// cycles", §3.2) after every hazard pointer store during traversal, while
// Cadence's stores need no fence. Go complicates a literal reproduction: a
// sync/atomic store is already sequentially consistent (XCHG on amd64), so
// the *ordering* a fence would provide is inherent and the relative latency
// gap between a fenced and an unfenced publication collapses.
//
// This package therefore restores the gap with an explicit latency model: a
// Model represents a fence cost in nanoseconds, paid as a calibrated
// busy-spin by schemes that fence (classic HP), and not paid by schemes that
// do not (Cadence, QSense). The default of 50ns corresponds to ~100 cycles
// on the paper's 2.1 GHz testbed — the low end of "hundreds of processor
// cycles" (§3.2) — so the reproduced HP penalty is, if anything,
// understated. DESIGN.md §2 and EXPERIMENTS.md discuss the substitution and
// its observable effects.
package fence

import (
	"sync"
	"time"
)

// DefaultCost is the modeled latency of one full memory fence: ~100 cycles
// on the paper's 2.1 GHz Opterons ("hundreds of processor cycles", §3.2).
const DefaultCost = 50 * time.Nanosecond

// Model is a fence latency model. The zero value is a free fence (no cost),
// useful for ablations.
//
// A Model must not be shared across concurrently-fencing goroutines: its
// sink field is written on every Full call, and sharing it would add real
// cross-core cache-line contention that the *model* is not supposed to
// have (a hardware mfence stalls only its own core). Create one Model per
// worker; it is a few bytes.
type Model struct {
	iters int
	cost  time.Duration
	// sink defeats dead-code elimination of the spin loop. Written only
	// by the owning worker and read by nobody else, so it is race-free;
	// padded so adjacent Models never share a cache line.
	sink uint32
	_    [52]byte
}

// NewModel returns a model that makes Full() consume approximately cost.
func NewModel(cost time.Duration) *Model {
	if cost <= 0 {
		return &Model{}
	}
	return &Model{iters: itersFor(cost), cost: cost}
}

// Cost returns the latency this model was built for.
func (m *Model) Cost() time.Duration { return m.cost }

// Full pays the modeled latency of a full memory barrier. In Go the ordering
// itself is provided by the atomic store that precedes this call; Full
// models only the stall an mfence would add on the paper's hardware.
func (m *Model) Full() {
	if m.iters > 0 {
		m.sink = spin(m.iters, m.sink)
	}
}

//go:noinline
func spin(n int, seed uint32) uint32 {
	x := seed ^ 0x9e3779b9
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
	}
	return x
}

var (
	calOnce  sync.Once
	nsPerIt  float64
	calIters = 1 << 20
)

// NsPerIteration reports the calibrated duration of one spin iteration on
// this machine. The first call measures; later calls return the cached value.
func NsPerIteration() float64 {
	calOnce.Do(func() {
		// Warm up, then take the best of three to dodge scheduler noise.
		s := spin(calIters, 0)
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			s = spin(calIters, s)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		calSink = s
		nsPerIt = float64(best.Nanoseconds()) / float64(calIters)
		if nsPerIt <= 0 {
			nsPerIt = 0.5 // pathological timer; assume ~2 iters/ns
		}
	})
	return nsPerIt
}

var calSink uint32

func itersFor(cost time.Duration) int {
	it := int(float64(cost.Nanoseconds()) / NsPerIteration())
	if it < 1 {
		it = 1
	}
	return it
}
