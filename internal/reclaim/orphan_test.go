package reclaim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qsense/internal/mem"
)

// mkOrphan builds a domain for the stranded-backlog tests: manual rooster
// (deterministic ticks), thresholds low enough that a handful of driver
// operations complete a grace period, and a hard cap at the initial size
// (these tests depend on exhaustion keeping a vacated slot vacant).
func mkOrphan(t *testing.T, scheme string, workers int) (*mem.Pool[tnode], Domain) {
	t.Helper()
	pool := newTestPool()
	cfg := Config{Workers: workers, HardMaxWorkers: workers, HPs: 1, Free: freeInto(pool), Q: 1, R: 4, ManualRooster: true}
	if scheme == "qsense" {
		cfg.C = LegalC(cfg)
	}
	d, err := New(scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return pool, d
}

// TestStrandedBacklogIsAdopted is the acceptance scenario of the orphan
// redesign: a worker retires nodes on a leased guard, Releases, and its
// slot is never leased again (the rest of the arena stays pinned by live
// leases, and the LIFO freelist is never popped). The stranded nodes must
// still be freed — by other workers' quiescent states, scans, sweeps or
// rooster passes adopting the orphaned backlog — driving Pending to 0 with
// AdoptedNodes > 0. Before the orphan list, this backlog waited for the
// vacated slot's next tenant forever.
func TestStrandedBacklogIsAdopted(t *testing.T) {
	const retires = 8
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			pool, d := mkOrphan(t, scheme, 3)

			leaver, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			// The rest of the arena: leased and held for the whole test,
			// so no Acquire can ever hand the leaver's slot back out.
			helperA, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			helperB, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}

			// The epoch schemes strand automatically (no grace period has
			// elapsed at Release) and cadence/qsense strand via the
			// old-enough rule (the manual rooster sits at tick 0). HP and
			// RC free anything unprotected right in the release scan, so a
			// helper must hold one node to force a strand.
			refs := make([]mem.Ref, retires)
			for i := range refs {
				refs[i] = allocNode(pool, uint64(i))
			}
			if scheme == "hp" || scheme == "rc" {
				helperA.Protect(0, refs[0])
			}
			if scheme == "ibr" {
				// ibr strands via an open reservation: helperA's interval
				// [e,e] overlaps every node's lifetime (birth 0 <= e <= stamp),
				// so the leaver's release-time scans keep the whole backlog.
				helperA.Begin()
			}
			for _, r := range refs {
				leaver.Retire(r)
			}
			d.Release(leaver)

			if scheme == "none" {
				// The leaky baseline has nothing to orphan or adopt.
				if st := d.Stats(); st.OrphanedNodes != 0 || st.AdoptedNodes != 0 {
					t.Fatalf("none orphaned/adopted %d/%d nodes", st.OrphanedNodes, st.AdoptedNodes)
				}
				return
			}
			if st := d.Stats(); st.OrphanedNodes == 0 {
				t.Fatalf("Release freed nothing yet orphaned nothing: %+v", st)
			}
			helperA.Protect(0, mem.Ref(0)) // drop the hold; adoption may proceed

			// Drive the remaining workers (and, for the deferred schemes,
			// the rooster) until the backlog is gone. No Acquire calls:
			// the leaver's slot stays vacant throughout.
			rooster := func() {}
			switch dd := d.(type) {
			case *Cadence:
				rooster = dd.Rooster().Step
			case *QSense:
				rooster = dd.Rooster().Step
			}
			for i := 0; i < 200 && d.Stats().Pending > 0; i++ {
				rooster()
				helperA.Begin()
				helperB.Begin()
				if scheme == "hp" || scheme == "rc" {
					// Pointer schemes adopt on scan/sweep passes, which
					// trigger every R retires; retire disposable nodes to
					// drive them (the junk itself frees on those passes).
					helperA.Retire(allocNode(pool, ^uint64(i)))
				}
			}

			st := d.Stats()
			if st.Pending != 0 {
				t.Fatalf("%s: %d nodes still pending with the slot vacant: %+v", scheme, st.Pending, st)
			}
			if st.AdoptedNodes == 0 {
				t.Fatalf("%s: backlog drained without adoption?! %+v", scheme, st)
			}
			for _, r := range refs {
				if pool.Valid(r) {
					t.Fatalf("%s: stranded node %v still live", scheme, r)
				}
			}
		})
	}
}

// TestOrphansCountAgainstMemoryLimit: orphaned nodes are still Pending —
// moving a backlog to the orphan list must not launder it past MemoryLimit.
// Only adoption (real frees) brings Pending back down; Failed stays sticky.
func TestOrphansCountAgainstMemoryLimit(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), Q: 1, MemoryLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	leaver, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	active, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		leaver.Retire(allocNode(pool, uint64(i)))
	}
	d.Release(leaver)
	st := d.Stats()
	if st.OrphanedNodes != 8 || st.Pending != 8 {
		t.Fatalf("orphaned/pending = %d/%d, want 8/8", st.OrphanedNodes, st.Pending)
	}
	if st.Failed {
		t.Fatal("failed below MemoryLimit")
	}
	// Push past the limit: 8 orphans + 3 fresh retires = 11 > 10.
	for i := 0; i < 3; i++ {
		active.Retire(allocNode(pool, 100+uint64(i)))
	}
	if !d.Failed() {
		t.Fatal("orphans did not count against MemoryLimit")
	}
	for i := 0; i < 8 && d.Stats().Pending > 0; i++ {
		active.Begin()
	}
	st = d.Stats()
	if st.Pending != 0 {
		t.Fatalf("Pending = %d after adoption and epoch turns, want 0", st.Pending)
	}
	if st.AdoptedNodes != 8 {
		t.Fatalf("AdoptedNodes = %d, want 8", st.AdoptedNodes)
	}
	if !st.Failed {
		t.Fatal("Failed must stay sticky after the breach")
	}
}

// TestAcquireWaitBlocksUntilRelease: the waiter parks while the arena is
// exhausted and is woken by Release — no spinning, no ErrNoSlots.
func TestAcquireWaitBlocksUntilRelease(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			_, d := mkOrphan(t, scheme, 1)
			g, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			got := make(chan Guard)
			go func() {
				g2, err := d.AcquireWait(context.Background())
				if err != nil {
					t.Error(err)
				}
				got <- g2
			}()
			select {
			case <-got:
				t.Fatal("AcquireWait returned while the arena was exhausted")
			case <-time.After(20 * time.Millisecond):
			}
			d.Release(g)
			select {
			case g2 := <-got:
				d.Release(g2)
			case <-time.After(2 * time.Second):
				t.Fatal("AcquireWait not woken by Release")
			}
		})
	}
}

// TestAcquireWaitHonorsContext: a done context unblocks the waiter with
// ctx.Err(), and an already-cancelled context fails fast even when slots
// are exhausted.
func TestAcquireWaitHonorsContext(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 1, HardMaxWorkers: 1, HPs: 1, Free: freeInto(pool), Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Release(g)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d.AcquireWait(ctx)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("AcquireWait returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock AcquireWait")
	}
	// With a free slot, AcquireWait succeeds regardless of pending cancel
	// racing — but a context cancelled BEFORE the arena empties must not
	// leak a lease if the slot race is lost. Exercise the fast-fail path.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := d.AcquireWait(ctx2); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil (fast path) or context.Canceled", err)
	}
}

// TestOrphanAdoptionChurn is the -race stress mixing everything the PR
// adds: goroutines block in AcquireWait, retire against a shared mailbox,
// and Release with live backlogs, so orphan pushes, concurrent adoption
// from every worker's passes, and waiter wake-ups all interleave.
func TestOrphanAdoptionChurn(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			const slots = 3
			workers, rounds, opsPer := 12, 4, 60
			if testing.Short() {
				workers, rounds = 8, 2
			}
			pool := newTestPool()
			// Capped: the AcquireWait parking/waking machinery only engages
			// under backpressure.
			cfg := Config{Workers: slots, HardMaxWorkers: slots, HPs: 1, Free: freeInto(pool), Q: 2, R: 4}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mb := newMailbox(pool, 16)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if v, ok := r.(*mem.Violation); ok {
								errs <- v
								return
							}
							panic(r)
						}
					}()
					rng := uint64(id)*0x9e3779b9 + 1
					for round := 0; round < rounds; round++ {
						g, err := d.AcquireWait(context.Background())
						if err != nil {
							errs <- err
							return
						}
						for i := 0; i < opsPer; i++ {
							g.Begin()
							rng = rng*6364136223846793005 + 1442695040888963407
							slot := int(rng>>33) % len(mb.slots)
							if rng&1 == 0 {
								mb.put(g, slot, rng)
							} else {
								mb.take(g, slot)
							}
						}
						g.ClearHPs()
						// Release mid-stream: whatever limbo this guard
						// accumulated is orphaned and must be adopted by
						// the other goroutines' ongoing activity.
						d.Release(g)
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: %v", scheme, err)
			}
			st := d.Stats()
			if st.AcquiredHandles != st.ReleasedHandles {
				t.Fatalf("%s: %d leases vs %d releases", scheme, st.AcquiredHandles, st.ReleasedHandles)
			}
			g, err := d.Acquire()
			if err != nil {
				t.Fatalf("%s: arena not fully recycled: %v", scheme, err)
			}
			mb.drain(g)
			d.Release(g)
			d.Close()
			if scheme != "none" {
				if st := d.Stats(); st.Pending != 0 {
					t.Fatalf("%s: %d pending after Close", scheme, st.Pending)
				}
				if live := pool.Stats().Live; live != 0 {
					t.Fatalf("%s: %d nodes leaked", scheme, live)
				}
			}
		})
	}
}
