package reclaim

// Elastic arena geometry — the publish-once segment directory behind every
// per-slot table in a domain.
//
// The paper freezes the worker set N at construction; PR 1's leasing
// relaxed *who* holds a slot but kept the arena fixed, so a
// goroutine-per-request server still died on ErrNoSlots sizing guesses.
// This file removes the fixed-N assumption the same way mem.Pool removes
// the fixed-heap assumption: capacity lives in segments behind a directory
// whose entries are published once and never move. Segment 0 holds the
// initial (soft) Config.Workers slots; each growth appends one segment that
// doubles total capacity, clamped to the hard cap (Config.HardMaxWorkers,
// or MaxArenaSlots when elastic). Slot indices are dense and stable, so
// everything keyed by slot index — guards, hazard records, the public
// containers' handle caches — survives growth untouched.
//
// Concurrency contract. Growth publishes a segment pointer with an atomic
// store and only then advances the published-slot count (`high`). Readers
// load `high` first and index below it, so a bound loaded from high is
// always covered by published segments. The count is monotone, which is
// what makes scans and epoch checks over a growing arena exactly as sound
// as over a fixed one: a slot can only be leased after its segment and the
// covering high were published (the freelist push that hands it out comes
// later in the same growth critical section), so — Go atomics being
// sequentially consistent — any protection or epoch announcement visible
// to a scan lives below the high that scan loaded. A slot published after
// the scan's high load can hold only protections published after that
// load, which Michael's retire-before-snapshot argument (and the epoch
// schemes' join-quiescent argument) already tolerates.

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// MaxArenaSlots is the library ceiling for elastic arena growth, used when
// no HardMaxWorkers cap is configured. It bounds the segment directory; at
// the default doubling schedule a domain reaches it in ~20 growths.
const MaxArenaSlots = 1 << 20

// segOf maps slot index i to its (segment, in-segment offset) for a
// directory whose segment 0 holds init slots and whose segment s >= 1
// holds init<<(s-1) — so total capacity doubles with every segment.
func segOf(i, init uint32) (int, uint32) {
	if i < init {
		return 0, i
	}
	s := bits.Len32(i / init)
	return s, i - init<<(s-1)
}

// segBounds returns segment s's slot range [lo, hi), clamped to cap.
func segBounds(s int, init, cap uint32) (uint32, uint32) {
	if s == 0 {
		return 0, min(init, cap)
	}
	return init << (s - 1), min(init<<s, cap)
}

// numSegs returns how many segments cover cap slots at initial size init.
func numSegs(init, cap uint32) int {
	n := 1
	for cov := uint64(init); cov < uint64(cap); cov <<= 1 {
		n++
	}
	return n
}

// arena is a scheme's segmented per-slot table (guards, hazard records):
// entries are built by mk at publication and never move. at/len are
// lock-free and safe concurrently with grow; grow calls are serialized by
// the slot pool's growth lock.
type arena[T any] struct {
	init uint32
	cap  uint32
	high atomic.Uint32 // published slot count; monotone
	mk   func(i int) T
	seg0 []T // segment 0, immutable after construction: the no-growth fast path
	segs []atomic.Pointer[[]T]
}

// newArena builds the directory and publishes segment 0 (the initial soft
// size), so slots [0, init) exist from construction exactly as in the
// fixed-arena model.
func newArena[T any](init, hardMax int, mk func(i int) T) *arena[T] {
	a := &arena[T]{
		init: uint32(init),
		cap:  uint32(hardMax),
		mk:   mk,
		segs: make([]atomic.Pointer[[]T], numSegs(uint32(init), uint32(hardMax))),
	}
	a.grow(init)
	a.seg0 = *a.segs[0].Load()
	return a
}

// at returns slot i's entry. i must lie below a previously loaded len()
// (or have been handed out by the slot pool, which publishes later).
// Indices in segment 0 — every index of a domain that never grew — take
// the direct path, so the elastic directory costs nothing until growth
// actually happens.
func (a *arena[T]) at(i int) T {
	if u := uint32(i); u < a.init {
		return a.seg0[u]
	}
	s, off := segOf(uint32(i), a.init)
	return (*a.segs[s].Load())[off]
}

// len returns the published slot count — the iteration bound for scans,
// epoch checks and presence sweeps. See the file comment for why a bound
// loaded here is sound against concurrent growth.
func (a *arena[T]) len() int { return int(a.high.Load()) }

// grow publishes whole segments until at least n slots exist (no-op if
// they already do). Callers serialize growth; n is always a segment
// boundary because the slot pool grows segment-at-a-time.
func (a *arena[T]) grow(n int) {
	hi := a.high.Load()
	for int(hi) < n {
		s, _ := segOf(hi, a.init)
		lo, end := segBounds(s, a.init, a.cap)
		seg := make([]T, end-lo)
		for j := range seg {
			seg[j] = a.mk(int(lo) + j)
		}
		a.segs[s].Store(&seg)
		a.high.Store(end)
		hi = end
	}
}

// SlotTable is a per-slot side table for a domain's clients (the public
// containers' structure-handle caches, the harness): entry w belongs
// exclusively to slot w's current leaseholder, and the table grows with
// the domain's elastic guard arena — Get publishes the covering segment on
// first touch. Entries start as T's zero value; the slot owner fills them
// (slot ownership serializes all access to one entry, so no further
// locking is needed).
type SlotTable[T any] struct {
	init uint32
	cap  uint32
	mu   sync.Mutex
	segs []atomic.Pointer[[]T]
}

// NewSlotTable sizes a table for a domain built with the same initial and
// hardMax (0 hardMax = elastic, like Config.HardMaxWorkers).
func NewSlotTable[T any](initial, hardMax int) *SlotTable[T] {
	if initial <= 0 {
		initial = 1
	}
	if hardMax <= 0 {
		hardMax = MaxArenaSlots
	}
	if hardMax < initial {
		hardMax = initial
	}
	return &SlotTable[T]{
		init: uint32(initial),
		cap:  uint32(hardMax),
		segs: make([]atomic.Pointer[[]T], numSegs(uint32(initial), uint32(hardMax))),
	}
}

// Get returns a pointer to slot w's entry, publishing its segment first if
// this is the segment's first touch. The hot path is two loads.
func (t *SlotTable[T]) Get(w int) *T {
	s, off := segOf(uint32(w), t.init)
	seg := t.segs[s].Load()
	if seg == nil {
		t.mu.Lock()
		if seg = t.segs[s].Load(); seg == nil {
			lo, end := segBounds(s, t.init, t.cap)
			fresh := make([]T, end-lo)
			seg = &fresh
			t.segs[s].Store(seg)
		}
		t.mu.Unlock()
	}
	return &(*seg)[off]
}
