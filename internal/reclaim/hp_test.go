package reclaim

import (
	"testing"

	"qsense/internal/mem"
)

func newHPDomain(t *testing.T, pool *mem.Pool[tnode], workers, k, r int) *HP {
	t.Helper()
	d, err := NewHP(Config{Workers: workers, HPs: k, Free: freeInto(pool), R: r, FenceCost: -1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHPScanFreesUnprotected(t *testing.T) {
	pool := newTestPool()
	d := newHPDomain(t, pool, 1, 2, 4)
	g := d.Guard(0)
	var refs []mem.Ref
	for i := 0; i < 4; i++ { // 4th retire triggers the scan (R=4)
		r := allocNode(pool, uint64(i))
		refs = append(refs, r)
		g.Retire(r)
	}
	for _, r := range refs {
		if pool.Valid(r) {
			t.Fatalf("unprotected %v survived a scan", r)
		}
	}
	if st := d.Stats(); st.Scans != 1 || st.Freed != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHPProtectedNodeSurvivesScan(t *testing.T) {
	pool := newTestPool()
	d := newHPDomain(t, pool, 2, 2, 4)
	victim := d.Guard(0)
	reader := d.Guard(1)
	r := allocNode(pool, 7)
	reader.Protect(0, r) // reader holds a hazardous reference
	victim.Retire(r)
	for i := 0; i < 16; i++ { // many scans
		victim.Retire(allocNode(pool, uint64(i)))
	}
	if !pool.Valid(r) {
		t.Fatal("protected node was freed")
	}
	if pool.Get(r).val != 7 {
		t.Fatal("protected node corrupted")
	}
	// Releasing the HP lets the next scan free it.
	reader.Protect(0, 0)
	for i := 0; i < 8; i++ {
		victim.Retire(allocNode(pool, uint64(i)))
	}
	if pool.Valid(r) {
		t.Fatal("released node not reclaimed")
	}
}

func TestHPOwnGuardProtectionRespected(t *testing.T) {
	// A guard's own hazard pointers must also pin nodes it retires.
	pool := newTestPool()
	d := newHPDomain(t, pool, 1, 2, 2)
	g := d.Guard(0)
	r := allocNode(pool, 1)
	g.Protect(1, r)
	g.Retire(r)
	for i := 0; i < 8; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if !pool.Valid(r) {
		t.Fatal("own-protected node freed")
	}
	g.ClearHPs()
	for i := 0; i < 4; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if pool.Valid(r) {
		t.Fatal("node survived after ClearHPs")
	}
}

func TestHPProtectTagBitsIgnored(t *testing.T) {
	// Data structures protect refs loaded from link words that may carry
	// mark bits; protection applies to the node regardless.
	pool := newTestPool()
	d := newHPDomain(t, pool, 1, 1, 2)
	g := d.Guard(0)
	r := allocNode(pool, 1)
	g.Protect(0, r.WithTag(1))
	g.Retire(r.WithTag(3)) // retire also strips tags
	for i := 0; i < 6; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if !pool.Valid(r) {
		t.Fatal("tagged protection not honored")
	}
}

func TestHPScanThreshold(t *testing.T) {
	pool := newTestPool()
	d := newHPDomain(t, pool, 1, 1, 10)
	g := d.Guard(0)
	for i := 0; i < 9; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if d.Stats().Scans != 0 {
		t.Fatal("scan ran before R retires")
	}
	g.Retire(allocNode(pool, 9))
	if d.Stats().Scans != 1 {
		t.Fatal("scan did not run at R retires")
	}
}

func TestHPBoundedPendingUnderStall(t *testing.T) {
	// The robustness property QSBR lacks: a stalled worker holding K
	// hazard pointers delays at most K nodes; everyone else's garbage
	// keeps flowing. Pending stays bounded by N*K + N*R slack.
	pool := newTestPool()
	const workers, k, r = 4, 2, 8
	d := newHPDomain(t, pool, workers, k, r)
	stalled := d.Guard(0)
	pinned := allocNode(pool, 99)
	stalled.Protect(0, pinned) // stalls forever holding a reference
	active := d.Guard(1)
	bound := int64(workers*k + workers*r)
	for i := 0; i < 10000; i++ {
		active.Retire(allocNode(pool, uint64(i)))
		if p := d.Stats().Pending; p > bound {
			t.Fatalf("pending %d exceeded robust bound %d at iter %d", p, bound, i)
		}
	}
	if !pool.Valid(pinned) {
		t.Fatal("stalled worker's protected node freed — wait-freedom broken the wrong way")
	}
	d.Close()
}

func TestHPBeginIsCheap(t *testing.T) {
	// HP has no quiescent machinery; Begin must not allocate or count.
	pool := newTestPool()
	d := newHPDomain(t, pool, 1, 1, 4)
	g := d.Guard(0)
	allocs := testing.AllocsPerRun(100, func() { g.Begin() })
	if allocs != 0 {
		t.Fatalf("Begin allocates %v times", allocs)
	}
	if d.Stats().QuiescentStates != 0 {
		t.Fatal("HP must not declare quiescent states")
	}
}

func TestHPCloseDrains(t *testing.T) {
	pool := newTestPool()
	d := newHPDomain(t, pool, 2, 1, 100)
	g := d.Guard(0)
	other := d.Guard(1)
	r := allocNode(pool, 5)
	other.Protect(0, r)
	g.Retire(r)
	for i := 0; i < 5; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	d.Close() // drains even protected nodes: workers are done
	if pool.Stats().Live != 0 {
		t.Fatalf("leaked %d", pool.Stats().Live)
	}
	if d.Stats().Pending != 0 {
		t.Fatal("pending after Close")
	}
}

func TestHPManyGuardsSnapshotAll(t *testing.T) {
	// A node protected by the *last* guard must survive scans by the
	// first guard: the snapshot must cover every worker's record.
	pool := newTestPool()
	const workers = 8
	d := newHPDomain(t, pool, workers, 1, 2)
	r := allocNode(pool, 1)
	d.Guard(workers-1).Protect(0, r)
	g := d.Guard(0)
	g.Retire(r)
	for i := 0; i < 10; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if !pool.Valid(r) {
		t.Fatal("protection by another guard ignored")
	}
}
