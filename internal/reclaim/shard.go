package reclaim

// Sharded domain core — per-shard slot pools, orphan lists and flush
// targets behind a façade with the single-pool method surface.
//
// One global slot pool, one orphan list and one rooster flush target were
// the domain core's remaining points of cross-CPU traffic: every Acquire
// CASed one freelist head, every Release with backlog one orphan head, and
// every occupancy estimate read one pair of shared counters. Config.Shards
// splits the core into S independent units — each shard owns its own
// elastic slotPool (freelist, growMu, occupancy index, parking suffix), its
// own orphanList, its own lease/quiesce counters and its own recFlusher —
// which is the per-thread-locality shape the measured SMR implementations
// share (smr-benchmark) and the batch-crossing design Hyaline argues for:
// the unit of cross-shard handoff is a whole stamped orphan batch, moved
// with one CAS, never a node.
//
// # Index encoding
//
// Global slot indices interleave across shards: global = local*S + shard,
// so shard = global mod S and local = global div S. Two properties fall
// out. First, the initial globals are exactly [0, Workers) and dense —
// global w < Workers maps to local w/S, which lies below shard (w mod S)'s
// initial size |{g < Workers : g ≡ w (mod S)}| — so the positional
// Guard(w) contract and every SlotTable keyed by SlotIndex survive
// unchanged. Second, every published global stays below HardMaxWorkers, so
// side tables sized for the unsharded geometry need no resizing. At S=1
// the encoding is the identity and every façade method degenerates to the
// single pool's behaviour, byte-identical in Stats (regression-asserted by
// TestGoldenStatsShards1).
//
// # Shard selection
//
// lease picks a shard by power-of-two-choices over the pools' live
// occupancy, seeded by a stack-address hash — cheap per-goroutine affinity
// without any shared state — then steals from every sibling before growing
// any shard (capacity anywhere beats growth somewhere), and finally walks
// the shards growing until one yields a slot. Only when every shard is at
// its cap does Acquire fail.
//
// # Walk skipping
//
// Every reclamation walk iterates shards independently and skips a pool
// whose live count is zero — an idle or fully-parked shard costs nothing,
// not even its segment-0 state loads. Skipping is sound by the same edge
// occupancy.go's bitmap argument uses: a tenant's pool-live increment
// (markOccupied) precedes its every action in SC order, so a walk that
// loaded live==0 precedes everything that tenant ever published, which
// both the snapshot and the epoch-advance arguments already tolerate.

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"qsense/internal/mem"
	"qsense/internal/rooster"
)

// shardSize returns shard s's share of n slots under the interleaved
// encoding: the number of globals below n congruent to s mod S.
func shardSize(n, s, S int) int {
	sz := n / S
	if s < n%S {
		sz++
	}
	return sz
}

// shardedPool is the façade over S per-shard slotPools. All indices
// crossing its surface are global; the pools speak local indices only.
type shardedPool struct {
	pools []*slotPool
	tune  *tuner // shared across shards; retunes against summed capacity

	tuneMu sync.Mutex // serializes retuneShards across pools' growth locks

	// Waiter support for leaseWait, hoisted to the façade: a release on ANY
	// shard can satisfy a waiter, so the wake generation is domain-wide.
	wake    atomic.Pointer[chan struct{}]
	waiters atomic.Int32
}

// newShardedPool builds S pools splitting workers/hardMax by the
// interleaved encoding. onGrow publishes scheme state for one shard up to
// a LOCAL bound, before that shard's segment publishes (arena.go's
// ordering, per shard).
func newShardedPool(shards, workers, hardMax int, tune *tuner, onGrow func(shard, hi int)) *shardedPool {
	f := &shardedPool{pools: make([]*slotPool, shards), tune: tune}
	ch := make(chan struct{})
	f.wake.Store(&ch)
	for s := range f.pools {
		s := s
		var hook func(hi int)
		if onGrow != nil {
			hook = func(hi int) { onGrow(s, hi) }
		}
		f.pools[s] = newSlotPool(shardSize(workers, s, shards), shardSize(hardMax, s, shards), hook)
		f.pools[s].all = f
	}
	return f
}

func (f *shardedPool) shards() int { return len(f.pools) }

// pickShard is the power-of-two-choices shard selector. The hash seed is
// the address of a stack local: goroutine stacks are disjoint, so distinct
// goroutines spread across shards, while one goroutine's repeated leases
// mostly land on the same pair — per-goroutine affinity with zero shared
// state and no per-domain RMW.
func (f *shardedPool) pickShard() int {
	S := uint64(len(f.pools))
	if S == 1 {
		return 0
	}
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9e3779b97f4a7c15
	s1 := int((h >> 40) % S)
	s2 := int((h >> 16) % S)
	if f.pools[s2].live.Load() < f.pools[s1].live.Load() {
		return s2
	}
	return s1
}

// lease pops a slot: picked shard first, then every sibling
// (steal-before-grow), then growth shard by shard starting at the pick.
// Returns a GLOBAL index.
func (f *shardedPool) lease() (int, error) {
	S := len(f.pools)
	s := f.pickShard()
	for d := 0; d < S; d++ {
		sp := (s + d) % S
		if w := f.pools[sp].tryPop(); w >= 0 {
			f.pools[sp].countLease()
			return w*S + sp, nil
		}
	}
	for d := 0; d < S; d++ {
		sp := (s + d) % S
		p := f.pools[sp]
		for {
			if w := p.tryPop(); w >= 0 {
				p.countLease()
				return w*S + sp, nil
			}
			if !p.grow() {
				break
			}
		}
	}
	return -1, ErrNoSlots
}

// leaseWait is lease that parks while every shard is exhausted at its hard
// cap, woken by the next unlease on any shard, or fails with ctx.Err().
// The lost-wakeup argument of the single-pool leaseWait carries over with
// the wake generation hoisted domain-wide: the waiter loads the channel
// BEFORE its retry sweep over all pools, and every unlease pushes its slot
// BEFORE checking the waiter count.
func (f *shardedPool) leaseWait(ctx context.Context) (int, error) {
	if w, err := f.lease(); err == nil {
		return w, nil
	}
	f.waiters.Add(1)
	defer f.waiters.Add(-1)
	for {
		ch := *f.wake.Load()
		if w, err := f.lease(); err == nil {
			return w, nil
		}
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-ch:
		}
	}
}

// wakeWaiters closes out the current wake generation so every parked
// leaseWait retries; called by any pool's unlease that observed waiters.
func (f *shardedPool) wakeWaiters() {
	ch := make(chan struct{})
	old := f.wake.Swap(&ch)
	close(*old)
}

// unlease runs the release protocol for GLOBAL index i on its shard.
func (f *shardedPool) unlease(i int, drain func()) bool {
	S := len(f.pools)
	return f.pools[i%S].unlease(i/S, drain)
}

// pin claims GLOBAL slot i forever (positional Guard(w) path). The dense
// [0, Workers) contract decodes exactly onto the shards' initial segments
// (see the file comment), so the per-pool bounds check still rejects
// precisely the out-of-range globals.
func (f *shardedPool) pin(i int) bool {
	if i < 0 {
		f.pools[0].pin(i) // delegate for the contract panic
	}
	S := len(f.pools)
	return f.pools[i%S].pin(i / S)
}

// quiesceAt counts one quiescent state on GLOBAL slot id's shard, keeping
// the hot quiescent path free of cross-shard RMWs.
func (f *shardedPool) quiesceAt(id int) {
	f.pools[id%len(f.pools)].quiesce.Add(1)
}

// walkOccupied calls visit with the GLOBAL index of every occupied slot,
// shard by shard (ascending local order within a shard), and returns the
// number of slots visited. Pools with zero live occupancy are skipped
// outright — see the file comment for why that is sound.
func (f *shardedPool) walkOccupied(visit func(i int) bool) int {
	S := len(f.pools)
	n := 0
	for s, p := range f.pools {
		if p.live.Load() == 0 {
			continue
		}
		stopped := false
		n += p.walkOccupied(func(local int) bool {
			if !visit(local*S + s) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			break
		}
	}
	return n
}

// retuneShards re-derives the shared thresholds against the domain-wide
// unparked capacity (N = Σ unparked slots across shards). Called from any
// pool's capacity transition under that pool's growMu; tuneMu serializes
// concurrent transitions on different shards.
func (f *shardedPool) retuneShards() {
	if f.tune == nil {
		return
	}
	f.tuneMu.Lock()
	defer f.tuneMu.Unlock()
	var n, high int64
	for _, p := range f.pools {
		hi := int64(p.high.Load())
		high += hi
		n += hi - p.parkedSlots.Load()
	}
	f.tune.retune(n, high)
}

// fillArena aggregates the capacity subsystem into a Stats snapshot:
// sums across shards for the pre-sharding fields (byte-identical at S=1)
// plus the shard layout and the live-occupancy imbalance.
func (f *shardedPool) fillArena(s *Stats) {
	s.Shards = len(f.pools)
	minLive, maxLive := int64(1<<62), int64(-1)
	for _, p := range f.pools {
		s.ArenaSize += int(p.high.Load())
		s.HighWaterWorkers += int(p.highWater.Load())
		s.ArenaGrowths += p.grows.Load()
		s.ParkedSlots += int(p.parkedSlots.Load())
		s.SegmentParks += p.parks.Load()
		s.SegmentUnparks += p.unparks.Load()
		s.AcquiredHandles += p.acquired.Load()
		s.ReleasedHandles += p.released.Load()
		s.QuiescentStates += p.quiesce.Load()
		l := p.live.Load()
		minLive = min(minLive, l)
		maxLive = max(maxLive, l)
	}
	if len(f.pools) > 1 {
		s.ShardImbalance = int(maxLive - minLive)
	}
	if f.tune != nil {
		s.EffectiveR = int(f.tune.r.Load())
		s.EffectiveC = int(f.tune.c.Load())
	}
}

// shardedArena is a scheme's per-slot table split across shards: shard s
// holds the entries of every global ≡ s (mod S), at local index global/S.
type shardedArena[T any] struct {
	shards []*arena[T]
}

// newShardedArena builds S arenas; mk receives GLOBAL indices, so scheme
// state (guard ids, record lookups) keeps speaking globals.
func newShardedArena[T any](S, workers, hardMax int, mk func(global int) T) *shardedArena[T] {
	a := &shardedArena[T]{shards: make([]*arena[T], S)}
	for s := range a.shards {
		s := s
		a.shards[s] = newArena(shardSize(workers, s, S), shardSize(hardMax, s, S), func(local int) T {
			return mk(local*S + s)
		})
	}
	return a
}

// at returns GLOBAL slot i's entry.
func (a *shardedArena[T]) at(i int) T {
	if len(a.shards) == 1 {
		return a.shards[0].at(i)
	}
	S := len(a.shards)
	return a.shards[i%S].at(i / S)
}

// growShard publishes shard s's entries up to LOCAL bound hi (the pool
// growth hook's shard-local geometry).
func (a *shardedArena[T]) growShard(s, hi int) { a.shards[s].grow(hi) }

// forEach visits every published entry of every shard — the Close loops'
// iteration (globals are not dense across shards after uneven growth).
func (a *shardedArena[T]) forEach(fn func(T)) {
	for _, sh := range a.shards {
		for i, n := 0, sh.len(); i < n; i++ {
			fn(sh.at(i))
		}
	}
}

// shardedOrphans is the per-shard orphan limbo: a Release hands its whole
// stranded backlog to the releasing guard's OWN shard's list in one CAS
// (the Hyaline-style batched handoff — the batch, not the node, is the
// unit that crosses threads), and every adoption pass sweeps all lists.
type shardedOrphans struct {
	lists []orphanList
}

func (o *shardedOrphans) init(S int) { o.lists = make([]orphanList, S) }

// at returns GLOBAL slot id's shard list — the Release handoff target.
func (o *shardedOrphans) at(id int) *orphanList {
	return &o.lists[id%len(o.lists)]
}

// empty reports whether every shard's list is empty: one pointer load per
// shard, still the hot-path gate.
func (o *shardedOrphans) empty() bool {
	for i := range o.lists {
		if !o.lists[i].empty() {
			return false
		}
	}
	return true
}

// adoptEpoch sweeps every shard's list for epoch-evidence adoption.
func (o *shardedOrphans) adoptEpoch(global uint64, free func(mem.Ref), cnt *counters) {
	for i := range o.lists {
		o.lists[i].adoptEpoch(global, free, cnt)
	}
}

// adoptClaim sweeps every shard's list for RC claim adoption.
func (o *shardedOrphans) adoptClaim(table *countTable, free func(mem.Ref), cnt *counters) {
	for i := range o.lists {
		o.lists[i].adoptClaim(table, free, cnt)
	}
}

// detachAll detaches every shard's chain (index = shard). Callers pass the
// result to adoptDetachedAll after taking ONE snapshot; survivors go back
// to their own shard's list, preserving shard locality of the backlog.
func (o *shardedOrphans) detachAll() []*orphanBatch {
	var batches []*orphanBatch
	for i := range o.lists {
		if b := o.lists[i].detach(); b != nil {
			if batches == nil {
				batches = make([]*orphanBatch, len(o.lists))
			}
			batches[i] = b
		}
	}
	return batches
}

// adoptDetachedAll runs the deferred-scan adoption over chains detached by
// detachAll, against one shared snapshot, pushing each chain's survivors
// back to its own shard's list.
func (o *shardedOrphans) adoptDetachedAll(batches []*orphanBatch, snap hpSnapshot, mgr *rooster.Manager, tick uint64, cfg Config, cnt *counters) {
	for i, b := range batches {
		if b != nil {
			o.lists[i].adoptDetached(b, snap, mgr, tick, cfg, cnt)
		}
	}
}

// adoptIntervalAll runs ibr's interval adoption over chains detached by
// detachAll, against one reservation snapshot collected after the detach,
// pushing each chain's survivors back to its own shard's list.
func (o *shardedOrphans) adoptIntervalAll(batches []*orphanBatch, res []eraInterval, free func(mem.Ref), cnt *counters) {
	for i, b := range batches {
		if b != nil {
			o.lists[i].adoptInterval(b, res, free, cnt)
		}
	}
}

// drain frees everything on every shard's list — the Close path.
func (o *shardedOrphans) drain(free func(mem.Ref), cnt *counters) {
	for i := range o.lists {
		o.lists[i].drain(free, cnt)
	}
}

// adoptHook returns the rooster-pass adoption hook (Cadence, QSense): tick
// capture, then detach of EVERY shard's chain, then one snapshot across all
// shards — the same safety-critical ordering orphanList documented, with
// the detach now a per-shard sweep.
func (o *shardedOrphans) adoptHook(mgr *rooster.Manager, f *shardedPool, recs *shardedArena[*hprec], cfg Config, cnt *counters) func() {
	var buf []uint64
	return func() {
		if o.empty() {
			return
		}
		tick := mgr.Tick()
		batches := o.detachAll()
		snap, visited := snapshotShared(f, recs, buf)
		buf = snap.vals
		cnt.scanned.Add(uint64(visited))
		o.adoptDetachedAll(batches, snap, mgr, tick, cfg, cnt)
	}
}

// snapshotShared collects the non-nil shared HPs of all occupied records
// across every shard, skipping pools with zero live occupancy (see the
// file comment for the soundness edge), and reports how many records it
// visited. One snapshot serves all shards: Michael's argument needs every
// scanned node retired before the snapshot and every relevant protection
// published (and flushed) before the unlink — properties that do not care
// which shard the protector's slot lives on.
func snapshotShared(f *shardedPool, recs *shardedArena[*hprec], buf []uint64) (hpSnapshot, int) {
	vals := buf[:0]
	visited := 0
	for s, p := range f.pools {
		if p.live.Load() == 0 {
			continue
		}
		ra := recs.shards[s]
		visited += p.walkOccupied(func(local int) bool {
			r := ra.at(local)
			if !r.leased.Load() {
				return true
			}
			for i := range r.shared {
				if v := r.shared[i].v.Load(); v != 0 {
					vals = append(vals, v)
				}
			}
			return true
		})
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return hpSnapshot{vals: vals}, visited
}
