package reclaim

// Dynamic membership and eviction — the paper's §5.2 future work, built out.
//
// The paper notes two limitations of QSense as published: processes cannot
// join or leave while the system runs, and "if a process crashes and never
// recovers, QSense will switch to fallback mode and stay there forever". It
// sketches the fix — "mechanisms for processes to announce entering or
// leaving the system and for evicting participating processes that have not
// quiesced in a long time" — and leaves it open. This file implements that
// sketch for the two epoch-based schemes (QSBR and QSense), which are the
// ones a silent worker can block; HP and Cadence are per-node schemes and
// never wait on anybody.
//
// Leaving. A worker that will be idle for a while (blocking I/O, waiting on
// a queue) calls Leave *from a quiescent point* — holding no references to
// shared nodes, exactly the contract of Begin. An inactive worker is skipped
// by the grace-period check (epoch advances no longer wait for it) and by
// QSense's presence scan (the fast path can resume without it).
//
// Joining. Join re-enters the protocol: the guard adopts the current global
// epoch and, if at least three epochs elapsed while it was away, its limbo
// buckets have all passed full grace periods with respect to every worker
// that could have held references (the other workers advanced those epochs;
// the owner itself held nothing while away) and are freed wholesale.
//
// Eviction. With Config.EvictAfter > 0, a worker attempting an epoch
// advance treats any peer that has not declared a quiescent state for that
// long as crashed and marks it inactive. SAFETY ASSUMPTION (inherited from
// the paper's sketch): an evicted worker performs no further shared-memory
// accesses until it rejoins — eviction models *crash*, not mere slowness.
// For merely-slow workers leave eviction disabled; QSense's fallback path
// already keeps memory bounded without it. A worker that was evicted and
// comes back alive notices at its next quiescent state and rejoins through
// the same Join path (counted in Stats.Rejoins).

import (
	"sync/atomic"
	"time"
)

// Leaver is implemented by guards of the epoch-based schemes (QSBR,
// QSense). Callers that park workers for long stretches should Leave so
// reclamation proceeds without them, and Join before operating again.
type Leaver interface {
	// Leave removes this worker from grace-period accounting. Call only
	// from a quiescent point: no references to shared nodes held.
	Leave()
	// Join re-enters the protocol; returns with the worker current.
	Join()
}

// membership is the per-guard state shared by qsbrGuard and qsenseGuard.
type membership struct {
	active      atomic.Bool
	lastQuiesce atomic.Int64 // unix nanos of the last quiescent state
	leftEpoch   uint64       // global epoch observed at Leave (owner-only)
}

// init prepares a slot that no worker owns yet: inactive, so an unleased
// slot never blocks grace periods or the presence scan. The slot becomes
// active when a worker claims it — Domain.Acquire or the positional
// Guard(w) pin both run the guard's activate path.
func (m *membership) init() {
	m.active.Store(false)
	m.lastQuiesce.Store(time.Now().UnixNano())
}

// stampQuiesce records liveness for the eviction clock.
func (m *membership) stampQuiesce() {
	m.lastQuiesce.Store(time.Now().UnixNano())
}

// skipOrEvict reports whether an advance check may skip this peer: inactive
// peers are skipped outright; with eviction enabled, a peer whose last
// quiescent state is older than evictAfter is marked inactive first.
func (m *membership) skipOrEvict(evictAfter time.Duration, evictions *atomic.Uint64) bool {
	if !m.active.Load() {
		return true
	}
	if evictAfter > 0 && time.Now().UnixNano()-m.lastQuiesce.Load() > int64(evictAfter) {
		if m.active.CompareAndSwap(true, false) {
			evictions.Add(1)
		}
		return true
	}
	return false
}

// activate is the quiet join used when a worker claims an inactive slot
// (first pin, or an Acquire lease): adopt the global epoch, free limbo
// buckets that aged out while the slot was inactive, and start
// participating. Unlike Join it does not count a Rejoin — claiming a slot
// is lease bookkeeping (Stats.AcquiredHandles), not crash recovery.
// adopt/free run only on the false->true transition, so repeated positional
// Guard(w) calls stay cheap and never reset a live worker's epoch.
func (m *membership) activate(adopt func()) {
	if m.active.CompareAndSwap(false, true) {
		adopt()
	}
}

// --- QSBR ---

var _ Leaver = (*qsbrGuard)(nil)

// Leave implements Leaver.
func (g *qsbrGuard) Leave() {
	g.mem.leftEpoch = g.d.epoch.Load()
	g.mem.active.Store(false)
}

// Join implements Leaver.
func (g *qsbrGuard) Join() {
	g.rejoin()
	g.mem.active.Store(true)
}

// adopt catches the guard up with the protocol: adopt the current global
// epoch and free buckets that aged out while the worker was away (three
// epoch advances prove full grace periods for everything a previous tenant
// or the departed worker left in limbo). The tally flush keeps the shared
// counters exact at this pass boundary.
func (g *qsbrGuard) adopt() {
	global := g.d.epoch.Load()
	g.local.Store(global)
	g.mem.stampQuiesce()
	if global >= g.mem.leftEpoch+3 {
		for b := range g.limbo {
			g.freeBucket(b)
		}
		g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	}
}

// rejoin is adopt plus the Rejoins count — the Join/eviction-recovery path.
func (g *qsbrGuard) rejoin() {
	g.adopt()
	g.d.cnt.rejoins.Add(1)
}

// --- QSense ---

var _ Leaver = (*qsenseGuard)(nil)

// Leave implements Leaver.
func (g *qsenseGuard) Leave() {
	g.mem.leftEpoch = g.d.epoch.Load()
	g.mem.active.Store(false)
}

// Join implements Leaver.
func (g *qsenseGuard) Join() {
	g.rejoin()
	g.mem.active.Store(true)
}

// adopt mirrors qsbrGuard.adopt for the hybrid's guards.
func (g *qsenseGuard) adopt() {
	global := g.d.epoch.Load()
	g.local.Store(global)
	g.mem.stampQuiesce()
	if global >= g.mem.leftEpoch+3 {
		for b := range g.limbo {
			g.freeBucket(b)
		}
		g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	}
}

func (g *qsenseGuard) rejoin() {
	g.adopt()
	g.d.cnt.rejoins.Add(1)
}
