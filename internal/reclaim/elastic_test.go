package reclaim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qsense/internal/mem"
)

// TestSegGeometry pins the arena's segment arithmetic: every index below
// the cap maps into exactly one segment, offsets are contiguous, and the
// segment count covers the cap.
func TestSegGeometry(t *testing.T) {
	for _, init := range []uint32{1, 2, 3, 5, 8, 16} {
		for _, cap := range []uint32{init, init + 1, 4 * init, 4*init + 3, 64} {
			if cap < init {
				continue
			}
			n := numSegs(init, cap)
			covered := uint32(0)
			for s := 0; s < n; s++ {
				lo, hi := segBounds(s, init, cap)
				if lo != covered {
					t.Fatalf("init=%d cap=%d seg=%d: lo=%d, want %d", init, cap, s, lo, covered)
				}
				for i := lo; i < hi; i++ {
					gs, off := segOf(i, init)
					if gs != s || off != i-lo {
						t.Fatalf("init=%d cap=%d: segOf(%d) = (%d,%d), want (%d,%d)",
							init, cap, i, gs, off, s, i-lo)
					}
				}
				covered = hi
			}
			if covered < cap {
				t.Fatalf("init=%d cap=%d: %d segments cover only %d slots", init, cap, n, covered)
			}
		}
	}
}

// TestAcquireGrowsArena is the tentpole contract: with no hard cap, Acquire
// never returns ErrNoSlots — the arena grows by publish-once segments —
// and the new capacity stats report the growth.
func TestAcquireGrowsArena(t *testing.T) {
	const initial, leases = 2, 40
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			pool := newTestPool()
			cfg := Config{Workers: initial, HPs: 1, Free: freeInto(pool), Q: 1, R: 4}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			guards := make([]Guard, leases)
			seen := make(map[int]bool, leases)
			for i := range guards {
				g, err := d.Acquire()
				if err != nil {
					t.Fatalf("acquire %d on an elastic arena: %v", i, err)
				}
				if w := SlotIndex(g); seen[w] {
					t.Fatalf("slot %d handed out twice", w)
				} else {
					seen[w] = true
				}
				guards[i] = g
			}
			st := d.Stats()
			if st.ArenaSize < leases {
				t.Fatalf("ArenaSize = %d after %d concurrent leases", st.ArenaSize, leases)
			}
			if st.ArenaGrowths == 0 {
				t.Fatalf("no growths recorded growing %d -> %d", initial, st.ArenaSize)
			}
			if st.HighWaterWorkers != leases {
				t.Fatalf("HighWaterWorkers = %d, want %d", st.HighWaterWorkers, leases)
			}

			// Guards must work across segments: retire through a grown slot.
			last := guards[leases-1]
			last.Begin()
			last.Retire(allocNode(pool, 1))
			for _, g := range guards {
				d.Release(g)
			}
			// Released capacity is reused, not regrown.
			size := d.Stats().ArenaSize
			g, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			d.Release(g)
			if got := d.Stats().ArenaSize; got != size {
				t.Fatalf("arena grew on reuse: %d -> %d", size, got)
			}
		})
	}
}

// TestHardMaxBackpressure: with HardMaxWorkers set, growth stops at the cap
// and the pre-elastic semantics return — ErrNoSlots from Acquire, parking
// from AcquireWait (woken by Release).
func TestHardMaxBackpressure(t *testing.T) {
	const initial, hard = 2, 5
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			pool := newTestPool()
			cfg := Config{Workers: initial, HardMaxWorkers: hard, HPs: 1, Free: freeInto(pool), Q: 1, R: 4}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			guards := make([]Guard, hard)
			for i := range guards {
				g, err := d.Acquire()
				if err != nil {
					t.Fatalf("acquire %d below the cap: %v", i, err)
				}
				guards[i] = g
			}
			if _, err := d.Acquire(); !errors.Is(err, ErrNoSlots) {
				t.Fatalf("acquire past HardMaxWorkers: err = %v, want ErrNoSlots", err)
			}
			if st := d.Stats(); st.ArenaSize != hard {
				t.Fatalf("ArenaSize = %d, want the cap %d", st.ArenaSize, hard)
			}

			// AcquireWait parks at the cap and wakes on Release.
			got := make(chan Guard)
			go func() {
				g, err := d.AcquireWait(context.Background())
				if err != nil {
					t.Error(err)
				}
				got <- g
			}()
			select {
			case <-got:
				t.Fatal("AcquireWait returned at the hard cap")
			case <-time.After(20 * time.Millisecond):
			}
			d.Release(guards[0])
			select {
			case g := <-got:
				d.Release(g)
			case <-time.After(2 * time.Second):
				t.Fatal("AcquireWait not woken by Release at the hard cap")
			}
			for _, g := range guards[1:] {
				d.Release(g)
			}
		})
	}
}

// TestGrowthChurnRace is the -race stress for the elastic arena: far more
// goroutines than initial slots Acquire concurrently (never failing), churn
// a shared mailbox under full HP discipline — so segment publication
// interleaves with HP scans, epoch advances, rooster flushes — and Release
// mid-stream so orphan adoption runs against a growing arena too. A pinned
// positional guard participates throughout to cover the pin/growth mix.
func TestGrowthChurnRace(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			const initial = 1
			workers, rounds, opsPer := 24, 3, 50
			if testing.Short() {
				workers, rounds = 10, 2
			}
			pool := newTestPool()
			cfg := Config{Workers: initial, HPs: 1, Free: freeInto(pool), Q: 2, R: 4}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mb := newMailbox(pool, 16)
			var wg sync.WaitGroup
			errs := make(chan error, workers+1)

			// The pinned fixed worker, operating across every growth.
			pinned := d.Guard(0)
			var stop sync.WaitGroup
			stop.Add(1)
			done := make(chan struct{})
			go func() {
				defer stop.Done()
				defer func() {
					if r := recover(); r != nil {
						if v, ok := r.(*mem.Violation); ok {
							errs <- v
							return
						}
						panic(r)
					}
				}()
				rng := uint64(0xfeed)
				for {
					select {
					case <-done:
						pinned.ClearHPs()
						return
					default:
					}
					pinned.Begin()
					rng = rng*6364136223846793005 + 1442695040888963407
					if rng&1 == 0 {
						mb.put(pinned, int(rng>>33)%len(mb.slots), rng)
					} else {
						mb.take(pinned, int(rng>>33)%len(mb.slots))
					}
				}
			}()

			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if v, ok := r.(*mem.Violation); ok {
								errs <- v
								return
							}
							panic(r)
						}
					}()
					rng := uint64(id)*0x9e3779b9 + 1
					for round := 0; round < rounds; round++ {
						g, err := d.Acquire() // must never fail: the arena grows
						if err != nil {
							errs <- err
							return
						}
						for i := 0; i < opsPer; i++ {
							g.Begin()
							rng = rng*6364136223846793005 + 1442695040888963407
							slot := int(rng>>33) % len(mb.slots)
							if rng&1 == 0 {
								mb.put(g, slot, rng)
							} else {
								mb.take(g, slot)
							}
						}
						g.ClearHPs()
						d.Release(g) // orphans whatever has not aged
					}
				}(w)
			}
			wg.Wait()
			close(done)
			stop.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: %v", scheme, err)
			}

			st := d.Stats()
			if st.ArenaGrowths == 0 || st.ArenaSize <= initial {
				t.Fatalf("%s: churn with %d workers never grew the 1-slot arena: %+v", scheme, workers, st)
			}
			if st.AcquiredHandles != st.ReleasedHandles {
				t.Fatalf("%s: %d leases vs %d releases", scheme, st.AcquiredHandles, st.ReleasedHandles)
			}
			g, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			mb.drain(g)
			d.Release(g)
			d.Close()
			if scheme != "none" {
				if st := d.Stats(); st.Pending != 0 {
					t.Fatalf("%s: %d pending after Close", scheme, st.Pending)
				}
				if live := pool.Stats().Live; live != 0 {
					t.Fatalf("%s: %d nodes leaked", scheme, live)
				}
			}
		})
	}
}

// TestGrowthAdoptsOrphans: a backlog orphaned BEFORE any growth must be
// adopted by a worker leased into a GROWN slot — the grown slot is a full
// protocol participant, qua orphan adoption included.
func TestGrowthAdoptsOrphans(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 1, HPs: 1, Free: freeInto(pool), Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	leaver, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r := allocNode(pool, 7)
	leaver.Retire(r)

	// Growth: the initial slot is held, so this lease publishes segment 1.
	grown, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if SlotIndex(grown) == SlotIndex(leaver) {
		t.Fatal("second lease did not grow")
	}
	d.Release(leaver) // strands the unaged node on the orphan list
	if st := d.Stats(); st.OrphanedNodes != 1 {
		t.Fatalf("OrphanedNodes = %d, want 1", st.OrphanedNodes)
	}
	for i := 0; i < 8 && pool.Valid(r); i++ {
		grown.Begin() // the grown slot's quiescent states must adopt
	}
	if pool.Valid(r) {
		t.Fatal("grown slot did not adopt the orphaned backlog")
	}
	if st := d.Stats(); st.AdoptedNodes != 1 || st.Pending != 0 {
		t.Fatalf("adopted/pending = %d/%d, want 1/0", st.AdoptedNodes, st.Pending)
	}
	d.Release(grown)
}

// TestHighWaterCountsPinsAndLeases: the occupancy peak must reflect leases
// and pins together, whichever side raises it last. The positional pin is
// taken FIRST: under QSENSE_SHARDS=4 each shard owns exactly one of the four
// slots, and a lease placed by the stack-address hash may land on slot 3's
// shard — pinning an already-leased slot is a caller error (slots.go), so
// the pin must not race the leases for the same geometry.
func TestHighWaterCountsPinsAndLeases(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 4, HPs: 1, Free: freeInto(pool), Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Guard(3) // pin slot 3 before any lease can land on it
	if _, err := d.Acquire(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Acquire(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.HighWaterWorkers != 3 {
		t.Fatalf("HighWaterWorkers = %d after 2 leases + 1 pin, want 3", st.HighWaterWorkers)
	}
	g, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	d.Release(g)
	if st := d.Stats(); st.HighWaterWorkers != 4 {
		t.Fatalf("HighWaterWorkers = %d after a 4th concurrent occupant, want 4", st.HighWaterWorkers)
	}
}

// TestHighWaterNeverExceedsArena hammers the racy occupancy estimate from
// both sides (lease churn + late pins) and checks the invariant the clamp
// enforces: HighWaterWorkers <= ArenaSize, whatever interleaving happened.
func TestHighWaterNeverExceedsArena(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 4, HardMaxWorkers: 8, HPs: 1, Free: freeInto(pool), Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g, err := d.Acquire()
				if err != nil {
					continue // transient exhaustion at the cap is fine here
				}
				d.Release(g)
			}
		}()
	}
	wg.Wait()
	d.Guard(0) // a pin on top of the churn
	st := d.Stats()
	if st.HighWaterWorkers > st.ArenaSize {
		t.Fatalf("HighWaterWorkers %d exceeds ArenaSize %d", st.HighWaterWorkers, st.ArenaSize)
	}
	if st.HighWaterWorkers < 1 {
		t.Fatalf("HighWaterWorkers = %d after real occupancy", st.HighWaterWorkers)
	}
}
