package reclaim

import (
	"testing"

	"qsense/internal/mem"
)

func newQSenseDomain(t *testing.T, pool *mem.Pool[tnode], cfg Config) *QSense {
	t.Helper()
	cfg.Free = freeInto(pool)
	cfg.ManualRooster = true
	d, err := NewQSense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQSenseFastPathReclaimsLikeQSBR(t *testing.T) {
	// In the common case QSense is QSBR: wholesale frees on epoch
	// advance, no hazard-pointer scans, no rooster required.
	pool := newTestPool()
	d := newQSenseDomain(t, pool, Config{Workers: 1, HPs: 1, Q: 1})
	g := d.Guard(0)
	r := allocNode(pool, 1)
	g.Retire(r)
	g.Begin()
	g.Begin()
	if !pool.Valid(r) {
		t.Fatal("freed before the global epoch reached retire epoch + 3")
	}
	g.Begin()
	if pool.Valid(r) {
		t.Fatal("fast path failed to free after three epoch advances")
	}
	st := d.Stats()
	if st.Scans != 0 {
		t.Fatal("fast path must not run hazard-pointer scans")
	}
	if st.InFallback {
		t.Fatal("must start on the fast path")
	}
	if st.QuiescentStates == 0 || st.EpochAdvances == 0 {
		t.Fatalf("missing QSBR activity: %+v", st)
	}
	d.Close()
}

func TestQSenseFallbackTriggerAtC(t *testing.T) {
	// §5.2 step 1: a worker whose limbo lists reach C nodes raises the
	// fallback flag and immediately scans.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, stalled := d.Guard(0), d.Guard(1)
	stalled.Begin() // participates once, then stalls: quiescence impossible
	for i := 0; i < cfg.C-1; i++ {
		active.Retire(allocNode(pool, uint64(i)))
		if d.InFallback() {
			t.Fatalf("fallback before C (%d) retires: i=%d", cfg.C, i)
		}
	}
	active.Retire(allocNode(pool, 99)) // limbo total reaches C
	if !d.InFallback() {
		t.Fatal("fallback flag not raised at C retired nodes")
	}
	st := d.Stats()
	if st.SwitchesToFallback != 1 {
		t.Fatalf("switches to fallback = %d", st.SwitchesToFallback)
	}
	if st.Scans == 0 {
		t.Fatal("the switching worker must scan immediately (§5.2 step 2)")
	}
	d.Close()
}

func TestQSenseFallbackReclaimsDespiteStalledWorker(t *testing.T) {
	// The robustness headline: QSBR alone would leak forever here;
	// QSense keeps freeing through Cadence while a worker is stalled.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 2}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, stalled := d.Guard(0), d.Guard(1)
	stalled.Begin()
	for i := 0; i < cfg.C+10; i++ { // push past C into fallback
		active.Retire(allocNode(pool, uint64(i)))
	}
	if !d.InFallback() {
		t.Fatal("not in fallback")
	}
	d.Rooster().Step()
	d.Rooster().Step() // older retirees become old enough
	before := d.Stats().Freed
	for i := 0; i < 10; i++ {
		active.Retire(allocNode(pool, uint64(i)))
	}
	if d.Stats().Freed <= before {
		t.Fatal("fallback path did not reclaim despite the stalled worker")
	}
	d.Close()
	if pool.Stats().Live != 0 {
		t.Fatalf("leak: %d", pool.Stats().Live)
	}
}

func TestQSenseSwitchBackWhenAllActive(t *testing.T) {
	// §5.2 steps 3-4: presence flags bring the system home to QSBR.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, stalled := d.Guard(0), d.Guard(1)
	stalled.Begin()
	for i := 0; i < cfg.C+1; i++ {
		active.Retire(allocNode(pool, uint64(i)))
	}
	if !d.InFallback() {
		t.Fatal("setup: not in fallback")
	}
	// The stalled worker wakes up and declares itself active.
	stalled.Begin() // sets its presence flag (Q=1)
	active.Begin()  // sets its own, sees all active, switches back
	if d.InFallback() {
		t.Fatal("did not switch back to the fast path")
	}
	st := d.Stats()
	if st.SwitchesToFast != 1 {
		t.Fatalf("switches to fast = %d", st.SwitchesToFast)
	}
	// QSBR machinery must work again: epoch advances resume.
	eBefore := d.GlobalEpoch()
	for i := 0; i < 4; i++ {
		active.Begin()
		stalled.Begin()
	}
	if d.GlobalEpoch() <= eBefore {
		t.Fatal("epochs did not resume after recovery")
	}
	d.Close()
}

func TestQSensePresenceResetBlocksPrematureSwitchBack(t *testing.T) {
	// After a presence reset, one active worker alone must not conclude
	// that everyone is back.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1, PresenceResetTicks: 1}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, stalled := d.Guard(0), d.Guard(1)
	stalled.Begin()
	for i := 0; i < cfg.C+1; i++ {
		active.Retire(allocNode(pool, uint64(i)))
	}
	if !d.InFallback() {
		t.Fatal("setup: not in fallback")
	}
	stalled.Begin()    // wakes briefly, sets presence...
	d.Rooster().Step() // ...but the reset hook clears all flags
	active.Begin()     // sees presence[stalled] == false
	if !d.InFallback() {
		t.Fatal("switched back although the stalled worker is silent again")
	}
	d.Close()
}

func TestQSenseProtectionSurvivesPathSwitch(t *testing.T) {
	// §4.1: hazard pointers are maintained during the fast path so that
	// references held across the switch stay protected. A node protected
	// before the switch must survive fallback scans indefinitely.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, reader := d.Guard(0), d.Guard(1)
	reader.Begin()
	r := allocNode(pool, 7)
	reader.Protect(0, r) // published fence-free on the fast path
	d.Rooster().Step()   // flushed while still in fast path
	active.Retire(r)
	for i := 0; i < cfg.C+5; i++ { // force the switch and many scans
		active.Retire(allocNode(pool, uint64(i)))
	}
	if !d.InFallback() {
		t.Fatal("setup: not in fallback")
	}
	for s := 0; s < 4; s++ {
		d.Rooster().Step()
		active.Retire(allocNode(pool, uint64(s)))
	}
	if !pool.Valid(r) {
		t.Fatal("pre-switch protection lost across the path switch")
	}
	if pool.Get(r).val != 7 {
		t.Fatal("node corrupted")
	}
	// Release: the node drains like any Cadence retiree.
	reader.Protect(0, 0)
	for s := 0; s < 3; s++ {
		d.Rooster().Step()
		active.Retire(allocNode(pool, uint64(s)))
	}
	if pool.Valid(r) {
		t.Fatal("released node never reclaimed in fallback")
	}
	d.Close()
}

func TestQSenseLivenessBound2NC(t *testing.T) {
	// Property 4: with a legal C, at most 2NC retired nodes exist at any
	// time — even with a stalled worker. (The paper's bound assumes scan
	// backlogs bounded by the retire pacing; we pace with rooster steps.)
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 2, R: 4}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, stalled := d.Guard(0), d.Guard(1)
	stalled.Begin()
	bound := int64(2 * cfg.Workers * cfg.C)
	for step := 0; step < 200; step++ {
		for i := 0; i < 4; i++ {
			active.Begin()
			active.Retire(allocNode(pool, uint64(i)))
		}
		d.Rooster().Step()
		if p := d.Stats().Pending; p > bound {
			t.Fatalf("pending %d exceeded 2NC=%d at step %d", p, bound, step)
		}
	}
	if !d.InFallback() {
		t.Fatal("expected fallback under permanent stall")
	}
	d.Close()
}

func TestQSenseRepeatedSwitchCycles(t *testing.T) {
	// Figure 5 (bottom) alternates stall and recovery; the flag must
	// follow, repeatedly.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, flaky := d.Guard(0), d.Guard(1)
	flaky.Begin()
	for cycle := 0; cycle < 3; cycle++ {
		// Stall phase: drive into fallback.
		for i := 0; i < cfg.C+1 && !d.InFallback(); i++ {
			active.Retire(allocNode(pool, uint64(i)))
		}
		if !d.InFallback() {
			t.Fatalf("cycle %d: no fallback", cycle)
		}
		// Recovery phase.
		flaky.Begin()
		active.Begin()
		if d.InFallback() {
			t.Fatalf("cycle %d: no recovery", cycle)
		}
		// Let the fast path drain the backlog so the next cycle's
		// trigger count starts fresh.
		for i := 0; i < 4; i++ {
			active.Begin()
			flaky.Begin()
		}
	}
	st := d.Stats()
	if st.SwitchesToFallback != 3 || st.SwitchesToFast != 3 {
		t.Fatalf("switch counts = %d/%d, want 3/3", st.SwitchesToFallback, st.SwitchesToFast)
	}
	d.Close()
	if pool.Stats().Live != 0 {
		t.Fatalf("leak: %d", pool.Stats().Live)
	}
}

func TestQSenseQuiescenceBatchingQ(t *testing.T) {
	pool := newTestPool()
	d := newQSenseDomain(t, pool, Config{Workers: 1, HPs: 1, Q: 5})
	g := d.Guard(0)
	for i := 0; i < 4; i++ {
		g.Begin()
	}
	if d.Stats().QuiescentStates != 0 {
		t.Fatal("quiesced before Q calls")
	}
	g.Begin()
	if d.Stats().QuiescentStates != 1 {
		t.Fatal("no quiescent state at Q calls")
	}
	d.Close()
}

func TestQSenseFallbackScanEveryR(t *testing.T) {
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 3}
	cfg.C = LegalC(cfg)
	d := newQSenseDomain(t, pool, cfg)
	active, stalled := d.Guard(0), d.Guard(1)
	stalled.Begin()
	for i := 0; i < cfg.C; i++ {
		active.Retire(allocNode(pool, uint64(i)))
	}
	scansAtSwitch := d.Stats().Scans
	if scansAtSwitch == 0 {
		t.Fatal("no scan at switch")
	}
	// In fallback, every R-th retire scans all three buckets.
	n := int(d.Stats().Retired)
	for i := 0; i < 3*cfg.R; i++ {
		active.Retire(allocNode(pool, uint64(i)))
		n++
	}
	if got := d.Stats().Scans; got <= scansAtSwitch {
		t.Fatalf("no periodic fallback scans (got %d)", got)
	}
	d.Close()
}
