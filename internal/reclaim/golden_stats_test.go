package reclaim

import (
	"fmt"
	"testing"
)

// goldenProject renders the Stats fields that existed before the sharding
// refactor as one canonical string. The projection deliberately excludes
// Shards/ShardImbalance (and any future additions) so the literals below,
// captured on the pre-sharding seed, stay comparable: the Shards=1 path is
// required to be byte-identical to the single-pool implementation on every
// one of these fields.
func goldenProject(s Stats) string {
	return fmt.Sprintf(
		"ret=%d freed=%d pend=%d scans=%d scanned=%d quiesce=%d epochs=%d "+
			"tofall=%d tofast=%d evict=%d rejoin=%d acq=%d rel=%d "+
			"arena=%d hw=%d grows=%d parked=%d parks=%d unparks=%d "+
			"effR=%d effC=%d retR=%d retC=%d orph=%d adopt=%d "+
			"fall=%v passes=%d failed=%v",
		s.Retired, s.Freed, s.Pending, s.Scans, s.ScannedRecords,
		s.QuiescentStates, s.EpochAdvances,
		s.SwitchesToFallback, s.SwitchesToFast, s.Evictions, s.Rejoins,
		s.AcquiredHandles, s.ReleasedHandles,
		s.ArenaSize, s.HighWaterWorkers, s.ArenaGrowths,
		s.ParkedSlots, s.SegmentParks, s.SegmentUnparks,
		s.EffectiveR, s.EffectiveC, s.RRetunes, s.CRetunes,
		s.OrphanedNodes, s.AdoptedNodes,
		s.InFallback, s.RoosterPasses, s.Failed)
}

// goldenDrive runs a fixed, fully deterministic single-goroutine operation
// sequence against a fresh domain: a pinned positional guard, a burst of
// leases that forces one arena growth, retire/advance churn with manual
// rooster steps, a Release that strands a backlog (orphan handoff), churn
// that adopts it, then full release (exercising segment parking) and Close.
func goldenDrive(t *testing.T, scheme string, shards int) (pre, post string) {
	t.Helper()
	pool := newTestPool()
	cfg := Config{
		Workers: 4, HardMaxWorkers: 16, HPs: 2, Q: 2, R: 8,
		ManualRooster: true,
		Free:          freeInto(pool),
		Shards:        shards,
	}
	if scheme == "qsense" {
		cfg.C = LegalC(cfg)
	}
	d, err := New(scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		switch dom := d.(type) {
		case *Cadence:
			dom.Rooster().Step()
		case *QSense:
			dom.Rooster().Step()
		}
	}

	// A pinned positional guard that stays active the whole run.
	g0 := d.Guard(0)
	g0.Begin()

	// Lease past Workers=4: the fifth Acquire grows the arena once.
	leases := make([]Guard, 5)
	for i := range leases {
		g, err := d.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		leases[i] = g
	}

	// Churn phase 1: every guard retires with interleaved advances/steps.
	for i := 0; i < 24; i++ {
		for _, g := range leases {
			g.Begin()
			r := allocNode(pool, uint64(i))
			g.Protect(0, r)
			g.Retire(r)
			g.Protect(0, 0)
		}
		g0.Begin()
		if i%6 == 0 {
			step()
		}
	}

	// Strand a backlog: leases[2] retires and releases before any grace
	// period elapses; its slot is not re-leased afterwards.
	for i := 0; i < 8; i++ {
		leases[2].Retire(allocNode(pool, 1000+uint64(i)))
	}
	d.Release(leases[2])

	// Churn phase 2: the survivors adopt the orphaned backlog.
	for i := 0; i < 24; i++ {
		for j, g := range leases {
			if j == 2 {
				continue
			}
			g.Begin()
			g.Retire(allocNode(pool, 2000+uint64(i)))
		}
		g0.Begin()
		if i%6 == 0 {
			step()
		}
	}

	// Full release in reverse order: the growth segment empties first,
	// exercising the parking low-water check.
	for j := len(leases) - 1; j >= 0; j-- {
		if j == 2 {
			continue
		}
		d.Release(leases[j])
	}

	pre = goldenProject(d.Stats())
	d.Close()
	post = goldenProject(d.Stats())
	return pre, post
}

// goldenStats holds the pre/post-Close projections captured by running
// goldenDrive on the pre-sharding implementation (single slot pool, single
// orphan list). TestGoldenStatsShards1 asserts the refactored code at
// Shards=1 reproduces them exactly.
var goldenStats = map[string][2]string{
	"none": {
		"ret=224 freed=0 pend=224 scans=0 scanned=0 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=0 effC=0 retR=0 retC=0 orph=0 adopt=0 fall=false passes=0 failed=false",
		"ret=224 freed=0 pend=224 scans=0 scanned=0 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=0 effC=0 retR=0 retC=0 orph=0 adopt=0 fall=false passes=0 failed=false",
	},
	"qsbr": {
		"ret=224 freed=204 pend=20 scans=0 scanned=143 quiesce=142 epochs=25 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=0 effC=0 retR=0 retC=0 orph=33 adopt=13 fall=false passes=0 failed=false",
		"ret=224 freed=224 pend=0 scans=0 scanned=143 quiesce=142 epochs=25 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=0 effC=0 retR=0 retC=0 orph=33 adopt=13 fall=false passes=0 failed=false",
	},
	"ebr": {
		"ret=224 freed=152 pend=72 scans=0 scanned=93 quiesce=0 epochs=11 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=97 adopt=25 fall=false passes=0 failed=false",
		"ret=224 freed=224 pend=0 scans=0 scanned=97 quiesce=0 epochs=11 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=97 adopt=25 fall=false passes=0 failed=false",
	},
	"hp": {
		"ret=224 freed=224 pend=0 scans=28 scanned=156 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=0 adopt=0 fall=false passes=0 failed=false",
		"ret=224 freed=224 pend=0 scans=28 scanned=156 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=0 adopt=0 fall=false passes=0 failed=false",
	},
	"cadence": {
		"ret=224 freed=180 pend=44 scans=33 scanned=210 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=63 adopt=19 fall=false passes=8 failed=false",
		"ret=224 freed=224 pend=0 scans=33 scanned=230 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=63 adopt=19 fall=false passes=8 failed=false",
	},
	"qsense": {
		"ret=224 freed=204 pend=20 scans=5 scanned=192 quiesce=142 epochs=25 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=17 retR=0 retC=2 orph=33 adopt=13 fall=false passes=8 failed=false",
		"ret=224 freed=224 pend=0 scans=5 scanned=212 quiesce=142 epochs=25 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=17 retR=0 retC=2 orph=33 adopt=13 fall=false passes=8 failed=false",
	},
	"rc": {
		"ret=224 freed=224 pend=0 scans=28 scanned=0 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=0 adopt=0 fall=false passes=0 failed=false",
		"ret=224 freed=224 pend=0 scans=28 scanned=0 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=0 adopt=0 fall=false passes=0 failed=false",
	},
	// ibr and hyaline were born after the sharding refactor, so their goldens
	// are the Shards=1 capture at introduction rather than a pre-refactor
	// seed; they gate the same property going forward (determinism of the
	// drive and Stats-accounting balance at Shards=1). The ibr strings were
	// re-captured when the era cadence became adaptive (eraQ relaxes under
	// the drive's narrow reservations, so far fewer epoch advances).
	"ibr": {
		"ret=224 freed=189 pend=35 scans=34 scanned=181 quiesce=0 epochs=26 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=60 adopt=25 fall=false passes=0 failed=false",
		"ret=224 freed=224 pend=0 scans=34 scanned=186 quiesce=0 epochs=26 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=8 effC=8192 retR=0 retC=0 orph=60 adopt=25 fall=false passes=0 failed=false",
	},
	"hyaline": {
		"ret=224 freed=216 pend=8 scans=0 scanned=575 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=0 effC=0 retR=0 retC=0 orph=18 adopt=10 fall=false passes=0 failed=false",
		"ret=224 freed=224 pend=0 scans=0 scanned=575 quiesce=0 epochs=0 tofall=0 tofast=0 evict=0 rejoin=0 acq=5 rel=5 arena=8 hw=6 grows=1 parked=4 parks=1 unparks=0 effR=0 effC=0 retR=0 retC=0 orph=18 adopt=10 fall=false passes=0 failed=false",
	},
}

// TestGoldenStatsShards1 is the sharding refactor's regression gate: with
// Shards=1 the domain must be byte-identical in Stats to the pre-refactor
// seed across a deterministic drive of every scheme.
func TestGoldenStatsShards1(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			pre, post := goldenDrive(t, scheme, 1)
			want, ok := goldenStats[scheme]
			if !ok {
				t.Fatalf("no golden for %s; captured:\n\tpre:  %q\n\tpost: %q", scheme, pre, post)
			}
			if pre != want[0] {
				t.Errorf("pre-Close stats diverged from pre-sharding seed:\n\tgot:  %s\n\twant: %s", pre, want[0])
			}
			if post != want[1] {
				t.Errorf("post-Close stats diverged from pre-sharding seed:\n\tgot:  %s\n\twant: %s", post, want[1])
			}
		})
	}
}
