package reclaim

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
)

// counters carries the stat counters shared by all schemes. Lease and
// quiescent-state counts are NOT here: they accrue per shard on the slot
// pools (slots.go) so the hot Acquire/Release/quiescent paths never touch
// a domain-wide cache line, and the façade sums them into Stats.
type counters struct {
	retired   atomic.Uint64
	freed     atomic.Uint64
	scans     atomic.Uint64
	scanned   atomic.Uint64 // per-slot records visited by reclamation walks
	epochs    atomic.Uint64
	toFall    atomic.Uint64
	toFast    atomic.Uint64
	evictions atomic.Uint64
	rejoins   atomic.Uint64
	orphaned  atomic.Uint64
	adopted   atomic.Uint64
	retunesR  atomic.Uint64
	retunesC  atomic.Uint64
	failed    atomic.Bool
}

// pending loads freed BEFORE retired: freed never exceeds retired in real
// time and retired only grows, so this order keeps the difference >= 0
// even when the loads are arbitrarily far apart (a reader descheduled
// between them would otherwise see frees of retires it never counted).
func (c *counters) pending() int64 {
	freed := c.freed.Load()
	return int64(c.retired.Load()) - int64(freed)
}

// tally is a guard's private retire/free ledger — the amortization that
// keeps Retire from paying one shared RMW per node. retires/frees are
// owner-only plain fields; res mirrors the unflushed retire count in a
// single-writer atomic that Stats snapshots sum (so Stats.Retired stays
// exact even between flushes, without Retire touching shared cache lines).
//
// Flush discipline: retires flush to the shared counters every
// tallyFlushEvery events and at every reclamation pass boundary (scan,
// sweep, quiescent state, epoch-bucket free), on Release and on Close.
// Frees only ever accrue INSIDE a pass and are flushed before the pass
// returns, so between passes the free residue is always zero and the
// shared freed counter is exact. The only observable staleness is the
// MemoryLimit check: it runs against the shared counters at flush time, so
// breach detection can lag by up to tallyFlushEvery-1 retires per live
// guard (documented on Config.MemoryLimit).
type tally struct {
	retires int
	frees   int
	scanned int          // walk visits; rides along with the next flush
	res     atomic.Int64 // unflushed retires; single-writer, read by Stats
}

// tallyFlushEvery bounds how many retires a guard batches before flushing
// to the shared counters (and re-checking MemoryLimit).
const tallyFlushEvery = 32

// tallyRetire counts one Retire in the guard's private ledger, flushing to
// the shared counters every tallyFlushEvery events. With a MemoryLimit set
// the breach check still runs per retire — against the shared counters plus
// this guard's own unflushed count, so only OTHER guards' residues (at most
// tallyFlushEvery-1 each) can delay detection — but it costs loads, not the
// RMW the pre-tally noteRetire paid; without a limit the hot path touches
// no shared counter at all.
func (c *counters) tallyRetire(t *tally, limit int) {
	t.retires++
	t.res.Store(int64(t.retires))
	if limit > 0 && c.pending()+int64(t.retires) > int64(limit) {
		c.failed.Store(true)
	}
	if t.retires >= tallyFlushEvery || t.frees > 0 {
		c.flushTally(t, limit)
	}
}

// tallyFree counts n frees in the guard's private ledger. The caller's
// reclamation pass MUST flush before returning control to the application
// (every pass boundary calls flushTally), so shared freed stays exact at
// pass boundaries.
func (c *counters) tallyFree(t *tally, n int) {
	t.frees += n
}

// tallyScanned counts walk visits by a guard-driven pass (HP snapshot
// collection, epoch-advance checks). The count rides along with the next
// retire/free flush — or flushes on its own past a coarse threshold — so a
// pure lease-churn quiescent (nothing retired, one slot visited) pays no
// shared RMW for its walk. ScannedRecords is a diagnostic: opportunistic
// flushing trades per-snapshot exactness (it may lag by a guard's small
// residue) for a clean hot path; Close drains the residues, so post-Close
// reads are exact. Domain-level walks (rooster flushes, presence sweeps)
// add to the shared counter directly — they are already per-pass.
func (c *counters) tallyScanned(t *tally, n int) {
	t.scanned += n
	if t.scanned >= 4096 {
		c.scanned.Add(uint64(t.scanned))
		t.scanned = 0
	}
}

// flushTally publishes the guard's ledger to the shared counters — retires
// first, so shared freed can never overtake shared retired — and re-checks
// the memory limit against the flushed totals. A ledger with nothing
// retired or freed returns immediately (walk-visit residue waits for the
// next real flush).
func (c *counters) flushTally(t *tally, limit int) {
	if t.retires == 0 && t.frees == 0 {
		return
	}
	if t.retires > 0 {
		c.retired.Add(uint64(t.retires))
		t.retires = 0
		t.res.Store(0)
		if limit > 0 && c.pending() > int64(limit) {
			c.failed.Store(true)
		}
	}
	if t.frees > 0 {
		c.freed.Add(uint64(t.frees))
		t.frees = 0
	}
	if t.scanned > 0 {
		c.scanned.Add(uint64(t.scanned))
		t.scanned = 0
	}
}

// releaseTally is the slot-release flush: everything except a TINY
// walk-visit residue, which stays on the guard's ledger and rides along
// with a future tenant's flush — so a lease-churn release pays no shared
// RMW for the one or two slots its own quiescent/advance walk visited,
// while a burst drain's large per-release walk counts (hundreds of visits)
// are published before the slot vanishes from the index.
func (c *counters) releaseTally(t *tally, limit int) {
	c.flushTally(t, limit)
	if t.scanned >= 64 {
		c.scanned.Add(uint64(t.scanned))
		t.scanned = 0
	}
}

// drainTally is the terminal flush (Close): everything, walk-visit residue
// included.
func (c *counters) drainTally(t *tally) {
	c.flushTally(t, 0)
	if t.scanned > 0 {
		c.scanned.Add(uint64(t.scanned))
		t.scanned = 0
	}
}

// noteAdopted records n orphans freed by an adopter; adopted frees are
// ordinary frees for the Pending arithmetic. (Orphan batches only exist
// past a Release, which flushed the releasing guard's tally, so an adopted
// node's retire is always already in the shared counter.)
func (c *counters) noteAdopted(n int) {
	if n == 0 {
		return
	}
	c.freed.Add(uint64(n))
	c.adopted.Add(uint64(n))
}

// fill snapshots the counters. tallyAt (may be nil) resolves a slot's
// guard tally so the occupied guards' unflushed retire residues can be
// summed into Retired; the residues are read AFTER freed and BEFORE the
// shared retired counter, which preserves the no-impossible-snapshot
// ordering: freed is loaded first (bounded by true retires at that
// instant), every unflushed retire is then either still in a residue we
// read or already in the shared counter we read last — a flush racing the
// snapshot can only OVER-count Retired transiently (by at most one
// guard's residue), never show Freed > Retired.
func (c *counters) fill(s *Stats, p *shardedPool, tallyAt func(i int) *tally) {
	s.AdoptedNodes = c.adopted.Load()
	s.Freed = c.freed.Load()
	var res int64
	if tallyAt != nil {
		p.walkOccupied(func(i int) bool {
			res += tallyAt(i).res.Load()
			return true
		})
	}
	s.Retired = c.retired.Load() + uint64(res)
	s.Pending = int64(s.Retired) - int64(s.Freed)
	s.OrphanedNodes = c.orphaned.Load()
	s.Scans = c.scans.Load()
	s.ScannedRecords = c.scanned.Load()
	s.EpochAdvances = c.epochs.Load()
	s.SwitchesToFallback = c.toFall.Load()
	s.SwitchesToFast = c.toFast.Load()
	s.Evictions = c.evictions.Load()
	s.Rejoins = c.rejoins.Load()
	s.RRetunes = c.retunesR.Load()
	s.CRetunes = c.retunesC.Load()
	s.Failed = c.failed.Load()
}

// None is the leaky baseline used throughout the paper's evaluation
// ("None"): Retire leaks the node. It provides the no-reclamation upper
// bound on throughput; long runs grow memory without bound.
type None struct {
	cfg    Config
	cnt    counters
	slots  *shardedPool
	guards *shardedArena[*noneGuard]
}

type noneGuard struct {
	d     *None
	id    int
	tally tally
}

// NewNone builds the leaky baseline domain.
func NewNone(cfg Config) (*None, error) {
	if err := cfg.Validate(false); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &None{cfg: cfg}
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *noneGuard {
		return &noneGuard{d: d, id: i}
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, nil, d.guards.growShard)
	return d, nil
}

// Guard implements Domain (deprecated positional access; pins the slot).
func (d *None) Guard(w int) Guard {
	d.slots.pin(w)
	return d.guards.at(w)
}

// Acquire implements Domain. None has no reclamation state to join.
func (d *None) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.guards.at(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done. Orphan adoption is a no-op for None — Retire leaks, so a
// released slot has no backlog to strand in the first place.
func (d *None) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.guards.at(w), nil
}

// Release implements Domain.
func (d *None) Release(g Guard) {
	ng, ok := g.(*noneGuard)
	if !ok || ng.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(ng.id, func() {
		d.cnt.releaseTally(&ng.tally, d.cfg.MemoryLimit)
	})
}

// Name implements Domain.
func (d *None) Name() string { return "none" }

// Failed implements Domain. The leak still counts against MemoryLimit: a
// leaky implementation is the first to exhaust memory on long runs.
func (d *None) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain.
func (d *None) Stats() Stats {
	s := Stats{Scheme: "none"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain. Leaked nodes stay leaked; only the retire
// tallies are flushed so post-Close Stats read from the shared counters
// alone.
func (d *None) Close() {
	d.guards.forEach(func(g *noneGuard) {
		d.cnt.drainTally(&g.tally)
	})
}

func (g *noneGuard) slotID() int              { return g.id }
func (g *noneGuard) Begin()                   {}
func (g *noneGuard) Protect(i int, r mem.Ref) {}
func (g *noneGuard) ClearHPs()                {}
func (g *noneGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
}
