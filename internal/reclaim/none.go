package reclaim

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
)

// counters carries the stat counters shared by all schemes.
type counters struct {
	retired   atomic.Uint64
	freed     atomic.Uint64
	scans     atomic.Uint64
	quiesce   atomic.Uint64
	epochs    atomic.Uint64
	toFall    atomic.Uint64
	toFast    atomic.Uint64
	evictions atomic.Uint64
	rejoins   atomic.Uint64
	acquired  atomic.Uint64
	released  atomic.Uint64
	orphaned  atomic.Uint64
	adopted   atomic.Uint64
	failed    atomic.Bool
}

// pending loads freed BEFORE retired: freed never exceeds retired in real
// time and retired only grows, so this order keeps the difference >= 0
// even when the loads are arbitrarily far apart (a reader descheduled
// between them would otherwise see frees of retires it never counted).
func (c *counters) pending() int64 {
	freed := c.freed.Load()
	return int64(c.retired.Load()) - int64(freed)
}

func (c *counters) noteRetire(limit int) {
	c.retired.Add(1)
	if limit > 0 && c.pending() > int64(limit) {
		c.failed.Store(true)
	}
}

// noteAdopted records n orphans freed by an adopter; adopted frees are
// ordinary frees for the Pending arithmetic.
func (c *counters) noteAdopted(n int) {
	if n == 0 {
		return
	}
	c.freed.Add(uint64(n))
	c.adopted.Add(uint64(n))
}

func (c *counters) fill(s *Stats) {
	// Counters bounded above by another load first (see pending for the
	// argument): adopted <= freed and adopted <= orphaned, freed <=
	// retired, so no snapshot shows an impossible state however long the
	// reader sleeps between loads.
	s.AdoptedNodes = c.adopted.Load()
	s.Freed = c.freed.Load()
	s.Retired = c.retired.Load()
	s.Pending = int64(s.Retired) - int64(s.Freed)
	s.OrphanedNodes = c.orphaned.Load()
	s.Scans = c.scans.Load()
	s.QuiescentStates = c.quiesce.Load()
	s.EpochAdvances = c.epochs.Load()
	s.SwitchesToFallback = c.toFall.Load()
	s.SwitchesToFast = c.toFast.Load()
	s.Evictions = c.evictions.Load()
	s.Rejoins = c.rejoins.Load()
	s.AcquiredHandles = c.acquired.Load()
	s.ReleasedHandles = c.released.Load()
	s.Failed = c.failed.Load()
}

// None is the leaky baseline used throughout the paper's evaluation
// ("None"): Retire leaks the node. It provides the no-reclamation upper
// bound on throughput; long runs grow memory without bound.
type None struct {
	cfg    Config
	cnt    counters
	slots  *slotPool
	guards *arena[*noneGuard]
}

type noneGuard struct {
	d  *None
	id int
}

// NewNone builds the leaky baseline domain.
func NewNone(cfg Config) (*None, error) {
	if err := cfg.Validate(false); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &None{cfg: cfg}
	d.guards = newArena(cfg.Workers, cfg.HardMaxWorkers, func(i int) *noneGuard {
		return &noneGuard{d: d, id: i}
	})
	d.slots = newSlotPool(cfg.Workers, cfg.HardMaxWorkers, d.guards.grow)
	return d, nil
}

// Guard implements Domain (deprecated positional access; pins the slot).
func (d *None) Guard(w int) Guard {
	d.slots.pin(w, &d.cnt)
	return d.guards.at(w)
}

// Acquire implements Domain. None has no reclamation state to join.
func (d *None) Acquire() (Guard, error) {
	w, err := d.slots.lease(&d.cnt)
	if err != nil {
		return nil, err
	}
	return d.guards.at(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done. Orphan adoption is a no-op for None — Retire leaks, so a
// released slot has no backlog to strand in the first place.
func (d *None) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx, &d.cnt)
	if err != nil {
		return nil, err
	}
	return d.guards.at(w), nil
}

// Release implements Domain.
func (d *None) Release(g Guard) {
	ng, ok := g.(*noneGuard)
	if !ok || ng.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(ng.id, &d.cnt, func() {})
}

// Name implements Domain.
func (d *None) Name() string { return "none" }

// Failed implements Domain. The leak still counts against MemoryLimit: a
// leaky implementation is the first to exhaust memory on long runs.
func (d *None) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain.
func (d *None) Stats() Stats {
	s := Stats{Scheme: "none"}
	d.cnt.fill(&s)
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain. Leaked nodes stay leaked.
func (d *None) Close() {}

func (g *noneGuard) slotID() int              { return g.id }
func (g *noneGuard) Begin()                   {}
func (g *noneGuard) Protect(i int, r mem.Ref) {}
func (g *noneGuard) ClearHPs()                {}
func (g *noneGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	g.d.cnt.noteRetire(g.d.cfg.MemoryLimit)
}
