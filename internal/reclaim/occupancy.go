package reclaim

// Occupancy-proportional iteration and segment parking.
//
// PR 3 made the arena elastic, but every reclamation walk — HP snapshot
// scans, epoch-advance checks, QSense's presence sweep and reset, rooster
// flush passes, Stats residue sums — still iterated every published slot up
// to the monotone high bound. One 10,000-goroutine burst therefore inflated
// every later scan to O(high-water) forever, which is exactly the cost model
// DEBRA and Hyaline avoid by keeping reclamation work proportional to the
// *active* participants. This file restores that property in two layers:
//
//  1. An active-slot index, in two tiers. Segment 0 — the initial arena,
//     never parked, home of every no-growth workload and all positional
//     pins — needs no separate index at all: its slot STATE array already
//     publishes occupancy (the lease CAS free->leased is the publication),
//     so walks simply load its <= Config.Workers state words and the lease
//     path pays nothing. Grown segments carry an occupancy bitmap, one bit
//     per slot: tryAcquire sets a grown slot's bit immediately after
//     winning the lease CAS — BEFORE the guard is handed to the caller —
//     and unlease clears it only AFTER the release drain has emptied the
//     guard, so the index is exact up to in-flight drains. walkOccupied
//     then visits only occupied slots: a walk over a drained 16k-slot
//     arena with 4 live workers loads segment 0's few states plus a
//     handful of bitmap words instead of touching 16384 records — and a
//     domain that never grew pays not one extra RMW for any of it. Eager
//     clearing is what keeps a burst DRAIN linear too — each release's own
//     quiescent/advance walk sees only the survivors, not every slot the
//     burst ever touched.
//
//  2. Segment parking: when a trailing segment's slots are all free and
//     occupancy sits below the low-water mark (live leases+pins <= half the
//     capacity BELOW the segment), the segment is parked — its slots are
//     pulled out of the freelist and every walk skips the segment outright,
//     bitmap words included, so even the per-walk word-scan cost decays
//     after a burst instead of ratcheting. Growth unparks the lowest
//     parked segment (re-publishing its slots to the freelist) before ever
//     appending a new one. Parked segments stay published: guards and
//     hazard records never move, and ArenaSize still reports them.
//
// # Safety argument (mirrors arena.go's publish-order argument)
//
// A walk must either observe a concurrently leased slot or that slot must be
// provably irrelevant to the walk's conclusion. The ordering that provides
// this, with Go atomics being sequentially consistent:
//
//	unpark(parkedFrom++)  ≺  freelist push  ≺  lease pop  ≺  bit set
//	  ≺  every action of the tenant (Protect, Retire, epoch announcement)
//
// and on the way out
//
//	release drain (protections cleared, epoch Leave, limbo orphaned)
//	  ≺  bit clear  ≺  slot free  ≺  freelist push.
//
// (For segment 0 read "state CAS to leased" for "bit set" and "state store
// to free, after the drain" for "bit clear" — the same two edges, one
// tier down.) So if a walk's bitmap-word load (or state load, or
// parked-bound load) misses a slot, that load precedes the tenant's bit
// set in the SC total order, hence precedes everything the tenant ever
// published. For hazard-pointer snapshots this is
// the case Michael's retire-before-snapshot argument already tolerates: a
// scan only frees nodes retired before its snapshot, and a validated
// protection of such a node was published (and, for Cadence, flushed by the
// captured tick) before the unlink — before the snapshot began — so the
// snapshot's loads, all later in SC order than the bit set, do see the bit
// and the protection. For epoch advances it is the join-quiescent case: a
// tenant whose bit the advance missed adopted the current-or-later global
// epoch while holding no references, which cannot invalidate the grace
// period being proven (the same argument arena.go makes for slots published
// after the advance's high-bound load). Conversely a walk that still sees a
// bit mid-release only visits a slot whose drain is in progress: its hazard
// arrays are being zeroed and its membership is inactive or about to Leave —
// visiting it is harmless, exactly like visiting an idle worker.
//
// Parking adds nothing new to this argument: a segment is parked only while
// every one of its slots is verifiably free AND detached from the freelist
// (checked under growMu with the whole freelist in hand), so a parked
// segment cannot gain an occupant until unpark republishes its slots — and
// unpark raises parkedFrom before the first push, re-entering the ordering
// chain above.

import "math/bits"

// markOccupied publishes slot i to reclamation walks; called by tryPop
// after winning the lease CAS (and by pin), before the guard reaches the
// tenant. The pool-wide live count is maintained for EVERY slot — it is
// the exact occupancy that shard selection, walk skipping, high-water and
// parking all read — while the two-tier index splits as before: segment-0
// slots need nothing further (their state word IS the index), grown slots
// set their segment's bitmap bit.
func (p *slotPool) markOccupied(i int) {
	p.live.Add(1)
	if uint32(i) < p.init {
		return
	}
	s, off := segOf(uint32(i), p.init)
	sg := p.segs[s].Load()
	sg.occ[off>>6].Or(1 << (off & 63))
	sg.live.Add(1)
}

// clearOccupied hides slot i from reclamation walks. Called by unlease
// after the release drain completed, before the slot re-enters the
// freelist. Segment-0 releases publish vacancy through the state store
// instead of a bitmap bit; the pool live count decrements for every slot.
func (p *slotPool) clearOccupied(i int) {
	if uint32(i) >= p.init {
		s, off := segOf(uint32(i), p.init)
		sg := p.segs[s].Load()
		sg.occ[off>>6].And(^(uint64(1) << (off & 63)))
		sg.live.Add(-1)
	}
	p.live.Add(-1)
}

// walkOccupied calls visit for every occupied (leased, pinned or draining)
// slot of every unparked segment, in ascending index order, and returns the
// number of slots visited. visit returning false stops the walk. This is
// THE iteration primitive for every reclamation pass — HP snapshot
// collection, epoch-advance checks, presence sweeps and resets, rooster
// flush walks — and its cost is O(Config.Workers + occupied slots + bitmap
// words of unparked segments), independent of how large the arena once
// grew. See the file comment for why a slot leased concurrently with the
// walk is either observed or provably irrelevant.
func (p *slotPool) walkOccupied(visit func(i int) bool) int {
	visited := 0
	// Tier 1: segment 0 by state — occupied means anything but free.
	for i := range p.seg0.state {
		if p.seg0.state[i].Load() != slotFree {
			visited++
			if !visit(i) {
				return visited
			}
		}
	}
	// Tier 2: grown segments by bitmap, up to the parked suffix.
	hi := p.high.Load()
	pf := int(p.parkedFrom.Load())
	for s := 1; s < pf; s++ {
		lo, _ := segBounds(s, p.init, p.cap)
		if lo >= hi {
			break
		}
		sg := p.segs[s].Load()
		for wi := range sg.occ {
			w := sg.occ[wi].Load()
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				visited++
				if !visit(int(lo) + wi<<6 + b) {
					return visited
				}
			}
		}
	}
	return visited
}

// occupancyEstimate reads the current occupancy (live leases + pins) —
// the pool's exact live count, clamped to [0, high] against transient
// reorderings with a concurrent grow's high publication.
func (p *slotPool) occupancyEstimate() int64 {
	occ := p.live.Load()
	if occ < 0 {
		occ = 0
	}
	if hi := int64(p.high.Load()); occ > hi {
		occ = hi
	}
	return occ
}

// parkCandidate returns the highest unparked segment index (>= 1) that the
// cheap, lock-free preconditions currently allow parking, or -1.
// Preconditions: the segment exists and is beyond segment 0 (positional
// pins live there and never release), its live count is zero (no leased
// slot — so a drain's releases skip park attempts in O(1) while the
// trailing segment is still partially occupied), and occupancy sits at or
// below the low-water mark — half the capacity that would remain below
// the parked segment, which doubles as the unpark hysteresis (growth
// unparks only when the freelist runs dry, i.e. occupancy reached that
// remaining capacity). Whether the segment is really all-free is verified
// exactly inside parkSegLocked, with the freelist in hand; the live==0
// precheck bounds how often that detach runs (an abort then requires a
// release caught between its live decrement and its freelist push — a
// transient that resolves itself, so no backoff state is needed).
func (p *slotPool) parkCandidate() int {
	hi := p.high.Load()
	if hi <= p.init {
		return -1
	}
	cand, _ := segOf(hi-1, p.init) // top published segment
	if pf := int(p.parkedFrom.Load()); pf <= cand {
		cand = pf - 1
	}
	if cand < 1 {
		return -1
	}
	sg := p.segs[cand].Load()
	if sg == nil || sg.live.Load() != 0 {
		return -1
	}
	lo, _ := segBounds(cand, p.init, p.cap)
	if 2*p.occupancyEstimate() > int64(lo) {
		return -1
	}
	return cand
}

// maybePark is the release-path parking hook: when the cheap preconditions
// hold it takes the growth lock (TryLock — parking is best-effort and must
// never block a release; the next release retries) and parks every trailing
// segment the conditions allow. The common case — occupancy healthy, or
// nothing grown, or the trailing segment still in use — is a handful of
// loads and no lock.
func (p *slotPool) maybePark() {
	if p.parkCandidate() < 0 {
		return
	}
	if !p.growMu.TryLock() {
		return
	}
	defer p.growMu.Unlock()
	parked := false
	for p.parkSegLocked() {
		parked = true
	}
	if parked {
		p.retuneLocked()
	}
}

// parkSegLocked parks the current candidate segment, if any, and reports
// whether it did. Caller holds growMu. The freelist is detached wholesale
// (the same one-CAS detach the orphan list uses), the candidate's slots are
// filtered out, and everything else is pushed back; if any candidate slot is
// missing from the detached chain — a concurrent release has cleared its
// occupancy bit but not yet pushed it — the park aborts and restores the
// list untouched. Holding the whole freelist makes the check sound: a slot
// in hand cannot be popped, so a verified-all-free segment cannot gain an
// occupant before parkedFrom publishes the park.
func (p *slotPool) parkSegLocked() bool {
	cand := p.parkCandidate()
	if cand < 0 {
		return false
	}
	lo, end := segBounds(cand, p.init, p.cap)
	top := p.detachFreeLocked()
	var keep, seg []int
	for idx := top; idx != 0; {
		i := int(idx - 1)
		nx, _ := p.slot(i)
		idx = nx.Load()
		if uint32(i) >= lo && uint32(i) < end {
			seg = append(seg, i)
		} else {
			keep = append(keep, i)
		}
	}
	ok := len(seg) == int(end-lo)
	if ok {
		p.parkedFrom.Store(int32(cand))
		p.parkedSlots.Add(int64(end - lo))
		p.parks.Add(1)
	} else {
		// A slot of the candidate is mid-release (live already 0, push
		// still in flight): abort and restore; that release's own
		// maybePark — or any later one — retries once the push lands.
		keep = append(keep, seg...)
	}
	// Push kept slots back in reverse traversal order so the original top
	// ends back on top (LIFO warmth preserved).
	for j := len(keep) - 1; j >= 0; j-- {
		p.pushSlot(keep[j])
	}
	return ok
}

// detachFreeLocked atomically takes the entire freelist, returning the old
// top index+1 (0 = empty). Concurrent pops fail their CAS and retry against
// the emptied head — finding it empty they call grow, which serializes on
// the growMu the caller holds and re-checks the head after the caller's
// push-back. Caller holds growMu.
func (p *slotPool) detachFreeLocked() uint32 {
	for {
		h := p.head.Load()
		if uint32(h) == 0 {
			return 0
		}
		if p.head.CompareAndSwap(h, (h>>32+1)<<32) {
			return uint32(h)
		}
	}
}

// unparkOneLocked republishes the lowest parked segment's slots to the
// freelist, and reports whether there was one. Caller holds growMu (the
// grow path). Ordering: parkedFrom rises FIRST — walks and flush passes
// include the segment again (its records are drained, so the extra visits
// are no-ops) — and only then do the slots become leasable, re-entering the
// bit-set-before-tenant-activity chain of the file comment.
func (p *slotPool) unparkOneLocked() bool {
	pf := int(p.parkedFrom.Load())
	hi := p.high.Load()
	if top, _ := segOf(hi-1, p.init); pf > top {
		return false
	}
	lo, end := segBounds(pf, p.init, p.cap)
	p.parkedFrom.Store(int32(pf + 1))
	p.parkedSlots.Add(-int64(end - lo))
	p.unparks.Add(1)
	for i := int(end) - 1; i >= int(lo); i-- {
		p.pushSlot(i)
	}
	p.retuneLocked()
	return true
}

// retuneLocked re-derives the scheme's scan/fallback thresholds after a
// capacity transition (grow, park, unpark) on this pool. Caller holds this
// pool's growMu. The effective N handed to the tuner is the DOMAIN-WIDE
// unparked capacity — the façade sums every shard's high minus parked
// (shard.go) — not the instantaneous occupancy: between transitions
// occupancy can rise to that capacity without the tuner running again, and
// C's §6.2 legality bound must hold for every worker count reachable
// before the next retune. Parking still decays it — a drained arena parks
// down to its segment 0s, so N_eff falls back to the initial size. No-op
// for schemes without tunable thresholds (QSBR, None).
func (p *slotPool) retuneLocked() {
	p.all.retuneShards()
}
