package reclaim

import (
	"testing"

	"qsense/internal/mem"
)

func newQSBR(t *testing.T, pool *mem.Pool[tnode], workers, q int, limit int) *QSBR {
	t.Helper()
	d, err := NewQSBR(Config{Workers: workers, HPs: 1, Free: freeInto(pool), Q: q, MemoryLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQSBRSingleWorkerReclaimsAfterThreeQuiescentStates(t *testing.T) {
	// A node retired at local epoch e is freed when the global epoch
	// reaches e+3 (see the derivation on qsbrGuard.quiescent): a solo
	// worker needs three quiescent states.
	pool := newTestPool()
	d := newQSBR(t, pool, 1, 1, 0)
	g := d.Guard(0)
	r := allocNode(pool, 1)
	g.Retire(r)
	if pool.Valid(r) == false {
		t.Fatal("retire must not free immediately")
	}
	g.Begin()
	g.Begin()
	if !pool.Valid(r) {
		t.Fatal("two quiescent states must not be enough: a reader whose " +
			"critical section began at the retire epoch + 1 could still hold the node")
	}
	g.Begin()
	if pool.Valid(r) {
		t.Fatal("node must be freed once the global epoch is 3 past the retire epoch")
	}
	if d.Stats().Freed != 1 {
		t.Fatalf("freed = %d", d.Stats().Freed)
	}
}

func TestQSBRQuiescenceThresholdBatches(t *testing.T) {
	pool := newTestPool()
	d := newQSBR(t, pool, 1, 10, 0)
	g := d.Guard(0)
	g.Retire(allocNode(pool, 1))
	for i := 0; i < 9; i++ {
		g.Begin()
	}
	if d.Stats().QuiescentStates != 0 {
		t.Fatal("quiescent state declared before Q calls")
	}
	g.Begin() // 10th call
	if d.Stats().QuiescentStates != 1 {
		t.Fatalf("quiescent states = %d, want 1", d.Stats().QuiescentStates)
	}
}

func TestQSBRGracePeriodNeedsAllWorkers(t *testing.T) {
	pool := newTestPool()
	d := newQSBR(t, pool, 2, 1, 0)
	a, b := d.Guard(0), d.Guard(1)
	// Both quiesce once so everyone is at the global epoch.
	a.Begin()
	b.Begin()
	r := allocNode(pool, 1)
	a.Retire(r)
	// A quiesces many times, but B never does: the epoch advances at most
	// once more, and r must survive.
	for i := 0; i < 10; i++ {
		a.Begin()
	}
	if !pool.Valid(r) {
		t.Fatal("node freed although worker B never passed a quiescent state")
	}
	// Both quiesce in rounds: r must be reclaimed within a few rounds.
	for round := 0; round < 6 && pool.Valid(r); round++ {
		b.Begin()
		a.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("node not freed after all workers quiesced repeatedly")
	}
}

func TestQSBRRetiredNodeNotFreedWhileReaderInCriticalSection(t *testing.T) {
	// The QSBR contract: a node retired at epoch e is freed only after
	// every worker quiesces; a reader that read the node before it was
	// retired and has not quiesced since keeps it alive.
	pool := newTestPool()
	d := newQSBR(t, pool, 2, 1, 0)
	writer, reader := d.Guard(0), d.Guard(1)
	writer.Begin()
	reader.Begin()
	r := allocNode(pool, 42)
	// Reader "holds" r (conceptually mid-operation, no quiescent state).
	writer.Retire(r)
	for i := 0; i < 6; i++ {
		writer.Begin()
		if !pool.Valid(r) {
			t.Fatal("node freed while reader had not quiesced")
		}
		if pool.Get(r).val != 42 { // the reader's access stays safe
			t.Fatal("node corrupted")
		}
	}
	// Reader finally quiesces in rounds with the writer: r must go.
	for round := 0; round < 6 && pool.Valid(r); round++ {
		reader.Begin()
		writer.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("node still live after full grace periods")
	}
}

func TestQSBREpochAdvanceRoundRobin(t *testing.T) {
	pool := newTestPool()
	const workers = 4
	d := newQSBR(t, pool, workers, 1, 0)
	start := d.GlobalEpoch()
	for round := 0; round < 5; round++ {
		for w := 0; w < workers; w++ {
			d.Guard(w).Begin()
		}
	}
	if d.GlobalEpoch() < start+4 {
		t.Fatalf("epoch advanced only %d in 5 all-worker rounds", d.GlobalEpoch()-start)
	}
	if d.Stats().EpochAdvances == 0 {
		t.Fatal("no epoch advances recorded")
	}
}

func TestQSBRBlockingGrowsUnboundedAndFails(t *testing.T) {
	// §3.1's robustness problem: with one stalled worker, memory is never
	// reclaimed; with MemoryLimit set the domain reports failure —
	// the OOM emulation used by the Figure 5 (bottom) experiment.
	pool := newTestPool()
	const limit = 500
	d := newQSBR(t, pool, 2, 1, limit)
	active := d.Guard(0)
	stalled := d.Guard(1)
	stalled.Begin() // participates once, then stalls forever
	for i := 0; i < 2*limit; i++ {
		active.Begin()
		active.Retire(allocNode(pool, uint64(i)))
	}
	st := d.Stats()
	if st.Pending <= limit {
		t.Fatalf("pending = %d, expected growth past %d", st.Pending, limit)
	}
	if !d.Failed() {
		t.Fatal("domain must report Failed after exceeding MemoryLimit")
	}
	d.Close()
	if pool.Stats().Live != 0 {
		t.Fatal("Close must still drain everything")
	}
}

func TestQSBRCloseDrainsAllBuckets(t *testing.T) {
	pool := newTestPool()
	d := newQSBR(t, pool, 1, 1, 0)
	g := d.Guard(0)
	for i := 0; i < 10; i++ {
		g.Retire(allocNode(pool, uint64(i)))
		g.Begin()
	}
	d.Close()
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("leaked %d", live)
	}
	if st := d.Stats(); st.Pending != 0 {
		t.Fatalf("pending = %d after Close", st.Pending)
	}
}

func TestQSBRProtectIsNoOp(t *testing.T) {
	pool := newTestPool()
	d := newQSBR(t, pool, 1, 1, 0)
	g := d.Guard(0)
	r := allocNode(pool, 1)
	g.Protect(0, r) // must not prevent reclamation: QSBR ignores HPs
	g.Retire(r)
	g.Begin()
	g.Begin()
	g.Begin()
	if pool.Valid(r) {
		t.Fatal("Protect must not pin nodes under QSBR")
	}
	g.ClearHPs()
}

func TestQSBRBucketRotation(t *testing.T) {
	// Nodes retired in different epochs land in different buckets and are
	// freed in retirement order as epochs advance.
	pool := newTestPool()
	d := newQSBR(t, pool, 1, 1, 0)
	g := d.Guard(0)
	var refs []mem.Ref
	for e := 0; e < 3; e++ {
		r := allocNode(pool, uint64(e))
		g.Retire(r)
		refs = append(refs, r)
		g.Begin()
	}
	// refs[0] retired 3 advances ago: freed. refs[2] retired in the
	// current epoch: must be live.
	if pool.Valid(refs[0]) {
		t.Fatal("oldest bucket not freed")
	}
	if !pool.Valid(refs[2]) {
		t.Fatal("youngest bucket freed too early")
	}
}
