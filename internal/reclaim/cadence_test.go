package reclaim

import (
	"testing"

	"qsense/internal/mem"
)

func newCadenceDomain(t *testing.T, pool *mem.Pool[tnode], workers, k, r int, disableDeferral bool) *Cadence {
	t.Helper()
	d, err := NewCadence(Config{
		Workers: workers, HPs: k, Free: freeInto(pool), R: r,
		ManualRooster: true, DisableDeferral: disableDeferral,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCadenceDeferralProtectsUnflushedHP is the paper's core safety
// argument, end to end and deterministic: a hazard pointer that has been
// published but not yet flushed (a store sitting in the "store buffer") is
// invisible to scans — yet the node it protects survives, because it is not
// old enough until a full rooster pass has both completed after the
// retirement and flushed the publication.
func TestCadenceDeferralProtectsUnflushedHP(t *testing.T) {
	pool := newTestPool()
	d := newCadenceDomain(t, pool, 2, 1, 1, false)
	reclaimer, reader := d.Guard(0), d.Guard(1)

	r := allocNode(pool, 7)
	reader.Protect(0, r) // pending only: invisible to scans

	reclaimer.Retire(r) // R=1: scans immediately; shared HPs are empty
	if !pool.Valid(r) {
		t.Fatal("scan freed a node retired this tick: deferral broken")
	}
	if pool.Get(r).val != 7 { // the reader's access is still safe
		t.Fatal("node corrupted")
	}

	d.Rooster().Step() // pass 1: flushes reader's HP to shared
	reclaimer.Retire(allocNode(pool, 1))
	if !pool.Valid(r) {
		t.Fatal("node freed after one pass (pass may predate the stamp)")
	}

	d.Rooster().Step() // pass 2: r is now old enough...
	reclaimer.Retire(allocNode(pool, 2))
	if !pool.Valid(r) {
		t.Fatal("old-enough but HP-protected node freed")
	}

	// Reader releases; the clear is itself only visible after a flush.
	reader.Protect(0, 0)
	reclaimer.Retire(allocNode(pool, 3))
	if !pool.Valid(r) {
		t.Fatal("node freed while shared slot still held the stale protection — scan must read shared, which is fine, but then it must keep the node")
	}

	d.Rooster().Step() // pass 3: flushes the clear
	reclaimer.Retire(allocNode(pool, 4))
	if pool.Valid(r) {
		t.Fatal("released, old-enough node not reclaimed")
	}
	d.Close()
	if pool.Stats().Live != 0 {
		t.Fatalf("leak: %d", pool.Stats().Live)
	}
}

// TestCadenceWithoutDeferralIsUnsafe is the ablation the paper's §4.1
// rationale predicts: drop the old-enough check and an unflushed hazard
// pointer loses its node — a real, detected use-after-free.
func TestCadenceWithoutDeferralIsUnsafe(t *testing.T) {
	pool := newTestPool()
	d := newCadenceDomain(t, pool, 2, 1, 1, true /* DisableDeferral */)
	reclaimer, reader := d.Guard(0), d.Guard(1)

	r := allocNode(pool, 7)
	reader.Protect(0, r) // pending, not flushed
	reclaimer.Retire(r)  // scan sees no shared HP and no age check: frees!

	viol := violationOf(func() { pool.Get(r) })
	if viol == nil {
		t.Fatal("expected a use-after-free violation with deferral disabled; " +
			"the ablation should demonstrate the §4.1 race")
	}
	d.Close()
}

func TestCadenceUnprotectedFreedAfterTwoPasses(t *testing.T) {
	pool := newTestPool()
	d := newCadenceDomain(t, pool, 1, 1, 1, false)
	g := d.Guard(0)
	r := allocNode(pool, 1)
	g.Retire(r)
	for pass := 0; pass < 2; pass++ {
		g.Retire(allocNode(pool, uint64(pass)))
		if pool.Valid(r) == false {
			t.Fatalf("freed after %d passes", pass)
		}
		d.Rooster().Step()
	}
	g.Retire(allocNode(pool, 9)) // triggers scan at tick 2
	if pool.Valid(r) {
		t.Fatal("unprotected, old-enough node not freed")
	}
}

func TestCadenceNoRoosterNoReclamation(t *testing.T) {
	// Liveness depends on rooster passes (the paper's assumption 3 —
	// "rooster processes never fail"). With the rooster halted, nothing
	// is ever old enough; once it beats again, reclamation resumes.
	pool := newTestPool()
	d := newCadenceDomain(t, pool, 1, 1, 2, false)
	g := d.Guard(0)
	for i := 0; i < 100; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if d.Stats().Freed != 0 {
		t.Fatal("freed nodes without any rooster pass")
	}
	d.Rooster().Step()
	d.Rooster().Step()
	g.Retire(allocNode(pool, 0))
	g.Retire(allocNode(pool, 0))
	if d.Stats().Freed == 0 {
		t.Fatal("no reclamation after rooster resumed")
	}
}

func TestCadenceStalledWorkerDelaysOnlyItsNodes(t *testing.T) {
	// Property 2 in spirit: a stalled reader pins at most its K nodes;
	// the system's pending count stays bounded while others churn.
	pool := newTestPool()
	const workers, k, r = 4, 2, 8
	d := newCadenceDomain(t, pool, workers, k, r, false)
	stalled := d.Guard(0)
	pinned := allocNode(pool, 99)
	stalled.Protect(0, pinned)
	d.Rooster().Step() // make the protection visible
	active := d.Guard(1)
	active.Retire(pinned) // removed, but protected by the stalled worker

	const perStep = 100
	bound := int64(workers*k + 2*perStep + r + 1)
	for step := 0; step < 50; step++ {
		for i := 0; i < perStep; i++ {
			active.Retire(allocNode(pool, uint64(i)))
		}
		d.Rooster().Step()
		if p := d.Stats().Pending; p > bound {
			t.Fatalf("pending %d exceeded bound %d at step %d", p, bound, step)
		}
	}
	if !pool.Valid(pinned) {
		t.Fatal("stalled worker's node freed — safety violated")
	}
	if pool.Get(pinned).val != 99 {
		t.Fatal("pinned node corrupted")
	}
	d.Close()
	if pool.Stats().Live != 0 {
		t.Fatalf("leak after Close: %d", pool.Stats().Live)
	}
}

func TestCadenceScanThresholdR(t *testing.T) {
	pool := newTestPool()
	d := newCadenceDomain(t, pool, 1, 1, 5, false)
	g := d.Guard(0)
	for i := 0; i < 4; i++ {
		g.Retire(allocNode(pool, uint64(i)))
	}
	if d.Stats().Scans != 0 {
		t.Fatal("scan before R retires")
	}
	g.Retire(allocNode(pool, 4))
	if d.Stats().Scans != 1 {
		t.Fatal("no scan at R retires")
	}
}

func TestCadenceStatsRoosterPasses(t *testing.T) {
	pool := newTestPool()
	d := newCadenceDomain(t, pool, 1, 1, 1, false)
	d.Rooster().Step()
	d.Rooster().Step()
	if st := d.Stats(); st.RoosterPasses != 2 {
		t.Fatalf("rooster passes = %d", st.RoosterPasses)
	}
	d.Close()
}

func TestCadenceStartedRoosterTimerDriven(t *testing.T) {
	// With a real timer the same lifecycle works without manual steps.
	pool := newTestPool()
	d, err := NewCadence(Config{Workers: 1, HPs: 1, Free: freeInto(pool), R: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard(0)
	deadline := 2000
	for i := 0; d.Stats().Freed == 0 && i < deadline; i++ {
		g.Begin()
		g.Retire(allocNode(pool, uint64(i)))
		if i%100 == 99 {
			sleepMs(1)
		}
	}
	if d.Stats().Freed == 0 {
		t.Fatal("timer-driven cadence never freed")
	}
	d.Close()
	if pool.Stats().Live != 0 {
		t.Fatalf("leak: %d", pool.Stats().Live)
	}
}
