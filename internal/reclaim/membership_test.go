package reclaim

import (
	"testing"
	"time"

	"qsense/internal/mem"
)

func TestQSBRLeaveUnblocksReclamation(t *testing.T) {
	// Without Leave, a silent worker freezes the epoch (see
	// TestQSBRBlockingGrowsUnboundedAndFails). With Leave, the remaining
	// worker reclaims alone.
	pool := newTestPool()
	d := newQSBR(t, pool, 2, 1, 0)
	active, idle := d.Guard(0), d.Guard(1)
	idle.Begin()
	r := allocNode(pool, 1)
	active.Retire(r)
	idle.(Leaver).Leave() // announces: holding nothing, going away
	for i := 0; i < 6 && pool.Valid(r); i++ {
		active.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("epoch frozen although the idle worker left")
	}
	d.Close()
}

func TestQSBRJoinResumesParticipation(t *testing.T) {
	// After Join the worker blocks grace periods again: the protocol
	// must wait for it exactly as before.
	pool := newTestPool()
	d := newQSBR(t, pool, 2, 1, 0)
	active, flaky := d.Guard(0), d.Guard(1)
	flaky.(Leaver).Leave()
	active.Begin() // advances freely while flaky is away
	active.Begin()
	flaky.(Leaver).Join()
	r := allocNode(pool, 1)
	active.Retire(r)
	for i := 0; i < 10; i++ {
		active.Begin()
	}
	if !pool.Valid(r) {
		t.Fatal("node freed although the rejoined worker never quiesced")
	}
	// Once it participates, reclamation completes.
	for i := 0; i < 6 && pool.Valid(r); i++ {
		flaky.Begin()
		active.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("node not freed after rejoined worker quiesced")
	}
	d.Close()
}

func TestQSBRLeaveFreesOwnBacklogOnRejoin(t *testing.T) {
	// Nodes the leaver retired age out while it is away (other workers
	// advance the epoch); Join frees them wholesale.
	pool := newTestPool()
	d := newQSBR(t, pool, 2, 1, 0)
	active, leaver := d.Guard(0), d.Guard(1)
	r := allocNode(pool, 1)
	leaver.Retire(r)
	leaver.(Leaver).Leave()
	for i := 0; i < 8; i++ { // >= 3 epoch advances while away
		active.Begin()
	}
	if !pool.Valid(r) {
		t.Fatal("leaver's backlog freed before it rejoined (buckets are guard-local)")
	}
	leaver.(Leaver).Join()
	if pool.Valid(r) {
		t.Fatal("aged-out backlog not freed on Join")
	}
	if d.Stats().Rejoins != 1 {
		t.Fatalf("rejoins = %d", d.Stats().Rejoins)
	}
	d.Close()
}

func TestQSBREvictionRecoversFromCrash(t *testing.T) {
	// The paper's sketch: a crashed worker is evicted after EvictAfter
	// of silence, and reclamation resumes without it.
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), Q: 1,
		EvictAfter: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	active, crashed := d.Guard(0), d.Guard(1)
	crashed.Begin() // alive once, then crashes silently
	r := allocNode(pool, 1)
	active.Retire(r)
	deadline := time.Now().Add(2 * time.Second)
	for pool.Valid(r) && time.Now().Before(deadline) {
		active.Begin()
		time.Sleep(time.Millisecond)
	}
	if pool.Valid(r) {
		t.Fatal("eviction did not unblock reclamation")
	}
	if d.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", d.Stats().Evictions)
	}
	// The "crashed" worker restarts: its first quiescent state rejoins.
	crashed.Begin()
	if d.Stats().Rejoins != 1 {
		t.Fatalf("rejoins = %d", d.Stats().Rejoins)
	}
	// And it participates again: it can block a grace period.
	r2 := allocNode(pool, 2)
	active.Retire(r2)
	for i := 0; i < 6; i++ {
		active.Begin()
	}
	if !pool.Valid(r2) {
		t.Fatal("rejoined worker ignored by grace periods")
	}
	d.Close()
}

func TestQSenseEvictionRestoresFastPathAfterCrash(t *testing.T) {
	// §5.2: "if a process crashes and never recovers, QSense will switch
	// to fallback mode and stay there forever" — unless eviction is
	// enabled. The crashed worker is evicted; presence scanning then
	// ignores it; the system returns to (and stays on) the fast path.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1, Free: freeInto(pool),
		ManualRooster: true, EvictAfter: 20 * time.Millisecond,
		PresenceResetTicks: 1}
	cfg.C = LegalC(cfg)
	d, err := NewQSense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	active, crashed := d.Guard(0), d.Guard(1)
	crashed.Begin() // alive once, then crashes
	for i := 0; i < cfg.C+1; i++ {
		active.Retire(allocNode(pool, uint64(i)))
	}
	if !d.InFallback() {
		t.Fatal("setup: not in fallback")
	}
	d.Rooster().Step() // presence reset: the crashed worker's stale flag clears
	active.Begin()
	if !d.InFallback() {
		t.Fatal("switched back while the crashed worker still counted " +
			"(eviction window has not elapsed yet)")
	}
	// Without eviction this would loop forever; with it, the presence
	// scan evicts the stale worker and the switch-back proceeds.
	time.Sleep(25 * time.Millisecond) // exceed EvictAfter
	deadline := time.Now().Add(2 * time.Second)
	for d.InFallback() && time.Now().Before(deadline) {
		active.Begin()
		d.Rooster().Step()
	}
	if d.InFallback() {
		t.Fatal("never recovered the fast path after the crash")
	}
	if d.Stats().Evictions == 0 {
		t.Fatal("no eviction recorded")
	}
	// Fast path works solo: retire + quiesce reclaims.
	r := allocNode(pool, 9)
	active.Retire(r)
	for i := 0; i < 8 && pool.Valid(r); i++ {
		active.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("solo fast path does not reclaim after eviction")
	}
	d.Close()
}

func TestQSenseLeaveAllowsSwitchBack(t *testing.T) {
	// A worker that announces Leave (rather than crashing) immediately
	// stops counting toward presence: switch-back needs no eviction.
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 1, Q: 1, R: 1, Free: freeInto(pool), ManualRooster: true}
	cfg.C = LegalC(cfg)
	d, err := NewQSense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	active, leaver := d.Guard(0), d.Guard(1)
	leaver.Begin()
	for i := 0; i < cfg.C+1; i++ {
		active.Retire(allocNode(pool, uint64(i)))
	}
	if !d.InFallback() {
		t.Fatal("setup: not in fallback")
	}
	leaver.(Leaver).Leave()
	active.Begin() // presence of the leaver no longer required
	if d.InFallback() {
		t.Fatal("switch-back blocked by a worker that left")
	}
	d.Close()
}

func TestEvictionDisabledByDefault(t *testing.T) {
	// Without EvictAfter, a silent worker is never evicted — slowness
	// must not be treated as crash unless opted in.
	pool := newTestPool()
	d := newQSBR(t, pool, 2, 1, 0)
	active, silent := d.Guard(0), d.Guard(1)
	silent.Begin()
	r := allocNode(pool, 1)
	active.Retire(r)
	for i := 0; i < 50; i++ {
		active.Begin()
		time.Sleep(time.Millisecond)
	}
	if !pool.Valid(r) {
		t.Fatal("node freed: worker was implicitly evicted")
	}
	if d.Stats().Evictions != 0 {
		t.Fatal("eviction happened without opt-in")
	}
	d.Close()
}

func TestLeaverInterfaceCoverage(t *testing.T) {
	// Epoch-based guards implement Leaver; per-node schemes do not need
	// membership and do not implement it.
	pool := newTestPool()
	free := freeInto(pool)
	mk := func(name string) Guard {
		d, err := New(name, Config{Workers: 1, HPs: 1, Free: free, ManualRooster: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		return d.Guard(0)
	}
	if _, ok := mk("qsbr").(Leaver); !ok {
		t.Fatal("qsbr guard must implement Leaver")
	}
	if _, ok := mk("qsense").(Leaver); !ok {
		t.Fatal("qsense guard must implement Leaver")
	}
	if _, ok := mk("hp").(Leaver); ok {
		t.Fatal("hp guard must not implement Leaver (wait-free already)")
	}
	if _, ok := mk("cadence").(Leaver); ok {
		t.Fatal("cadence guard must not implement Leaver")
	}
	_ = mem.Ref(0)
}
