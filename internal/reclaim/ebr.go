package reclaim

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
)

// EBR is epoch-based reclamation in the Fraser style (paper references
// [11], [13], §8 "Epoch-based techniques") — the second classic baseline
// next to QSBR, implemented for the related-work comparison and the
// ablation benchmarks.
//
// Where QSBR asks the application to declare quiescent states and pays
// almost nothing per operation, EBR brackets every operation as a critical
// section: Begin announces (epoch, active) with a sequentially consistent
// store — the announcement must be visible before the traversal's loads, so
// on x86 this costs an XCHG per operation, which is exactly why Hart et
// al. [14] measure EBR behind QSBR. ClearHPs (called by the structures at
// the end of every operation) marks the worker inactive.
//
// The robustness trade sits between QSBR and the pointer schemes: a worker
// delayed BETWEEN operations is inactive and never blocks a grace period
// (QSBR's quiescence requires positive action, so an idle QSBR worker
// blocks); a worker delayed INSIDE an operation pins its announced epoch
// and blocks reclamation after at most two further advances, exactly like
// QSBR. The tests demonstrate both halves.
//
// Epoch arithmetic: retires go into bucket (announced epoch mod 3); the
// global epoch may only advance from e to e+1 when every active worker has
// announced e — a check that walks only OCCUPIED slots (occupancy.go), so
// its cost tracks live workers, not the arena's high-water size; a worker
// freshly announcing epoch g frees its bucket (g mod 3), whose contents
// were retired at announced epoch g-3. By then advances to g-1 and g have
// both happened, so no critical section that could have obtained a
// reference (one announced at g-2 or earlier) survives.
type EBR struct {
	cfg     Config
	cnt     counters
	tune    *tuner
	epoch   atomic.Uint64
	slots   *shardedPool
	orphans shardedOrphans
	guards  *shardedArena[*ebrGuard]
}

type ebrGuard struct {
	d  *EBR
	id int
	// word packs (announced epoch << 1) | active. Peers read it in
	// tryAdvance; the owner writes it in Begin/ClearHPs.
	word         atomic.Uint64
	lastSeen     uint64 // last epoch whose bucket this guard freed
	adoptSeen    uint64 // last epoch at which this guard tried orphan adoption
	limbo        [3][]mem.Ref
	sinceAdvance int
	tally        tally
	tc           tunerCache
	_            [40]byte // keep adjacent guards' hot words apart
}

// NewEBR builds an epoch-based reclamation domain.
func NewEBR(cfg Config) (*EBR, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &EBR{cfg: cfg}
	d.tune = newTuner(cfg, &d.cnt)
	d.orphans.init(cfg.Shards)
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *ebrGuard {
		return &ebrGuard{d: d, id: i, tc: tunerCache{r: cfg.R, c: cfg.C}}
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, d.tune, d.guards.growShard)
	return d, nil
}

// Guard implements Domain (deprecated positional access). EBR guards are
// born inactive (outside any critical section), so pinning needs no
// membership work: an idle guard never blocks grace periods.
func (d *EBR) Guard(w int) Guard {
	d.slots.pin(w)
	return d.guards.at(w)
}

// Acquire implements Domain: lease a slot and catch it up — free the limbo
// bucket the current epoch proves aged (what Begin would do on its next
// announcement) and nudge the global epoch, which under pure handle churn
// is the main advance driver.
func (d *EBR) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *EBR) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

func (d *EBR) join(w int) Guard {
	g := d.guards.at(w)
	if e := d.epoch.Load(); e != g.lastSeen {
		g.lastSeen = e
		g.freeBucket(int(e % 3))
	}
	g.tryAdvance()
	// Orphan adoption, at most once per epoch advance (see Begin): batch
	// maturity only changes with the epoch, so a lease-churn workload must
	// not detach-and-repush immature batches on every Acquire.
	if e := d.epoch.Load(); e != g.adoptSeen && !d.orphans.empty() {
		g.adoptSeen = e
		d.orphans.adoptEpoch(e, d.cfg.Free, &d.cnt)
	}
	d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
	g.tc.refresh(d.tune)
	return g
}

// Release implements Domain: exit the critical section (the guard goes
// inactive, so it cannot block grace periods while the slot sits vacant),
// help the epoch along, move the remaining limbo to the orphan list —
// stamped with the current global epoch, so any worker's Begin adopts it
// three advances later — and recycle the slot.
func (d *EBR) Release(gd Guard) {
	g, ok := gd.(*ebrGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.ClearHPs()
		g.tryAdvance()
		g.orphanLimbo()
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
	})
}

// Name implements Domain.
func (d *EBR) Name() string { return "ebr" }

// Failed implements Domain.
func (d *EBR) Failed() bool { return d.cnt.failed.Load() }

// GlobalEpoch exposes the global epoch for tests.
func (d *EBR) GlobalEpoch() uint64 { return d.epoch.Load() }

// Stats implements Domain.
func (d *EBR) Stats() Stats {
	s := Stats{Scheme: "ebr"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain: frees all limbo contents and drains the orphan
// list. Call only once all workers have stopped.
func (d *EBR) Close() {
	d.guards.forEach(func(g *ebrGuard) {
		for b := range g.limbo {
			g.freeBucket(b)
		}
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

// Begin enters a critical section: announce the current global epoch and
// become active. The announcement uses a sequentially consistent store so
// it is visible to reclaimers before any of the section's loads (the
// per-operation cost EBR pays that QSBR does not). Entering epoch g for
// the first time frees bucket g mod 3 (retired at g-3; see type comment).
func (g *ebrGuard) Begin() {
	e := g.d.epoch.Load()
	g.word.Store(e<<1 | 1)
	// Fault point: stalled here, the worker is active at epoch e forever —
	// after at most two more advances the global epoch freezes on it.
	g.d.cfg.fire(FaultQuiesce, g.id)
	if e != g.lastSeen {
		g.lastSeen = e
		g.freeBucket(int(e % 3))
		g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	}
	// Orphan adoption: when a released slot left a backlog behind, pure
	// Begin activity must make progress on it — EBR's epoch otherwise only
	// advances from Retire/Acquire/Release. The empty check keeps the
	// common case to one pointer load; adoption itself runs at most once
	// per epoch advance, since batch maturity only changes when the epoch
	// does.
	if !g.d.orphans.empty() {
		g.tryAdvance()
		if e := g.d.epoch.Load(); e != g.adoptSeen {
			g.adoptSeen = e
			g.d.orphans.adoptEpoch(e, g.d.cfg.Free, &g.d.cnt)
		}
	}
}

// ClearHPs exits the critical section: the worker no longer pins its
// announced epoch and cannot block grace periods while idle.
func (g *ebrGuard) ClearHPs() {
	g.word.Store(g.word.Load() &^ 1)
}

// Protect is a no-op: EBR readers are protected by their active epoch.
func (g *ebrGuard) Protect(i int, r mem.Ref) {}

func (g *ebrGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	e := g.word.Load() >> 1
	g.limbo[e%3] = append(g.limbo[e%3], r.Untagged())
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
	g.sinceAdvance++
	if g.sinceAdvance >= g.tc.r {
		g.sinceAdvance = 0
		g.tryAdvance()
		g.tc.refresh(g.d.tune)
	}
}

// tryAdvance increments the global epoch if every active worker has
// announced it. The check walks only occupied slots — a vacant guard's
// word has the active bit clear (Release runs ClearHPs in its drain), so
// skipping it changes no outcome — and inactive workers (idle between
// operations) are skipped as before: the robustness half EBR has over
// QSBR. A tenant whose lease races the walk is born inactive and announces
// only epochs current at or after its lease, so missing it cannot fake a
// grace period (the argument of occupancy.go, previously made in arena.go
// for the published-high bound).
func (g *ebrGuard) tryAdvance() {
	e := g.d.epoch.Load()
	ok := true
	visited := g.d.slots.walkOccupied(func(i int) bool {
		w := g.d.guards.at(i).word.Load()
		if w&1 == 1 && w>>1 != e {
			ok = false
			return false
		}
		return true
	})
	g.d.cnt.tallyScanned(&g.tally, visited)
	if !ok {
		return
	}
	if g.d.epoch.CompareAndSwap(e, e+1) {
		g.d.cnt.epochs.Add(1)
	}
}

func (g *ebrGuard) slotID() int { return g.id }

// orphanLimbo moves the guard's remaining limbo to its OWN shard's orphan
// list in one batch stamped with the current global epoch (release drain
// only) — one CAS moves the whole backlog.
func (g *ebrGuard) orphanLimbo() {
	g.d.orphans.at(g.id).addRefBuckets(&g.limbo, g.d.epoch.Load(), &g.d.cnt)
}

func (g *ebrGuard) freeBucket(b int) {
	bucket := g.limbo[b]
	if len(bucket) == 0 {
		return
	}
	for _, r := range bucket {
		g.d.cfg.Free(r)
	}
	g.d.cnt.tallyFree(&g.tally, len(bucket))
	g.limbo[b] = bucket[:0]
}
