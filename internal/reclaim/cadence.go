package reclaim

import (
	"context"

	"qsense/internal/mem"
	"qsense/internal/rooster"
)

// Cadence is the paper's novel fallback scheme (§5.1): hazard pointers
// without per-node memory fences. It can also be used stand-alone, as here.
//
// Two mechanisms replace the fence:
//
//  1. Rooster passes. Protect publishes into the guard's pending slots with
//     a bare store; the rooster manager copies pending into the shared slots
//     every interval T. A hazard pointer therefore becomes visible to scans
//     at most one full pass after it is stored — the analog of the paper's
//     context-switch-drains-store-buffer argument. The domain registers one
//     flush target (recFlusher) that walks the occupancy index, so a pass
//     flushes only live records however large the arena once grew.
//  2. Deferred reclamation. Retire stamps the node with the current rooster
//     tick; scan only frees nodes whose stamp is at least two completed
//     passes old (rooster.OldEnough — Figure 4's T+ε condition in tick
//     form). By then, any hazard pointer stored before the node was removed
//     has been flushed, so the shared-slot snapshot is conclusive.
//
// Dropping either mechanism is unsafe; the DisableDeferral ablation
// demonstrably produces use-after-free violations (see cadence tests and
// the §4.1 model in internal/tso).
type Cadence struct {
	cfg     Config
	cnt     counters
	tune    *tuner
	mgr     *rooster.Manager
	slots   *shardedPool
	orphans shardedOrphans
	recs    *shardedArena[*hprec]
	guards  *shardedArena[*cadenceGuard]
}

type cadenceGuard struct {
	d         *Cadence
	id        int
	rec       *hprec
	rl        []retired
	sinceScan int
	tally     tally
	tc        tunerCache
	scanBuf   []uint64
}

// NewCadence builds a stand-alone Cadence domain and starts its rooster
// manager (unless Config.ManualRooster).
func NewCadence(cfg Config) (*Cadence, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &Cadence{cfg: cfg, mgr: rooster.NewManager(cfg.Rooster)}
	d.tune = newTuner(cfg, &d.cnt)
	d.orphans.init(cfg.Shards)
	d.recs = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *hprec {
		return newHPRec(cfg.HPs)
	})
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *cadenceGuard {
		return &cadenceGuard{d: d, id: i, rec: d.recs.at(i),
			tc: tunerCache{r: cfg.R, c: cfg.C}}
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, d.tune, func(s, hi int) {
		d.recs.growShard(s, hi)
		d.guards.growShard(s, hi)
	})
	// One occupancy-walking flush target PER SHARD covers every record,
	// current and future: growth publishes records before their slots can
	// lease, each target walks exactly its own pool's occupied slots, and
	// an idle shard's target returns on one load — so rooster registration
	// is a construction-time affair and flush passes cost O(live).
	for s, p := range d.slots.pools {
		d.mgr.Register(&recFlusher{p: p, recs: d.recs.shards[s], cnt: &d.cnt})
	}
	d.mgr.AddHook(1, d.orphans.adoptHook(d.mgr, d.slots, d.recs, d.cfg, &d.cnt))
	if !cfg.ManualRooster {
		d.mgr.Start()
	}
	return d, nil
}

// Guard implements Domain (deprecated positional access): pins slot w and
// marks its hazard record live for scans and rooster flushes.
func (d *Cadence) Guard(w int) Guard {
	if d.slots.pin(w) {
		d.recs.at(w).leased.Store(true)
	}
	return d.guards.at(w)
}

// Acquire implements Domain: lease a slot, drain any hazard state a racing
// rooster flush may have re-published after the previous release, and make
// the record visible to scans and flush passes again.
func (d *Cadence) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *Cadence) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

func (d *Cadence) join(w int) Guard {
	g := d.guards.at(w)
	g.rec.clearPending()
	g.rec.clearShared()
	g.rec.leased.Store(true)
	g.tc.refresh(d.tune)
	return g
}

// Release implements Domain: drain both hazard arrays, run one deferred
// scan so everything provably safe frees immediately, move the remainder
// (protected or not yet old enough) to the orphan list — adopted by any
// worker's later scan or by a rooster pass — hide the record, recycle.
func (d *Cadence) Release(gd Guard) {
	g, ok := gd.(*cadenceGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.rec.clearPending()
		g.rec.clearShared()
		if len(g.rl) > 0 {
			g.scan()
		}
		if len(g.rl) > 0 {
			d.orphans.at(g.id).add(nil, g.rl, 0, &d.cnt)
			g.rl = nil
		}
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
		g.rec.leased.Store(false)
	})
}

// Name implements Domain.
func (d *Cadence) Name() string { return "cadence" }

// Failed implements Domain.
func (d *Cadence) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain.
func (d *Cadence) Stats() Stats {
	s := Stats{Scheme: "cadence", RoosterPasses: d.mgr.Tick()}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Rooster exposes the manager so tests can drive passes deterministically.
func (d *Cadence) Rooster() *rooster.Manager { return d.mgr }

// Close implements Domain: stops the rooster, frees all pending retires and
// drains the orphan list. Only call after all workers have stopped.
func (d *Cadence) Close() {
	d.mgr.Stop()
	d.guards.forEach(func(g *cadenceGuard) {
		for _, r := range g.rl {
			d.cfg.Free(r.ref)
		}
		d.cnt.tallyFree(&g.tally, len(g.rl))
		g.rl = g.rl[:0]
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

func (g *cadenceGuard) Begin() {}

// Protect publishes without a fence (Algorithm 3, assign_HP: "No need for a
// memory barrier here").
func (g *cadenceGuard) Protect(i int, r mem.Ref) {
	g.rec.publishPending(i, r)
	// Fault point: stalled after the bare-store publication, the reader
	// pins only what its pending slots name once the rooster flushes them.
	g.d.cfg.fire(FaultProtect, g.id)
}

func (g *cadenceGuard) ClearHPs() { g.rec.clearPending() }

// Retire timestamps the node and schedules it (Algorithm 5, free_node_later
// in stand-alone form).
func (g *cadenceGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	g.d.mgr.Poll() // cooperative rooster: run an overdue pass inline
	g.rl = append(g.rl, retired{ref: r.Untagged(), stamp: g.d.mgr.Tick()})
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
	g.sinceScan++
	if g.sinceScan >= g.tc.r {
		g.sinceScan = 0
		g.scan()
	}
}

func (g *cadenceGuard) slotID() int { return g.id }

// scan runs one deferred scan over the guard's retire list and then adopts
// eligible orphans against the same snapshot. Order matters: the tick is
// captured and every shard's orphan chain detached BEFORE the snapshot
// (see Manager.OldEnoughAt and orphanList.adoptDetached for the two halves
// of the argument).
func (g *cadenceGuard) scan() {
	g.d.cnt.scans.Add(1)
	tick := g.d.mgr.Tick()
	batches := g.d.orphans.detachAll()
	snap, visited := snapshotShared(g.d.slots, g.d.recs, g.scanBuf)
	g.d.cnt.tallyScanned(&g.tally, visited)
	g.scanBuf = snap.vals
	var freed int
	g.rl, freed = filterDeferred(g.d.cfg, g.d.mgr, tick, snap, g.rl)
	g.d.cnt.tallyFree(&g.tally, freed)
	g.d.orphans.adoptDetachedAll(batches, snap, g.d.mgr, tick, g.d.cfg, &g.d.cnt)
	g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	g.tc.refresh(g.d.tune)
}

// filterDeferred is the body of Cadence's scan (Algorithm 3, lines 14–33):
// free the nodes of rl that are old enough — judged against a tick the
// caller captured before taking snap, never the live clock — and
// unprotected in snap; keep the rest (in place). A nil mgr skips the
// oldness rule entirely (classic HP has no deferral). Shared by QSense and
// the orphan adopters.
func filterDeferred(cfg Config, mgr *rooster.Manager, tick uint64, snap hpSnapshot, rl []retired) ([]retired, int) {
	kept := rl[:0]
	freed := 0
	for _, n := range rl {
		if (mgr != nil && !cfg.DisableDeferral && !mgr.OldEnoughAt(n.stamp, tick)) || snap.contains(n.ref) {
			kept = append(kept, n)
		} else {
			cfg.Free(n.ref)
			freed++
		}
	}
	return kept, freed
}
