package reclaim

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
)

// IBR is interval-based reclamation in the 2GEIBR style (Wen et al., via
// Singh's SMR survey — PAPERS.md): the first post-paper scheme family, next
// to Hyaline. Every node carries a birth era (stamped by mem.Pool at Alloc,
// read back through Config.Era) and a retire era (stamped here at Retire),
// so its lifetime is the closed interval [birth, retire]. Every guard
// publishes a reservation interval [lower, upper]: Begin resets it to the
// current era, and each Protect widens upper to the era of the access. A
// scan frees exactly the retired nodes whose lifetime interval misses every
// active reservation.
//
// The robustness trade: like the epoch schemes, readers pay no per-pointer
// fence — Protect is one owner-only load/store pair, not HP's fenced
// publication — but unlike them, a stalled reader pins only the eras its
// reservation spans. Nodes born after the straggler's upper bound reclaim
// freely, so a delayed process bounds garbage by its own reservation width
// instead of blocking reclamation globally (the property Stats reports as
// IBRIntervalWidth). The safety argument is Michael-shaped, not fence-
// shaped: a reader widens upper BEFORE dereferencing and re-validates the
// source link after Protect, so a node it can still reach has a lifetime
// intersecting its reservation; a node unlinked before the reader's Begin
// is unreachable from the root, and the substrate's generation tags plus
// link re-validation reject anything freed mid-traversal. This is why the
// applicability matrix requires "tolerates transient access to retired
// nodes" of IBR's structures — the guarded-traversal containers all do.
//
// The era clock advances every eraQ retires — an ADAPTIVE cadence seeded
// from Config.Q (the 2GEIBR epochFreq knob) and steered by the observed
// reservation width: when a scan sees a reservation spanning more than
// ibrWidthTarget eras, the cadence tightens (eraQ halves, floored at
// max(1, Q/4)) so the birth clock outruns the wide interval — freshly
// allocated nodes are born PAST a straggler's frozen upper bound and
// reclaim without waiting on it, which is the whole robustness claim.
// When every reservation is narrow the cadence relaxes (eraQ doubles,
// capped at Q*16) to shed the clock-advance traffic an over-eager era
// costs on the fast path. The inverse policy — slowing the clock under a
// wide reservation — would be exactly wrong: with the era frozen, every
// new birth stays <= the straggler's upper and is covered forever. The
// clock also advances on orphan-draining Begins; scans run every R retires
// (retuned with occupancy like the pointer schemes). With a nil Config.Era
// the domain falls back to an internal clock whose nodes are all born at
// era 0 — safe but epoch-equivalent (see EraSource); the public layer
// wires each container's pool clock so real interval reclamation engages.
type IBR struct {
	cfg     Config
	cnt     counters
	tune    *tuner
	era     EraSource
	slots   *shardedPool
	orphans shardedOrphans
	guards  *shardedArena[*ibrGuard]
	// eraQ is the adaptive retires-per-era-advance cadence (see the type
	// comment); eraQFloor/eraQCap bound it. Plain Store races between
	// concurrent scanners are benign — every written value is in range.
	eraQ               atomic.Int64
	eraQFloor, eraQCap int64
}

// ibrWidthTarget is the reservation width (in eras) the cadence controller
// steers toward: wider observed reservations tighten eraQ, reservations at
// most one era wide relax it. Between the two bounds the cadence holds —
// the hysteresis band that keeps the controller from oscillating.
const ibrWidthTarget = 4

// resInactive is the lower-bound sentinel of an inactive reservation:
// lower > upper encodes "no reservation", and MaxUint64 keeps every
// comparison against a real era false without a separate flag word.
const resInactive = ^uint64(0)

type ibrGuard struct {
	d  *IBR
	id int
	// lower/upper are the published reservation. The owner writes them
	// (Begin, Protect, ClearHPs); scanning peers read them. Torn reads are
	// conservative by construction: lower only moves while the owner holds
	// no references (Begin/ClearHPs), and upper's single-word widening can
	// only be missed by a scan that ordered before the access it covers —
	// the re-validation argument in the type comment absorbs that case.
	lower     atomic.Uint64
	upper     atomic.Uint64
	lastSeen  uint64 // last era whose flush this guard performed (Begin)
	adoptSeen uint64 // last era at which this guard swept the orphan lists
	limbo     []retired
	sinceEra  int // retires since the last era advance (Q cadence)
	sinceScan int // retires since the last scan (R cadence)
	resBuf    []eraInterval
	tally     tally
	tc        tunerCache
	_         [40]byte // keep adjacent guards' hot words apart
}

// localEra is the nil-Config.Era fallback clock: a domain-private era with
// every node's birth pinned at 0. Safe (nothing frees early) but unable to
// reclaim past a stalled reader — wiring the pool clock restores that.
type localEra struct{ e atomic.Uint64 }

func (l *localEra) Era() uint64             { return l.e.Load() }
func (l *localEra) AdvanceEra() uint64      { return l.e.Add(1) }
func (l *localEra) BirthEra(mem.Ref) uint64 { return 0 }

// NewIBR builds an interval-based reclamation domain.
func NewIBR(cfg Config) (*IBR, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &IBR{cfg: cfg, era: cfg.Era}
	if d.era == nil {
		d.era = &localEra{}
	}
	d.eraQFloor = int64(cfg.Q / 4)
	if d.eraQFloor < 1 {
		d.eraQFloor = 1
	}
	d.eraQCap = int64(cfg.Q) * 16
	d.eraQ.Store(int64(cfg.Q))
	d.tune = newTuner(cfg, &d.cnt)
	d.orphans.init(cfg.Shards)
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *ibrGuard {
		g := &ibrGuard{d: d, id: i, tc: tunerCache{r: cfg.R, c: cfg.C}}
		g.lower.Store(resInactive) // zero value would reserve [0,0] forever
		return g
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, d.tune, d.guards.growShard)
	return d, nil
}

// Guard implements Domain (deprecated positional access). IBR guards are
// born with an inactive reservation, so pinning needs no membership work.
func (d *IBR) Guard(w int) Guard {
	d.slots.pin(w)
	return d.guards.at(w)
}

// Acquire implements Domain.
func (d *IBR) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *IBR) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// join catches a leased slot up: under a standing orphan backlog, advance
// the era (handle churn must be an adoption driver, like EBR's Acquire
// advance) and sweep once per new era.
func (d *IBR) join(w int) Guard {
	g := d.guards.at(w)
	if !d.orphans.empty() {
		e := d.advanceEra()
		if e != g.adoptSeen {
			g.adoptSeen = e
			g.scan()
		}
	}
	d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
	g.tc.refresh(d.tune)
	return g
}

// Release implements Domain: deactivate the reservation and move the whole
// remaining limbo to the releasing guard's own shard's orphan list as one
// interval-stamped batch — per-node [birth, retire] evidence travels with
// the batch, so any worker's later scan adopts whatever the then-active
// reservations miss, and a vacated slot never strands retired nodes.
func (d *IBR) Release(gd Guard) {
	g, ok := gd.(*ibrGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.ClearHPs()
		g.orphanLimbo()
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
	})
}

// Name implements Domain.
func (d *IBR) Name() string { return "ibr" }

// Failed implements Domain.
func (d *IBR) Failed() bool { return d.cnt.failed.Load() }

// Era exposes the current era for tests.
func (d *IBR) Era() uint64 { return d.era.Era() }

// EraQ exposes the current adaptive era-advance cadence (retires per
// AdvanceEra) for tests and diagnostics.
func (d *IBR) EraQ() int { return int(d.eraQ.Load()) }

// retuneEraQ is the cadence controller, run once per scan against the
// reservation snapshot the scan already collected: tighten toward the floor
// while any reservation spans more than ibrWidthTarget eras, relax toward
// the cap while all are at most one era wide.
func (d *IBR) retuneEraQ(res []eraInterval) {
	var w uint64
	for _, iv := range res {
		if iv.hi-iv.lo > w {
			w = iv.hi - iv.lo
		}
	}
	q := d.eraQ.Load()
	switch {
	case w > ibrWidthTarget && q > d.eraQFloor:
		if q /= 2; q < d.eraQFloor {
			q = d.eraQFloor
		}
		d.eraQ.Store(q)
	case w <= 1 && q < d.eraQCap:
		if q *= 2; q > d.eraQCap {
			q = d.eraQCap
		}
		d.eraQ.Store(q)
	}
}

// Stats implements Domain. IBRIntervalWidth is the widest active
// reservation (upper-lower) at snapshot time — how much era history the
// slowest current reader pins.
func (d *IBR) Stats() Stats {
	s := Stats{Scheme: "ibr"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	var w uint64
	d.slots.walkOccupied(func(i int) bool {
		g := d.guards.at(i)
		if lo, hi := g.lower.Load(), g.upper.Load(); lo <= hi && hi-lo > w {
			w = hi - lo
		}
		return true
	})
	s.IBRIntervalWidth = w
	return s
}

// Close implements Domain: frees all limbo contents and drains the orphan
// lists. Call only once all workers have stopped.
func (d *IBR) Close() {
	d.guards.forEach(func(g *ibrGuard) {
		for _, n := range g.limbo {
			d.cfg.Free(n.ref)
		}
		d.cnt.tallyFree(&g.tally, len(g.limbo))
		g.limbo = nil
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

func (d *IBR) advanceEra() uint64 {
	e := d.era.AdvanceEra()
	d.cnt.epochs.Add(1)
	return e
}

// Begin resets the reservation to [e, e] at the current era. Both stores
// complete before the operation's first load (SC atomics), and the guard
// holds no references at Begin, so the torn intermediate states a scanning
// peer can observe are all at-most-as-wide as a state the guard legally
// passed through. Under a standing orphan backlog, pure Begin activity must
// drive adoption — the era is advanced (reservation lower bounds of
// re-Beginning readers move past the orphans' retire stamps) and the lists
// swept at most once per new era.
func (g *ibrGuard) Begin() {
	e := g.d.era.Era()
	g.lower.Store(e)
	g.upper.Store(e)
	if !g.d.orphans.empty() {
		ne := g.d.advanceEra()
		if ne != g.adoptSeen {
			g.adoptSeen = ne
			g.scan()
		}
	}
}

// Protect widens the reservation's upper bound to the current era before
// the caller dereferences r — the per-read half of the interval argument
// (the caller's link re-validation after Protect is the other half). No
// fence, no per-pointer slot: one owner-only load/store pair. A nil r
// (slot-clear in the HP idiom) needs no widening.
func (g *ibrGuard) Protect(i int, r mem.Ref) {
	if r.IsNil() {
		return
	}
	if e := g.d.era.Era(); e > g.upper.Load() {
		g.upper.Store(e)
	}
	// Fault point: stalled with the reservation held, the reader pins
	// only nodes whose lifetime intersects [lower, upper] — nodes born
	// after its upper bound reclaim freely past it.
	g.d.cfg.fire(FaultProtect, g.id)
}

// ClearHPs deactivates the reservation: the worker no longer pins any era
// while idle between operations. lower moves to the sentinel first so every
// torn read during the transition is inactive-or-narrower.
func (g *ibrGuard) ClearHPs() {
	g.lower.Store(resInactive)
	g.upper.Store(0)
}

// Retire stamps r with its lifetime interval — birth read back from the
// era source while the retirer still owns the node, retire era taken now —
// and banks it in the guard's limbo. Every eraQ retires advance the era
// (the 2GEIBR epochFreq cadence, made adaptive — see the type comment);
// every R retires run a scan.
func (g *ibrGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	r = r.Untagged()
	g.limbo = append(g.limbo, retired{ref: r, stamp: g.d.era.Era(), birth: g.d.era.BirthEra(r)})
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
	g.sinceEra++
	if g.sinceEra >= int(g.d.eraQ.Load()) {
		g.sinceEra = 0
		g.d.advanceEra()
	}
	g.sinceScan++
	if g.sinceScan >= g.tc.r {
		g.sinceScan = 0
		g.scan()
		g.tc.refresh(g.d.tune)
	}
}

// collect snapshots every occupied slot's active reservation. The caller
// must have detached any orphan chains it will judge BEFORE calling (the
// adoptDetached ordering argument: a node entering the judged set after the
// collection could be covered by a reservation published after its slot
// was read).
func (g *ibrGuard) collect() []eraInterval {
	res := g.resBuf[:0]
	visited := g.d.slots.walkOccupied(func(i int) bool {
		p := g.d.guards.at(i)
		if lo, hi := p.lower.Load(), p.upper.Load(); lo <= hi {
			res = append(res, eraInterval{lo, hi})
		}
		return true
	})
	g.d.cnt.tallyScanned(&g.tally, visited)
	g.resBuf = res
	return res
}

// scan is IBR's reclamation pass: detach the orphan chains, snapshot the
// active reservations, free every limbo node whose lifetime misses all of
// them, then run the same check over the detached orphans (survivors go
// back to their shard's list).
func (g *ibrGuard) scan() {
	d := g.d
	batches := d.orphans.detachAll()
	res := g.collect()
	d.cnt.scans.Add(1)
	d.retuneEraQ(res)
	if len(g.limbo) > 0 {
		kept := g.limbo[:0]
		freed := 0
		for _, n := range g.limbo {
			if intervalMissesAll(res, n) {
				d.cfg.Free(n.ref)
				freed++
			} else {
				kept = append(kept, n)
			}
		}
		g.limbo = kept
		d.cnt.tallyFree(&g.tally, freed)
	}
	if batches != nil {
		d.orphans.adoptIntervalAll(batches, res, d.cfg.Free, &d.cnt)
	}
	d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
}

func (g *ibrGuard) slotID() int { return g.id }

// orphanLimbo moves the guard's remaining limbo to its OWN shard's orphan
// list in one interval-stamped batch (release drain only).
func (g *ibrGuard) orphanLimbo() {
	if len(g.limbo) == 0 {
		return
	}
	g.d.orphans.at(g.id).add(nil, g.limbo, g.d.era.Era(), &g.d.cnt)
	g.limbo = nil
}
