package reclaim

import (
	"testing"
	"testing/quick"

	"qsense/internal/mem"
)

// --- EBR ---

// TestEBRIdleWorkerDoesNotBlock: the robustness half EBR has over QSBR. A
// worker that finished its operation (ClearHPs) and then stalls
// indefinitely is inactive; grace periods advance without it and memory is
// reclaimed. Under QSBR the same worker (which stops declaring quiescent
// states) blocks reclamation forever.
func TestEBRIdleWorkerDoesNotBlock(t *testing.T) {
	pool := newTestPool()
	d, err := NewEBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), R: 4})
	if err != nil {
		t.Fatal(err)
	}
	idle := d.Guard(1)
	idle.Begin()
	idle.ClearHPs() // operation over; worker now stalls forever

	g := d.Guard(0)
	for i := 0; i < 200; i++ {
		g.Begin()
		g.Retire(allocNode(pool, uint64(i)))
		g.ClearHPs()
	}
	if st := d.Stats(); st.Freed == 0 {
		t.Fatalf("an idle (inactive) worker blocked EBR reclamation: %+v", st)
	}
	d.Close()
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("%d nodes leaked", live)
	}
}

// TestEBRMidOperationStallBlocks is the other half: a worker stalled
// INSIDE a critical section pins its announced epoch; after at most two
// further advances reclamation stops — EBR is still blocking, as §8 says
// of epoch-based techniques.
func TestEBRMidOperationStallBlocks(t *testing.T) {
	pool := newTestPool()
	d, err := NewEBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), R: 4})
	if err != nil {
		t.Fatal(err)
	}
	stuck := d.Guard(1)
	stuck.Begin() // enters a critical section and never leaves

	g := d.Guard(0)
	for i := 0; i < 400; i++ {
		g.Begin()
		g.Retire(allocNode(pool, uint64(i)))
		g.ClearHPs()
	}
	st := d.Stats()
	if st.EpochAdvances > 2 {
		t.Fatalf("epoch advanced %d times past a pinned critical section", st.EpochAdvances)
	}
	// Whatever was freed came from the first two advances; the tail must
	// be stuck.
	if st.Pending < 300 {
		t.Fatalf("reclamation proceeded past a pinned epoch: %+v", st)
	}
	d.Close()
}

// TestEBRSafetyUnderProtectedUse: a node reachable by an active critical
// section is never freed, even while other workers retire and advance
// furiously. The checksum would catch recycled memory.
func TestEBRSafetyUnderProtectedUse(t *testing.T) {
	pool := newTestPool()
	d, err := NewEBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), R: 2})
	if err != nil {
		t.Fatal(err)
	}
	reader := d.Guard(0)
	writer := d.Guard(1)

	reader.Begin() // reader's CS observes epoch e and holds a node
	held := allocNode(pool, 42)
	writer.Begin()
	writer.Retire(held)
	for i := 0; i < 100; i++ {
		writer.Begin() // re-announces; cannot advance past reader's pin
		writer.Retire(allocNode(pool, uint64(i)))
		writer.ClearHPs()
	}
	n := pool.Get(held) // must still be live
	if checksum(n.val) != n.check {
		t.Fatal("held node recycled under an active critical section")
	}
	reader.ClearHPs()
	d.Close()
}

// TestEBRFreesBatchAfterGracePeriods: nodes flow out of limbo buckets once
// the epoch cycles past them.
func TestEBRFreesBatchAfterGracePeriods(t *testing.T) {
	pool := newTestPool()
	d, err := NewEBR(Config{Workers: 1, HPs: 1, Free: freeInto(pool), R: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard(0)
	for i := 0; i < 64; i++ {
		g.Begin()
		g.Retire(allocNode(pool, uint64(i)))
		g.ClearHPs()
	}
	if st := d.Stats(); st.Freed < 32 {
		t.Fatalf("solo EBR worker barely reclaimed: %+v", st)
	}
	d.Close()
}

// --- RC ---

// TestRCProtectedNodeSurvives: a counted reference blocks the claim; the
// release unblocks it.
func TestRCProtectedNodeSurvives(t *testing.T) {
	pool := newTestPool()
	d, err := NewRC(Config{Workers: 2, HPs: 2, Free: freeInto(pool), R: 1})
	if err != nil {
		t.Fatal(err)
	}
	reader, writer := d.Guard(0).(*rcGuard), d.Guard(1)
	r := allocNode(pool, 7)
	reader.Protect(0, r)
	writer.Retire(r) // R=1: sweeps immediately, must keep r
	if !pool.Valid(r) {
		t.Fatal("counted node was freed")
	}
	// Churn more retires through the writer; r must keep surviving.
	for i := 0; i < 50; i++ {
		writer.Retire(allocNode(pool, uint64(i)))
	}
	if !pool.Valid(r) {
		t.Fatal("counted node was freed during sweeps")
	}
	reader.ClearHPs()
	for i := 0; i < 4; i++ { // sweeps now reclaim r
		writer.Retire(allocNode(pool, 99))
	}
	if pool.Valid(r) {
		t.Fatal("released node never reclaimed")
	}
	d.Close()
}

// TestRCStaleAcquireFails: protecting a reference whose node is gone
// leaves the slot empty instead of corrupting the new tenant's count.
func TestRCStaleAcquireFails(t *testing.T) {
	pool := newTestPool()
	d, err := NewRC(Config{Workers: 1, HPs: 1, Free: freeInto(pool), R: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard(0).(*rcGuard)
	r := allocNode(pool, 1)
	g.Retire(r) // swept immediately: freed
	if pool.Valid(r) {
		t.Fatal("unprotected retire not freed with R=1")
	}
	r2 := allocNode(pool, 2) // recycles the slot, new generation
	g.Protect(0, r)          // stale!
	if g.held[0] != 0 {
		t.Fatal("stale acquire succeeded")
	}
	// The live node's protection still works.
	g.Protect(0, r2)
	if g.held[0] != r2 {
		t.Fatal("live acquire failed after stale attempt")
	}
	g.Retire(r2)
	if !pool.Valid(r2) {
		t.Fatal("counted node freed")
	}
	g.ClearHPs()
	d.Close()
}

// TestRCProtectSameRefIdempotent: re-protecting the slot's current
// occupant must not change the count (or a later release would underflow).
func TestRCProtectSameRefIdempotent(t *testing.T) {
	pool := newTestPool()
	d, err := NewRC(Config{Workers: 1, HPs: 1, Free: freeInto(pool), R: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Guard(0).(*rcGuard)
	r := allocNode(pool, 3)
	for i := 0; i < 5; i++ {
		g.Protect(0, r)
	}
	g.ClearHPs() // single release must fully unprotect
	g.Retire(r)
	if pool.Valid(r) {
		t.Fatal("node not reclaimed after ClearHPs — count leaked")
	}
	d.Close()
}

// TestRCCountTableProperty: against a sequential model, any sequence of
// acquire/release/claim operations on one slot across two generations
// keeps the table's answers consistent: claims succeed exactly when the
// model count is zero, acquires fail only for superseded generations.
func TestRCCountTableProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var tbl countTable
		gen := uint32(1)
		ref := mem.MakeRef(5, gen)
		count := 0
		claimed := false
		for _, op := range ops {
			switch op % 4 {
			case 0: // acquire
				ok := tbl.acquire(ref)
				if claimed && ok {
					return false // acquire after claim must fail
				}
				if !claimed && !ok {
					return false // live acquire must succeed
				}
				if ok {
					count++
				}
			case 1: // release
				if count > 0 {
					tbl.release(ref)
					count--
				}
			case 2: // claim attempt
				ok := tbl.tryClaim(ref)
				if ok != (!claimed && count == 0) {
					return false
				}
				if ok {
					claimed = true
				}
			case 3: // generation hop: simulate slot reuse
				if claimed {
					gen += 2
					ref = mem.MakeRef(5, gen)
					count = 0
					claimed = false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRCOlderGenerationCannotBlockLiveAcquire is the regression test for
// the resurrection hazard the monotonic-generation rule exists to prevent:
// a stale reader parking its dead count in the word must not make a LIVE
// node's acquire fail (an acquire failure sends the current reader past
// validation unprotected).
func TestRCOlderGenerationCannotBlockLiveAcquire(t *testing.T) {
	var tbl countTable
	oldRef := mem.MakeRef(9, 1)
	newRef := mem.MakeRef(9, 3)
	if !tbl.acquire(oldRef) {
		t.Fatal("setup: old acquire failed")
	}
	// The old tenant dies without its counts ever being released (e.g. a
	// crashed reader); the slot moves on.
	if !tbl.acquire(newRef) {
		t.Fatal("live acquire blocked by a dead generation's count")
	}
	// And the stale reader's release is a harmless no-op now.
	tbl.release(oldRef)
	if tbl.tryClaim(newRef) {
		t.Fatal("claim succeeded despite the live count")
	}
	tbl.release(newRef)
	if !tbl.tryClaim(newRef) {
		t.Fatal("claim failed with zero count")
	}
}
