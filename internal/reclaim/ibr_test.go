package reclaim

import "testing"

// TestIBRAdaptiveEraQ pins the cadence controller's two directions in their
// smallest deterministic form. A reader holding a reservation wider than
// ibrWidthTarget eras must drive eraQ down to the floor — the era clock
// speeds up so new births land past the wide interval and reclaim without
// waiting on it. Once the reader deactivates and only narrow reservations
// remain, churn must relax eraQ back up to the cap.
func TestIBRAdaptiveEraQ(t *testing.T) {
	pool := newTestPool()
	const q = 8
	d, err := NewIBR(Config{
		Workers: 2, HPs: 2, Q: q, R: 1, // R=1: every retire scans, so the controller runs per retire
		Free: freeInto(pool), Era: pool, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	floor, cap := q/4, q*16

	if got := d.EraQ(); got != q {
		t.Fatalf("initial EraQ = %d, want Config.Q = %d", got, q)
	}

	// Build a wide reservation: the reader Begins, then keeps Protecting
	// while the era clock advances, so upper tracks the clock while lower
	// stays pinned at the Begin era.
	reader := d.Guard(0)
	writer := d.Guard(1)
	reader.Begin()
	probe := allocNode(pool, 1)
	for i := 0; i < 2*ibrWidthTarget; i++ {
		pool.AdvanceEra()
		reader.Protect(0, probe)
	}
	// The reader now stalls, reservation held at width 2*ibrWidthTarget.

	// Writer churn: each retire scans (R=1), observes the wide reservation
	// and halves eraQ; a handful of retires must reach the floor.
	writer.Begin()
	for i := 0; i < 8; i++ {
		writer.Retire(allocNode(pool, 100+uint64(i)))
	}
	if got := d.EraQ(); got != floor {
		t.Fatalf("EraQ = %d under a width-%d reservation, want floor %d", got, 2*ibrWidthTarget, floor)
	}

	// The reader deactivates; with only the writer's zero-width reservation
	// visible, the same churn must relax eraQ to the cap. Begin per op keeps
	// the writer's own reservation at width 0.
	reader.ClearHPs()
	for i := 0; i < 16; i++ {
		writer.Begin()
		writer.Retire(allocNode(pool, 200+uint64(i)))
	}
	if got := d.EraQ(); got != cap {
		t.Fatalf("EraQ = %d after the wide reader cleared, want cap %d", got, cap)
	}

	writer.Retire(probe)
	writer.ClearHPs()
}
