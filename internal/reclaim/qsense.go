package reclaim

import (
	"context"
	"fmt"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/rooster"
)

// QSense is the paper's hybrid scheme (§5.2, Algorithm 5): QSBR on the fast
// path, Cadence on the fallback path, switching automatically.
//
// Some machinery is always on, whatever the current path (§5.2): hazard
// pointers are published (fence-free, into pending slots) during every
// traversal, retired nodes are always stamped with the rooster tick, and the
// rooster manager keeps flushing pending slots. That standing cost is why
// QSense trails plain QSBR slightly in the common case (§7.3) — and it is
// what makes an instant, safe switch to the fallback path possible: the
// moment the fallback flag rises, every reference that was hazardous before
// the switch is already protected.
//
// Path switching:
//
//   - fast -> fallback: a worker whose limbo lists hold >= C nodes raises
//     the shared fallback flag and immediately runs a Cadence scan over its
//     three limbo buckets. Other workers observe the flag in Retire.
//   - fallback -> fast: workers set their presence flag every Q-th Begin;
//     the rooster manager clears all flags every PresenceResetTicks passes.
//     A worker that observes every flag set concludes all workers are live
//     again, lowers the fallback flag, and declares a quiescent state.
//
// Every one of the hybrid's slot-iteration sites — the epoch-advance check,
// the presence sweep and its periodic reset, HP snapshot scans, rooster
// flush passes — walks the occupancy index (occupancy.go), so their cost
// tracks live workers, not the arena's high-water size. Both thresholds
// re-tune with occupancy at capacity transitions (tune.go): R follows the
// scan-amortization formula, and C is re-validated against §6.2's LegalC
// bound for the CURRENT worker count — growth can raise the effective C
// above a configured value that became illegal (Stats.CRetunes counts the
// adjustments).
//
// In fallback mode the three QSBR limbo buckets serve as Cadence's removed
// nodes list and are scanned (deferred, HP-checked) every R retires; in fast
// mode they are freed wholesale on epoch advance, wrappers and all.
type QSense struct {
	cfg      Config
	cnt      counters
	tune     *tuner
	mgr      *rooster.Manager
	fallback atomic.Bool
	epoch    atomic.Uint64
	slots    *shardedPool
	orphans  shardedOrphans
	recs     *shardedArena[*hprec]
	guards   *shardedArena[*qsenseGuard]
}

type qsenseGuard struct {
	d   *QSense
	id  int
	rec *hprec
	// presence is the §5.2 switch-back flag, set every Q-th Begin and
	// cleared by the rooster's periodic reset. It lives on the guard (not
	// a separate fixed array) so it grows with the elastic arena.
	presence  atomic.Bool
	local     atomic.Uint64 // local epoch, read by peers
	limbo     [3][]retired
	total     int // nodes across the three buckets
	calls     int
	sinceScan int
	adoptSeen uint64 // last epoch at which this guard tried orphan adoption
	prevFall  bool   // prev_seen_fallback_flag
	tally     tally
	tc        tunerCache
	scanBuf   []uint64
	mem       membership
	_         [40]byte // keep hot fields of adjacent guards apart
}

// NewQSense builds the hybrid domain and starts its rooster manager (unless
// Config.ManualRooster). A non-zero Config.C below LegalC is rejected,
// since Property 4's 2NC bound needs a legal threshold; once the arena
// grows past the initial Workers, the tuner keeps enforcing the bound
// against the live worker count by raising the effective C as needed.
func NewQSense(cfg Config) (*QSense, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if legal := LegalC(cfg); cfg.C < legal {
		return nil, fmt.Errorf("reclaim: C=%d is not legal (need >= %d; see §6.2)", cfg.C, legal)
	}
	d := &QSense{cfg: cfg, mgr: rooster.NewManager(cfg.Rooster)}
	d.tune = newTuner(cfg, &d.cnt)
	d.orphans.init(cfg.Shards)
	d.recs = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *hprec {
		return newHPRec(cfg.HPs)
	})
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *qsenseGuard {
		g := &qsenseGuard{d: d, id: i, rec: d.recs.at(i),
			tc: tunerCache{r: cfg.R, c: cfg.C}}
		g.mem.init()
		return g
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, d.tune, func(s, hi int) {
		d.recs.growShard(s, hi)
		d.guards.growShard(s, hi)
	})
	// One occupancy-walking flush target per shard (see cadence.go):
	// rooster passes flush only occupied records, idle shards cost one
	// load, and growth never touches the rooster.
	for s, p := range d.slots.pools {
		d.mgr.Register(&recFlusher{p: p, recs: d.recs.shards[s], cnt: &d.cnt})
	}
	d.mgr.AddHook(cfg.PresenceResetTicks, d.resetPresence)
	// A QSense orphan batch carries both evidence forms; the hook uses the
	// deferred-scan one, which works on either path — in particular in
	// fallback mode, where the frozen epoch never matures the other.
	d.mgr.AddHook(1, d.orphans.adoptHook(d.mgr, d.slots, d.recs, d.cfg, &d.cnt))
	if !cfg.ManualRooster {
		d.mgr.Start()
	}
	return d, nil
}

// resetPresence clears the presence flags of the occupied guards (§5.2,
// step 3). Vacant guards' flags are irrelevant — allActive skips inactive
// workers — and a stale flag on a parked segment's guard is cleared by the
// join path when the slot ever leases again.
func (d *QSense) resetPresence() {
	n := d.slots.walkOccupied(func(i int) bool {
		d.guards.at(i).presence.Store(false)
		return true
	})
	d.cnt.scanned.Add(uint64(n))
}

// allActive reports whether every participating worker has signalled
// presence since the last reset, walking only occupied slots (a vacant
// slot's membership is inactive, so the full-arena walk never learned more).
// Workers that left or were evicted do not count, and with EvictAfter set
// the scan itself evicts workers silent for too long — this is what lets
// QSense abandon the fallback path after a permanent crash (the §5.2
// limitation this extension removes). Eviction must happen here as well as
// in the epoch check: on the fallback path nobody declares quiescent
// states, so the epoch check never runs.
func (d *QSense) allActive() bool {
	all := true
	n := d.slots.walkOccupied(func(i int) bool {
		g := d.guards.at(i)
		if g.mem.skipOrEvict(d.cfg.EvictAfter, &d.cnt.evictions) {
			return true
		}
		if !g.presence.Load() {
			all = false
			return false
		}
		return true
	})
	d.cnt.scanned.Add(uint64(n))
	return all
}

// Guard implements Domain (deprecated positional access): pins slot w,
// activates its membership and marks its hazard record live for scans.
func (d *QSense) Guard(w int) Guard {
	first := d.slots.pin(w) // also bounds-checks the positional range
	g := d.guards.at(w)
	if first {
		g.rec.leased.Store(true)
		g.mem.activate(g.adopt)
	}
	return g
}

// Acquire implements Domain: lease a slot, drain any stale hazard state the
// previous tenant's release raced, join the epoch protocol (adopting the
// global epoch and freeing aged-out limbo), and — on the fast path — declare
// the lease itself as a quiescent state so epochs keep rotating even when
// every goroutine is too short-lived to reach a Q-th Begin.
func (d *QSense) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *QSense) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

func (d *QSense) join(w int) Guard {
	g := d.guards.at(w)
	g.rec.clearPending()
	g.rec.clearShared()
	g.presence.Store(false) // never inherit a previous tenant's liveness claim
	g.rec.leased.Store(true)
	g.mem.activate(g.adopt)
	g.tc.refresh(d.tune)
	if !d.fallback.Load() {
		g.quiescent()
	}
	return g
}

// Release implements Domain: drain the guard's hazard pointers, declare a
// final quiescent state (the caller holds no references, per the Release
// contract), run a Cadence scan over the remaining limbo so everything
// provably safe frees now, move what survives to the orphan list — the
// batch carries both evidence forms, so fast-path quiescent states (epoch)
// and fallback/rooster scans (tick + HP) can both adopt it — then Leave and
// recycle the slot.
func (d *QSense) Release(gd Guard) {
	g, ok := gd.(*qsenseGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.rec.clearPending()
		g.rec.clearShared()
		if !d.fallback.Load() {
			g.quiescent()
		}
		if g.total > 0 {
			g.scanAll()
		}
		g.orphanLimbo()
		g.Leave()
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
		g.rec.leased.Store(false)
	})
}

// Name implements Domain.
func (d *QSense) Name() string { return "qsense" }

// Failed implements Domain. With a legal C this never trips (Property 4).
func (d *QSense) Failed() bool { return d.cnt.failed.Load() }

// InFallback reports whether the domain currently runs the fallback path.
func (d *QSense) InFallback() bool { return d.fallback.Load() }

// Rooster exposes the manager so tests can drive passes deterministically.
func (d *QSense) Rooster() *rooster.Manager { return d.mgr }

// GlobalEpoch exposes the global epoch for tests.
func (d *QSense) GlobalEpoch() uint64 { return d.epoch.Load() }

// Stats implements Domain.
func (d *QSense) Stats() Stats {
	s := Stats{Scheme: "qsense", InFallback: d.fallback.Load(), RoosterPasses: d.mgr.Tick()}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain: stops the rooster, frees all limbo contents and
// drains the orphan list. Only call after all workers have stopped.
func (d *QSense) Close() {
	d.mgr.Stop()
	d.guards.forEach(func(g *qsenseGuard) {
		for b := range g.limbo {
			for _, n := range g.limbo[b] {
				d.cfg.Free(n.ref)
			}
			d.cnt.tallyFree(&g.tally, len(g.limbo[b]))
			g.limbo[b] = g.limbo[b][:0]
		}
		g.total = 0
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

// Begin is manage_qsense_state (Algorithm 5, lines 12–34).
func (g *qsenseGuard) Begin() {
	g.calls++
	if g.calls%g.d.cfg.Q != 0 {
		return
	}
	// Fault point: stalled here the worker neither quiesces nor signals
	// presence — the hybrid's discriminating case: the fast path freezes,
	// the fallback trigger fires, and (with EvictAfter) the stalled worker
	// is eventually evicted so the fast path can resume.
	g.d.cfg.fire(FaultQuiesce, g.id)
	// Signal that this worker is active (presence for the switch-back
	// protocol, the liveness stamp for the eviction clock — fallback-path
	// workers never quiesce but are very much alive).
	g.presence.Store(true)
	g.mem.stampQuiesce()
	if !g.d.fallback.Load() {
		// Common case: run the fast path.
		g.quiescent()
		g.prevFall = false
		return
	}
	// Fallback: try to switch back to the fast path.
	if g.d.allActive() && g.d.fallback.CompareAndSwap(true, false) {
		g.d.cnt.toFast.Add(1)
		g.prevFall = false
		g.quiescent()
		return
	}
	g.prevFall = true
}

// quiescent is QSBR's quiescent state over timestamped buckets. The epoch
// arithmetic (free bucket g mod 3 on adopting g) is derived in qsbr.go; the
// advance check walks only occupied slots (see qsbr.go for why a racing
// lease cannot invalidate the grace period).
func (g *qsenseGuard) quiescent() {
	if !g.mem.active.Load() {
		g.rejoin()
		g.mem.active.Store(true)
	}
	g.mem.stampQuiesce()
	g.d.slots.quiesceAt(g.id)
	global := g.d.epoch.Load()
	// Orphan adoption, at most once per epoch advance (see qsbr.go).
	if global != g.adoptSeen && !g.d.orphans.empty() {
		g.adoptSeen = global
		g.d.orphans.adoptEpoch(global, g.d.cfg.Free, &g.d.cnt)
	}
	local := g.local.Load()
	if local != global {
		g.local.Store(global)
		g.freeBucket(int(global % 3))
		g.finishPass()
		return
	}
	ok := true
	visited := g.d.slots.walkOccupied(func(i int) bool {
		if i == g.id {
			return true
		}
		peer := g.d.guards.at(i)
		if peer.mem.skipOrEvict(g.d.cfg.EvictAfter, &g.d.cnt.evictions) {
			return true
		}
		if peer.local.Load() != global {
			ok = false
			return false
		}
		return true
	})
	g.d.cnt.tallyScanned(&g.tally, visited)
	if ok && g.d.epoch.CompareAndSwap(global, global+1) {
		g.d.cnt.epochs.Add(1)
		g.local.Store(global + 1)
		g.freeBucket(int((global + 1) % 3))
	}
	g.finishPass()
}

// finishPass closes a reclamation pass: the tally flushes (shared counters
// exact again) and the cached thresholds refresh if a capacity transition
// re-tuned them.
func (g *qsenseGuard) finishPass() {
	g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	g.tc.refresh(g.d.tune)
}

func (g *qsenseGuard) freeBucket(b int) {
	bucket := g.limbo[b]
	if len(bucket) == 0 {
		return
	}
	for _, n := range bucket {
		g.d.cfg.Free(n.ref)
	}
	g.d.cnt.tallyFree(&g.tally, len(bucket))
	g.total -= len(bucket)
	g.limbo[b] = bucket[:0]
}

// Protect publishes fence-free, exactly as in Cadence; the hazard pointers
// must be maintained even on the fast path (§4.1).
func (g *qsenseGuard) Protect(i int, r mem.Ref) {
	g.rec.publishPending(i, r)
	// Fault point: stalled after publication, the reader pins exactly the
	// K nodes its pending slots name (flushed by the rooster) — never more.
	g.d.cfg.fire(FaultProtect, g.id)
}

func (g *qsenseGuard) ClearHPs() { g.rec.clearPending() }

// Retire is free_node_later (Algorithm 5, lines 36–61).
func (g *qsenseGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	g.d.mgr.Poll() // cooperative rooster: run an overdue pass inline
	// Create the timestamped wrapper and add it to the current epoch's
	// limbo list — always, whatever the current path.
	b := g.local.Load() % 3
	g.limbo[b] = append(g.limbo[b], retired{ref: r.Untagged(), stamp: g.d.mgr.Tick()})
	g.total++
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
	g.sinceScan++

	seen := g.d.fallback.Load()
	switch {
	case seen && g.sinceScan >= g.tc.r:
		// Running in fallback mode: scan all three epochs' limbo lists.
		g.scanAll()
		g.prevFall = true
	case g.prevFall && !seen:
		// Switch back to QSBR mode was triggered by another worker.
		//
		// Deliberate deviation from Algorithm 5 (lines 49-52), which
		// declares a quiescent state right here. free_node_later runs
		// where free() would — typically mid-operation, while this
		// worker still holds hazardous references (the list's
		// search_and_cleanup retires nodes mid-traversal). Declaring
		// quiescence at such a point tells peers "I hold no
		// references", and one epoch advance later their *wholesale*
		// frees — which do not consult hazard pointers — can reclaim
		// nodes this worker is still using. (Our stress harness
		// caught exactly that as a use-after-free fault.) We only
		// note the edge; the next Begin, a reference-free point by
		// contract, performs the quiescent state.
		g.prevFall = false
	case !seen && !g.prevFall && g.total >= g.tc.c:
		// Quiescence has not been possible for a long time: trigger
		// the switch to the fallback path.
		if g.d.fallback.CompareAndSwap(false, true) {
			g.d.cnt.toFall.Add(1)
		}
		g.prevFall = true
		g.scanAll()
	}
}

func (g *qsenseGuard) slotID() int { return g.id }

// scanAll runs the Cadence scan over all three limbo buckets with one
// snapshot, then adopts eligible orphans against the same snapshot. Tick
// capture and every shard's detach precede the snapshot (see
// cadenceGuard.scan).
func (g *qsenseGuard) scanAll() {
	g.d.cnt.scans.Add(1)
	g.sinceScan = 0
	tick := g.d.mgr.Tick()
	batches := g.d.orphans.detachAll()
	snap, visited := snapshotShared(g.d.slots, g.d.recs, g.scanBuf)
	g.d.cnt.tallyScanned(&g.tally, visited)
	g.scanBuf = snap.vals
	g.total = 0
	freed := 0
	for b := range g.limbo {
		var f int
		g.limbo[b], f = filterDeferred(g.d.cfg, g.d.mgr, tick, snap, g.limbo[b])
		g.total += len(g.limbo[b])
		freed += f
	}
	g.d.cnt.tallyFree(&g.tally, freed)
	g.d.orphans.adoptDetachedAll(batches, snap, g.d.mgr, tick, g.d.cfg, &g.d.cnt)
	g.finishPass()
}

// orphanLimbo moves the guard's surviving limbo onto its OWN shard's
// orphan list in one batch that keeps the nodes' tick stamps and records
// the current global epoch — dual evidence, so whichever path the domain
// runs makes progress on it (release drain only; slice ownership passes to
// the list).
func (g *qsenseGuard) orphanLimbo() {
	if g.total == 0 {
		return
	}
	var nodes []retired
	for b := range g.limbo {
		if len(g.limbo[b]) == 0 {
			continue
		}
		if nodes == nil {
			nodes = g.limbo[b]
		} else {
			nodes = append(nodes, g.limbo[b]...)
		}
		g.limbo[b] = nil
	}
	g.total = 0
	g.d.orphans.at(g.id).add(nil, nodes, g.d.epoch.Load(), &g.d.cnt)
}
