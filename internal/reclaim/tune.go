package reclaim

// Growth-aware threshold re-tuning.
//
// The paper states its bounds in terms of the participating thread count N:
// the scan threshold R (§5.1, default 2NK+64) amortizes scans against the
// N·K hazard pointers a scan must inspect, and QSense's fallback threshold C
// must exceed LegalC's §6.2 bound, whose dominant term is NK+T. Before this
// file both were frozen at construction from the INITIAL Workers, so an
// elastic domain that grew 8 → 16384 slots kept scanning every ~2·8·K
// retires (far too often for the paper's amortization once N_live is large)
// and, worse, kept enforcing C's legality against N=8 while 16384 workers
// could be holding hazard pointers — quietly violating the Property 4
// precondition the constructor checks.
//
// The tuner re-derives both thresholds at every capacity transition —
// growth, segment park, segment unpark — which are exactly the points where
// the effective N changes regime. The N it uses is the UNPARKED capacity
// (published slots minus parked ones): occupancy can rise to that capacity
// without another transition running the tuner, so it is the largest worker
// count the thresholds must stay sound for until the next retune — and
// parking still shrinks it back after a burst drains. Between transitions
// the values are stable, so guards cache them in plain fields (tunerCache)
// and refresh only when the generation counter moved, at naturally cold
// points: lease join, scan completion, quiescent states. The Retire/Begin
// hot paths read the plain cached fields — no new hot-path atomics.
//
// Policy:
//
//   - R: when the caller left Config.R zero (the default formula), R is
//     recomputed as 2·N_eff·K+64 with N_eff the clamped live occupancy. An
//     explicitly configured R is respected verbatim — it is a caller's
//     deliberate perf/memory trade and has no legality constraint.
//   - C: the §6.2 legality bound LegalC is recomputed against N_eff and the
//     current effective R. A defaulted C follows max(LegalC, 8192) as at
//     construction; an explicitly configured C is treated as a FLOOR — it is
//     raised while growth makes it illegal (the §6.2 bound must hold against
//     the current N, not the initial one) and falls back to the configured
//     value when parking shrinks the bound again. NewQSense still rejects a
//     C that is illegal even for the initial N.
//
// Stats.RRetunes / Stats.CRetunes count the applied changes so harnesses
// can observe re-tuning.

import "sync/atomic"

// tuner owns a domain's effective R and C — ONE tuner per domain, shared
// across shards: the thresholds are functions of the domain-wide N, so
// retune is called by the shardedPool façade with summed capacity, under
// its tuneMu (which serializes capacity transitions racing on different
// shards' growth locks). R/C/gen are read lock-free by tunerCache.
type tuner struct {
	cfg Config // defaults applied; cfg.R / cfg.C are the configured values
	cnt *counters
	gen atomic.Uint64
	r   atomic.Int64
	c   atomic.Int64
}

func newTuner(cfg Config, cnt *counters) *tuner {
	t := &tuner{cfg: cfg, cnt: cnt}
	t.r.Store(int64(cfg.R))
	t.c.Store(int64(cfg.C))
	t.gen.Store(1) // caches start at seen=0, so the first refresh loads
	return t
}

// retune recomputes the effective thresholds for an effective worker count
// n (the domain-wide unparked capacity) over a high-slot arena. Called at
// capacity transitions, serialized by the façade's tuneMu.
func (t *tuner) retune(n, high int64) {
	if n < 1 {
		n = 1
	}
	if n > high {
		n = high
	}
	eff := t.cfg
	eff.Workers = int(n)
	if t.cfg.rAuto {
		eff.R = 2*int(n)*eff.HPs + 64
	}
	legal := LegalC(eff)
	c := t.cfg.C
	if t.cfg.cAuto {
		c = max(legal, 8192)
	} else if c < legal {
		c = legal // §6.2: the bound binds against the CURRENT N
	}
	changed := false
	if int64(eff.R) != t.r.Load() {
		t.r.Store(int64(eff.R))
		t.cnt.retunesR.Add(1)
		changed = true
	}
	if int64(c) != t.c.Load() {
		t.c.Store(int64(c))
		t.cnt.retunesC.Add(1)
		changed = true
	}
	if changed {
		t.gen.Add(1)
	}
}

// tunerCache is a guard's plain-field view of the tuner, refreshed at cold
// points (join, scan completion, quiescent states) via the generation
// counter. The hot paths read r and c directly.
type tunerCache struct {
	seen uint64
	r, c int
}

// refresh reloads the cached thresholds if the tuner's generation moved.
func (tc *tunerCache) refresh(t *tuner) {
	if t == nil {
		return
	}
	if g := t.gen.Load(); g != tc.seen {
		tc.seen = g
		tc.r = int(t.r.Load())
		tc.c = int(t.c.Load())
	}
}
