package reclaim

import (
	"sort"
	"sync/atomic"

	"qsense/internal/mem"
)

// hpSlot is a single hazard-pointer cell, padded to a cache line so that a
// worker's publications do not false-share with its neighbours' — the same
// layout discipline the paper's C implementation (and ASCYLIB) uses.
type hpSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// hprec is one worker's hazard pointer record.
//
// shared is the array scans read — the paper's globally visible HP array.
// pending models the store buffer: Cadence and QSense publish here without a
// fence, and only a rooster flush pass copies pending into shared (DESIGN.md
// §2). Classic HP bypasses pending and stores straight to shared, paying the
// modeled fence. An unflushed pending entry is invisible to scans, exactly
// as a fenceless HP store sitting in a TSO store buffer is invisible to a
// reclaimer on another core.
//
// leased mirrors the record's slot lease (slots.go): scans and rooster
// flushes skip unleased records. An unleased record's slots are all nil
// (Release drains both arrays), so the skip changes no scan outcome; it
// keeps scan cost proportional to the leased worker count rather than the
// arena size, which matters when MaxWorkers is sized generously. Skipping
// a record whose lease races the snapshot is safe for the same reason a
// protection published after a snapshot may be missed: the new tenant's
// link re-validation (§3.2) rejects any node that was unlinked — and thus
// retired — before it could be scanned.
type hprec struct {
	leased  atomic.Bool
	pending []hpSlot
	shared  []hpSlot
}

func newHPRec(k int) *hprec {
	return &hprec{pending: make([]hpSlot, k), shared: make([]hpSlot, k)}
}

// publishPending is the fence-free assign_HP of Cadence/QSense.
func (h *hprec) publishPending(i int, r mem.Ref) {
	h.pending[i].v.Store(uint64(r.Untagged()))
}

// publishShared is classic HP's assign_HP minus the fence; the caller pays
// the fence model.
func (h *hprec) publishShared(i int, r mem.Ref) {
	h.shared[i].v.Store(uint64(r.Untagged()))
}

// FlushHP copies pending slots into shared slots; called by rooster passes.
// It also refreshes pending copies into shared for the worker's own later
// clears: flushing a zero clears the shared slot too, so protections do not
// outlive their release by more than one pass. Unleased records are skipped
// (their slots are already drained); a flush racing a Release can at worst
// re-publish a stale shared entry, which the next pass after re-lease
// clears — stale entries delay reclamation, never unblock it.
func (h *hprec) FlushHP() {
	if !h.leased.Load() {
		return
	}
	for i := range h.pending {
		h.shared[i].v.Store(h.pending[i].v.Load())
	}
}

func (h *hprec) clearPending() {
	for i := range h.pending {
		h.pending[i].v.Store(0)
	}
}

func (h *hprec) clearShared() {
	for i := range h.shared {
		h.shared[i].v.Store(0)
	}
}

// hpSnapshot is a sorted snapshot of every worker's shared hazard pointers,
// built once per scan (Michael's scan, stage 1).
type hpSnapshot struct {
	vals []uint64
}

// recFlusher is the rooster flush target of the fence-free schemes
// (Cadence, QSense): ONE registered target per SHARD that walks its own
// pool's occupancy index (shard-local indices) and flushes only occupied
// records. It replaces the old per-record registration, so rooster passes
// cost O(live occupancy) too, parked segments are skipped outright (their
// records were drained at release and cannot re-lease while parked), and
// growth no longer touches the rooster at all. A record whose lease races
// a pass publishes its first pending protection after its occupancy bit
// was set, so the pass that must flush it (the one defining its nodes'
// old-enough ticks) walks after the bit is visible — the tick-rule
// argument in rooster's package doc is unchanged. (The snapshot builder
// that scans these flushed arrays across all shards is snapshotShared in
// shard.go.)
type recFlusher struct {
	p    *slotPool
	recs *arena[*hprec]
	cnt  *counters
}

// FlushHP implements rooster.Target. An idle shard (zero live occupancy)
// is skipped outright — not even its segment-0 states are loaded; sound by
// the same SC edge walk skipping uses (shard.go's file comment).
func (f *recFlusher) FlushHP() {
	if f.p.live.Load() == 0 {
		return
	}
	n := f.p.walkOccupied(func(w int) bool {
		f.recs.at(w).FlushHP()
		return true
	})
	f.cnt.scanned.Add(uint64(n))
}

// contains reports whether r is protected in the snapshot (stage 2 lookup).
func (s hpSnapshot) contains(r mem.Ref) bool {
	v := uint64(r.Untagged())
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
	return i < len(s.vals) && s.vals[i] == v
}

// retired is a node awaiting reclamation: the paper's timestamped_node.
// stamp is the rooster tick at Retire time (QSBR ignores it). birth is the
// node's birth era, read from the domain's EraSource at Retire; only the
// interval scheme (ibr) sets or reads it — for every other scheme it stays 0.
type retired struct {
	ref   mem.Ref
	stamp uint64
	birth uint64
}
