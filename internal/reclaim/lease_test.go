package reclaim

import (
	"context"
	"errors"
	"sync"
	"testing"

	"qsense/internal/mem"
)

// mkLease builds a small domain of the named scheme over the shared test
// pool, with thresholds low enough that reclamation cycles within a test.
// The arena is capped at its initial size (HardMaxWorkers = workers): these
// tests exercise the fixed-arena exhaustion/backpressure semantics; elastic
// growth has its own suite in elastic_test.go.
func mkLease(t *testing.T, scheme string, workers int) Domain {
	t.Helper()
	pool := newTestPool()
	cfg := Config{Workers: workers, HardMaxWorkers: workers, HPs: 1, Free: freeInto(pool), Q: 1, R: 4}
	if scheme == "qsense" {
		cfg.C = LegalC(cfg)
	}
	d, err := New(scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestAcquireExhaustionAndReuse(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			const n = 4
			d := mkLease(t, scheme, n)
			guards := make([]Guard, n)
			for i := range guards {
				g, err := d.Acquire()
				if err != nil {
					t.Fatalf("acquire %d: %v", i, err)
				}
				guards[i] = g
			}
			if _, err := d.Acquire(); !errors.Is(err, ErrNoSlots) {
				t.Fatalf("acquire past the arena: err = %v, want ErrNoSlots", err)
			}
			d.Release(guards[2])
			g, err := d.Acquire()
			if err != nil {
				t.Fatalf("acquire after release: %v", err)
			}
			if g != guards[2] {
				t.Fatal("freelist did not recycle the released slot")
			}
			st := d.Stats()
			if st.AcquiredHandles != n+1 || st.ReleasedHandles != 1 {
				t.Fatalf("lease counters = %d/%d, want %d/1",
					st.AcquiredHandles, st.ReleasedHandles, n+1)
			}
		})
	}
}

func TestAcquireSkipsPinnedSlots(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			const n = 3
			d := mkLease(t, scheme, n)
			pinned := d.Guard(0) // deprecated positional access pins slot 0
			var got []Guard
			for {
				g, err := d.Acquire()
				if err != nil {
					break
				}
				got = append(got, g)
			}
			if len(got) != n-1 {
				t.Fatalf("leased %d slots next to 1 pinned, want %d", len(got), n-1)
			}
			for _, g := range got {
				if g == pinned {
					t.Fatal("Acquire handed out a pinned slot")
				}
			}
			// Releasing the pinned guard must be refused: the slot stays out
			// of the freelist.
			d.Release(pinned)
			if _, err := d.Acquire(); !errors.Is(err, ErrNoSlots) {
				t.Fatal("releasing a pinned guard leaked it into the freelist")
			}
		})
	}
}

func TestPositionalGuardOnLeasedSlotPanics(t *testing.T) {
	// Mixing the APIs over one index would silently alias a guard across
	// two goroutines; the pin path must fail loudly instead.
	d := mkLease(t, "qsbr", 1)
	if _, err := d.Acquire(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Guard(0) on a leased slot did not panic")
		}
	}()
	d.Guard(0)
}

func TestDoubleReleaseIsNoOp(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			d := mkLease(t, scheme, 2)
			g, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			d.Release(g)
			d.Release(g) // must not push the slot twice
			a, err1 := d.Acquire()
			b, err2 := d.Acquire()
			if err1 != nil || err2 != nil {
				t.Fatalf("re-acquire: %v / %v", err1, err2)
			}
			if a == b {
				t.Fatal("double release duplicated a slot in the freelist")
			}
			if _, err := d.Acquire(); !errors.Is(err, ErrNoSlots) {
				t.Fatal("arena of 2 handed out a third lease")
			}
		})
	}
}

func TestReleasedSlotDoesNotBlockGracePeriods(t *testing.T) {
	// The point of leasing for the epoch schemes: a released slot is out of
	// grace-period accounting, so reclamation proceeds without it. (The
	// pre-leasing behaviour — an idle fixed worker freezing the epoch — is
	// TestQSBRBlockingGrowsUnboundedAndFails.)
	for _, scheme := range []string{"qsbr", "qsense"} {
		t.Run(scheme, func(t *testing.T) {
			pool := newTestPool()
			cfg := Config{Workers: 2, HardMaxWorkers: 2, HPs: 1, Free: freeInto(pool), Q: 1, ManualRooster: true}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			active, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			idle, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			_ = idle
			r := allocNode(pool, 1)
			active.Retire(r)
			d.Release(idle) // leaves: must stop blocking the epoch
			for i := 0; i < 8 && pool.Valid(r); i++ {
				active.Begin()
			}
			if pool.Valid(r) {
				t.Fatal("released slot still blocks grace periods")
			}
		})
	}
}

func TestReleaseOrphansUnagedBacklog(t *testing.T) {
	// A released slot's unaged limbo moves to the domain's orphan list and
	// is adopted by another worker's quiescent states once three epochs
	// pass — the vacated slot's re-lease is NOT required (the pre-orphan
	// behaviour parked the backlog on the slot for its next tenant, which
	// stranded it forever if the slot never re-leased).
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	active, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	leaver, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r := allocNode(pool, 7)
	leaver.Retire(r)
	d.Release(leaver)
	if !pool.Valid(r) {
		t.Fatal("backlog freed at Release although it had not aged")
	}
	if st := d.Stats(); st.OrphanedNodes != 1 {
		t.Fatalf("OrphanedNodes = %d, want 1", st.OrphanedNodes)
	}
	for i := 0; i < 8 && pool.Valid(r); i++ { // >= 3 epoch advances, slot vacant
		active.Begin()
	}
	if pool.Valid(r) {
		t.Fatal("vacant slot's orphaned backlog was not adopted by the active worker")
	}
	st := d.Stats()
	if st.AdoptedNodes != 1 {
		t.Fatalf("AdoptedNodes = %d, want 1", st.AdoptedNodes)
	}
	if st.Pending != 0 {
		t.Fatalf("Pending = %d after adoption, want 0", st.Pending)
	}
}

func TestEpochAdvancesUnderPureHandleChurn(t *testing.T) {
	// Goroutines too short-lived to reach a Q-th Begin never declare
	// quiescent states; the lease points themselves must keep the epoch
	// rotating and limbo draining.
	for _, scheme := range []string{"qsbr", "qsense", "ebr"} {
		t.Run(scheme, func(t *testing.T) {
			pool := newTestPool()
			cfg := Config{Workers: 4, HPs: 1, Free: freeInto(pool), Q: 1 << 20, R: 1 << 20}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			for i := 0; i < 200; i++ {
				g, err := d.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				g.Begin() // far below Q: never a quiescent state from here
				g.Retire(allocNode(pool, uint64(i)))
				d.Release(g)
			}
			if st := d.Stats(); st.Freed == 0 {
				t.Fatalf("%s: nothing reclaimed across 200 lease cycles: %+v", scheme, st)
			}
		})
	}
}

// TestLeaseChurnStress is the scheme-level recycling stress: short-lived
// workers lease via the blocking AcquireWait, churn the shared mailbox
// under full HP discipline, and release, far more workers than slots. The
// poisoned pool turns any use-after-free into a panic; the final accounting
// catches slot or node leaks. Run with -race to check the allocator's
// publication ordering (and the waiter wake protocol).
func TestLeaseChurnStress(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			const slots = 4
			workers, iters := 32, 300
			if testing.Short() {
				workers, iters = 12, 150
			}
			pool := newTestPool()
			cfg := Config{Workers: slots, HardMaxWorkers: slots, HPs: 1, Free: freeInto(pool), Q: 4, R: 8}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mb := newMailbox(pool, 16)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if v, ok := r.(*mem.Violation); ok {
								errs <- v
								return
							}
							panic(r)
						}
					}()
					g, err := d.AcquireWait(context.Background())
					if err != nil {
						errs <- err
						return
					}
					rng := uint64(id)*0x9e3779b9 + 1
					for i := 0; i < iters; i++ {
						g.Begin()
						rng = rng*6364136223846793005 + 1442695040888963407
						slot := int(rng>>33) % len(mb.slots)
						if rng&1 == 0 {
							mb.put(g, slot, rng)
						} else {
							mb.take(g, slot)
						}
					}
					g.ClearHPs()
					d.Release(g)
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: safety violation under lease churn: %v", scheme, err)
			}
			// No slot leaks: every lease was returned, so the whole arena
			// must be acquirable again.
			st := d.Stats()
			if st.AcquiredHandles != st.ReleasedHandles {
				t.Fatalf("%s: %d leases vs %d releases", scheme, st.AcquiredHandles, st.ReleasedHandles)
			}
			if st.AcquiredHandles < uint64(workers) {
				t.Fatalf("%s: only %d leases for %d workers", scheme, st.AcquiredHandles, workers)
			}
			final := make([]Guard, 0, slots)
			for i := 0; i < slots; i++ {
				g, err := d.Acquire()
				if err != nil {
					t.Fatalf("%s: slot leaked: re-acquire %d failed: %v", scheme, i, err)
				}
				final = append(final, g)
			}
			mb.drain(final[0])
			for _, g := range final {
				d.Release(g)
			}
			d.Close()
			if scheme != "none" {
				if st := d.Stats(); st.Pending != 0 {
					t.Fatalf("%s: %d pending after Close", scheme, st.Pending)
				}
				if live := pool.Stats().Live; live != 0 {
					t.Fatalf("%s: %d nodes leaked", scheme, live)
				}
			}
		})
	}
}
