package reclaim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qsense/internal/mem"
)

func sleepMs(n int) { time.Sleep(time.Duration(n) * time.Millisecond) }

// tnode is a cache-line-sized test node carrying a self-checksum so stress
// tests detect reads of recycled memory even without a generation fault.
type tnode struct {
	val   uint64
	check uint64
	_     [48]byte
}

func checksum(v uint64) uint64 { return v*0x9e3779b97f4a7c15 + 1 }

func newTestPool() *mem.Pool[tnode] {
	return mem.NewPool[tnode](mem.Config{Name: "reclaim-test", Poison: true})
}

// freeInto returns a Config Free callback bound to pool.
func freeInto(p *mem.Pool[tnode]) func(mem.Ref) {
	return func(r mem.Ref) { p.Free(r) }
}

// allocNode allocates and stamps a node.
func allocNode(p *mem.Pool[tnode], v uint64) mem.Ref {
	r, n := p.Alloc()
	n.val = v
	n.check = checksum(v)
	return r
}

// violationOf runs f and returns the *mem.Violation it panicked with, or nil.
func violationOf(f func()) (viol *mem.Violation) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*mem.Violation); ok {
				viol = v
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// mailbox is a tiny lock-free shared structure used by the cross-scheme
// conformance stress test: an array of slots holding node Refs. Workers
// publish fresh nodes and take others' nodes with the full HP discipline
// (read, Protect, re-validate, use, retire), so every scheme's
// protect/retire/scan machinery is exercised against real concurrency.
type mailbox struct {
	pool  *mem.Pool[tnode]
	slots []atomic.Uint64
}

func newMailbox(pool *mem.Pool[tnode], n int) *mailbox {
	return &mailbox{pool: pool, slots: make([]atomic.Uint64, n)}
}

// put swaps a new node into slot i and retires the displaced one.
func (m *mailbox) put(g Guard, i int, v uint64) {
	r := allocNode(m.pool, v)
	old := mem.Ref(m.slots[i].Swap(uint64(r)))
	if !old.IsNil() {
		g.Retire(old)
	}
}

// take reads slot i under hazard-pointer protection, verifies the node's
// checksum, and removes+retires it. Returns false if the slot was empty or
// contended away.
func (m *mailbox) take(g Guard, i int) bool {
	for attempt := 0; attempt < 4; attempt++ {
		r := mem.Ref(m.slots[i].Load())
		if r.IsNil() {
			return false
		}
		g.Protect(0, r)
		if mem.Ref(m.slots[i].Load()) != r {
			continue // link changed under us: retry per Michael's methodology
		}
		n := m.pool.Get(r)
		if checksum(n.val) != n.check {
			panic("mailbox: checksum mismatch — recycled memory read")
		}
		if m.slots[i].CompareAndSwap(uint64(r), 0) {
			g.Retire(r)
		}
		g.Protect(0, mem.Ref(0))
		return true
	}
	return false
}

// drain empties all slots (no protection needed once workers stopped).
func (m *mailbox) drain(g Guard) {
	for i := range m.slots {
		if r := mem.Ref(m.slots[i].Swap(0)); !r.IsNil() {
			g.Retire(r)
		}
	}
}

// runMailboxStress drives `workers` goroutines over a shared mailbox under
// the given domain and reports any safety violation.
func runMailboxStress(t *testing.T, pool *mem.Pool[tnode], d Domain, workers, iters int) {
	t.Helper()
	mb := newMailbox(pool, 64)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if v, ok := r.(*mem.Violation); ok {
						errs <- v
						return
					}
					panic(r)
				}
			}()
			g := d.Guard(id)
			rng := uint64(id)*0x9e3779b9 + 1
			for i := 0; i < iters; i++ {
				g.Begin()
				rng = rng*6364136223846793005 + 1442695040888963407
				slot := int(rng>>33) % len(mb.slots)
				if rng&1 == 0 {
					mb.put(g, slot, rng)
				} else {
					mb.take(g, slot)
				}
			}
			g.ClearHPs()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("%s: safety violation under stress: %v", d.Name(), err)
	}
	// Cleanup: empty the mailbox through worker 0's guard, then close.
	mb.drain(d.Guard(0))
	d.Close()
	st := d.Stats()
	if d.Name() != "none" {
		if st.Pending != 0 {
			t.Fatalf("%s: %d nodes still pending after Close", d.Name(), st.Pending)
		}
		if live := pool.Stats().Live; live != 0 {
			t.Fatalf("%s: %d nodes leaked", d.Name(), live)
		}
		if st.Freed == 0 {
			t.Fatalf("%s: scheme never freed anything", d.Name())
		}
	}
	if st.Retired == 0 {
		t.Fatalf("%s: stress produced no retires", d.Name())
	}
}
