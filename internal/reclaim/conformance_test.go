package reclaim

import (
	"fmt"
	"testing"
	"time"

	"qsense/internal/rooster"
)

// TestConformance runs the same concurrent mailbox stress against every
// scheme: correct schemes must produce zero use-after-free violations, zero
// leaks after Close, and must actually reclaim memory while running. The
// whole matrix runs at Shards=1 (the pre-sharding geometry) and Shards=4
// (slots, orphan lists and walks split four ways) — the reclamation
// contract must not depend on the shard count.
func TestConformance(t *testing.T) {
	const workers = 6
	iters := 30000
	if testing.Short() {
		iters = 5000
	}
	for _, shards := range []int{1, 4} {
		for _, name := range Schemes() {
			name, shards := name, shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				pool := newTestPool()
				cfg := Config{
					Workers: workers,
					HPs:     2,
					Free:    freeInto(pool),
					Q:       8,
					R:       64,
					Shards:  shards,
					Rooster: rooster.Config{Interval: 500 * time.Microsecond},
				}
				d, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if st := d.Stats(); st.Shards != shards {
					t.Fatalf("Stats.Shards = %d, want %d", st.Shards, shards)
				}
				runMailboxStress(t, pool, d, workers, iters)
			})
		}
	}
}

// TestConformanceSingleWorker: every scheme must reclaim (or leak, for
// none) correctly with one worker and no concurrency.
func TestConformanceSingleWorker(t *testing.T) {
	for _, name := range Schemes() {
		name := name
		t.Run(name, func(t *testing.T) {
			pool := newTestPool()
			cfg := Config{
				Workers: 1, HPs: 2, Free: freeInto(pool), Q: 4, R: 8,
				Rooster: rooster.Config{Interval: 200 * time.Microsecond},
			}
			d, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := d.Guard(0)
			for i := 0; i < 5000; i++ {
				g.Begin()
				r := allocNode(pool, uint64(i))
				g.Retire(r)
			}
			d.Close()
			if name != "none" {
				if live := pool.Stats().Live; live != 0 {
					t.Fatalf("leaked %d nodes", live)
				}
			} else if pool.Stats().Live == 0 {
				t.Fatal("the leaky scheme unexpectedly freed nodes")
			}
		})
	}
}

// TestConformanceRetireNilPanics: retiring nil is a programming error in
// every scheme.
func TestConformanceRetireNilPanics(t *testing.T) {
	for _, name := range Schemes() {
		pool := newTestPool()
		d, err := New(name, Config{Workers: 1, HPs: 1, Free: freeInto(pool), ManualRooster: true})
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Retire(nil) must panic", name)
				}
			}()
			d.Guard(0).Retire(0)
		}()
		d.Close()
	}
}

// TestConformanceReclaimsDuringRun asserts the non-leaky schemes free nodes
// while workers are still running (not only at Close), which is the entire
// point of online reclamation.
func TestConformanceReclaimsDuringRun(t *testing.T) {
	for _, name := range []string{"qsbr", "hp", "cadence", "qsense", "ibr", "hyaline"} {
		name := name
		t.Run(name, func(t *testing.T) {
			pool := newTestPool()
			d, err := New(name, Config{
				Workers: 1, HPs: 2, Free: freeInto(pool), Q: 2, R: 8,
				ManualRooster: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			g := d.Guard(0)
			step := func() {
				switch dom := d.(type) {
				case *Cadence:
					dom.Rooster().Step()
				case *QSense:
					dom.Rooster().Step()
				}
			}
			for i := 0; i < 1000; i++ {
				g.Begin()
				g.Retire(allocNode(pool, uint64(i)))
				if i%10 == 0 {
					step()
				}
			}
			if d.Stats().Freed == 0 {
				t.Fatalf("%s freed nothing across 1000 retires", name)
			}
			d.Close()
		})
	}
}

// TestFactory checks New's name handling.
func TestFactory(t *testing.T) {
	pool := newTestPool()
	cfg := Config{Workers: 1, HPs: 1, Free: freeInto(pool), ManualRooster: true}
	for _, name := range Schemes() {
		d, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, d.Name())
		}
		if d.Failed() {
			t.Fatalf("%s: fresh domain reports Failed", name)
		}
		if s := d.Stats(); s.Scheme != name {
			t.Fatalf("%s: stats scheme = %q", name, s.Scheme)
		}
		d.Close()
	}
	if _, err := New("nope", cfg); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

// TestConfigValidation covers the shared validation paths.
func TestConfigValidation(t *testing.T) {
	pool := newTestPool()
	free := freeInto(pool)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero workers", Config{HPs: 1, Free: free}},
		{"zero hps", Config{Workers: 1, Free: free}},
		{"nil free", Config{Workers: 1, HPs: 1}},
	}
	for _, c := range cases {
		for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense", "ibr", "hyaline"} {
			if _, err := New(scheme, c.cfg); err == nil {
				t.Errorf("%s/%s: expected validation error", scheme, c.name)
			}
		}
	}
	// none does not require Free.
	if _, err := New("none", Config{Workers: 1, HPs: 1}); err != nil {
		t.Errorf("none without Free: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Workers: 4, HPs: 3}.withDefaults()
	if c.Q != 32 {
		t.Errorf("Q default = %d", c.Q)
	}
	if want := 2*4*3 + 64; c.R != want {
		t.Errorf("R default = %d, want %d", c.R, want)
	}
	if c.MaxRemovePerOp != 2 {
		t.Errorf("m default = %d", c.MaxRemovePerOp)
	}
	if c.C < LegalC(c) {
		t.Errorf("C default %d below legal %d", c.C, LegalC(c))
	}
	if c.PresenceResetTicks != 50 {
		t.Errorf("presence reset default = %d", c.PresenceResetTicks)
	}
}

func TestLegalC(t *testing.T) {
	c := Config{Workers: 8, HPs: 2, Q: 32, R: 64, MaxRemovePerOp: 2}
	legal := LegalC(c)
	// C must exceed mQ = 64, NK+T = 16+64 = 80, (K+T+R)/2 = 65.
	if legal <= 80 {
		t.Fatalf("LegalC = %d, must exceed NK+T = 80", legal)
	}
	// QSense must reject an illegal explicit C.
	pool := newTestPool()
	_, err := NewQSense(Config{Workers: 8, HPs: 2, Q: 32, R: 64, C: 10,
		Free: freeInto(pool), ManualRooster: true})
	if err == nil {
		t.Fatal("NewQSense must reject C below LegalC")
	}
}
