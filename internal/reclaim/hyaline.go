package reclaim

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
)

// Hyaline is snapshot-free reclamation in the style of Nikolaev & Ravindran
// (arXiv:1905.07903, PAPERS.md): the second post-paper scheme family, next
// to IBR. No scheme-side scans, no epochs, no per-pointer publications —
// retired nodes travel as reference-counted batches handed directly to the
// slots that might still hold references.
//
// Every guard owns a lock-free *inbox* (a Treiber stack of batch entries).
// A slot is ACTIVE while it is inside an operation — Begin activates the
// inbox, ClearHPs deactivates it — and a retiring guard, once its local
// batch reaches Q nodes, pushes one entry per active inbox and seeds the
// batch's reference counter with the number of successful pushes. Each
// recipient acknowledges its inbox at its next quiescent boundary (the
// following Begin, or ClearHPs at operation end) by decrementing every
// delivered batch's counter; whoever moves a counter to zero frees the
// whole batch. The counter is seeded at zero and raised by the publisher
// AFTER the push sweep, so early acknowledgers drive it negative and the
// publisher's own add detects the all-acked case — the zero crossing
// happens exactly once no matter how the adds interleave.
//
// The safety argument is the epoch argument restated per batch: a batch's
// nodes were unlinked before it was published, so an operation that begins
// after the publisher read its slot (inactive-skip or post-push activation)
// can never reach them from the root; an operation that was active at
// publish time received a delivery and the batch outlives it by refcount.
//
// Era-filtered delivery (the IBR+Hyaline combo of Nikolaev's crystalline
// line, ROADMAP PR-8 follow-up): each guard also publishes an era upper
// bound — set to the current birth-era clock at Begin, BEFORE the inbox
// activates, and widened by Protect like an IBR reservation. publish
// computes the batch's minimum birth era and skips active inboxes whose
// upper bound predates it: such a reader entered its operation before any
// of the batch's nodes were even allocated and has not widened since, so it
// cannot have traversed to them — formally, dereferencing a batch node
// requires widening upper to >= that node's birth era and then passing link
// re-validation; re-validation passing means the link load preceded the
// node's unlink, which preceded its retire, which preceded this publish, so
// the publisher's upper read would have observed the widened bound and
// delivered. The clock advances once per publish, so with Config.Era wired
// to the structure's pool a reader stalled INSIDE an operation pins only
// batches containing nodes born before its bound — bounded garbage, where
// the unfiltered scheme (Era nil: every birth reads 0, the filter never
// engages and delivery degenerates to all-active, the previous behaviour)
// sat at EBR's unbounded robustness. A reader idle BETWEEN operations has
// an inactive inbox and pins nothing either way — Stats reports the live
// pin mass as HyalineBatchRefs.
//
// Release reuses the per-shard orphan-list machinery as its handoff ramp:
// the leftover local batch moves to the releasing guard's OWN shard's list
// in one CAS (counted OrphanedNodes), and the next guard to pass a
// quiescent boundary adopts it by REPUBLISHING it through the inboxes as an
// orphan-flagged refcounted batch — its zero-crossing free counts
// AdoptedNodes, and when no inbox is active the republisher frees it on the
// spot. A vacated slot never strands retired nodes.
type Hyaline struct {
	cfg     Config
	cnt     counters
	era     EraSource    // birth-era clock for delivery filtering (localEra fallback)
	outRefs atomic.Int64 // sum of unacknowledged deliveries (Stats)
	slots   *shardedPool
	orphans shardedOrphans
	guards  *shardedArena[*hguard]
}

// hbatch is one published retire batch. refs is the outstanding delivery
// count: seeded 0, raised by the publisher after its push sweep, lowered by
// every acknowledgment; the add that lands on exactly 0 frees.
type hbatch struct {
	refs   atomic.Int64
	nodes  []mem.Ref
	orphan bool // Release handoff: free via noteAdopted, not the tally
}

// hentry is one inbox delivery: a cons cell pointing at the shared batch.
// Each (batch, slot) pair gets its own entry, so inbox chains stay
// single-owner after detach.
type hentry struct {
	next  *hentry
	batch *hbatch
}

// hInactive is the inbox sentinel marking a slot outside any operation.
// Publishers skip sentinel inboxes; only the owner installs or removes it.
// The zero inbox value (nil) means ACTIVE-empty, so guards must be born
// with the sentinel installed — the arena constructor does it, before the
// slot is visible to any walk.
var hInactive = &hentry{}

type hguard struct {
	d     *Hyaline
	id    int
	inbox atomic.Pointer[hentry]
	// upper is the guard's era reservation bound, read by publishers to
	// filter deliveries: stored (down or up — the guard holds no references
	// at Begin) before the inbox activates, widened by Protect while the
	// operation runs. Meaningless while the inbox is inactive.
	upper atomic.Uint64
	batch []mem.Ref
	tally tally
	_     [40]byte // keep adjacent guards' hot words apart
}

// NewHyaline builds a Hyaline domain. It has no scan or fallback
// thresholds, so like None it registers no tuner (Stats.EffectiveR/C stay
// zero); Q is its one knob — the publish batch size.
func NewHyaline(cfg Config) (*Hyaline, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &Hyaline{cfg: cfg, era: cfg.Era}
	if d.era == nil {
		// All-zero births: the delivery filter never engages (every batch's
		// minimum birth is 0) and publish degenerates to deliver-to-all.
		d.era = &localEra{}
	}
	d.orphans.init(cfg.Shards)
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *hguard {
		g := &hguard{d: d, id: i}
		g.inbox.Store(hInactive)
		return g
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, nil, d.guards.growShard)
	return d, nil
}

// Guard implements Domain (deprecated positional access). A pinned guard's
// inbox stays inactive until its first Begin.
func (d *Hyaline) Guard(w int) Guard {
	d.slots.pin(w)
	return d.guards.at(w)
}

// Acquire implements Domain.
func (d *Hyaline) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *Hyaline) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// join catches a leased slot up: adopt any stranded backlog (handle churn
// must be an adoption driver, like the epoch schemes' joins). The inbox
// stays inactive until Begin — a freshly leased, not-yet-operating slot
// must not accumulate deliveries it would only acknowledge later.
func (d *Hyaline) join(w int) Guard {
	g := d.guards.at(w)
	if !d.orphans.empty() {
		g.adoptOrphans()
	}
	d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
	return g
}

// Release implements Domain: deactivate (acknowledging any deliveries) and
// move the leftover local batch to this guard's own shard's orphan list,
// from which any worker's next quiescent boundary republishes it through
// the inboxes.
func (d *Hyaline) Release(gd Guard) {
	g, ok := gd.(*hguard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.ClearHPs()
		g.handoff()
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
	})
}

// Name implements Domain.
func (d *Hyaline) Name() string { return "hyaline" }

// Failed implements Domain.
func (d *Hyaline) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain. HyalineBatchRefs can transiently read negative
// while an acknowledgment races the publisher's post-push add; clamp — it
// converges to the true outstanding-delivery sum at every quiescent point.
func (d *Hyaline) Stats() Stats {
	s := Stats{Scheme: "hyaline"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	if v := d.outRefs.Load(); v > 0 {
		s.HyalineBatchRefs = v
	}
	return s
}

// Close implements Domain: acknowledge every inbox (each batch's counter
// crosses zero under exactly one of these acks), free the unpublished
// local batches and drain the orphan lists. Call only once all workers
// have stopped.
func (d *Hyaline) Close() {
	d.guards.forEach(func(g *hguard) {
		if h := g.inbox.Swap(hInactive); h != nil && h != hInactive {
			g.ack(h)
		}
		if len(g.batch) > 0 {
			for _, r := range g.batch {
				d.cfg.Free(r)
			}
			d.cnt.tallyFree(&g.tally, len(g.batch))
			g.batch = nil
		}
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

// Begin enters an operation — Hyaline's quiescent boundary: activate the
// inbox (publishers start delivering), acknowledge any backlog from the
// previous operation, publish the local retire batch once it has reached
// Q nodes, and adopt any stranded backlog. Active-and-empty with nothing
// banked, the common case, is one load plus two length checks.
func (g *hguard) Begin() {
	// Reset the era bound BEFORE the inbox activates (SC program order), so
	// a publisher that sees this inbox active sees this bound or a wider
	// one. Resetting downward is sound exactly here: Begin's contract is a
	// reference-free state, and any later dereference re-widens first.
	g.upper.Store(g.d.era.Era())
	h := g.inbox.Load()
	if h == hInactive {
		// Owner-only transition: publishers never CAS a sentinel head.
		g.inbox.Store(nil)
	} else if h != nil {
		g.ack(g.inbox.Swap(nil))
	}
	// Fault point: stalled here the inbox is active and nothing delivered
	// from now on will ever be acknowledged — but the era filter keeps the
	// pinned mass to batches born before this guard's bound.
	g.d.cfg.fire(FaultInbox, g.id)
	if len(g.batch) >= g.d.cfg.Q {
		g.d.publish(g.batch, false, g)
		g.batch = nil
	}
	if !g.d.orphans.empty() {
		g.adoptOrphans()
	}
}

// Protect widens the guard's era bound to the current clock, exactly like
// an IBR reservation's upper half: after it returns (and the caller's link
// re-validation passes) every node the reader can still reach was born at
// or before the bound, so no publisher will filter a batch this reader
// could dereference. One owner-only load/store pair, no fence — freedom
// from per-pointer publication is retained; only the bound is maintained.
func (g *hguard) Protect(i int, r mem.Ref) {
	if r.IsNil() {
		return
	}
	if e := g.d.era.Era(); e > g.upper.Load() {
		g.upper.Store(e)
	}
}

// ClearHPs exits the operation: deactivate the inbox and acknowledge
// everything delivered during the operation. Inactive already is one load.
func (g *hguard) ClearHPs() {
	if g.inbox.Load() == hInactive {
		return
	}
	if h := g.inbox.Swap(hInactive); h != nil && h != hInactive {
		g.ack(h)
	}
}

// Retire banks r in the local batch. Publication waits for the guard's
// next quiescent boundary (Begin): a batch published mid-operation would
// have to deliver to the retirer's own still-active inbox anyway, and
// boundary-only publication is what lets a never-quiescing leaver's
// backlog strand cleanly onto the orphan list at Release.
func (g *hguard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	if g.batch == nil {
		g.batch = make([]mem.Ref, 0, g.d.cfg.Q)
	}
	g.batch = append(g.batch, r.Untagged())
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
}

func (g *hguard) slotID() int { return g.id }

// handoff moves the leftover local batch to this guard's own shard's
// orphan list in one CAS (release drain only): the nodes count
// OrphanedNodes now and AdoptedNodes when an adopter's republication
// crosses zero.
func (g *hguard) handoff() {
	if len(g.batch) == 0 {
		return
	}
	g.d.orphans.at(g.id).add(g.batch, nil, 0, &g.d.cnt)
	g.batch = nil
}

// adoptOrphans detaches every shard's orphan chain and republishes each
// batch through the inboxes as an orphan-flagged refcounted batch. Safe
// from any context: coverage comes from active-inbox delivery, not from
// the republisher's own state — a slot active since before the batch was
// orphaned receives a delivery and holds it to its next boundary; a slot
// activating later began after the nodes were unlinked and cannot reach
// them.
func (g *hguard) adoptOrphans() {
	for _, b := range g.d.orphans.detachAll() {
		for ; b != nil; b = b.next {
			g.d.publish(b.refs, true, g)
		}
	}
}

// publish delivers one batch to every active inbox whose era bound reaches
// the batch's oldest birth, then seeds the reference counter with the push
// count. A sweep that found no eligible inbox frees on the spot — for an
// inactive slot no operation overlapping the nodes' retirement exists (the
// soundness edge every walk-skip relies on), and for a filtered slot the
// type comment's era argument shows the reader can never pass link
// re-validation for any batch node. The push CAS re-reads the head each
// attempt, so a slot deactivating mid-push is skipped and one reactivating
// is simply delivered to (conservative: its next boundary acknowledges).
// Each publish also advances the era clock, so birth stamps partition into
// eras at batch granularity and the filter gains traction without any
// separate cadence knob.
func (d *Hyaline) publish(nodes []mem.Ref, orphan bool, g *hguard) {
	b := &hbatch{nodes: nodes, orphan: orphan}
	bmin := ^uint64(0)
	for _, r := range nodes {
		if be := d.era.BirthEra(r); be < bmin {
			bmin = be
		}
	}
	pushed := 0
	visited := d.slots.walkOccupied(func(i int) bool {
		p := d.guards.at(i)
		e := &hentry{batch: b}
		for {
			h := p.inbox.Load()
			if h == hInactive {
				return true
			}
			if bmin > 0 && p.upper.Load() < bmin {
				// Era filter: this reader's bound predates every node in
				// the batch — it began before any of them was allocated
				// and has not widened past them since, so it cannot hold
				// (or ever validate) a reference into the batch.
				return true
			}
			e.next = h
			if p.inbox.CompareAndSwap(h, e) {
				pushed++
				return true
			}
		}
	})
	d.era.AdvanceEra()
	d.cnt.tallyScanned(&g.tally, visited)
	if pushed == 0 {
		d.freeBatch(b, g)
		d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
		return
	}
	d.outRefs.Add(int64(pushed))
	if b.refs.Add(int64(pushed)) == 0 {
		// Every recipient acknowledged between our pushes and this add.
		d.freeBatch(b, g)
		d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
	}
}

// ack acknowledges a detached inbox chain: one decrement per delivery,
// freeing each batch whose counter lands on zero. Chains are nil-terminated
// and sentinel-free (entries only ever push onto non-sentinel heads).
func (g *hguard) ack(h *hentry) {
	d := g.d
	freed := false
	for e := h; e != nil; e = e.next {
		if e.batch.refs.Add(-1) == 0 {
			d.freeBatch(e.batch, g)
			freed = true
		}
		d.outRefs.Add(-1)
	}
	if freed {
		d.cnt.flushTally(&g.tally, d.cfg.MemoryLimit)
	}
}

// freeBatch returns a batch's nodes to the pool, attributing the frees to
// the calling guard's tally (orphan batches go straight to the shared
// adopted/freed counters, like every orphan adopter).
func (d *Hyaline) freeBatch(b *hbatch, g *hguard) {
	for _, r := range b.nodes {
		d.cfg.Free(r)
	}
	if b.orphan {
		d.cnt.noteAdopted(len(b.nodes))
	} else {
		d.cnt.tallyFree(&g.tally, len(b.nodes))
	}
}
