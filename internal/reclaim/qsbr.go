package reclaim

import (
	"context"
	"sync/atomic"

	"qsense/internal/mem"
)

// QSBR is quiescent-state-based reclamation (§3.1), the paper's fast path.
//
// Every worker cycles through three logical epochs. A node retired while its
// worker is at epoch e goes into limbo bucket e mod 3. When a worker
// declares a quiescent state (every Q-th Begin) it adopts the global epoch
// g; adoption proves a grace period for bucket (g+1) mod 3 — the nodes
// retired two epoch advances ago — which is then freed wholesale, with no
// per-node checks at all. The epoch-advance check walks only OCCUPIED slots
// (the occupancy index of occupancy.go), so its cost tracks live workers,
// not the arena's high-water size.
//
// QSBR is blocking: one worker that stops declaring quiescent states freezes
// the global epoch and no memory is ever reclaimed again (the robustness
// problem of §3.1); with MemoryLimit set, the domain then reports Failed.
type QSBR struct {
	cfg     Config
	cnt     counters
	epoch   atomic.Uint64 // global epoch e_G
	slots   *shardedPool
	orphans shardedOrphans
	guards  *shardedArena[*qsbrGuard]
}

type qsbrGuard struct {
	d         *QSBR
	id        int
	local     atomic.Uint64 // local epoch, read by peers in tryAdvance
	limbo     [3][]mem.Ref
	calls     int
	adoptSeen uint64 // last epoch at which this guard tried orphan adoption
	tally     tally
	mem       membership
	_         [40]byte // keep hot fields of adjacent guards apart
}

// NewQSBR builds a QSBR domain.
func NewQSBR(cfg Config) (*QSBR, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &QSBR{cfg: cfg}
	d.orphans.init(cfg.Shards)
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *qsbrGuard {
		g := &qsbrGuard{d: d, id: i}
		g.mem.init()
		return g
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, nil, d.guards.growShard)
	return d, nil
}

// Guard implements Domain (deprecated positional access): pins slot w and
// activates its membership, so the guard participates in grace periods from
// this point on, exactly like a fixed worker of the paper's model.
func (d *QSBR) Guard(w int) Guard {
	first := d.slots.pin(w) // also bounds-checks the positional range
	g := d.guards.at(w)
	if first {
		g.mem.activate(g.adopt)
	}
	return g
}

// Acquire implements Domain: lease a slot and join the protocol. The fresh
// tenant holds no shared references, so the lease doubles as a quiescent
// state — under pure handle churn (goroutines too short-lived to ever reach
// a Q-th Begin) these lease-point quiescent states are what keep the global
// epoch advancing and limbo buckets draining.
func (d *QSBR) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *QSBR) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

func (d *QSBR) join(w int) Guard {
	g := d.guards.at(w)
	g.mem.activate(g.adopt)
	g.quiescent()
	return g
}

// Release implements Domain: declare a final quiescent state (the caller
// holds no shared references, per the Release contract), Leave so the slot
// stops blocking grace periods, move the guard's remaining limbo backlog to
// the domain's orphan list — stamped with the current global epoch, so any
// worker's later quiescent state adopts and frees it once three epochs pass
// — and recycle the slot. The vacated slot strands nothing, whether or not
// it is ever leased again.
func (d *QSBR) Release(gd Guard) {
	g, ok := gd.(*qsbrGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.quiescent()
		g.Leave()
		g.orphanLimbo()
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
	})
}

// Name implements Domain.
func (d *QSBR) Name() string { return "qsbr" }

// Failed implements Domain.
func (d *QSBR) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain.
func (d *QSBR) Stats() Stats {
	s := Stats{Scheme: "qsbr"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain: frees all limbo contents and drains the orphan
// lists. Only call once all workers have stopped — at that point every
// bucket has trivially passed a grace period.
func (d *QSBR) Close() {
	d.guards.forEach(func(g *qsbrGuard) {
		for b := range g.limbo {
			g.freeBucket(b)
		}
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

// GlobalEpoch exposes the global epoch for tests.
func (d *QSBR) GlobalEpoch() uint64 { return d.epoch.Load() }

func (g *qsbrGuard) Begin() {
	g.calls++
	if g.calls%g.d.cfg.Q != 0 {
		return
	}
	// Fault point: stalled here, the worker owes a quiescent state it will
	// never deliver — its stale local epoch freezes the global (§3.1's
	// robustness problem, exercised by internal/fault).
	g.d.cfg.fire(FaultQuiesce, g.id)
	g.quiescent()
}

// quiescent declares a quiescent state (§3.1).
//
// Epoch arithmetic. Retires go into bucket (local mod 3). A worker's local
// epoch can lag the global by one while it is between quiescent states, so a
// node in bucket e may have been retired while the global epoch was already
// e+1 — and a reader whose critical section began at global epoch e+1 can
// hold a reference to it. The global reaching e+2 therefore does NOT prove a
// grace period for bucket e (such a reader pins the global at <= e+2 without
// quiescing). The global reaching e+3 does: it requires every worker to have
// adopted e+2 at a quiescent state, after which no critical section with
// epoch <= e+1 survives. Hence: on adopting epoch g, free bucket (g mod 3) —
// whose contents were retired at epoch g-3 — just before refilling it.
func (g *qsbrGuard) quiescent() {
	if !g.mem.active.Load() {
		// Evicted (or left without Join) and now back: recover.
		g.rejoin()
		g.mem.active.Store(true)
	}
	g.mem.stampQuiesce()
	g.d.slots.quiesceAt(g.id)
	global := g.d.epoch.Load()
	// Orphan adoption, at most once per epoch advance: batch maturity only
	// changes when the epoch does, so retrying within one epoch would just
	// churn the shared list head.
	if global != g.adoptSeen && !g.d.orphans.empty() {
		g.adoptSeen = global
		g.d.orphans.adoptEpoch(global, g.d.cfg.Free, &g.d.cnt)
	}
	local := g.local.Load()
	if local != global {
		g.local.Store(global)
		g.freeBucket(int(global % 3))
		g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
		return
	}
	// Already current: try to advance the global epoch. Only OCCUPIED
	// slots are walked (vacant guards are inactive by construction, so
	// skipping them changes no outcome — occupancy.go); inactive peers
	// are skipped; stale peers are evicted first when enabled. A tenant
	// whose lease races this walk joined quiescent at the current epoch or
	// later, which cannot invalidate the grace period — the same argument
	// arena.go makes for slots published after a bound load.
	ok := true
	visited := g.d.slots.walkOccupied(func(i int) bool {
		if i == g.id {
			return true
		}
		peer := g.d.guards.at(i)
		if peer.mem.skipOrEvict(g.d.cfg.EvictAfter, &g.d.cnt.evictions) {
			return true
		}
		if peer.local.Load() != global {
			ok = false
			return false
		}
		return true
	})
	g.d.cnt.tallyScanned(&g.tally, visited)
	if !ok {
		g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
		return
	}
	if g.d.epoch.CompareAndSwap(global, global+1) {
		g.d.cnt.epochs.Add(1)
		// Adopt immediately so a solitary worker still reclaims.
		g.local.Store(global + 1)
		g.freeBucket(int((global + 1) % 3))
	}
	g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
}

func (g *qsbrGuard) slotID() int { return g.id }

// orphanLimbo moves the guard's remaining limbo onto its OWN shard's
// orphan list in one batch stamped with the current global epoch (release
// drain only) — the whole backlog crosses in one CAS, and the orphaned
// load stays on the shard that generated it.
func (g *qsbrGuard) orphanLimbo() {
	g.d.orphans.at(g.id).addRefBuckets(&g.limbo, g.d.epoch.Load(), &g.d.cnt)
}

func (g *qsbrGuard) freeBucket(b int) {
	bucket := g.limbo[b]
	if len(bucket) == 0 {
		return
	}
	for _, r := range bucket {
		g.d.cfg.Free(r)
	}
	g.d.cnt.tallyFree(&g.tally, len(bucket))
	g.limbo[b] = bucket[:0]
}

// Protect is a no-op: QSBR readers are protected by not being quiescent.
func (g *qsbrGuard) Protect(i int, r mem.Ref) {}

// ClearHPs is a no-op for QSBR.
func (g *qsbrGuard) ClearHPs() {}

func (g *qsbrGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	b := g.local.Load() % 3
	g.limbo[b] = append(g.limbo[b], r.Untagged())
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
}
