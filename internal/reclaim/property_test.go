package reclaim

import (
	"testing"
	"testing/quick"

	"qsense/internal/mem"
)

// scriptStep drives one deterministic action on one guard: the generator's
// raw bytes become (guard, action) pairs, so testing/quick explores the
// scheme state machines far beyond what hand-written sequences reach.
type scriptStep struct {
	Guard  uint8
	Action uint8
}

// runScript executes a script against a fresh domain and checks the
// invariants that must hold for ANY interleaving of Begin / Protect /
// Retire / ClearHPs / rooster steps on correct schemes:
//
//  1. no use-after-free or double-free faults (the pool panics on both),
//  2. accounting balances: retired == freed + pending at every point,
//  3. after Close, everything retired has been freed exactly once and the
//     pool holds exactly the never-retired allocations.
func runScript(t *testing.T, scheme string, steps []scriptStep) bool {
	t.Helper()
	const workers = 3
	pool := newTestPool()
	cfg := Config{
		Workers: workers, HPs: 2, Free: freeInto(pool),
		Q: 2, R: 4, ManualRooster: true,
	}
	d, err := New(scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		switch dom := d.(type) {
		case *Cadence:
			dom.Rooster().Step()
		case *QSense:
			dom.Rooster().Step()
		}
	}
	// Per-guard: one live node that may be protected, then retired.
	held := make([]mem.Ref, workers)
	liveNotRetired := 0
	for i := range held {
		held[i] = allocNode(pool, uint64(i))
		liveNotRetired++
	}
	for _, s := range steps {
		g := d.Guard(int(s.Guard) % workers)
		w := int(s.Guard) % workers
		switch s.Action % 6 {
		case 0:
			g.Begin()
		case 1:
			if !held[w].IsNil() {
				g.Protect(0, held[w])
			}
		case 2:
			if !held[w].IsNil() {
				g.Retire(held[w])
				held[w] = 0
				liveNotRetired--
			}
		case 3:
			g.ClearHPs()
		case 4:
			if held[w].IsNil() {
				held[w] = allocNode(pool, uint64(w))
				liveNotRetired++
			}
		case 5:
			step()
		}
		st := d.Stats()
		if st.Freed > st.Retired {
			t.Fatalf("%s: freed %d > retired %d", scheme, st.Freed, st.Retired)
		}
		// The cross-module invariant: every allocated node is either
		// held (never retired) or retired-and-pending. A double free,
		// a lost retiree, or an unaccounted free breaks this equality.
		if scheme != "none" {
			if live := int64(pool.Stats().Live); live != int64(liveNotRetired)+st.Pending {
				t.Fatalf("%s: pool live %d != held %d + pending %d",
					scheme, live, liveNotRetired, st.Pending)
			}
		}
	}
	d.Close()
	if scheme == "none" {
		return true
	}
	if st := d.Stats(); st.Pending != 0 {
		t.Fatalf("%s: pending %d after Close", scheme, st.Pending)
		return false
	}
	if live := pool.Stats().Live; live != uint64(liveNotRetired) {
		t.Fatalf("%s: pool live %d, want %d never-retired nodes", scheme, live, liveNotRetired)
		return false
	}
	return true
}

func TestSchemeScriptsQuick(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			f := func(steps []scriptStep) bool {
				return runScript(t, scheme, steps)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchemeScriptsLong runs one long deterministic script per scheme so
// bucket rotation, scan thresholds and rooster deferral all cycle many
// times within a single domain.
func TestSchemeScriptsLong(t *testing.T) {
	for _, scheme := range Schemes() {
		var steps []scriptStep
		rng := uint64(0x9e3779b9)
		for i := 0; i < 3000; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			steps = append(steps, scriptStep{Guard: uint8(rng >> 32), Action: uint8(rng >> 40)})
		}
		runScript(t, scheme, steps)
	}
}

// TestStatsSnapshotConsistency: a stats snapshot taken under concurrent
// churn never shows freed > retired.
func TestStatsSnapshotConsistency(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSense(Config{Workers: 2, HPs: 1, Free: freeInto(pool), Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		g := d.Guard(0)
		for i := 0; i < 30000; i++ {
			g.Begin()
			g.Retire(allocNode(pool, uint64(i)))
		}
	}()
	bad := 0
	for {
		select {
		case <-done:
			if bad > 0 {
				t.Fatalf("%d inconsistent snapshots (freed > retired)", bad)
			}
			d.Guard(1).Begin() // participate so Close leaves nothing odd
			d.Close()
			return
		default:
			st := d.Stats()
			if st.Freed > st.Retired {
				bad++
			}
		}
	}
}
