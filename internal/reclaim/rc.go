package reclaim

import (
	"context"
	"sync"
	"sync/atomic"

	"qsense/internal/mem"
)

// RC is lock-free reference counting (paper references [9], [12], [30];
// §8 "Reference counting") — the historical baseline the paper dismisses
// as "requiring expensive atomic operations on every access", implemented
// so the benchmarks can show exactly that.
//
// Every Protect is an atomic acquire on the node's counter and an atomic
// release of the slot's previous occupant: two RMWs per node visited,
// against HP's store+fence and Cadence's bare store. Reclamation frees a
// retired node once its count is zero, claimed with a CAS so a concurrent
// acquire and the final free cannot race.
//
// Counters live in a side table keyed by the node's slot index and
// qualified by its allocation generation: one word packs (gen<<32|count).
// The generation qualification is what makes counting safe against slot
// reuse — an acquire against a stale generation fails (the node is gone;
// the caller's link re-validation will fail and retry, per §3.2's
// methodology), and a release after the slot moved on is a detectable
// no-op instead of corrupting the new tenant's count.
//
// Safety sketch: a node is freed only by the claim CAS (gen,0)->(gen+1,0).
// A reader that acquired (count>0) before the claim blocks it. A reader
// that acquires after the node was retired can never pass its link
// validation (the node was unlinked before retire, and generation tagging
// defeats ABA on the link word), so it releases without dereferencing.
type RC struct {
	cfg     Config
	cnt     counters
	tune    *tuner
	table   countTable
	slots   *shardedPool
	orphans shardedOrphans
	guards  *shardedArena[*rcGuard]
}

type rcGuard struct {
	d          *RC
	id         int
	held       []mem.Ref // held[i] = ref currently counted for HP slot i
	rl         []mem.Ref
	sinceSweep int
	tally      tally
	tc         tunerCache
}

// NewRC builds a reference counting domain. Config.HPs bounds the number
// of simultaneously counted references per worker, exactly like hazard
// pointer slots. RC's reclamation is per-node (count claims), so it has no
// slot-proportional walks to convert; only its sweep cadence R re-tunes
// with occupancy.
func NewRC(cfg Config) (*RC, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &RC{cfg: cfg}
	d.tune = newTuner(cfg, &d.cnt)
	d.orphans.init(cfg.Shards)
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *rcGuard {
		return &rcGuard{d: d, id: i, held: make([]mem.Ref, cfg.HPs),
			tc: tunerCache{r: cfg.R, c: cfg.C}}
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, d.tune, d.guards.growShard)
	return d, nil
}

// Guard implements Domain (deprecated positional access). Counts are
// per-node, not per-worker, so pinning needs no scheme work.
func (d *RC) Guard(w int) Guard {
	d.slots.pin(w)
	return d.guards.at(w)
}

// Acquire implements Domain. A fresh RC guard holds no counted references;
// nothing to join beyond refreshing the cached sweep threshold.
func (d *RC) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	g := d.guards.at(w)
	g.tc.refresh(d.tune)
	return g, nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *RC) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	g := d.guards.at(w)
	g.tc.refresh(d.tune)
	return g, nil
}

// Release implements Domain: drop every counted reference, sweep the retire
// list so everything unheld frees now, move the still-held remainder to the
// orphan list — any worker's later sweep claims each node the moment its
// holders release it — and recycle the slot.
func (d *RC) Release(gd Guard) {
	g, ok := gd.(*rcGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.ClearHPs()
		if len(g.rl) > 0 {
			g.sweep()
		}
		if len(g.rl) > 0 {
			d.orphans.at(g.id).add(g.rl, nil, 0, &d.cnt)
			g.rl = nil
		}
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
	})
}

// Name implements Domain.
func (d *RC) Name() string { return "rc" }

// Failed implements Domain.
func (d *RC) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain.
func (d *RC) Stats() Stats {
	s := Stats{Scheme: "rc"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain: frees every node still awaiting reclamation,
// ignoring counts, and drains the orphan list (call only once all workers
// have stopped).
func (d *RC) Close() {
	d.guards.forEach(func(g *rcGuard) {
		for _, r := range g.rl {
			d.cfg.Free(r)
		}
		d.cnt.tallyFree(&g.tally, len(g.rl))
		g.rl = g.rl[:0]
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

func (g *rcGuard) Begin() {}

// Protect acquires a counted reference on r and releases the slot's
// previous occupant — two atomic RMWs, the scheme's defining cost. If r's
// generation is already gone the slot is left empty; the caller's link
// validation is then guaranteed to fail.
func (g *rcGuard) Protect(i int, r mem.Ref) {
	r = r.Untagged()
	old := g.held[i]
	if old == r {
		return
	}
	if !r.IsNil() && !g.d.table.acquire(r) {
		r = 0
	}
	g.held[i] = r
	if !old.IsNil() {
		g.d.table.release(old)
	}
	// Fault point: stalled with the count held, the reader pins exactly
	// the nodes its held slots have acquired.
	g.d.cfg.fire(FaultProtect, g.id)
}

// ClearHPs releases every counted reference.
func (g *rcGuard) ClearHPs() {
	for i, r := range g.held {
		if !r.IsNil() {
			g.d.table.release(r)
			g.held[i] = 0
		}
	}
}

func (g *rcGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	g.rl = append(g.rl, r.Untagged())
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
	g.sinceSweep++
	if g.sinceSweep >= g.tc.r {
		g.sinceSweep = 0
		g.sweep()
	}
}

func (g *rcGuard) slotID() int { return g.id }

// sweep frees the retired nodes whose count the claim CAS can take to the
// next generation (i.e. nobody holds them); the rest stay for later. The
// same pass adopts orphaned nodes whose holders have since released them.
func (g *rcGuard) sweep() {
	g.d.cnt.scans.Add(1)
	kept := g.rl[:0]
	freed := 0
	for _, r := range g.rl {
		if g.d.table.tryClaim(r) {
			g.d.cfg.Free(r)
			freed++
		} else {
			kept = append(kept, r)
		}
	}
	g.rl = kept
	g.d.cnt.tallyFree(&g.tally, freed)
	g.d.orphans.adoptClaim(&g.d.table, g.d.cfg.Free, &g.d.cnt)
	g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	g.tc.refresh(g.d.tune)
}

// countTable maps slot indexes to (generation<<32 | count) words, growing
// in published-once segments like mem.Pool's slab directory.
type countTable struct {
	segs   [countSegs]atomic.Pointer[countSeg]
	growMu sync.Mutex
}

const (
	countSegShift = 13
	countSegSize  = 1 << countSegShift // counters per segment
	countSegs     = 1 << 16            // covers 2^29 slots
)

type countSeg [countSegSize]atomic.Uint64

func (t *countTable) slot(idx uint32) *atomic.Uint64 {
	si := idx >> countSegShift
	seg := t.segs[si].Load()
	if seg == nil {
		t.growMu.Lock()
		if seg = t.segs[si].Load(); seg == nil {
			seg = new(countSeg)
			t.segs[si].Store(seg)
		}
		t.growMu.Unlock()
	}
	return &seg[idx&(countSegSize-1)]
}

func packCount(gen uint32, count uint32) uint64 { return uint64(gen)<<32 | uint64(count) }

// Counter words move through generations monotonically: a newer generation
// may override an older word, never the reverse. This is the invariant
// that makes the table safe against slot reuse — without it, a stale
// reader could park its dead generation's count in the word and block a
// LIVE node's acquire, sending a current reader past validation without
// protection. (Counts under an older generation protect nothing: that
// tenant is gone — its free either claimed the word past its generation,
// or it was a never-linked node freed directly, which no reader could
// have reached.) Generation wraparound (30-bit, one step per slot
// transition) is ignored, like everywhere else in the substrate.

// acquire increments r's count. It fails (returns false) when the counter
// word has moved past r's generation — r's node is gone, and the caller's
// link validation is guaranteed to fail too.
func (t *countTable) acquire(r mem.Ref) bool {
	c := t.slot(r.Index())
	gen := r.Gen()
	for {
		w := c.Load()
		wg := uint32(w >> 32)
		switch {
		case wg == gen:
			if c.CompareAndSwap(w, w+1) {
				return true
			}
		case wg < gen:
			// Older word (possibly with a dead generation's count):
			// override with ours.
			if c.CompareAndSwap(w, packCount(gen, 1)) {
				return true
			}
		default:
			return false // the slot moved on; r is stale
		}
	}
}

// release decrements r's count. A generation mismatch means the count was
// already claimed or superseded; releasing is then a no-op.
func (t *countTable) release(r mem.Ref) {
	c := t.slot(r.Index())
	gen := r.Gen()
	for {
		w := c.Load()
		if uint32(w>>32) != gen || uint32(w) == 0 {
			return
		}
		if c.CompareAndSwap(w, w-1) {
			return
		}
	}
}

// tryClaim atomically retires generation r: it succeeds only when r holds
// no counts, bumping the word past r's generation so late acquires fail.
func (t *countTable) tryClaim(r mem.Ref) bool {
	c := t.slot(r.Index())
	gen := r.Gen()
	for {
		w := c.Load()
		wg := uint32(w >> 32)
		if wg > gen {
			// The word moved past r without our claim — cannot
			// happen while r is retired-but-unfreed (new tenants
			// need our free first). Refuse rather than double-free.
			return false
		}
		if wg == gen && uint32(w) != 0 {
			return false // held by readers
		}
		// Either our generation with count 0, or an older word (r was
		// never acquired; any old count belongs to a dead tenant).
		if c.CompareAndSwap(w, packCount(gen+1, 0)) {
			return true
		}
	}
}
