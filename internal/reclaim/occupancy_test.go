package reclaim

import (
	"sync"
	"testing"

	"qsense/internal/mem"
)

// occupancyCount walks the pool's active-slot index and returns how many
// slots it visits (test helper over the shared walk primitive).
func occupancyCount(t *testing.T, d Domain) int {
	t.Helper()
	var p *shardedPool
	switch dom := d.(type) {
	case *None:
		p = dom.slots
	case *QSBR:
		p = dom.slots
	case *HP:
		p = dom.slots
	case *Cadence:
		p = dom.slots
	case *QSense:
		p = dom.slots
	case *EBR:
		p = dom.slots
	case *RC:
		p = dom.slots
	case *IBR:
		p = dom.slots
	case *Hyaline:
		p = dom.slots
	default:
		t.Fatalf("unknown domain %T", d)
	}
	return p.walkOccupied(func(int) bool { return true })
}

// burstDomain builds a scheme domain with a small initial arena, drives a
// burst of `burst` simultaneous leases through it (growing the arena), and
// drains them all again (parking the grown segments). Returns the domain.
func burstDomain(t *testing.T, scheme string, pool *mem.Pool[tnode], burst int) Domain {
	t.Helper()
	cfg := Config{Workers: 8, HPs: 2, Free: freeInto(pool), Q: 1, R: 8, ManualRooster: true}
	if scheme == "qsense" {
		cfg.C = 1 << 20 // stay on the fast path; fallback is exercised below
	}
	d, err := New(scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	guards := make([]Guard, burst)
	for i := range guards {
		g, err := d.Acquire()
		if err != nil {
			t.Fatalf("%s: burst acquire %d: %v", scheme, i, err)
		}
		guards[i] = g
	}
	if st := d.Stats(); st.ArenaSize < burst {
		t.Fatalf("%s: arena %d after %d simultaneous leases", scheme, st.ArenaSize, burst)
	}
	for _, g := range guards {
		d.Release(g)
	}
	return d
}

// TestScanWorkTracksOccupancy is the burst-then-idle contract for all seven
// schemes: after a 10k-lease burst drains, per-pass reclamation work (the
// records a scan/advance/sweep actually visits, Stats.ScannedRecords) must
// track the handful of LIVE workers, not the 16k-slot high-water arena —
// and the drained capacity must be parked.
func TestScanWorkTracksOccupancy(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			burst := 10000
			if scheme == "ebr" {
				// Every EBR Acquire helps the epoch along, which walks
				// all live peers — a simultaneous burst of joins is
				// inherently quadratic in the burst size (pre-PR it
				// walked the full arena instead, no better). 2048 keeps
				// the race-instrumented run fast while still 512x the
				// live count below.
				burst = 2048
			}
			if testing.Short() {
				burst = min(burst, 2000)
			}
			pool := newTestPool()
			d := burstDomain(t, scheme, pool, burst)
			defer d.Close()

			st := d.Stats()
			if st.HighWaterWorkers < burst {
				t.Fatalf("high water %d after a %d burst", st.HighWaterWorkers, burst)
			}
			if st.ParkedSlots == 0 || st.SegmentParks == 0 {
				t.Fatalf("nothing parked after the burst drained: %+v", st)
			}
			if kept := st.ArenaSize - st.ParkedSlots; kept > 64 {
				t.Fatalf("%d of %d slots still walked after drain", kept, st.ArenaSize)
			}

			// Re-occupy a few slots and drive every scheme's reclamation
			// machinery: retires past the scan threshold, quiescent
			// states, epoch advances, rooster steps.
			const live = 4
			guards := make([]Guard, live)
			for i := range guards {
				g, err := d.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				guards[i] = g
			}
			if occ := occupancyCount(t, d); occ != live {
				t.Fatalf("occupancy walk visits %d slots, want %d", occ, live)
			}
			before := d.Stats()
			const opsPer = 64
			for i := 0; i < opsPer; i++ {
				for _, g := range guards {
					g.Begin()
					g.Retire(allocNode(pool, uint64(i)))
				}
				switch dom := d.(type) {
				case *Cadence:
					dom.Rooster().Step()
				case *QSense:
					dom.Rooster().Step()
				}
			}
			after := d.Stats()
			visited := after.ScannedRecords - before.ScannedRecords
			// Upper bound: every op may trigger at most a couple of
			// walks (scan + advance + rooster flush + adoption pass),
			// each visiting the live workers only. Give a generous
			// constant slack; the point is the bound does NOT scale
			// with the 16k high-water arena — pre-PR a single scan
			// visited >= burst records and this bound was unreachable.
			bound := uint64(opsPer*live*4*(live+2)) + 256
			if visited > bound {
				t.Fatalf("%s: %d records visited for %d ops over %d live workers (bound %d) — scan work is tracking high-water, not occupancy",
					scheme, visited, opsPer*live, live, bound)
			}
			for _, g := range guards {
				d.Release(g)
			}
		})
	}
}

// TestParkedCapacityIsReused: growth after a park must unpark the resting
// segments (republishing their slots) before appending new ones — the
// arena never grows while parked capacity exists.
func TestParkedCapacityIsReused(t *testing.T) {
	// The never-grow-while-parked contract is per shard: a goroutine's
	// affinity shard may legitimately append segments while a sibling shard
	// rests parked capacity. Pin to one shard to assert the contract itself.
	t.Setenv("QSENSE_SHARDS", "1")
	pool := newTestPool()
	d := burstDomain(t, "qsbr", pool, 256)
	defer d.Close()
	st := d.Stats()
	if st.ParkedSlots == 0 {
		t.Fatalf("nothing parked: %+v", st)
	}
	size, grows := st.ArenaSize, st.ArenaGrowths
	// Re-lease past segment 0: must be served by unparking, not growth.
	guards := make([]Guard, 64)
	for i := range guards {
		g, err := d.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		guards[i] = g
	}
	st = d.Stats()
	if st.ArenaSize != size || st.ArenaGrowths != grows {
		t.Fatalf("arena grew (%d->%d slots, %d->%d growths) with parked capacity available",
			size, st.ArenaSize, grows, st.ArenaGrowths)
	}
	if st.SegmentUnparks == 0 {
		t.Fatal("no unparks recorded serving 64 leases from parked capacity")
	}
	for _, g := range guards {
		d.Release(g)
	}
}

// TestParkedSegmentOrphanAdoption: a backlog orphaned from a grown slot
// must still be adopted after its segment parks — the orphan list is
// domain-global, so parking the birth segment cannot strand the nodes.
func TestParkedSegmentOrphanAdoption(t *testing.T) {
	// Deterministic segment geometry (third lease lands in segment 1,
	// which then parks) only holds with one shard; cross-shard orphan
	// adoption has its own tests in shard_test.go.
	t.Setenv("QSENSE_SHARDS", "1")
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 2, HPs: 1, Free: freeInto(pool), Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g0, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	g1, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	grown, err := d.Acquire() // third lease: publishes segment 1
	if err != nil {
		t.Fatal(err)
	}
	if SlotIndex(grown) < 2 {
		t.Fatalf("third lease landed in segment 0 (slot %d)", SlotIndex(grown))
	}
	r := allocNode(pool, 7)
	grown.Retire(r)
	d.Release(grown) // orphans the unaged node
	d.Release(g1)    // occupancy 1 <= lo/2: segment 1 parks
	st := d.Stats()
	if st.ParkedSlots == 0 {
		t.Fatalf("segment 1 did not park: %+v", st)
	}
	if st.OrphanedNodes != 1 {
		t.Fatalf("OrphanedNodes = %d, want 1", st.OrphanedNodes)
	}
	for i := 0; i < 8 && pool.Valid(r); i++ {
		g0.Begin() // sole active worker: epoch turns, adoption matures
	}
	if pool.Valid(r) {
		t.Fatal("orphan from the parked segment was never adopted")
	}
	if st := d.Stats(); st.Pending != 0 || st.AdoptedNodes != 1 {
		t.Fatalf("pending/adopted = %d/%d after adoption, want 0/1", st.Pending, st.AdoptedNodes)
	}
	d.Release(g0)
}

// TestParkUnparkChurnRace is the -race stress for the parking machinery:
// bursts of concurrent leases grow and unpark the arena while full drains
// park it again, with a pinned positional guard retiring through every
// transition (its segment-0 slot must stay visible to every walk) and
// releases mid-backlog exercising orphan adoption against parked segments.
func TestParkUnparkChurnRace(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			workers, rounds, opsPer := 16, 4, 30
			if testing.Short() {
				workers, rounds = 8, 2
			}
			pool := newTestPool()
			cfg := Config{Workers: 2, HPs: 1, Free: freeInto(pool), Q: 2, R: 4}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mb := newMailbox(pool, 16)
			errs := make(chan error, workers+1)
			catch := func(f func()) func() {
				return func() {
					defer func() {
						if r := recover(); r != nil {
							if v, ok := r.(*mem.Violation); ok {
								errs <- v
								return
							}
							panic(r)
						}
					}()
					f()
				}
			}

			pinned := d.Guard(0)
			done := make(chan struct{})
			var stop sync.WaitGroup
			stop.Add(1)
			go catch(func() {
				defer stop.Done()
				rng := uint64(0xfeed)
				for {
					select {
					case <-done:
						pinned.ClearHPs()
						return
					default:
					}
					pinned.Begin()
					rng = rng*6364136223846793005 + 1442695040888963407
					if rng&1 == 0 {
						mb.put(pinned, int(rng>>33)%len(mb.slots), rng)
					} else {
						mb.take(pinned, int(rng>>33)%len(mb.slots))
					}
				}
			})()

			var wg sync.WaitGroup
			var barrier sync.WaitGroup
			for round := 0; round < rounds; round++ {
				// Burst: all workers lease simultaneously (growth or
				// unpark), operate, then drain together (park).
				barrier.Add(workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go catch(func() {
						defer wg.Done()
						g, err := d.Acquire()
						if err != nil {
							errs <- err
							barrier.Done()
							return
						}
						barrier.Done()
						barrier.Wait() // hold the lease until all peers leased
						rng := uint64(SlotIndex(g))*0x9e3779b9 + 1
						for i := 0; i < opsPer; i++ {
							g.Begin()
							rng = rng*6364136223846793005 + 1442695040888963407
							if rng&1 == 0 {
								mb.put(g, int(rng>>33)%len(mb.slots), rng)
							} else {
								mb.take(g, int(rng>>33)%len(mb.slots))
							}
						}
						g.ClearHPs()
						d.Release(g)
					})()
				}
				wg.Wait()
			}
			close(done)
			stop.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: %v", scheme, err)
			}
			st := d.Stats()
			if st.ArenaGrowths == 0 {
				t.Fatalf("%s: churn never grew the arena: %+v", scheme, st)
			}
			if st.SegmentParks == 0 {
				t.Fatalf("%s: full drains never parked a segment: %+v", scheme, st)
			}
			g, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			mb.drain(g)
			d.Release(g)
			d.Close()
			if scheme != "none" {
				if st := d.Stats(); st.Pending != 0 {
					t.Fatalf("%s: %d pending after Close", scheme, st.Pending)
				}
				if live := pool.Stats().Live; live != 0 {
					t.Fatalf("%s: %d nodes leaked", scheme, live)
				}
			}
		})
	}
}

// TestThresholdsRetuneWithOccupancy: a defaulted R follows the live worker
// count through growth and parking; a defaulted C tracks LegalC; an
// explicitly configured R is never touched.
func TestThresholdsRetuneWithOccupancy(t *testing.T) {
	pool := newTestPool()
	d, err := NewHP(Config{Workers: 2, HPs: 2, Free: freeInto(pool)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r0 := d.Stats().EffectiveR
	if r0 != 2*2*2+64 {
		t.Fatalf("initial EffectiveR = %d, want %d", r0, 2*2*2+64)
	}
	guards := make([]Guard, 128)
	for i := range guards {
		if guards[i], err = d.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.RRetunes == 0 || st.EffectiveR <= r0 {
		t.Fatalf("R did not retune upward on growth: %+v", st)
	}
	grownR := st.EffectiveR
	for _, g := range guards {
		d.Release(g)
	}
	st = d.Stats()
	if st.EffectiveR >= grownR {
		t.Fatalf("R did not retune back down after the drain parked: %d -> %d", grownR, st.EffectiveR)
	}

	// An explicit R is a caller decision: growth must not touch it.
	fixed, err := NewHP(Config{Workers: 2, HPs: 2, R: 128, Free: freeInto(pool)})
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	for i := range guards {
		if guards[i], err = fixed.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	if st := fixed.Stats(); st.RRetunes != 0 || st.EffectiveR != 128 {
		t.Fatalf("explicit R was retuned: %+v", st)
	}
	for _, g := range guards {
		fixed.Release(g)
	}
}

// TestLegalCReValidatedOnGrowth: a C that is legal for the initial N but
// illegal for the grown N must be raised to the current LegalC bound —
// §6.2 binds against the live worker count, not the construction-time one.
func TestLegalCReValidatedOnGrowth(t *testing.T) {
	pool := newTestPool()
	cfg := Config{Workers: 2, HPs: 2, Free: freeInto(pool)}
	cfg.C = LegalC(cfg) // minimal legal value at N=2
	d, err := NewQSense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Stats().EffectiveC; got != cfg.C {
		t.Fatalf("EffectiveC = %d at construction, want the configured %d", got, cfg.C)
	}
	guards := make([]Guard, 256)
	for i := range guards {
		if guards[i], err = d.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	want := Config{Workers: 256, HPs: 2, R: st.EffectiveR}
	if legal := LegalC(want); st.EffectiveC < legal {
		t.Fatalf("EffectiveC = %d below LegalC = %d at N=256 — §6.2 violated after growth", st.EffectiveC, legal)
	}
	if st.CRetunes == 0 {
		t.Fatalf("no CRetunes recorded raising an illegal C: %+v", st)
	}
	raised := st.EffectiveC
	for _, g := range guards {
		d.Release(g)
	}
	if st := d.Stats(); st.EffectiveC >= raised {
		t.Fatalf("EffectiveC did not fall back toward the configured floor after the drain: %d -> %d", raised, st.EffectiveC)
	}
}

// TestRetireTallyExactStats: Stats.Retired must stay exact BETWEEN tally
// flushes — the per-guard residue is summed into every snapshot — and the
// shared counters must catch up at pass boundaries.
func TestRetireTallyExactStats(t *testing.T) {
	pool := newTestPool()
	d, err := NewQSBR(Config{Workers: 1, HPs: 1, Free: freeInto(pool), Q: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	g := d.Guard(0)
	for i := 1; i <= tallyFlushEvery+5; i++ {
		g.Retire(allocNode(pool, uint64(i)))
		if got := d.Stats().Retired; got != uint64(i) {
			t.Fatalf("Stats.Retired = %d after %d retires", got, i)
		}
	}
	// A quiescent state is a pass boundary: the residue must be flushed.
	d.guards.at(0).quiescent()
	if res := d.guards.at(0).tally.res.Load(); res != 0 {
		t.Fatalf("residue %d after a quiescent state", res)
	}
	if got := d.Stats().Retired; got != uint64(tallyFlushEvery+5) {
		t.Fatalf("Stats.Retired = %d after flush", got)
	}
}
