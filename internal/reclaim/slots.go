package reclaim

// Dynamic handle leasing — the slot allocator behind Domain.Acquire/Release.
//
// A domain owns a fixed arena of Config.Workers guard slots (the paper's N;
// sized by the public Options.MaxWorkers). The paper freezes the worker set
// at construction; leasing turns each slot into a recyclable resource so an
// unbounded population of short-lived goroutines (a Go server's
// goroutine-per-request world) can share the arena: Acquire pops a free
// slot from a lock-free freelist, Release drains the slot's reclamation
// state and pushes it back.
//
// Each slot is in one of three states:
//
//	free   — in the freelist, available to Acquire.
//	leased — popped by Acquire; exactly one goroutine owns the guard.
//	pinned — claimed forever by the deprecated positional Guard(w) path,
//	         which the fixed-worker experiment harness still uses to pin
//	         slots deterministically. A pinned slot never returns to the
//	         freelist; if Acquire pops one (pinned after it was already
//	         listed) it is discarded, not handed out.
//
// The freelist is a Treiber stack over slot indices with a version-counted
// head (the same ABA discipline the node pools use): head packs
// (version<<32 | index+1), next[i] holds the successor's index+1. LIFO
// order deliberately keeps recently released slots hot — their guards'
// limbo backlogs are the youngest and their cache lines the warmest.
import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrNoSlots is returned by Acquire when every slot in the arena is leased
// or pinned. Callers can retry after other workers Release, or build the
// domain with a larger MaxWorkers.
var ErrNoSlots = errors.New("reclaim: all worker slots are leased (raise MaxWorkers or release a handle)")

const (
	slotFree int32 = iota
	slotLeased
	slotReleasing // release claimed; guard state is being drained
	slotPinned
)

// slotPool is the lock-free slot allocator. All methods are safe for
// concurrent use.
type slotPool struct {
	head  atomic.Uint64   // (version<<32) | (top index+1); low word 0 = empty
	next  []atomic.Uint32 // next[i] = successor index+1 in the freelist
	state []atomic.Int32  // slotFree / slotLeased / slotPinned

	// Waiter support for leaseWait: wake holds the current generation's
	// broadcast channel; a release observing waiters > 0 closes it and
	// installs a fresh one, waking every parked leaseWait to retry.
	wake    atomic.Pointer[chan struct{}]
	waiters atomic.Int32
}

func newSlotPool(n int) *slotPool {
	p := &slotPool{next: make([]atomic.Uint32, n), state: make([]atomic.Int32, n)}
	ch := make(chan struct{})
	p.wake.Store(&ch)
	// Push 0..n-1 so Acquire hands out low indices first.
	for i := n - 1; i >= 0; i-- {
		p.next[i].Store(uint32(p.head.Load()))
		p.head.Store(uint64(i + 1))
	}
	return p
}

// tryAcquire pops a free slot and marks it leased, discarding pinned slots
// it encounters. Returns -1 when the freelist is exhausted.
func (p *slotPool) tryAcquire() int {
	for {
		h := p.head.Load()
		top := uint32(h)
		if top == 0 {
			return -1
		}
		i := int(top - 1)
		nxt := p.next[i].Load()
		// The version bump makes a concurrent pop/push cycle of the same
		// slot fail this CAS instead of corrupting the list (ABA).
		if !p.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(nxt)) {
			continue
		}
		if p.state[i].CompareAndSwap(slotFree, slotLeased) {
			return i
		}
		// Pinned after it was listed: drop it and keep popping. (A
		// popped slot can never be leased — leased slots are not in the
		// list.)
	}
}

// lease pops a free slot, counting the lease. The scheme-specific join
// hooks run in the caller, on the returned index.
func (p *slotPool) lease(cnt *counters) (int, error) {
	w := p.tryAcquire()
	if w < 0 {
		return -1, ErrNoSlots
	}
	cnt.acquired.Add(1)
	return w, nil
}

// leaseWait is lease that parks while the arena is exhausted, woken by the
// next unlease, or fails with ctx.Err() when ctx is done first.
//
// Lost-wakeup freedom: the waiter loads the wake channel BEFORE its retry
// pop, and unlease pushes the slot BEFORE checking the waiter count. If the
// releaser misses our count (we registered after its check), its push is
// already visible to our retry; if our retry misses the slot, the releaser
// saw our count and closes the very channel generation we hold (or a
// later release does) — either way we cannot sleep through a free slot.
func (p *slotPool) leaseWait(ctx context.Context, cnt *counters) (int, error) {
	if w := p.tryAcquire(); w >= 0 {
		cnt.acquired.Add(1)
		return w, nil
	}
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	for {
		ch := *p.wake.Load()
		if w := p.tryAcquire(); w >= 0 {
			cnt.acquired.Add(1)
			return w, nil
		}
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-ch:
		}
	}
}

// wakeWaiters closes out the current wake generation so every parked
// leaseWait retries. Each caller closes only the channel it swapped out, so
// racing releases never double-close.
func (p *slotPool) wakeWaiters() {
	ch := make(chan struct{})
	old := p.wake.Swap(&ch)
	close(*old)
}

// unlease runs the release protocol for slot i: claim the release (exactly
// one caller wins; pinned and already-released slots are refused), run the
// scheme's drain while the slot is in the releasing state — invisible to
// both Acquire and pin — then recycle it. Reports whether this call
// performed the release.
// A pin can slip in between unlease's slotFree store and its push; the
// pinned slot then sits in the freelist until tryAcquire pops and discards
// it. What cannot happen is a pin DURING the drain: the releasing state
// refuses it, so a drain's trailing cleanup (e.g. hiding an hprec from
// scans) can never clobber a new pin's setup.
func (p *slotPool) unlease(i int, cnt *counters, drain func()) bool {
	if !p.state[i].CompareAndSwap(slotLeased, slotReleasing) {
		return false
	}
	drain()
	p.state[i].Store(slotFree)
	for {
		h := p.head.Load()
		p.next[i].Store(uint32(h))
		if p.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(i+1)) {
			break
		}
	}
	cnt.released.Add(1)
	if p.waiters.Load() > 0 {
		p.wakeWaiters()
	}
	return true
}

// errForeignGuard is the Release misuse panic shared by the schemes.
const errForeignGuard = "reclaim: Release of a guard from another domain"

// pin claims slot i forever for the positional Guard(w) path. Reports
// whether this call performed the transition (first pin). A slot mid-
// release is waited out; pinning a slot some goroutine holds via Acquire
// is a caller error that would silently alias the guard across two
// goroutines — it panics rather than corrupt.
func (p *slotPool) pin(i int) bool {
	for {
		switch p.state[i].Load() {
		case slotFree:
			if p.state[i].CompareAndSwap(slotFree, slotPinned) {
				return true
			}
		case slotReleasing:
			runtime.Gosched() // another goroutine is draining this slot
		case slotPinned:
			return false
		case slotLeased:
			panic("reclaim: positional Guard(w) on a slot currently leased via Acquire — do not mix the two APIs over one slot")
		}
	}
}
