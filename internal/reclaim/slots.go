package reclaim

// Dynamic handle leasing — the elastic slot allocator behind
// Domain.Acquire/Release.
//
// Under Config.Shards > 1 a domain owns S independent instances of this
// allocator — one per shard, each with its own freelist head, growth lock,
// occupancy index and parking suffix — behind the shardedPool façade
// (shard.go) that maps between global and shard-local slot indices. All
// indices in this file are shard-local; "the arena" below reads as "this
// shard's share of the arena".
//
// A domain owns an arena of guard slots that starts at Config.Workers (the
// paper's N; the public Options.MaxWorkers) and, by default, GROWS on
// demand: when Acquire finds the freelist empty, the pool first unparks the
// lowest parked segment (capacity reclaimed from an earlier burst — see
// occupancy.go) and only then appends a publish-once segment of fresh slots
// (see arena.go for the geometry and the publication ordering), so Acquire
// only fails once the arena has reached Config.HardMaxWorkers with every
// slot leased — and an elastic domain (no hard cap) effectively never
// fails. The paper freezes the worker set at construction; leasing turned
// each slot into a recyclable resource, and elasticity removes the last
// sizing guess: an unbounded population of short-lived goroutines (a Go
// server's goroutine-per-request world) can share the arena without anyone
// predicting its peak.
//
// Each slot is in one of three states:
//
//	free   — in the freelist (or held aside by a parked segment),
//	         available to Acquire.
//	leased — popped by Acquire; exactly one goroutine owns the guard.
//	pinned — claimed forever by the deprecated positional Guard(w) path,
//	         which the fixed-worker experiment harness still uses to pin
//	         slots deterministically. A pinned slot never returns to the
//	         freelist; if Acquire pops one (pinned after it was already
//	         listed) it is discarded, not handed out.
//
// Leased and pinned slots are additionally indexed in their segment's
// occupancy bitmap (occupancy.go), which is what keeps every reclamation
// walk proportional to live occupancy rather than the arena's high-water
// size.
//
// The freelist is a Treiber stack over slot indices with a version-counted
// head (the same ABA discipline the node pools use): head packs
// (version<<32 | index+1), next[i] holds the successor's index+1. LIFO
// order deliberately keeps recently released slots hot — their guards'
// limbo backlogs are the youngest and their cache lines the warmest — and
// means growth happens only when the *concurrent* lease count exceeds
// everything released so far, never from mere churn.
import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrNoSlots is returned by Acquire when the arena has grown to its
// HardMaxWorkers cap and every slot is leased or pinned. Callers can wait
// with AcquireWait, retry after other workers Release, or build the domain
// with a larger (or absent) cap. Elastic domains — no cap configured —
// only see it at the library ceiling MaxArenaSlots.
var ErrNoSlots = errors.New("reclaim: all worker slots are leased up to the hard cap (raise HardMaxWorkers or release a handle)")

const (
	slotFree int32 = iota
	slotLeased
	slotReleasing // release claimed; guard state is being drained
	slotPinned
)

// slotSeg is one published segment of allocator state; next and state are
// indexed by in-segment offset. For grown segments (never segment 0, whose
// state array doubles as its occupancy index), occ is the occupancy bitmap
// (bit off&63 of word off>>6, set while the slot is leased) and live its
// occupied count — the active-slot index every reclamation walk iterates
// (occupancy.go).
type slotSeg struct {
	next  []atomic.Uint32 // next[off] = freelist successor's index+1 (global)
	state []atomic.Int32  // slotFree / slotLeased / slotPinned
	occ   []atomic.Uint64 // occupancy bitmap
	live  atomic.Int32    // occupied slots here; parking's cheap precheck
}

func newSlotSeg(n int) *slotSeg {
	return &slotSeg{
		next:  make([]atomic.Uint32, n),
		state: make([]atomic.Int32, n),
		occ:   make([]atomic.Uint64, (n+63)/64),
	}
}

// slotPool is the lock-free slot allocator. All methods are safe for
// concurrent use; growth, parking and unparking are serialized by growMu
// but never block pops of already-published slots.
type slotPool struct {
	head atomic.Uint64 // (version<<32) | (top index+1); low word 0 = empty
	init uint32        // initial (soft) arena size, segment-0 size
	cap  uint32        // hard slot-count ceiling (HardMaxWorkers)
	high atomic.Uint32 // published slot count; monotone
	segs []atomic.Pointer[slotSeg]

	seg0 *slotSeg // segment 0, immutable after construction: the fast path

	all *shardedPool // owning façade: retunes, waiter wakeups (shard.go)

	// live is this pool's exact occupancy (leases + pins), maintained on
	// every occupancy transition including segment 0's. It is what shard
	// selection compares, what walks use to skip an idle shard outright,
	// and what the high-water and parking estimates read — replacing the
	// old acquired-released+pinned arithmetic with one exact counter.
	live atomic.Int64

	// Per-shard lease/quiesce tallies, summed into Stats by the façade.
	// Keeping these RMWs pool-local is the point of sharding: the hot
	// lease and quiescent paths touch no domain-wide cache line.
	acquired atomic.Uint64
	released atomic.Uint64
	quiesce  atomic.Uint64

	growMu sync.Mutex
	// onGrow publishes the owning scheme's per-slot state (guards, hazard
	// records) for all slots below the given bound, BEFORE the pool's own
	// segment and high are published — so a leased index always resolves in
	// every scheme-side table.
	onGrow func(hi int)

	grows     atomic.Uint64 // segment publications past the initial one
	highWater atomic.Int64  // peak simultaneous occupancy (leases + pins)

	// Segment parking (occupancy.go): segments [parkedFrom, top] are
	// parked — all-free, out of the freelist, skipped by every walk.
	// parkedFrom starts past the directory, meaning "none parked".
	parkedFrom  atomic.Int32
	parkedSlots atomic.Int64
	parks       atomic.Uint64
	unparks     atomic.Uint64
}

// newSlotPool builds the allocator with segment 0 (the initial soft size)
// published and its slots pushed free, low indices on top. The caller (the
// shardedPool façade) sets p.all before the pool is reachable; tuning and
// leaseWait wakeups go through that back-pointer.
func newSlotPool(init, hardMax int, onGrow func(hi int)) *slotPool {
	p := &slotPool{
		init:   uint32(init),
		cap:    uint32(hardMax),
		onGrow: onGrow,
		segs:   make([]atomic.Pointer[slotSeg], numSegs(uint32(init), uint32(hardMax))),
	}
	p.seg0 = newSlotSeg(init)
	p.segs[0].Store(p.seg0)
	p.high.Store(uint32(init))
	p.parkedFrom.Store(int32(len(p.segs)))
	for i := init - 1; i >= 0; i-- {
		p.pushSlot(i)
	}
	return p
}

// slot resolves index i to its allocator cells. Segment-0 indices — all of
// them until growth happens — take the direct path; grown indices pay one
// directory hop (the elastic redesign's single extra indirection).
func (p *slotPool) slot(i int) (next *atomic.Uint32, state *atomic.Int32) {
	if u := uint32(i); u < p.init {
		return &p.seg0.next[u], &p.seg0.state[u]
	}
	s, off := segOf(uint32(i), p.init)
	sg := p.segs[s].Load()
	return &sg.next[off], &sg.state[off]
}

// pushSlot is the Treiber push of slot i (construction, growth, unlease).
func (p *slotPool) pushSlot(i int) {
	nx, _ := p.slot(i)
	p.pushSlotVia(nx, i)
}

func (p *slotPool) pushSlotVia(nx *atomic.Uint32, i int) {
	for {
		h := p.head.Load()
		nx.Store(uint32(h))
		if p.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(i+1)) {
			return
		}
	}
}

// tryPop pops a free slot and marks it leased, discarding pinned slots it
// encounters. Returns -1 when the freelist is empty — growth (and shard
// stealing before it) is the façade's decision, not this pool's. The
// occupancy index (including the pool live count) is updated before the
// index is returned, so a tenant's every action is preceded by its slot
// becoming visible to walks (occupancy.go).
func (p *slotPool) tryPop() int {
	for {
		h := p.head.Load()
		top := uint32(h)
		if top == 0 {
			return -1
		}
		i := int(top - 1)
		nx, st := p.slot(i)
		nxt := nx.Load()
		// The version bump makes a concurrent pop/push cycle of the same
		// slot fail this CAS instead of corrupting the list (ABA).
		if !p.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(nxt)) {
			continue
		}
		if st.CompareAndSwap(slotFree, slotLeased) {
			p.markOccupied(i)
			return i
		}
		// Pinned after it was listed: drop it and keep popping. (A
		// popped slot can never be leased — leased slots are not in the
		// list.)
	}
}

// grow refills the freelist: it first unparks the lowest parked segment
// (capacity already published, just resting) and only then appends the next
// slot segment, publishing scheme state first and pushing the new slots
// free last (lowest index on top). Reports false at the hard cap. Racing
// growers serialize on growMu; the loser usually finds the list refilled
// and just retries its pop.
func (p *slotPool) grow() bool {
	p.growMu.Lock()
	defer p.growMu.Unlock()
	if uint32(p.head.Load()) != 0 {
		return true // another grower (or a release) refilled the list
	}
	if p.unparkOneLocked() {
		return true
	}
	hi := p.high.Load()
	if hi >= p.cap {
		return false
	}
	s, _ := segOf(hi, p.init) // hi is a segment boundary: the next segment
	lo, end := segBounds(s, p.init, p.cap)
	seg := newSlotSeg(int(end - lo))
	if p.onGrow != nil {
		p.onGrow(int(end)) // guards/records for [lo,end) exist before any lease
	}
	p.segs[s].Store(seg)
	p.high.Store(end)
	p.grows.Add(1)
	for i := int(end) - 1; i >= int(lo); i-- {
		p.pushSlot(i)
	}
	p.retuneLocked()
	return true
}

// noteHighWater raises the occupancy high-water mark. Steady state (occ
// below the recorded peak) is a single load; the CAS loop only runs while
// the peak is actually climbing. Candidate values are clamped to the
// published arena size: a live-count read can race a concurrent grow and
// transiently exceed the high bound this pool published when the reader
// loaded it, but true occupancy never exceeds the arena, so the clamp
// keeps HighWaterWorkers <= ArenaSize invariantly (both are monotone).
func (p *slotPool) noteHighWater(occ int64) {
	if hi := int64(p.high.Load()); occ > hi {
		occ = hi
	}
	for {
		hw := p.highWater.Load()
		if occ <= hw || p.highWater.CompareAndSwap(hw, occ) {
			return
		}
	}
}

// countLease records a granted lease and folds the moment's occupancy into
// the high-water mark. Occupancy is the pool's exact live count, which the
// caller's tryPop already incremented (markOccupied), so the hot path pays
// one pool-local RMW and one load — nothing domain-wide.
func (p *slotPool) countLease() {
	p.acquired.Add(1)
	p.noteHighWater(p.live.Load())
}

// unlease runs the release protocol for slot i: claim the release (exactly
// one caller wins; pinned and already-released slots are refused), run the
// scheme's drain while the slot is in the releasing state — invisible to
// both Acquire and pin — then clear the occupancy bit (reclamation walks
// stop visiting the drained record) and recycle it. Finally it gives
// segment parking a chance: if this release left the trailing segment
// all-free with occupancy under the low-water mark, the segment retires
// from every walk (occupancy.go). Reports whether this call performed the
// release.
// A pin can slip in between unlease's slotFree store and its push; the
// pinned slot then sits in the freelist until tryAcquire pops and discards
// it. What cannot happen is a pin DURING the drain: the releasing state
// refuses it, so a drain's trailing cleanup (e.g. hiding an hprec from
// scans) can never clobber a new pin's setup.
func (p *slotPool) unlease(i int, drain func()) bool {
	nx, st := p.slot(i)
	if !st.CompareAndSwap(slotLeased, slotReleasing) {
		return false
	}
	drain()
	p.clearOccupied(i)
	st.Store(slotFree)
	p.pushSlotVia(nx, i)
	p.released.Add(1)
	if p.all.waiters.Load() > 0 {
		p.all.wakeWaiters()
	}
	p.maybePark()
	return true
}

// errForeignGuard is the Release misuse panic shared by the schemes.
const errForeignGuard = "reclaim: Release of a guard from another domain"

// pin claims slot i forever for the positional Guard(w) path. Reports
// whether this call performed the transition (first pin). The positional
// range is the INITIAL arena only — grown slots belong to Acquire — and
// under sharding the dense global range [0, Workers) decodes exactly onto
// the shards' initial segments (shard.go), so an out-of-range LOCAL index
// here means an out-of-range global: it fails loudly with the contract
// spelled out, instead of as an index panic deeper in the directory.
// (Segment 0 also never parks, so a pinned slot is visible to every walk
// forever.) A slot mid-release is waited out; pinning a slot some
// goroutine holds via Acquire is a caller error that would silently alias
// the guard across two goroutines — it panics rather than corrupt.
func (p *slotPool) pin(i int) bool {
	if i < 0 || uint32(i) >= p.init {
		panic("reclaim: positional Guard(w) outside the initial arena [0, Workers) — size Config.Workers (public Options.Workers) to cover every pinned slot")
	}
	_, st := p.slot(i)
	for {
		switch st.Load() {
		case slotFree:
			if st.CompareAndSwap(slotFree, slotPinned) {
				p.markOccupied(i)
				// markOccupied maintained the live count, so the pin's
				// occupancy reading is the same accounting countLease uses.
				p.noteHighWater(p.live.Load())
				return true
			}
		case slotReleasing:
			runtime.Gosched() // another goroutine is draining this slot
		case slotPinned:
			return false
		case slotLeased:
			panic("reclaim: positional Guard(w) on a slot currently leased via Acquire — do not mix the two APIs over one slot")
		}
	}
}
