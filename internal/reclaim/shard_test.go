package reclaim

import (
	"context"
	"sync"
	"testing"

	"qsense/internal/mem"
)

// corePools reaches the sharded slot-pool façade behind any scheme — the
// white-box handle the shard tests use to assert per-shard occupancy and
// parking, which Stats only reports in aggregate.
func corePools(t *testing.T, d Domain) *shardedPool {
	t.Helper()
	switch dd := d.(type) {
	case *None:
		return dd.slots
	case *QSBR:
		return dd.slots
	case *EBR:
		return dd.slots
	case *HP:
		return dd.slots
	case *Cadence:
		return dd.slots
	case *QSense:
		return dd.slots
	case *RC:
		return dd.slots
	case *IBR:
		return dd.slots
	case *Hyaline:
		return dd.slots
	}
	t.Fatalf("corePools: unknown domain type %T", d)
	return nil
}

// coreOrphans reaches a scheme's per-shard orphan lists; nil for the leaky
// baseline, which has none.
func coreOrphans(d Domain) *shardedOrphans {
	switch dd := d.(type) {
	case *QSBR:
		return &dd.orphans
	case *EBR:
		return &dd.orphans
	case *HP:
		return &dd.orphans
	case *Cadence:
		return &dd.orphans
	case *QSense:
		return &dd.orphans
	case *RC:
		return &dd.orphans
	case *IBR:
		return &dd.orphans
	case *Hyaline:
		return &dd.orphans
	}
	return nil
}

// TestCrossShardStrandedBacklogIsAdopted is orphan_test.go's stranded-
// backlog scenario with the releasing and adopting guards pinned to
// DIFFERENT shards: Workers=2 over Shards=2 gives one slot per shard, so
// after the leaver Releases, its whole shard is vacant (live==0 — every
// walk and snapshot skips it outright) and stays vacant forever. The
// backlog sits on the vacant shard's orphan list; only the other shard's
// guard is ever driven, so Pending→0 proves the adoption sweeps cross
// shard boundaries even though the occupancy walks do not.
func TestCrossShardStrandedBacklogIsAdopted(t *testing.T) {
	const retires = 8
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			pool := newTestPool()
			cfg := Config{Workers: 2, HardMaxWorkers: 2, Shards: 2, HPs: 1, Free: freeInto(pool), Q: 1, R: 4, ManualRooster: true}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Close)
			if st := d.Stats(); st.Shards != 2 {
				t.Fatalf("Shards = %d, want 2", st.Shards)
			}

			// Two slots, one per shard; the lease sweep hands out both.
			leaver, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			helper, err := d.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			ls, hs := SlotIndex(leaver)%2, SlotIndex(helper)%2
			if ls == hs {
				t.Fatalf("both guards on shard %d; want one per shard", ls)
			}

			// Same stranding setup as the single-shard test: epoch schemes
			// strand automatically, cadence/qsense via the old-enough rule
			// (manual rooster at tick 0), and HP/RC need the helper to hold
			// one node through the release scan.
			refs := make([]mem.Ref, retires)
			for i := range refs {
				refs[i] = allocNode(pool, uint64(i))
			}
			if scheme == "hp" || scheme == "rc" {
				helper.Protect(0, refs[0])
			}
			if scheme == "ibr" {
				// ibr strands via an open reservation: the helper's interval
				// [e,e] overlaps every node's lifetime (birth 0 <= e <= stamp),
				// so the leaver's release-time scans keep the whole backlog.
				helper.Begin()
			}
			for _, r := range refs {
				leaver.Retire(r)
			}
			d.Release(leaver)

			f := corePools(t, d)
			if live := f.pools[ls].live.Load(); live != 0 {
				t.Fatalf("leaver's shard %d still has live=%d after Release; want 0 (vacant)", ls, live)
			}
			if scheme == "none" {
				// The leaky baseline has nothing to orphan or adopt.
				if st := d.Stats(); st.OrphanedNodes != 0 || st.AdoptedNodes != 0 {
					t.Fatalf("none orphaned/adopted %d/%d nodes", st.OrphanedNodes, st.AdoptedNodes)
				}
				return
			}
			if st := d.Stats(); st.OrphanedNodes == 0 {
				t.Fatalf("Release freed nothing yet orphaned nothing: %+v", st)
			}
			// The batched handoff targets the releasing guard's OWN shard:
			// the backlog must sit on the vacant shard's list, not have been
			// shuffled to the shard that will do the adopting.
			o := coreOrphans(d)
			if o.lists[ls].empty() {
				t.Fatalf("vacant shard %d's orphan list is empty after Release", ls)
			}
			if !o.lists[hs].empty() {
				t.Fatalf("backlog leaked onto the helper's shard %d", hs)
			}
			helper.Protect(0, mem.Ref(0)) // drop the hold; adoption may proceed

			// Drive the surviving shard's guard (and the rooster) only. No
			// Acquire calls: shard ls stays at live==0 throughout.
			rooster := func() {}
			switch dd := d.(type) {
			case *Cadence:
				rooster = dd.Rooster().Step
			case *QSense:
				rooster = dd.Rooster().Step
			}
			for i := 0; i < 200 && d.Stats().Pending > 0; i++ {
				rooster()
				helper.Begin()
				if scheme == "hp" || scheme == "rc" {
					// Pointer schemes adopt on scan/sweep passes, triggered
					// every R retires; feed them disposable nodes.
					helper.Retire(allocNode(pool, ^uint64(i)))
				}
			}

			st := d.Stats()
			if st.Pending != 0 {
				t.Fatalf("%s: %d nodes still pending with shard %d vacant: %+v", scheme, st.Pending, ls, st)
			}
			if st.AdoptedNodes == 0 {
				t.Fatalf("%s: backlog drained without adoption?! %+v", scheme, st)
			}
			if live := f.pools[ls].live.Load(); live != 0 {
				t.Fatalf("shard %d was re-leased mid-test (live=%d); the cross-shard claim is void", ls, live)
			}
			for _, r := range refs {
				if pool.Valid(r) {
					t.Fatalf("%s: stranded node %v still live", scheme, r)
				}
			}
		})
	}
}

// TestShardStealChurnWithParkedShard is the -race stress for the sharded
// lease paths: a burst grows both shards, then drains, leaving one shard
// fully vacant with its grown segments parked. Churning goroutines then
// hammer AcquireWait/Release — the picked shard's freelist runs dry
// constantly, so every lease exercises the steal sweep, and demand beyond
// the unparked capacity drives the unpark-before-grow path on the resting
// shard — all interleaved with retires, adoption and waiter wakeups.
func TestShardStealChurnWithParkedShard(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			workers, rounds, opsPer := 12, 4, 60
			if testing.Short() {
				workers, rounds = 8, 2
			}
			pool := newTestPool()
			cfg := Config{Workers: 4, HardMaxWorkers: 32, Shards: 2, HPs: 1, Free: freeInto(pool), Q: 2, R: 4}
			if scheme == "qsense" {
				cfg.C = LegalC(cfg)
			}
			d, err := New(scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Phase 1: 24 leases overflow both shards' caps-halves (16 each),
			// so both grow. Keep the last lease; drain the rest. The keeper's
			// sibling shard ends fully vacant and parks every grown segment.
			burst := make([]Guard, 24)
			for i := range burst {
				if burst[i], err = d.Acquire(); err != nil {
					t.Fatal(err)
				}
			}
			keeper := burst[len(burst)-1]
			for _, g := range burst[:len(burst)-1] {
				d.Release(g)
			}
			parked := 1 - SlotIndex(keeper)%2
			f := corePools(t, d)
			if live := f.pools[parked].live.Load(); live != 0 {
				t.Fatalf("shard %d live = %d after the burst drained, want 0", parked, live)
			}
			if f.pools[parked].parkedSlots.Load() == 0 {
				t.Fatalf("shard %d parked nothing after growing and draining: %+v", parked, d.Stats())
			}
			if st := d.Stats(); st.ShardImbalance != 1 {
				t.Fatalf("ShardImbalance = %d with live 1 vs 0, want 1", st.ShardImbalance)
			}

			// Phase 2: churn against a shared mailbox under -race.
			mb := newMailbox(pool, 16)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if v, ok := r.(*mem.Violation); ok {
								errs <- v
								return
							}
							panic(r)
						}
					}()
					rng := uint64(id)*0x9e3779b9 + 1
					for round := 0; round < rounds; round++ {
						g, err := d.AcquireWait(context.Background())
						if err != nil {
							errs <- err
							return
						}
						for i := 0; i < opsPer; i++ {
							g.Begin()
							rng = rng*6364136223846793005 + 1442695040888963407
							slot := int(rng>>33) % len(mb.slots)
							if rng&1 == 0 {
								mb.put(g, slot, rng)
							} else {
								mb.take(g, slot)
							}
						}
						g.ClearHPs()
						d.Release(g)
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%s: %v", scheme, err)
			}
			d.Release(keeper)
			st := d.Stats()
			if st.AcquiredHandles != st.ReleasedHandles {
				t.Fatalf("%s: %d leases vs %d releases", scheme, st.AcquiredHandles, st.ReleasedHandles)
			}
			g, err := d.Acquire()
			if err != nil {
				t.Fatalf("%s: arena not recycled after churn: %v", scheme, err)
			}
			mb.drain(g)
			d.Release(g)
			d.Close()
			if scheme != "none" {
				if st := d.Stats(); st.Pending != 0 {
					t.Fatalf("%s: %d pending after Close", scheme, st.Pending)
				}
				if live := pool.Stats().Live; live != 0 {
					t.Fatalf("%s: %d nodes leaked", scheme, live)
				}
			}
		})
	}
}
