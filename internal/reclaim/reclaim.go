// Package reclaim implements the paper's concurrent memory reclamation
// schemes over the mem substrate:
//
//   - None — the leaky baseline ("None" in the evaluation): nothing is freed.
//   - QSBR — quiescent-state-based reclamation (§3.1): the fast path. Three
//     logical epochs, per-worker limbo lists, wholesale frees on epoch
//     advance. Fast but blocking: a delayed worker stalls reclamation.
//   - HP — Michael's hazard pointers (§3.2): per-worker pointers published
//     with a memory fence per node visited; robust but slow.
//   - Cadence — the paper's novel fallback (§5.1): hazard pointers without
//     per-node fences, made safe by rooster flush passes plus deferred
//     reclamation.
//   - QSense — the paper's hybrid (§5.2, Algorithm 5): QSBR in the common
//     case, Cadence under prolonged process delays, switching automatically
//     in both directions.
//
// The three functions of the paper's interface map to:
//
//	manage_qsense_state  ->  Guard.Begin
//	assign_HP            ->  Guard.Protect
//	free_node_later      ->  Guard.Retire
//
// A Domain manages reclamation for one data structure instance over an
// elastic arena of guard slots. The paper does not support dynamic
// membership (§5.2); this implementation builds out its sketched fix three
// times over: membership.go lets epoch-scheme workers Leave/Join (and
// evicts crashed ones), slots.go leases whole guard slots dynamically —
// Acquire (or the blocking AcquireWait) hands a free slot to any
// goroutine, Release drains it and recycles it — and the arena itself
// GROWS when the freelist runs dry (arena.go): Config.Workers is only the
// initial soft size, and Acquire appends publish-once slot segments on
// demand, failing with ErrNoSlots only at an optional Config.HardMaxWorkers
// cap. Backlog a Release cannot yet prove safe moves to a per-domain
// orphan list (orphan.go) and is adopted by other workers' reclamation
// passes, so a vacated slot never strands retired nodes. The positional
// Guard(w) accessor remains for callers that pin slots deterministically
// (tests, the experiment harness).
package reclaim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"time"

	"qsense/internal/mem"
	"qsense/internal/rooster"
)

// Guard is a worker's per-thread reclamation handle. Methods must be called
// only by the owning worker; Protect'ed references are published for
// concurrent scans by other workers' guards.
type Guard interface {
	// Begin is the paper's manage_qsense_state: call it in states where
	// the worker holds no references to shared nodes — conventionally at
	// the start of every data structure operation. Schemes batch the real
	// work: only every Q-th call declares a quiescent state.
	Begin()

	// Protect is the paper's assign_HP: publish hazard pointer slot i as
	// protecting r, so no scan reclaims r's node. Tag bits are ignored.
	// Protecting a nil Ref clears the slot. Following Michael's
	// methodology the caller must re-validate the source link after
	// Protect returns and retry if it changed.
	Protect(i int, r mem.Ref)

	// Retire is the paper's free_node_later: hand over a node that has
	// been unlinked from the structure. The scheme frees it once safe.
	Retire(r mem.Ref)

	// ClearHPs releases all of this guard's hazard pointers; call at the
	// end of an operation. (Optional for correctness — stale protections
	// only delay reclamation — but keeps memory bounds tight.)
	ClearHPs()
}

// Domain manages reclamation state shared by all workers of one structure.
type Domain interface {
	// Guard returns slot w's guard (0 <= w < Config.Workers), pinning the
	// slot: it is permanently excluded from the Acquire freelist and
	// participates exactly like a fixed worker of the paper's model.
	//
	// Deprecated: positional guards exist for fixed-worker callers (the
	// experiment harness, deterministic tests). New code should lease
	// guards with Acquire/Release.
	Guard(w int) Guard
	// Acquire leases a free guard slot to the calling goroutine, running
	// the scheme's join path (epoch adoption, aged-limbo frees) so a
	// recycled slot resumes cleanly. When the freelist is empty the arena
	// grows by a publish-once slot segment, so by default Acquire does not
	// fail; it returns ErrNoSlots only once the arena has reached
	// Config.HardMaxWorkers with every slot leased or pinned.
	Acquire() (Guard, error)
	// AcquireWait is Acquire that blocks while the arena is exhausted at
	// its hard cap: the caller parks on the slot pool's waiter channel and
	// is woken by the next Release, instead of spinning on ErrNoSlots. It
	// returns ctx.Err() if ctx is done first. On an elastic domain (no
	// hard cap) it behaves exactly like Acquire — growth preempts waiting.
	AcquireWait(ctx context.Context) (Guard, error)
	// Release returns g's slot to the freelist: protections are drained,
	// epoch schemes Leave (so the slot no longer blocks grace periods or
	// QSense's presence scan), and what backlog can be freed safely is
	// freed. Backlog that cannot yet be proven safe (unaged limbo,
	// protected or too-young deferred nodes) is moved to the domain's
	// orphan list, where any worker's later reclamation pass adopts and
	// frees it — a vacated slot never strands retired nodes, even if it
	// is never leased again. The guard must not be used after Release.
	// Releasing a pinned or already-released guard is a no-op — but note
	// the guard's slot may have been re-leased by then, so call Release
	// exactly once, from the owning goroutine. (The public API wraps
	// guards with a once-flag; internal callers keep the discipline
	// themselves.)
	Release(g Guard)
	// Name returns the scheme name ("qsbr", "hp", ...).
	Name() string
	// Failed reports whether the domain exceeded Config.MemoryLimit —
	// the harness's stand-in for the paper's "system runs out of memory
	// and eventually fails" (§7.3). Blocking schemes fail under
	// prolonged delays; robust schemes should never fail.
	Failed() bool
	// Stats returns a snapshot of reclamation counters.
	Stats() Stats
	// Close stops background machinery and frees every node still
	// awaiting reclamation. Call only after all workers have stopped.
	Close()
}

// EraSource is the birth-era clock interface the interval-based scheme
// (ibr) consumes. A *mem.Pool[T] satisfies it directly: the pool stamps each
// slot with the current era at Alloc, AdvanceEra moves the clock, and
// BirthEra reads the stamp back at Retire time. When Config.Era is nil the
// ibr domain falls back to an internal clock with every node's birth taken
// as era 0 — safe (a node is never freed early) but unable to reclaim past
// a stalled reader, i.e. no better than epochs; wiring the real pool clock
// restores interval robustness.
type EraSource interface {
	// Era returns the current birth-era clock value.
	Era() uint64
	// AdvanceEra bumps the clock and returns the new value.
	AdvanceEra() uint64
	// BirthEra returns the era stamped on r at allocation. Called by the
	// retiring guard while it still owns the node.
	BirthEra(r mem.Ref) uint64
}

// Config parameterizes a Domain. The zero value is not usable: Workers,
// HPs and Free are mandatory (Free may be omitted only for None).
type Config struct {
	// Workers is the INITIAL guard-slot arena size (the paper's N; the
	// public Options.MaxWorkers): segment 0 of the elastic arena, and the
	// grain by which growth doubles it. It is a soft size — when more
	// guards are leased simultaneously, the arena grows (see
	// HardMaxWorkers) — and not a count of OS threads: any number of
	// goroutines may share the arena through Acquire/Release over time.
	Workers int
	// HardMaxWorkers caps elastic growth: once the arena holds this many
	// slots and all are leased or pinned, Acquire returns ErrNoSlots and
	// AcquireWait blocks — the pre-elastic backpressure semantics. 0 (the
	// default) leaves the domain elastic up to the library ceiling
	// MaxArenaSlots; set it equal to Workers to reproduce the fixed-arena
	// behaviour exactly. Values below Workers are raised to Workers.
	HardMaxWorkers int
	// HPs is the number of hazard pointers per worker (K). The linked
	// list uses 3, the BST 6, the skip list 2*levels+2 (§7.3).
	HPs int
	// Free returns a retired node's memory to its pool.
	Free func(mem.Ref)

	// Q is the quiescence threshold (§3.1): one quiescent state is
	// declared per Q Begin calls. Default 32.
	Q int
	// R is the scan threshold (§5.1): pointer-based schemes scan once
	// per R retires. Default 2*Workers*HPs + 64. When left zero, the
	// default formula is re-applied with the LIVE worker count at every
	// capacity transition (growth, segment park/unpark — see tune.go), so
	// a grown or drained arena keeps the paper's scan amortization; an
	// explicit value is respected verbatim.
	R int
	// C is QSense's fallback threshold (§5.2): a worker whose limbo
	// lists hold >= C nodes triggers the switch to the fallback path.
	// Property 4 requires a legal value (NewQSense rejects C below
	// LegalC), but C must also comfortably exceed the fast path's normal
	// backlog — roughly 3 epochs' worth of retires at full speed — or
	// the trigger fires with no delay present ("reaching a large removed
	// nodes list size indicates that quiescence was not possible for an
	// extended period", §5.2 step 1). Default max(LegalC, 8192). §6.2's
	// bound binds against the CURRENT worker count: when elastic growth
	// raises LegalC past a configured C, the effective threshold is
	// raised to stay legal (and falls back once the arena drains; see
	// tune.go and Stats.CRetunes).
	C int
	// MaxRemovePerOp is the paper's m: the most nodes one operation can
	// remove (2 for the external BST, 1 for list and skip list).
	// Default 2.
	MaxRemovePerOp int

	// MemoryLimit, when > 0, marks the domain Failed once more than this
	// many retired nodes await reclamation (OOM emulation). The retiring
	// guard checks the limit on every Retire against the shared counters
	// plus its own unflushed tally, so detection can lag the true
	// crossing only by OTHER guards' unflushed retire tallies (at most
	// tallyFlushEvery-1 each); Stats.Pending itself stays exact (it sums
	// the unflushed tallies).
	MemoryLimit int

	// Rooster configures the rooster manager (Cadence and QSense).
	Rooster rooster.Config
	// ManualRooster suppresses the manager's timer; tests drive passes
	// deterministically through Domain-specific Step methods.
	ManualRooster bool
	// PresenceResetTicks is how many rooster passes elapse between resets
	// of QSense's presence-flag array (§5.2, step 3). The reset period
	// (this value times the rooster interval) must comfortably exceed an
	// OS/runtime scheduler timeslice: with more workers than cores, a
	// perfectly healthy worker can sit descheduled for tens of
	// milliseconds, and a shorter period would read that as "not all
	// processes are active" and postpone the switch back to the fast
	// path indefinitely. Default 50 (100ms at the default 2ms interval).
	PresenceResetTicks int

	// FenceCost is the modeled fence latency paid by HP on every
	// Protect. 0 means fence.DefaultCost; negative means free (ablation).
	FenceCost time.Duration

	// DisableDeferral removes Cadence's old-enough check. UNSAFE: only
	// for the ablation demonstrating why deferred reclamation is needed
	// (§5.1); stress tests show it produces use-after-free violations.
	DisableDeferral bool

	// Shards splits the domain core — slot pool, orphan list, retire
	// tallies, rooster flush target — into this many independent units.
	// Acquire picks a shard by power-of-two-choices over live occupancy
	// and steals from siblings before growing; Release hands a stranded
	// backlog to the releasing guard's own shard's orphan list in one CAS;
	// scans, epoch-advance checks and sweeps walk shards independently, so
	// an idle or fully-parked shard costs zero. 1 (after defaulting) is
	// exactly the single-pool behaviour. <=0 consults QSENSE_SHARDS, then
	// defaults to 1; values above Workers are clamped to Workers.
	Shards int

	// Era supplies the birth-era clock for the interval-based scheme; see
	// EraSource. Ignored by every other scheme. nil degrades ibr to an
	// internal clock with all-zero birth stamps (safe, epoch-equivalent).
	Era EraSource

	// FaultHook, when non-nil, is called at the named fault-injection sync
	// points with the guard's slot index (internal/fault threads its
	// injector through here). The hook runs ON the guard's goroutine at a
	// point where the scheme believes the worker is mid-protocol — a hook
	// that blocks models a reader stalled exactly there (descheduled,
	// page-faulted, crashed), which is what the robustness matrix does.
	// Production configs leave it nil and pay one predictable-nil branch
	// per sync point, off the per-access hot path.
	FaultHook func(FaultPoint, int)

	// EvictAfter enables the paper's sketched eviction extension (§5.2
	// future work) on the epoch-based schemes: a worker that has not
	// declared a quiescent state for this long is treated as crashed and
	// excluded from grace periods (and from QSense's presence scan, so
	// the fast path can resume after a permanent crash). SAFETY
	// ASSUMPTION: an evicted worker performs no shared accesses until it
	// rejoins — enable only where silence really means crash. 0 (the
	// default) disables eviction. See membership.go.
	EvictAfter time.Duration

	// rAuto/cAuto record that R/C were defaulted rather than configured,
	// which is what licenses the tuner to re-derive them from live
	// occupancy at capacity transitions (set by withDefaults; tune.go).
	rAuto, cAuto bool
}

// FaultPoint names a fault-injection sync point inside a scheme's protocol
// (Config.FaultHook). A reader stalled at each point exhibits one of the
// canonical failure modes the paper's robustness argument distinguishes:
type FaultPoint string

const (
	// FaultQuiesce: an epoch-class reader that entered its quiescence/
	// announcement step and never completes it. QSBR and QSense fire it on
	// the Q-th Begin just before the quiescent state is declared (the
	// worker is acquired-but-never-quiescing: its stale local epoch pins
	// the global); EBR fires it right after announcing (epoch, active) —
	// the active announcement pins the epoch until the operation ends.
	FaultQuiesce FaultPoint = "quiesce"
	// FaultProtect: a pointer-class reader stalled with a protection held.
	// HP/Cadence/QSense fire it after the hazard publication, RC after the
	// counted acquire, IBR after widening the reservation's upper bound —
	// in every case the stalled reader pins exactly what it published.
	FaultProtect FaultPoint = "protect"
	// FaultInbox: a Hyaline reader stalled mid-operation with its inbox
	// active and deliveries unacknowledged — it pins every batch pushed to
	// it until the operation ends.
	FaultInbox FaultPoint = "inbox"
)

// fire invokes the fault hook if one is installed: one predictable branch
// when disabled, sitting at protocol sync points rather than per-access
// fast paths.
func (c *Config) fire(p FaultPoint, slot int) {
	if c.FaultHook != nil {
		c.FaultHook(p, slot)
	}
}

func (c Config) withDefaults() Config {
	if c.HardMaxWorkers <= 0 {
		c.HardMaxWorkers = MaxArenaSlots
	}
	if c.HardMaxWorkers < c.Workers {
		c.HardMaxWorkers = c.Workers
	}
	if c.Q <= 0 {
		c.Q = 32
	}
	if c.R <= 0 {
		c.R = 2*c.Workers*c.HPs + 64
		c.rAuto = true // defaulted: re-derive from live occupancy (tune.go)
	}
	if c.MaxRemovePerOp <= 0 {
		c.MaxRemovePerOp = 2
	}
	if c.C <= 0 {
		c.C = max(LegalC(c), 8192)
		c.cAuto = true
	}
	if c.PresenceResetTicks <= 0 {
		c.PresenceResetTicks = 50
	}
	if c.Shards <= 0 {
		c.Shards = 1
		if v, err := strconv.Atoi(os.Getenv("QSENSE_SHARDS")); err == nil && v > 0 {
			c.Shards = v
		}
	}
	// More shards than initial slots would leave empty pools that can never
	// shrink the encoding back; clamp so every shard starts with >= 1 slot.
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	return c
}

// Validate reports configuration errors common to all schemes.
func (c Config) Validate(needFree bool) error {
	if c.Workers <= 0 {
		return errors.New("reclaim: Config.Workers must be positive")
	}
	if c.HPs <= 0 {
		return errors.New("reclaim: Config.HPs must be positive")
	}
	if needFree && c.Free == nil {
		return errors.New("reclaim: Config.Free is required")
	}
	return nil
}

// LegalC returns the smallest legal fallback threshold per §6.2:
// C > max(mQ, NK+T, (K+T+R)/2), with the rooster interval T expressed in
// retired nodes per rooster pass; we bound that by R (a worker scans, and
// thus caps its backlog growth, every R retires), which keeps the bound
// sound while staying in node units.
func LegalC(c Config) int {
	c.MaxRemovePerOp = max(c.MaxRemovePerOp, 2)
	if c.Q <= 0 {
		c.Q = 32
	}
	if c.R <= 0 {
		c.R = 2*c.Workers*c.HPs + 64
	}
	t := c.R // stand-in for T in node units; see doc comment
	m := max(
		c.MaxRemovePerOp*c.Q,
		c.Workers*c.HPs+t,
		(c.HPs+t+c.R)/2,
	)
	return m + 1
}

// New constructs the named scheme. Valid names: "none", "qsbr", "hp",
// "cadence", "qsense" (the paper's five), plus the related-work baselines
// "ebr" (epoch-based reclamation, Fraser style), "rc" (lock-free reference
// counting), "ibr" (interval-based reclamation, 2GEIBR style) and "hyaline"
// (snapshot-free batch-refcount reclamation).
func New(name string, cfg Config) (Domain, error) {
	switch name {
	case "none":
		return NewNone(cfg)
	case "qsbr":
		return NewQSBR(cfg)
	case "hp":
		return NewHP(cfg)
	case "cadence":
		return NewCadence(cfg)
	case "qsense":
		return NewQSense(cfg)
	case "ebr":
		return NewEBR(cfg)
	case "rc":
		return NewRC(cfg)
	case "ibr":
		return NewIBR(cfg)
	case "hyaline":
		return NewHyaline(cfg)
	}
	return nil, fmt.Errorf("reclaim: unknown scheme %q (valid: %v)", name, Schemes())
}

// Schemes lists the scheme names accepted by New, in evaluation order: the
// paper's five first, then the §8 related-work baselines, then the
// post-paper scheme families (interval-based reclamation and Hyaline).
func Schemes() []string {
	return []string{"none", "qsbr", "hp", "cadence", "qsense", "ebr", "rc", "ibr", "hyaline"}
}

// PaperSchemes lists only the five schemes of the paper's evaluation
// (Figures 3 and 5); the experiment drivers default to these.
func PaperSchemes() []string { return []string{"none", "qsbr", "hp", "cadence", "qsense"} }

// Stats is a point-in-time snapshot of a domain's counters.
type Stats struct {
	Scheme string
	// Retired and Freed count Retire calls and completed frees.
	Retired, Freed uint64
	// Pending is Retired-Freed: nodes awaiting reclamation now.
	Pending int64
	// Scans counts hazard-pointer scans (HP, Cadence, QSense fallback).
	Scans uint64
	// ScannedRecords counts per-slot records VISITED by reclamation
	// walks: HP snapshot collection, epoch-advance checks, QSense's
	// presence sweep/reset, and rooster flush walks. With the occupancy
	// index this grows with live workers per pass, not with the arena's
	// high-water size — the counter burst-then-idle tests and the
	// ScanAfterBurst benchmark assert proportionality on. Guard-driven
	// walks batch their visit counts with the guard's tally (flushed
	// with the next retire/free flush), so live reads can lag by a small
	// per-guard residue; Close drains the residues.
	ScannedRecords uint64
	// QuiescentStates counts declared quiescent states (QSBR, QSense).
	QuiescentStates uint64
	// EpochAdvances counts global epoch increments (QSBR, QSense).
	EpochAdvances uint64
	// SwitchesToFallback / SwitchesToFast count QSense path switches.
	SwitchesToFallback, SwitchesToFast uint64
	// Evictions and Rejoins count membership events (membership.go):
	// workers excluded as crashed and workers that (re-)entered.
	Evictions, Rejoins uint64
	// AcquiredHandles and ReleasedHandles count slot leases granted and
	// returned (slots.go); their difference is the leased count now.
	AcquiredHandles, ReleasedHandles uint64
	// ArenaSize is the current guard-slot arena size (published slots —
	// Config.Workers until growth engages); HighWaterWorkers is the peak
	// number of simultaneously occupied (leased + pinned) slots; and
	// ArenaGrowths counts elastic segment publications past construction.
	ArenaSize, HighWaterWorkers int
	ArenaGrowths                uint64
	// ParkedSlots is how many published slots currently rest in parked
	// segments — all-free trailing segments pulled out of the freelist
	// and skipped by every reclamation walk, so scan cost decays after a
	// burst instead of ratcheting at the high-water mark (occupancy.go).
	// SegmentParks/SegmentUnparks count the transitions.
	ParkedSlots                  int
	SegmentParks, SegmentUnparks uint64
	// EffectiveR/EffectiveC are the thresholds currently in force after
	// occupancy-aware re-tuning (tune.go); RRetunes/CRetunes count the
	// applied changes. Zero Effective values mean the scheme has no
	// tunable threshold (QSBR, None).
	EffectiveR, EffectiveC int
	RRetunes, CRetunes     uint64
	// OrphanedNodes counts nodes a Release could not yet prove safe and
	// moved to the domain's orphan list (orphan.go); AdoptedNodes counts
	// orphans later freed by other workers' reclamation passes. Orphans
	// remain Pending (and count against MemoryLimit) until adopted.
	OrphanedNodes, AdoptedNodes uint64
	// Shards is the number of independent domain-core units (slot pool +
	// orphan list + flush target) the domain was built with (Config.Shards
	// after defaulting). ShardImbalance is the spread max-min of live
	// occupancy across shards at snapshot time — 0 for a single-shard
	// domain, and a rough health indicator for the power-of-two-choices
	// placement otherwise.
	Shards, ShardImbalance int
	// IBRIntervalWidth is the widest active reservation interval
	// (upper-lower, in eras) observed across occupied slots at snapshot
	// time — a live measure of how much history readers currently pin.
	// Zero for every scheme but ibr, and for ibr when no reservation is
	// active.
	IBRIntervalWidth uint64
	// HyalineBatchRefs is the sum of outstanding reference counts over
	// this domain's unreclaimed hyaline batches: how many slot-inbox
	// deliveries still have to be acknowledged before those batches free.
	// Zero for every scheme but hyaline.
	HyalineBatchRefs int64
	// InFallback reports QSense's current path.
	InFallback bool
	// RoosterPasses counts completed rooster flush passes.
	RoosterPasses uint64
	// Failed mirrors Domain.Failed.
	Failed bool
}

// SlotIndex reports the arena slot index a guard occupies, stable across
// leases: slot w's guard is the same object for every tenant. The public
// containers key their per-slot structure-handle caches by it.
func SlotIndex(g Guard) int {
	return g.(interface{ slotID() int }).slotID()
}
