package reclaim

import (
	"context"

	"qsense/internal/fence"
	"qsense/internal/mem"
)

// HP is Michael's classic hazard pointer scheme (§3.2).
//
// Protect publishes straight to the globally visible slot and then performs
// a full memory barrier — the per-node fence whose cost (modeled by
// internal/fence, see DESIGN.md §2) is the scheme's notorious overhead and
// the paper's motivation for Cadence. Every R retires the guard scans: it
// snapshots the shared hazard pointers of every OCCUPIED slot (the
// occupancy index of occupancy.go, so scan cost tracks live workers, not
// the arena's high-water size) and frees the retired nodes not found in the
// snapshot. R itself re-tunes with live occupancy on capacity transitions
// (tune.go). HP is wait-free and robust: no worker can block another's
// reclamation beyond the K nodes it actually protects.
type HP struct {
	cfg     Config
	cnt     counters
	tune    *tuner
	slots   *shardedPool
	orphans shardedOrphans
	recs    *shardedArena[*hprec]
	guards  *shardedArena[*hpGuard]
}

type hpGuard struct {
	d         *HP
	id        int
	rec       *hprec
	fence     *fence.Model // per guard: a fence stalls only its own core
	rl        []retired
	sinceScan int
	tally     tally
	tc        tunerCache
	scanBuf   []uint64
}

// NewHP builds a hazard pointer domain.
func NewHP(cfg Config) (*HP, error) {
	if err := cfg.Validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cost := cfg.FenceCost
	if cost == 0 {
		cost = fence.DefaultCost
	}
	d := &HP{cfg: cfg}
	d.tune = newTuner(cfg, &d.cnt)
	d.orphans.init(cfg.Shards)
	d.recs = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *hprec {
		return newHPRec(cfg.HPs)
	})
	d.guards = newShardedArena(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, func(i int) *hpGuard {
		return &hpGuard{d: d, id: i, rec: d.recs.at(i), fence: fence.NewModel(cost),
			tc: tunerCache{r: cfg.R, c: cfg.C}}
	})
	d.slots = newShardedPool(cfg.Shards, cfg.Workers, cfg.HardMaxWorkers, d.tune, func(s, hi int) {
		d.recs.growShard(s, hi) // records first: guards (and scans) index into them
		d.guards.growShard(s, hi)
	})
	return d, nil
}

// Guard implements Domain (deprecated positional access): pins slot w and
// marks its hazard record live for scans.
func (d *HP) Guard(w int) Guard {
	if d.slots.pin(w) {
		d.recs.at(w).leased.Store(true)
	}
	return d.guards.at(w)
}

// Acquire implements Domain. HP needs no join protocol — a guard protects
// only what it publishes — so leasing is just slot bookkeeping plus making
// the record visible to scans.
func (d *HP) Acquire() (Guard, error) {
	w, err := d.slots.lease()
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

// AcquireWait implements Domain: Acquire that parks until a slot frees or
// ctx is done.
func (d *HP) AcquireWait(ctx context.Context) (Guard, error) {
	w, err := d.slots.leaseWait(ctx)
	if err != nil {
		return nil, err
	}
	return d.join(w), nil
}

func (d *HP) join(w int) Guard {
	g := d.guards.at(w)
	g.rec.clearShared()
	g.rec.leased.Store(true)
	g.tc.refresh(d.tune)
	return g
}

// Release implements Domain: clear the guard's hazard pointers, scan once to
// drain the retire list (everything not protected by other workers frees
// immediately), move the protected remainder to the orphan list — any
// worker's next scan adopts whatever its snapshot no longer protects — hide
// the record from scans, and recycle the slot.
func (d *HP) Release(gd Guard) {
	g, ok := gd.(*hpGuard)
	if !ok || g.d != d {
		panic(errForeignGuard)
	}
	d.slots.unlease(g.id, func() {
		g.rec.clearShared()
		if len(g.rl) > 0 {
			g.scan()
		}
		if len(g.rl) > 0 {
			d.orphans.at(g.id).add(nil, g.rl, 0, &d.cnt)
			g.rl = nil
		}
		d.cnt.releaseTally(&g.tally, d.cfg.MemoryLimit)
		g.rec.leased.Store(false)
	})
}

// Name implements Domain.
func (d *HP) Name() string { return "hp" }

// Failed implements Domain.
func (d *HP) Failed() bool { return d.cnt.failed.Load() }

// Stats implements Domain.
func (d *HP) Stats() Stats {
	s := Stats{Scheme: "hp"}
	d.cnt.fill(&s, d.slots, func(i int) *tally { return &d.guards.at(i).tally })
	d.slots.fillArena(&s)
	return s
}

// Close implements Domain: frees every node still in a retire list and
// drains the orphan list. Only call after all workers have stopped.
func (d *HP) Close() {
	d.guards.forEach(func(g *hpGuard) {
		for _, r := range g.rl {
			d.cfg.Free(r.ref)
		}
		d.cnt.tallyFree(&g.tally, len(g.rl))
		g.rl = g.rl[:0]
		d.cnt.drainTally(&g.tally)
	})
	d.orphans.drain(d.cfg.Free, &d.cnt)
}

func (g *hpGuard) Begin() {}

// Protect publishes and fences (Algorithm 1, lines 2–3).
func (g *hpGuard) Protect(i int, r mem.Ref) {
	g.rec.publishShared(i, r)
	g.fence.Full()
	// Fault point: stalled after the fenced publication, the reader pins
	// exactly the K nodes its hazard slots name — HP's robustness bound.
	g.d.cfg.fire(FaultProtect, g.id)
}

func (g *hpGuard) ClearHPs() { g.rec.clearShared() }

func (g *hpGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("reclaim: retire of nil Ref")
	}
	g.rl = append(g.rl, retired{ref: r.Untagged()})
	g.d.cnt.tallyRetire(&g.tally, g.d.cfg.MemoryLimit)
	g.sinceScan++
	if g.sinceScan >= g.tc.r {
		g.sinceScan = 0
		g.scan()
	}
}

func (g *hpGuard) slotID() int { return g.id }

// scan is Michael's scan: snapshot shared HPs, free unprotected retirees.
// The same snapshot then adopts any orphaned backlog released slots left
// behind, so a vacated slot's protected remainder frees as soon as its
// protectors move on. Every shard's orphan chain is detached BEFORE the
// one snapshot: Michael's argument needs every scanned node retired
// pre-snapshot (a validated protection is then published, fenced, before
// the unlink and so before the snapshot) — a batch pushed after the
// snapshot could hold a node whose protector the stale snapshot missed.
func (g *hpGuard) scan() {
	g.d.cnt.scans.Add(1)
	batches := g.d.orphans.detachAll()
	snap, visited := snapshotShared(g.d.slots, g.d.recs, g.scanBuf)
	g.d.cnt.tallyScanned(&g.tally, visited)
	g.scanBuf = snap.vals // reuse the buffer next scan
	kept := g.rl[:0]
	freed := 0
	for _, n := range g.rl {
		if snap.contains(n.ref) {
			kept = append(kept, n)
		} else {
			g.d.cfg.Free(n.ref)
			freed++
		}
	}
	g.rl = kept
	g.d.cnt.tallyFree(&g.tally, freed)
	g.d.orphans.adoptDetachedAll(batches, snap, nil, 0, g.d.cfg, &g.d.cnt)
	g.d.cnt.flushTally(&g.tally, g.d.cfg.MemoryLimit)
	g.tc.refresh(g.d.tune)
}
