package reclaim

// Orphan limbo adoption — no node's fate may depend on one specific slot.
//
// Release drains what it can prove safe, but an epoch scheme's limbo buckets
// and the deferred schemes' retire lists usually hold nodes whose grace
// period has not yet elapsed at release time. Before this file, that backlog
// stayed parked on the vacated slot, to be freed only by the slot's *next
// tenant* — if the slot never re-leased, the nodes were stranded forever,
// counting against Config.MemoryLimit. That violates the robustness story
// (§7.3: robust schemes "should never fail" under delays) with a failure
// mode of our own leasing layer's making.
//
// The fix is the shape Hyaline and DEBRA take for stalled threads, applied
// to vacant slots: Release moves the unprovable backlog onto a per-domain
// lock-free *orphan list*, each batch stamped with the grace-period evidence
// it still needs, and every worker's reclamation pass — epoch advance,
// hazard-pointer scan, RC sweep, rooster pass — *adopts* eligible batches
// and frees them. Reclamation progress then requires only that the system
// as a whole stays active, never that one particular slot re-leases.
//
// Evidence comes in four forms, matching the schemes' safety arguments:
//
//   - epoch: the batch records the global epoch G observed at release (the
//     releasing guard quiesced first, so nothing in the batch was retired
//     after G). Once the global epoch reaches G+3 every worker has passed
//     through quiescent states proving a full grace period for the whole
//     batch — the same bound membership.go uses for Join re-entry — and the
//     batch frees wholesale (QSBR, EBR, QSense fast path).
//   - deferred scan: the nodes carry their rooster-tick stamps; an adopter
//     frees each node that is old enough and absent from a fresh shared-HP
//     snapshot, exactly Cadence's scan argument (HP, Cadence, QSense —
//     either evidence form suffices for a QSense batch, so whichever path
//     the domain is on makes progress).
//   - claim: RC nodes free when the count-table claim CAS succeeds, i.e.
//     no reader holds them.
//   - interval: ibr nodes carry their lifetime [birth, retire] in eras; an
//     adopter frees each node whose interval misses every reservation in a
//     snapshot collected AFTER the chain was detached (adoptInterval — the
//     same detach-then-snapshot ordering adoptDetached requires).
//
// (Hyaline needs no evidence stamp at all: its Release parks the leftover
// local batch here as plain refs, and an adopter REPUBLISHES the batch
// through the active slots' inboxes as a reference-counted delivery — the
// handoff itself is the grace-period argument, so adoption is one detach
// plus one publish, with no maturity check.)
//
// The list is a Treiber stack of batches. Adopters detach the whole list
// with one swap, so concurrent adopters own disjoint chains and a node is
// freed exactly once; ineligible batches are pushed back intact. The empty
// check is a single pointer load, which keeps the hooks free on the hot
// path — domains that never strand anything never pay more than that.
//
// Under Config.Shards > 1 a domain owns one orphanList per shard behind
// the shardedOrphans façade (shard.go): a Release pushes its whole backlog
// to its own shard's list in one CAS — the batch, never the node, is the
// unit crossing shards — and every adoption pass sweeps all lists. This
// file stays single-list; the rooster adoption hook lives on the façade.

import (
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/rooster"
)

// orphanBatch is one released slot's unprovable backlog. Epoch-only schemes
// fill refs; stamped schemes fill nodes; a batch never carries both.
type orphanBatch struct {
	next  *orphanBatch
	refs  []mem.Ref // plain refs (QSBR, EBR, RC)
	nodes []retired // tick-stamped nodes (HP, Cadence, QSense)
	epoch uint64    // global epoch observed at orphaning (epoch evidence)
}

func (b *orphanBatch) size() int { return len(b.refs) + len(b.nodes) }

// orphanList is the per-domain lock-free list of orphan batches.
type orphanList struct {
	head atomic.Pointer[orphanBatch]
}

// empty is the hot-path check: one pointer load.
func (l *orphanList) empty() bool { return l.head.Load() == nil }

// push adds a batch to the list (Treiber push).
func (l *orphanList) push(b *orphanBatch) {
	for {
		h := l.head.Load()
		b.next = h
		if l.head.CompareAndSwap(h, b) {
			return
		}
	}
}

// add orphans a fresh backlog: ownership of the slices passes to the list
// (callers must not reuse the backing arrays). No-op for an empty backlog.
func (l *orphanList) add(refs []mem.Ref, nodes []retired, epoch uint64, cnt *counters) {
	b := &orphanBatch{refs: refs, nodes: nodes, epoch: epoch}
	n := b.size()
	if n == 0 {
		return
	}
	cnt.orphaned.Add(uint64(n))
	l.push(b)
}

// addRefBuckets coalesces a guard's three plain-ref limbo buckets into one
// batch stamped with epoch and orphans it — QSBR's and EBR's release
// drains. Bucket ownership passes to the list; the guard's buckets are
// nilled so the next tenant starts empty.
func (l *orphanList) addRefBuckets(limbo *[3][]mem.Ref, epoch uint64, cnt *counters) {
	var refs []mem.Ref
	for b := range limbo {
		if len(limbo[b]) == 0 {
			continue
		}
		if refs == nil {
			refs = limbo[b]
		} else {
			refs = append(refs, limbo[b]...)
		}
		limbo[b] = nil
	}
	l.add(refs, nil, epoch, cnt)
}

// detach atomically takes the entire list. The caller owns the returned
// chain exclusively; batches it cannot free must be pushed back. The empty
// case is a single load — callers on scan hot paths pay no RMW on the
// shared head when nothing is orphaned.
func (l *orphanList) detach() *orphanBatch {
	if l.empty() {
		return nil
	}
	return l.head.Swap(nil)
}

// adoptEpoch frees every batch whose epoch evidence has matured: the global
// epoch moved >= 3 past the batch's stamp, proving a full grace period (see
// qsbr.go's epoch arithmetic and membership.go's Join bound). Immature
// batches go back on the list.
func (l *orphanList) adoptEpoch(global uint64, free func(mem.Ref), cnt *counters) {
	if l.empty() {
		return
	}
	for b := l.detach(); b != nil; {
		next := b.next
		if global >= b.epoch+3 {
			for _, r := range b.refs {
				free(r)
			}
			for _, n := range b.nodes {
				free(n.ref)
			}
			cnt.noteAdopted(b.size())
		} else {
			l.push(b)
		}
		b = next
	}
}

// adoptDetached runs Cadence's per-node check over a chain the caller
// detached EARLIER — before taking snap (and, for the deferred schemes,
// after capturing tick, also pre-snapshot). The order is the safety
// argument: a node in the chain was retired before the detach, so any
// validated protection of it was published before the unlink and, once
// flushed (classic HP: immediately, fenced; Cadence: by the captured tick
// per OldEnoughAt), is visible in the snapshot. Free what is old enough
// (skipped when mgr is nil — classic HP has no deferral) and unprotected;
// survivors are pushed back as a trimmed batch that keeps its epoch stamp,
// so epoch-evidence adopters can still take it.
func (l *orphanList) adoptDetached(b *orphanBatch, snap hpSnapshot, mgr *rooster.Manager, tick uint64, cfg Config, cnt *counters) {
	for b != nil {
		next := b.next
		var freed int
		b.nodes, freed = filterDeferred(cfg, mgr, tick, snap, b.nodes)
		cnt.noteAdopted(freed)
		// Plain refs carry no stamps for the scan rule to judge; a batch
		// holding any (epoch-evidence schemes') survives for an
		// epoch-evidence adopter rather than leaking silently.
		if b.size() > 0 {
			l.push(b)
		}
		b = next
	}
}

// eraInterval is one guard's active reservation [lo, hi], in eras.
type eraInterval struct{ lo, hi uint64 }

// intervalMissesAll reports whether node n's lifetime [birth, stamp] is
// disjoint from every reservation — ibr's free condition.
func intervalMissesAll(res []eraInterval, n retired) bool {
	for _, r := range res {
		if n.birth <= r.hi && n.stamp >= r.lo {
			return false
		}
	}
	return true
}

// adoptInterval runs ibr's interval check over a chain the caller detached
// BEFORE collecting res — the ordering is the safety argument, exactly as
// for adoptDetached: every node in the chain was retired before the detach,
// so any reservation that could cover a still-reachable reference was
// published before the collection read its slot. Survivors go back as a
// trimmed batch; plain-ref batches (no per-node stamps to judge) survive
// intact for an epoch-evidence adopter.
func (l *orphanList) adoptInterval(b *orphanBatch, res []eraInterval, free func(mem.Ref), cnt *counters) {
	for b != nil {
		next := b.next
		kept := b.nodes[:0]
		freed := 0
		for _, n := range b.nodes {
			if intervalMissesAll(res, n) {
				free(n.ref)
				freed++
			} else {
				kept = append(kept, n)
			}
		}
		b.nodes = kept
		cnt.noteAdopted(freed)
		if b.size() > 0 {
			l.push(b)
		}
		b = next
	}
}

// adoptClaim is RC's adoption: free every orphan whose count-table claim
// succeeds (no reader holds it); the rest wait for a later sweep.
func (l *orphanList) adoptClaim(table *countTable, free func(mem.Ref), cnt *counters) {
	if l.empty() {
		return
	}
	for b := l.detach(); b != nil; {
		next := b.next
		kept := b.refs[:0]
		freed := 0
		for _, r := range b.refs {
			if table.tryClaim(r) {
				free(r)
				freed++
			} else {
				kept = append(kept, r)
			}
		}
		cnt.noteAdopted(freed)
		if len(kept) > 0 {
			b.refs = kept
			l.push(b)
		}
		b = next
	}
}

// drain frees everything unconditionally — the Close path, valid only once
// all workers have stopped (every grace period has trivially elapsed).
// Drained nodes count as freed but not adopted: adoption is the runtime
// rescue, Close is terminal.
func (l *orphanList) drain(free func(mem.Ref), cnt *counters) {
	for b := l.detach(); b != nil; b = b.next {
		for _, r := range b.refs {
			free(r)
		}
		for _, n := range b.nodes {
			free(n.ref)
		}
		cnt.freed.Add(uint64(b.size()))
	}
}
