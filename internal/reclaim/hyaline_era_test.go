package reclaim

import "testing"

// TestHyalineEraFilterSkipsStaleReader: with a real era clock wired, a
// reader whose operation began before a batch's nodes were even allocated
// (and that has not widened its bound since) must be skipped by publish, so
// the batch frees without its acknowledgment — the IBR+Hyaline combo's
// bounded-garbage property in its smallest deterministic form.
func TestHyalineEraFilterSkipsStaleReader(t *testing.T) {
	pool := newTestPool()
	d, err := NewHyaline(Config{Workers: 4, HPs: 2, Q: 2, Free: freeInto(pool), Era: pool, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	reader := d.Guard(0)
	writer := d.Guard(1)

	reader.Begin() // inbox active, era bound frozen at the current clock

	pool.AdvanceEra() // everything allocated from here is born past the reader's bound

	r1 := allocNode(pool, 1)
	r2 := allocNode(pool, 2)
	writer.Begin()
	writer.Retire(r1)
	writer.Retire(r2)
	writer.Begin() // batch reaches Q: publish — the stale reader must be filtered
	writer.ClearHPs()

	if pool.Valid(r1) || pool.Valid(r2) {
		t.Fatal("batch did not free past the stale reader: era filter not engaged")
	}
	if st := d.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d with only a stale reader active, want 0", st.Pending)
	}

	// The flip side: a reader that widened its bound (Protect during a
	// traversal that could reach the nodes) must still be delivered to,
	// and the batch must outlive it until it acknowledges.
	r3 := allocNode(pool, 3)
	reader.Protect(0, r3) // widens the reader's bound to the current era
	r4 := allocNode(pool, 4)
	writer.Begin()
	writer.Retire(r3)
	writer.Retire(r4)
	writer.Begin() // publish: bmin <= reader's bound -> delivered to reader too
	writer.ClearHPs()
	if !pool.Valid(r3) || !pool.Valid(r4) {
		t.Fatal("batch freed while a delivered reader had not acknowledged")
	}
	reader.ClearHPs() // reader acknowledges: last ref, batch frees
	if pool.Valid(r3) || pool.Valid(r4) {
		t.Fatal("batch did not free after the last acknowledgment")
	}
	if st := d.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d after full acknowledgment, want 0", st.Pending)
	}
}
