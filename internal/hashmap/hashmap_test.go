package hashmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

func newMap(t *testing.T, scheme string, workers, buckets int) (*Map, reclaim.Domain, []*Handle) {
	t.Helper()
	m := New(Config{Poison: true, Buckets: buckets})
	d, err := reclaim.New(scheme, reclaim.Config{
		Workers: workers,
		HPs:     HPs,
		Free:    m.FreeNode,
		Q:       8,
		R:       32,
		Rooster: rooster.Config{Interval: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*Handle, workers)
	for i := range hs {
		hs[i] = m.NewHandle(d.Guard(i))
	}
	return m, d, hs
}

func TestMapBucketsRounding(t *testing.T) {
	if New(Config{}).Buckets() != 1024 {
		t.Fatal("default buckets")
	}
	if New(Config{Buckets: 100}).Buckets() != 128 {
		t.Fatal("rounding to power of two")
	}
	if New(Config{Buckets: 64}).Buckets() != 64 {
		t.Fatal("power of two preserved")
	}
}

func TestMapBasicSemantics(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newMap(t, scheme, 1, 16)
			defer d.Close()
			h := hs[0]
			if h.Contains(1) {
				t.Fatal("empty contains")
			}
			if !h.Insert(1) || h.Insert(1) {
				t.Fatal("insert semantics")
			}
			if !h.Contains(1) {
				t.Fatal("missing after insert")
			}
			if !h.Delete(1) || h.Delete(1) {
				t.Fatal("delete semantics")
			}
			if h.Contains(1) {
				t.Fatal("present after delete")
			}
		})
	}
}

func TestMapCollisionsShareBucket(t *testing.T) {
	// With one bucket, every key collides: the map degenerates to a
	// single ordered chain and must still behave.
	m, d, hs := newMap(t, "hp", 1, 1)
	defer d.Close()
	h := hs[0]
	for k := int64(0); k < 100; k++ {
		if !h.Insert(k) {
			t.Fatalf("insert %d", k)
		}
	}
	if n, msg := m.Validate(); msg != "" || n != 100 {
		t.Fatalf("validate: n=%d %q", n, msg)
	}
	for k := int64(0); k < 100; k += 2 {
		if !h.Delete(k) {
			t.Fatalf("delete %d", k)
		}
	}
	if m.Len() != 50 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestMapAgainstModelQuick(t *testing.T) {
	f := func(ops []int16) bool {
		m, d, hs := newMap(t, "qsense", 1, 8)
		defer d.Close()
		h := hs[0]
		model := map[int64]bool{}
		for _, o := range ops {
			key := int64(o % 64)
			switch {
			case o%3 == 0:
				if h.Insert(key) == model[key] {
					return false
				}
				model[key] = true
			case o%3 == 1:
				if h.Delete(key) != model[key] {
					return false
				}
				delete(model, key)
			default:
				if h.Contains(key) != model[key] {
					return false
				}
			}
		}
		n, msg := m.Validate()
		return msg == "" && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReclaimsDeletedNodes(t *testing.T) {
	m, d, hs := newMap(t, "qsbr", 1, 64)
	h := hs[0]
	for round := 0; round < 40; round++ {
		for k := int64(0); k < 200; k++ {
			h.Insert(k)
		}
		for k := int64(0); k < 200; k++ {
			h.Delete(k)
		}
	}
	d.Close()
	if live := m.Pool().Stats().Live; live != 0 {
		t.Fatalf("live after churn+close = %d, want 0 (no sentinels)", live)
	}
}

func TestMapConcurrentDisjointRanges(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const span = 512
			m, d, hs := newMap(t, scheme, workers, 256)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					base := int64(w * span)
					for rep := 0; rep < 3; rep++ {
						for k := base; k < base+span; k++ {
							if !h.Insert(k) {
								t.Errorf("insert %d", k)
								return
							}
						}
						for k := base; k < base+span; k++ {
							if !h.Contains(k) {
								t.Errorf("missing %d", k)
								return
							}
						}
						for k := base; k < base+span; k++ {
							if !h.Delete(k) {
								t.Errorf("delete %d", k)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n, msg := m.Validate(); msg != "" || n != 0 {
				t.Fatalf("validate: n=%d %s", n, msg)
			}
			d.Close()
		})
	}
}

func TestMapConcurrentSameBucketContention(t *testing.T) {
	// One bucket forces every worker onto the same chain.
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const iters = 3000
			m, d, hs := newMap(t, scheme, workers, 1)
			var ins, del [workers]int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					for i := 0; i < iters; i++ {
						if h.Insert(int64(i % 7)) {
							ins[w]++
						}
						if h.Delete(int64(i % 7)) {
							del[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			var it, dt int64
			for w := 0; w < workers; w++ {
				it += ins[w]
				dt += del[w]
			}
			if it-dt != int64(m.Len()) {
				t.Fatalf("ins %d - del %d != len %d", it, dt, m.Len())
			}
			d.Close()
		})
	}
}

func TestMapConcurrentMixedChurn(t *testing.T) {
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			iters := 15000
			if testing.Short() {
				iters = 4000
			}
			m, d, hs := newMap(t, scheme, workers, 128)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for i := 0; i < iters; i++ {
						k := int64(rng.Intn(1024))
						switch rng.Intn(10) {
						case 0, 1, 2, 3, 4:
							h.Contains(k)
						case 5, 6, 7:
							h.Insert(k)
						default:
							h.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			n, msg := m.Validate()
			if msg != "" {
				t.Fatalf("validate: %s", msg)
			}
			d.Close()
			if live := m.Pool().Stats().Live; live != uint64(n) {
				t.Fatalf("live=%d, members=%d", live, n)
			}
		})
	}
}

func TestMapHashDistribution(t *testing.T) {
	m := New(Config{Buckets: 64})
	counts := make([]int, 64)
	for k := int64(0); k < 64*100; k++ {
		counts[m.hash(k)]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty across 6400 sequential keys", b)
		}
	}
}
