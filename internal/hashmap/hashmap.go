// Package hashmap implements Michael's lock-free hash table (reference
// [24], "High performance dynamic lock-free hash tables and list-based
// sets", SPAA 2002) — the second structure of the paper the evaluation's
// linked list comes from. It is a fixed array of lock-free bucket chains,
// each an ordered Harris–Michael list, over one shared node pool.
//
// The paper evaluates the stand-alone list; the hash table is included here
// as the natural "what you'd actually deploy" structure: the same hazard
// pointer discipline (protect, re-validate, use) applies per bucket, so it
// exercises every reclamation scheme through the identical three-call
// interface with O(1)-length traversals.
package hashmap

import (
	"math/bits"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// HPs is the number of hazard pointers a map handle uses (prev, cur, next —
// as for the list).
const HPs = 3

const (
	hpPrev = 0
	hpCur  = 1
	hpNext = 2

	markBit = 1
)

type node struct {
	key  int64
	next atomic.Uint64
	_    [40]byte
}

// Config controls map construction.
type Config struct {
	// Buckets is rounded up to a power of two. Default 1024.
	Buckets int
	// MaxSlots bounds the node pool.
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// Map is the shared structure. Obtain one Handle per worker.
type Map struct {
	pool    *mem.Pool[node]
	buckets []atomic.Uint64 // head link words (no sentinel nodes)
	mask    uint64
}

// New creates an empty map.
func New(cfg Config) *Map {
	n := cfg.Buckets
	if n <= 0 {
		n = 1024
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	return &Map{
		pool:    mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "hashmap"}),
		buckets: make([]atomic.Uint64, n),
		mask:    uint64(n - 1),
	}
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (m *Map) FreeNode(r mem.Ref) { m.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (m *Map) Pool() *mem.Pool[node] { return m.pool }

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return len(m.buckets) }

// hash is Fibonacci hashing; bucket chains stay ordered by key for the
// Michael list invariants.
func (m *Map) hash(key int64) uint64 {
	return (uint64(key) * 0x9e3779b97f4a7c15) >> 32 & m.mask
}

// Handle is a worker's accessor. Not safe for concurrent use.
type Handle struct {
	m     *Map
	guard reclaim.Guard
	cache *mem.Cache[node]
}

// NewHandle binds a worker's guard to the map.
func (m *Map) NewHandle(g reclaim.Guard) *Handle {
	return &Handle{m: m, guard: g, cache: m.pool.NewCache(0)}
}

func isMarked(w uint64) bool { return w&markBit != 0 }

// linkOf resolves "the link word that points at cur": the bucket head when
// prev is nil, otherwise prev's next field. prev, when non-nil, must be
// protected by the caller.
func (h *Handle) linkOf(bucket uint64, prev mem.Ref) *atomic.Uint64 {
	if prev.IsNil() {
		return &h.m.buckets[bucket]
	}
	return &h.m.pool.Get(prev).next
}

// search finds the position for key in its bucket: on return, cur is the
// first node with key >= key (or nil at chain end) and prev (possibly nil
// for the bucket head) is its predecessor, both protected by the two
// traversal slots (which holds which rotates as the walk advances). Marked
// nodes encountered are unlinked and retired, as in the list.
func (h *Handle) search(bucket uint64, key int64) (prev, cur mem.Ref) {
	pool := h.m.pool
retry:
	for {
		ps, cs := hpPrev, hpCur
		prev = 0
		cur = mem.Ref(h.m.buckets[bucket].Load()).Untagged()
		for {
			if cur.IsNil() {
				return prev, 0
			}
			h.guard.Protect(cs, cur)
			if mem.Ref(h.linkOf(bucket, prev).Load()) != cur {
				continue retry
			}
			nextWord := pool.Get(cur).next.Load()
			next := mem.Ref(nextWord).Untagged()
			if isMarked(nextWord) {
				// Immune to the skip list's upper-level edge ABA for
				// the same reason as list.search: a node's only link
				// CAS happens while it is private, so a marked node
				// is never re-published, edge values cannot repeat,
				// and the frozen successor installed here is still
				// reachable through cur and thus unretired (skiplist
				// package doc, invariants 2 and 3).
				if !h.linkOf(bucket, prev).CompareAndSwap(uint64(cur), uint64(next)) {
					continue retry
				}
				h.guard.Retire(cur)
				cur = next
				continue
			}
			if pool.Get(cur).key >= key {
				return prev, cur
			}
			// Swap slot roles instead of copying the protection
			// between slots — a cross-slot copy can vanish from a
			// concurrent snapshot (see list.search).
			prev = cur
			ps, cs = cs, ps
			cur = next
		}
	}
}

// Contains reports whether key is in the map.
func (h *Handle) Contains(key int64) bool {
	h.guard.Begin()
	b := h.m.hash(key)
	_, cur := h.search(b, key)
	found := !cur.IsNil() && h.m.pool.Get(cur).key == key
	h.guard.ClearHPs()
	return found
}

// Insert adds key; false if already present.
func (h *Handle) Insert(key int64) bool {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	b := h.m.hash(key)
	var nref mem.Ref
	var nptr *node
	for {
		prev, cur := h.search(b, key)
		pool := h.m.pool
		if !cur.IsNil() && pool.Get(cur).key == key {
			if !nref.IsNil() {
				h.cache.Free(nref)
			}
			return false
		}
		if nref.IsNil() {
			nref, nptr = h.cache.Alloc()
			nptr.key = key
		}
		nptr.next.Store(uint64(cur))
		if h.linkOf(b, prev).CompareAndSwap(uint64(cur), uint64(nref)) {
			return true
		}
	}
}

// Delete removes key; false if absent.
func (h *Handle) Delete(key int64) bool {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	b := h.m.hash(key)
	pool := h.m.pool
	for {
		prev, cur := h.search(b, key)
		if cur.IsNil() || pool.Get(cur).key != key {
			return false
		}
		nextWord := pool.Get(cur).next.Load()
		if isMarked(nextWord) {
			continue
		}
		if !pool.Get(cur).next.CompareAndSwap(nextWord, nextWord|markBit) {
			continue
		}
		if h.linkOf(b, prev).CompareAndSwap(uint64(cur), nextWord) {
			h.guard.Retire(cur)
		} else {
			h.search(b, key)
		}
		return true
	}
}

// Len counts unmarked nodes across buckets; only meaningful when quiesced.
func (m *Map) Len() int {
	n := 0
	for b := range m.buckets {
		for r := mem.Ref(m.buckets[b].Load()).Untagged(); !r.IsNil(); {
			w := m.pool.Get(r).next.Load()
			if !isMarked(w) {
				n++
			}
			r = mem.Ref(w).Untagged()
		}
	}
	return n
}

// Validate checks per-bucket ordering and hash placement when quiesced.
// Returns the unmarked count and an error description ("" if OK).
func (m *Map) Validate() (int, string) {
	n := 0
	for b := range m.buckets {
		var prevKey *int64
		for r := mem.Ref(m.buckets[b].Load()).Untagged(); !r.IsNil(); {
			nd := m.pool.Get(r)
			w := nd.next.Load()
			if !isMarked(w) {
				if m.hash(nd.key) != uint64(b) {
					return n, "key in wrong bucket"
				}
				if prevKey != nil && nd.key <= *prevKey {
					return n, "bucket chain not strictly increasing"
				}
				k := nd.key
				prevKey = &k
				n++
			}
			r = mem.Ref(w).Untagged()
		}
	}
	return n, ""
}
