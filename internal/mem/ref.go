// Package mem is the manual-memory substrate the reclamation schemes manage.
//
// The paper (QSense, SPAA 2016) targets C/C++, where nodes are malloc'd and
// the whole point of safe memory reclamation is deciding when free may be
// called. Go's garbage collector makes a literal port meaningless: a freed
// node would still be kept alive by any stale pointer. This package restores
// the problem: data-structure nodes live in typed slab pools and are named by
// generation-tagged handles (Ref). Free really recycles the slot, and any
// later access through a stale Ref is detected (generation mismatch) and
// reported as a Violation — the analog of a use-after-free segfault.
//
// Layout of a Ref (64 bits):
//
//	bits 0..1   reserved for the data structure (mark / flag / tag bits)
//	bits 2..33  slot index + 1 (0 means nil)
//	bits 34..63 30-bit allocation generation (always odd for live refs)
//
// The two low bits let lock-free structures pack their deletion marks into
// the same word they CAS, exactly as the C implementations pack them into
// pointer low bits.
//
// Nodes are not limited to fixed-shape links: a node type may embed a Value
// (a length-prefixed byte payload) so variable-length data — the SkipMap's
// spilled byte values — lives in pool slots under the same generation
// tags, the same Free, and the same birth-era stamps as the structure
// itself. A displaced value node retires through the owning domain exactly
// like an unlinked structural node; see Value for the write-once publish
// discipline that makes guarded reads of it conclusive.
package mem

import "fmt"

// Ref is a generation-tagged handle to a pool slot. The zero Ref is nil.
type Ref uint64

const (
	// TagBits is the number of low bits of a Ref reserved for data
	// structure use (deletion marks, edge flags and tags).
	TagBits = 2

	idxBits  = 32
	genShift = TagBits + idxBits
	idxMask  = 1<<idxBits - 1
	genBits  = 30
	// GenMask extracts the generation bits once shifted down.
	genMask = 1<<genBits - 1

	tagMask Ref = 1<<TagBits - 1
)

// makeRef builds a canonical (untagged) Ref from a slot index and generation.
func makeRef(idx uint32, gen uint32) Ref {
	return Ref(uint64(gen&genMask)<<genShift | (uint64(idx)+1)<<TagBits)
}

// MakeRef builds a canonical (untagged) Ref from a slot index and
// generation. It exists for substrates that manage their own slots with the
// same packing (internal/sim/simmem) and for tests; Pool-produced Refs
// always come from Alloc.
func MakeRef(idx, gen uint32) Ref { return makeRef(idx, gen) }

// IsNil reports whether r refers to no slot (ignoring tag bits).
func (r Ref) IsNil() bool { return r&^tagMask == 0 }

// Untagged returns r with the data-structure tag bits cleared. Pool lookups
// require an untagged Ref; data structures call this after loading a link
// word that may carry marks.
func (r Ref) Untagged() Ref { return r &^ tagMask }

// Tag returns the data-structure tag bits (low TagBits bits) of r.
func (r Ref) Tag() uint64 { return uint64(r & tagMask) }

// WithTag returns r with the given tag bits set (existing tags cleared).
func (r Ref) WithTag(tag uint64) Ref { return r.Untagged() | Ref(tag)&tagMask }

// index returns the slot index encoded in r. Only valid when !r.IsNil().
func (r Ref) index() uint32 {
	return uint32(uint64(r)>>TagBits&idxMask) - 1
}

// gen returns the generation encoded in r.
func (r Ref) gen() uint32 { return uint32(uint64(r)>>genShift) & genMask }

// Index returns the slot index encoded in r. Only valid when !r.IsNil().
// Schemes that keep per-slot side tables (reference counting) key them by
// Index; the substrate guarantees indexes are dense and reused.
func (r Ref) Index() uint32 { return r.index() }

// Gen returns the allocation generation encoded in r (odd for live refs).
func (r Ref) Gen() uint32 { return r.gen() }

// String implements fmt.Stringer for debugging.
func (r Ref) String() string {
	if r.IsNil() {
		if r.Tag() != 0 {
			return fmt.Sprintf("nil|tag%d", r.Tag())
		}
		return "nil"
	}
	s := fmt.Sprintf("ref(idx=%d,gen=%d", r.index(), r.gen())
	if t := r.Tag(); t != 0 {
		s += fmt.Sprintf(",tag=%d", t)
	}
	return s + ")"
}

// Violation describes a detected memory-safety violation: a use-after-free,
// a double free, or a free of a foreign/stale reference. It is the substrate
// analog of a segmentation fault, raised by panic so that broken reclamation
// configurations fail loudly in tests.
type Violation struct {
	Op   string // "get", "free"
	Ref  Ref
	Want uint32 // generation the Ref expected
	Got  uint32 // generation the slot currently holds
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mem: %s violation on %v: slot generation %d, reference generation %d",
		v.Op, v.Ref, v.Got, v.Want)
}
