package mem

// Value is a length-prefixed byte payload embeddable in a pool slot. A
// structure that spills variable-length values allocates a value node from
// the same pool as its structural nodes (one Config.Free / one EraSource per
// reclamation domain), stores the bytes with Set before publishing the node's
// Ref, and reads them back with Append under a guard. Because the payload
// lives behind the slot's birth-era header, interval-based schemes (ibr)
// stamp value lifetimes exactly as they stamp structural ones, and Valid /
// the -tags qsensedebug checks apply unchanged.
//
// A Value is written once, before its Ref is published, and read-only
// afterwards; that single-publish discipline is what makes guarded readers'
// copies conclusive (see internal/skiplist's spilled-value linearization
// argument). Poison (Free zeroing the slot) zeroes the length and drops the
// backing array, so a use-after-free read observes an empty payload rather
// than stale bytes even when the generation check is compiled out.
type Value struct {
	n   uint32
	buf []byte
}

// Set copies b into the value, growing the backing array when needed. Must
// only be called by the slot's owner before the Ref is published.
func (v *Value) Set(b []byte) {
	if cap(v.buf) < len(b) {
		v.buf = make([]byte, len(b))
	}
	v.buf = v.buf[:cap(v.buf)]
	copy(v.buf, b)
	v.n = uint32(len(b))
}

// Len returns the payload length in bytes.
func (v *Value) Len() int { return int(v.n) }

// Bytes returns the payload without copying. The slice aliases the slot:
// only the owner (pre-publish) or a guarded reader that re-validates the
// publishing word after the copy may use it.
func (v *Value) Bytes() []byte { return v.buf[:v.n] }

// Append appends the payload to dst and returns the extended slice.
func (v *Value) Append(dst []byte) []byte { return append(dst, v.buf[:v.n]...) }
