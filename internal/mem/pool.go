package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	slabShift = 13
	// SlabSize is the number of slots added to a pool each time it grows.
	SlabSize = 1 << slabShift
	slabMask = SlabSize - 1

	// free-list head packing: | aba (31 bits) | idx+1 (33 bits) |
	headIdxBits = 33
	headIdxMask = 1<<headIdxBits - 1

	nilIdx = ^uint32(0)
)

// Config controls pool construction.
type Config struct {
	// MaxSlots bounds the pool size; Alloc panics with ErrExhausted once
	// reached. Rounded up to a multiple of SlabSize. Default 1<<25.
	MaxSlots int
	// Poison zeroes a slot's value on Free, so stale readers that hold a
	// raw pointer (rather than a Ref) observe cleared memory in tests.
	Poison bool
	// Name appears in violation and exhaustion messages.
	Name string
}

// ErrExhausted is the panic value used when a pool reaches MaxSlots. It is
// the substrate analog of malloc returning NULL.
type ErrExhausted struct{ Name string }

func (e *ErrExhausted) Error() string { return fmt.Sprintf("mem: pool %q exhausted", e.Name) }

type slot[T any] struct {
	gen   atomic.Uint32 // odd = live, even = free; bumped on every transition
	next  atomic.Uint32 // free-list link; meaningful only while free
	birth uint64        // pool era at Alloc time; read-only while live
	val   T
}

type slab[T any] struct {
	slots []slot[T]
}

// Pool is a typed slab allocator handing out generation-tagged Refs.
// All methods are safe for concurrent use.
type Pool[T any] struct {
	cfg      Config
	dir      []atomic.Pointer[slab[T]] // fixed directory, entries published once
	nSlabs   atomic.Uint32
	freeHead atomic.Uint64 // packed (aba, idx+1); 0 idx part = empty
	era      atomic.Uint64 // birth-era clock; slots are stamped at Alloc
	growMu   sync.Mutex

	allocs atomic.Uint64
	frees  atomic.Uint64
	grows  atomic.Uint64
}

// NewPool creates an empty pool; the first Alloc triggers slab growth.
func NewPool[T any](cfg Config) *Pool[T] {
	if cfg.MaxSlots <= 0 {
		cfg.MaxSlots = 1 << 25
	}
	nDirs := (cfg.MaxSlots + SlabSize - 1) / SlabSize
	if cfg.Name == "" {
		cfg.Name = "pool"
	}
	return &Pool[T]{cfg: cfg, dir: make([]atomic.Pointer[slab[T]], nDirs)}
}

func (p *Pool[T]) slotAt(idx uint32) *slot[T] {
	return &p.dir[idx>>slabShift].Load().slots[idx&slabMask]
}

// Get resolves r to its slot value. It panics with *Violation if r is stale
// (the slot has been freed, or freed and reallocated, since r was created) —
// the analog of a use-after-free fault. It panics with a plain message on a
// nil Ref (the analog of a null-pointer dereference). Tag bits must be
// cleared by the caller (use Ref.Untagged).
func (p *Pool[T]) Get(r Ref) *T {
	if r.IsNil() {
		panic("mem: nil Ref dereference")
	}
	idx := r.index()
	s := &p.dir[idx>>slabShift].Load().slots[idx&slabMask]
	if g := s.gen.Load() & genMask; g != r.gen() {
		panic(&Violation{Op: "get", Ref: r, Want: r.gen(), Got: g})
	}
	return &s.val
}

// TryGet is Get returning an error instead of panicking; intended for tests
// and debugging tools.
func (p *Pool[T]) TryGet(r Ref) (v *T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if viol, ok := rec.(*Violation); ok {
				v, err = nil, viol
				return
			}
			err = fmt.Errorf("mem: %v", rec)
		}
	}()
	return p.Get(r), nil
}

// Valid reports whether r currently resolves to a live slot.
func (p *Pool[T]) Valid(r Ref) bool {
	if r.IsNil() {
		return false
	}
	idx := r.index()
	sl := p.dir[idx>>slabShift].Load()
	if sl == nil {
		return false
	}
	return sl.slots[idx&slabMask].gen.Load()&genMask == r.gen()
}

// Alloc pops a free slot, marks it live, and returns its Ref and value
// pointer. The value is in its previous state unless Poison is set (freed
// slots are zeroed at Free time); callers initialize all fields before
// linking the node into a structure. Panics with *ErrExhausted at MaxSlots.
func (p *Pool[T]) Alloc() (Ref, *T) {
	for {
		if idx, ok := p.popFree(); ok {
			s := p.slotAt(idx)
			s.birth = p.era.Load() // before the gen bump makes the slot visible
			gen := s.gen.Add(1)    // even -> odd: live
			p.allocs.Add(1)
			return makeRef(idx, gen), &s.val
		}
		p.grow()
	}
}

// Free returns the slot named by r to the pool. It panics with *Violation on
// a double free or a stale reference. Tag bits must be cleared first.
func (p *Pool[T]) Free(r Ref) {
	if r.IsNil() {
		panic("mem: free of nil Ref")
	}
	idx := r.index()
	s := p.slotAt(idx)
	g := s.gen.Load()
	if g&genMask != r.gen() || g&1 == 0 {
		panic(&Violation{Op: "free", Ref: r, Want: r.gen(), Got: g & genMask})
	}
	if !s.gen.CompareAndSwap(g, g+1) { // odd -> even: free; CAS defeats racing double frees
		panic(&Violation{Op: "free", Ref: r, Want: r.gen(), Got: s.gen.Load() & genMask})
	}
	if p.cfg.Poison {
		var zero T
		s.val = zero
	}
	p.frees.Add(1)
	p.pushFree(idx)
}

func encodeIdx(idx uint32) uint64 {
	if idx == nilIdx {
		return 0
	}
	return uint64(idx) + 1
}

func decodeIdx(h uint64) uint32 {
	v := h & headIdxMask
	if v == 0 {
		return nilIdx
	}
	return uint32(v - 1)
}

func (p *Pool[T]) popFree() (uint32, bool) {
	for {
		h := p.freeHead.Load()
		idx := decodeIdx(h)
		if idx == nilIdx {
			return 0, false
		}
		next := p.slotAt(idx).next.Load()
		nh := (h>>headIdxBits+1)<<headIdxBits | encodeIdx(next)
		if p.freeHead.CompareAndSwap(h, nh) {
			return idx, true
		}
	}
}

func (p *Pool[T]) pushFree(idx uint32) {
	s := p.slotAt(idx)
	for {
		h := p.freeHead.Load()
		s.next.Store(decodeIdx(h))
		nh := (h>>headIdxBits+1)<<headIdxBits | encodeIdx(idx)
		if p.freeHead.CompareAndSwap(h, nh) {
			return
		}
	}
}

// pushFreeChain splices a pre-linked chain [first..last] onto the free list.
func (p *Pool[T]) pushFreeChain(first, last uint32) {
	lastSlot := p.slotAt(last)
	for {
		h := p.freeHead.Load()
		lastSlot.next.Store(decodeIdx(h))
		nh := (h>>headIdxBits+1)<<headIdxBits | encodeIdx(first)
		if p.freeHead.CompareAndSwap(h, nh) {
			return
		}
	}
}

func (p *Pool[T]) grow() {
	p.growMu.Lock()
	defer p.growMu.Unlock()
	// Another grower may have refilled the list while we waited.
	if decodeIdx(p.freeHead.Load()) != nilIdx {
		return
	}
	n := p.nSlabs.Load()
	if int(n) >= len(p.dir) {
		panic(&ErrExhausted{Name: p.cfg.Name})
	}
	sl := &slab[T]{slots: make([]slot[T], SlabSize)}
	base := n * SlabSize
	for i := 0; i < SlabSize-1; i++ {
		sl.slots[i].next.Store(base + uint32(i) + 1)
	}
	sl.slots[SlabSize-1].next.Store(nilIdx)
	p.dir[n].Store(sl)
	p.nSlabs.Store(n + 1)
	p.grows.Add(1)
	p.pushFreeChain(base, base+SlabSize-1)
}

// Era returns the pool's current birth-era clock. The clock only moves when
// AdvanceEra is called; a pool whose domain does not use interval-based
// reclamation stays at era 0 and every slot's birth stamp is 0.
func (p *Pool[T]) Era() uint64 { return p.era.Load() }

// AdvanceEra bumps the birth-era clock and returns the new value. Interval-
// based reclamation schemes call this on their retire/alloc cadence so that
// node lifetimes partition into disjoint eras.
func (p *Pool[T]) AdvanceEra() uint64 { return p.era.Add(1) }

// BirthEra returns the era stamped on r's slot at Alloc time. It is only
// meaningful while r is live: the caller must hold a protection (or otherwise
// know the slot cannot be recycled), exactly as for Get. Unlike Get it does
// not validate the generation — interval reclamation reads it at Retire time,
// when the retirer owns the node.
func (p *Pool[T]) BirthEra(r Ref) uint64 {
	if r.IsNil() {
		return 0
	}
	idx := r.index()
	sl := p.dir[idx>>slabShift].Load()
	if sl == nil {
		return 0
	}
	return sl.slots[idx&slabMask].birth
}

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Allocs uint64
	Frees  uint64
	Live   uint64 // Allocs - Frees
	Slabs  uint32
	Slots  uint64 // capacity currently backed by slabs
}

// Stats returns a snapshot of the pool's counters. Live is computed from
// racy reads of two counters and may be transiently off by in-flight ops.
func (p *Pool[T]) Stats() Stats {
	a, f := p.allocs.Load(), p.frees.Load()
	live := uint64(0)
	if a > f {
		live = a - f
	}
	n := p.nSlabs.Load()
	return Stats{Allocs: a, Frees: f, Live: live, Slabs: n, Slots: uint64(n) * SlabSize}
}
