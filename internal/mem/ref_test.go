package mem

import (
	"testing"
	"testing/quick"
)

func TestRefNil(t *testing.T) {
	var r Ref
	if !r.IsNil() {
		t.Fatal("zero Ref must be nil")
	}
	if r.String() != "nil" {
		t.Fatalf("zero Ref string = %q", r.String())
	}
	// Tagged nil is still nil.
	if !r.WithTag(1).IsNil() || !r.WithTag(3).IsNil() {
		t.Fatal("tagged nil Ref must remain nil")
	}
	if r.WithTag(1).String() != "nil|tag1" {
		t.Fatalf("tagged nil string = %q", r.WithTag(1).String())
	}
}

func TestRefRoundTrip(t *testing.T) {
	cases := []struct {
		idx uint32
		gen uint32
	}{
		{0, 1}, {1, 1}, {5, 3}, {SlabSize - 1, 999}, {1 << 20, 1<<genBits - 1},
		{idxMask - 1, 7},
	}
	for _, c := range cases {
		r := makeRef(c.idx, c.gen)
		if r.IsNil() {
			t.Fatalf("makeRef(%d,%d) is nil", c.idx, c.gen)
		}
		if got := r.index(); got != c.idx {
			t.Errorf("index(%d,%d) = %d", c.idx, c.gen, got)
		}
		if got := r.gen(); got != c.gen&genMask {
			t.Errorf("gen(%d,%d) = %d", c.idx, c.gen, got)
		}
	}
}

func TestRefTagging(t *testing.T) {
	r := makeRef(42, 7)
	for tag := uint64(0); tag < 4; tag++ {
		tr := r.WithTag(tag)
		if tr.Tag() != tag {
			t.Errorf("WithTag(%d).Tag() = %d", tag, tr.Tag())
		}
		if tr.Untagged() != r {
			t.Errorf("WithTag(%d).Untagged() != r", tag)
		}
		if tr.index() != 42 || tr.gen() != 7 {
			t.Errorf("tagging disturbed idx/gen: %v", tr)
		}
	}
	// WithTag replaces, not ORs.
	if r.WithTag(3).WithTag(1).Tag() != 1 {
		t.Error("WithTag must clear existing tag bits")
	}
	// Tag bits above TagBits are masked off.
	if r.WithTag(0xFF).Tag() != 3 {
		t.Error("WithTag must mask to TagBits")
	}
}

func TestRefRoundTripQuick(t *testing.T) {
	// Property: for any (idx, gen, tag), encode/decode round-trips and
	// tagging never aliases two distinct slots.
	f := func(idx uint32, gen uint32, tag uint8) bool {
		if idx == idxMask { // idx+1 overflows the field; pools never reach it
			idx--
		}
		g := gen & genMask
		r := makeRef(idx, gen).WithTag(uint64(tag))
		return r.index() == idx && r.gen() == g && r.Tag() == uint64(tag)&3 &&
			!r.IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefDistinctGenerationsDiffer(t *testing.T) {
	// Property: same slot, different generation => different Ref. This is
	// what makes stale references detectable and defeats ABA on links.
	f := func(idx uint32, g1, g2 uint32) bool {
		if idx == idxMask {
			idx--
		}
		if g1&genMask == g2&genMask {
			return true
		}
		return makeRef(idx, g1) != makeRef(idx, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Op: "get", Ref: makeRef(3, 5), Want: 5, Got: 6}
	s := v.Error()
	if s == "" {
		t.Fatal("empty violation message")
	}
}
