package mem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

type tnode struct {
	key  int64
	next uint64
	pad  [40]byte
}

func mustViolate(t *testing.T, op string, f func()) *Violation {
	t.Helper()
	defer func() { _ = recover() }()
	var got *Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected a Violation panic", op)
			}
			v, ok := r.(*Violation)
			if !ok {
				t.Fatalf("%s: panic %v is not *Violation", op, r)
			}
			got = v
		}()
		f()
	}()
	return got
}

func TestPoolAllocFree(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	r, v := p.Alloc()
	if r.IsNil() || v == nil {
		t.Fatal("Alloc returned nil")
	}
	v.key = 42
	if p.Get(r).key != 42 {
		t.Fatal("Get did not resolve to the same slot")
	}
	if !p.Valid(r) {
		t.Fatal("live ref must be Valid")
	}
	p.Free(r)
	if p.Valid(r) {
		t.Fatal("freed ref must not be Valid")
	}
	st := p.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.Live != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolUseAfterFreeDetected(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	r, _ := p.Alloc()
	p.Free(r)
	v := mustViolate(t, "get", func() { p.Get(r) })
	if v.Op != "get" {
		t.Fatalf("violation op = %q", v.Op)
	}
	if _, err := p.TryGet(r); err == nil {
		t.Fatal("TryGet on freed ref must error")
	}
}

func TestPoolUseAfterReallocDetected(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	r1, _ := p.Alloc()
	p.Free(r1)
	// The slot comes back immediately (LIFO free list) with a new generation.
	r2, _ := p.Alloc()
	if r1.index() != r2.index() {
		t.Fatalf("expected LIFO reuse of slot %d, got %d", r1.index(), r2.index())
	}
	if r1 == r2 {
		t.Fatal("recycled slot must have a fresh generation")
	}
	mustViolate(t, "get", func() { p.Get(r1) })
	if p.Get(r2) == nil {
		t.Fatal("new ref must resolve")
	}
}

func TestPoolDoubleFreeDetected(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	r, _ := p.Alloc()
	p.Free(r)
	v := mustViolate(t, "free", func() { p.Free(r) })
	if v.Op != "free" {
		t.Fatalf("violation op = %q", v.Op)
	}
}

func TestPoolForeignGenerationFreeDetected(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	r, _ := p.Alloc()
	forged := makeRef(r.index(), r.gen()+2)
	mustViolate(t, "free", func() { p.Free(forged) })
	p.Free(r) // the real ref still frees fine
}

func TestPoolNilDeref(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil deref")
		}
	}()
	p.Get(Ref(0))
}

func TestPoolPoison(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t", Poison: true})
	r, v := p.Alloc()
	v.key = 99
	idx := r.index()
	p.Free(r)
	if p.slotAt(idx).val.key != 0 {
		t.Fatal("poisoned slot must be zeroed")
	}
}

func TestPoolNoPoisonKeepsBytes(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t", Poison: false})
	r, v := p.Alloc()
	v.key = 99
	idx := r.index()
	p.Free(r)
	if p.slotAt(idx).val.key != 99 {
		t.Fatal("non-poisoning pool should not touch freed bytes")
	}
}

func TestPoolGrowth(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	n := SlabSize*2 + 17
	refs := make([]Ref, 0, n)
	for i := 0; i < n; i++ {
		r, _ := p.Alloc()
		refs = append(refs, r)
	}
	st := p.Stats()
	if st.Slabs != 3 {
		t.Fatalf("slabs = %d, want 3", st.Slabs)
	}
	if st.Live != uint64(n) {
		t.Fatalf("live = %d, want %d", st.Live, n)
	}
	// All refs distinct.
	seen := map[Ref]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatalf("duplicate ref %v", r)
		}
		seen[r] = true
	}
	for _, r := range refs {
		p.Free(r)
	}
	if p.Stats().Live != 0 {
		t.Fatal("leak after freeing everything")
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool[tnode](Config{Name: "small", MaxSlots: SlabSize})
	for i := 0; i < SlabSize; i++ {
		p.Alloc()
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected exhaustion panic")
		}
		if _, ok := r.(*ErrExhausted); !ok {
			t.Fatalf("panic %v is not *ErrExhausted", r)
		}
	}()
	p.Alloc()
}

func TestPoolReuseIsLIFOAndComplete(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	var refs []Ref
	for i := 0; i < 100; i++ {
		r, _ := p.Alloc()
		refs = append(refs, r)
	}
	for _, r := range refs {
		p.Free(r)
	}
	// Re-allocating 100 must reuse exactly those 100 slots (plus none new):
	// the pool had one slab; 100 allocs cannot trigger growth.
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		r, _ := p.Alloc()
		seen[r.index()] = true
	}
	if p.Stats().Slabs != 1 {
		t.Fatal("reuse should not grow the pool")
	}
	for _, r := range refs {
		if !seen[r.index()] {
			t.Fatalf("slot %d was not reused", r.index())
		}
	}
}

func TestPoolConcurrentAllocFree(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	const workers = 8
	const iters = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]Ref, 0, 64)
			for i := 0; i < iters; i++ {
				if len(held) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(held))
					p.Free(held[k])
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
				} else {
					r, v := p.Alloc()
					v.key = int64(i)
					held = append(held, r)
				}
			}
			for _, r := range held {
				p.Free(r)
			}
		}(int64(w))
	}
	wg.Wait()
	st := p.Stats()
	if st.Live != 0 {
		t.Fatalf("live = %d after balanced alloc/free", st.Live)
	}
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
}

func TestPoolConcurrentNoDoubleHandout(t *testing.T) {
	// Hammer alloc/free and verify no two workers ever hold the same slot:
	// each worker stamps slots it holds with its id and checks on free.
	p := NewPool[tnode](Config{Name: "t", MaxSlots: SlabSize})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				r, v := p.Alloc()
				v.key = id
				if v.key != id {
					errs <- "slot handed to two workers"
					return
				}
				p.Free(r)
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestPoolAllocFreeSequencesQuick(t *testing.T) {
	// Property: for any sequence of alloc/free decisions, the pool's
	// live count equals the model's, and freed refs always violate on Get.
	f := func(ops []bool) bool {
		p := NewPool[tnode](Config{Name: "q", MaxSlots: 4 * SlabSize})
		var held []Ref
		live := 0
		for _, alloc := range ops {
			if alloc || len(held) == 0 {
				r, _ := p.Alloc()
				held = append(held, r)
				live++
			} else {
				r := held[len(held)-1]
				held = held[:len(held)-1]
				p.Free(r)
				live--
				if _, err := p.TryGet(r); err == nil {
					return false
				}
			}
		}
		return p.Stats().Live == uint64(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
