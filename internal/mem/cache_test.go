package mem

import (
	"sync"
	"testing"
)

func TestCacheAllocFree(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(16)
	r, v := c.Alloc()
	v.key = 7
	if p.Get(r).key != 7 {
		t.Fatal("cache alloc not visible through pool")
	}
	c.Free(r)
	if p.Valid(r) {
		t.Fatal("cache-freed ref still valid")
	}
	if p.Stats().Live != 0 {
		t.Fatal("leak")
	}
}

func TestCacheReusesLocally(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(16)
	r1, _ := c.Alloc()
	idx := r1.index()
	c.Free(r1)
	r2, _ := c.Alloc()
	if r2.index() != idx {
		t.Fatalf("magazine should serve the just-freed slot, got %d want %d", r2.index(), idx)
	}
	if r1 == r2 {
		t.Fatal("generation must advance across reuse")
	}
}

func TestCacheUAFDetection(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(16)
	r, _ := c.Alloc()
	c.Free(r)
	mustViolate(t, "get", func() { p.Get(r) })
	mustViolate(t, "free", func() { c.Free(r) })
}

func TestCacheSpillAndRefill(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(8)
	var refs []Ref
	for i := 0; i < 64; i++ {
		r, _ := c.Alloc()
		refs = append(refs, r)
	}
	for _, r := range refs {
		c.Free(r) // forces spills past capacity
	}
	if c.spills == 0 {
		t.Fatal("expected at least one spill")
	}
	if p.Stats().Live != 0 {
		t.Fatal("leak through spill path")
	}
	// Everything must still be allocatable.
	for i := 0; i < 64; i++ {
		c.Alloc()
	}
	if p.Stats().Live != 64 {
		t.Fatal("refill lost slots")
	}
}

func TestCacheDrain(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(16)
	r, _ := c.Alloc()
	c.Free(r)
	c.Drain()
	if len(c.buf) != 0 {
		t.Fatal("drain left slots behind")
	}
	// The drained slot is allocatable straight from the pool.
	r2, _ := p.Alloc()
	if r2.index() != r.index() {
		t.Fatalf("drained slot not on pool free list (got %d want %d)", r2.index(), r.index())
	}
}

func TestCachePerWorkerConcurrent(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.NewCache(32)
			var held []Ref
			for i := 0; i < 20000; i++ {
				if i%3 == 2 && len(held) > 0 {
					c.Free(held[len(held)-1])
					held = held[:len(held)-1]
				} else {
					r, _ := c.Alloc()
					held = append(held, r)
				}
			}
			for _, r := range held {
				c.Free(r)
			}
			c.Drain()
		}()
	}
	wg.Wait()
	if p.Stats().Live != 0 {
		t.Fatalf("live = %d", p.Stats().Live)
	}
}

func TestCachePoolAccessor(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(0)
	if c.Pool() != p {
		t.Fatal("Pool() accessor broken")
	}
	if cap(c.buf) != DefaultCacheSize {
		t.Fatalf("default size = %d", cap(c.buf))
	}
}
