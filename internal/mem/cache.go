package mem

// Cache is a per-worker allocation magazine. It batches free-list traffic so
// that workers do not contend on the pool's shared free list for every node,
// mirroring the thread-local caches of production allocators (tcmalloc and
// the per-thread buffers used by ASCYLIB's ssmem). A Cache is not safe for
// concurrent use; create one per worker.
type Cache[T any] struct {
	pool *Pool[T]
	buf  []uint32
	cap  int

	// counters (local, folded into pool stats via the pool's own counters)
	refills uint64
	spills  uint64
}

// DefaultCacheSize is the magazine capacity used when 0 is passed.
const DefaultCacheSize = 64

// NewCache returns a magazine of the given capacity bound to p.
func (p *Pool[T]) NewCache(size int) *Cache[T] {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Cache[T]{pool: p, buf: make([]uint32, 0, size), cap: size}
}

// Alloc is Pool.Alloc served from the magazine when possible.
func (c *Cache[T]) Alloc() (Ref, *T) {
	if len(c.buf) == 0 {
		c.refill()
	}
	if n := len(c.buf); n > 0 {
		idx := c.buf[n-1]
		c.buf = c.buf[:n-1]
		s := c.pool.slotAt(idx)
		s.birth = c.pool.era.Load() // before the gen bump makes the slot visible
		gen := s.gen.Add(1)
		c.pool.allocs.Add(1)
		return makeRef(idx, gen), &s.val
	}
	return c.pool.Alloc()
}

// Free returns a slot to the magazine, spilling half to the pool when full.
// Same violation semantics as Pool.Free.
func (c *Cache[T]) Free(r Ref) {
	if r.IsNil() {
		panic("mem: free of nil Ref")
	}
	idx := r.index()
	s := c.pool.slotAt(idx)
	g := s.gen.Load()
	if g&genMask != r.gen() || g&1 == 0 {
		panic(&Violation{Op: "free", Ref: r, Want: r.gen(), Got: g & genMask})
	}
	if !s.gen.CompareAndSwap(g, g+1) {
		panic(&Violation{Op: "free", Ref: r, Want: r.gen(), Got: s.gen.Load() & genMask})
	}
	if c.pool.cfg.Poison {
		var zero T
		s.val = zero
	}
	c.pool.frees.Add(1)
	if len(c.buf) == c.cap {
		c.spill()
	}
	c.buf = append(c.buf, idx)
}

// refill moves up to half a magazine of slots from the pool's free list.
func (c *Cache[T]) refill() {
	c.refills++
	want := c.cap / 2
	for i := 0; i < want; i++ {
		idx, ok := c.pool.popFree()
		if !ok {
			break
		}
		c.buf = append(c.buf, idx)
	}
}

// spill pushes half the magazine back to the pool's free list.
func (c *Cache[T]) spill() {
	c.spills++
	half := c.cap / 2
	for _, idx := range c.buf[len(c.buf)-half:] {
		c.pool.pushFree(idx)
	}
	c.buf = c.buf[:len(c.buf)-half]
}

// Drain returns all cached slots to the pool. Call when the worker retires.
func (c *Cache[T]) Drain() {
	for _, idx := range c.buf {
		c.pool.pushFree(idx)
	}
	c.buf = c.buf[:0]
}

// Pool returns the pool this cache serves.
func (c *Cache[T]) Pool() *Pool[T] { return c.pool }
