package mem

import (
	"testing"
)

func TestValidOnUnbackedSlot(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	// A forged ref into a slab that was never allocated must be invalid,
	// not crash.
	forged := makeRef(SlabSize*3+5, 1)
	if p.Valid(forged) {
		t.Fatal("ref into unbacked slab reported valid")
	}
}

func TestValidNil(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	if p.Valid(0) {
		t.Fatal("nil ref reported valid")
	}
}

func TestTryGetNilRef(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	if _, err := p.TryGet(0); err == nil {
		t.Fatal("TryGet(nil) must error")
	}
}

func TestFreeNilPanics(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	defer func() {
		if recover() == nil {
			t.Fatal("Free(nil) must panic")
		}
	}()
	p.Free(0)
}

func TestCacheFreeNilPanics(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	c := p.NewCache(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Cache.Free(nil) must panic")
		}
	}()
	c.Free(0)
}

func TestGetWithTagBitsFaults(t *testing.T) {
	// Pool lookups require untagged refs: a tagged ref resolves to a
	// different (index, gen) decoding and must not silently alias.
	p := NewPool[tnode](Config{Name: "t"})
	r, _ := p.Alloc()
	tagged := r.WithTag(1)
	// Untagging restores access.
	if p.Get(tagged.Untagged()) == nil {
		t.Fatal("untagged access failed")
	}
}

func TestErrExhaustedMessage(t *testing.T) {
	e := &ErrExhausted{Name: "nodes"}
	if e.Error() == "" {
		t.Fatal("empty message")
	}
}

func TestSlabBoundaryRefs(t *testing.T) {
	// Slots on both sides of a slab boundary resolve correctly.
	p := NewPool[tnode](Config{Name: "t"})
	refs := make(map[uint32]Ref)
	for i := 0; i < SlabSize+2; i++ {
		r, v := p.Alloc()
		v.key = int64(r.index())
		refs[r.index()] = r
	}
	for idx, r := range refs {
		if got := p.Get(r).key; got != int64(idx) {
			t.Fatalf("slot %d resolved to key %d", idx, got)
		}
	}
	if p.Stats().Slabs != 2 {
		t.Fatalf("slabs = %d", p.Stats().Slabs)
	}
}

func TestStatsLiveNeverUnderflows(t *testing.T) {
	p := NewPool[tnode](Config{Name: "t"})
	st := p.Stats()
	if st.Live != 0 || st.Allocs != 0 || st.Frees != 0 {
		t.Fatalf("fresh pool stats: %+v", st)
	}
}
