package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

// newTestMachine builds a 2-proc machine with jitter off and strict
// interleaving unless the test overrides cfg fields.
func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	if cfg.Procs == 0 {
		cfg.Procs = 2
	}
	if cfg.JitterPct == 0 {
		cfg.JitterPct = -1
	}
	return New(cfg)
}

// TestStoreBufferingLitmus is the canonical TSO litmus (SB): with no
// fences, both processes can read the other's flag as 0 — the reordering
// that breaks naive hazard pointers (§3.2). Under the adversarial drain
// model it is in fact the common outcome.
func TestStoreBufferingLitmus(t *testing.T) {
	bothZero := 0
	const runs = 32
	for seed := uint64(0); seed < runs; seed++ {
		m := newTestMachine(t, Config{Seed: seed, JitterPct: int(seed%2)*10 - 1})
		x := m.Reserve(1)
		y := m.Reserve(1)
		var r0, r1 uint64
		// The trailing Work keeps each proc alive across the peer's
		// load: process termination drains the store buffer, so a
		// program whose load is its last op can never exhibit the
		// relaxed outcome against an already-exited peer.
		m.Spawn(0, func(p *Proc) {
			p.Store(x, 1)
			r0 = p.Load(y)
			p.Work(1000)
		})
		m.Spawn(1, func(p *Proc) {
			p.Store(y, 1)
			r1 = p.Load(x)
			p.Work(1000)
		})
		if errs := m.Run(); errs != nil {
			t.Fatal(errs)
		}
		if r0 == 0 && r1 == 0 {
			bothZero++
		}
	}
	if bothZero == 0 {
		t.Fatal("TSO store buffering never produced the relaxed outcome; the store buffer model is broken")
	}
}

// TestStoreBufferingWithFences: inserting a fence between the store and the
// load forbids the relaxed outcome in every execution — Algorithm 1's fix.
func TestStoreBufferingWithFences(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		m := newTestMachine(t, Config{Seed: seed, JitterPct: int(seed % 30)})
		x := m.Reserve(1)
		y := m.Reserve(1)
		var r0, r1 uint64
		m.Spawn(0, func(p *Proc) {
			p.Store(x, 1)
			p.Fence()
			r0 = p.Load(y)
		})
		m.Spawn(1, func(p *Proc) {
			p.Store(y, 1)
			p.Fence()
			r1 = p.Load(x)
		})
		if errs := m.Run(); errs != nil {
			t.Fatal(errs)
		}
		if r0 == 0 && r1 == 0 {
			t.Fatalf("seed %d: fenced SB litmus produced the forbidden relaxed outcome", seed)
		}
	}
}

// TestStoreToLoadForwarding: a process sees its own buffered store; a peer
// does not until a drain.
func TestStoreToLoadForwarding(t *testing.T) {
	m := newTestMachine(t, Config{})
	x := m.Reserve(1)
	seen := make(chan uint64, 2)
	m.Spawn(0, func(p *Proc) {
		p.Store(x, 7)
		seen <- p.Load(x) // forwarding: must be 7
		p.Work(100000)    // stay unfenced, buffer never drains
	})
	m.Spawn(1, func(p *Proc) {
		p.Work(1000) // run strictly after proc 0's store
		seen <- p.Load(x)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	own, peer := <-seen, <-seen
	if own != 7 {
		t.Fatalf("store-to-load forwarding failed: own load = %d", own)
	}
	if peer != 0 {
		t.Fatalf("peer saw an undrained store: %d", peer)
	}
}

// TestForwardingYoungest: forwarding returns the youngest matching entry.
func TestForwardingYoungest(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	x := m.Reserve(1)
	var got uint64
	m.Spawn(0, func(p *Proc) {
		p.Store(x, 1)
		p.Store(x, 2)
		p.Store(x, 3)
		got = p.Load(x)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if got != 3 {
		t.Fatalf("youngest-entry forwarding failed: got %d", got)
	}
}

// TestCapacityDrainFIFO: when the buffer overflows, the oldest store drains
// first, preserving TSO's per-process store order in memory. A peer
// observes mid-run (process termination drains the rest, so post-run state
// cannot distinguish orders).
func TestCapacityDrainFIFO(t *testing.T) {
	m := newTestMachine(t, Config{StoreBufCap: 2})
	a := m.Reserve(3)
	var v0, v1, v2 uint64
	m.Spawn(0, func(p *Proc) {
		p.Store(a, 1)   // drains when the 3rd store arrives
		p.Store(a+1, 2) //
		p.Store(a+2, 3) // forces drain of (a,1)
		p.Work(100000)  // stay alive, unfenced
	})
	m.Spawn(1, func(p *Proc) {
		p.SleepUntil(10000)
		v0, v1, v2 = p.Load(a), p.Load(a+1), p.Load(a+2)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if v0 != 1 {
		t.Fatalf("oldest store did not drain under capacity pressure: mem[a]=%d", v0)
	}
	if v1 != 0 || v2 != 0 {
		t.Fatalf("younger stores drained out of order: %d %d", v1, v2)
	}
}

// TestCASDrainsAndIsVisible: a CAS acts as a full fence and its result is
// immediately visible to later loads of any process.
func TestCASDrainsAndIsVisible(t *testing.T) {
	m := newTestMachine(t, Config{})
	x := m.Reserve(1)
	y := m.Reserve(1)
	var peer uint64
	m.Spawn(0, func(p *Proc) {
		p.Store(y, 9) // would linger in the buffer...
		if _, ok := p.CAS(x, 0, 1); !ok {
			t.Error("CAS on fresh word failed")
		}
	})
	m.Spawn(1, func(p *Proc) {
		p.Work(5000)
		peer = p.Load(y)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if peer != 9 {
		t.Fatalf("CAS did not drain the store buffer: peer read %d", peer)
	}
	if m.Peek(x) != 1 {
		t.Fatalf("CAS result not in memory: %d", m.Peek(x))
	}
}

// TestCASFailureReportsPrev: a failed CAS returns the witnessed value and
// counts in stats.
func TestCASFailureReportsPrev(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	x := m.Reserve(1)
	m.Poke(x, 42)
	m.Spawn(0, func(p *Proc) {
		prev, ok := p.CAS(x, 0, 1)
		if ok || prev != 42 {
			t.Errorf("CAS(0->1) on 42: prev=%d ok=%v", prev, ok)
		}
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if m.Stats().CASFails != 1 {
		t.Fatalf("CASFails = %d, want 1", m.Stats().CASFails)
	}
}

// TestRoosterPreemptionDrains: with roosters enabled, an unfenced store
// becomes visible within one interval plus a context switch — the §5.1
// guarantee Cadence relies on.
func TestRoosterPreemptionDrains(t *testing.T) {
	const interval = 10000
	m := newTestMachine(t, Config{RoosterInterval: interval, Cores: 2})
	x := m.Reserve(1)
	var peer uint64
	m.Spawn(0, func(p *Proc) {
		p.Store(x, 5)
		for p.Now() < 3*interval { // spin without fencing
			p.Work(100)
		}
	})
	m.Spawn(1, func(p *Proc) {
		p.SleepUntil(4 * interval)
		peer = p.Load(x)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if peer != 5 {
		t.Fatalf("rooster preemption did not drain the store: peer read %d", peer)
	}
	if m.Stats().RoosterPreempts == 0 {
		t.Fatal("no rooster preemptions recorded")
	}
}

// TestNoRoosterNoDrain is the adversarial baseline: without roosters,
// fences or pressure, a store can stay invisible for an arbitrarily long
// time — the reason naive fence elision is unsafe (§4.1).
func TestNoRoosterNoDrain(t *testing.T) {
	m := newTestMachine(t, Config{})
	x := m.Reserve(1)
	var peer uint64
	m.Spawn(0, func(p *Proc) {
		p.Store(x, 5)
		for p.Now() < 1_000_000 {
			p.Work(1000)
		}
	})
	m.Spawn(1, func(p *Proc) {
		p.SleepUntil(900_000)
		peer = p.Load(x)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if peer != 0 {
		t.Fatalf("store drained with no drain trigger: peer read %d", peer)
	}
}

// TestSleepFastForwardsRooster: a sleeping proc is not charged a backlog of
// rooster preemptions on wake-up.
func TestSleepFastForwardsRooster(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, RoosterInterval: 1000})
	m.Spawn(0, func(p *Proc) {
		p.SleepUntil(100_000)
		p.Work(10)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if n := m.Stats().RoosterPreempts; n > 2 {
		t.Fatalf("woke into %d backlogged rooster preemptions", n)
	}
}

// TestDeterminism: identical configuration and programs give bit-identical
// executions; a different seed gives a different one.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) (Stats, uint64) {
		m := New(Config{Procs: 3, Seed: seed, Quantum: 64, RoosterInterval: 5000})
		x := m.Reserve(8)
		for i := 0; i < 3; i++ {
			m.Spawn(i, func(p *Proc) {
				for p.Now() < 200_000 {
					a := x + Addr(p.Rand()%8)
					if p.Rand()%4 == 0 {
						p.CAS(a, p.Load(a), p.Rand()%100)
					} else {
						p.Store(a, p.Rand())
					}
					p.OpDone()
				}
			})
		}
		if errs := m.Run(); errs != nil {
			t.Fatal(errs)
		}
		var sum uint64
		for i := 0; i < 8; i++ {
			sum = sum*1099511628211 + m.Peek(x+Addr(i))
		}
		return m.Stats(), sum
	}
	s1, h1 := run(7)
	s2, h2 := run(7)
	if s1 != s2 || h1 != h2 {
		t.Fatalf("same seed diverged:\n%+v %x\n%+v %x", s1, h1, s2, h2)
	}
	s3, h3 := run(8)
	if s1 == s3 && h1 == h3 {
		t.Fatal("different seeds produced identical executions (suspicious)")
	}
}

// TestProgramPanicReported: a panicking program (e.g. a simulated memory
// violation) surfaces as an error from Run, attributed to its proc.
func TestProgramPanicReported(t *testing.T) {
	m := newTestMachine(t, Config{})
	m.Spawn(0, func(p *Proc) { p.Work(10); panic("boom") })
	m.Spawn(1, func(p *Proc) { p.Work(100) })
	errs := m.Run()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "proc 0") || !strings.Contains(errs[0].Error(), "boom") {
		t.Fatalf("errs = %v", errs)
	}
}

// TestSingleProcSequentialConsistency: one process always observes its own
// program order (TSO is SC for a single processor). Property-based: an
// arbitrary op sequence matches a plain map model.
func TestSingleProcSequentialConsistency(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		m := New(Config{Procs: 1, Seed: seed, StoreBufCap: 4})
		base := m.Reserve(8)
		model := make(map[Addr]uint64)
		ok := true
		m.Spawn(0, func(p *Proc) {
			for _, op := range ops {
				a := base + Addr(op%8)
				switch (op >> 3) % 4 {
				case 0:
					v := uint64(op)
					p.Store(a, v)
					model[a] = v
				case 1:
					if got := p.Load(a); got != model[a] {
						ok = false
					}
				case 2:
					p.Fence()
				case 3:
					want := model[a]
					prev, swapped := p.CAS(a, want, want+1)
					if prev != want || !swapped {
						ok = false
					}
					model[a] = want + 1
				}
			}
		})
		if errs := m.Run(); errs != nil {
			return false
		}
		if !ok {
			return false
		}
		// After a final drain everything must be in memory.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantumDoesNotChangeSoloClocks: for independent programs the virtual
// clocks are a function of the program and seed alone, not the quantum.
func TestQuantumDoesNotChangeSoloClocks(t *testing.T) {
	run := func(quantum uint64) []uint64 {
		m := New(Config{Procs: 2, Seed: 3, Quantum: quantum})
		x := m.Reserve(2)
		for i := 0; i < 2; i++ {
			a := x + Addr(i) // disjoint addresses: no cross-proc reads
			m.Spawn(i, func(p *Proc) {
				for k := 0; k < 100; k++ {
					p.Store(a, uint64(k))
					p.Load(a)
					p.Fence()
					p.OpDone()
				}
			})
		}
		if errs := m.Run(); errs != nil {
			t.Fatal(errs)
		}
		return m.SortedClocks()
	}
	strict, loose := run(0), run(4096)
	for i := range strict {
		if strict[i] != loose[i] {
			t.Fatalf("quantum changed independent clocks: %v vs %v", strict, loose)
		}
	}
}

// TestReserveZeroed: reserved memory starts zeroed and Poke/Peek round-trip.
func TestReserveZeroed(t *testing.T) {
	m := New(Config{Procs: 1})
	a := m.Reserve(4)
	for i := Addr(0); i < 4; i++ {
		if m.Peek(a+i) != 0 {
			t.Fatalf("fresh word %d not zero", i)
		}
	}
	m.Poke(a+2, 99)
	if m.Peek(a+2) != 99 {
		t.Fatal("Poke/Peek mismatch")
	}
}

// TestOpDoneCounts: OpDone increments the per-proc op counter used for
// throughput measurement.
func TestOpDoneCounts(t *testing.T) {
	m := New(Config{Procs: 1})
	m.Spawn(0, func(p *Proc) {
		for i := 0; i < 17; i++ {
			p.OpDone()
		}
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if got := m.Proc(0).Ops(); got != 17 {
		t.Fatalf("Ops = %d, want 17", got)
	}
}
