// Package simexp runs the paper's experiments (§7) on the TSO machine
// simulator, in the virtual-cycle domain. It is the simulated counterpart
// of internal/harness: the same workloads (mixed search/insert/delete over
// the Harris–Michael list, §7.1 half-full initialization, §7.2 delay
// schedule), but throughput is measured in operations per million simulated
// cycles, fences cost real simulated cycles, and every run is bit-for-bit
// reproducible from its seed — which makes the figure-shape assertions in
// the test suite exact rather than statistical.
//
// Wall-clock experiments (internal/harness) validate the native
// implementation on a real machine; these validate the algorithms on the
// memory model the paper actually argues about. EXPERIMENTS.md reports
// both.
package simexp

import (
	"fmt"
	"io"

	"qsense/internal/sim"
	"qsense/internal/sim/simlist"
	"qsense/internal/sim/simsmr"
)

// Config describes one simulated run.
type Config struct {
	// Scheme is one of simsmr.Schemes().
	Scheme string
	// Procs is the number of simulated worker processes.
	Procs int
	// KeyRange is the key universe [1, KeyRange]; the list is pre-filled
	// to half of it (§7.1).
	KeyRange uint64
	// UpdatePct is the update percentage (split evenly between inserts
	// and deletes); the rest are searches.
	UpdatePct int
	// Duration is the run length in simulated cycles per proc.
	Duration uint64
	// Seed makes the run reproducible.
	Seed uint64

	// RoosterInterval is the rooster period T in cycles. Default 100000
	// (a small multiple of the context-switch cost, as in practice).
	RoosterInterval uint64
	// Quantum trades interleaving granularity for simulation speed.
	// Default 256 cycles.
	Quantum uint64
	// Capacity overrides the automatic node pool sizing.
	Capacity int
	// MemoryLimit is the retired-node budget (OOM stand-in); 0 disables.
	MemoryLimit int
	// SampleCycles, when > 0, buckets completed ops into time-series
	// samples of this width (the per-second samples of Figure 5 bottom).
	SampleCycles uint64
	// Stalls are [start,end) windows during which proc 0 sleeps (§7.2).
	Stalls [][2]uint64
	// SMR tunes the scheme configuration after defaults.
	SMR func(*simsmr.Config)

	// DwellEvery, when > 0, turns every DwellEvery-th search into a
	// dwell read: the proc holds the protected node and re-reads it for
	// DwellCycles (simlist.Handle.Read) — an application using a
	// reference under hazard pointer protection, the paper's R5. The
	// unsafe ablations fault under this pattern.
	DwellEvery  int
	DwellCycles uint64
}

func (c Config) withDefaults() Config {
	if c.RoosterInterval == 0 {
		c.RoosterInterval = 100_000
	}
	if c.Quantum == 0 {
		c.Quantum = 256
	}
	if c.UpdatePct < 0 || c.UpdatePct > 100 {
		panic("simexp: UpdatePct out of range")
	}
	if c.Capacity == 0 {
		// Keys + memory budget + scan backlog + leak headroom for
		// "none" (operations retire at most one node each; assume one
		// per 1000 cycles per proc, far above observed rates).
		c.Capacity = int(c.KeyRange) + c.MemoryLimit +
			c.Procs*int(c.Duration/1000) + 4096
	}
	return c
}

// Bucket is one time-series sample.
type Bucket struct {
	// T is the bucket's start, in cycles.
	T uint64
	// Ops completed in the bucket, across all procs.
	Ops uint64
	// OpsPerMcycle is the bucket's throughput.
	OpsPerMcycle float64
	// InFallback and Failed snapshot the domain state observed in the
	// bucket (true if ever observed during it).
	InFallback bool
	Failed     bool
	// MaxPending is the largest retired-but-unfreed node count observed
	// during the bucket — the memory-growth series of the robustness
	// argument (unbounded for a blocked QSBR, bounded for QSense).
	MaxPending int
}

// Result is the outcome of one run.
type Result struct {
	Cfg          Config
	Ops          uint64
	Cycles       uint64 // longest proc virtual time
	OpsPerMcycle float64
	Buckets      []Bucket
	Reclaim      simsmr.Stats
	Machine      sim.Stats
	// PoolLive is the node count still allocated after CollectAll (the
	// structure itself; more for the leaky scheme).
	PoolLive int
	Failed   bool
	// FailedAt is the earliest cycle at which a proc observed Failed.
	FailedAt uint64
	// Errs are proc errors; a correct scheme produces none, an unsafe
	// ablation produces *mem.Violation here.
	Errs []error
}

// Run executes one simulated experiment.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	m := sim.New(sim.Config{
		Procs:           cfg.Procs,
		Seed:            cfg.Seed,
		RoosterInterval: cfg.RoosterInterval,
		Quantum:         cfg.Quantum,
	})
	l := simlist.New(m, cfg.Capacity)
	fillHalf(l, cfg.KeyRange, cfg.Seed)
	smrCfg := simsmr.Config{
		Machine: m, Pool: l.Pool(), HPs: simlist.HPs,
		Q: 16, R: 0, MemoryLimit: cfg.MemoryLimit,
	}
	if cfg.SMR != nil {
		cfg.SMR(&smrCfg)
	}
	d, err := simsmr.New(cfg.Scheme, smrCfg)
	if err != nil {
		return Result{Cfg: cfg, Errs: []error{err}}
	}

	nBuckets := 0
	if cfg.SampleCycles > 0 {
		nBuckets = int(cfg.Duration/cfg.SampleCycles) + 1
	}
	type series struct {
		ops              []uint64
		fallback, failed []bool
	}
	perProc := make([]series, cfg.Procs)
	var pendMax []int // shared across procs; execution is serialized
	if nBuckets > 0 {
		pendMax = make([]int, nBuckets)
	}
	var failedAt uint64

	insCut := uint64(cfg.UpdatePct) / 2
	delCut := uint64(cfg.UpdatePct)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		if nBuckets > 0 {
			perProc[i] = series{
				ops:      make([]uint64, nBuckets),
				fallback: make([]bool, nBuckets),
				failed:   make([]bool, nBuckets),
			}
		}
		m.Spawn(i, func(p *sim.Proc) {
			h := l.NewHandle(p, d.Guard(i))
			stall := 0
			for p.Now() < cfg.Duration {
				if i == 0 && stall < len(cfg.Stalls) {
					w := cfg.Stalls[stall]
					if p.Now() >= w[0] && p.Now() < w[1] {
						p.SleepUntil(w[1])
						stall++
						continue
					}
					if p.Now() >= w[1] {
						stall++
					}
				}
				if d.Failed() {
					// OOM: the process halts (§7.3). Record when.
					if failedAt == 0 || p.Now() < failedAt {
						failedAt = p.Now()
					}
					return
				}
				k := 1 + p.Rand()%cfg.KeyRange
				switch r := p.Rand() % 100; {
				case r < insCut:
					h.Insert(k)
				case r < delCut:
					h.Delete(k)
				default:
					if cfg.DwellEvery > 0 && int(p.Ops())%cfg.DwellEvery == 0 {
						h.Read(k, func(load func() uint64) {
							deadline := p.Now() + cfg.DwellCycles
							for p.Now() < deadline {
								load()
								p.Work(100)
							}
						})
					} else {
						h.Contains(k)
					}
				}
				p.OpDone()
				if nBuckets > 0 {
					b := int(p.Now() / cfg.SampleCycles)
					if b >= nBuckets {
						b = nBuckets - 1
					}
					perProc[i].ops[b]++
					perProc[i].fallback[b] = perProc[i].fallback[b] || d.InFallback()
					perProc[i].failed[b] = perProc[i].failed[b] || d.Failed()
					if pend := d.Pending(); pend > pendMax[b] {
						pendMax[b] = pend
					}
				}
			}
		})
	}
	errs := m.Run()

	res := Result{Cfg: cfg, Errs: errs, Failed: d.Failed(), FailedAt: failedAt}
	for i := 0; i < cfg.Procs; i++ {
		res.Ops += m.Proc(i).Ops()
	}
	res.Machine = m.Stats()
	res.Cycles = res.Machine.MaxClock
	if res.Cycles > 0 {
		res.OpsPerMcycle = float64(res.Ops) / (float64(res.Cycles) / 1e6)
	}
	if nBuckets > 0 {
		res.Buckets = make([]Bucket, nBuckets)
		for b := 0; b < nBuckets; b++ {
			bk := &res.Buckets[b]
			bk.T = uint64(b) * cfg.SampleCycles
			for i := range perProc {
				bk.Ops += perProc[i].ops[b]
				bk.InFallback = bk.InFallback || perProc[i].fallback[b]
				bk.Failed = bk.Failed || perProc[i].failed[b]
			}
			bk.MaxPending = pendMax[b]
			bk.OpsPerMcycle = float64(bk.Ops) / (float64(cfg.SampleCycles) / 1e6)
		}
	}
	d.CollectAll()
	res.Reclaim = d.Stats()
	res.PoolLive = l.Pool().Stats().Live
	return res
}

// fillHalf performs the §7.1 initialization host-side: insert random keys
// until the structure holds half the key range.
func fillHalf(l *simlist.List, keyRange uint64, seed uint64) {
	s := seed ^ 0xF111F111
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	target := int(keyRange / 2)
	for n := 0; n < target; {
		if l.FillHost([]uint64{1 + next()%keyRange}) == 1 {
			n++
		}
	}
}

// Point is one scalability measurement.
type Point struct {
	Procs int
	Res   Result
}

// Curve is a scheme's scalability series.
type Curve struct {
	Scheme string
	Points []Point
}

// Scalability sweeps proc counts for each scheme, holding everything else
// fixed — Figure 3 / Figure 5 (top) in the cycle domain.
func Scalability(base Config, schemes []string, procs []int, log io.Writer) []Curve {
	curves := make([]Curve, 0, len(schemes))
	for _, scheme := range schemes {
		c := Curve{Scheme: scheme}
		for _, n := range procs {
			cfg := base
			cfg.Scheme = scheme
			cfg.Procs = n
			cfg.Seed = base.Seed + uint64(n)
			res := Run(cfg)
			c.Points = append(c.Points, Point{Procs: n, Res: res})
			if log != nil {
				fmt.Fprintf(log, "%-8s procs=%-3d %10.1f ops/Mcycle\n", scheme, n, res.OpsPerMcycle)
			}
		}
		curves = append(curves, c)
	}
	return curves
}

// Fig3 returns the Figure 3 configuration in the cycle domain: the linked
// list with 10% updates, None vs QSense vs HP. KeyRange is scaled from the
// paper's 2000 (flag-adjustable in cmd/qsense-sim) to keep simulated
// traversals tractable.
func Fig3(keyRange uint64, duration uint64) (Config, []string) {
	return Config{
		KeyRange: keyRange, UpdatePct: 10, Duration: duration,
	}, []string{"none", "qsense", "hp"}
}

// Fig5Top returns the Figure 5 (top-left) configuration: 50% updates, all
// four schemes.
func Fig5Top(keyRange uint64, duration uint64) (Config, []string) {
	return Config{
		KeyRange: keyRange, UpdatePct: 50, Duration: duration,
	}, []string{"none", "qsbr", "qsense", "hp"}
}

// Fig5Bottom returns the Figure 5 (bottom) configuration: 8 procs, 50%
// updates, proc 0 stalled in windows 10-20%, 30-40%, 50-60%, 70-80%,
// 90-100% of the run (the paper's 10-second stalls every 20 seconds),
// sampled at 1% resolution.
func Fig5Bottom(keyRange uint64, duration uint64) (Config, []string) {
	var stalls [][2]uint64
	for i := 0; i < 5; i++ {
		start := duration * uint64(10+20*i) / 100
		end := duration * uint64(20+20*i) / 100
		stalls = append(stalls, [2]uint64{start, end})
	}
	return Config{
		Procs: 8, KeyRange: keyRange, UpdatePct: 50, Duration: duration,
		Stalls: stalls, SampleCycles: duration / 100,
	}, []string{"qsbr", "qsense", "hp"}
}
