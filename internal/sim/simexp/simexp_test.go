package simexp

import (
	"testing"

	"qsense/internal/sim/simsmr"
)

// TestDeterministicRuns: a Result is a pure function of its Config.
func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Scheme: "qsense", Procs: 4, KeyRange: 64, UpdatePct: 50,
		Duration: 500_000, Seed: 11, SampleCycles: 50_000,
	}
	a, b := Run(cfg), Run(cfg)
	if a.Ops != b.Ops || a.Cycles != b.Cycles || a.Reclaim != b.Reclaim {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a.Reclaim, b.Reclaim)
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Fatalf("bucket %d diverged", i)
		}
	}
}

// TestFig3Shape asserts Figure 3's qualitative result in the cycle domain:
// at every proc count, hp trails qsense by a wide margin (the per-node
// fence) and qsense tracks the leaky baseline closely. Deterministic, so
// strict inequalities are stable.
func TestFig3Shape(t *testing.T) {
	base, schemes := Fig3(128, 1_200_000)
	base.Seed = 3
	curves := Scalability(base, schemes, []int{1, 2, 4}, nil)
	byScheme := map[string][]Point{}
	for _, c := range curves {
		byScheme[c.Scheme] = c.Points
		for _, p := range c.Points {
			if len(p.Res.Errs) != 0 {
				t.Fatalf("%s/%d: %v", c.Scheme, p.Procs, p.Res.Errs)
			}
		}
	}
	for i := range byScheme["none"] {
		none := byScheme["none"][i].Res.OpsPerMcycle
		qs := byScheme["qsense"][i].Res.OpsPerMcycle
		hp := byScheme["hp"][i].Res.OpsPerMcycle
		procs := byScheme["none"][i].Procs
		if hp >= qs {
			t.Errorf("procs=%d: hp (%.1f) not below qsense (%.1f)", procs, hp, qs)
		}
		if qs > none*1.02 {
			t.Errorf("procs=%d: qsense (%.1f) above none (%.1f)", procs, qs, none)
		}
		if qs < 1.5*hp {
			t.Errorf("procs=%d: qsense (%.1f) not well above hp (%.1f) — fence cost not visible", procs, qs, hp)
		}
	}
}

// TestFig5TopShape asserts the top row's ordering with 50%% updates:
// none >= qsbr >= qsense >> hp.
func TestFig5TopShape(t *testing.T) {
	base, schemes := Fig5Top(128, 1_200_000)
	base.Seed = 7
	curves := Scalability(base, schemes, []int{4}, nil)
	v := map[string]float64{}
	for _, c := range curves {
		if len(c.Points[0].Res.Errs) != 0 {
			t.Fatalf("%s: %v", c.Scheme, c.Points[0].Res.Errs)
		}
		v[c.Scheme] = c.Points[0].Res.OpsPerMcycle
	}
	// none, qsbr and qsense cluster tightly (single deterministic run:
	// contention luck moves them a few percent either way); hp sits far
	// below all of them. That separation is the figure's content.
	cluster := []string{"none", "qsbr", "qsense"}
	lo, hi := v["none"], v["none"]
	for _, s := range cluster {
		lo, hi = min(lo, v[s]), max(hi, v[s])
	}
	if hi > lo*1.15 {
		t.Fatalf("none/qsbr/qsense spread too wide: %+v", v)
	}
	if v["hp"] > lo*0.6 {
		t.Fatalf("hp (%.1f) not well below the cluster (min %.1f): %+v", v["hp"], lo, v)
	}
}

// fig5BottomRun executes one delay-experiment run with the tuning the CLI
// uses (cmd/qsense-sim -exp fig5bottom): the stall accumulation (~65
// retires per guard per 800k-cycle stall) sits well above C=32 and the
// memory budget 320, while the healthy backlog (~5 per guard, skewed
// transiently to ~25 by cleanup retires) sits below C.
func fig5BottomRun(t *testing.T, scheme string, limit int) Result {
	t.Helper()
	base, _ := Fig5Bottom(64, 8_000_000)
	base.Scheme = scheme
	base.Seed = 19
	base.MemoryLimit = limit
	base.SMR = func(c *simsmr.Config) {
		c.Q = 8
		c.R = 24
		c.C = 32
		c.PresenceWindow = 50_000
	}
	return Run(base)
}

// TestFig5BottomQSBRFails: the stalled proc freezes grace periods and QSBR
// blows the memory budget during the first stall — the orange line.
func TestFig5BottomQSBRFails(t *testing.T) {
	res := fig5BottomRun(t, "qsbr", 320)
	if len(res.Errs) != 0 {
		t.Fatal(res.Errs)
	}
	if !res.Failed {
		t.Fatalf("qsbr survived the stalls (pending=%d)", res.Reclaim.Pending)
	}
	if res.FailedAt > res.Cfg.Duration/2 {
		t.Fatalf("qsbr failed too late: %d of %d", res.FailedAt, res.Cfg.Duration)
	}
	// After failure the time series flatlines.
	tail := res.Buckets[len(res.Buckets)-5:]
	for _, b := range tail {
		if b.Ops != 0 {
			t.Fatalf("ops recorded after OOM failure: %+v", tail)
		}
	}
}

// TestFig5BottomQSenseSurvives: QSense switches to the fallback path during
// each stall, stays within the same memory budget, and switches back — the
// green line.
func TestFig5BottomQSenseSurvives(t *testing.T) {
	res := fig5BottomRun(t, "qsense", 320)
	if len(res.Errs) != 0 {
		t.Fatal(res.Errs)
	}
	if res.Failed {
		t.Fatalf("qsense breached the memory budget: %+v", res.Reclaim)
	}
	if res.Reclaim.SwitchesToFallback == 0 || res.Reclaim.SwitchesToFast == 0 {
		t.Fatalf("qsense did not switch both ways: %+v", res.Reclaim)
	}
	sawFallback := false
	for _, b := range res.Buckets {
		sawFallback = sawFallback || b.InFallback
	}
	if !sawFallback {
		t.Fatal("no bucket observed the fallback path")
	}
	// The run keeps making progress to the end.
	tail := res.Buckets[len(res.Buckets)-3:]
	for _, b := range tail {
		if b.Ops == 0 {
			t.Fatalf("qsense stopped making progress: %+v", tail)
		}
	}
}

// TestFig5BottomHPSurvivesButSlower: HP also survives (robust) but pays the
// fence on every node — QSense outperforms it overall, the 2-3x headline.
func TestFig5BottomHPSurvivesButSlower(t *testing.T) {
	hp := fig5BottomRun(t, "hp", 320)
	if len(hp.Errs) != 0 || hp.Failed {
		t.Fatalf("hp run broken: errs=%v failed=%v", hp.Errs, hp.Failed)
	}
	qs := fig5BottomRun(t, "qsense", 320)
	if qs.Ops <= hp.Ops {
		t.Fatalf("qsense (%d ops) did not outperform hp (%d ops)", qs.Ops, hp.Ops)
	}
}

// TestUnsafeAblationsFaultUnderLoad: the NoFence and DisableDeferral
// ablations produce real use-after-free violations under the standard
// workload — §4.1's prediction, end to end.
func TestUnsafeAblationsFaultUnderLoad(t *testing.T) {
	// Every other search dwells on its protected node for ~2000 cycles
	// (an application using the reference, the paper's R5) — long enough
	// for a concurrent unlink+retire+scan+free to land inside the
	// protection window when the protection is invisible.
	mk := func(scheme string, mut func(*simsmr.Config)) Result {
		return Run(Config{
			Scheme: scheme, Procs: 8, KeyRange: 32, UpdatePct: 50,
			Duration: 2_000_000, Seed: 23, RoosterInterval: 100_000,
			DwellEvery: 1, DwellCycles: 3000,
			SMR: func(c *simsmr.Config) {
				c.R = 1
				mut(c)
			},
		})
	}
	noFence := mk("hp", func(c *simsmr.Config) { c.NoFence = true })
	if len(noFence.Errs) == 0 {
		t.Error("unfenced HP survived a heavy-update run without a violation")
	}
	noDefer := mk("cadence", func(c *simsmr.Config) { c.DisableDeferral = true })
	if len(noDefer.Errs) == 0 {
		t.Error("deferral-free cadence survived a heavy-update run without a violation")
	}
	// Controls: the safe versions run the same load clean.
	if r := mk("hp", func(c *simsmr.Config) {}); len(r.Errs) != 0 {
		t.Errorf("fenced hp faulted: %v", r.Errs)
	}
	if r := mk("cadence", func(c *simsmr.Config) {}); len(r.Errs) != 0 {
		t.Errorf("cadence faulted: %v", r.Errs)
	}
}

// TestLeakyBaselineLeaks: the "none" scheme's pool keeps growing — the
// reason reclamation exists at all.
func TestLeakyBaselineLeaks(t *testing.T) {
	res := Run(Config{
		Scheme: "none", Procs: 2, KeyRange: 32, UpdatePct: 50,
		Duration: 500_000, Seed: 2,
	})
	if len(res.Errs) != 0 {
		t.Fatal(res.Errs)
	}
	if res.Reclaim.Retired == 0 {
		t.Fatal("workload retired nothing; leak unobservable")
	}
	if res.Reclaim.Freed != 0 {
		t.Fatal("leaky baseline freed nodes")
	}
	if res.PoolLive <= int(32/2) {
		t.Fatalf("pool live %d does not reflect the leak", res.PoolLive)
	}
}
