// Package simsmr implements the paper's reclamation schemes on the TSO
// machine simulator (internal/sim), mirroring internal/reclaim one-to-one:
//
//	none     — leaky baseline
//	qsbr     — quiescent-state-based reclamation (§3.1)
//	hp       — classic hazard pointers, fence per Protect (§3.2)
//	cadence  — hazard pointers without fences: rooster preemption + deferred
//	           reclamation (§5.1)
//	qsense   — the hybrid (§5.2, Algorithm 5)
//
// Where internal/reclaim substitutes a behavioural analog for the TSO
// effects Go cannot express (pending/shared slot pairs, modeled fence
// cost), here the effects are real machine phenomena: a hazard pointer is a
// word in simulated memory, Protect is a store that sits in the proc's
// store buffer until a fence (hp) or a rooster preemption (cadence/qsense)
// drains it, and a scan that reads the slot too early genuinely misses the
// protection. The unsafe ablations (NoFence, DisableDeferral) therefore
// produce detectable use-after-free violations, exactly as §4.1 argues.
//
// Execution is serialized by the machine, so host-side bookkeeping (retire
// lists, counters) needs no synchronization; only protocol state that the
// algorithms genuinely share (hazard pointer slots, epochs, flags) lives in
// simulated memory and pays simulated costs.
package simsmr

import (
	"fmt"

	"qsense/internal/mem"
	"qsense/internal/sim"
	"qsense/internal/sim/simmem"
)

// Config parameterizes a simulated reclamation domain.
type Config struct {
	// Machine and Pool are the substrate; both are required. Every proc
	// of the machine gets a guard.
	Machine *sim.Machine
	Pool    *simmem.Pool

	// HPs is the number of hazard pointers per proc (K).
	HPs int
	// Q is the quiescence threshold (§3.1). Default 16.
	Q int
	// R is the scan threshold (§5.1). Default 2*N*K + 32.
	R int
	// C is QSense's fallback threshold (§5.2). Default LegalC-style:
	// max(2*Q, N*K+R, R) + 1, doubled for slack.
	C int
	// MemoryLimit marks the domain Failed once pending retires exceed it
	// (the OOM stand-in). 0 disables.
	MemoryLimit int

	// Epsilon is the paper's ε in cycles, added to the rooster interval
	// for the old-enough test. It must cover the worst-case lag between
	// a rooster boundary and the preemption taking effect (one maximal
	// step) plus cross-proc clock skew (one scheduling quantum). Default
	// CtxSwitch + Quantum + 2048.
	Epsilon uint64

	// PresenceWindow is how recently (in cycles) a proc must have
	// signalled presence to count as active for QSense's switch-back.
	// Default 16 * RoosterInterval.
	PresenceWindow uint64

	// NoFence removes hp's per-Protect fence. UNSAFE: reproduces the
	// §3.2 reordering bug; only for the ablation tests.
	NoFence bool
	// DisableDeferral removes cadence/qsense's old-enough check. UNSAFE:
	// reproduces the §4.1 bug; only for the ablation tests.
	DisableDeferral bool
}

func (c Config) withDefaults() Config {
	n := c.Machine.Config().Procs
	if c.Q <= 0 {
		c.Q = 16
	}
	if c.R <= 0 {
		c.R = 2*n*c.HPs + 32
	}
	if c.C <= 0 {
		legal := maxInt(2*c.Q, n*c.HPs+c.R, c.R) + 1
		c.C = 2 * legal
	}
	if c.Epsilon == 0 {
		mc := c.Machine.Config()
		c.Epsilon = mc.Costs.CtxSwitch + mc.Quantum + 2048
	}
	if c.PresenceWindow == 0 {
		c.PresenceWindow = 16 * c.Machine.Config().RoosterInterval
	}
	return c
}

func (c Config) validate(needRooster bool) error {
	if c.Machine == nil || c.Pool == nil {
		return fmt.Errorf("simsmr: Machine and Pool are required")
	}
	if c.HPs <= 0 {
		return fmt.Errorf("simsmr: HPs must be positive")
	}
	if needRooster && c.Machine.Config().RoosterInterval == 0 && !c.DisableDeferral {
		return fmt.Errorf("simsmr: cadence/qsense require Machine.RoosterInterval > 0 (no roosters, no visibility bound)")
	}
	return nil
}

// Guard is a proc's reclamation handle, bound to its *sim.Proc at
// construction. Mirrors reclaim.Guard.
type Guard interface {
	Begin()
	Protect(i int, r mem.Ref)
	Retire(r mem.Ref)
	ClearHPs()
}

// Domain mirrors reclaim.Domain for the simulated schemes.
type Domain interface {
	Guard(i int) Guard
	Name() string
	// Pending is the number of retired-but-unfreed nodes.
	Pending() int
	// Failed reports the MemoryLimit breach (OOM stand-in).
	Failed() bool
	// InFallback reports qsense's current path (false elsewhere).
	InFallback() bool
	Stats() Stats
	// CollectAll force-frees every node still awaiting reclamation,
	// host-side and cost-free. Call only after Machine.Run returned.
	CollectAll()
}

// Stats is a snapshot of domain counters. Counters are host-side plain
// ints: the machine serializes execution, so they are exact.
type Stats struct {
	Scheme             string
	Retired, Freed     uint64
	Pending            int
	Scans              uint64
	QuiescentStates    uint64
	EpochAdvances      uint64
	SwitchesToFallback uint64
	SwitchesToFast     uint64
	InFallback         bool
	Failed             bool
}

// New constructs the named simulated scheme.
func New(name string, cfg Config) (Domain, error) {
	switch name {
	case "none":
		return NewNone(cfg)
	case "qsbr":
		return NewQSBR(cfg)
	case "hp":
		return NewHP(cfg)
	case "cadence":
		return NewCadence(cfg)
	case "qsense":
		return NewQSense(cfg)
	}
	return nil, fmt.Errorf("simsmr: unknown scheme %q", name)
}

// Schemes lists the scheme names accepted by New, in evaluation order.
func Schemes() []string { return []string{"none", "qsbr", "hp", "cadence", "qsense"} }

// counters is the host-side stat block shared by all schemes.
type counters struct {
	retired, freed  uint64
	scans, quiesces uint64
	epochs          uint64
	toFall, toFast  uint64
	failed          bool
}

func (c *counters) pending() int { return int(c.retired - c.freed) }

func (c *counters) noteRetire(limit int) {
	c.retired++
	if limit > 0 && c.pending() > limit {
		c.failed = true
	}
}

func (c *counters) fill(s *Stats) {
	s.Retired, s.Freed = c.retired, c.freed
	s.Pending = c.pending()
	s.Scans, s.QuiescentStates = c.scans, c.quiesces
	s.EpochAdvances = c.epochs
	s.SwitchesToFallback, s.SwitchesToFast = c.toFall, c.toFast
	s.Failed = c.failed
}

// retiredNode is the paper's timestamped_node: stamp is virtual cycles for
// cadence/qsense, unused for qsbr/hp.
type retiredNode struct {
	ref   mem.Ref
	stamp uint64
}

// hpArray is the shared hazard pointer array: N*K words of simulated
// memory. Slot (w,i) is one word; scans read all of them with Load costs.
type hpArray struct {
	base sim.Addr
	k    int
}

func newHPArray(m *sim.Machine, procs, k int) hpArray {
	return hpArray{base: m.Reserve(procs * k), k: k}
}

func (h hpArray) slot(w, i int) sim.Addr { return h.base + sim.Addr(w*h.k+i) }

// snapshot reads every slot through p (paying N*K load costs) and returns
// the set of protected words.
func (h hpArray) snapshot(p *sim.Proc, procs int, buf map[uint64]struct{}) map[uint64]struct{} {
	if buf == nil {
		buf = make(map[uint64]struct{}, procs*h.k)
	} else {
		clear(buf)
	}
	for w := 0; w < procs; w++ {
		for i := 0; i < h.k; i++ {
			if v := p.Load(h.slot(w, i)); v != 0 {
				buf[v] = struct{}{}
			}
		}
	}
	return buf
}

func maxInt(a int, bs ...int) int {
	for _, b := range bs {
		if b > a {
			a = b
		}
	}
	return a
}
