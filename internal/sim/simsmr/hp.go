package simsmr

import (
	"qsense/internal/mem"
	"qsense/internal/sim"
)

// HP is Michael's classic hazard pointer scheme (§3.2) on the simulator.
// Protect stores to the shared slot and then executes a real simulated
// fence, draining the proc's store buffer — Algorithm 1, lines 2-3. The
// fence is the dominant per-node cost, which is the paper's entire
// motivation; the NoFence ablation removes it and is demonstrably unsafe
// on this machine (TestAlgorithm2NoFenceUnsafe).
type HP struct {
	cfg    Config
	cnt    counters
	hps    hpArray
	procs  int
	guards []*hpGuard
}

type hpGuard struct {
	d       *HP
	p       *sim.Proc
	w       int
	rl      []retiredNode
	retires int
	snap    map[uint64]struct{}
}

// NewHP builds a simulated hazard pointer domain.
func NewHP(cfg Config) (*HP, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.Machine.Config().Procs
	d := &HP{cfg: cfg, procs: n, hps: newHPArray(cfg.Machine, n, cfg.HPs)}
	for i := 0; i < n; i++ {
		d.guards = append(d.guards, &hpGuard{d: d, p: cfg.Machine.Proc(i), w: i})
	}
	return d, nil
}

// Guard implements Domain.
func (d *HP) Guard(i int) Guard { return d.guards[i] }

// Name implements Domain.
func (d *HP) Name() string { return "hp" }

// Pending implements Domain.
func (d *HP) Pending() int { return d.cnt.pending() }

// Failed implements Domain.
func (d *HP) Failed() bool { return d.cnt.failed }

// InFallback implements Domain.
func (d *HP) InFallback() bool { return false }

// Stats implements Domain.
func (d *HP) Stats() Stats {
	s := Stats{Scheme: "hp"}
	d.cnt.fill(&s)
	return s
}

// CollectAll implements Domain.
func (d *HP) CollectAll() {
	for _, g := range d.guards {
		for _, n := range g.rl {
			d.cfg.Pool.Reclaim(n.ref)
			d.cnt.freed++
		}
		g.rl = g.rl[:0]
	}
}

func (g *hpGuard) Begin() {}

// Protect publishes slot i and fences (unless the unsafe ablation).
func (g *hpGuard) Protect(i int, r mem.Ref) {
	g.p.Store(g.d.hps.slot(g.w, i), uint64(r.Untagged()))
	if !g.d.cfg.NoFence {
		g.p.Fence()
	}
}

// ClearHPs zeroes this guard's slots (no fence needed: a late-draining
// clear only delays reclamation).
func (g *hpGuard) ClearHPs() {
	for i := 0; i < g.d.cfg.HPs; i++ {
		g.p.Store(g.d.hps.slot(g.w, i), 0)
	}
}

func (g *hpGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("simsmr: retire of nil Ref")
	}
	g.rl = append(g.rl, retiredNode{ref: r.Untagged()})
	g.d.cnt.noteRetire(g.d.cfg.MemoryLimit)
	g.retires++
	if g.retires%g.d.cfg.R == 0 {
		g.scan()
	}
}

// scan is Michael's scan: snapshot all N*K slots (paying the loads), free
// the retirees not in the snapshot.
func (g *hpGuard) scan() {
	g.d.cnt.scans++
	g.snap = g.d.hps.snapshot(g.p, g.d.procs, g.snap)
	kept := g.rl[:0]
	for _, n := range g.rl {
		if _, prot := g.snap[uint64(n.ref)]; prot {
			kept = append(kept, n)
		} else {
			g.d.cfg.Pool.Free(g.p, n.ref)
			g.d.cnt.freed++
		}
	}
	g.rl = kept
}
