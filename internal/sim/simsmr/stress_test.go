package simsmr_test

import (
	"testing"

	"qsense/internal/sim"
	"qsense/internal/sim/simlist"
	"qsense/internal/sim/simsmr"
)

// stressCfg parameterizes one simulated list stress run.
type stressCfg struct {
	scheme   string
	procs    int
	capacity int
	keyRange uint64
	duration uint64
	seed     uint64
	rooster  uint64
	smr      func(*simsmr.Config) // optional tuning
	stall    [2]uint64            // proc 0 sleeps [start,end) when nonzero
	check    func(p *sim.Proc, d simsmr.Domain)
}

// runListStress executes a mixed read/update workload (50% searches, 25%
// inserts, 25% deletes) on the simulated Harris-Michael list.
func runListStress(t *testing.T, sc stressCfg) ([]error, simsmr.Domain, *simlist.List) {
	t.Helper()
	m := sim.New(sim.Config{Procs: sc.procs, Seed: sc.seed, RoosterInterval: sc.rooster})
	l := simlist.New(m, sc.capacity)
	var fill []uint64
	for k := uint64(2); k <= sc.keyRange; k += 2 {
		fill = append(fill, k)
	}
	l.FillHost(fill)
	cfg := simsmr.Config{Machine: m, Pool: l.Pool(), HPs: simlist.HPs, Q: 4, R: 16}
	if sc.smr != nil {
		sc.smr(&cfg)
	}
	d, err := simsmr.New(sc.scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.procs; i++ {
		m.Spawn(i, func(p *sim.Proc) {
			h := l.NewHandle(p, d.Guard(p.ID()))
			n := 0
			for p.Now() < sc.duration {
				if p.ID() == 0 && sc.stall[1] > 0 && p.Now() >= sc.stall[0] && p.Now() < sc.stall[1] {
					p.SleepUntil(sc.stall[1])
					continue
				}
				if d.Failed() {
					return
				}
				k := 1 + p.Rand()%sc.keyRange
				switch p.Rand() % 100 {
				case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24:
					h.Insert(k)
				case 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49:
					h.Delete(k)
				default:
					h.Contains(k)
				}
				p.OpDone()
				n++
				if sc.check != nil && n%32 == 0 {
					sc.check(p, d)
				}
			}
		})
	}
	errs := m.Run()
	return errs, d, l
}

// TestSchemeConformanceOnList: every scheme must run the concurrent list
// without memory violations and leave a structurally valid list; the
// reclaiming schemes must actually free during the run, and after
// CollectAll the pool's live count must equal the reachable node count
// (zero leaks, zero lost nodes).
func TestSchemeConformanceOnList(t *testing.T) {
	for _, scheme := range simsmr.Schemes() {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(scheme, func(t *testing.T) {
				// T must dwarf the context-switch cost (paper: T is
				// milliseconds, i.e. millions of cycles); 50k cycles
				// keeps preemption overhead ~6% while still giving
				// several deferral windows per run.
				errs, d, l := runListStress(t, stressCfg{
					scheme: scheme, procs: 4, capacity: 4096,
					keyRange: 32, duration: 400_000, seed: seed, rooster: 50_000,
				})
				if errs != nil {
					t.Fatalf("memory violations under %s: %v", scheme, errs)
				}
				if _, bad := l.Validate(); bad != "" {
					t.Fatalf("invalid list under %s: %s", scheme, bad)
				}
				st := d.Stats()
				if scheme == "none" {
					if st.Freed != 0 {
						t.Fatalf("leaky scheme freed %d nodes", st.Freed)
					}
					return
				}
				if st.Retired > 50 && st.Freed == 0 {
					t.Fatalf("%s retired %d nodes but freed none during the run", scheme, st.Retired)
				}
				d.CollectAll()
				if live, reach := l.Pool().Stats().Live, l.CountReachable(); live != reach {
					t.Fatalf("%s: %d live vs %d reachable after CollectAll", scheme, live, reach)
				}
			})
		}
	}
}

// TestQSBRStallFails: a stalled proc freezes QSBR's grace periods; with a
// memory budget the domain fails — the orange line of Figure 5 (bottom).
func TestQSBRStallFails(t *testing.T) {
	errs, d, _ := runListStress(t, stressCfg{
		scheme: "qsbr", procs: 3, capacity: 4096,
		keyRange: 32, duration: 900_000, seed: 5,
		smr:   func(c *simsmr.Config) { c.MemoryLimit = 120 },
		stall: [2]uint64{60_000, 850_000},
	})
	if errs != nil {
		t.Fatal(errs)
	}
	if !d.Failed() {
		t.Fatalf("QSBR survived a long stall within a memory budget (pending=%d)", d.Pending())
	}
}

// TestQSBRNoStallSurvives is the control: without the stall the same
// budget is never approached.
func TestQSBRNoStallSurvives(t *testing.T) {
	errs, d, _ := runListStress(t, stressCfg{
		scheme: "qsbr", procs: 3, capacity: 4096,
		keyRange: 32, duration: 900_000, seed: 5,
		smr: func(c *simsmr.Config) { c.MemoryLimit = 120 },
	})
	if errs != nil {
		t.Fatal(errs)
	}
	if d.Failed() {
		t.Fatalf("QSBR failed without any stall (pending=%d)", d.Pending())
	}
}

// TestQSenseStallSwitchesAndSurvives: under the same stall QSense switches
// to the fallback path, keeps reclaiming (bounded memory), and switches
// back once the stalled proc returns — Figure 5 (bottom), green line.
func TestQSenseStallSwitchesAndSurvives(t *testing.T) {
	errs, d, l := runListStress(t, stressCfg{
		scheme: "qsense", procs: 4, capacity: 8192,
		keyRange: 32, duration: 1_400_000, seed: 5, rooster: 50_000,
		smr: func(c *simsmr.Config) {
			c.C = 16
			c.MemoryLimit = 4000
			// The presence window must be shorter than the stall or
			// the stalled proc still looks active and the paths flap.
			c.PresenceWindow = 100_000
		},
		stall: [2]uint64{100_000, 900_000},
	})
	if errs != nil {
		t.Fatal(errs)
	}
	st := d.Stats()
	if st.SwitchesToFallback == 0 {
		t.Fatalf("qsense never engaged the fallback path under an 800k-cycle stall: %+v", st)
	}
	if st.SwitchesToFast == 0 {
		t.Fatalf("qsense never returned to the fast path after the stall: %+v", st)
	}
	if st.Failed {
		t.Fatalf("qsense breached the memory budget: %+v", st)
	}
	if _, bad := l.Validate(); bad != "" {
		t.Fatalf("invalid list: %s", bad)
	}
}

// TestHPPendingBounded checks the liveness bound behind Property 2 for the
// hazard pointer scheme: a guard's backlog after a scan is at most the N*K
// protected nodes plus the R retires accumulated since, so system-wide
// pending never exceeds N*(N*K + R) (checked live, during the run).
func TestHPPendingBounded(t *testing.T) {
	const procs, hps, r = 4, simlist.HPs, 16
	bound := procs * (procs*hps + r)
	errs, _, _ := runListStress(t, stressCfg{
		scheme: "hp", procs: procs, capacity: 4096,
		keyRange: 32, duration: 500_000, seed: 9,
		smr: func(c *simsmr.Config) { c.R = r },
		check: func(p *sim.Proc, d simsmr.Domain) {
			if pend := d.Pending(); pend > bound {
				t.Errorf("hp pending %d exceeds N(NK+R)=%d", pend, bound)
			}
		},
	})
	if errs != nil {
		t.Fatal(errs)
	}
}

// TestCadencePendingBounded checks Property 2's shape for Cadence: pending
// stays within N*(N*K + R + T') where T' is the retire capacity of one
// deferral window (T+ε cycles at the observed worst retire rate, bounded
// here by one retire per ~500 cycles per proc — far above reality).
func TestCadencePendingBounded(t *testing.T) {
	const procs, r = 4, 16
	const rooster = 50_000
	tPrime := procs * (rooster + 3000 + 2048) / 500
	bound := procs*(procs*simlist.HPs+r) + tPrime
	errs, _, _ := runListStress(t, stressCfg{
		scheme: "cadence", procs: procs, capacity: 8192,
		keyRange: 32, duration: 800_000, seed: 9, rooster: rooster,
		smr: func(c *simsmr.Config) { c.R = r },
		check: func(p *sim.Proc, d simsmr.Domain) {
			if pend := d.Pending(); pend > bound {
				t.Errorf("cadence pending %d exceeds N(NK+R)+T'=%d", pend, bound)
			}
		},
	})
	if errs != nil {
		t.Fatal(errs)
	}
}
