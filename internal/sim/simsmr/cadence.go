package simsmr

import (
	"qsense/internal/mem"
	"qsense/internal/sim"
)

// Cadence is the paper's fallback scheme (§5.1) on the simulator, in its
// original clock formulation: Protect is a bare store (no fence — the store
// sits in the proc's store buffer), the machine's rooster preemptions drain
// every buffer at least once per RoosterInterval T, and Retire stamps the
// node with the current virtual time. A node is old enough once
//
//	now - stamp >= T + ε    (Figure 4)
//
// where ε (Config.Epsilon) covers the preemption's worst-case lag past its
// interval boundary plus cross-proc clock skew — the paper's "oversleeping
// and clock inconsistency" tolerance, made precise by the machine model. By
// then any hazard pointer stored before the removal has been drained, so
// the shared-slot snapshot is conclusive.
//
// The DisableDeferral ablation frees nodes on the snapshot alone; on this
// machine that is demonstrably unsafe (§4.1): a protection still sitting in
// a store buffer is invisible and the node is freed under the reader.
type Cadence struct {
	cfg    Config
	cnt    counters
	hps    hpArray
	procs  int
	t      uint64 // rooster interval
	guards []*cadenceGuard
}

type cadenceGuard struct {
	d       *Cadence
	p       *sim.Proc
	w       int
	rl      []retiredNode
	retires int
	snap    map[uint64]struct{}
}

// NewCadence builds a simulated Cadence domain. The machine must have
// roosters enabled (RoosterInterval > 0): without them there is no bound on
// store visibility and the scheme is unsound by construction.
func NewCadence(cfg Config) (*Cadence, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.Machine.Config().Procs
	d := &Cadence{
		cfg:   cfg,
		procs: n,
		t:     cfg.Machine.Config().RoosterInterval,
		hps:   newHPArray(cfg.Machine, n, cfg.HPs),
	}
	for i := 0; i < n; i++ {
		d.guards = append(d.guards, &cadenceGuard{d: d, p: cfg.Machine.Proc(i), w: i})
	}
	return d, nil
}

// Guard implements Domain.
func (d *Cadence) Guard(i int) Guard { return d.guards[i] }

// Name implements Domain.
func (d *Cadence) Name() string { return "cadence" }

// Pending implements Domain.
func (d *Cadence) Pending() int { return d.cnt.pending() }

// Failed implements Domain.
func (d *Cadence) Failed() bool { return d.cnt.failed }

// InFallback implements Domain.
func (d *Cadence) InFallback() bool { return false }

// Stats implements Domain.
func (d *Cadence) Stats() Stats {
	s := Stats{Scheme: "cadence"}
	d.cnt.fill(&s)
	return s
}

// CollectAll implements Domain.
func (d *Cadence) CollectAll() {
	for _, g := range d.guards {
		for _, n := range g.rl {
			d.cfg.Pool.Reclaim(n.ref)
			d.cnt.freed++
		}
		g.rl = g.rl[:0]
	}
}

func (g *cadenceGuard) Begin() {}

// Protect publishes without a fence (Algorithm 3: "No need for a memory
// barrier here"). The store drains at the proc's next rooster preemption.
func (g *cadenceGuard) Protect(i int, r mem.Ref) {
	g.p.Store(g.d.hps.slot(g.w, i), uint64(r.Untagged()))
}

// ClearHPs zeroes this guard's slots with bare stores.
func (g *cadenceGuard) ClearHPs() {
	for i := 0; i < g.d.cfg.HPs; i++ {
		g.p.Store(g.d.hps.slot(g.w, i), 0)
	}
}

// Retire timestamps the node (Algorithm 3's timestamped_node) and scans
// every R retires.
func (g *cadenceGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("simsmr: retire of nil Ref")
	}
	g.rl = append(g.rl, retiredNode{ref: r.Untagged(), stamp: g.p.Now()})
	g.d.cnt.noteRetire(g.d.cfg.MemoryLimit)
	g.retires++
	if g.retires%g.d.cfg.R == 0 {
		g.rl = scanDeferred(&g.d.cnt, g.d.cfg, g.d.hps, g.d.procs, g.d.t, g.p, g.rl, &g.snap)
	}
}

// scanDeferred is Algorithm 3's scan: free nodes that are old enough and
// unprotected; keep the rest. Shared with QSense's fallback path.
func scanDeferred(cnt *counters, cfg Config, hps hpArray, procs int, t uint64, p *sim.Proc, rl []retiredNode, snap *map[uint64]struct{}) []retiredNode {
	cnt.scans++
	*snap = hps.snapshot(p, procs, *snap)
	now := p.Now()
	kept := rl[:0]
	for _, n := range rl {
		oldEnough := now-n.stamp >= t+cfg.Epsilon
		_, prot := (*snap)[uint64(n.ref)]
		if (!cfg.DisableDeferral && !oldEnough) || prot {
			kept = append(kept, n)
		} else {
			cfg.Pool.Free(p, n.ref)
			cnt.freed++
		}
	}
	return kept
}
