package simsmr

import (
	"qsense/internal/mem"
	"qsense/internal/sim"
)

// QSBR is quiescent-state-based reclamation (§3.1) on the simulator: three
// logical epochs, per-proc limbo buckets, wholesale frees on epoch
// adoption. The global and local epochs are words in simulated memory;
// epoch publication uses AtomicStore (an x86 XCHG) because the adversarial
// machine never drains plain stores in the background, and an epoch
// announcement stuck in a store buffer would stall every peer's grace
// period — real QSBR implementations rely on hardware draining these plain
// stores promptly, which the atomic op models explicitly.
//
// The bucket arithmetic matches internal/reclaim/qsbr.go: on adopting
// global epoch g, bucket (g mod 3) — retired at epoch g-3 — has passed a
// full grace period and is freed wholesale.
type QSBR struct {
	cfg    Config
	cnt    counters
	procs  int
	epoch  sim.Addr // global epoch word
	locals sim.Addr // per-proc local epoch words
	guards []*qsbrGuard
}

type qsbrGuard struct {
	d     *QSBR
	p     *sim.Proc
	w     int
	limbo [3][]retiredNode
	calls int
}

// NewQSBR builds a simulated QSBR domain.
func NewQSBR(cfg Config) (*QSBR, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.Machine.Config().Procs
	d := &QSBR{
		cfg:    cfg,
		procs:  n,
		epoch:  cfg.Machine.Reserve(1),
		locals: cfg.Machine.Reserve(n),
	}
	for i := 0; i < n; i++ {
		d.guards = append(d.guards, &qsbrGuard{d: d, p: cfg.Machine.Proc(i), w: i})
	}
	return d, nil
}

// Guard implements Domain.
func (d *QSBR) Guard(i int) Guard { return d.guards[i] }

// Name implements Domain.
func (d *QSBR) Name() string { return "qsbr" }

// Pending implements Domain.
func (d *QSBR) Pending() int { return d.cnt.pending() }

// Failed implements Domain.
func (d *QSBR) Failed() bool { return d.cnt.failed }

// InFallback implements Domain.
func (d *QSBR) InFallback() bool { return false }

// Stats implements Domain.
func (d *QSBR) Stats() Stats {
	s := Stats{Scheme: "qsbr"}
	d.cnt.fill(&s)
	return s
}

// CollectAll implements Domain.
func (d *QSBR) CollectAll() {
	for _, g := range d.guards {
		for b := range g.limbo {
			for _, n := range g.limbo[b] {
				d.cfg.Pool.Reclaim(n.ref)
				d.cnt.freed++
			}
			g.limbo[b] = g.limbo[b][:0]
		}
	}
}

// GlobalEpoch exposes the global epoch for tests (drained value).
func (d *QSBR) GlobalEpoch() uint64 { return d.cfg.Machine.Peek(d.epoch) }

// Begin declares a quiescent state every Q-th call.
func (g *qsbrGuard) Begin() {
	g.calls++
	if g.calls%g.d.cfg.Q != 0 {
		return
	}
	g.quiescent()
}

func (g *qsbrGuard) quiescent() {
	g.d.cnt.quiesces++
	global := g.p.Load(g.d.epoch)
	local := g.p.Load(g.d.locals + sim.Addr(g.w)) // own word: forwarded
	if local != global {
		g.p.AtomicStore(g.d.locals+sim.Addr(g.w), global)
		g.freeBucket(int(global % 3))
		return
	}
	// Already current: try to advance the global epoch.
	for w := 0; w < g.d.procs; w++ {
		if w == g.w {
			continue
		}
		if g.p.Load(g.d.locals+sim.Addr(w)) != global {
			return
		}
	}
	if _, ok := g.p.CAS(g.d.epoch, global, global+1); ok {
		g.d.cnt.epochs++
		g.p.AtomicStore(g.d.locals+sim.Addr(g.w), global+1)
		g.freeBucket(int((global + 1) % 3))
	}
}

func (g *qsbrGuard) freeBucket(b int) {
	for _, n := range g.limbo[b] {
		g.d.cfg.Pool.Free(g.p, n.ref)
		g.d.cnt.freed++
	}
	g.limbo[b] = g.limbo[b][:0]
}

// Protect is a no-op: QSBR readers are protected by not being quiescent.
func (g *qsbrGuard) Protect(i int, r mem.Ref) {}

// ClearHPs is a no-op for QSBR.
func (g *qsbrGuard) ClearHPs() {}

func (g *qsbrGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("simsmr: retire of nil Ref")
	}
	b := g.p.Load(g.d.locals+sim.Addr(g.w)) % 3 // own word: forwarded, cheap
	g.limbo[b] = append(g.limbo[b], retiredNode{ref: r.Untagged()})
	g.d.cnt.noteRetire(g.d.cfg.MemoryLimit)
}
