package simsmr

import (
	"qsense/internal/mem"
	"qsense/internal/sim"
)

// QSense is the hybrid scheme (§5.2, Algorithm 5) on the simulator. As in
// the paper, some machinery runs on both paths: hazard pointers are always
// published (fence-free) and retires are always timestamped, so the switch
// to the fallback path is instantly safe (§4.1). The fallback flag, the
// epochs and the presence signals are words in simulated memory.
//
// One representational deviation from Algorithm 5, shared with the native
// implementation's analysis: presence is a per-proc *timestamp* (last
// active virtual time) rather than a flag array reset by a background
// process. "All processes active" becomes "every proc signalled within
// PresenceWindow", which is the same predicate the flag+reset protocol
// evaluates, without needing an agent to perform resets.
type QSense struct {
	cfg      Config
	cnt      counters
	hps      hpArray
	procs    int
	t        uint64
	epoch    sim.Addr // global epoch word
	locals   sim.Addr // per-proc local epochs
	fallback sim.Addr // the fallback-flag (0 fast, 1 fallback)
	presence sim.Addr // per-proc last-active timestamps
	// fallbackAt is the virtual time the fallback flag was last raised
	// (host-side; execution is serialized). Switch-back requires presence
	// evidence newer than this — the timestamp analog of the paper's
	// flag reset: a stalled proc's pre-stall presence must not count as
	// "active again" (§5.2 step 3).
	fallbackAt uint64
	guards     []*qsenseGuard
}

type qsenseGuard struct {
	d        *QSense
	p        *sim.Proc
	w        int
	limbo    [3][]retiredNode
	total    int
	calls    int
	retires  int
	prevFall bool
	snap     map[uint64]struct{}
}

// NewQSense builds a simulated QSense domain (roosters required).
func NewQSense(cfg Config) (*QSense, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.Machine.Config().Procs
	d := &QSense{
		cfg:      cfg,
		procs:    n,
		t:        cfg.Machine.Config().RoosterInterval,
		hps:      newHPArray(cfg.Machine, n, cfg.HPs),
		epoch:    cfg.Machine.Reserve(1),
		locals:   cfg.Machine.Reserve(n),
		fallback: cfg.Machine.Reserve(1),
		presence: cfg.Machine.Reserve(n),
	}
	for i := 0; i < n; i++ {
		d.guards = append(d.guards, &qsenseGuard{d: d, p: cfg.Machine.Proc(i), w: i})
	}
	return d, nil
}

// Guard implements Domain.
func (d *QSense) Guard(i int) Guard { return d.guards[i] }

// Name implements Domain.
func (d *QSense) Name() string { return "qsense" }

// Pending implements Domain.
func (d *QSense) Pending() int { return d.cnt.pending() }

// Failed implements Domain.
func (d *QSense) Failed() bool { return d.cnt.failed }

// InFallback reports the current path (drained flag value).
func (d *QSense) InFallback() bool { return d.cfg.Machine.Peek(d.fallback) != 0 }

// GlobalEpoch exposes the global epoch for tests (drained value).
func (d *QSense) GlobalEpoch() uint64 { return d.cfg.Machine.Peek(d.epoch) }

// Stats implements Domain.
func (d *QSense) Stats() Stats {
	s := Stats{Scheme: "qsense", InFallback: d.InFallback()}
	d.cnt.fill(&s)
	return s
}

// CollectAll implements Domain.
func (d *QSense) CollectAll() {
	for _, g := range d.guards {
		for b := range g.limbo {
			for _, n := range g.limbo[b] {
				d.cfg.Pool.Reclaim(n.ref)
				d.cnt.freed++
			}
			g.limbo[b] = g.limbo[b][:0]
		}
		g.total = 0
	}
}

// Begin is manage_qsense_state (Algorithm 5, lines 12-34).
func (g *qsenseGuard) Begin() {
	g.calls++
	if g.calls%g.d.cfg.Q != 0 {
		return
	}
	// Signal presence (is_active): publish the current virtual time.
	g.p.AtomicStore(g.d.presence+sim.Addr(g.w), g.p.Now())
	if g.p.Load(g.d.fallback) == 0 {
		// Common case: run the fast path.
		g.quiescent()
		g.prevFall = false
		return
	}
	// Fallback: try to switch back to the fast path.
	if g.allActive() {
		if _, ok := g.p.CAS(g.d.fallback, 1, 0); ok {
			g.d.cnt.toFast++
			g.prevFall = false
			g.quiescent()
			return
		}
	}
	g.prevFall = true
}

// allActive reports whether every proc signalled presence recently AND
// after the fallback engaged (§5.2 step 3, in timestamp form): stale
// pre-stall presence must not trigger a switch-back.
func (g *qsenseGuard) allActive() bool {
	now := g.p.Now()
	for w := 0; w < g.d.procs; w++ {
		ts := g.p.Load(g.d.presence + sim.Addr(w))
		if ts < g.d.fallbackAt {
			return false
		}
		if ts < now && now-ts > g.d.cfg.PresenceWindow {
			return false
		}
	}
	return true
}

// quiescent is QSBR's quiescent state over timestamped buckets (bucket
// arithmetic as in qsbr.go).
func (g *qsenseGuard) quiescent() {
	g.d.cnt.quiesces++
	global := g.p.Load(g.d.epoch)
	local := g.p.Load(g.d.locals + sim.Addr(g.w))
	if local != global {
		g.p.AtomicStore(g.d.locals+sim.Addr(g.w), global)
		g.freeBucket(int(global % 3))
		return
	}
	for w := 0; w < g.d.procs; w++ {
		if w == g.w {
			continue
		}
		if g.p.Load(g.d.locals+sim.Addr(w)) != global {
			return
		}
	}
	if _, ok := g.p.CAS(g.d.epoch, global, global+1); ok {
		g.d.cnt.epochs++
		g.p.AtomicStore(g.d.locals+sim.Addr(g.w), global+1)
		g.freeBucket(int((global + 1) % 3))
	}
}

func (g *qsenseGuard) freeBucket(b int) {
	for _, n := range g.limbo[b] {
		g.d.cfg.Pool.Free(g.p, n.ref)
		g.d.cnt.freed++
	}
	g.total -= len(g.limbo[b])
	g.limbo[b] = g.limbo[b][:0]
}

// Protect publishes fence-free, exactly as in Cadence; hazard pointers are
// maintained on both paths (§4.1).
func (g *qsenseGuard) Protect(i int, r mem.Ref) {
	g.p.Store(g.d.hps.slot(g.w, i), uint64(r.Untagged()))
}

// ClearHPs zeroes this guard's slots with bare stores.
func (g *qsenseGuard) ClearHPs() {
	for i := 0; i < g.d.cfg.HPs; i++ {
		g.p.Store(g.d.hps.slot(g.w, i), 0)
	}
}

// Retire is free_node_later (Algorithm 5, lines 36-61). The wrapper is
// always timestamped and bucketed by the local epoch, whatever the path.
func (g *qsenseGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("simsmr: retire of nil Ref")
	}
	b := g.p.Load(g.d.locals+sim.Addr(g.w)) % 3
	g.limbo[b] = append(g.limbo[b], retiredNode{ref: r.Untagged(), stamp: g.p.Now()})
	g.total++
	g.d.cnt.noteRetire(g.d.cfg.MemoryLimit)
	g.retires++

	seen := g.p.Load(g.d.fallback) != 0
	switch {
	case seen && g.retires%g.d.cfg.R == 0:
		// Fallback mode: Cadence scan over all three limbo buckets.
		g.scanAll()
		g.prevFall = true
	case g.prevFall && !seen:
		// Switch back to the fast path was triggered by another
		// proc. As in the native implementation (and deviating from
		// Algorithm 5's lines 49-52), the quiescent state itself is
		// deferred to the next Begin: free_node_later runs
		// mid-operation, when this proc still holds hazardous
		// references, and quiescing here would let peers' wholesale
		// frees reclaim nodes this proc is using.
		g.prevFall = false
	case !seen && !g.prevFall && g.total >= g.d.cfg.C:
		// Quiescence has not been possible for too long: raise the
		// fallback flag (§5.2 step 1) and scan immediately.
		if _, ok := g.p.CAS(g.d.fallback, 0, 1); ok {
			g.d.cnt.toFall++
			g.d.fallbackAt = g.p.Now()
		}
		g.prevFall = true
		g.scanAll()
	}
}

func (g *qsenseGuard) scanAll() {
	g.total = 0
	for b := range g.limbo {
		g.limbo[b] = scanDeferred(&g.d.cnt, g.d.cfg, g.d.hps, g.d.procs, g.d.t, g.p, g.limbo[b], &g.snap)
		g.total += len(g.limbo[b])
	}
}
