package simsmr_test

import (
	"errors"
	"testing"

	"qsense/internal/mem"
	"qsense/internal/sim"
	"qsense/internal/sim/simmem"
	"qsense/internal/sim/simsmr"
)

// These tests execute the paper's §4.1 scenario (Algorithm 2) on the TSO
// machine: a reader PR protects a node with an unfenced hazard pointer
// while a deleter PD removes, scans, and frees it. They are the end-to-end
// version of the internal/tso model-checker litmus: here the actual scheme
// code runs, and the "illegal access" is a concrete *mem.Violation raised
// by the substrate.
//
// The fixture is a one-node structure: `link` points to node n; PD removes
// n by CASing link to nil.

type a2fixture struct {
	m    *sim.Machine
	pool *simmem.Pool
	link sim.Addr
	n    mem.Ref
}

func newA2Fixture(roosterInterval uint64) *a2fixture {
	m := sim.New(sim.Config{Procs: 2, JitterPct: -1, RoosterInterval: roosterInterval})
	// Capacity covers the deferred-reclamation backlog: dummies retired
	// every ~500 cycles stay pending for T+ε (~10k cycles) before a scan
	// may free them.
	pool := simmem.NewPool(m, 64, 1, "a2")
	link := m.Reserve(1)
	n := pool.AllocHost()
	pool.PokeField(n, 0, 42)
	m.Poke(link, uint64(n))
	return &a2fixture{m: m, pool: pool, link: link, n: n}
}

// reader runs PR: read link, protect, validate, then keep using the node
// until `until`, touching it every 500 cycles (legal under Condition 1: the
// protection is continuous from a time when n was safe).
func (f *a2fixture) reader(g simsmr.Guard, until uint64) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		r := mem.Ref(p.Load(f.link)) // R1
		g.Protect(0, r)              // R2 (store; fenced or not per scheme)
		if mem.Ref(p.Load(f.link)) != r {
			return // R4 failed; contention path
		}
		for p.Now() < until {
			f.pool.Load(p, r, 0) // R5: the access hazard
			p.Work(500)
		}
		g.ClearHPs()
	}
}

// deleter runs PD: at `at`, remove n (D1), retire it (D2-D4 are the
// scheme's Retire/scan with R=1), then keep retiring dummy nodes every 500
// cycles until `until` so scans keep happening.
func (f *a2fixture) deleter(g simsmr.Guard, at, until uint64) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		p.SleepUntil(at)
		if _, ok := p.CAS(f.link, uint64(f.n), 0); !ok {
			panic("a2: removal CAS failed")
		}
		g.Retire(f.n)
		for p.Now() < until {
			d := f.pool.Alloc(p)
			g.Retire(d)
			p.Work(500)
		}
	}
}

func violationIn(errs []error) *mem.Violation {
	for _, e := range errs {
		var v *mem.Violation
		if errors.As(e, &v) {
			return v
		}
	}
	return nil
}

// TestAlgorithm2NoFenceUnsafe: classic HP with the fence elided (the naive
// hybrid of §4.1) frees the node under the reader — the exact interleaving
// of Algorithm 2, ending in a use-after-free violation.
func TestAlgorithm2NoFenceUnsafe(t *testing.T) {
	f := newA2Fixture(0)
	d, err := simsmr.NewHP(simsmr.Config{
		Machine: f.m, Pool: f.pool, HPs: 1, R: 1, NoFence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.m.Spawn(0, f.reader(d.Guard(0), 20000))
	f.m.Spawn(1, f.deleter(d.Guard(1), 2000, 5000))
	errs := f.m.Run()
	v := violationIn(errs)
	if v == nil {
		t.Fatalf("naive unfenced HP did not produce a use-after-free (errs=%v)", errs)
	}
	if v.Op != "get" {
		t.Fatalf("expected a get (use-after-free) violation, got %v", v)
	}
}

// TestAlgorithm2FencedSafe: with the fence in place (Algorithm 1, line 3),
// PD's scan observes the protection and the reader is never faulted.
func TestAlgorithm2FencedSafe(t *testing.T) {
	f := newA2Fixture(0)
	d, err := simsmr.NewHP(simsmr.Config{
		Machine: f.m, Pool: f.pool, HPs: 1, R: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.m.Spawn(0, f.reader(d.Guard(0), 20000))
	f.m.Spawn(1, f.deleter(d.Guard(1), 2000, 5000))
	if errs := f.m.Run(); errs != nil {
		t.Fatalf("fenced HP faulted: %v", errs)
	}
	d.CollectAll()
}

// TestAlgorithm2CadenceSafe: Cadence with roosters and deferred
// reclamation survives the same interleaving without any fence: by the
// time the node is old enough, the rooster preemption has drained the
// reader's protection and every scan keeps the node.
func TestAlgorithm2CadenceSafe(t *testing.T) {
	f := newA2Fixture(5000)
	d, err := simsmr.NewCadence(simsmr.Config{
		Machine: f.m, Pool: f.pool, HPs: 1, R: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.m.Spawn(0, f.reader(d.Guard(0), 40000))
	f.m.Spawn(1, f.deleter(d.Guard(1), 2000, 80000))
	if errs := f.m.Run(); errs != nil {
		t.Fatalf("cadence faulted: %v", errs)
	}
	// After the reader cleared (and its clear drained at a later rooster
	// pass), a subsequent scan must have freed n.
	if f.pool.Valid(f.n) {
		t.Fatal("cadence never reclaimed the node after the protection was released")
	}
	d.CollectAll()
}

// TestAlgorithm2DeferralOffUnsafe: Cadence with deferred reclamation
// disabled is exactly the naive hybrid again — the scan trusts a snapshot
// that cannot yet include the buffered protection, and the reader faults.
func TestAlgorithm2DeferralOffUnsafe(t *testing.T) {
	f := newA2Fixture(5000)
	d, err := simsmr.NewCadence(simsmr.Config{
		Machine: f.m, Pool: f.pool, HPs: 1, R: 1, DisableDeferral: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.m.Spawn(0, f.reader(d.Guard(0), 4000)) // fault before the first preemption
	f.m.Spawn(1, f.deleter(d.Guard(1), 1000, 3000))
	errs := f.m.Run()
	if violationIn(errs) == nil {
		t.Fatalf("deferral-off cadence did not produce a use-after-free (errs=%v)", errs)
	}
}

// TestAlgorithm2QSenseSafe: the full hybrid also survives the scenario —
// hazard pointers are maintained on the fast path precisely so that this
// interleaving is safe whenever the fallback engages (§4.1/§5.2).
func TestAlgorithm2QSenseSafe(t *testing.T) {
	f := newA2Fixture(5000)
	d, err := simsmr.NewQSense(simsmr.Config{
		Machine: f.m, Pool: f.pool, HPs: 1, R: 1, Q: 1, C: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.m.Spawn(0, f.reader(d.Guard(0), 40000))
	f.m.Spawn(1, f.deleter(d.Guard(1), 2000, 80000))
	if errs := f.m.Run(); errs != nil {
		t.Fatalf("qsense faulted: %v", errs)
	}
	if d.Stats().SwitchesToFallback == 0 {
		t.Fatal("C=2 never triggered the fallback switch")
	}
	d.CollectAll()
}

// TestCadenceRequiresRoosters: constructing cadence/qsense on a machine
// without rooster preemption is rejected — no context switches means no
// visibility bound, so the scheme would be unsound by assumption.
func TestCadenceRequiresRoosters(t *testing.T) {
	m := sim.New(sim.Config{Procs: 1})
	pool := simmem.NewPool(m, 2, 1, "x")
	if _, err := simsmr.NewCadence(simsmr.Config{Machine: m, Pool: pool, HPs: 1}); err == nil {
		t.Fatal("cadence accepted a rooster-less machine")
	}
	if _, err := simsmr.NewQSense(simsmr.Config{Machine: m, Pool: pool, HPs: 1}); err == nil {
		t.Fatal("qsense accepted a rooster-less machine")
	}
}
