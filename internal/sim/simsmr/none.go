package simsmr

import "qsense/internal/mem"

// None is the leaky baseline: Retire leaks. On long simulated runs the pool
// exhausts — the fate of any real leaky implementation.
type None struct {
	cfg    Config
	cnt    counters
	guards []*noneGuard
	leaked []mem.Ref
}

type noneGuard struct{ d *None }

// NewNone builds the leaky baseline domain.
func NewNone(cfg Config) (*None, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &None{cfg: cfg}
	for i := 0; i < cfg.Machine.Config().Procs; i++ {
		d.guards = append(d.guards, &noneGuard{d: d})
	}
	return d, nil
}

// Guard implements Domain.
func (d *None) Guard(i int) Guard { return d.guards[i] }

// Name implements Domain.
func (d *None) Name() string { return "none" }

// Pending implements Domain.
func (d *None) Pending() int { return d.cnt.pending() }

// Failed implements Domain.
func (d *None) Failed() bool { return d.cnt.failed }

// InFallback implements Domain.
func (d *None) InFallback() bool { return false }

// Stats implements Domain.
func (d *None) Stats() Stats {
	s := Stats{Scheme: "none"}
	d.cnt.fill(&s)
	return s
}

// CollectAll implements Domain: even the teardown keeps the leak, matching
// the native None; tests use it to assert the leak is real.
func (d *None) CollectAll() {}

func (g *noneGuard) Begin()                   {}
func (g *noneGuard) Protect(i int, r mem.Ref) {}
func (g *noneGuard) ClearHPs()                {}

func (g *noneGuard) Retire(r mem.Ref) {
	if r.IsNil() {
		panic("simsmr: retire of nil Ref")
	}
	g.d.leaked = append(g.d.leaked, r.Untagged())
	g.d.cnt.noteRetire(g.d.cfg.MemoryLimit)
}
