// Package sim is a deterministic virtual-time TSO multiprocessor simulator.
//
// The paper's correctness argument (§4.1, §5.1) lives entirely below the
// level Go exposes: it is about x86-TSO store buffers — a hazard-pointer
// store that has not yet drained is invisible to a reclaimer on another
// core, and the cure is either an explicit fence (classic HP) or a bounded
// wait for a context switch (Cadence's rooster processes). Go has no
// relaxed stores, no fences, and no visibility delay, so the repository
// carries two substitutes (DESIGN.md §2): internal/tso, a small
// model checker that explores interleavings of hand-written litmus
// programs, and this package, a full machine on which the actual data
// structures and reclamation schemes execute with explicit cycle costs.
//
// The machine model:
//
//   - N processes, each with a virtual clock measured in cycles and a
//     private FIFO store buffer. Every memory operation advances the clock
//     by a configurable cost (Costs).
//   - Stores enter the process' store buffer and are NOT visible to other
//     processes until drained. Loads consult the own buffer first
//     (store-to-load forwarding), then shared memory — exactly x86-TSO.
//   - A buffer drains at a Fence, at an atomic RMW (CAS, which on x86
//     carries a full fence), at a context switch (SleepUntil, rooster
//     preemption), or oldest-first under capacity pressure. There is no
//     background drain: this is the adversarial reading of TSO under which
//     the paper's safety argument must hold — real hardware drains sooner,
//     which only helps.
//   - Rooster preemption: every RoosterInterval cycles a process is
//     switched out (paying CtxSwitch) and its buffer drains — the paper's
//     rooster processes (§5.1), expressed as what they actually do to the
//     machine.
//
// Scheduling is lowest-virtual-clock-first with a configurable quantum
// (how far a process may run past the global minimum before yielding).
// Execution is serialized in real time — one process runs at a time — so
// all interleaving is controlled by virtual time and the seed; a run is
// bit-for-bit reproducible, which the figure-shape tests rely on. With
// Quantum = 0 the interleaving granularity is a single operation (each op
// may overshoot the global minimum by at most its own cost); larger quanta
// trade granularity for simulation speed.
package sim

import (
	"fmt"
	"sort"
)

// Addr is a simulated memory address (a word index).
type Addr uint32

// Costs is the cycle cost model. Zero-valued fields take defaults; a
// negative value is invalid. The defaults approximate a contemporary x86
// server: loads average an L2-ish latency (list traversals miss cache),
// stores retire into the buffer quickly, locked RMWs and fences cost tens
// to hundreds of cycles, context switches thousands.
type Costs struct {
	Load      uint64 // default 25
	Store     uint64 // default 3
	CAS       uint64 // default 40
	Fence     uint64 // default 150
	CtxSwitch uint64 // default 3000
	Alloc     uint64 // default 40
	Free      uint64 // default 25
	Op        uint64 // fixed per-operation overhead hook, default 10
}

func (c Costs) withDefaults() Costs {
	def := func(v *uint64, d uint64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Load, 25)
	def(&c.Store, 3)
	def(&c.CAS, 40)
	def(&c.Fence, 150)
	def(&c.CtxSwitch, 3000)
	def(&c.Alloc, 40)
	def(&c.Free, 25)
	def(&c.Op, 10)
	return c
}

// Config parameterizes a Machine.
type Config struct {
	// Procs is the number of simulated processes.
	Procs int
	// Cores is the number of hardware contexts; processes are pinned
	// round-robin (proc i -> core i mod Cores). Default: Procs.
	Cores int
	// Costs is the cycle cost model.
	Costs Costs
	// StoreBufCap is the store buffer capacity; the oldest entry drains
	// when a store finds the buffer full. Default 40 (Skylake-class).
	StoreBufCap int
	// RoosterInterval, when > 0, preempts every process each interval
	// (context-switch cost + buffer drain): the rooster processes of
	// §5.1. 0 disables roosters — the adversarial baseline.
	RoosterInterval uint64
	// Quantum is how many cycles past the global minimum clock a process
	// may run before yielding to the scheduler. 0 = strictest
	// interleaving; benchmarks use a few hundred for speed.
	Quantum uint64
	// Seed drives cost jitter and per-process RNG streams. Two runs with
	// equal Config and programs produce identical executions.
	Seed uint64
	// JitterPct adds deterministic per-op cost jitter of up to this
	// percentage (breaks artificial lockstep between identical
	// processes). Default 12; negative disables.
	JitterPct int
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = c.Procs
	}
	if c.StoreBufCap <= 0 {
		c.StoreBufCap = 40
	}
	if c.JitterPct == 0 {
		c.JitterPct = 12
	}
	if c.JitterPct < 0 {
		c.JitterPct = 0
	}
	c.Costs = c.Costs.withDefaults()
	return c
}

// bufferedStore is one store-buffer entry.
type bufferedStore struct {
	addr Addr
	val  uint64
}

// Stats aggregates machine-wide event counters.
type Stats struct {
	Loads, Stores, CASes, CASFails uint64
	Fences                         uint64
	Drains                         uint64 // individual stores drained
	CtxSwitches                    uint64
	RoosterPreempts                uint64
	MaxClock                       uint64
}

// Machine is a simulated TSO multiprocessor. Build with New, install
// programs with Spawn, execute with Run. Not safe for concurrent use by
// multiple OS threads; all concurrency is simulated.
type Machine struct {
	cfg   Config
	mem   []uint64
	procs []*Proc
	stats Stats

	yielded chan struct{}
	running bool
	errs    []error
}

// New builds a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.Procs <= 0 {
		panic("sim: Config.Procs must be positive")
	}
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg, yielded: make(chan struct{})}
	for i := 0; i < cfg.Procs; i++ {
		p := &Proc{
			m:      m,
			id:     i,
			core:   i % cfg.Cores,
			resume: make(chan struct{}),
			rng:    splitmix(cfg.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15),
		}
		if cfg.RoosterInterval > 0 {
			// Stagger per-core rooster phase so cores do not all
			// preempt at the same instant.
			p.nextRooster = cfg.RoosterInterval + uint64(p.core)*(cfg.RoosterInterval/uint64(cfg.Cores)+1)
		}
		m.procs = append(m.procs, p)
	}
	return m
}

// Config returns the machine's effective configuration (defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// Reserve allocates n fresh words of simulated memory (zero-initialized)
// and returns the base address. Call during setup, not from programs.
func (m *Machine) Reserve(n int) Addr {
	if m.running {
		panic("sim: Reserve during Run")
	}
	base := Addr(len(m.mem))
	m.mem = append(m.mem, make([]uint64, n)...)
	return base
}

// Poke writes a word directly (setup/inspection; bypasses store buffers).
func (m *Machine) Poke(a Addr, v uint64) { m.mem[a] = v }

// Peek reads a word directly (setup/inspection; ignores store buffers, so
// during a run it sees only drained state).
func (m *Machine) Peek(a Addr) uint64 { return m.mem[a] }

// Proc returns process i (for setup: seeding RNG state, inspecting clocks).
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// Stats returns the machine-wide event counters.
func (m *Machine) Stats() Stats {
	s := m.stats
	for _, p := range m.procs {
		if p.clock > s.MaxClock {
			s.MaxClock = p.clock
		}
	}
	return s
}

// Spawn installs a program on process i. Must be called before Run.
func (m *Machine) Spawn(i int, program func(p *Proc)) {
	p := m.procs[i]
	if p.program != nil {
		panic(fmt.Sprintf("sim: proc %d already has a program", i))
	}
	p.program = program
}

// Run executes all spawned programs to completion and returns the errors
// (panics, including simulated memory violations) they raised, in proc
// order. Procs without a program are ignored. Run may be called once.
func (m *Machine) Run() []error {
	if m.running {
		panic("sim: Run called twice")
	}
	m.running = true
	live := 0
	for _, p := range m.procs {
		if p.program == nil {
			p.done = true
			continue
		}
		live++
		go p.top()
	}
	for live > 0 {
		p := m.pick()
		if p == nil {
			break
		}
		p.limit = m.runLimit(p)
		p.resume <- struct{}{}
		<-m.yielded
		if p.done {
			live--
		}
	}
	m.running = false
	var errs []error
	for _, p := range m.procs {
		if p.err != nil {
			errs = append(errs, fmt.Errorf("sim: proc %d: %w", p.id, p.err))
		}
	}
	return errs
}

// pick returns the runnable process with the lowest clock (ties by id).
func (m *Machine) pick() *Proc {
	var best *Proc
	for _, p := range m.procs {
		if p.done {
			continue
		}
		if best == nil || p.clock < best.clock {
			best = p
		}
	}
	return best
}

// runLimit computes how far p may run: up to the next process' clock plus
// the quantum.
func (m *Machine) runLimit(p *Proc) uint64 {
	next := ^uint64(0)
	for _, q := range m.procs {
		if q == p || q.done {
			continue
		}
		if q.clock < next {
			next = q.clock
		}
	}
	if next == ^uint64(0) {
		next = p.clock
	}
	// A solitary process may run unbounded; otherwise cap at next+quantum.
	limit := next + m.cfg.Quantum
	if limit < p.clock {
		limit = p.clock
	}
	return limit
}

// SortedClocks returns all proc clocks in ascending order (diagnostics).
func (m *Machine) SortedClocks() []uint64 {
	out := make([]uint64, len(m.procs))
	for i, p := range m.procs {
		out[i] = p.clock
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// splitmix returns a splitmix64 generator seeded with s.
func splitmix(s uint64) func() uint64 {
	return func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}
