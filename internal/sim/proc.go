package sim

import "fmt"

// Proc is one simulated process: a virtual clock, a private TSO store
// buffer, and the memory operations a program uses. All methods must be
// called only from the program installed on this proc via Machine.Spawn.
type Proc struct {
	m    *Machine
	id   int
	core int

	clock uint64
	limit uint64
	sb    []bufferedStore

	nextRooster uint64
	program     func(p *Proc)
	resume      chan struct{}
	done        bool
	err         error
	rng         func() uint64

	ops uint64 // program-level operation counter (OpDone)
}

// ID returns the process id (0-based).
func (p *Proc) ID() int { return p.id }

// Core returns the hardware context this process is pinned to.
func (p *Proc) Core() int { return p.core }

// Now returns the process' virtual clock in cycles.
func (p *Proc) Now() uint64 { return p.clock }

// Ops returns the number of OpDone calls (completed program operations).
func (p *Proc) Ops() uint64 { return p.ops }

// Rand returns the next value of the proc's deterministic RNG stream.
func (p *Proc) Rand() uint64 { return p.rng() }

// top is the proc goroutine body: wait for the first grant, run the
// program, convert panics (including simulated memory violations) into
// recorded errors, and hand control back to the scheduler.
func (p *Proc) top() {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				p.err = e
			} else {
				p.err = fmt.Errorf("panic: %v", r)
			}
		}
		// Process termination is a context switch: the store buffer
		// drains (even on a fault — the OS reaps the core either way).
		p.drainAll()
		p.done = true
		p.m.yielded <- struct{}{}
	}()
	p.program(p)
}

// yield hands control to the scheduler and blocks until regranted.
func (p *Proc) yield() {
	p.m.yielded <- struct{}{}
	<-p.resume
}

// step advances the clock by cost (plus deterministic jitter), applies any
// due rooster preemption, and yields if the quantum is exhausted.
func (p *Proc) step(cost uint64) {
	if j := p.m.cfg.JitterPct; j > 0 && cost > 0 {
		// jitter in [0, cost*j/100], deterministic from the RNG stream.
		span := cost*uint64(j)/100 + 1
		cost += p.rng() % span
	}
	p.clock += cost
	if p.nextRooster != 0 && p.clock >= p.nextRooster {
		p.roosterPreempt()
	}
	if p.clock > p.limit {
		p.yield()
	}
}

// roosterPreempt models the rooster process waking on this proc's core:
// the proc is switched out (cost) and its store buffer drains — the
// context-switch-implies-fence assumption of §5.1.
func (p *Proc) roosterPreempt() {
	for p.nextRooster != 0 && p.clock >= p.nextRooster {
		p.drainAll()
		p.clock += p.m.cfg.Costs.CtxSwitch
		p.m.stats.CtxSwitches++
		p.m.stats.RoosterPreempts++
		p.nextRooster += p.m.cfg.RoosterInterval
	}
}

// drainOne applies the oldest buffered store to shared memory.
func (p *Proc) drainOne() {
	s := p.sb[0]
	copy(p.sb, p.sb[1:])
	p.sb = p.sb[:len(p.sb)-1]
	p.m.mem[s.addr] = s.val
	p.m.stats.Drains++
}

// drainAll empties the store buffer into shared memory, in FIFO order.
func (p *Proc) drainAll() {
	for len(p.sb) > 0 {
		p.drainOne()
	}
}

// Load reads a word: own store buffer first (store-to-load forwarding,
// youngest matching entry), then shared memory.
func (p *Proc) Load(a Addr) uint64 {
	p.step(p.m.cfg.Costs.Load)
	p.m.stats.Loads++
	for i := len(p.sb) - 1; i >= 0; i-- {
		if p.sb[i].addr == a {
			return p.sb[i].val
		}
	}
	return p.m.mem[a]
}

// Store buffers a write. It becomes visible to other processes only when
// drained (fence, CAS, context switch, or capacity pressure).
func (p *Proc) Store(a Addr, v uint64) {
	p.step(p.m.cfg.Costs.Store)
	p.m.stats.Stores++
	if len(p.sb) >= p.m.cfg.StoreBufCap {
		p.drainOne()
	}
	p.sb = append(p.sb, bufferedStore{addr: a, val: v})
}

// Fence drains the store buffer (x86 mfence).
func (p *Proc) Fence() {
	p.step(p.m.cfg.Costs.Fence)
	p.m.stats.Fences++
	p.drainAll()
}

// CAS is an atomic compare-and-swap. Like an x86 locked RMW it carries
// full fence semantics: the buffer drains before the operation and the
// new value is immediately visible. Returns the previous value and
// whether the swap happened.
func (p *Proc) CAS(a Addr, old, new uint64) (prev uint64, ok bool) {
	p.step(p.m.cfg.Costs.CAS)
	p.m.stats.CASes++
	p.drainAll()
	prev = p.m.mem[a]
	if prev != old {
		p.m.stats.CASFails++
		return prev, false
	}
	p.m.mem[a] = new
	return prev, true
}

// AtomicStore is a sequentially consistent store (x86 XCHG): buffer drains
// and the value is immediately visible. Costed as a CAS.
func (p *Proc) AtomicStore(a Addr, v uint64) {
	p.step(p.m.cfg.Costs.CAS)
	p.m.stats.Stores++
	p.drainAll()
	p.m.mem[a] = v
}

// Work advances the clock by a pure-compute cost without touching memory.
func (p *Proc) Work(cycles uint64) { p.step(cycles) }

// OpDone marks the completion of one program-level operation, charging the
// fixed per-operation overhead. Throughput = Ops per simulated time.
func (p *Proc) OpDone() {
	p.step(p.m.cfg.Costs.Op)
	p.ops++
}

// SleepUntil deschedules the process until virtual time t: the context
// switch drains the store buffer (the §5.1 assumption), the clock jumps,
// and the rooster schedule fast-forwards — a sleeping process is off-core
// and is not repeatedly preempted.
func (p *Proc) SleepUntil(t uint64) {
	p.drainAll()
	p.clock += p.m.cfg.Costs.CtxSwitch
	p.m.stats.CtxSwitches++
	if t > p.clock {
		p.clock = t
	}
	if iv := p.m.cfg.RoosterInterval; iv > 0 {
		p.nextRooster = (p.clock/iv + 1) * iv
	}
	if p.clock > p.limit {
		p.yield()
	}
}

// Sleep deschedules the process for d cycles from now.
func (p *Proc) Sleep(d uint64) { p.SleepUntil(p.clock + d) }

// PendingStores returns the current store-buffer depth (diagnostics).
func (p *Proc) PendingStores() int { return len(p.sb) }
