// Package simmem is the manual-memory substrate for the TSO machine
// simulator (internal/sim): a slab of simulated memory words carved into
// fixed-size nodes, handed out as generation-tagged mem.Refs.
//
// It plays the same role for simulated programs that internal/mem plays for
// native ones (DESIGN.md §2): Free really recycles the slot, and any access
// through a stale Ref panics with *mem.Violation — the simulator's
// segmentation fault, which Machine.Run reports as a proc error. Node
// *fields* live in simulated memory, so field accesses go through the
// proc's store buffer and carry cycle costs; the allocator's own metadata
// (free list, generations) is host-side bookkeeping, charged via the
// Alloc/Free cost model — exactly as a real allocator's internals are not
// part of the concurrent algorithm under test.
package simmem

import (
	"fmt"

	"qsense/internal/mem"
	"qsense/internal/sim"
)

// Pool is a fixed-capacity node allocator over simulated memory. All
// methods that take a *sim.Proc must be called from that proc's program;
// the machine serializes execution, so the host-side metadata needs no
// locking.
type Pool struct {
	m      *sim.Machine
	base   sim.Addr
	fields int
	cap    int
	name   string

	gens  []uint32 // per-slot generation: odd = live, even = free
	free  []uint32 // LIFO free list of slot indexes
	stats Stats
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Allocs, Frees uint64
	Live          int
	Cap           int
}

// NewPool reserves capacity*fields words of simulated memory. Call during
// machine setup (before Run).
func NewPool(m *sim.Machine, capacity, fields int, name string) *Pool {
	if capacity <= 0 || fields <= 0 {
		panic("simmem: capacity and fields must be positive")
	}
	p := &Pool{
		m:      m,
		base:   m.Reserve(capacity * fields),
		fields: fields,
		cap:    capacity,
		name:   name,
		gens:   make([]uint32, capacity),
		free:   make([]uint32, 0, capacity),
	}
	// LIFO: lowest indexes allocated first.
	for i := capacity - 1; i >= 0; i-- {
		p.free = append(p.free, uint32(i))
	}
	return p
}

// Cap returns the pool capacity in nodes.
func (p *Pool) Cap() int { return p.cap }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	s := p.stats
	s.Live = int(s.Allocs - s.Frees)
	s.Cap = p.cap
	return s
}

// Alloc pops a free slot and returns its Ref. Panics with ErrExhausted when
// the pool is empty — the simulator's malloc returning NULL, which the OOM
// experiments rely on. Charged the Alloc cost.
func (p *Pool) Alloc(pr *sim.Proc) mem.Ref {
	pr.Work(p.m.Config().Costs.Alloc)
	if len(p.free) == 0 {
		panic(&ErrExhausted{Name: p.name})
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.gens[idx]++ // even -> odd: live
	p.stats.Allocs++
	return mem.MakeRef(idx, p.gens[idx])
}

// Free returns r's slot to the pool. Panics with *mem.Violation on a double
// free or stale reference. Charged the Free cost. Tag bits must be cleared.
func (p *Pool) Free(pr *sim.Proc, r mem.Ref) {
	pr.Work(p.m.Config().Costs.Free)
	idx := p.checkLive(r, "free")
	p.gens[idx]++ // odd -> even: free
	p.stats.Frees++
	p.free = append(p.free, idx)
}

// AllocHost is the host-side, cost-free variant of Alloc for machine setup
// (building sentinels and pre-filling structures before Run).
func (p *Pool) AllocHost() mem.Ref {
	if len(p.free) == 0 {
		panic(&ErrExhausted{Name: p.name})
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.gens[idx]++
	p.stats.Allocs++
	return mem.MakeRef(idx, p.gens[idx])
}

// Reclaim is the host-side, cost-free variant of Free for teardown after
// Machine.Run has returned (domains drain their retire lists with it). The
// same violation checks apply.
func (p *Pool) Reclaim(r mem.Ref) {
	idx := p.checkLive(r, "free")
	p.gens[idx]++
	p.stats.Frees++
	p.free = append(p.free, idx)
}

// ErrExhausted is the panic value for an empty pool.
type ErrExhausted struct{ Name string }

func (e *ErrExhausted) Error() string { return fmt.Sprintf("simmem: pool %q exhausted", e.Name) }

// checkLive validates that r names a live slot and returns its index.
func (p *Pool) checkLive(r mem.Ref, op string) uint32 {
	if r.IsNil() {
		panic("simmem: nil Ref dereference")
	}
	idx := r.Index()
	if int(idx) >= p.cap {
		panic(fmt.Sprintf("simmem: foreign Ref %v for pool %q", r, p.name))
	}
	if g := p.gens[idx]; g != r.Gen() || g&1 == 0 {
		panic(&mem.Violation{Op: op, Ref: r, Want: r.Gen(), Got: g})
	}
	return idx
}

// Addr resolves field f of the live node r to its simulated address,
// panicking with *mem.Violation if r is stale — every dereference is a
// use-after-free checkpoint, like mem.Pool.Get.
func (p *Pool) Addr(r mem.Ref, f int) sim.Addr {
	idx := p.checkLive(r, "get")
	if f < 0 || f >= p.fields {
		panic(fmt.Sprintf("simmem: field %d out of range (node has %d)", f, p.fields))
	}
	return p.base + sim.Addr(int(idx)*p.fields+f)
}

// Valid reports whether r currently names a live slot (no panic).
func (p *Pool) Valid(r mem.Ref) bool {
	if r.IsNil() {
		return false
	}
	idx := r.Index()
	if int(idx) >= p.cap {
		return false
	}
	g := p.gens[idx]
	return g == r.Gen() && g&1 == 1
}

// Load reads field f of node r through pr's memory system.
func (p *Pool) Load(pr *sim.Proc, r mem.Ref, f int) uint64 {
	return pr.Load(p.Addr(r, f))
}

// Store writes field f of node r through pr's store buffer.
func (p *Pool) Store(pr *sim.Proc, r mem.Ref, f int, v uint64) {
	pr.Store(p.Addr(r, f), v)
}

// CAS compare-and-swaps field f of node r (full fence semantics).
func (p *Pool) CAS(pr *sim.Proc, r mem.Ref, f int, old, new uint64) (uint64, bool) {
	return pr.CAS(p.Addr(r, f), old, new)
}

// PeekField reads a field directly (setup/validation; bypasses buffers).
func (p *Pool) PeekField(r mem.Ref, f int) uint64 {
	return p.m.Peek(p.Addr(r, f))
}

// PokeField writes a field directly (setup only).
func (p *Pool) PokeField(r mem.Ref, f int, v uint64) {
	p.m.Poke(p.Addr(r, f), v)
}
