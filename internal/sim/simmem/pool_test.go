package simmem

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"qsense/internal/mem"
	"qsense/internal/sim"
)

func newMachinePool(t *testing.T, capacity, fields int) (*sim.Machine, *Pool) {
	t.Helper()
	m := sim.New(sim.Config{Procs: 2, JitterPct: -1})
	return m, NewPool(m, capacity, fields, "test")
}

// runOn runs f as proc 0's program and returns any recorded error.
func runOn(m *sim.Machine, f func(p *sim.Proc)) error {
	m.Spawn(0, f)
	errs := m.Run()
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}

// TestAllocFreeRoundTrip: allocated nodes are live, freed nodes are not,
// and slots are recycled.
func TestAllocFreeRoundTrip(t *testing.T) {
	m, pl := newMachinePool(t, 4, 2)
	err := runOn(m, func(p *sim.Proc) {
		r := pl.Alloc(p)
		if !pl.Valid(r) {
			t.Error("fresh ref not valid")
		}
		pl.Store(p, r, 0, 11)
		pl.Store(p, r, 1, 22)
		if pl.Load(p, r, 0) != 11 || pl.Load(p, r, 1) != 22 {
			t.Error("field round trip failed")
		}
		pl.Free(p, r)
		if pl.Valid(r) {
			t.Error("freed ref still valid")
		}
		r2 := pl.Alloc(p)
		if r2 == r {
			t.Error("recycled slot produced an identical ref (generation not bumped)")
		}
		if r2.Index() != r.Index() {
			t.Error("LIFO free list did not recycle the slot")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := pl.Stats(); s.Allocs != 2 || s.Frees != 1 || s.Live != 1 {
		t.Fatalf("stats = %+v", pl.Stats())
	}
}

// TestUseAfterFreeDetected: dereferencing a stale Ref is the simulator's
// segfault — a *mem.Violation reported through Machine.Run.
func TestUseAfterFreeDetected(t *testing.T) {
	m, pl := newMachinePool(t, 4, 2)
	err := runOn(m, func(p *sim.Proc) {
		r := pl.Alloc(p)
		pl.Free(p, r)
		pl.Load(p, r, 0) // must panic
	})
	var v *mem.Violation
	if err == nil || !errors.As(err, &v) || v.Op != "get" {
		t.Fatalf("expected get violation, got %v", err)
	}
}

// TestDoubleFreeDetected: freeing twice is a violation.
func TestDoubleFreeDetected(t *testing.T) {
	m, pl := newMachinePool(t, 4, 2)
	err := runOn(m, func(p *sim.Proc) {
		r := pl.Alloc(p)
		pl.Free(p, r)
		pl.Free(p, r)
	})
	var v *mem.Violation
	if err == nil || !errors.As(err, &v) || v.Op != "free" {
		t.Fatalf("expected free violation, got %v", err)
	}
}

// TestStaleAfterReallocDetected: a ref from a previous generation of a
// recycled slot is rejected even though the slot is live again.
func TestStaleAfterReallocDetected(t *testing.T) {
	m, pl := newMachinePool(t, 2, 1)
	err := runOn(m, func(p *sim.Proc) {
		r := pl.Alloc(p)
		pl.Free(p, r)
		r2 := pl.Alloc(p) // same slot, new generation
		_ = r2
		pl.Load(p, r, 0)
	})
	var v *mem.Violation
	if err == nil || !errors.As(err, &v) {
		t.Fatalf("expected violation, got %v", err)
	}
}

// TestExhaustion: an empty pool panics with ErrExhausted — the OOM the
// delay experiments emulate.
func TestExhaustion(t *testing.T) {
	m, pl := newMachinePool(t, 2, 1)
	err := runOn(m, func(p *sim.Proc) {
		pl.Alloc(p)
		pl.Alloc(p)
		pl.Alloc(p)
	})
	var ex *ErrExhausted
	if err == nil || !errors.As(err, &ex) {
		t.Fatalf("expected ErrExhausted, got %v", err)
	}
}

// TestNilDeref: nil Refs are rejected like null pointers.
func TestNilDeref(t *testing.T) {
	m, pl := newMachinePool(t, 2, 1)
	err := runOn(m, func(p *sim.Proc) { pl.Load(p, 0, 0) })
	if err == nil || !strings.Contains(err.Error(), "nil Ref") {
		t.Fatalf("expected nil-deref panic, got %v", err)
	}
}

// TestFieldStoresAreBuffered: node field writes go through the TSO store
// buffer — a peer does not see them until a fence.
func TestFieldStoresAreBuffered(t *testing.T) {
	m := sim.New(sim.Config{Procs: 2, JitterPct: -1})
	pl := NewPool(m, 2, 1, "buf")
	var r mem.Ref
	var early, late uint64
	m.Spawn(0, func(p *sim.Proc) {
		r = pl.Alloc(p)
		pl.Store(p, r, 0, 5)
		p.Work(20000) // hold it in the buffer
		p.Fence()
		p.Work(20000)
	})
	m.Spawn(1, func(p *sim.Proc) {
		p.SleepUntil(10000)
		early = pl.Load(p, r, 0)
		p.SleepUntil(40000)
		late = pl.Load(p, r, 0)
	})
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	if early != 0 {
		t.Fatalf("peer saw an undrained field store: %d", early)
	}
	if late != 5 {
		t.Fatalf("peer missed the fenced field store: %d", late)
	}
}

// TestAllocFreeProperty: any interleaved sequence of allocs and frees keeps
// Live == Allocs-Frees, never hands out a live slot twice, and all Refs of
// live nodes remain valid.
func TestAllocFreeProperty(t *testing.T) {
	f := func(ops []byte, seed uint64) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		m := sim.New(sim.Config{Procs: 1, Seed: seed})
		pl := NewPool(m, 16, 2, "prop")
		ok := true
		m.Spawn(0, func(p *sim.Proc) {
			var live []mem.Ref
			for _, op := range ops {
				if op%2 == 0 && len(live) < 16 {
					r := pl.Alloc(p)
					for _, x := range live {
						if x.Untagged() == r.Untagged() {
							ok = false
						}
					}
					live = append(live, r)
				} else if len(live) > 0 {
					i := int(op/2) % len(live)
					pl.Free(p, live[i])
					live = append(live[:i], live[i+1:]...)
				}
				for _, x := range live {
					if !pl.Valid(x) {
						ok = false
					}
				}
				if pl.Stats().Live != len(live) {
					ok = false
				}
			}
		})
		if errs := m.Run(); errs != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPendingStoreIntoRecycledSlot documents an intentional hazard of the
// model: a store buffered before a node is freed drains later into the
// recycled slot. This is precisely the corruption unsafe reclamation causes
// on real hardware; correct schemes must make it impossible to free a node
// while such a store can exist.
func TestPendingStoreIntoRecycledSlot(t *testing.T) {
	m := sim.New(sim.Config{Procs: 2, JitterPct: -1})
	pl := NewPool(m, 1, 1, "haz")
	var r mem.Ref
	m.Spawn(0, func(p *sim.Proc) {
		// Writer: buffers a store to the node, fences much later.
		pl.Store(p, r, 0, 0xDEAD)
		p.Work(50000)
		p.Fence()
	})
	m.Spawn(1, func(p *sim.Proc) {
		// Reclaimer: frees and reallocates the slot meanwhile.
		p.SleepUntil(10000)
		pl.Free(p, r)
		r2 := pl.Alloc(p)
		pl.Store(p, r2, 0, 7)
		p.Fence()
		p.SleepUntil(100000)
		if got := pl.Load(p, r2, 0); got != 0xDEAD {
			t.Errorf("expected late-drain corruption, field = %#x", got)
		}
	})
	// Setup: proc 0 allocates before the race via a pre-run poke.
	r = mem.MakeRef(0, 1)
	pl.gens[0] = 1
	pl.free = pl.free[:0]
	pl.stats.Allocs = 1
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
}
