// Package simlist is the Harris–Michael lock-free sorted linked list
// (paper reference [24], Appendix B) running on the TSO machine simulator —
// the workload of Figures 3 and 5 (left panels), executed in virtual time.
//
// It mirrors internal/list exactly: nodes carry (key, next) with the
// logical-deletion mark in the next word's low tag bit, and every traversal
// follows the §3.2 hazard pointer methodology — read link, Protect, re-read
// to validate, only then dereference. Because node fields live in simulated
// memory, a scheme that frees too early produces a *mem.Violation (the
// simulator's segfault) in the reader, not a silent wrong answer.
package simlist

import (
	"fmt"

	"qsense/internal/mem"
	"qsense/internal/sim"
	"qsense/internal/sim/simmem"
	"qsense/internal/sim/simsmr"
)

// HPs is the number of hazard pointers a handle uses: prev, cur, next.
const HPs = 3

const (
	hpPrev = 0
	hpCur  = 1

	fKey  = 0
	fNext = 1

	markBit = 1

	headKey = uint64(0)
	tailKey = ^uint64(0)
)

// Fields is the number of simulated words per node.
const Fields = 2

// List is the shared structure. Build with New during machine setup.
type List struct {
	pool *simmem.Pool
	head mem.Ref
	tail mem.Ref
}

// New creates an empty list backed by a fresh pool of the given node
// capacity (two slots go to the sentinels). Valid user keys lie in
// [1, 2^64-2].
func New(m *sim.Machine, capacity int) *List {
	pool := simmem.NewPool(m, capacity, Fields, "simlist")
	l := &List{pool: pool}
	l.tail = pool.AllocHost()
	pool.PokeField(l.tail, fKey, tailKey)
	pool.PokeField(l.tail, fNext, 0)
	l.head = pool.AllocHost()
	pool.PokeField(l.head, fKey, headKey)
	pool.PokeField(l.head, fNext, uint64(l.tail))
	return l
}

// Pool exposes the node pool (stats, Free hookup).
func (l *List) Pool() *simmem.Pool { return l.pool }

// FillHost inserts keys host-side during setup (cost-free, pre-Run).
// Returns how many were new.
func (l *List) FillHost(keys []uint64) int {
	added := 0
	for _, k := range keys {
		if l.insertHost(k) {
			added++
		}
	}
	return added
}

func (l *List) insertHost(key uint64) bool {
	if key <= headKey || key >= tailKey {
		panic(fmt.Sprintf("simlist: key %d out of range", key))
	}
	prev := l.head
	cur := mem.Ref(l.pool.PeekField(prev, fNext)).Untagged()
	for l.pool.PeekField(cur, fKey) < key {
		prev = cur
		cur = mem.Ref(l.pool.PeekField(cur, fNext)).Untagged()
	}
	if l.pool.PeekField(cur, fKey) == key {
		return false
	}
	n := l.pool.AllocHost()
	l.pool.PokeField(n, fKey, key)
	l.pool.PokeField(n, fNext, uint64(cur))
	l.pool.PokeField(prev, fNext, uint64(n))
	return true
}

// Keys walks the drained list host-side (post-Run validation).
func (l *List) Keys() []uint64 {
	var ks []uint64
	r := mem.Ref(l.pool.PeekField(l.head, fNext)).Untagged()
	for r != l.tail {
		w := l.pool.PeekField(r, fNext)
		if w&markBit == 0 {
			ks = append(ks, l.pool.PeekField(r, fKey))
		}
		r = mem.Ref(w).Untagged()
	}
	return ks
}

// Validate checks structural invariants host-side: strictly increasing
// unmarked keys, proper tail termination. Returns the unmarked node count
// and an error description ("" if sound).
func (l *List) Validate() (int, string) {
	prevKey := headKey
	n := 0
	r := mem.Ref(l.pool.PeekField(l.head, fNext)).Untagged()
	for r != l.tail {
		if r.IsNil() {
			return n, "nil link before tail sentinel"
		}
		if !l.pool.Valid(r) {
			return n, "reachable node is not live (freed while linked)"
		}
		w := l.pool.PeekField(r, fNext)
		if w&markBit == 0 {
			k := l.pool.PeekField(r, fKey)
			if k <= prevKey {
				return n, "keys not strictly increasing"
			}
			prevKey = k
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	return n, ""
}

// CountReachable walks the drained list host-side and returns the number of
// live nodes reachable from head, sentinels and marked nodes included —
// this must equal the pool's live count once every retired node has been
// collected (leak check).
func (l *List) CountReachable() int {
	n := 1 // head
	r := mem.Ref(l.pool.PeekField(l.head, fNext)).Untagged()
	for !r.IsNil() {
		n++
		if r == l.tail {
			break
		}
		r = mem.Ref(l.pool.PeekField(r, fNext)).Untagged()
	}
	return n
}

// Handle is one proc's accessor: guard + proc context. Use only from the
// proc's program.
type Handle struct {
	l *List
	p *sim.Proc
	g simsmr.Guard
}

// NewHandle binds proc p's guard to the list.
func (l *List) NewHandle(p *sim.Proc, g simsmr.Guard) *Handle {
	return &Handle{l: l, p: p, g: g}
}

// search locates the first node with key >= key, unlinking (and retiring)
// marked nodes it passes — the paper's search_and_cleanup (Algorithm 7).
// On return prev and cur are protected, prev.key < key <= cur.key.
func (h *Handle) search(key uint64) (prev, cur mem.Ref) {
	pool := h.l.pool
retry:
	for {
		prev = h.l.head
		h.g.Protect(hpPrev, prev)
		cur = mem.Ref(pool.Load(h.p, prev, fNext)).Untagged()
		for {
			// Protect cur, then validate the link it came from
			// (§3.2 step 4). hp pays a fence here; cadence/qsense
			// do not — that is the experiment.
			h.g.Protect(hpCur, cur)
			if mem.Ref(pool.Load(h.p, prev, fNext)) != cur {
				continue retry
			}
			nextWord := pool.Load(h.p, cur, fNext)
			next := mem.Ref(nextWord).Untagged()
			if nextWord&markBit != 0 {
				// cur is logically deleted: splice it out; the
				// unlinker retires it.
				if _, ok := pool.CAS(h.p, prev, fNext, uint64(cur), uint64(next)); !ok {
					continue retry
				}
				h.g.Retire(cur)
				cur = next
				continue
			}
			if pool.Load(h.p, cur, fKey) >= key {
				return prev, cur
			}
			prev = cur
			h.g.Protect(hpPrev, prev)
			cur = next
		}
	}
}

// Contains reports whether key is in the set.
func (h *Handle) Contains(key uint64) bool {
	h.g.Begin()
	_, cur := h.search(key)
	found := h.l.pool.Load(h.p, cur, fKey) == key
	h.g.ClearHPs()
	return found
}

// Read looks up key and, if found, invokes use while the node is still
// covered by this handle's hazard pointer — the paper's R5 ("use n's
// memory"): an application reading through a protected reference for an
// arbitrary amount of time. use receives a loader; every call is one
// simulated load of the node's key field, i.e. one access hazard. This is
// the access pattern under which the unsafe ablations (NoFence,
// DisableDeferral) materialize as use-after-free violations.
func (h *Handle) Read(key uint64, use func(load func() uint64)) bool {
	h.g.Begin()
	defer h.g.ClearHPs()
	_, cur := h.search(key)
	if h.l.pool.Load(h.p, cur, fKey) != key {
		return false
	}
	if use != nil {
		use(func() uint64 { return h.l.pool.Load(h.p, cur, fKey) })
	}
	return true
}

// Insert adds key; false if already present.
func (h *Handle) Insert(key uint64) bool {
	if key <= headKey || key >= tailKey {
		panic(fmt.Sprintf("simlist: key %d out of range", key))
	}
	h.g.Begin()
	defer h.g.ClearHPs()
	pool := h.l.pool
	var nref mem.Ref
	for {
		prev, cur := h.search(key)
		if pool.Load(h.p, cur, fKey) == key {
			if !nref.IsNil() {
				pool.Free(h.p, nref) // allocated, never linked
			}
			return false
		}
		if nref.IsNil() {
			nref = pool.Alloc(h.p)
			pool.Store(h.p, nref, fKey, key)
		}
		pool.Store(h.p, nref, fNext, uint64(cur))
		// The linking CAS is a full fence, draining the node
		// initialization stores — publication is safe on TSO.
		if _, ok := pool.CAS(h.p, prev, fNext, uint64(cur), uint64(nref)); ok {
			return true
		}
	}
}

// Delete removes key; false if absent. Two-phase: mark (logical), then
// unlink (physical); the unlinker retires.
func (h *Handle) Delete(key uint64) bool {
	h.g.Begin()
	defer h.g.ClearHPs()
	pool := h.l.pool
	for {
		prev, cur := h.search(key)
		if pool.Load(h.p, cur, fKey) != key {
			return false
		}
		nextWord := pool.Load(h.p, cur, fNext)
		if nextWord&markBit != 0 {
			continue // another deleter won; help via search and retry
		}
		if _, ok := pool.CAS(h.p, cur, fNext, nextWord, nextWord|markBit); !ok {
			continue
		}
		if _, ok := pool.CAS(h.p, prev, fNext, uint64(cur), nextWord); ok {
			h.g.Retire(cur)
		} else {
			h.search(key) // cleanup pass unlinks and retires
		}
		return true
	}
}
