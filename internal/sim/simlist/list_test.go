package simlist_test

import (
	"strings"
	"testing"
	"testing/quick"

	"qsense/internal/sim"
	"qsense/internal/sim/simlist"
	"qsense/internal/sim/simsmr"
)

// newListHP builds a machine + list + HP domain (the simplest robust
// scheme) for list-semantics tests. t may be nil (quick.Check closures).
func newListHP(t *testing.T, procs, capacity int, seed uint64) (*sim.Machine, *simlist.List, simsmr.Domain) {
	if t != nil {
		t.Helper()
	}
	m := sim.New(sim.Config{Procs: procs, Seed: seed})
	l := simlist.New(m, capacity)
	d, err := simsmr.NewHP(simsmr.Config{Machine: m, Pool: l.Pool(), HPs: simlist.HPs, R: 8})
	if err != nil {
		panic(err)
	}
	return m, l, d
}

// TestSequentialModel: with one proc, any op sequence matches a map model
// (the list is a set).
func TestSequentialModel(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		m, l, d := newListHP(nil, 1, 256, seed)
		model := make(map[uint64]bool)
		ok := true
		m.Spawn(0, func(p *sim.Proc) {
			h := l.NewHandle(p, d.Guard(0))
			for _, op := range ops {
				k := uint64(op%31) + 1
				switch (op >> 5) % 3 {
				case 0:
					if h.Insert(k) != !model[k] {
						ok = false
					}
					model[k] = true
				case 1:
					if h.Delete(k) != model[k] {
						ok = false
					}
					delete(model, k)
				case 2:
					if h.Contains(k) != model[k] {
						ok = false
					}
				}
			}
		})
		if errs := m.Run(); errs != nil {
			return false
		}
		if !ok {
			return false
		}
		keys := l.Keys()
		if len(keys) != len(model) {
			return false
		}
		for _, k := range keys {
			if !model[k] {
				return false
			}
		}
		_, bad := l.Validate()
		return bad == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHostFill: setup-time fill produces a sorted, valid list and correct
// live count.
func TestHostFill(t *testing.T) {
	m := sim.New(sim.Config{Procs: 1})
	l := simlist.New(m, 64)
	added := l.FillHost([]uint64{5, 3, 9, 3, 1, 9, 7})
	if added != 5 {
		t.Fatalf("added = %d, want 5", added)
	}
	keys := l.Keys()
	want := []uint64{1, 3, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if n, bad := l.Validate(); bad != "" || n != 5 {
		t.Fatalf("validate: n=%d bad=%q", n, bad)
	}
	if l.CountReachable() != 7 { // 5 keys + 2 sentinels
		t.Fatalf("reachable = %d", l.CountReachable())
	}
}

// TestConcurrentDeterministic: the same seed yields the same final key set
// and machine stats; concurrency in the simulator is reproducible.
func TestConcurrentDeterministic(t *testing.T) {
	run := func() ([]uint64, sim.Stats) {
		m, l, d := newListHP(t, 4, 512, 42)
		l.FillHost([]uint64{2, 4, 6, 8, 10, 12, 14, 16})
		for i := 0; i < 4; i++ {
			m.Spawn(i, func(p *sim.Proc) {
				h := l.NewHandle(p, d.Guard(p.ID()))
				for p.Now() < 150_000 {
					k := 1 + p.Rand()%31
					switch p.Rand() % 4 {
					case 0:
						h.Insert(k)
					case 1:
						h.Delete(k)
					default:
						h.Contains(k)
					}
					p.OpDone()
				}
			})
		}
		if errs := m.Run(); errs != nil {
			t.Fatal(errs)
		}
		if _, bad := l.Validate(); bad != "" {
			t.Fatalf("invalid list: %s", bad)
		}
		return l.Keys(), m.Stats()
	}
	k1, s1 := run()
	k2, s2 := run()
	if len(k1) != len(k2) || s1 != s2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", k1, s1, k2, s2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("final keys diverged: %v vs %v", k1, k2)
		}
	}
}

// TestKeyRangeRejected: sentinel keys are programming errors, surfaced as
// proc errors.
func TestKeyRangeRejected(t *testing.T) {
	m, l, d := newListHP(t, 1, 8, 0)
	m.Spawn(0, func(p *sim.Proc) {
		h := l.NewHandle(p, d.Guard(0))
		h.Insert(0)
	})
	errs := m.Run()
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "out of range") {
		t.Fatalf("errs = %v", errs)
	}
}

// TestInsertContentionReuse: under heavy same-key contention, losers free
// their never-linked node (Allocated -> Free, §2.1) rather than leak it.
func TestInsertContentionReuse(t *testing.T) {
	m, l, d := newListHP(t, 4, 64, 7)
	for i := 0; i < 4; i++ {
		m.Spawn(i, func(p *sim.Proc) {
			h := l.NewHandle(p, d.Guard(p.ID()))
			for round := uint64(0); round < 40; round++ {
				h.Insert(1 + round%4)
				h.Delete(1 + (round+1)%4)
			}
		})
	}
	if errs := m.Run(); errs != nil {
		t.Fatal(errs)
	}
	d.CollectAll()
	if live, reach := l.Pool().Stats().Live, l.CountReachable(); live != reach {
		t.Fatalf("leak: %d live vs %d reachable", live, reach)
	}
}
