package simskip

import (
	"errors"
	"testing"

	"qsense/internal/mem"
)

const sweep = 400 // seeds per protocol; deterministic, a few ms each

func violated(r Result) bool {
	for _, err := range r.Errs {
		var v *mem.Violation
		if errors.As(err, &v) {
			return true
		}
	}
	return false
}

// TestStaleLinkReachesUAF: under the pre-fix protocol some seeds publish M
// frozen at (or pointing to) the freed S_old and a reader faults on it —
// the native repro's crash, reproduced in virtual time. The sweep must
// also contain clean runs where the insert simply completed, so the
// violation is a schedule property, not a modeling artifact.
func TestStaleLinkReachesUAF(t *testing.T) {
	var uafs, links int
	for seed := uint64(0); seed < sweep; seed++ {
		r := Run(Config{Protocol: StaleLink, Seed: seed})
		if violated(r) {
			uafs++
		}
		if r.Linked {
			links++
		}
	}
	if uafs == 0 {
		t.Fatal("stale-link protocol never reached the use-after-free across the sweep")
	}
	if links == 0 {
		t.Fatal("stale-link protocol never completed an insert — schedule too hostile")
	}
	t.Logf("stale-link: %d/%d seeds reached the violation (%d linked)", uafs, sweep, links)
}

// TestClaimLinkSafeAcrossSweep: the claim-then-link protocol must survive
// every seed of the same schedule — no proc ever faults — while still
// exercising both outcomes (links and mark-forced abandons), and an
// abandon must leave M unpublished: the no-re-link half of the package's
// invariant 2.
func TestClaimLinkSafeAcrossSweep(t *testing.T) {
	var links, abandons int
	for seed := uint64(0); seed < sweep; seed++ {
		r := Run(Config{Protocol: ClaimLink, Seed: seed})
		if violated(r) {
			t.Fatalf("seed %d: claim-then-link faulted: %v", seed, r.Errs)
		}
		for _, err := range r.Errs {
			t.Fatalf("seed %d: unexpected proc error: %v", seed, err)
		}
		if r.Linked {
			links++
		}
		if r.Abandoned {
			abandons++
			if r.Linked {
				t.Fatalf("seed %d: linked after abandoning — mark observed yet published", seed)
			}
			if r.FinalEdgeP == r.M {
				t.Fatalf("seed %d: abandoned node reachable through the predecessor edge", seed)
			}
		}
	}
	if links == 0 {
		t.Fatal("claim-then-link never completed an insert across the sweep")
	}
	if abandons == 0 {
		t.Fatal("the mark never beat the claim across the sweep — abandon path unexercised")
	}
	t.Logf("claim-link: %d links, %d abandons over %d seeds, zero faults", links, abandons, sweep)
}

// TestForcedMarkDrivesAbandonPath force-drives the insert retry path: the
// marker is scheduled to win before the inserter's first claim in every
// run, so a ClaimLink inserter MUST observe the mark during the claim,
// abandon the level, and never publish M there — deterministically, for
// every seed. This is the unit test for "mark observed => level
// permanently dead, never re-published".
func TestForcedMarkDrivesAbandonPath(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		r := Run(Config{Protocol: ClaimLink, Seed: seed, ForceMarkFirst: true})
		if violated(r) {
			t.Fatalf("seed %d: forced schedule faulted: %v", seed, r.Errs)
		}
		if !r.Abandoned {
			t.Fatalf("seed %d: inserter did not observe the forced mark", seed)
		}
		if r.Linked {
			t.Fatalf("seed %d: inserter published M after observing the mark", seed)
		}
		if r.FinalEdgeP.IsNil() {
			t.Fatalf("seed %d: predecessor edge nil", seed)
		}
		if r.FinalEdgeP == r.M {
			t.Fatalf("seed %d: abandoned node reachable through the predecessor edge", seed)
		}
	}
}

// TestRunDeterministic: equal configs produce identical outcomes — the
// property the seed sweep's coverage argument rests on.
func TestRunDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := Run(Config{Protocol: StaleLink, Seed: seed})
		b := Run(Config{Protocol: StaleLink, Seed: seed})
		if violated(a) != violated(b) || a.Linked != b.Linked ||
			a.Abandoned != b.Abandoned || a.FinalEdgeP != b.FinalEdgeP {
			t.Fatalf("seed %d: two runs disagree: %+v vs %+v", seed, a, b)
		}
	}
}
