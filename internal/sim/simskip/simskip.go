// Package simskip drives the skip list's upper-level linking window on
// the TSO machine simulator (internal/sim): one upper level around the
// two-inserter/one-deleter schedule of the historical hp/rc
// use-after-free (internal/skiplist's package doc, "historical violation
// of invariant 2"), with node words in simulated memory so a stale
// dereference raises *mem.Violation — the simulator's segmentation fault.
//
// internal/tso's SkipList litmus systems explore the same schedule
// exhaustively over hand-written straight-line programs; this package
// complements them with the real control flow — claim loops, link
// retries, helping deleters, a searcher following the full
// protect/validate discipline — executed deterministically in virtual
// time. A seed sweep replaces exhaustive exploration: under the stale
// pre-store protocol some seeds reach the violation, under
// claim-then-link none may, and the forced schedule (the marker always
// beating the inserter's claim) must take the abandon path — the mark
// observed during a claim means the level is permanently dead and the
// node is never published there.
package simskip

import (
	"qsense/internal/mem"
	"qsense/internal/sim"
	"qsense/internal/sim/simmem"
)

// Protocol selects the upper-level linking protocol under test.
type Protocol int

const (
	// StaleLink is the pre-fix protocol: the node's own next word was
	// pre-stored by the level-0 search and the mark check is a separate
	// load before the link CAS, which uses the freshly searched
	// successor — the own word is never re-claimed.
	StaleLink Protocol = iota
	// ClaimLink is the fixed protocol: each link attempt first claims
	// the own word (CAS from its previous value to the freshly searched
	// successor; a mark fails the claim and kills the level), then links
	// from that same successor.
	ClaimLink
)

// Config parameterizes one run.
type Config struct {
	Protocol Protocol
	// Seed drives the machine's deterministic jitter and the per-proc
	// phase offsets; a sweep over seeds covers the interleaving space.
	Seed uint64
	// ForceMarkFirst pins the schedule instead of randomizing it: the
	// marker runs immediately and the inserter starts late, so a
	// ClaimLink inserter must observe the mark during its claim and take
	// the abandon path in every run — the forced insert-retry schedule.
	ForceMarkFirst bool
}

// Result reports what one run did.
type Result struct {
	// Errs are the per-proc errors; a *mem.Violation inside is the
	// use-after-free (a proc dereferenced a freed node).
	Errs []error
	// Linked reports the inserter published M at the upper level.
	Linked bool
	// Abandoned reports the inserter observed the deletion mark during
	// its claim (or mark check) and gave the level up.
	Abandoned bool
	// FinalEdgeP is the predecessor edge after the run (host view) and M
	// the inserted node's ref, so tests can assert an abandoned node was
	// never published.
	FinalEdgeP, M mem.Ref
	// SOldFreed reports the deleter reclaimed S_old during the run.
	SOldFreed bool
}

const (
	fNext   = 0
	markBit = 1
)

func isMarked(w uint64) bool { return w&markBit != 0 }

// Run executes the scenario once. Shared state: predecessor P with chain
// P -> S_old -> S_new at the modeled level; the inserter links M behind P,
// S_old's deleter splices and frees S_old, M's deleter marks M's word, and
// a searcher (the second inserter's positioning search) walks the edge
// with full hazard pointer discipline — protect, fence, revalidate the
// edge the ref was read from (the clean predecessor edge for a frozen
// word), only then dereference.
func Run(cfg Config) Result {
	m := sim.New(sim.Config{Procs: 4, Seed: cfg.Seed})
	pool := simmem.NewPool(m, 8, 1, "simskip")
	hpCell := m.Reserve(1) // the searcher's hazard pointer slot

	P := pool.AllocHost()
	sOld := pool.AllocHost()
	sNew := pool.AllocHost()
	M := pool.AllocHost()
	pool.PokeField(P, fNext, uint64(sOld))
	pool.PokeField(sOld, fNext, uint64(sNew))
	pool.PokeField(sNew, fNext, 0)
	if cfg.Protocol == StaleLink {
		pool.PokeField(M, fNext, uint64(sOld)) // the level-0 search's pre-store
	} else {
		pool.PokeField(M, fNext, 0) // meaningful only from the claim on
	}

	var res Result
	phase := func(p *sim.Proc, span uint64) {
		if span > 0 {
			p.Sleep(p.Rand() % span)
		}
	}

	// Proc 0: the searcher.
	m.Spawn(0, func(p *sim.Proc) {
		searcherSpan := uint64(6000)
		if cfg.ForceMarkFirst {
			searcherSpan = 0
		}
		phase(p, searcherSpan)
		w := pool.Load(p, P, fNext) // P is immortal; its word is never marked
		r := mem.Ref(w).Untagged()
		if r != M {
			if r == sNew {
				return // fresh chain: nothing to check
			}
			// Walking into S_old: protect, revalidate the edge it was
			// read from, dereference.
			p.Store(hpCell, uint64(r))
			p.Fence()
			if pool.Load(p, P, fNext) != w {
				return
			}
			pool.Load(p, r, fNext)
			return
		}
		mw := pool.Load(p, M, fNext) // M is immortal in this scenario
		tgt := mem.Ref(mw).Untagged()
		if tgt.IsNil() {
			return
		}
		p.Store(hpCell, uint64(tgt))
		p.Fence()
		if !isMarked(mw) {
			// Clean word: revalidate it, then walk into the successor.
			if pool.Load(p, M, fNext) != mw {
				return
			}
			pool.Load(p, tgt, fNext)
			return
		}
		// Frozen word: revalidate the CLEAN edge to M, splice, and only
		// then touch the installed successor — internal/skiplist's
		// splice path exactly.
		if pool.Load(p, P, fNext) != w {
			return
		}
		if _, ok := pool.CAS(p, P, fNext, uint64(M), uint64(tgt)); ok {
			pool.Load(p, tgt, fNext)
		}
	})

	// Proc 1: S_old's deleter — cleanup walk, hazard scan, free.
	m.Spawn(1, func(p *sim.Proc) {
		deleterSpan := uint64(3000)
		if cfg.ForceMarkFirst {
			deleterSpan = 0
		}
		phase(p, deleterSpan)
		unlinked := false
		for tries := 0; tries < 8 && !unlinked; tries++ {
			w := pool.Load(p, P, fNext)
			switch mem.Ref(w).Untagged() {
			case sOld:
				_, unlinked = pool.CAS(p, P, fNext, w, uint64(sNew))
			case sNew:
				unlinked = true // already out of the chain
			case M:
				mw := pool.Load(p, M, fNext)
				if mem.Ref(mw).Untagged() != sOld {
					unlinked = true // M routes past S_old
					break
				}
				if isMarked(mw) {
					// Frozen at S_old: the real cleanup splices M from
					// the clean edge first; S_old stays reachable and
					// must not be freed yet.
					return
				}
				_, unlinked = pool.CAS(p, M, fNext, mw, uint64(sNew))
			}
		}
		if !unlinked {
			return
		}
		if p.Load(hpCell) == uint64(sOld) {
			return // protected
		}
		pool.Free(p, sOld)
		res.SOldFreed = true
	})

	// Proc 2: M's inserter finishing the upper level.
	m.Spawn(2, func(p *sim.Proc) {
		switch {
		case cfg.ForceMarkFirst:
			p.Sleep(4000) // let the marker win every race
		default:
			phase(p, 4000)
		}
		for attempt := 0; attempt < 6; attempt++ {
			w := pool.Load(p, P, fNext) // the fresh search's successor
			succ := mem.Ref(w).Untagged()
			if succ != sOld && succ != sNew {
				return
			}
			if cfg.Protocol == StaleLink {
				mw := pool.Load(p, M, fNext) // the old separate mark check
				if isMarked(mw) {
					res.Abandoned = true
					return
				}
			} else {
				claimed := false
				for !claimed {
					mw := pool.Load(p, M, fNext)
					if isMarked(mw) {
						res.Abandoned = true // level permanently dead
						return
					}
					if mem.Ref(mw).Untagged() == succ {
						claimed = true
						break
					}
					_, claimed = pool.CAS(p, M, fNext, mw, uint64(succ))
				}
			}
			if _, ok := pool.CAS(p, P, fNext, uint64(succ), uint64(M)); ok {
				res.Linked = true
				return
			}
		}
	})

	// Proc 3: M's deleter marking the level (the top-down marking pass).
	m.Spawn(3, func(p *sim.Proc) {
		markerSpan := uint64(5000)
		if cfg.ForceMarkFirst {
			markerSpan = 0
		}
		phase(p, markerSpan)
		for {
			mw := pool.Load(p, M, fNext)
			if isMarked(mw) {
				return
			}
			if _, ok := pool.CAS(p, M, fNext, mw, mw|markBit); ok {
				return
			}
		}
	})

	res.Errs = m.Run()
	res.FinalEdgeP = mem.Ref(pool.PeekField(P, fNext)).Untagged()
	res.M = M
	return res
}
