// Package stack implements the Treiber lock-free LIFO stack (Treiber 1986;
// the running example of the hazard pointer literature) over the
// mem+reclaim substrate. One hazard pointer per worker suffices: Pop
// protects the observed top, re-validates, reads through it, and retires
// it after a successful CAS.
//
// Like the queue, the stack is an SMR client rather than part of the
// paper's evaluation — it is the smallest structure that still exhibits
// the full protect/validate/retire cycle, and its top-of-stack contention
// makes it the sharpest ABA test for the generation-tagged substrate: a
// classic Treiber stack with raw pointers corrupts itself exactly where
// this one's tagged CAS fails cleanly and retries.
package stack

import (
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// HPs is the number of hazard pointers a stack handle uses.
const HPs = 1

type node struct {
	val  uint64
	next atomic.Uint64 // mem.Ref of the node below; 0 at the bottom
	_    [40]byte
}

// Config controls stack construction.
type Config struct {
	// MaxSlots bounds the node pool (default mem default).
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// Stack is the shared structure. Obtain one Handle per worker.
type Stack struct {
	pool *mem.Pool[node]
	top  atomic.Uint64 // Ref of the top node; 0 when empty
}

// New creates an empty stack.
func New(cfg Config) *Stack {
	pool := mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "stack"})
	return &Stack{pool: pool}
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (s *Stack) FreeNode(r mem.Ref) { s.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (s *Stack) Pool() *mem.Pool[node] { return s.pool }

// Len walks the stack without synchronization; only meaningful quiesced.
func (s *Stack) Len() int {
	n := 0
	for r := mem.Ref(s.top.Load()); !r.IsNil(); r = mem.Ref(s.pool.Get(r).next.Load()) {
		n++
	}
	return n
}

// Handle is a worker's accessor. Not safe for concurrent use; create one
// per worker.
type Handle struct {
	s     *Stack
	guard reclaim.Guard
	cache *mem.Cache[node]
}

// NewHandle binds a worker's guard to the stack.
func (s *Stack) NewHandle(g reclaim.Guard) *Handle {
	return &Handle{s: s, guard: g, cache: s.pool.NewCache(0)}
}

// Push adds v on top.
func (h *Handle) Push(v uint64) {
	h.guard.Begin()
	nref, n := h.cache.Alloc()
	n.val = v
	for {
		top := h.s.top.Load()
		n.next.Store(top)
		// The linking CAS publishes the initialized node; no hazard
		// pointer is needed because Push never dereferences top.
		if h.s.top.CompareAndSwap(top, uint64(nref)) {
			return
		}
	}
}

// Pop removes and returns the top value; ok=false when empty.
func (h *Handle) Pop() (v uint64, ok bool) {
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.s.pool
	for {
		top := mem.Ref(h.s.top.Load())
		if top.IsNil() {
			return 0, false
		}
		// Protect, then validate top is still top (§3.2 step 4).
		h.guard.Protect(0, top)
		if mem.Ref(h.s.top.Load()) != top {
			continue
		}
		next := pool.Get(top).next.Load()
		val := pool.Get(top).val
		if h.s.top.CompareAndSwap(uint64(top), next) {
			h.guard.Retire(top)
			return val, true
		}
	}
}

// Drain pops everything through h (teardown helper).
func (h *Handle) Drain() int {
	n := 0
	for {
		if _, ok := h.Pop(); !ok {
			return n
		}
		n++
	}
}
