package stack

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

func newStack(t *testing.T, scheme string, workers int) (*Stack, reclaim.Domain, []*Handle) {
	if t != nil {
		t.Helper()
	}
	s := New(Config{Poison: true})
	d, err := reclaim.New(scheme, reclaim.Config{
		Workers: workers,
		HPs:     HPs,
		Free:    s.FreeNode,
		Q:       8,
		R:       32,
		Rooster: rooster.Config{Interval: 500 * time.Microsecond},
	})
	if err != nil {
		panic(err)
	}
	hs := make([]*Handle, workers)
	for i := range hs {
		hs[i] = s.NewHandle(d.Guard(i))
	}
	return s, d, hs
}

// TestStackLIFO: single-worker LIFO semantics across every scheme.
func TestStackLIFO(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newStack(t, scheme, 1)
			defer d.Close()
			h := hs[0]
			if _, ok := h.Pop(); ok {
				t.Fatal("empty stack popped")
			}
			for i := uint64(1); i <= 100; i++ {
				h.Push(i)
			}
			for i := uint64(100); i >= 1; i-- {
				v, ok := h.Pop()
				if !ok || v != i {
					t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := h.Pop(); ok {
				t.Fatal("drained stack popped")
			}
		})
	}
}

// TestStackSequentialModel: arbitrary op sequences match a slice model.
func TestStackSequentialModel(t *testing.T) {
	f := func(ops []uint16) bool {
		_, d, hs := newStack(nil, "hp", 1)
		defer d.Close()
		h := hs[0]
		var model []uint64
		for _, op := range ops {
			if op%2 == 0 {
				h.Push(uint64(op))
				model = append(model, uint64(op))
			} else {
				v, ok := h.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStackConcurrentConservation: pushers and poppers conserve values
// under every scheme; the poisoned pool catches use-after-free, and the
// generation-tagged CAS defeats the classic Treiber ABA.
func TestStackConcurrentConservation(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 6
			iters := 20000
			if testing.Short() {
				iters = 4000
			}
			s, d, hs := newStack(t, scheme, workers)
			var wg sync.WaitGroup
			sums := make([]struct{ in, out uint64 }, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := uint64(w)*0x9E3779B9 + 7
					for i := 0; i < iters; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						if rng&1 == 0 {
							v := rng>>16 | 1
							h.Push(v)
							sums[w].in += v
						} else if v, ok := h.Pop(); ok {
							sums[w].out += v
						}
					}
				}(w)
			}
			wg.Wait()
			var in, out uint64
			for _, s := range sums {
				in += s.in
				out += s.out
			}
			for {
				v, ok := hs[0].Pop()
				if !ok {
					break
				}
				out += v
			}
			if in != out {
				t.Fatalf("value conservation broken: in=%d out=%d", in, out)
			}
			d.Close()
			if scheme != "none" {
				if live := s.Pool().Stats().Live; live != 0 {
					t.Fatalf("leaked %d nodes", live)
				}
			}
		})
	}
}

// TestStackHotTopContention: all workers hammer the same top; counts must
// balance and nothing faults. This is the sharpest ABA scenario.
func TestStackHotTopContention(t *testing.T) {
	for _, scheme := range []string{"hp", "cadence", "qsense", "rc"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newStack(t, scheme, 4)
			defer d.Close()
			var wg sync.WaitGroup
			var pushes, pops [4]int
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					for i := 0; i < 10000; i++ {
						h.Push(uint64(w)<<32 | uint64(i))
						if _, ok := h.Pop(); ok {
							pops[w]++
						}
						pushes[w]++
					}
				}(w)
			}
			wg.Wait()
			total := 0
			for w := range pushes {
				total += pushes[w] - pops[w]
			}
			remaining := hs[0].Drain()
			if remaining != total {
				t.Fatalf("push/pop imbalance: remaining=%d want %d", remaining, total)
			}
		})
	}
}

// TestStackLen: Len reflects quiesced contents.
func TestStackLen(t *testing.T) {
	s, d, hs := newStack(t, "ebr", 1)
	defer d.Close()
	for i := 0; i < 5; i++ {
		hs[0].Push(uint64(i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	hs[0].Pop()
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}
