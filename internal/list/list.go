// Package list implements the lock-free sorted linked list the paper
// evaluates (Michael, "High performance dynamic lock-free hash tables and
// list-based sets", SPAA 2002 — reference [24]; the paper's Appendix B shows
// exactly this structure wired to QSense).
//
// Nodes live in a mem.Pool and link through tagged Refs: bit 0 of a node's
// next word is the logical-deletion mark. All traversals follow the hazard
// pointer methodology of §3.2: read a link, Protect the target, re-read the
// link to validate, only then dereference. With QSBR guards Protect is a
// no-op and the epoch machinery provides safety; the code is scheme-agnostic
// exactly as the paper's interface intends.
package list

import (
	"math"
	"sync/atomic"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// HPs is the number of hazard pointers a list handle uses: prev, cur, next.
const HPs = 3

const (
	hpPrev = 0
	hpCur  = 1
	hpNext = 2

	markBit = 1 // low Ref tag bit: target of this link is logically deleted

	headKey = math.MinInt64
	tailKey = math.MaxInt64
)

// MinKey and MaxKey bound the usable key domain; the two extremes of int64
// are the head/tail sentinel keys and are treated as out of domain (never
// present, never insertable) rather than matching a sentinel.
const (
	MinKey = headKey + 1
	MaxKey = tailKey - 1
)

// reserved reports whether key collides with a sentinel.
func reserved(key int64) bool { return key == headKey || key == tailKey }

// node is padded so one node fills a cache line together with its slot
// header, as ASCYLIB does for its C nodes.
type node struct {
	key  int64
	next atomic.Uint64 // mem.Ref of successor | markBit
	_    [40]byte
}

// Config controls list construction.
type Config struct {
	// MaxSlots bounds the node pool (default mem default).
	MaxSlots int
	// Poison zeroes freed nodes (tests).
	Poison bool
}

// List is the shared structure. Obtain one Handle per worker.
type List struct {
	pool *mem.Pool[node]
	head mem.Ref // sentinel -inf; never removed
	tail mem.Ref // sentinel +inf; never removed
}

// New creates an empty list with head/tail sentinels. Valid user keys lie in
// (math.MinInt64, math.MaxInt64) exclusive.
func New(cfg Config) *List {
	pool := mem.NewPool[node](mem.Config{MaxSlots: cfg.MaxSlots, Poison: cfg.Poison, Name: "list"})
	l := &List{pool: pool}
	tr, tn := pool.Alloc()
	tn.key = tailKey
	tn.next.Store(0)
	hr, hn := pool.Alloc()
	hn.key = headKey
	hn.next.Store(uint64(tr))
	l.head, l.tail = hr, tr
	return l
}

// FreeNode returns a node to the pool; pass it as reclaim.Config.Free.
func (l *List) FreeNode(r mem.Ref) { l.pool.Free(r) }

// Pool exposes the node pool for stats and tests.
func (l *List) Pool() *mem.Pool[node] { return l.pool }

// Handle is a worker's accessor: guard + allocation magazine. Not safe for
// concurrent use; create one per worker.
type Handle struct {
	l     *List
	guard reclaim.Guard
	cache *mem.Cache[node]
}

// NewHandle binds a worker's guard to the list.
func (l *List) NewHandle(g reclaim.Guard) *Handle {
	return &Handle{l: l, guard: g, cache: l.pool.NewCache(0)}
}

func isMarked(w uint64) bool { return w&markBit != 0 }

// search locates the first node with key >= key, unlinking (and retiring)
// any marked nodes it passes — the paper's search_and_cleanup (Algorithm 7).
// On return prev and cur are protected (which of the two traversal slots
// holds which rotates as the walk advances), prev.key < key <= cur.key, and
// prev.next == cur was observed unmarked.
func (h *Handle) search(key int64) (prev, cur mem.Ref) {
	pool := h.l.pool
retry:
	for {
		ps, cs := hpPrev, hpCur
		prev = h.l.head
		h.guard.Protect(ps, prev) // head is immortal; protected for uniformity
		cur = mem.Ref(pool.Get(prev).next.Load()).Untagged()
		for {
			// Protect cur, then validate the link we got it from
			// (§3.2 step 4; no fence needed beyond the scheme's own).
			h.guard.Protect(cs, cur)
			if mem.Ref(pool.Get(prev).next.Load()) != cur {
				continue retry
			}
			nextWord := pool.Get(cur).next.Load()
			next := mem.Ref(nextWord).Untagged()
			if isMarked(nextWord) {
				// cur is logically deleted: splice it out. The
				// unlinker is the remover and retires it.
				//
				// No re-link exposure here (cf. the skip list's
				// upper-level edge ABA; its package doc's
				// "non-repeating edges" invariant holds trivially):
				// a node enters the chain through exactly one link
				// CAS, made while the node is still private —
				// Insert re-points nptr.next only BEFORE that CAS —
				// so a marked node can never be published again and
				// the splice CAS's expected value cannot repeat.
				// The frozen successor installed below is therefore
				// still reachable through cur, hence unretired
				// (skiplist invariant 3): installing it unprotected
				// is safe.
				if !pool.Get(prev).next.CompareAndSwap(uint64(cur), uint64(next)) {
					continue retry
				}
				h.guard.Retire(cur)
				cur = next
				continue
			}
			if pool.Get(cur).key >= key {
				return prev, cur
			}
			// Advance by swapping slot ROLES, never by copying the
			// protection between slots: scans read slots one at a
			// time, so a cross-slot copy can be missed by a snapshot
			// that reads the destination before the copy and the
			// source after its overwrite — freeing a node mid-use.
			prev = cur
			ps, cs = cs, ps // cur keeps its slot, now in the prev role
			cur = next
		}
	}
}

// Contains reports whether key is in the set. Reserved keys (outside
// [MinKey, MaxKey]) are never present.
func (h *Handle) Contains(key int64) bool {
	if reserved(key) {
		return false
	}
	h.guard.Begin()
	_, cur := h.search(key)
	found := h.l.pool.Get(cur).key == key
	h.guard.ClearHPs()
	return found
}

// Insert adds key; false if already present or reserved.
func (h *Handle) Insert(key int64) bool {
	if reserved(key) {
		return false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	var nref mem.Ref
	var nptr *node
	for {
		prev, cur := h.search(key)
		pool := h.l.pool
		if pool.Get(cur).key == key {
			if !nref.IsNil() {
				// Allocated but never linked: free directly
				// (node state Allocated -> Free, §2.1).
				h.cache.Free(nref)
			}
			return false
		}
		if nref.IsNil() {
			nref, nptr = h.cache.Alloc()
			nptr.key = key
		}
		nptr.next.Store(uint64(cur))
		if pool.Get(prev).next.CompareAndSwap(uint64(cur), uint64(nref)) {
			return true
		}
		// Contention: retry with a fresh search (the node is reused).
	}
}

// Delete removes key; false if absent. Removal is two-phase: mark the
// node's next word (logical), then unlink (physical); whoever unlinks
// retires the node. Reserved keys are absent by definition — without the
// guard, Delete(tailKey) would mark, unlink and retire the tail sentinel.
func (h *Handle) Delete(key int64) bool {
	if reserved(key) {
		return false
	}
	h.guard.Begin()
	defer h.guard.ClearHPs()
	pool := h.l.pool
	for {
		prev, cur := h.search(key)
		if pool.Get(cur).key != key {
			return false
		}
		nextWord := pool.Get(cur).next.Load()
		if isMarked(nextWord) {
			// Another deleter got here first; help and retry.
			continue
		}
		// Logical delete: mark cur's next.
		if !pool.Get(cur).next.CompareAndSwap(nextWord, nextWord|markBit) {
			continue
		}
		// Physical unlink; on failure a later search cleans up.
		if pool.Get(prev).next.CompareAndSwap(uint64(cur), nextWord) {
			h.guard.Retire(cur)
		} else {
			h.search(key)
		}
		return true
	}
}

// Len walks the list without synchronization; only meaningful when quiesced.
func (l *List) Len() int {
	n := 0
	for r := mem.Ref(l.pool.Get(l.head).next.Load()).Untagged(); r != l.tail; {
		w := l.pool.Get(r).next.Load()
		if !isMarked(w) {
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	return n
}

// Keys returns the unmarked keys in order; only meaningful when quiesced.
func (l *List) Keys() []int64 {
	var ks []int64
	for r := mem.Ref(l.pool.Get(l.head).next.Load()).Untagged(); r != l.tail; {
		nd := l.pool.Get(r)
		w := nd.next.Load()
		if !isMarked(w) {
			ks = append(ks, nd.key)
		}
		r = mem.Ref(w).Untagged()
	}
	return ks
}

// Validate checks structural invariants (sorted, strictly increasing,
// properly terminated); only meaningful when quiesced. Returns the number
// of unmarked nodes or an error description.
func (l *List) Validate() (int, string) {
	prevKey := int64(headKey)
	n := 0
	r := mem.Ref(l.pool.Get(l.head).next.Load()).Untagged()
	for r != l.tail {
		if r.IsNil() {
			return n, "nil link before tail sentinel"
		}
		nd := l.pool.Get(r)
		w := nd.next.Load()
		if !isMarked(w) {
			if nd.key <= prevKey {
				return n, "keys not strictly increasing"
			}
			prevKey = nd.key
			n++
		}
		r = mem.Ref(w).Untagged()
	}
	return n, ""
}
