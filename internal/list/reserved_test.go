package list

import (
	"math"
	"testing"
)

// TestListReservedKeys: the two extreme int64 values are the head/tail
// sentinel keys, so every operation must treat them as out of domain — a
// Delete(MaxInt64) used to mark, unlink and retire the tail sentinel, and
// Insert(MinInt64) linked a node Validate cannot order against the head.
func TestListReservedKeys(t *testing.T) {
	l, d, hs := newSet(t, "qsense", 1)
	defer d.Close()
	h := hs[0]
	if !h.Insert(5) {
		t.Fatal("setup Insert")
	}
	for _, k := range []int64{math.MinInt64, math.MaxInt64} {
		if h.Contains(k) {
			t.Errorf("Contains(%d) = true", k)
		}
		if h.Insert(k) {
			t.Errorf("Insert(%d) accepted", k)
		}
		if h.Delete(k) {
			t.Errorf("Delete(%d) = true", k)
		}
	}
	// The domain boundaries themselves are ordinary keys.
	for _, k := range []int64{MinKey, MaxKey} {
		if !h.Insert(k) || !h.Contains(k) || !h.Delete(k) {
			t.Errorf("boundary key %d not usable", k)
		}
	}
	// The structure survived intact: sentinels in place, data untouched.
	if !h.Contains(5) {
		t.Fatal("key 5 lost after reserved-key ops")
	}
	if n, msg := l.Validate(); msg != "" || n != 1 {
		t.Fatalf("Validate after reserved-key ops: n=%d msg=%q", n, msg)
	}
}
