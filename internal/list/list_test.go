package list

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

func newSet(t *testing.T, scheme string, workers int) (*List, reclaim.Domain, []*Handle) {
	t.Helper()
	l := New(Config{Poison: true})
	d, err := reclaim.New(scheme, reclaim.Config{
		Workers: workers,
		HPs:     HPs,
		Free:    l.FreeNode,
		Q:       8,
		R:       32,
		Rooster: rooster.Config{Interval: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*Handle, workers)
	for i := range hs {
		hs[i] = l.NewHandle(d.Guard(i))
	}
	return l, d, hs
}

func TestListBasicSemantics(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			_, d, hs := newSet(t, scheme, 1)
			defer d.Close()
			h := hs[0]
			if h.Contains(10) {
				t.Fatal("empty list contains 10")
			}
			if !h.Insert(10) {
				t.Fatal("insert into empty failed")
			}
			if h.Insert(10) {
				t.Fatal("duplicate insert succeeded")
			}
			if !h.Contains(10) {
				t.Fatal("inserted key not found")
			}
			if !h.Delete(10) {
				t.Fatal("delete failed")
			}
			if h.Delete(10) {
				t.Fatal("double delete succeeded")
			}
			if h.Contains(10) {
				t.Fatal("deleted key still present")
			}
		})
	}
}

func TestListSortedOrder(t *testing.T) {
	l, d, hs := newSet(t, "qsbr", 1)
	defer d.Close()
	h := hs[0]
	keys := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, k := range keys {
		if !h.Insert(k) {
			t.Fatalf("insert %d", k)
		}
	}
	got := l.Keys()
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("keys[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if n, msg := l.Validate(); msg != "" || n != len(want) {
		t.Fatalf("validate: n=%d msg=%q", n, msg)
	}
}

func TestListExtremeKeys(t *testing.T) {
	_, d, hs := newSet(t, "hp", 1)
	defer d.Close()
	h := hs[0]
	lo, hi := int64(math.MinInt64+1), int64(math.MaxInt64-1)
	if !h.Insert(lo) || !h.Insert(hi) || !h.Insert(0) {
		t.Fatal("extreme inserts failed")
	}
	for _, k := range []int64{lo, hi, 0} {
		if !h.Contains(k) {
			t.Fatalf("missing %d", k)
		}
	}
	if !h.Delete(lo) || !h.Delete(hi) {
		t.Fatal("extreme deletes failed")
	}
}

func TestListAgainstModelQuick(t *testing.T) {
	// Property: any sequence of (op, key) agrees with a map model.
	f := func(ops []int16) bool {
		l, d, hs := newSet(t, "qsense", 1)
		defer d.Close()
		h := hs[0]
		model := map[int64]bool{}
		for _, o := range ops {
			key := int64(o % 64)
			switch {
			case o%3 == 0:
				if h.Insert(key) == model[key] {
					return false
				}
				model[key] = true
			case o%3 == 1:
				if h.Delete(key) != model[key] {
					return false
				}
				delete(model, key)
			default:
				if h.Contains(key) != model[key] {
					return false
				}
			}
		}
		if n, msg := l.Validate(); msg != "" || n != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestListReclaimsDeletedNodes(t *testing.T) {
	l, d, hs := newSet(t, "qsbr", 1)
	h := hs[0]
	for round := 0; round < 50; round++ {
		for k := int64(0); k < 100; k++ {
			h.Insert(k)
		}
		for k := int64(0); k < 100; k++ {
			h.Delete(k)
		}
	}
	d.Close()
	// Exactly the two sentinels remain.
	if live := l.Pool().Stats().Live; live != 2 {
		t.Fatalf("live nodes after churn+close = %d, want 2 sentinels", live)
	}
	if l.Pool().Stats().Frees == 0 {
		t.Fatal("nothing was ever reclaimed")
	}
}

func TestListConcurrentDisjointRanges(t *testing.T) {
	for _, scheme := range reclaim.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const span = 512
			l, d, hs := newSet(t, scheme, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					base := int64(w * span)
					for i := 0; i < 3; i++ {
						for k := base; k < base+span; k++ {
							if !h.Insert(k) {
								t.Errorf("w%d: insert %d failed", w, k)
								return
							}
						}
						for k := base; k < base+span; k++ {
							if !h.Contains(k) {
								t.Errorf("w%d: missing %d", w, k)
								return
							}
						}
						for k := base; k < base+span; k++ {
							if !h.Delete(k) {
								t.Errorf("w%d: delete %d failed", w, k)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n, msg := l.Validate(); msg != "" || n != 0 {
				t.Fatalf("validate: n=%d msg=%q", n, msg)
			}
			d.Close()
		})
	}
}

func TestListConcurrentSameKeyContention(t *testing.T) {
	// All workers fight over one key; successful inserts and deletes on a
	// set must alternate, so their totals differ by at most the final
	// membership.
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			const iters = 4000
			l, d, hs := newSet(t, scheme, workers)
			ins := make([]int64, workers)
			del := make([]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					for i := 0; i < iters; i++ {
						if h.Insert(42) {
							ins[w]++
						}
						if h.Delete(42) {
							del[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			var insTot, delTot int64
			for w := 0; w < workers; w++ {
				insTot += ins[w]
				delTot += del[w]
			}
			final := int64(l.Len())
			if insTot-delTot != final {
				t.Fatalf("inserts %d - deletes %d != final %d", insTot, delTot, final)
			}
			if insTot == 0 {
				t.Fatal("no successful operations")
			}
			d.Close()
		})
	}
}

func TestListConcurrentMixedChurn(t *testing.T) {
	// Random mixed workload; afterwards the list must be structurally
	// valid and leak-free (sentinels + remaining members).
	for _, scheme := range []string{"qsbr", "hp", "cadence", "qsense"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			const workers = 4
			iters := 20000
			if testing.Short() {
				iters = 4000
			}
			l, d, hs := newSet(t, scheme, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w]
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for i := 0; i < iters; i++ {
						k := int64(rng.Intn(256))
						switch rng.Intn(10) {
						case 0, 1, 2, 3, 4:
							h.Contains(k)
						case 5, 6, 7:
							h.Insert(k)
						default:
							h.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			n, msg := l.Validate()
			if msg != "" {
				t.Fatalf("validate: %s", msg)
			}
			d.Close()
			if live := l.Pool().Stats().Live; live != uint64(n)+2 {
				t.Fatalf("live=%d, want members %d + 2 sentinels", live, n)
			}
		})
	}
}

func TestListHandleIndependence(t *testing.T) {
	// Two handles on the same guard-less baseline must see each other's
	// writes immediately (same shared structure).
	_, d, hs := newSet(t, "none", 2)
	defer d.Close()
	if !hs[0].Insert(1) {
		t.Fatal("insert")
	}
	if !hs[1].Contains(1) {
		t.Fatal("other handle missed the key")
	}
	if !hs[1].Delete(1) {
		t.Fatal("other handle delete")
	}
	if hs[0].Contains(1) {
		t.Fatal("stale view")
	}
}
