package fault

import (
	"sync"
	"sync/atomic"
	"time"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

// StormConfig shapes a retire storm: healthy goroutines allocating and
// retiring flat out while (typically) one injected victim stays stalled.
type StormConfig struct {
	// Workers is the number of storm goroutines. Default 4.
	Workers int
	// Target is the total number of retires to issue at full speed.
	Target int
	// MinWall keeps a throttled trickle of retires running until this much
	// wall time has passed, even after Target is reached — time-based
	// machinery (rooster deferral, eviction clocks) needs wall time, not
	// just operation count, to demonstrably engage. 0 disables the trickle.
	MinWall time.Duration
	// MaxWall hard-stops the storm (hang safety). Default 30s.
	MaxWall time.Duration
}

// StormResult reports what the storm actually did.
type StormResult struct {
	Retired int
	Elapsed time.Duration
	Walled  bool // MaxWall stopped the storm before Target
}

// RunStorm drives cfg.Workers goroutines through Begin/alloc/Retire/ClearHPs
// cycles against d until Target retires have been issued (then trickles to
// MinWall). Each iteration is a complete operation from the scheme's point
// of view: the storm goroutines keep quiescing, announcing, acknowledging
// and scanning — they are the HEALTHY population whose reclamation the
// stalled victim may or may not be able to block. Blocks until the storm
// ends; guards are leased per worker and released on the way out.
func RunStorm(d reclaim.Domain, alloc func() mem.Ref, cfg StormConfig) StormResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxWall <= 0 {
		cfg.MaxWall = 30 * time.Second
	}
	start := time.Now()
	deadline := start.Add(cfg.MaxWall)
	var retired atomic.Int64
	var walled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := d.Acquire()
			if err != nil {
				return
			}
			defer d.Release(g)
			for i := 0; ; i++ {
				n := retired.Load()
				if n >= int64(cfg.Target) {
					if cfg.MinWall <= 0 || time.Since(start) >= cfg.MinWall {
						return
					}
					// Trickle: keep the protocol moving (rooster polls,
					// eviction checks, era advances) without growing the
					// backlog materially.
					time.Sleep(200 * time.Microsecond)
				}
				if i%64 == 0 && time.Now().After(deadline) {
					walled.Store(true)
					return
				}
				g.Begin()
				g.Retire(alloc())
				g.ClearHPs()
				retired.Add(1)
			}
		}()
	}
	wg.Wait()
	return StormResult{
		Retired: int(retired.Load()),
		Elapsed: time.Since(start),
		Walled:  walled.Load(),
	}
}

// PoolAlloc adapts a typed pool into the storm's alloc callback.
func PoolAlloc[T any](p *mem.Pool[T]) func() mem.Ref {
	return func() mem.Ref {
		r, _ := p.Alloc()
		return r
	}
}
