package fault

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qsense/internal/harness"
	"qsense/internal/mem"
	"qsense/internal/reclaim"
	"qsense/internal/rooster"
)

// The scheme x fault robustness matrix: one reader stalled forever at its
// scheme's most damaging sync point while healthy goroutines drive a retire
// storm. The paper's central robustness claim becomes a test oracle:
//
//   - pointer/interval/batch schemes (hp, cadence, qsense, rc, ibr,
//     hyaline) must keep Stats().Pending under a ceiling derived from
//     R, Q, C and the storm size — the stalled reader pins only what it
//     actually protects;
//   - pure epoch schemes (qsbr, ebr) must demonstrably EXCEED the same
//     ceiling — the stalled reader freezes the epoch and pins everything
//     (the negative control that proves the matrix can fail);
//   - qsense must additionally record Evictions > 0: the stalled reader is
//     detected as silent and expelled, after which the domain drains.
//
// After the storm the victim is released and every scheme — including the
// epoch ones — must drain back under the ceiling (recovery), proving the
// stall was the only thing pinning garbage.
//
// Matrix geometry (explicit R/C so the ceiling is deterministic under
// QSENSE_SHARDS and elastic growth):
const (
	mxWorkers = 8
	mxHPs     = 2
	mxQ       = 8
	mxR       = 96  // the default formula's value for 8x2, frozen
	mxC       = 128 // >= LegalC(113) for this geometry
	mxStorm   = 4   // healthy storm goroutines
)

// mxInterval is the rooster cadence for the tick-deferred schemes; the
// deferral window holds ~3 intervals of retires at the storm's rate, which
// the ceiling accounts for (rate-dependent term, added after the storm).
const mxInterval = 500 * time.Microsecond

// mxCeiling is the static part of the bound: per-guard unscanned backlog
// (R), limbo epochs (Q), hazard slots (HPs) across storm+victim+driver
// guards with generous slack, plus QSense's fallback threshold (C) twice
// over, plus a flat allowance for batch/orphan rounding across shards.
func mxCeiling() int64 {
	return int64(4*(mxStorm+2)*(mxR+mxQ+mxHPs) + 2*mxC + 8192)
}

type matrixCase struct {
	scheme string
	point  reclaim.FaultPoint
	// robust: the scheme must hold Pending <= ceiling with the victim
	// stalled. False marks the negative control (must exceed it).
	robust bool
	// needRef: the victim's stall point is Protect, which needs a live
	// node to protect; the victim then pins exactly that node.
	needRef bool
	// rated: the ceiling gets the rooster-deferral rate term.
	rated bool
}

var matrixCases = []matrixCase{
	{scheme: "qsbr", point: reclaim.FaultQuiesce},
	{scheme: "ebr", point: reclaim.FaultQuiesce},
	{scheme: "hp", point: reclaim.FaultProtect, robust: true, needRef: true},
	{scheme: "cadence", point: reclaim.FaultProtect, robust: true, needRef: true, rated: true},
	{scheme: "qsense", point: reclaim.FaultQuiesce, robust: true, rated: true},
	{scheme: "rc", point: reclaim.FaultProtect, robust: true, needRef: true},
	{scheme: "ibr", point: reclaim.FaultProtect, robust: true, needRef: true},
	{scheme: "hyaline", point: reclaim.FaultInbox, robust: true},
}

// pendingSampler polls Stats().Pending on a fixed tick for the
// pending-vs-time trace behind BENCH_robustness.json.
type pendingSampler struct {
	mu      sync.Mutex
	points  []harness.RobustnessPoint
	stop    chan struct{}
	stopped sync.WaitGroup
}

func startSampler(d reclaim.Domain) *pendingSampler {
	s := &pendingSampler{stop: make(chan struct{})}
	start := time.Now()
	s.stopped.Add(1)
	go func() {
		defer s.stopped.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				p := d.Stats().Pending
				s.mu.Lock()
				s.points = append(s.points, harness.RobustnessPoint{
					ElapsedMS: float64(time.Since(start).Milliseconds()),
					Pending:   p,
				})
				s.mu.Unlock()
			}
		}
	}()
	return s
}

func (s *pendingSampler) finish() []harness.RobustnessPoint {
	close(s.stop)
	s.stopped.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.points
	// Downsample long traces: the JSON is a committed artifact, not a log.
	const maxPts = 80
	if len(pts) > maxPts {
		stride := (len(pts) + maxPts - 1) / maxPts
		ds := make([]harness.RobustnessPoint, 0, maxPts+1)
		for i := 0; i < len(pts); i += stride {
			ds = append(ds, pts[i])
		}
		if last := pts[len(pts)-1]; len(ds) == 0 || ds[len(ds)-1] != last {
			ds = append(ds, last)
		}
		pts = ds
	}
	return pts
}

func TestRobustnessMatrix(t *testing.T) {
	var (
		seriesMu sync.Mutex
		series   []harness.RobustnessSeries
	)
	for _, tc := range matrixCases {
		tc := tc
		t.Run(tc.scheme, func(t *testing.T) {
			pts, ceil := runMatrixCase(t, tc)
			seriesMu.Lock()
			series = append(series, harness.RobustnessSeries{
				Scheme:  tc.scheme,
				Robust:  tc.robust,
				Ceiling: ceil,
				Points:  pts,
			})
			seriesMu.Unlock()
		})
	}
	if path := os.Getenv("QSENSE_ROBUSTNESS_JSON"); path != "" && !t.Failed() {
		if err := harness.WriteRobustnessJSONFile(path, series); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		t.Logf("wrote %s (%d schemes)", path, len(series))
	}
}

// runMatrixCase stalls one victim, storms, asserts the scheme-appropriate
// bound, then releases the victim and asserts recovery. Returns the sampled
// trace and the ceiling it was judged against.
func runMatrixCase(t *testing.T, tc matrixCase) ([]harness.RobustnessPoint, int64) {
	t.Helper()
	pool := mem.NewPool[fnode](mem.Config{MaxSlots: 1 << 18, Poison: true, Name: "matrix-" + tc.scheme})
	inj := New()
	cfg := reclaim.Config{
		Workers:        mxWorkers,
		HardMaxWorkers: 2 * mxWorkers,
		HPs:            mxHPs,
		Q:              mxQ,
		R:              mxR,
		C:              mxC,
		Free:           func(r mem.Ref) { pool.Free(r) },
		Era:            pool,
		Rooster:        rooster.Config{Interval: mxInterval},
		FaultHook:      inj.Hook(),
	}
	if tc.scheme == "qsense" {
		// The eviction extension: a reader silent for this long is treated
		// as crashed. Set only here so qsbr/ebr stay unbounded controls.
		cfg.EvictAfter = 50 * time.Millisecond
	}
	d, err := reclaim.New(tc.scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// --- Stall the victim at the scheme's sync point. Determinism: the
	// trap is armed before the victim goroutine starts, and nothing else
	// is running the protocol yet, so the victim is the only candidate.
	vg, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	var held mem.Ref
	if tc.needRef {
		held, _ = pool.Alloc()
	}
	var stopVictim atomic.Bool
	victimDone := make(chan struct{})
	inj.StallNext(tc.point)
	go func() {
		defer close(victimDone)
		for !stopVictim.Load() {
			vg.Begin()
			if tc.needRef {
				vg.Protect(0, held)
			}
			vg.ClearHPs()
		}
		vg.ClearHPs()
		d.Release(vg)
	}()
	if _, ok := inj.AwaitStalled(10 * time.Second); !ok {
		t.Fatal("victim never reached the fault point")
	}

	// --- Storm from healthy goroutines while the victim stays parked.
	sampler := startSampler(d)
	target := 5 * int(mxCeiling())
	res := RunStorm(d, PoolAlloc(pool), StormConfig{
		Workers: mxStorm,
		Target:  target,
		MinWall: 300 * time.Millisecond, // wall time for rooster/eviction clocks
	})
	if res.Walled {
		t.Fatalf("storm hit MaxWall at %d/%d retires", res.Retired, target)
	}

	ceil := mxCeiling()
	if tc.rated {
		// Tick-deferred schemes legitimately hold ~3 rooster intervals of
		// retires in flight; translate the storm's measured rate into nodes.
		rate := float64(res.Retired) / res.Elapsed.Seconds()
		ceil += int64(3 * mxInterval.Seconds() * rate)
	}

	st := d.Stats()
	if tc.robust {
		if st.Pending > ceil {
			t.Errorf("stalled reader pinned %d pending nodes, bound is %d (retired %d): scheme is NOT robust",
				st.Pending, ceil, res.Retired)
		}
	} else {
		// Negative control: the frozen epoch must pin essentially the
		// whole storm, proving the ceiling is a real discriminator.
		if st.Pending <= ceil {
			t.Errorf("negative control failed: pending %d stayed under ceiling %d — epoch scheme unexpectedly robust",
				st.Pending, ceil)
		}
		if st.Pending < int64(res.Retired)/2 {
			t.Errorf("negative control weaker than expected: pending %d of %d retired", st.Pending, res.Retired)
		}
	}
	if tc.scheme == "qsense" && st.Evictions == 0 {
		t.Errorf("qsense never evicted the silent reader (EvictAfter=%v, storm wall %v)", cfg.EvictAfter, res.Elapsed)
	}

	// --- Recovery: release the victim; every scheme must drain back under
	// the ceiling once the stall clears (epoch schemes included).
	stopVictim.Store(true)
	inj.Resume()
	inj.Disarm()
	select {
	case <-victimDone:
	case <-time.After(10 * time.Second):
		t.Fatal("victim did not exit after Resume")
	}
	if tc.needRef {
		pool.Free(held) // never retired; victim no longer protects it
	}

	dg, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	recovered := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		// Keep the protocol moving: quiescent states, era advances, scans.
		for i := 0; i < 2*(mxR+mxQ); i++ {
			dg.Begin()
			r, _ := pool.Alloc()
			dg.Retire(r)
			dg.ClearHPs()
		}
		if d.Stats().Pending <= ceil {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond) // let rooster ticks land
	}
	d.Release(dg)
	if !recovered {
		t.Errorf("pending %d never drained under %d after the victim was released", d.Stats().Pending, ceil)
	}
	pts := sampler.finish()
	t.Logf("%s: storm retired %d in %v; pending after storm %d (ceiling %d), evictions %d, stalls %d",
		tc.scheme, res.Retired, res.Elapsed.Round(time.Millisecond), st.Pending, ceil, st.Evictions, inj.Stalls())
	return pts, ceil
}
