package fault

import (
	"testing"
	"time"

	"qsense/internal/mem"
	"qsense/internal/reclaim"
)

type fnode struct{ v int }

func newPool(t *testing.T) *mem.Pool[fnode] {
	t.Helper()
	return mem.NewPool[fnode](mem.Config{MaxSlots: 1 << 18, Poison: true, Name: "fault-test"})
}

// TestFreezeUnfreezeCycle proves the injector's contract end to end on QSBR:
// arm, victim parks at the quiesce point, Resume lets it run, re-arm and the
// SAME victim parks again — a reader frozen and thawed on command.
func TestFreezeUnfreezeCycle(t *testing.T) {
	pool := newPool(t)
	inj := New()
	d, err := reclaim.NewQSBR(reclaim.Config{
		Workers: 4, HPs: 2, Q: 2,
		Free:      func(r mem.Ref) { pool.Free(r) },
		FaultHook: inj.Hook(),
		Shards:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	g, err := d.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: each trap is armed while the victim is provably unable
	// to reach the sync point — before the goroutine starts (cycle 0), or
	// while it is blocked on the unbuffered parked rendezvous (cycle 1).
	inj.StallNext(reclaim.FaultQuiesce)
	parked := make(chan struct{})
	resumed := make(chan struct{})
	go func() {
		for i := 0; i < 2; i++ {
			// Q=2: the second Begin of each pair crosses the quiesce
			// sync point, where the armed trap parks this goroutine.
			g.Begin()
			g.Begin()
			parked <- struct{}{}
		}
		d.Release(g)
		close(resumed)
	}()

	for cycle := 0; cycle < 2; cycle++ {
		slot, ok := inj.AwaitStalled(5 * time.Second)
		if !ok {
			t.Fatalf("cycle %d: victim never parked", cycle)
		}
		if want := reclaim.SlotIndex(g); slot != want {
			t.Fatalf("cycle %d: parked slot = %d, want %d", cycle, slot, want)
		}
		select {
		case <-parked:
			t.Fatalf("cycle %d: victim ran past the trap before Resume", cycle)
		case <-time.After(20 * time.Millisecond):
		}
		inj.Resume()
		if cycle == 0 {
			inj.StallNext(reclaim.FaultQuiesce) // re-arm before releasing the rendezvous
		}
		<-parked
	}
	select {
	case <-resumed:
	case <-time.After(5 * time.Second):
		t.Fatal("victim never finished after final Resume")
	}
	if got := inj.Stalls(); got != 2 {
		t.Fatalf("Stalls() = %d, want 2", got)
	}
}

// TestTrapIsOneShot: with the trap already sprung by a victim, other
// goroutines sail through the same sync point unstalled.
func TestTrapIsOneShot(t *testing.T) {
	pool := newPool(t)
	inj := New()
	d, err := reclaim.NewQSBR(reclaim.Config{
		Workers: 4, HPs: 2, Q: 1,
		Free:      func(r mem.Ref) { pool.Free(r) },
		FaultHook: inj.Hook(),
		Shards:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	inj.StallNext(reclaim.FaultQuiesce)
	victim := d.Guard(0)
	victimDone := make(chan struct{})
	go func() { victim.Begin(); close(victimDone) }() // Q=1: every Begin hits the sync point
	if _, ok := inj.AwaitStalled(5 * time.Second); !ok {
		t.Fatal("victim never parked")
	}

	// A healthy guard must pass the (now disarmed) point without delay.
	done := make(chan struct{})
	go func() {
		h := d.Guard(1)
		for i := 0; i < 100; i++ {
			h.Begin()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("healthy guard stalled on a one-shot trap that had already sprung")
	}
	inj.Resume()
	<-victimDone // victim fully out of Begin before the deferred Close
}

// TestDisarmAndResumeNoops: Disarm removes an unsprung trap; Resume with
// nothing armed or already resumed is a safe no-op.
func TestDisarmAndResumeNoops(t *testing.T) {
	inj := New()
	inj.Resume() // nothing armed
	inj.StallNext(reclaim.FaultProtect)
	inj.Disarm()
	if _, ok := inj.AwaitStalled(10 * time.Millisecond); ok {
		t.Fatal("disarmed trap sprang")
	}
	inj.Resume()
	inj.Resume() // double-resume
	if inj.Stalls() != 0 {
		t.Fatalf("Stalls() = %d after disarm, want 0", inj.Stalls())
	}
}

// TestRunStormRetires: the storm reaches its target and leaves no leaked
// leases behind (every guard released, domain closes cleanly).
func TestRunStormRetires(t *testing.T) {
	pool := newPool(t)
	d, err := reclaim.NewQSBR(reclaim.Config{
		Workers: 8, HPs: 2, Q: 4,
		Free:   func(r mem.Ref) { pool.Free(r) },
		Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res := RunStorm(d, PoolAlloc(pool), StormConfig{Workers: 4, Target: 2000})
	if res.Walled {
		t.Fatal("storm hit MaxWall on a tiny target")
	}
	if res.Retired < 2000 {
		t.Fatalf("storm retired %d, want >= 2000", res.Retired)
	}
	if st := d.Stats(); st.Retired < 2000 {
		t.Fatalf("domain saw %d retires, want >= 2000", st.Retired)
	}
}
