// Package fault is a deterministic fault injector for the reclamation
// schemes: it stalls a chosen guard mid-protocol at a named sync point,
// freezes and unfreezes it on command, and drives retire storms from
// healthy goroutines — the adversarial machinery behind the robustness
// matrix that regression-tests the paper's central claim (a stalled reader
// pins bounded garbage under the pointer/interval/batch schemes, unbounded
// garbage under the pure epoch schemes).
//
// The injector threads into internal/reclaim through Config.FaultHook: the
// schemes call the hook at their FaultQuiesce/FaultProtect/FaultInbox sync
// points, on the faulting goroutine itself, so a hook that blocks models a
// reader descheduled (or crashed) exactly there. Production configs leave
// the hook nil and pay one predictable branch per sync point.
//
// Traps are one-shot by CAS: StallNext arms a trap, the FIRST goroutine to
// hit the armed point parks and every later arrival passes through
// untrapped. Determinism therefore comes from arming while only the
// intended victim is running the trapped point — arm, start the victim,
// AwaitStalled, and only then unleash the storm.
package fault

import (
	"sync"
	"sync/atomic"
	"time"

	"qsense/internal/reclaim"
)

// trap is one armed stall: the first goroutine to hit the matching point
// claims it (CAS to nil), reports its slot on stalled, and parks on release.
type trap struct {
	point   reclaim.FaultPoint
	stalled chan int      // victim reports its slot index (buffered: never blocks the park)
	release chan struct{} // closed by Resume; the victim parks on it
}

// Injector arms stalls on reclaim's fault sync points. One Injector serves
// one Domain (pass Hook() as its Config.FaultHook); arm/await/resume cycles
// may repeat — each StallNext installs a fresh trap, so the same victim can
// be frozen and unfrozen on command.
type Injector struct {
	armed  atomic.Pointer[trap] // nil = disarmed; claimed by the victim's CAS
	stalls atomic.Uint64        // total traps sprung (observability)

	mu       sync.Mutex
	current  *trap // last armed trap, for AwaitStalled/Resume
	resumed  bool  // current's release already closed
	lastSlot int   // slot of the last victim to park
}

// New builds a disarmed injector.
func New() *Injector { return &Injector{lastSlot: -1} }

// Hook returns the function to install as reclaim.Config.FaultHook. The
// disarmed fast path is one atomic load and a predictable branch.
func (j *Injector) Hook() func(reclaim.FaultPoint, int) {
	return func(p reclaim.FaultPoint, slot int) {
		t := j.armed.Load()
		if t == nil || t.point != p {
			return
		}
		if !j.armed.CompareAndSwap(t, nil) {
			return // another goroutine sprung it first; pass through
		}
		j.stalls.Add(1)
		t.stalled <- slot
		<-t.release
	}
}

// StallNext arms a one-shot trap: the next goroutine to reach point p parks
// until Resume. Arming while a previous victim is still parked is a caller
// error (Resume first); arming over an unsprung trap simply replaces it.
func (j *Injector) StallNext(p reclaim.FaultPoint) {
	t := &trap{point: p, stalled: make(chan int, 1), release: make(chan struct{})}
	j.mu.Lock()
	j.current = t
	j.resumed = false
	j.mu.Unlock()
	j.armed.Store(t)
}

// AwaitStalled blocks until the armed trap springs and returns the victim's
// guard slot index, or ok=false if no victim parked within the timeout.
func (j *Injector) AwaitStalled(timeout time.Duration) (slot int, ok bool) {
	j.mu.Lock()
	t := j.current
	j.mu.Unlock()
	if t == nil {
		return -1, false
	}
	select {
	case s := <-t.stalled:
		j.mu.Lock()
		j.lastSlot = s
		j.mu.Unlock()
		return s, true
	case <-time.After(timeout):
		return -1, false
	}
}

// Resume releases the currently parked victim (idempotent; no-op when
// nothing is armed or parked). The victim continues from the sync point as
// if the delay had been a long descheduling.
func (j *Injector) Resume() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.current == nil || j.resumed {
		return
	}
	j.resumed = true
	close(j.current.release)
}

// Disarm removes an armed-but-unsprung trap; a sprung trap is already
// disarmed (one-shot), and its victim still needs Resume.
func (j *Injector) Disarm() { j.armed.Store(nil) }

// Stalls reports how many traps have sprung over the injector's lifetime.
func (j *Injector) Stalls() uint64 { return j.stalls.Load() }
