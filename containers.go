package qsense

import (
	"qsense/internal/bst"
	"qsense/internal/hashmap"
	"qsense/internal/list"
	"qsense/internal/queue"
	"qsense/internal/reclaim"
	"qsense/internal/skiplist"
	"qsense/internal/stack"
)

// SetHandle is a worker's view of a concurrent sorted set. All set-like
// containers (Set, SkipSet, TreeSet, HashSet) hand out SetHandles. A
// handle must be used by one goroutine at a time.
type SetHandle interface {
	// Contains reports whether key is in the set.
	Contains(key int64) bool
	// Insert adds key, reporting false if it was already present.
	Insert(key int64) bool
	// Delete removes key, reporting false if it was absent.
	Delete(key int64) bool
}

// setCore carries the domain plumbing shared by the set containers.
type setCore struct {
	d       reclaim.Domain
	handles []SetHandle
}

// Handle returns worker w's handle (0 <= w < Options.Workers).
func (c *setCore) Handle(w int) SetHandle { return c.handles[w] }

// Stats returns the reclamation counters.
func (c *setCore) Stats() Stats { return fromReclaimStats(c.d.Stats()) }

// Close reclaims all pending memory and stops background machinery. Call
// only after all workers have stopped.
func (c *setCore) Close() { c.d.Close() }

func newSetCore(opts Options, hps int, free func(Ref), mk func(g Guard, w int) SetHandle) (*setCore, error) {
	d, err := NewDomain(withHPs(opts, hps), free)
	if err != nil {
		return nil, err
	}
	c := &setCore{d: d.d}
	for w := 0; w < opts.workers(); w++ {
		c.handles = append(c.handles, mk(d.Guard(w), w))
	}
	return c, nil
}

func withHPs(opts Options, hps int) Options {
	if opts.HPs < hps {
		opts.HPs = hps
	}
	return opts
}

// Set is a lock-free sorted set backed by the Harris–Michael linked list —
// right for small key ranges and cheap iteration-free membership.
type Set struct {
	setCore
	l *list.List
}

// NewSet builds a linked-list set wired to a reclamation domain.
func NewSet(opts Options) (*Set, error) {
	l := list.New(list.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, list.HPs, func(r Ref) { l.FreeNode(toMem(r)) },
		func(g Guard, _ int) SetHandle { return l.NewHandle(g.g) })
	if err != nil {
		return nil, err
	}
	return &Set{setCore: *core, l: l}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *Set) Len() int { return s.l.Len() }

// SkipSet is a lock-free sorted set backed by the Fraser skip list —
// logarithmic operations over large key ranges.
type SkipSet struct {
	setCore
	s *skiplist.SkipList
}

// NewSkipSet builds a skip-list set wired to a reclamation domain.
func NewSkipSet(opts Options) (*SkipSet, error) {
	sl := skiplist.New(skiplist.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, skiplist.HPsFor(sl.Levels()), func(r Ref) { sl.FreeNode(toMem(r)) },
		func(g Guard, w int) SetHandle { return sl.NewHandle(g.g, uint64(w)*0x9E3779B9+1) })
	if err != nil {
		return nil, err
	}
	return &SkipSet{setCore: *core, s: sl}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *SkipSet) Len() int { return s.s.Len() }

// TreeSet is a lock-free sorted set backed by the Natarajan–Mittal
// external binary search tree — the paper's third workload.
type TreeSet struct {
	setCore
	t *bst.Tree
}

// NewTreeSet builds a BST set wired to a reclamation domain.
func NewTreeSet(opts Options) (*TreeSet, error) {
	tr := bst.New(bst.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, bst.HPs, func(r Ref) { tr.FreeNode(toMem(r)) },
		func(g Guard, _ int) SetHandle { return tr.NewHandle(g.g) })
	if err != nil {
		return nil, err
	}
	return &TreeSet{setCore: *core, t: tr}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *TreeSet) Len() int { return s.t.Len() }

// HashSet is a lock-free hash set backed by Michael's hash table (split
// ordered bucket chains) — constant-time membership.
type HashSet struct {
	setCore
	m *hashmap.Map
}

// NewHashSet builds a hash set wired to a reclamation domain.
func NewHashSet(opts Options) (*HashSet, error) {
	m := hashmap.New(hashmap.Config{MaxSlots: opts.MaxNodes})
	core, err := newSetCore(opts, hashmap.HPs, func(r Ref) { m.FreeNode(toMem(r)) },
		func(g Guard, _ int) SetHandle { return m.NewHandle(g.g) })
	if err != nil {
		return nil, err
	}
	return &HashSet{setCore: *core, m: m}, nil
}

// Len counts elements; only meaningful while no workers are active.
func (s *HashSet) Len() int { return s.m.Len() }

// Queue is a lock-free FIFO queue (Michael–Scott) of uint64 values.
type Queue struct {
	q       *queue.Queue
	d       reclaim.Domain
	handles []*queue.Handle
}

// NewQueue builds a queue wired to a reclamation domain.
func NewQueue(opts Options) (*Queue, error) {
	q := queue.New(queue.Config{MaxSlots: opts.MaxNodes})
	d, err := NewDomain(withHPs(opts, queue.HPs), func(r Ref) { q.FreeNode(toMem(r)) })
	if err != nil {
		return nil, err
	}
	out := &Queue{q: q, d: d.d}
	for w := 0; w < opts.workers(); w++ {
		out.handles = append(out.handles, q.NewHandle(d.Guard(w).g))
	}
	return out, nil
}

// QueueHandle is a worker's view of a Queue. A handle must be used by one
// goroutine at a time.
type QueueHandle struct {
	h *queue.Handle
}

// Enqueue appends v at the tail.
func (h QueueHandle) Enqueue(v uint64) { h.h.Enqueue(v) }

// Dequeue removes and returns the oldest value; ok=false when empty.
func (h QueueHandle) Dequeue() (v uint64, ok bool) { return h.h.Dequeue() }

// Handle returns worker w's handle.
func (q *Queue) Handle(w int) QueueHandle { return QueueHandle{h: q.handles[w]} }

// Stats returns the reclamation counters.
func (q *Queue) Stats() Stats { return fromReclaimStats(q.d.Stats()) }

// Len counts elements; only meaningful while no workers are active.
func (q *Queue) Len() int { return q.q.Len() }

// Close reclaims pending memory; call after all workers stopped.
func (q *Queue) Close() { q.d.Close() }

// Stack is a lock-free LIFO stack (Treiber) of uint64 values.
type Stack struct {
	s       *stack.Stack
	d       reclaim.Domain
	handles []*stack.Handle
}

// NewStack builds a stack wired to a reclamation domain.
func NewStack(opts Options) (*Stack, error) {
	s := stack.New(stack.Config{MaxSlots: opts.MaxNodes})
	d, err := NewDomain(withHPs(opts, stack.HPs), func(r Ref) { s.FreeNode(toMem(r)) })
	if err != nil {
		return nil, err
	}
	out := &Stack{s: s, d: d.d}
	for w := 0; w < opts.workers(); w++ {
		out.handles = append(out.handles, s.NewHandle(d.Guard(w).g))
	}
	return out, nil
}

// StackHandle is a worker's view of a Stack. A handle must be used by one
// goroutine at a time.
type StackHandle struct {
	h *stack.Handle
}

// Push adds v on top.
func (h StackHandle) Push(v uint64) { h.h.Push(v) }

// Pop removes and returns the top value; ok=false when empty.
func (h StackHandle) Pop() (v uint64, ok bool) { return h.h.Pop() }

// Handle returns worker w's handle.
func (s *Stack) Handle(w int) StackHandle { return StackHandle{h: s.handles[w]} }

// Stats returns the reclamation counters.
func (s *Stack) Stats() Stats { return fromReclaimStats(s.d.Stats()) }

// Len counts elements; only meaningful while no workers are active.
func (s *Stack) Len() int { return s.s.Len() }

// Close reclaims pending memory; call after all workers stopped.
func (s *Stack) Close() { s.d.Close() }
